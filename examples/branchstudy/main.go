// Branchstudy reproduces the paper's branch-interaction findings (§4.2.2)
// on one benchmark: how SB/NSB branch resolution, the VP-verification
// latency, and instruction reuse change branch resolution latency and
// squash counts.
//
//	go run ./examples/branchstudy [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/vpir-sim/vpir"
)

func main() {
	bench := "go" // the hardest benchmark for the branch predictor
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	configs := []struct {
		label string
		opt   vpir.Options
	}{
		{"base", vpir.Options{}},
		{"IR", vpir.Options{Technique: vpir.IR}},
		{"VP Magic ME-SB vlat=0", vpir.Options{Technique: vpir.VP}},
		{"VP Magic ME-NSB vlat=0", vpir.Options{Technique: vpir.VP, BranchResolution: "nsb"}},
		{"VP Magic ME-SB vlat=1", vpir.Options{Technique: vpir.VP, VerifyLatency: 1}},
		{"VP Magic ME-NSB vlat=1", vpir.Options{Technique: vpir.VP, BranchResolution: "nsb", VerifyLatency: 1}},
		{"VP LVP ME-SB vlat=1", vpir.Options{Technique: vpir.VP, Scheme: "lvp", VerifyLatency: 1}},
		{"VP LVP ME-NSB vlat=1", vpir.Options{Technique: vpir.VP, Scheme: "lvp", BranchResolution: "nsb", VerifyLatency: 1}},
	}

	fmt.Printf("branch interactions on %q (branch prediction is hardest here)\n\n", bench)
	fmt.Printf("%-26s %7s %12s %10s %10s\n", "configuration", "IPC", "resolve lat", "squashes", "spurious")

	var baseLat float64
	for i, c := range configs {
		res, err := vpir.RunBenchmark(bench, 1, c.opt)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseLat = res.MeanBranchResolveLatency
		}
		fmt.Printf("%-26s %7.3f %6.2f (%.2fx) %10d %10d\n",
			c.label, res.IPC, res.MeanBranchResolveLatency,
			res.MeanBranchResolveLatency/baseLat, res.Squashes, res.SpuriousSquashes)
	}
	fmt.Println("\nexpected shape (paper §4.2.2): IR resolves earliest (reused branches resolve")
	fmt.Println("at decode); SB resolves earlier than NSB but adds spurious squashes; the")
	fmt.Println("verification latency hurts NSB more than SB.")
}
