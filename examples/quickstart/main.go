// Quickstart: assemble a small program, run it on the base machine and
// with each technique, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/vpir-sim/vpir"
)

// A toy kernel with plenty of redundancy: the same polynomial evaluated
// over a small set of values, many times.
const source = `
        .data
xs:     .word 3, 5, 7, 9
        .text
main:   li    $s0, 0          # outer counter
        li    $s2, 0          # accumulator
outer:  li    $t0, 0
inner:  sll   $t1, $t0, 2
        la    $at, xs
        addu  $t1, $t1, $at
        lw    $t2, 0($t1)     # x
        mul   $t3, $t2, $t2   # x^2
        mul   $t4, $t3, $t2   # x^3
        addu  $t5, $t4, $t3   # x^3 + x^2
        addu  $t5, $t5, $t2   # + x
        addu  $s2, $s2, $t5
        addiu $t0, $t0, 1
        slti  $at, $t0, 4
        bnez  $at, inner
        addiu $s0, $s0, 1
        slti  $at, $s0, 500
        bnez  $at, outer
        move  $a0, $s2
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
`

func main() {
	configs := []struct {
		label string
		opt   vpir.Options
	}{
		{"base superscalar", vpir.Options{}},
		{"instruction reuse", vpir.Options{Technique: vpir.IR}},
		{"value prediction (Magic, ME-SB)", vpir.Options{Technique: vpir.VP}},
		{"value prediction (LVP, ME-SB, vlat=1)", vpir.Options{
			Technique: vpir.VP, Scheme: "lvp", VerifyLatency: 1}},
		{"hybrid IR+VP (extension)", vpir.Options{
			Technique: vpir.Hybrid, BranchResolution: "nsb"}},
	}

	var baseIPC float64
	for i, c := range configs {
		res, err := vpir.RunSource("quickstart.s", source, c.opt)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseIPC = res.IPC
			fmt.Printf("program output: %s (in %d instructions)\n\n", res.Output, res.Committed)
			fmt.Printf("%-40s %7s %9s %9s\n", "configuration", "IPC", "speedup", "captured")
		}
		captured := res.ReuseResultRate
		if c.opt.Technique == vpir.VP {
			captured = res.VPResultPred
		}
		fmt.Printf("%-40s %7.3f %8.2fx %8.1f%%\n", c.label, res.IPC, res.IPC/baseIPC, captured)
	}
	fmt.Println("\n\"captured\" = results reused (IR) or correctly predicted (VP), % of instructions")
}
