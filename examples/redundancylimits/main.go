// Redundancylimits runs the §4.3 limit study (Figures 8-10) over all seven
// benchmarks through the public API and prints the paper-shaped summary.
//
//	go run ./examples/redundancylimits
package main

import (
	"fmt"
	"log"

	"github.com/vpir-sim/vpir"
)

func main() {
	fmt.Println("How much redundancy do programs contain, and how much can")
	fmt.Println("operand-based, non-speculative reuse capture? (paper §4.3)")
	fmt.Println()
	fmt.Printf("%-10s %9s | %6s %6s %6s | %9s\n",
		"bench", "insts", "uniq%", "redun%", "deriv%", "reusable%")

	var lo, hi float64 = 101, -1
	for _, bench := range vpir.Benchmarks() {
		r, err := vpir.AnalyzeRedundancy(bench, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9d | %6.1f %6.1f %6.1f | %9.1f\n",
			bench, r.Total, r.UniquePct, r.RedundantPct, r.DerivedPct, r.ReusableOfRedundant)
		if r.ReusableOfRedundant < lo {
			lo = r.ReusableOfRedundant
		}
		if r.ReusableOfRedundant > hi {
			hi = r.ReusableOfRedundant
		}
	}
	fmt.Printf("\nmeasured: %.0f-%.0f%% of redundancy is reusable (paper: 84-97%%)\n", lo, hi)
	fmt.Println("conclusion (paper §5): detecting redundant instructions non-speculatively,")
	fmt.Println("based on their operands, does not significantly restrict IR.")
}
