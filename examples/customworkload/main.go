// Customworkload shows how to bring your own program: write a kernel in
// the simulator's assembly dialect, register it as a benchmark, and compare
// how VP and IR exploit its redundancy.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"github.com/vpir-sim/vpir"
)

// A string-matching kernel: count occurrences of a 4-byte needle in a
// haystack, repeatedly (think grep inner loop). Highly repetitive: the
// needle loads never change, and most window comparisons fail the same way.
const source = `
        .data
hay:    .space 2048
needle: .byte 'a', 'b', 'a', 'b'
        .text
main:   li    $s7, 0x5EED
        # build a haystack over the alphabet {a, b}
        la    $s0, hay
        li    $s1, 0
gen:    jal   rand
        andi  $t0, $v1, 1
        addiu $t0, $t0, 'a'
        addu  $t1, $s0, $s1
        sb    $t0, 0($t1)
        addiu $s1, $s1, 1
        li    $at, 2048
        blt   $s1, $at, gen

        li    $s4, 0          # match count
        li    $s5, 0          # round
round:  li    $s1, 0
scan:   addu  $t0, $s0, $s1
        la    $t9, needle
        li    $t2, 0          # offset
cmp:    addu  $t3, $t0, $t2
        lbu   $t4, 0($t3)
        addu  $t5, $t9, $t2
        lbu   $t6, 0($t5)
        bne   $t4, $t6, nomatch
        addiu $t2, $t2, 1
        slti  $at, $t2, 4
        bnez  $at, cmp
        addiu $s4, $s4, 1     # full match
nomatch:
        addiu $s1, $s1, 1
        li    $at, 2044
        blt   $s1, $at, scan
        addiu $s5, $s5, 1
        slti  $at, $s5, 10
        bnez  $at, round

        move  $a0, $s4
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall

rand:   li    $at, 1103515245
        mult  $s7, $at
        mflo  $s7
        addiu $s7, $s7, 12345
        srl   $v1, $s7, 16
        andi  $v1, $v1, 0x7FFF
        jr    $ra
`

func main() {
	if err := vpir.RegisterBenchmark("strmatch", "4-byte needle search over generated text", source, nil); err != nil {
		log.Fatal(err)
	}

	base, err := vpir.RunBenchmark("strmatch", 1, vpir.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strmatch: %s matches, %d instructions, base IPC %.3f\n\n",
		base.Output, base.Committed, base.IPC)

	fmt.Printf("%-34s %7s %9s %22s\n", "configuration", "IPC", "speedup", "redundancy captured")
	for _, c := range []struct {
		label string
		opt   vpir.Options
	}{
		{"instruction reuse", vpir.Options{Technique: vpir.IR}},
		{"IR, late validation (fig 3)", vpir.Options{Technique: vpir.IR, LateValidation: true}},
		{"VP_Magic ME-SB", vpir.Options{Technique: vpir.VP}},
		{"VP_LVP ME-SB", vpir.Options{Technique: vpir.VP, Scheme: "lvp"}},
	} {
		res, err := vpir.RunBenchmark("strmatch", 1, c.opt)
		if err != nil {
			log.Fatal(err)
		}
		captured := fmt.Sprintf("%.1f%% reused", res.ReuseResultRate)
		if c.opt.Technique == vpir.VP {
			captured = fmt.Sprintf("%.1f%% predicted", res.VPResultPred)
		}
		fmt.Printf("%-34s %7.3f %8.2fx %22s\n", c.label, res.IPC, res.IPC/base.IPC, captured)
	}

	r, err := vpir.AnalyzeRedundancy("strmatch", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlimit study: %.1f%% of results are redundant; %.1f%% of that is reusable\n",
		r.RedundantPct, r.ReusableOfRedundant)
}
