package vpir

import (
	"strings"
	"testing"
)

func TestBenchmarks(t *testing.T) {
	want := []string{"go", "m88ksim", "ijpeg", "perl", "vortex", "gcc", "compress"}
	got := Benchmarks()
	if len(got) != len(want) {
		t.Fatalf("benchmarks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bench %d = %s, want %s", i, got[i], want[i])
		}
	}
	infos := BenchmarkInfos()
	if len(infos) != len(want) {
		t.Fatalf("infos = %v", infos)
	}
	for _, in := range infos {
		if in.Desc == "" {
			t.Errorf("%s has no description", in.Name)
		}
	}
}

func TestRunBenchmarkBaseVsIR(t *testing.T) {
	opt := Options{MaxInsts: 60_000}
	base, err := RunBenchmark("gcc", 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Technique = IR
	ir, err := RunBenchmark("gcc", 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC <= 0 || ir.IPC <= 0 {
		t.Fatal("zero IPC")
	}
	if ir.ReuseResultRate <= 0 {
		t.Error("IR reported no reuse")
	}
	if base.Config != "base" || ir.Config != "IR" {
		t.Errorf("labels: %q, %q", base.Config, ir.Config)
	}
}

func TestRunBenchmarkVPKnobs(t *testing.T) {
	opt := Options{
		Technique:        VP,
		Scheme:           "lvp",
		BranchResolution: "nsb",
		Reexec:           "nme",
		VerifyLatency:    1,
		MaxInsts:         40_000,
	}
	res, err := RunBenchmark("perl", 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "VP_LVP NME-NSB vlat=1" {
		t.Errorf("config = %q", res.Config)
	}
	if res.VPResultPred <= 0 {
		t.Error("no predictions reported")
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Technique: "warp"},
		{Technique: VP, Scheme: "psychic"},
		{Technique: VP, BranchResolution: "maybe"},
		{Technique: VP, Reexec: "sometimes"},
	}
	for _, o := range bad {
		if _, err := RunBenchmark("go", 1, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestRunSource(t *testing.T) {
	src := `
        .text
main:   li   $t0, 5
        li   $t1, 7
        mul  $a0, $t0, $t1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`
	res, err := RunSource("demo.s", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "35" {
		t.Errorf("output = %q", res.Output)
	}
	if res.Committed == 0 || res.Cycles == 0 {
		t.Error("no work simulated")
	}
}

func TestRunSourceErrors(t *testing.T) {
	if _, err := RunSource("bad.s", ".text\nmain: frobnicate $t0\n", Options{}); err == nil {
		t.Error("bad source accepted")
	}
}

func TestAssemble(t *testing.T) {
	text, data, err := Assemble("a.s", ".data\nx: .word 1, 2\n.text\nmain: syscall\n")
	if err != nil {
		t.Fatal(err)
	}
	if text != 1 || data != 8 {
		t.Errorf("text=%d data=%d", text, data)
	}
}

func TestRegisterBenchmark(t *testing.T) {
	src := `
        .text
main:   li  $s0, 0
loop:   addiu $s0, $s0, 1
        slti $at, $s0, 2000
        bnez $at, loop
        li  $v0, 10
        syscall
`
	if err := RegisterBenchmark("counter", "test counter", src, nil); err != nil {
		t.Fatal(err)
	}
	res, err := RunBenchmark("counter", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 2000 {
		t.Errorf("committed = %d", res.Committed)
	}
	if err := RegisterBenchmark("counter", "", src, nil); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestAnalyzeRedundancy(t *testing.T) {
	r, err := AnalyzeRedundancy("ijpeg", 1, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total == 0 {
		t.Fatal("no instructions analyzed")
	}
	sum := r.UniquePct + r.RepeatedPct + r.DerivedPct + r.UnaccPct
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("classification doesn't sum to 100: %v", sum)
	}
	if r.ReusableOfRedundant <= 0 {
		t.Error("no reusable redundancy")
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Fatalf("experiments = %v", exps)
	}
	if exps[0] != "table1" || exps[13] != "fig10" {
		t.Errorf("order = %v", exps)
	}
}

func TestRunExperimentRendered(t *testing.T) {
	out, err := RunExperiment("fig3", 1, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3", "early", "late", "HM", "compress"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q:\n%s", want, out)
		}
	}
	if _, err := RunExperiment("fig99", 1, 0); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestHybridTechnique(t *testing.T) {
	res, err := RunBenchmark("gcc", 1, Options{Technique: Hybrid, MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "IR+VP_Magic ME-SB vlat=0" {
		t.Errorf("config = %q", res.Config)
	}
	if res.ReuseResultRate <= 0 || res.VPResultPred <= 0 {
		t.Errorf("hybrid should both reuse (%.1f%%) and predict (%.1f%%)",
			res.ReuseResultRate, res.VPResultPred)
	}
}

func TestStrideScheme(t *testing.T) {
	res, err := RunBenchmark("ijpeg", 1, Options{Technique: VP, Scheme: "stride", MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "VP_Stride ME-SB vlat=0" {
		t.Errorf("config = %q", res.Config)
	}
	if res.VPResultPred <= 0 {
		t.Error("stride made no correct predictions on ijpeg's strided loops")
	}
}

func TestTracePipeline(t *testing.T) {
	out, err := TracePipeline("compress", 1, Options{Technique: IR, MaxInsts: 5_000}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cycles", "C", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	if _, err := TracePipeline("nope", 1, Options{}, 5); err == nil {
		t.Error("unknown bench accepted")
	}
	if _, err := TracePipeline("compress", 1, Options{Technique: "bogus"}, 5); err == nil {
		t.Error("bad options accepted")
	}
}

func TestRunBenchmarkWithMetrics(t *testing.T) {
	res, err := RunBenchmark("compress", 1, Options{
		Technique: IR,
		MaxInsts:  30_000,
		Metrics:   &MetricsOptions{Interval: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("Options.Metrics set but Result.Obs is nil")
	}
	if res.Obs.Samples() < 2 {
		t.Errorf("samples = %d, want interval samples plus the final flush", res.Obs.Samples())
	}
	if res.Obs.SampleInterval() != 1000 {
		t.Errorf("interval = %d, want 1000", res.Obs.SampleInterval())
	}
	var series, events, prom strings.Builder
	if err := res.Obs.WriteSeriesJSONL(&series); err != nil {
		t.Fatal(err)
	}
	if err := res.Obs.WriteEventsJSONL(&events); err != nil {
		t.Fatal(err)
	}
	if err := res.Obs.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if strings.Count(series.String(), "\n") != res.Obs.Samples() {
		t.Errorf("series lines %d != samples %d", strings.Count(series.String(), "\n"), res.Obs.Samples())
	}
	if !strings.Contains(series.String(), `"committed"`) || !strings.Contains(prom.String(), "vpir_stats_committed") {
		t.Error("exports missing the committed counter")
	}
	// Without Metrics the payload stays nil (and the run is uninstrumented).
	plain, err := RunBenchmark("compress", 1, Options{Technique: IR, MaxInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Obs != nil {
		t.Error("Result.Obs non-nil without Options.Metrics")
	}
	if plain.IPC != res.IPC || plain.Cycles != res.Cycles {
		t.Errorf("observer changed results: %v/%v cycles vs %v/%v",
			plain.IPC, plain.Cycles, res.IPC, res.Cycles)
	}
}
