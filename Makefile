# Developer entry points. `make check` is the pre-commit gate: it runs
# everything CI would, including the deterministic fault-injection smoke
# campaign described in docs/robustness.md.

GO ?= go

.PHONY: all build vet test test-race test-short smoke check bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite; the harness runs benchmarks in
# parallel goroutines, so this exercises the Runner's locking for real.
test-race:
	$(GO) test -race ./...

# Quick loop: skips the long fault-injection and full-kernel paths.
test-short:
	$(GO) test -short ./...

# Deterministic fault-injection smoke campaign (seed fixed so the output
# is byte-identical run to run; exit status is the campaign verdict).
smoke:
	$(GO) run ./cmd/vpir-faults -seed 1 -campaign smoke

check: vet build test-race smoke
	@echo "check: all gates passed"

bench:
	$(GO) test -bench=. -benchtime=1x ./...

clean:
	$(GO) clean ./...
