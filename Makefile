# Developer entry points. `make check` is the pre-commit gate: it runs
# everything CI would, including the deterministic fault-injection smoke
# campaign described in docs/robustness.md.

GO ?= go

.PHONY: all build fmt vet test test-race test-short smoke check bench bench-all clean

all: build

build:
	$(GO) build ./...

# Formatting gate: fails (and lists the offenders) if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite; the harness runs benchmarks in
# parallel goroutines, so this exercises the Runner's locking for real.
test-race:
	$(GO) test -race ./...

# Quick loop: skips the long fault-injection and full-kernel paths.
test-short:
	$(GO) test -short ./...

# Deterministic fault-injection smoke campaign (seed fixed so the output
# is byte-identical run to run; exit status is the campaign verdict).
smoke:
	$(GO) run ./cmd/vpir-faults -seed 1 -campaign smoke

check: fmt vet build test-race smoke
	@echo "check: all gates passed"

# Simulator throughput benchmarks, recorded as the perf baseline: the text
# goes to BENCH_baseline.txt (benchstat-compatible) and a JSONL rendering
# to BENCH_baseline.json. The observability-overhead budget in
# docs/observability.md is checked against this baseline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSim' -benchmem . | tee BENCH_baseline.txt
	$(GO) run ./cmd/vpir-metrics -bench2json BENCH_baseline.txt > BENCH_baseline.json

# Every benchmark in the repo, one iteration each (smoke, not measurement).
bench-all:
	$(GO) test -bench=. -benchtime=1x ./...

clean:
	$(GO) clean ./...
