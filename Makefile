# Developer entry points. `make check` is the pre-commit gate: it runs
# everything CI would, including the deterministic fault-injection smoke
# campaign described in docs/robustness.md.

GO ?= go

.PHONY: all build fmt vet test test-race test-race-hot test-short smoke chaos-smoke golden skip-smoke fuzz-smoke ui-smoke sample-smoke cover check bench bench-all bench-check profile clean

all: build

build:
	$(GO) build ./...

# Formatting gate: fails (and lists the offenders) if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite; the harness runs benchmarks in
# parallel goroutines, so this exercises the Runner's locking for real.
test-race:
	$(GO) test -race ./...

# Explicit race gate for the concurrency-heavy packages: the core machinery
# that sweep workers reuse (Machine.Reset), the parallel sweep engine, the
# parallel fault campaign, and the HTTP simulation server (whose load test
# hammers the cache/singleflight/drain paths from many goroutines). A
# subset of test-race, listed separately so the pre-commit gate names the
# concurrency coverage; Go's test cache makes running both nearly free.
test-race-hot:
	$(GO) vet ./internal/core/ ./internal/harness/ ./internal/faultinject/ ./internal/server/ ./internal/coord/
	$(GO) test -race ./internal/core/ ./internal/harness/ ./internal/faultinject/ ./internal/server/ ./internal/coord/

# Quick loop: skips the long fault-injection and full-kernel paths.
test-short:
	$(GO) test -short ./...

# Deterministic fault-injection smoke campaign (seed fixed so the output
# is byte-identical run to run; exit status is the campaign verdict).
smoke:
	$(GO) run ./cmd/vpir-faults -seed 1 -campaign smoke

# Service-layer chaos drill, race-enabled: workers behind fault-injecting
# proxies (drops, 503s, truncation, delays, body corruption) with one
# worker killed and revived mid-sweep, plus the durable-store restart and
# corruption-recovery scenarios. The merged distributed output must stay
# byte-identical to a serial single-server run throughout. See
# docs/distributed.md for the failure taxonomy these tests enact.
chaos-smoke:
	$(GO) test -race -run 'TestChaos|TestDurableStore|TestAllBackendsDown|TestHedgedStragglers' -count 1 ./internal/coord/

# Golden-result corpus: every benchmark x every registered technique
# against the snapshots in testdata/golden (the cell list auto-enumerates
# the technique registry, and a completeness check fails any registered
# name without a committed snapshot). Runs inside `make test` too; this target
# names it for the pre-commit gate and for quick one-off checks. After a
# deliberate core change, regenerate with:
#   $(GO) test -run TestGoldenCorpus -update . && git diff testdata/golden
golden:
	$(GO) test -run 'TestGoldenCorpus' .

# Skip-invariance smoke: the same corpus forced through the legacy
# cycle-by-cycle loop (VPIR_NO_SKIP=1) must reproduce identical numbers —
# the quiescence-aware skipper's invisibility contract (docs/performance.md).
skip-smoke:
	VPIR_NO_SKIP=1 $(GO) test -run 'TestGoldenCorpus' -count 1 .

# Short coverage-guided fuzz runs of the assembler and the end-to-end
# RunSource path: both must never panic on arbitrary input. New crashers
# land in testdata/fuzz/ as permanent regression seeds.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAssemble -fuzztime 10s ./internal/asm
	$(GO) test -run '^$$' -fuzz FuzzRunSource -fuzztime 10s .

# Dashboard smoke gate: boot a real vpir-server binary on an ephemeral
# port, fetch the embedded UI assets, run /v1/trace for a golden config
# twice (shape-validated; the repeat must be a byte-identical cache HIT),
# then SIGTERM and require a clean drain. See docs/observability.md.
ui-smoke:
	@tmp="$$(mktemp -d)"; \
	$(GO) build -o "$$tmp/vpir-server" ./cmd/vpir-server && \
	$(GO) run ./scripts/uismoke -bin "$$tmp/vpir-server"; \
	status=$$?; rm -rf "$$tmp"; exit $$status

# Sampled-simulation smoke gate: on two kernels, a 100%-coverage plan must
# reproduce the non-sampled run bit for bit, and a sparse plan's stitched
# IPC must land within tolerance of the full-detail IPC. See
# docs/sampling.md for the method these properties pin down.
sample-smoke:
	$(GO) run ./scripts/samplesmoke

# Total-coverage gate: fails below the 75% floor. Writes cover.out for
# `go tool cover -html=cover.out` spelunking.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { if (t+0 < 75) { print "cover: $$total% is below the 75% floor"; exit 1 } }'

check: fmt vet build test-race-hot test-race smoke chaos-smoke golden skip-smoke fuzz-smoke ui-smoke sample-smoke
	@echo "check: all gates passed"

# Simulator throughput benchmarks, recorded as the perf baseline: the text
# goes to BENCH_baseline.txt (benchstat-compatible) and a JSONL rendering
# to BENCH_baseline.json. The observability-overhead budget in
# docs/observability.md is checked against this baseline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSim|BenchmarkEmu' -benchmem . | tee BENCH_baseline.txt
	$(GO) run ./cmd/vpir-metrics -bench2json BENCH_baseline.txt > BENCH_baseline.json

# Every benchmark in the repo, one iteration each (smoke, not measurement).
bench-all:
	$(GO) test -bench=. -benchtime=1x ./...

# Perf regression gate: re-runs the simulator throughput benchmarks and
# fails if simcycles/s regressed by more than 10% against the committed
# BENCH_baseline.json, or if any benchmark allocates more than 10,000
# allocs/op in absolute terms (the hot loops are allocation-free; the
# remaining allocations are machine construction and the functional
# pre-run). Refresh the baseline with `make bench` after a deliberate
# performance change. BenchmarkSampledSpeedup then runs standalone: it
# self-gates at 5x effective simcycles/s over serial detailed simulation on
# a paper-scale workload, and stays out of the baseline because its
# interval-oracle allocations are by design far above the alloc ceiling.
bench-check:
	@tmp="$$(mktemp -d)"; \
	$(GO) test -run '^$$' -bench 'BenchmarkSim|BenchmarkEmu' -benchmem . > "$$tmp/bench.txt" \
		|| { cat "$$tmp/bench.txt"; rm -rf "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/vpir-metrics -bench2json "$$tmp/bench.txt" > "$$tmp/bench.json" \
		|| { rm -rf "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/vpir-metrics -compare -threshold 0.10 -units simcycles/s \
		-max-allocs 10000 BENCH_baseline.json "$$tmp/bench.json"; \
	status=$$?; rm -rf "$$tmp"; \
	[ $$status -eq 0 ] || exit $$status; \
	$(GO) test -run '^$$' -bench 'BenchmarkSampledSpeedup' -benchtime 1x .

# CPU and allocation profiles of the three pipeline variants, written to
# profiles/ for `go tool pprof` spelunking (see docs/performance.md for how
# to read them and what the current hot paths are). Opt into running this
# from scripts/check.sh with VPIR_PROFILE=1.
profile:
	@mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkSimBase$$' -benchtime 5x \
		-cpuprofile profiles/base.cpu.pprof -memprofile profiles/base.mem.pprof .
	$(GO) test -run '^$$' -bench 'BenchmarkSimIR$$' -benchtime 5x \
		-cpuprofile profiles/ir.cpu.pprof -memprofile profiles/ir.mem.pprof .
	$(GO) test -run '^$$' -bench 'BenchmarkSimVP$$' -benchtime 5x \
		-cpuprofile profiles/vp.cpu.pprof -memprofile profiles/vp.mem.pprof .
	@echo "profiles written to profiles/ (go tool pprof -top profiles/ir.cpu.pprof)"

clean:
	$(GO) clean ./...
	rm -f cover.out
