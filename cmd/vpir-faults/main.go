// Command vpir-faults runs a deterministic fault-injection campaign against
// the timing simulator and reports, per (benchmark, fault-kind) cell,
// whether the injected corruption was masked, benign (timing-only),
// detected by the commit-time oracle, or hung the pipeline.
//
// The campaign demonstrates the paper's validation asymmetry as a
// robustness property: VP, branch-predictor and cache faults are
// performance-only (every speculative value is validated before commit),
// while unguarded reuse-buffer *result* corruption reaches architectural
// state and must be flagged by the oracle — and guarded RB fields (operand
// names/values, dependence pointers) are rejected by the reuse test.
//
// Usage:
//
//	vpir-faults -seed 1 -campaign default
//	vpir-faults -seed 7 -campaign smoke -v
//	vpir-faults -bench compress,gcc -maxinsts 40000 -faults 5
//	vpir-faults -parallel 8        # 8 campaign workers
//
// The same seed always produces byte-identical output, at any -parallel
// setting. Exit status is 0 when every run matches the fault model, 1
// otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/vpir-sim/vpir/internal/faultinject"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed (same seed = byte-identical output)")
	campaign := flag.String("campaign", "default", "campaign preset: default or smoke")
	bench := flag.String("bench", "", "comma-separated benchmark override")
	maxInsts := flag.Uint64("maxinsts", 0, "per-run dynamic instruction cap override (0 = preset)")
	faults := flag.Int("faults", 0, "injection points per run override (0 = preset)")
	verbose := flag.Bool("v", false, "print the per-fault injection log")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"campaign worker count (1 = serial; output is identical either way)")
	flag.Parse()

	var c faultinject.Campaign
	switch *campaign {
	case "default":
		c = faultinject.DefaultCampaign(*seed)
	case "smoke":
		c = faultinject.SmokeCampaign(*seed)
	default:
		fmt.Fprintf(os.Stderr, "vpir-faults: unknown campaign %q (default or smoke)\n", *campaign)
		os.Exit(2)
	}
	if *bench != "" {
		c.Benches = strings.Split(*bench, ",")
	}
	if *maxInsts > 0 {
		c.MaxInsts = *maxInsts
	}
	if *faults > 0 {
		c.FaultsPerRun = *faults
	}
	c.Parallel = *parallel

	reports, err := c.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpir-faults: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fault-injection campaign %q, seed %d, %d insts/run, %d injection points\n\n",
		*campaign, c.Seed, c.MaxInsts, c.FaultsPerRun)
	table, ok := faultinject.Summarize(reports)
	fmt.Print(table)
	if *verbose {
		fmt.Println()
		for _, r := range reports {
			fmt.Printf("--- %s / %s / %s\n", r.Bench, r.Config, r.Kind)
			for _, line := range r.Log {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
}
