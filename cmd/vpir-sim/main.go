// Command vpir-sim runs one benchmark (or an assembly file) on the timing
// simulator under a chosen configuration and prints the statistics.
//
// Usage:
//
//	vpir-sim -bench compress -tech ir
//	vpir-sim -bench go -tech vp -scheme lvp -resolution nsb -vlat 1
//	vpir-sim -bench compress -tech vp_2delta
//	vpir-sim -bench gcc -tech hybrid_conf -scheme fcm
//	vpir-sim -file prog.s -tech base
//
// -tech accepts any name in the technique registry (see -list); unknown
// names and knobs a technique does not consume are rejected, never
// silently mapped to a different machine.
//
// Checkpointed sampling (see docs/sampling.md) makes paper-scale workloads
// tractable: -sample N measures one interval in every N (1 = all of them,
// which is bit-identical to a full run), -interval and -warmup set the
// interval and detailed-warmup lengths in instructions:
//
//	vpir-sim -bench gcc -scale 64 -tech ir -sample 10 -interval 100000 -warmup 2000
//
// Observability (see docs/observability.md):
//
//	vpir-sim -bench gcc -tech ir -metrics gcc.series.jsonl -events gcc.events.jsonl
//	vpir-metrics gcc.series.jsonl
//
// Profiling the simulator itself: -cpuprofile, -memprofile and -trace
// write standard pprof/runtime-trace files for `go tool pprof` /
// `go tool trace`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"github.com/vpir-sim/vpir"
)

func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "", "benchmark name (go, m88ksim, ijpeg, perl, vortex, gcc, compress)")
	file := flag.String("file", "", "assembly source file to run instead of a benchmark")
	scale := flag.Int("scale", 1, "workload scale factor")
	tech := flag.String("tech", "base",
		"technique: "+strings.Join(vpir.Techniques(), ", "))
	scheme := flag.String("scheme", "", "vp scheme: magic (default), lvp, stride, 2delta or fcm")
	resolution := flag.String("resolution", "", "vp branch resolution: sb (default) or nsb")
	reexec := flag.String("reexec", "", "vp re-execution policy: me (default) or nme")
	vlat := flag.Int("vlat", 0, "vp verification latency in cycles")
	late := flag.Bool("late", false, "ir: late validation (Figure 3 'late')")
	maxInsts := flag.Uint64("maxinsts", 0, "cap dynamic instructions (0 = full run)")
	sampleEvery := flag.Uint64("sample", 0, "checkpointed sampling: measure 1 interval in every N (0 = off, 1 = 100% coverage)")
	intervalLen := flag.Uint64("interval", 100_000, "sampling: measured interval length in instructions")
	warmup := flag.Uint64("warmup", 0, "sampling: detailed-warmup instructions before each interval (discarded)")
	showOutput := flag.Bool("output", false, "print the program's output")
	list := flag.Bool("list", false, "list the benchmarks and registered techniques, then exit")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for the run (0 = none), e.g. 30s")
	watchdog := flag.Int64("watchdog", 0, "livelock watchdog: abort after N cycles without a retirement (0 = default, negative = off)")

	metrics := flag.String("metrics", "", "write the sampled time series as JSONL to this file")
	metricsCSV := flag.String("metrics-csv", "", "write the sampled time series as CSV to this file")
	events := flag.String("events", "", "write the structured event log as JSONL to this file")
	prom := flag.String("prom", "", "write a final Prometheus text-format metrics snapshot to this file")
	interval := flag.Uint64("metrics-interval", 0, "cycles between metric samples (0 = default 10000)")

	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile of the simulator to this file")
	tracefile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range vpir.BenchmarkInfos() {
			fmt.Printf("  %-12s %s\n", b.Name, b.Desc)
		}
		fmt.Println("techniques:")
		for _, name := range vpir.Techniques() {
			fmt.Printf("  %-12s %s\n", name, vpir.TechniqueDesc(name))
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fail(err)
		}
		defer trace.Stop()
	}

	opt := vpir.Options{
		Technique:        vpir.Technique(*tech),
		Scheme:           *scheme,
		BranchResolution: *resolution,
		Reexec:           *reexec,
		VerifyLatency:    *vlat,
		LateValidation:   *late,
		MaxInsts:         *maxInsts,
		Timeout:          *timeout,
		WatchdogCycles:   *watchdog,
	}
	if *metrics != "" || *metricsCSV != "" || *events != "" || *prom != "" || *interval > 0 {
		opt.Metrics = &vpir.MetricsOptions{Interval: *interval}
	}
	if *sampleEvery > 0 {
		opt.Sample = &vpir.SampleOptions{Interval: *intervalLen, Every: *sampleEvery, Warmup: *warmup}
	}

	var res vpir.Result
	var err error
	switch {
	case *bench != "":
		res, err = vpir.RunBenchmark(*bench, *scale, opt)
	case *file != "":
		var src []byte
		src, err = os.ReadFile(*file)
		if err == nil {
			res, err = vpir.RunSource(*file, string(src), opt)
		}
	default:
		fmt.Fprintln(os.Stderr, "vpir-sim: need -bench or -file (try -list)")
		return 2
	}
	if err != nil {
		return fail(err)
	}

	if res.Obs != nil {
		for _, exp := range []struct {
			path  string
			write func(io.Writer) error
		}{
			{*metrics, res.Obs.WriteSeriesJSONL},
			{*metricsCSV, res.Obs.WriteSeriesCSV},
			{*events, res.Obs.WriteEventsJSONL},
			{*prom, res.Obs.WritePrometheus},
		} {
			if exp.path == "" {
				continue
			}
			if err := writeFile(exp.path, exp.write); err != nil {
				return fail(err)
			}
		}
	}

	fmt.Printf("config                %s\n", res.Config)
	fmt.Printf("cycles                %d\n", res.Cycles)
	fmt.Printf("instructions          %d\n", res.Committed)
	fmt.Printf("executions            %d\n", res.Executed)
	fmt.Printf("IPC                   %.3f\n", res.IPC)
	fmt.Printf("branch prediction     %.1f%%\n", res.BranchPredRate)
	fmt.Printf("return prediction     %.1f%%\n", res.ReturnPredRate)
	fmt.Printf("squashes              %d (%d spurious)\n", res.Squashes, res.SpuriousSquashes)
	fmt.Printf("branch resolve lat    %.2f cycles\n", res.MeanBranchResolveLatency)
	fmt.Printf("resource contention   %.4f\n", res.Contention)
	// The technique families share stat blocks: every hybrid reports both
	// its reuse and its prediction split.
	name := string(opt.Technique)
	if name == "ir" || strings.HasPrefix(name, "hybrid") {
		fmt.Printf("reused results        %.1f%%\n", res.ReuseResultRate)
		fmt.Printf("reused addresses      %.1f%%\n", res.ReuseAddrRate)
		fmt.Printf("exec squashed         %.1f%%\n", res.ExecSquashedPct)
		fmt.Printf("squashed recovered    %.1f%%\n", res.RecoveredPct)
	}
	if strings.HasPrefix(name, "vp") || strings.HasPrefix(name, "hybrid") {
		fmt.Printf("results predicted     %.1f%% (+%.1f%% wrong)\n", res.VPResultPred, res.VPResultMispred)
		fmt.Printf("addresses predicted   %.1f%% (+%.1f%% wrong)\n", res.VPAddrPred, res.VPAddrMispred)
		fmt.Printf("exec 1/2/3+ times     %.1f%% / %.1f%% / %.1f%%\n",
			res.ExecTimesPct[0], res.ExecTimesPct[1], res.ExecTimesPct[2])
	}
	if res.Obs != nil {
		fmt.Printf("metric samples        %d (every %d cycles)\n", res.Obs.Samples(), res.Obs.SampleInterval())
		fmt.Printf("events buffered       %d (%d dropped)\n", res.Obs.EventsBuffered(), res.Obs.EventsDropped())
	}
	if sm := res.Sample; sm != nil {
		kind := "estimated"
		if sm.Exact {
			kind = "exact"
		}
		fmt.Printf("sampling              %d intervals, %d of %d insts (%.1f%% coverage, %s)\n",
			sm.Intervals, sm.SampledInsts, sm.TotalInsts, 100*sm.Coverage, kind)
		for _, ci := range sm.CIs {
			fmt.Printf("  %-19s %.3f ± %.3f (95%% CI)\n", ci.Name, ci.Mean, ci.Half)
		}
	}
	if *showOutput {
		fmt.Printf("--- program output ---\n%s\n", res.Output)
	}

	if *memprofile != "" {
		runtime.GC()
		if err := writeFile(*memprofile, func(w io.Writer) error {
			return pprof.Lookup("heap").WriteTo(w, 0)
		}); err != nil {
			return fail(err)
		}
	}
	return 0
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "vpir-sim: %v\n", err)
	return 1
}
