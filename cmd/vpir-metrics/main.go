// Command vpir-metrics renders the observability exports produced by
// vpir-sim -metrics and vpir-bench -metrics-dir: a per-field summary table
// (min / max / last and a unicode sparkline of the trend) over the sampled
// time series.
//
// Usage:
//
//	vpir-metrics run.series.jsonl              # summarize every field
//	vpir-metrics -fields ipc,rob_occupancy f   # a subset
//	vpir-metrics -rates f                      # per-interval deltas of the counters
//	vpir-metrics -list f                       # just the field names
//
// It also converts `go test -bench` text output into the JSONL baseline
// format used by `make bench` (see docs/observability.md):
//
//	go test -run '^$' -bench BenchmarkSim -benchmem . | vpir-metrics -bench2json -
//
// And it compares two baseline files benchstat-style, for CI gating
// (`make bench-check`):
//
//	vpir-metrics -compare old.json new.json
//	vpir-metrics -compare -threshold 0.10 -units simcycles/s old.json new.json
//
// With -threshold, the exit status is 1 when any compared dimension
// regressed by more than the given fraction (for throughput units like
// simcycles/s a *drop* is the regression; for per-op units a rise is).
// -units restricts the gate and the table to a comma-separated subset.
//
// -max-allocs adds an absolute ceiling on top of the relative gate: any
// benchmark in the NEW file whose allocs/op exceeds the ceiling fails the
// comparison even if it did not regress relative to the old baseline. This
// keeps the simulator's hot loops allocation-free in absolute terms — a
// relative gate alone would let a slow allocation creep survive baseline
// refreshes.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"github.com/vpir-sim/vpir/internal/obs"
	"github.com/vpir-sim/vpir/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	fields := flag.String("fields", "", "comma-separated field subset to show (default: all)")
	rates := flag.Bool("rates", false, "show per-interval deltas instead of cumulative values")
	list := flag.Bool("list", false, "list the field names and exit")
	width := flag.Int("width", 24, "sparkline width in characters")
	bench2json := flag.Bool("bench2json", false, "convert `go test -bench` text on the input to baseline JSONL on stdout")
	compare := flag.Bool("compare", false, "compare two baseline JSONL files (old new) and print a delta table")
	threshold := flag.Float64("threshold", 0, "with -compare: exit 1 when any dimension regresses by more than this fraction (0 = report only)")
	units := flag.String("units", "", "with -compare: comma-separated subset of units to show and gate on (default: all)")
	maxAllocs := flag.Float64("max-allocs", 0, "with -compare: exit 1 when any new benchmark exceeds this allocs/op ceiling (0 = no ceiling)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "vpir-metrics: -compare needs exactly two baseline files: old new")
			return 2
		}
		return compareBaselines(flag.Arg(0), flag.Arg(1), *threshold, *units, *maxAllocs)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "vpir-metrics: need exactly one input file ('-' for stdin)")
		return 2
	}
	in, err := open(flag.Arg(0))
	if err != nil {
		return fail(err)
	}
	defer in.Close()

	if *bench2json {
		results, err := stats.ParseBench(in)
		if err != nil {
			return fail(err)
		}
		if len(results) == 0 {
			return fail(fmt.Errorf("no benchmark lines in %s", flag.Arg(0)))
		}
		if err := stats.WriteBenchJSON(os.Stdout, results); err != nil {
			return fail(err)
		}
		return 0
	}

	series, err := obs.ReadSeriesJSONL(in)
	if err != nil {
		return fail(err)
	}

	if *list {
		for _, f := range series.Fields() {
			fmt.Println(f)
		}
		return 0
	}

	want := selectFields(series.Fields(), *fields)
	if len(want) == 0 {
		return fail(fmt.Errorf("no matching fields (have: %s)", strings.Join(series.Fields(), ", ")))
	}

	cycles := series.Column("cycle")
	title := fmt.Sprintf("%d samples over %d cycles", series.Len(), lastCycle(cycles))
	mode := "cumulative"
	if *rates {
		mode = "per-interval delta"
	}
	tab := &stats.Table{
		ID:      "metrics",
		Title:   fmt.Sprintf("%s (%s)", title, mode),
		Columns: []string{"field", "min", "max", "last", "trend"},
	}
	for _, f := range want {
		col := series.Column(f)
		if *rates {
			col = deltas(col)
		}
		if len(col) == 0 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		tab.AddRow(f, fmtVal(lo), fmtVal(hi), fmtVal(col[len(col)-1]),
			stats.Sparkline(col, *width))
	}
	fmt.Print(tab.String())
	return 0
}

// compareBaselines renders the old→new delta table and applies the
// regression gate, plus the absolute allocs/op ceiling when set.
func compareBaselines(oldPath, newPath string, threshold float64, unitFilter string, maxAllocs float64) int {
	read := func(path string) ([]stats.BenchResult, error) {
		f, err := open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return stats.ReadBenchJSON(f)
	}
	oldRes, err := read(oldPath)
	if err != nil {
		return fail(err)
	}
	newRes, err := read(newPath)
	if err != nil {
		return fail(err)
	}
	deltas := stats.DiffBench(oldRes, newRes)
	if unitFilter != "" {
		wanted := make(map[string]bool)
		for _, u := range strings.Split(unitFilter, ",") {
			wanted[strings.TrimSpace(u)] = true
		}
		kept := deltas[:0]
		for _, d := range deltas {
			if wanted[d.Unit] {
				kept = append(kept, d)
			}
		}
		deltas = kept
	}
	if len(deltas) == 0 {
		return fail(fmt.Errorf("no comparable benchmark dimensions between %s and %s", oldPath, newPath))
	}

	tab := &stats.Table{
		ID:      "bench-compare",
		Title:   fmt.Sprintf("%s -> %s", oldPath, newPath),
		Columns: []string{"benchmark", "unit", "old", "new", "delta", ""},
	}
	worst := 0.0
	var failures []string
	for _, d := range deltas {
		mark := ""
		if reg := d.Regression(); reg > worst {
			worst = reg
		}
		if threshold > 0 && d.Regression() > threshold {
			mark = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s %s %+.1f%%", d.Name, d.Unit, 100*d.Delta))
		}
		tab.AddRow(d.Name, d.Unit, fmtVal(d.Old), fmtVal(d.New),
			fmt.Sprintf("%+.2f%%", 100*d.Delta), mark)
	}
	fmt.Print(tab.String())
	var overCeiling []string
	if maxAllocs > 0 {
		for _, r := range newRes {
			if r.AllocsPerOp > maxAllocs {
				overCeiling = append(overCeiling,
					fmt.Sprintf("%s %.0f allocs/op", r.Name, r.AllocsPerOp))
			}
		}
	}
	if threshold > 0 || maxAllocs > 0 {
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "vpir-metrics: %d dimension(s) regressed beyond %.0f%%: %s\n",
				len(failures), 100*threshold, strings.Join(failures, "; "))
			return 1
		}
		if len(overCeiling) > 0 {
			fmt.Fprintf(os.Stderr, "vpir-metrics: %d benchmark(s) over the %.0f allocs/op ceiling: %s\n",
				len(overCeiling), maxAllocs, strings.Join(overCeiling, "; "))
			return 1
		}
		fmt.Printf("gate ok: worst regression %.2f%% within %.0f%% threshold", 100*worst, 100*threshold)
		if maxAllocs > 0 {
			fmt.Printf("; all benchmarks within %.0f allocs/op", maxAllocs)
		}
		fmt.Println()
	}
	return 0
}

func open(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// selectFields returns the series fields to display, in series order,
// honoring an optional comma-separated subset. "cycle" is the x-axis, not
// a metric, so it is shown only when asked for explicitly.
func selectFields(have []string, subset string) []string {
	if subset == "" {
		out := make([]string, 0, len(have))
		for _, f := range have {
			if f != "cycle" {
				out = append(out, f)
			}
		}
		return out
	}
	wanted := make(map[string]bool)
	for _, f := range strings.Split(subset, ",") {
		wanted[strings.TrimSpace(f)] = true
	}
	var out []string
	for _, f := range have {
		if wanted[f] {
			out = append(out, f)
		}
	}
	return out
}

// deltas converts a cumulative column to per-sample increments; the first
// sample is its own baseline. Gauges simply show their sample-to-sample
// movement.
func deltas(col []float64) []float64 {
	if len(col) == 0 {
		return col
	}
	out := make([]float64, len(col))
	out[0] = col[0]
	for i := 1; i < len(col); i++ {
		out[i] = col[i] - col[i-1]
	}
	return out
}

func lastCycle(cycles []float64) uint64 {
	if len(cycles) == 0 {
		return 0
	}
	return uint64(cycles[len(cycles)-1])
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return stats.F3(v)
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "vpir-metrics: %v\n", err)
	return 1
}
