// Command vpir-trace renders a SimpleScalar-style pipeline diagram for the
// first N instructions of a benchmark or program under a chosen
// configuration — the quickest way to *see* how IR collapses dependence
// chains at decode and how VP overlaps dependent executions.
//
// Usage:
//
//	vpir-trace -bench compress -tech ir -n 40
//	vpir-trace -file prog.s -tech vp -scheme magic -n 60
//	vpir-trace -bench go -tech base -skip 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/technique"
	"github.com/vpir-sim/vpir/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	file := flag.String("file", "", "assembly source file")
	scale := flag.Int("scale", 1, "workload scale")
	tech := flag.String("tech", "base",
		"technique: "+strings.Join(technique.Names(), ", "))
	scheme := flag.String("scheme", "", "vp scheme: magic (default), lvp, stride, 2delta or fcm")
	resolution := flag.String("resolution", "", "vp branch resolution: sb (default) or nsb")
	vlat := flag.Int("vlat", 0, "vp verification latency")
	n := flag.Int("n", 48, "number of instructions to trace")
	cols := flag.Int("cols", 100, "max cycle columns to render")
	flag.Parse()

	var p *prog.Program
	var err error
	switch {
	case *bench != "":
		w, werr := workload.Get(*bench)
		if werr != nil {
			fail(werr)
		}
		p, err = w.Load(*scale)
	case *file != "":
		var src []byte
		if src, err = os.ReadFile(*file); err == nil {
			p, err = asm.Assemble(*file, string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "vpir-trace: need -bench or -file")
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	cfg, err := technique.Resolve(*tech, technique.Knobs{
		Scheme:           *scheme,
		BranchResolution: *resolution,
		VerifyLatency:    *vlat,
	})
	if err != nil {
		fail(err)
	}

	m, err := core.New(p, cfg, 0)
	if err != nil {
		fail(err)
	}
	tr := &core.PipeTracer{Max: *n}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		fail(err)
	}
	fmt.Printf("%s under %q — first %d instructions\n\n", p.Name, cfg.Name(), len(tr.Events))
	tr.Render(os.Stdout, *cols)
	s := m.Stats()
	fmt.Printf("\nwhole run: %d insts in %d cycles (IPC %.3f)\n", s.Committed, s.Cycles, s.IPC())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vpir-trace: %v\n", err)
	os.Exit(1)
}
