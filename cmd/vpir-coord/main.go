// Command vpir-coord fronts a fleet of vpir-server workers as one sweep
// service: POST /v1/sweep is partitioned across the fleet by rendezvous
// hashing (repeated configurations land on the same worker's cache), the
// per-worker NDJSON streams are merged back into deterministic cell
// order, and the output is byte-identical to a single serial server's.
// Failed or silent workers are handled, not reported: circuit breakers
// with /healthz probes, capped jittered retries, hedged re-dispatch of
// stragglers, and — with -local — graceful degradation to in-process
// execution when the whole fleet is down. A -store directory makes
// results durable across coordinator restarts. See docs/distributed.md.
//
// Usage:
//
//	vpir-coord -backends http://w1:8080,http://w2:8080
//	vpir-coord -backends http://w1:8080 -local -store /var/lib/vpir
//	vpir-coord -local                    # no fleet: a one-box sweep service
//	vpir-coord -local -pprof             # expose /debug/pprof/ for profiling
//
// The coordinator serves the same embedded dashboard as a worker (open
// /v1/ui/), proxying POST /v1/trace to the cell's rendezvous worker.
//
// On SIGINT/SIGTERM the coordinator drains: new sweeps are rejected with
// 503 + Retry-After, in-flight ones finish within -drain-timeout, then
// the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/vpir-sim/vpir/internal/coord"
	"github.com/vpir-sim/vpir/internal/resultstore"
	"github.com/vpir-sim/vpir/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8081", "listen address")
	backends := flag.String("backends", "", "comma-separated worker base URLs")
	local := flag.Bool("local", false, "run cells in-process when no healthy backend remains")
	storeDir := flag.String("store", "", "directory for the durable content-addressed result store (empty disables)")
	sweepCells := flag.Int("sweep-cells", coord.DefaultMaxSweepCells, "largest cell count per sweep request")
	cellTimeout := flag.Duration("cell-timeout", coord.DefaultCellTimeout, "per-cell remote attempt deadline")
	hedgeAfter := flag.Duration("hedge-after", coord.DefaultHedgeAfter, "stream silence before hedging its oldest cell")
	stallAfter := flag.Duration("stall-after", 0, "stream silence before declaring it dead (0 = 3x hedge-after)")
	attempts := flag.Int("attempts", coord.DefaultMaxAttempts, "remote attempts per cell before local fallback")
	backoff := flag.Duration("backoff", coord.DefaultBaseBackoff, "base retry backoff")
	maxBackoff := flag.Duration("max-backoff", coord.DefaultMaxBackoff, "retry backoff cap")
	failThreshold := flag.Int("fail-threshold", coord.DefaultFailThreshold, "consecutive failures that open a backend's breaker")
	probeInterval := flag.Duration("probe-interval", coord.DefaultProbeInterval, "health-probe cadence for open breakers")
	heartbeat := flag.Duration("heartbeat", server.DefaultHeartbeat, "output heartbeat interval (negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sweeps")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
	accessLog := flag.Bool("access-log", true, "write JSON access-log lines to stderr")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	var store *resultstore.Store
	if *storeDir != "" {
		var err error
		store, err = resultstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpir-coord:", err)
			return 1
		}
	}
	var localSrv *server.Server
	if *local {
		localSrv = server.New(server.Config{Heartbeat: -1})
	}

	c, err := coord.New(coord.Config{
		Backends:      urls,
		Local:         localSrv,
		Store:         store,
		MaxSweepCells: *sweepCells,
		CellTimeout:   *cellTimeout,
		HedgeAfter:    *hedgeAfter,
		StallAfter:    *stallAfter,
		MaxAttempts:   *attempts,
		BaseBackoff:   *backoff,
		MaxBackoff:    *maxBackoff,
		FailThreshold: *failThreshold,
		ProbeInterval: *probeInterval,
		Heartbeat:     *heartbeat,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpir-coord:", err)
		fmt.Fprintln(os.Stderr, "vpir-coord: pass -backends and/or -local")
		return 1
	}
	defer c.Close()
	var logw io.Writer
	if *accessLog {
		logw = os.Stderr
	}
	handler := server.WithRequestID(c.Handler(), logw)
	if *pprofOn {
		handler = server.WithPprof(handler)
	}
	httpSrv := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpir-coord:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "vpir-coord: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "vpir-coord:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "vpir-coord: %v, draining (up to %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := c.Drain(ctx)
	if localSrv != nil {
		drainErr = errors.Join(drainErr, localSrv.Drain(ctx))
	}
	shutdownErr := httpSrv.Shutdown(ctx)
	if drainErr != nil || (shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed)) {
		fmt.Fprintln(os.Stderr, "vpir-coord: shutdown:", errors.Join(drainErr, shutdownErr))
		return 1
	}
	fmt.Fprintln(os.Stderr, "vpir-coord: drained cleanly")
	return 0
}
