// Command vpir-redundancy runs the §4.3 limit study (Figures 8, 9, 10) on
// the built-in benchmarks or an assembly file.
//
// Usage:
//
//	vpir-redundancy                  # all seven benchmarks
//	vpir-redundancy -bench compress
//	vpir-redundancy -file prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/redundancy"
	"github.com/vpir-sim/vpir/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (default: all)")
	file := flag.String("file", "", "assembly source file instead of a benchmark")
	scale := flag.Int("scale", 1, "workload scale factor")
	maxInsts := flag.Uint64("maxinsts", 0, "instruction cap (0 = full run)")
	dist := flag.Uint64("dist", 50, "producer distance readiness horizon")
	instances := flag.Int("instances", 10_000, "buffered instances per static instruction")
	flag.Parse()

	cfg := redundancy.Config{MaxInstances: *instances, ProdDistance: *dist}

	header := fmt.Sprintf("%-10s %9s | %6s %6s %6s %6s | %7s %7s %7s | %6s %6s",
		"bench", "insts", "uniq%", "rep%", "deriv%", "unacc%", "reused%", "far%", "near%", "redun%", "reuse%")
	fmt.Println(header)

	analyze := func(name string, run func() (*redundancy.Result, error)) {
		r, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-redundancy: %s: %v\n", name, err)
			os.Exit(1)
		}
		rep := float64(r.Repeated)
		if rep == 0 {
			rep = 1
		}
		fmt.Printf("%-10s %9d | %6.1f %6.1f %6.1f %6.1f | %7.1f %7.1f %7.1f | %6.1f %6.1f\n",
			name, r.Total,
			r.Pct(r.Unique), r.Pct(r.Repeated), r.Pct(r.Derivable), r.Pct(r.Unaccounted),
			100*float64(r.ProducersReused)/rep, 100*float64(r.ProdFar)/rep, 100*float64(r.ProdNear)/rep,
			r.Pct(r.Redundant()), r.ReusablePct())
	}

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-redundancy: %v\n", err)
			os.Exit(1)
		}
		p, err := asm.Assemble(*file, string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		analyze(*file, func() (*redundancy.Result, error) {
			return redundancy.Analyze(p, cfg, *maxInsts)
		})
		return
	}

	benches := workload.Names()
	if *bench != "" {
		benches = []string{*bench}
	}
	for _, b := range benches {
		w, err := workload.Get(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-redundancy: %v\n", err)
			os.Exit(1)
		}
		p, err := w.Load(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-redundancy: %v\n", err)
			os.Exit(1)
		}
		analyze(b, func() (*redundancy.Result, error) {
			return redundancy.Analyze(p, cfg, *maxInsts)
		})
	}
	fmt.Println("\nreuse% is the Figure 10 metric: reusable redundancy / all redundancy (paper: 84-97%)")
}
