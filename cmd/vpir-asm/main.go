// Command vpir-asm assembles a source file for the simulator's MIPS-like
// ISA and prints a listing (address, encoding, disassembly), or runs it on
// the functional emulator with -run.
//
// Usage:
//
//	vpir-asm prog.s          # listing
//	vpir-asm -run prog.s     # assemble + execute functionally
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/prog"
)

func main() {
	run := flag.Bool("run", false, "execute the program on the functional emulator")
	maxInsts := flag.Uint64("maxinsts", 100_000_000, "instruction limit for -run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vpir-asm [-run] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpir-asm: %v\n", err)
		os.Exit(1)
	}
	p, err := asm.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}

	if *run {
		c := emu.New(p)
		halted, err := c.Run(*maxInsts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-asm: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(c.Output.String())
		if !halted {
			fmt.Fprintf(os.Stderr, "vpir-asm: instruction limit reached (%d)\n", *maxInsts)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "\n[%d instructions, exit %d]\n", c.InstCount, c.ExitCode)
		return
	}

	fmt.Printf("; %s: %d instructions, %d data bytes, entry %#x\n",
		flag.Arg(0), len(p.Text), len(p.Data), p.Entry)
	for i, w := range p.Text {
		pc := prog.TextBase + uint32(4*i)
		in := isa.Decode(w)
		fmt.Printf("%08x  %08x  %s\n", pc, w, isa.Disasm(&in, pc))
	}
}
