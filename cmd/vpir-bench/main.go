// Command vpir-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	vpir-bench                 # every table and figure, full-length runs
//	vpir-bench -exp fig6       # one experiment
//	vpir-bench -scale 4        # 4x longer workloads
//	vpir-bench -maxinsts 50000 # truncated runs (quick look)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/vpir-sim/vpir/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table6, fig3..fig10) or 'all'")
	scale := flag.Int("scale", 1, "workload scale factor")
	maxInsts := flag.Uint64("maxinsts", 0, "cap dynamic instructions per run (0 = full)")
	serial := flag.Bool("serial", false, "run benchmarks sequentially")
	flag.Parse()

	r := harness.NewRunner()
	r.Scale = *scale
	r.MaxInsts = *maxInsts
	r.Parallel = !*serial

	run := func(e harness.Experiment) {
		start := time.Now()
		tables, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	e, err := harness.Find(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpir-bench: %v\n", err)
		os.Exit(2)
	}
	run(e)
}
