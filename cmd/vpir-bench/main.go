// Command vpir-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	vpir-bench                 # every table and figure, full-length runs
//	vpir-bench -exp fig6       # one experiment
//	vpir-bench -scale 4        # 4x longer workloads
//	vpir-bench -maxinsts 50000 # truncated runs (quick look)
//	vpir-bench -parallel 8     # 8 sweep workers (results identical at any setting)
//	vpir-bench -scale 64 -sample 10 -interval 100000 -warmup 2000
//	                           # paper-scale workloads via checkpointed sampling
//
// With -metrics-dir every underlying simulation additionally writes its
// sampled time series (and event log) into the given directory, one file
// set per (benchmark, configuration); render them with vpir-metrics. The
// -cpuprofile/-memprofile/-trace flags profile the campaign itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"github.com/vpir-sim/vpir/internal/harness"
	"github.com/vpir-sim/vpir/internal/sample"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment id (table1..table6, fig3..fig10) or 'all'")
	scale := flag.Int("scale", 1, "workload scale factor")
	maxInsts := flag.Uint64("maxinsts", 0, "cap dynamic instructions per run (0 = full)")
	serial := flag.Bool("serial", false, "run benchmarks sequentially (same as -parallel 1)")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS); results are identical at any setting")
	sampleEvery := flag.Uint64("sample", 0, "checkpointed sampling: measure 1 interval in every N (0 = off, 1 = 100% coverage)")
	intervalLen := flag.Uint64("interval", 100_000, "sampling: measured interval length in instructions")
	warmup := flag.Uint64("warmup", 0, "sampling: detailed-warmup instructions before each interval (discarded)")
	metricsDir := flag.String("metrics-dir", "", "write per-run observability files (series/events JSONL) into this directory")
	interval := flag.Uint64("metrics-interval", 0, "cycles between metric samples (0 = default 10000)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile of the campaign to this file")
	tracefile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fail(err)
		}
		defer trace.Stop()
	}

	r := harness.NewRunner()
	r.Scale = *scale
	r.MaxInsts = *maxInsts
	r.Parallel = !*serial && *parallel != 1
	r.Parallelism = *parallel
	if *metricsDir != "" {
		r.Obs = &harness.ObsExport{Dir: *metricsDir, Interval: *interval, Events: true}
	}
	if *sampleEvery > 0 {
		r.Sample = &sample.Plan{Interval: *intervalLen, Every: *sampleEvery, Warmup: *warmup}
	}

	runExp := func(e harness.Experiment) int {
		start := time.Now()
		tables, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-bench: %s: %v\n", e.ID, err)
			return 1
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return 0
	}

	if *exp == "all" {
		for _, e := range harness.Experiments() {
			if code := runExp(e); code != 0 {
				return code
			}
		}
	} else {
		e, err := harness.Find(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpir-bench: %v\n", err)
			return 2
		}
		if code := runExp(e); code != 0 {
			return code
		}
	}

	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			return fail(err)
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "vpir-bench: %v\n", err)
	return 1
}
