// Command vpir-server exposes the simulator as an HTTP JSON service: a
// bounded worker pool with per-worker machine reuse behind POST /v1/run, a
// singleflight layer coalescing duplicate in-flight requests, a
// size-bounded LRU result cache, and NDJSON-streamed parameter sweeps
// batched through the harness sweep engine behind POST /v1/sweep. See
// docs/server.md for the API and a curl quickstart.
//
// Usage:
//
//	vpir-server                          # serve on :8080
//	vpir-server -addr :9090 -workers 8   # explicit listen address and pool size
//	vpir-server -cache 4096              # bigger result cache
//	vpir-server -maxinsts 1000000        # clamp per-run instruction counts
//	vpir-server -pprof                   # expose /debug/pprof/ for profiling
//
// The binary also embeds the analysis dashboard: open /v1/ui/ in a
// browser for the pipeline visualizer backed by POST /v1/trace. See
// docs/observability.md.
//
// On SIGINT/SIGTERM the server drains: new run/sweep requests are rejected
// with 503 (and /healthz turns 503 "draining" so load balancers stop
// routing), in-flight requests finish within -drain-timeout, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/vpir-sim/vpir/internal/resultstore"
	"github.com/vpir-sim/vpir/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "run worker pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", server.DefaultCacheEntries, "LRU result cache entries (negative disables)")
	timeout := flag.Duration("timeout", server.DefaultTimeout, "per-simulation wall-clock bound (negative disables)")
	maxInsts := flag.Uint64("maxinsts", 0, "clamp per-run dynamic instruction counts (0 = no cap)")
	maxScale := flag.Int("maxscale", server.DefaultMaxScale, "largest workload scale a request may ask for")
	sweepWorkers := flag.Int("sweep-parallel", 0, "harness workers per sweep request (0 = GOMAXPROCS)")
	sweepCells := flag.Int("sweep-cells", server.DefaultMaxSweepCells, "largest benches x configs grid per sweep request")
	heartbeat := flag.Duration("heartbeat", server.DefaultHeartbeat, "sweep-stream heartbeat interval (negative disables)")
	storeDir := flag.String("store", "", "directory for the durable content-addressed result store (empty disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
	accessLog := flag.Bool("access-log", true, "write JSON access-log lines to stderr")
	flag.Parse()

	var store *resultstore.Store
	if *storeDir != "" {
		var err error
		store, err = resultstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpir-server:", err)
			return 1
		}
	}
	s := server.New(server.Config{
		Workers:          *workers,
		CacheEntries:     *cache,
		Timeout:          *timeout,
		MaxInsts:         *maxInsts,
		MaxScale:         *maxScale,
		SweepParallelism: *sweepWorkers,
		MaxSweepCells:    *sweepCells,
		Heartbeat:        *heartbeat,
		Store:            store,
	})
	var logw io.Writer
	if *accessLog {
		logw = os.Stderr
	}
	handler := server.WithRequestID(s.Handler(), logw)
	if *pprofOn {
		handler = server.WithPprof(handler)
	}
	httpSrv := &http.Server{Handler: handler}

	// Listen before serving so the bound address (meaningful with -addr
	// :0, as the ui-smoke harness uses) can be announced.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpir-server:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "vpir-server: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "vpir-server:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "vpir-server: %v, draining (up to %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first so /healthz flips to 503 and new work is rejected while
	// in-flight simulations finish; then close the listener.
	drainErr := s.Drain(ctx)
	shutdownErr := httpSrv.Shutdown(ctx)
	if drainErr != nil || (shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed)) {
		fmt.Fprintln(os.Stderr, "vpir-server: shutdown:", errors.Join(drainErr, shutdownErr))
		return 1
	}
	fmt.Fprintln(os.Stderr, "vpir-server: drained cleanly")
	return 0
}
