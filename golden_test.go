package vpir

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden snapshots instead of comparing")

// goldenMaxInsts truncates the corpus runs: long enough that every paper
// metric is exercised on real pipeline behavior, short enough that the
// whole benchmarks × registered-techniques corpus stays in tier-1 time
// budgets.
const goldenMaxInsts = 120_000

// goldenConfigs is the corpus axis: every benchmark under every registered
// technique at default knobs, enumerated from the technique registry. The
// label is the registry name, so a newly registered scheme gets corpus
// cells automatically — and TestGoldenCorpusComplete fails until its
// snapshots are generated and committed, so a new scheme can't merge
// unvalidated. The hybrid cells pin the interaction of reuse and
// prediction, which no single-technique cell covers.
type goldenConfig struct {
	Label string
	Opt   Options
}

func goldenConfigs() []goldenConfig {
	var out []goldenConfig
	for _, name := range Techniques() {
		out = append(out, goldenConfig{name, Options{Technique: Technique(name)}})
	}
	return out
}

// goldenRecord pins every paper-relevant number of one (benchmark,
// configuration) cell. The simulator is deterministic, so the comparison
// is exact — floats included; encoding/json round-trips float64 exactly.
type goldenRecord struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`

	Cycles    uint64  `json:"cycles"`
	Committed uint64  `json:"committed"`
	Executed  uint64  `json:"executed"`
	IPC       float64 `json:"ipc"`

	BranchPredRate float64 `json:"branch_pred_rate"`
	ReturnPredRate float64 `json:"return_pred_rate"`

	Squashes         uint64 `json:"squashes"`
	SpuriousSquashes uint64 `json:"spurious_squashes"`

	ReuseResultRate float64 `json:"reuse_result_rate"`
	ReuseAddrRate   float64 `json:"reuse_addr_rate"`
	ExecSquashedPct float64 `json:"exec_squashed_pct"`
	RecoveredPct    float64 `json:"recovered_pct"`

	VPResultPred    float64 `json:"vp_result_pred"`
	VPResultMispred float64 `json:"vp_result_mispred"`
	VPAddrPred      float64 `json:"vp_addr_pred"`
	VPAddrMispred   float64 `json:"vp_addr_mispred"`

	Contention float64 `json:"contention"`

	ExitCode int `json:"exit_code"`
}

func goldenFrom(bench, label string, r Result) goldenRecord {
	return goldenRecord{
		Bench:            bench,
		Config:           label,
		Cycles:           r.Cycles,
		Committed:        r.Committed,
		Executed:         r.Executed,
		IPC:              r.IPC,
		BranchPredRate:   r.BranchPredRate,
		ReturnPredRate:   r.ReturnPredRate,
		Squashes:         r.Squashes,
		SpuriousSquashes: r.SpuriousSquashes,
		ReuseResultRate:  r.ReuseResultRate,
		ReuseAddrRate:    r.ReuseAddrRate,
		ExecSquashedPct:  r.ExecSquashedPct,
		RecoveredPct:     r.RecoveredPct,
		VPResultPred:     r.VPResultPred,
		VPResultMispred:  r.VPResultMispred,
		VPAddrPred:       r.VPAddrPred,
		VPAddrMispred:    r.VPAddrMispred,
		Contention:       r.Contention,
		ExitCode:         r.ExitCode,
	}
}

func goldenPath(bench, label string) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.json", bench, label))
}

// TestGoldenCorpus locks the paper-relevant numbers of every benchmark
// under base, VP and IR against committed snapshots. Any core change that
// silently shifts IPC, squash counts or hit rates fails here; a deliberate
// change regenerates the corpus with `go test -run TestGoldenCorpus
// -update .` and shows up in review as a readable JSON diff.
func TestGoldenCorpus(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, bench := range Benchmarks() {
		for _, gc := range goldenConfigs() {
			bench, gc := bench, gc
			t.Run(bench+"/"+gc.Label, func(t *testing.T) {
				t.Parallel()
				opt := gc.Opt
				opt.MaxInsts = goldenMaxInsts
				res, err := RunBenchmark(bench, 1, opt)
				if err != nil {
					t.Fatal(err)
				}
				got := goldenFrom(bench, gc.Label, res)
				path := goldenPath(bench, gc.Label)

				if *updateGolden {
					data, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}

				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run `go test -run TestGoldenCorpus -update .` to create the corpus)", err)
				}
				var want goldenRecord
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if got != want {
					t.Errorf("%s/%s drifted from the golden corpus (%s).\n got: %s\nwant: %s\n"+
						"If the change is intentional, regenerate with `go test -run TestGoldenCorpus -update .` and commit the diff.",
						bench, gc.Label, path, mustJSON(got), mustJSON(want))
				}
			})
		}
	}
}

// TestGoldenCorpusComplete fails if a benchmark was added without
// extending the corpus (the per-cell subtests above only check files for
// benchmarks they run, so a stale directory would otherwise go unnoticed).
func TestGoldenCorpusComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("corpus being regenerated")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenCorpus -update .` to create the corpus)", err)
	}
	want := make(map[string]bool)
	for _, bench := range Benchmarks() {
		for _, gc := range goldenConfigs() {
			want[fmt.Sprintf("%s_%s.json", bench, gc.Label)] = true
		}
	}
	got := make(map[string]bool)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			got[e.Name()] = true
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("corpus missing %s", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("corpus has stale file %s", name)
		}
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return err.Error()
	}
	return string(b)
}
