package vpir

import "testing"

// FuzzRunSource is the end-to-end never-panic contract: whatever source
// text arrives, under any technique, assembling and simulating it must
// either succeed or return an error — never panic, and never run away
// (MaxInsts bounds the functional pre-run and the timing run; a tight
// watchdog bounds simulated-time livelock). This is exactly the service's
// exposure: /v1/run executes attacker-shaped configurations against the
// pipeline, so the emulator and simulator must be total functions.
//
// Run the short smoke with `make fuzz-smoke`, or dig deeper with
// `go test -fuzz FuzzRunSource -fuzztime 5m .`.
func FuzzRunSource(f *testing.F) {
	seeds := []struct {
		tech uint8
		src  string
	}{
		{0, ".text\nmain: syscall\n"},
		{1, `
        .text
main:   addiu $t0, $zero, 20
loop:   addiu $t0, $t0, -1
        bne   $t0, $zero, loop
        li    $v0, 10
        syscall
`},
		{2, `
        .data
val:    .word 7
        .text
main:   lw $t1, val
        addu $t2, $t1, $t1
        sw $t2, val
        li $v0, 10
        syscall
`},
		{3, ".text\nmain: jal sub\nli $v0, 10\nsyscall\nsub: jr $ra\n"},
		// An infinite retiring loop: MaxInsts must bound it.
		{1, ".text\nmain: j main\n"},
		{0, "garbage that will not assemble"},
	}
	for _, s := range seeds {
		f.Add(s.tech, s.src)
	}
	techniques := []Technique{Base, VP, IR, Hybrid}
	schemes := []string{"magic", "lvp", "stride"}
	f.Fuzz(func(t *testing.T, tech uint8, src string) {
		opt := Options{
			Technique:      techniques[int(tech)%len(techniques)],
			Scheme:         schemes[int(tech/4)%len(schemes)],
			MaxInsts:       2_000,
			WatchdogCycles: 20_000,
		}
		if tech%2 == 1 {
			opt.BranchResolution = "nsb"
			opt.Reexec = "nme"
			opt.VerifyLatency = 1
			opt.LateValidation = true
		}
		res, err := RunSource("fuzz.s", src, opt)
		if err == nil && res.Committed == 0 {
			t.Fatalf("successful run committed nothing: %+v", res)
		}
	})
}
