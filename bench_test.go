package vpir

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/faultinject"
	"github.com/vpir-sim/vpir/internal/harness"
	"github.com/vpir-sim/vpir/internal/sample"
	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Every table and figure of the paper's evaluation has a benchmark that
// regenerates it. Runs are truncated (benchInsts dynamic instructions per
// benchmark) so `go test -bench=.` stays fast; use cmd/vpir-bench for the
// full-length numbers recorded in EXPERIMENTS.md.
const benchInsts = 100_000

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		b.Skip("full experiment benchmark skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(id, 1, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, id) {
			b.Fatalf("experiment %s produced no table", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)   { benchExperiment(b, "table6") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// Raw simulator throughput: simulated cycles and instructions per second
// for each pipeline variant, on the compress kernel. These are the
// benchmarks recorded in BENCH_baseline.json by `make bench`; the Metrics
// variant measures the observability overhead against them (the budget is
// <3% with instrumentation detached — see docs/observability.md).
func benchMachine(b *testing.B, cfg core.Config, observed bool) {
	benchMachineOn(b, "compress", cfg, observed)
}

func benchMachineOn(b *testing.B, bench string, cfg core.Config, observed bool) {
	b.Helper()
	if testing.Short() {
		b.Skip("full-kernel machine benchmark skipped in -short mode")
	}
	w, err := workload.Get(bench)
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		b.Fatal(err)
	}
	var cycles, insts uint64
	for i := 0; i < b.N; i++ {
		m, err := core.New(p, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if observed {
			m.AttachObserver(core.NewObserver(0, 0))
		}
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		s := m.Stats()
		cycles += s.Cycles
		insts += s.Committed
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "siminsts/s")
}

func BenchmarkSimBase(b *testing.B) { benchMachine(b, core.DefaultConfig(), false) }

// BenchmarkSimBaseStall is the stall-heavy counterpart of BenchmarkSimBase:
// the base machine on the chase kernel, whose serial cache-missing loads
// keep the pipeline quiescent for most of its simulated cycles. The miss
// penalty is raised from the paper's 6 cycles to a realistic 60 so the run
// is genuinely memory-bound (the event wheel caps schedulable delays at 63,
// so total load latency — 1 cycle of address generation plus the access —
// must stay under that). This is the cell that guards the quiescence-aware
// cycle skipper's payoff — it must stay well ahead of the same run under
// VPIR_NO_SKIP=1 (see docs/performance.md).
func BenchmarkSimBaseStall(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.DCache.MissLatency = 60
	benchMachineOn(b, "chase", cfg, false)
}

func BenchmarkSimIR(b *testing.B) { benchMachine(b, core.IRChoice(false), false) }
func BenchmarkSimVP(b *testing.B) {
	benchMachine(b, core.VPChoice(vp.Magic, core.SB, core.ME, 1), false)
}

// Per-technique throughput for the extension predictors and the hybrid
// arbitration policies: each registered technique family has a BenchmarkSim*
// cell under bench-check's simcycles/s threshold and allocs/op ceiling, so a
// predictor whose lookup path regresses (or starts allocating) fails the
// perf gate like the paper configurations do.
func BenchmarkSimVPStride(b *testing.B) {
	benchMachine(b, core.VPChoice(vp.Stride, core.SB, core.ME, 1), false)
}
func BenchmarkSimVP2Delta(b *testing.B) {
	benchMachine(b, core.VPChoice(vp.TwoDelta, core.SB, core.ME, 1), false)
}
func BenchmarkSimVPFCM(b *testing.B) {
	benchMachine(b, core.VPChoice(vp.FCM, core.SB, core.ME, 1), false)
}
func BenchmarkSimHybrid(b *testing.B) {
	benchMachine(b, core.HybridChoice(vp.Magic, core.SB, core.ME, 1), false)
}
func BenchmarkSimHybridConf(b *testing.B) {
	benchMachine(b, core.HybridConfChoice(vp.Magic, core.SB, core.ME, 1), false)
}

// BenchmarkSimBaseMetrics is the instrumented counterpart of
// BenchmarkSimBase: same machine with an Observer attached at the default
// sampling interval, to keep the cost of enabled observability visible.
func BenchmarkSimBaseMetrics(b *testing.B) { benchMachine(b, core.DefaultConfig(), true) }

// benchMachineReset is benchMachine on a reused machine: one core.New,
// then Machine.Reset per iteration. The gap to the corresponding cold
// benchmark is what a sweep worker or server pool saves per run by pooling
// machines (construction and the functional pre-run amortize away).
func benchMachineReset(b *testing.B, cfg core.Config) {
	b.Helper()
	if testing.Short() {
		b.Skip("full-kernel machine benchmark skipped in -short mode")
	}
	w, err := workload.Get("compress")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(p, cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	var cycles, insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		s := m.Stats()
		cycles += s.Cycles
		insts += s.Committed
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "siminsts/s")
}

func BenchmarkSimBaseReset(b *testing.B) { benchMachineReset(b, core.DefaultConfig()) }
func BenchmarkSimIRReset(b *testing.B)   { benchMachineReset(b, core.IRChoice(false)) }
func BenchmarkSimVPReset(b *testing.B) {
	benchMachineReset(b, core.VPChoice(vp.Magic, core.SB, core.ME, 1))
}

// Fault-injection campaign throughput: how long a full deterministic smoke
// campaign (baselines + injected runs + classification) takes end to end.
func BenchmarkFaultCampaign(b *testing.B) {
	if testing.Short() {
		b.Skip("fault campaign skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		c := faultinject.SmokeCampaign(1)
		reports, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := faultinject.Summarize(reports); !ok {
			b.Fatal("smoke campaign verdict FAIL")
		}
	}
}

// Fast-forward throughput: the functional emulator with predictor/cache/
// RB warming and checkpoint capture running, i.e. what sampled simulation
// pays per skipped instruction. The gap to BenchmarkEmulator is the cost
// of warming; the gap to BenchmarkSimBase is the speedup ceiling sampling
// can buy.
func BenchmarkEmuFastForward(b *testing.B) {
	if testing.Short() {
		b.Skip("fast-forward benchmark skipped in -short mode")
	}
	w, err := workload.Get("gcc")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		b.Fatal(err)
	}
	plan := sample.Plan{Interval: 200_000, Every: 1, Warmup: 2_000}
	cfg := core.DefaultConfig()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ff, err := sample.FastForward(p, cfg, plan, 0)
		if err != nil {
			b.Fatal(err)
		}
		insts += ff.TotalInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSampledSpeedup is the sampling throughput gate on a paper-scale
// workload (gcc ×64 ≈ 65M dynamic instructions): effective simulated
// cycles per second — whole-program estimated cycles over wall time — of a
// checkpointed sampled run fanned across 8 workers, against the serial
// detailed simulation rate measured on the same machine. The run fails
// outright below 5×, so `make bench-check` (which runs this benchmark
// standalone) guards the speedup, not just its drift. Deliberately outside
// the BENCH_baseline alloc gate: a 65M-inst fan-out allocates interval
// oracles by design.
func BenchmarkSampledSpeedup(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale sampling benchmark skipped in -short mode")
	}
	// Serial detailed reference rate, on a truncated run of the same
	// scaled workload so the measurement costs seconds, not minutes.
	w, err := workload.Get("gcc")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Load(64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	m, err := core.New(p, cfg, 2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	refStart := time.Now()
	if err := m.Run(0); err != nil {
		b.Fatal(err)
	}
	refRate := float64(m.Stats().Cycles) / time.Since(refStart).Seconds()

	plan := sample.Plan{Interval: 100_000, Every: 20, Warmup: 2_000}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner()
		r.Scale = 64
		r.Parallel = true
		r.Parallelism = 8
		sum, err := r.RunSampled(context.Background(), "gcc", cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		if sum.TotalInsts < 50_000_000 {
			b.Fatalf("workload too small for the gate: %d insts", sum.TotalInsts)
		}
		cycles += sum.Stats.Cycles
	}
	rate := float64(cycles) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "simcycles/s")
	b.ReportMetric(rate/refRate, "speedup")
	if rate < 5*refRate {
		b.Fatalf("sampled throughput %.3g simcycles/s is under 5x the serial detailed rate %.3g", rate, refRate)
	}
}

// Functional emulator throughput.
func BenchmarkEmulator(b *testing.B) {
	w, err := workload.Get("gcc")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	for i := 0; i < b.N; i++ {
		c := emu.New(p)
		if _, err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		insts += c.InstCount
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}
