// Package vpir is a reproduction, as a library, of "Understanding the
// Differences Between Value Prediction and Instruction Reuse" (Sodani &
// Sohi, MICRO 1998).
//
// It provides a 4-way out-of-order superscalar timing simulator (the
// paper's Table 1 machine) with Value Prediction (VP_Magic / VP_LVP, the
// SB/NSB branch-resolution and ME/NME re-execution policies, configurable
// verification latency) and Instruction Reuse (scheme S_{n+d} with the
// paper's augmentations), seven scaled benchmark kernels standing in for
// the SPEC95 integer suite, the §4.3 redundancy limit study, and a harness
// that regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	res, err := vpir.RunBenchmark("compress", 1, vpir.Options{Technique: vpir.IR})
//	fmt.Println(res.IPC, res.ReuseResultRate)
//
// Everything deeper (the assembler, the pipeline, the reuse buffer) lives
// in internal packages; this package is the stable surface.
package vpir

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/harness"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/redundancy"
	"github.com/vpir-sim/vpir/internal/sample"
	"github.com/vpir-sim/vpir/internal/server"
	"github.com/vpir-sim/vpir/internal/technique"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Technique selects the redundancy mechanism integrated into the pipeline.
// Any name registered in the technique registry is valid; the constants
// below name the built-in set (see Techniques for the live list).
type Technique string

const (
	Base   Technique = "base"   // plain superscalar
	VP     Technique = "vp"     // value prediction (scheme selectable)
	IR     Technique = "ir"     // instruction reuse
	Hybrid Technique = "hybrid" // IR first, VP on reuse misses (extension)

	// Scheme-pinned value predictors (extensions beyond the paper's Magic
	// and LVP schemes; equivalent to VP with the matching Scheme knob).
	VPStride Technique = "vp_stride" // eager stride predictor
	VP2Delta Technique = "vp_2delta" // 2-delta stride (adopt stride on repeat)
	VPFCM    Technique = "vp_fcm"    // two-level finite context method

	// HybridConf arbitrates reuse vs. prediction by confidence: a value
	// prediction is only used at saturated confidence, and address
	// prediction is skipped when the reuse test already supplied the
	// address.
	HybridConf Technique = "hybrid_conf"
)

// Techniques lists every registered technique name (sorted). New schemes
// registered through internal/technique appear here automatically, and the
// golden corpus enumerates exactly this list.
func Techniques() []string { return technique.Names() }

// TechniqueDesc returns the one-line description of a registered technique
// ("" for unknown names).
func TechniqueDesc(name string) string {
	t, ok := technique.Lookup(name)
	if !ok {
		return ""
	}
	return t.Desc
}

// Options configures a simulation. The zero value is the base machine.
type Options struct {
	Technique Technique

	// VP knobs (§4.1.4 of the paper). Scheme is "magic" (default), "lvp",
	// "stride", "2delta" or "fcm" (the computed extension schemes covering
	// the paper's "derivable" class); BranchResolution is "sb" (default) or
	// "nsb"; Reexec is "me" (default) or "nme"; VerifyLatency is the
	// VP-verification latency. Knob validation is strict: setting a knob
	// the selected technique does not consume is an error, never silently
	// ignored.
	Scheme           string
	BranchResolution string
	Reexec           string
	VerifyLatency    int

	// IR knob: LateValidation defers reuse benefits to the execute stage
	// (the Figure 3 "late" experiment).
	LateValidation bool

	// MaxInsts caps the simulated dynamic instruction count (0 = run the
	// program to completion).
	MaxInsts uint64

	// WatchdogCycles overrides the pipeline livelock watchdog: when more
	// than this many cycles pass without a retirement the run aborts with
	// a structured error instead of spinning forever. 0 keeps the default
	// (core.DefaultWatchdog); negative disables the watchdog.
	WatchdogCycles int64

	// Timeout bounds the simulation's wall-clock time (0 = unbounded).
	Timeout time.Duration

	// Metrics, when non-nil, attaches the time-resolved observability
	// instrumentation to the run: an interval sampler of derived series
	// (IPC, occupancies, hit rates) and a bounded ring of structured
	// pipeline events. The collected data comes back in Result.Obs. A nil
	// Metrics keeps the fully uninstrumented fast path.
	Metrics *MetricsOptions

	// Sample, when non-nil, switches the run to checkpointed sampled
	// simulation: one functional pass with functional warming captures
	// checkpoints, the sampled intervals are simulated in detail in parallel,
	// and the per-interval statistics are stitched into whole-program
	// estimates (Result.Sample carries the coverage and confidence
	// intervals). A plan covering the whole program in one interval is
	// bit-identical to a non-sampled run. Only benchmark runs can be sampled
	// (RunSource rejects it), and Metrics is unsupported under sampling.
	Sample *SampleOptions
}

// SampleOptions is a checkpointed-sampling plan (see docs/sampling.md).
type SampleOptions struct {
	// Interval is the length of each measured interval in dynamic
	// instructions (required).
	Interval uint64
	// Every measures one interval out of this many (0 or 1 = all of them,
	// i.e. 100% coverage; k>1 ≈ 1/k coverage).
	Every uint64
	// Warmup is the number of detailed-warmup instructions simulated before
	// each measured interval and then discarded from its statistics.
	Warmup uint64
}

// MetricsOptions tunes the observability instrumentation (see
// docs/observability.md).
type MetricsOptions struct {
	// Interval is the sampling period in cycles (0 = the default 10k).
	Interval uint64
	// EventCap bounds the structured event ring (0 = the default 4096);
	// when full, the oldest events are dropped and counted.
	EventCap int
}

// config maps the public Options onto a machine configuration via the
// wire options, which resolve through the technique registry — one
// name/knob mapping shared by the library, the HTTP API and the CLIs,
// so they cannot drift.
func (o Options) config() (core.Config, error) {
	return server.SimOptions{
		Technique:        string(o.Technique),
		Scheme:           o.Scheme,
		BranchResolution: o.BranchResolution,
		Reexec:           o.Reexec,
		VerifyLatency:    o.VerifyLatency,
		LateValidation:   o.LateValidation,
		WatchdogCycles:   o.WatchdogCycles,
	}.Config()
}

// Result is the outcome of one simulation.
type Result struct {
	Config string // configuration label, e.g. "VP_Magic ME-SB vlat=0"

	Cycles    uint64
	Committed uint64
	Executed  uint64
	IPC       float64

	// CyclesSkipped is how many of Cycles the quiescence-aware skipper
	// fast-forwarded instead of simulating cycle by cycle. Purely a
	// simulator-performance observation — results are bit-identical with
	// skipping off — and zero for sampled runs, whose stitched statistics
	// have no single underlying machine.
	CyclesSkipped uint64

	BranchPredRate float64 // %
	ReturnPredRate float64 // %

	Squashes         uint64
	SpuriousSquashes uint64

	// IR metrics (% of committed instructions / memory ops).
	ReuseResultRate float64
	ReuseAddrRate   float64
	ExecSquashedPct float64
	RecoveredPct    float64

	// VP metrics (% of committed instructions / memory ops).
	VPResultPred    float64
	VPResultMispred float64
	VPAddrPred      float64
	VPAddrMispred   float64
	ExecTimesPct    [3]float64 // executed once / twice / three-or-more

	Contention               float64
	MeanBranchResolveLatency float64

	Output   string
	ExitCode int

	// Obs carries the observability data when Options.Metrics was set;
	// nil otherwise.
	Obs *Obs

	// Sample carries the sampling summary when Options.Sample was set; nil
	// otherwise. All the headline fields above are then whole-program
	// estimates (exact sums at 100% coverage, ratio-scaled otherwise).
	Sample *SampleSummary
}

// SampleSummary describes how a sampled run covered the program.
type SampleSummary struct {
	Intervals    int
	TotalInsts   uint64
	SampledInsts uint64
	Coverage     float64 // SampledInsts / TotalInsts
	Exact        bool    // true when every instruction was measured
	// CIs are two-sided 95% confidence intervals of the derived metrics
	// across the sampled intervals.
	CIs []MetricCI
}

// MetricCI is one metric's confidence interval: Mean ± Half covers the
// metric's per-interval values at 95% confidence.
type MetricCI struct {
	Name string
	Mean float64
	Half float64
}

// Obs is the observability payload of an instrumented run: the sampled
// time series, the structured event ring, and the metric registry, with
// exporters for each. See docs/observability.md for the formats.
type Obs struct {
	o *core.Observer
}

// Samples is the number of interval samples collected (including the
// final flush at halt).
func (ob *Obs) Samples() int { return ob.o.Series().Len() }

// SampleInterval is the effective sampling period in cycles.
func (ob *Obs) SampleInterval() uint64 { return ob.o.Interval() }

// SampleFields names the series columns in export order ("cycle" first).
func (ob *Obs) SampleFields() []string { return ob.o.Series().Fields() }

// EventsBuffered is how many events the ring currently holds; EventsDropped
// is how many older ones were overwritten.
func (ob *Obs) EventsBuffered() int   { return ob.o.Events().Len() }
func (ob *Obs) EventsDropped() uint64 { return ob.o.Events().Dropped() }

// WriteSeriesJSONL writes the sampled time series as JSON Lines, one
// object per sample with deterministic key order.
func (ob *Obs) WriteSeriesJSONL(w io.Writer) error { return ob.o.Series().WriteJSONL(w) }

// WriteSeriesCSV writes the sampled time series as CSV.
func (ob *Obs) WriteSeriesCSV(w io.Writer) error { return ob.o.Series().WriteCSV(w) }

// WriteEventsJSONL writes the buffered structured events as JSON Lines.
func (ob *Obs) WriteEventsJSONL(w io.Writer) error { return ob.o.Events().WriteJSONL(w) }

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (a final snapshot, suitable for node-exporter-style
// textfile collection).
func (ob *Obs) WritePrometheus(w io.Writer) error { return ob.o.Registry().WritePrometheus(w) }

func resultFrom(m *core.Machine) Result {
	res := resultFromStats(m.Config().Name(), m.Stats(), m.Output(), m.ExitCode())
	res.CyclesSkipped = m.CyclesSkipped()
	if o := m.Observer(); o != nil {
		res.Obs = &Obs{o: o}
	}
	return res
}

// resultFromStats derives the public result from raw counters; sampled runs
// use it with stitched whole-program statistics.
func resultFromStats(config string, s core.Stats, output string, exitCode int) Result {
	rp, rm := s.VPResultRates()
	ap, am := s.VPAddrRates()
	return Result{
		Config:                   config,
		Cycles:                   s.Cycles,
		Committed:                s.Committed,
		Executed:                 s.Executed,
		IPC:                      s.IPC(),
		BranchPredRate:           s.BranchPredRate(),
		ReturnPredRate:           s.ReturnPredRate(),
		Squashes:                 s.Squashes,
		SpuriousSquashes:         s.SpuriousSquashes,
		ReuseResultRate:          s.ReuseResultRate(),
		ReuseAddrRate:            s.ReuseAddrRate(),
		ExecSquashedPct:          s.ExecSquashedPct(),
		RecoveredPct:             s.RecoveredPct(),
		VPResultPred:             rp,
		VPResultMispred:          rm,
		VPAddrPred:               ap,
		VPAddrMispred:            am,
		ExecTimesPct:             s.ExecTimesPct(),
		Contention:               s.Contention(),
		MeanBranchResolveLatency: s.MeanBrResolveLat(),
		Output:                   output,
		ExitCode:                 exitCode,
	}
}

// Benchmarks returns the seven benchmark names in the paper's order.
func Benchmarks() []string { return workload.Names() }

// BenchmarkInfo describes one benchmark kernel.
type BenchmarkInfo struct {
	Name string
	Desc string
}

// BenchmarkInfos lists the benchmarks with their one-line descriptions.
func BenchmarkInfos() []BenchmarkInfo {
	out := make([]BenchmarkInfo, 0, len(workload.Names()))
	for _, n := range workload.Names() {
		w, err := workload.Get(n)
		if err != nil {
			continue
		}
		out = append(out, BenchmarkInfo{Name: w.Name, Desc: w.Desc})
	}
	return out
}

func runProgram(p *prog.Program, opt Options) (Result, error) {
	if opt.Sample != nil {
		return Result{}, fmt.Errorf("vpir: sampling requires a registered benchmark (use RunBenchmark)")
	}
	cfg, err := opt.config()
	if err != nil {
		return Result{}, err
	}
	m, err := core.New(p, cfg, opt.MaxInsts)
	if err != nil {
		return Result{}, err
	}
	if opt.Metrics != nil {
		m.AttachObserver(core.NewObserver(opt.Metrics.Interval, opt.Metrics.EventCap))
	}
	if opt.Timeout > 0 {
		// Drive the machine in slices so the wall-clock deadline is
		// observed; the watchdog separately bounds simulated-time livelock.
		deadline := time.Now().Add(opt.Timeout)
		const slice = 200_000
		for !m.Halted() {
			if time.Now().After(deadline) {
				return Result{}, fmt.Errorf("vpir: %s timed out after %v at cycle %d",
					cfg.Name(), opt.Timeout, m.Cycle())
			}
			if err := m.Run(slice); err != nil {
				return Result{}, err
			}
		}
	} else if err := m.Run(0); err != nil {
		return Result{}, err
	}
	return resultFrom(m), nil
}

// RunBenchmark simulates one of the built-in benchmarks at the given scale
// (1 = the standard ~0.2-1M instruction runs; larger scales multiply the
// kernels' iteration counts, the paper-scale workload mode that sampling
// makes tractable).
func RunBenchmark(name string, scale int, opt Options) (Result, error) {
	if scale < 1 {
		scale = 1
	}
	if opt.Sample != nil {
		return runBenchmarkSampled(name, scale, opt)
	}
	w, err := workload.Get(name)
	if err != nil {
		return Result{}, err
	}
	p, err := w.Load(scale)
	if err != nil {
		return Result{}, err
	}
	return runProgram(p, opt)
}

// runBenchmarkSampled is the checkpointed-sampling path: the harness fans
// the plan's intervals across a worker pool and stitches the results.
func runBenchmarkSampled(name string, scale int, opt Options) (Result, error) {
	if opt.Metrics != nil {
		return Result{}, fmt.Errorf("vpir: Metrics instrumentation is not supported with Sample")
	}
	cfg, err := opt.config()
	if err != nil {
		return Result{}, err
	}
	r := harness.NewRunner()
	r.Scale = scale
	r.MaxInsts = opt.MaxInsts
	r.Timeout = opt.Timeout
	plan := sample.Plan{Interval: opt.Sample.Interval, Every: opt.Sample.Every, Warmup: opt.Sample.Warmup}
	sum, err := r.RunSampled(context.Background(), name, cfg, plan)
	if err != nil {
		return Result{}, err
	}
	res := resultFromStats(cfg.Name(), sum.Stats, sum.Output, sum.ExitCode)
	res.Sample = sampleSummary(sum)
	return res, nil
}

func sampleSummary(sum *sample.Summary) *SampleSummary {
	out := &SampleSummary{
		Intervals:    sum.Intervals,
		TotalInsts:   sum.TotalInsts,
		SampledInsts: sum.SampledInsts,
		Coverage:     sum.Coverage,
		Exact:        sum.Exact,
	}
	for _, ci := range sum.CIs {
		out.CIs = append(out.CIs, MetricCI{Name: ci.Name, Mean: ci.Mean, Half: ci.Half})
	}
	return out
}

// RunSource assembles the given assembly program (see the README for the
// dialect) and simulates it.
func RunSource(name, source string, opt Options) (Result, error) {
	p, err := asm.Assemble(name, source)
	if err != nil {
		return Result{}, err
	}
	return runProgram(p, opt)
}

// Assemble checks a program without running it; it returns the number of
// instructions and data bytes, or the assembly errors.
func Assemble(name, source string) (textWords, dataBytes int, err error) {
	p, err := asm.Assemble(name, source)
	if err != nil {
		return 0, 0, err
	}
	return len(p.Text), len(p.Data), nil
}

// RegisterBenchmark adds a custom workload so it can be used with
// RunBenchmark and the experiment harness. golden may be nil if no
// self-check is wanted.
func RegisterBenchmark(name, desc, source string, golden func() string) error {
	return workload.Register(&workload.Workload{
		Name:   name,
		Desc:   desc,
		Source: func(int) string { return source },
		Golden: func(int) string {
			if golden == nil {
				return ""
			}
			return golden()
		},
	})
}

// Redundancy is the §4.3 limit study result for one benchmark.
type Redundancy struct {
	Total       uint64
	UniquePct   float64
	RepeatedPct float64
	DerivedPct  float64
	UnaccPct    float64

	ProducersReusedPct float64 // of repeated
	ProdFarPct         float64
	ProdNearPct        float64

	RedundantPct float64
	ReusablePct  float64 // of all instructions
	// ReusableOfRedundant is the Figure 10 headline (84-97% in the paper).
	ReusableOfRedundant float64
}

// AnalyzeRedundancy runs the limit study on one benchmark.
func AnalyzeRedundancy(name string, scale int, maxInsts uint64) (Redundancy, error) {
	w, err := workload.Get(name)
	if err != nil {
		return Redundancy{}, err
	}
	if scale < 1 {
		scale = 1
	}
	p, err := w.Load(scale)
	if err != nil {
		return Redundancy{}, err
	}
	r, err := redundancy.Analyze(p, redundancy.DefaultConfig(), maxInsts)
	if err != nil {
		return Redundancy{}, err
	}
	rep := float64(r.Repeated)
	if rep == 0 {
		rep = 1
	}
	return Redundancy{
		Total:               r.Total,
		UniquePct:           r.Pct(r.Unique),
		RepeatedPct:         r.Pct(r.Repeated),
		DerivedPct:          r.Pct(r.Derivable),
		UnaccPct:            r.Pct(r.Unaccounted),
		ProducersReusedPct:  100 * float64(r.ProducersReused) / rep,
		ProdFarPct:          100 * float64(r.ProdFar) / rep,
		ProdNearPct:         100 * float64(r.ProdNear) / rep,
		RedundantPct:        r.Pct(r.Redundant()),
		ReusablePct:         r.Pct(r.Reusable),
		ReusableOfRedundant: r.ReusablePct(),
	}, nil
}

// Experiments lists the reproducible paper tables and figures.
func Experiments() []string {
	var out []string
	for _, e := range harness.Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// RunExperiment regenerates one paper table/figure and returns it rendered
// as text. maxInsts caps each benchmark run (0 = full runs; the paper-shaped
// standard), scale scales the workloads.
func RunExperiment(id string, scale int, maxInsts uint64) (string, error) {
	e, err := harness.Find(id)
	if err != nil {
		return "", err
	}
	r := harness.NewRunner()
	if scale >= 1 {
		r.Scale = scale
	}
	r.MaxInsts = maxInsts
	tables, err := e.Run(r)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, t := range tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String(), nil
}

// TracePipeline runs a benchmark under the given options with a pipeline
// tracer attached and returns a rendered per-instruction diagram of the
// first n instructions (fetch/decode/issue/complete/commit, with reuse and
// squash markers). A quick way to see how IR collapses dependence chains at
// decode and how VP overlaps dependent executions.
func TracePipeline(bench string, scale int, opt Options, n int) (string, error) {
	w, err := workload.Get(bench)
	if err != nil {
		return "", err
	}
	if scale < 1 {
		scale = 1
	}
	p, err := w.Load(scale)
	if err != nil {
		return "", err
	}
	cfg, err := opt.config()
	if err != nil {
		return "", err
	}
	m, err := core.New(p, cfg, opt.MaxInsts)
	if err != nil {
		return "", err
	}
	tr := &core.PipeTracer{Max: n}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		return "", err
	}
	var b strings.Builder
	tr.Render(&b, 120)
	return b.String(), nil
}

// ServerOptions tunes the simulation-as-a-service front-end (see
// docs/server.md for the API and the caching/batching/shutdown contract).
// The zero value serves on :8080 with GOMAXPROCS workers, a 1024-entry
// result cache and a 2-minute per-simulation wall-clock bound.
type ServerOptions struct {
	// Addr is the listen address (default ":8080"); only used by Serve.
	Addr string
	// Workers bounds how many /v1/run simulations execute concurrently
	// (0 = GOMAXPROCS). Each worker reuses machines across requests.
	Workers int
	// CacheEntries bounds the LRU result cache (0 = 1024 default;
	// negative disables caching).
	CacheEntries int
	// Timeout bounds each simulation's wall-clock time (0 = 2-minute
	// default; negative disables the bound).
	Timeout time.Duration
	// MaxInsts caps the dynamic instruction count a request may ask for;
	// larger (or unbounded) requests are clamped. 0 = no cap.
	MaxInsts uint64
	// MaxScale caps the workload scale factor a request may ask for
	// (0 = 16).
	MaxScale int
	// SweepParallelism is the harness worker count serving each /v1/sweep
	// request (0 = GOMAXPROCS).
	SweepParallelism int
}

func (o ServerOptions) serverConfig() server.Config {
	return server.Config{
		Workers:          o.Workers,
		CacheEntries:     o.CacheEntries,
		Timeout:          o.Timeout,
		MaxInsts:         o.MaxInsts,
		MaxScale:         o.MaxScale,
		SweepParallelism: o.SweepParallelism,
	}
}

// ServeHandler builds the simulation service and returns its HTTP handler
// together with a drain function: calling drain rejects new run/sweep
// requests with 503, waits for in-flight ones (bounded by the context),
// and tears down the worker pool. Use it to mount the service into an
// existing mux or server; Serve is the one-call version.
func ServeHandler(opt ServerOptions) (http.Handler, func(context.Context) error) {
	s := server.New(opt.serverConfig())
	return s.Handler(), s.Drain
}

// Serve runs the simulation service on opt.Addr, blocking like
// http.ListenAndServe. For graceful shutdown control, use ServeHandler
// with your own http.Server (cmd/vpir-server does exactly that).
func Serve(opt ServerOptions) error {
	h, _ := ServeHandler(opt)
	addr := opt.Addr
	if addr == "" {
		addr = ":8080"
	}
	return (&http.Server{Addr: addr, Handler: h}).ListenAndServe()
}
