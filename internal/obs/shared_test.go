package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestSharedConcurrent(t *testing.T) {
	s := NewShared()
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Inc("reqs")
				s.Add("bytes", 10)
				s.AddGauge("inflight", 1)
				s.AddGauge("inflight", -1)
				s.Set("last", float64(i))
				s.Observe("lat", []float64{1, 10}, float64(i%20))
				// Interleave reads and exports with the writes; -race
				// verifies the locking.
				_ = s.Counter("reqs")
				if i%100 == 0 {
					var b strings.Builder
					if err := s.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := s.Counter("reqs"); got != goroutines*perG {
		t.Errorf("reqs = %d, want %d", got, goroutines*perG)
	}
	if got := s.Counter("bytes"); got != goroutines*perG*10 {
		t.Errorf("bytes = %d, want %d", got, goroutines*perG*10)
	}
	if got := s.Gauge("inflight"); got != 0 {
		t.Errorf("inflight = %v, want 0", got)
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"vpir_reqs_total 8000", "vpir_inflight 0", "vpir_lat_count 8000"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSharedNilSafe(t *testing.T) {
	var s *Shared
	s.Inc("x")
	s.Add("x", 2)
	s.Set("g", 1)
	s.AddGauge("g", 1)
	s.Observe("h", []float64{1}, 0.5)
	if s.Counter("x") != 0 || s.Gauge("g") != 0 {
		t.Error("nil Shared returned nonzero values")
	}
	if err := s.WritePrometheus(nil); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}
