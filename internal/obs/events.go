package obs

import (
	"fmt"
	"io"
)

// EventKind classifies structured simulator events.
type EventKind uint8

const (
	// EvSquash: a control-flow squash. A = redirect target PC, B = 1 when
	// the redirect was spurious (toward a non-final direction).
	EvSquash EventKind = iota
	// EvVPMispredict: a value prediction failed verification. A = cycles
	// the wrong value was live (decode to verify), B = number of
	// executions the instruction had performed by then.
	EvVPMispredict
	// EvReuseHit: the reuse test fully matched at decode. A = reused
	// result value, B = 1 when the hit recovered squashed wrong-path work.
	EvReuseHit
	// EvReuseAddrHit: address-only reuse for a memory op. A = reused
	// effective address.
	EvReuseAddrHit
	// EvReuseInvalidate: a committing store killed buffered load results.
	// A = number of reuse-buffer entries invalidated.
	EvReuseInvalidate
	// EvWatchdog: the livelock watchdog tripped. A = stalled cycles.
	EvWatchdog
	// EvFault: an oracle divergence was detected at commit (a simulator
	// bug or an injected architectural fault).
	EvFault
)

var eventKindNames = [...]string{
	EvSquash:          "squash",
	EvVPMispredict:    "vp_mispredict",
	EvReuseHit:        "reuse_hit",
	EvReuseAddrHit:    "reuse_addr_hit",
	EvReuseInvalidate: "reuse_invalidate",
	EvWatchdog:        "watchdog",
	EvFault:           "fault",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one structured simulator event. A and B are kind-specific
// arguments (documented per kind); Note carries an optional static
// description such as the diverging field name.
type Event struct {
	Cycle uint64
	Kind  EventKind
	PC    uint32
	Seq   uint64
	A, B  uint64
	Note  string
}

// EventLog is a bounded ring buffer of events. When full, the oldest
// event is overwritten and Dropped is incremented, so long runs can log
// without unbounded memory. A nil *EventLog discards appends.
type EventLog struct {
	cap     int
	events  []Event
	next    int
	wrapped bool
	dropped uint64
	counts  [len(eventKindNames)]uint64
}

// NewEventLog builds a log bounded to capacity events (min 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{cap: capacity}
}

// Append records an event; no-op on a nil receiver.
func (l *EventLog) Append(e Event) {
	if l == nil {
		return
	}
	if int(e.Kind) < len(l.counts) {
		l.counts[e.Kind]++
	}
	if len(l.events) < l.cap {
		l.events = append(l.events, e)
		return
	}
	l.events[l.next] = e
	l.next = (l.next + 1) % l.cap
	l.wrapped = true
	l.dropped++
}

// Len returns the number of buffered events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Dropped returns how many events were overwritten by the ring.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Count returns how many events of the kind were ever appended, including
// ones the ring has since overwritten.
func (l *EventLog) Count(k EventKind) uint64 {
	if l == nil || int(k) >= len(l.counts) {
		return 0
	}
	return l.counts[k]
}

// Events returns the buffered events oldest-first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	if !l.wrapped {
		return append([]Event(nil), l.events...)
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	return append(out, l.events[:l.next]...)
}

// EventJSON is the wire form of one Event, as served by the dashboard's
// /v1/trace endpoint. PC is rendered as a zero-padded hex string so the
// UI never re-derives address formatting.
type EventJSON struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	PC    string `json:"pc"`
	Seq   uint64 `json:"seq"`
	A     uint64 `json:"a,omitempty"`
	B     uint64 `json:"b,omitempty"`
	Note  string `json:"note,omitempty"`
}

// EventLogJSON is the wire form of a whole EventLog: the buffered window
// oldest-first, plus the lifetime per-kind totals (which include events
// the ring has since overwritten) and the overwrite count, so a consumer
// can tell a complete log from a window.
type EventLogJSON struct {
	Dropped uint64            `json:"dropped,omitempty"`
	Counts  map[string]uint64 `json:"counts,omitempty"`
	Events  []EventJSON       `json:"events"`
}

// JSON renders the log in wire form; a nil log renders as an empty window.
func (l *EventLog) JSON() EventLogJSON {
	out := EventLogJSON{Events: []EventJSON{}}
	if l == nil {
		return out
	}
	out.Dropped = l.dropped
	for k, n := range l.counts {
		if n == 0 {
			continue
		}
		if out.Counts == nil {
			out.Counts = make(map[string]uint64)
		}
		out.Counts[EventKind(k).String()] = n
	}
	for _, e := range l.Events() {
		out.Events = append(out.Events, EventJSON{
			Cycle: e.Cycle,
			Kind:  e.Kind.String(),
			PC:    fmt.Sprintf("0x%08x", e.PC),
			Seq:   e.Seq,
			A:     e.A,
			B:     e.B,
			Note:  e.Note,
		})
	}
	return out
}

// WriteJSONL writes the buffered events oldest-first, one JSON object per
// line.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	for _, e := range l.Events() {
		line := fmt.Sprintf(`{"cycle":%d,"kind":%q,"pc":"0x%08x","seq":%d,"a":%d,"b":%d`,
			e.Cycle, e.Kind.String(), e.PC, e.Seq, e.A, e.B)
		if e.Note != "" {
			line += fmt.Sprintf(`,"note":%q`, e.Note)
		}
		if _, err := io.WriteString(w, line+"}\n"); err != nil {
			return err
		}
	}
	return nil
}
