package obs

import (
	"fmt"
	"io"
	"strings"
)

// Label is one Prometheus label pair. Keys are code-chosen and sanitized
// like metric names; values are arbitrary runtime strings (backend URLs,
// breaker states) and are escaped per the text exposition format.
type Label struct {
	Key   string
	Value string
}

// LabeledSample is one sample of a labeled metric family.
type LabeledSample struct {
	Labels []Label
	Value  float64
}

// EscapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double quote and newline must be written
// as \\, \" and \n (a raw newline would terminate the sample line and a
// raw quote would terminate the value).
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// labelKey sanitizes a label name to the Prometheus charset
// [a-zA-Z_][a-zA-Z0-9_]*; anything else becomes '_'.
func labelKey(k string) string {
	if k == "" {
		return "_"
	}
	out := make([]byte, 0, len(k))
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WriteLabeledGauge writes one gauge metric family in the Prometheus text
// exposition format: a single TYPE header followed by one sample per row.
// The metric name goes through the same vpir_-prefixed sanitization as
// the Registry exporter, so labeled and unlabeled metrics share one
// namespace. Rows with no labels render as plain samples.
func WriteLabeledGauge(w io.Writer, name string, rows []LabeledSample) error {
	if len(rows) == 0 {
		return nil
	}
	pn := promName(name)
	if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row.Labels) == 0 {
			if _, err := fmt.Fprintf(w, "%s %s\n", pn, formatFloat(row.Value)); err != nil {
				return err
			}
			continue
		}
		parts := make([]string, 0, len(row.Labels))
		for _, l := range row.Labels {
			parts = append(parts, fmt.Sprintf(`%s="%s"`, labelKey(l.Key), EscapeLabelValue(l.Value)))
		}
		if _, err := fmt.Fprintf(w, "%s{%s} %s\n", pn, strings.Join(parts, ","), formatFloat(row.Value)); err != nil {
			return err
		}
	}
	return nil
}
