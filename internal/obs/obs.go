// Package obs is the simulator's observability layer: a registry of named
// counters, gauges and fixed-bucket histograms, a bounded ring-buffered
// structured event log, and a cycle-indexed time series of interval
// samples, with JSONL, CSV and Prometheus text-format exporters.
//
// The package is built around one invariant: when observability is
// disabled, its cost is a nil check. Every mutating method on Counter,
// Gauge, Histogram, EventLog and Series is a no-op on a nil receiver, and
// a nil *Registry hands out nil instruments, so instrumentation sites can
// hold instruments unconditionally and never branch on configuration.
//
// Nothing here is synchronized: one simulation owns one Registry, one
// EventLog and one Series, exactly like it owns its core.Stats. Parallel
// campaigns attach one set per machine.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    uint64
}

// Add increases the counter; no-op on a nil receiver.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increases the counter by one; no-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value.
type Gauge struct {
	name string
	v    float64
}

// Set records the current value; no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last set value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed upper-bound buckets. The bucket
// slice is the sorted list of inclusive upper bounds; observations above
// the last bound land in the implicit +Inf bucket.
type Histogram struct {
	name    string
	bounds  []float64
	buckets []uint64 // len(bounds)+1; last is +Inf
	count   uint64
	sum     float64
}

// Observe records one value; no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets returns the upper bounds and the per-bucket counts (the final
// count is the +Inf bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.buckets...)
}

// Registry holds named instruments in registration order. A nil *Registry
// is a valid "disabled" registry: it hands out nil instruments whose
// methods are all no-ops.
type Registry struct {
	order      []string
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given sorted upper bounds; nil on a nil registry. The bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := &Histogram{
		name:    name,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	r.order = append(r.order, name)
	return h
}

// WritePrometheus dumps every instrument in the Prometheus text exposition
// format (registration order). Counters get a _total suffix if they lack
// one; histograms expose cumulative le-labeled buckets plus _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, name := range r.order {
		if c, ok := r.counters[name]; ok {
			pn := promName(name)
			if !hasSuffix(pn, "_total") {
				pn += "_total"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, c.v); err != nil {
				return err
			}
		}
		if g, ok := r.gauges[name]; ok {
			pn := promName(name)
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(g.v)); err != nil {
				return err
			}
		}
		if h, ok := r.histograms[name]; ok {
			pn := promName(name)
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			var cum uint64
			for i, b := range h.bounds {
				cum += h.buckets[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += h.buckets[len(h.bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				pn, cum, pn, formatFloat(h.sum), pn, h.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName maps an instrument name like "reuse.hits" to a Prometheus
// metric name like "vpir_reuse_hits".
func promName(name string) string {
	out := make([]byte, 0, len(name)+5)
	out = append(out, "vpir_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c-'A'+'a')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// formatFloat renders a float compactly, with integral values kept
// integral ("4" rather than "4e+00").
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
