package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Sample is one interval snapshot: the machine cycle it was taken at plus
// one value per Series field. Counter-valued fields are cumulative — the
// final sample of a run holds the run's end-of-run totals.
type Sample struct {
	Cycle  uint64
	Values []float64
}

// Series is a cycle-indexed time series with a fixed schema. A nil
// *Series discards appends.
type Series struct {
	fields  []string
	samples []Sample
}

// NewSeries builds a series over the given field names (excluding the
// implicit leading "cycle").
func NewSeries(fields []string) *Series {
	return &Series{fields: append([]string(nil), fields...)}
}

// Fields returns the schema (without the implicit "cycle").
func (s *Series) Fields() []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s.fields...)
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// Samples returns the recorded samples in cycle order.
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// Append records one sample; values are copied. Appending at the same
// cycle as the previous sample replaces it (a final flush that coincides
// with an interval boundary does not duplicate the sample). A no-op on a
// nil receiver or on a length mismatch.
func (s *Series) Append(cycle uint64, values []float64) {
	if s == nil || len(values) != len(s.fields) {
		return
	}
	vs := append([]float64(nil), values...)
	if n := len(s.samples); n > 0 && s.samples[n-1].Cycle == cycle {
		s.samples[n-1].Values = vs
		return
	}
	s.samples = append(s.samples, Sample{Cycle: cycle, Values: vs})
}

// Column returns the values of one field across all samples, or nil if
// the field is unknown ("cycle" returns the cycle numbers).
func (s *Series) Column(field string) []float64 {
	if s == nil {
		return nil
	}
	if field == "cycle" {
		out := make([]float64, len(s.samples))
		for i, sm := range s.samples {
			out[i] = float64(sm.Cycle)
		}
		return out
	}
	for j, f := range s.fields {
		if f == field {
			out := make([]float64, len(s.samples))
			for i, sm := range s.samples {
				out[i] = sm.Values[j]
			}
			return out
		}
	}
	return nil
}

// SeriesJSON is the wire form of a Series: a column-name header (the
// implicit "cycle" made explicit, first) and one row per sample in cycle
// order. Rows are positional — compact to ship and trivial to index —
// which is why the header travels with them.
type SeriesJSON struct {
	Fields []string    `json:"fields"`
	Rows   [][]float64 `json:"rows"`
}

// JSON renders the series in wire form; a nil series renders as an empty
// row set with an empty schema.
func (s *Series) JSON() SeriesJSON {
	out := SeriesJSON{Fields: []string{}, Rows: [][]float64{}}
	if s == nil {
		return out
	}
	out.Fields = append([]string{"cycle"}, s.fields...)
	for _, sm := range s.samples {
		row := make([]float64, 0, len(sm.Values)+1)
		row = append(row, float64(sm.Cycle))
		row = append(row, sm.Values...)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// WriteJSONL writes one self-describing JSON object per sample, keys in
// schema order, "cycle" first.
func (s *Series) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, sm := range s.samples {
		bw.WriteByte('{')
		fmt.Fprintf(bw, `"cycle":%d`, sm.Cycle)
		for j, f := range s.fields {
			fmt.Fprintf(bw, `,%q:%s`, f, formatFloat(sm.Values[j]))
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// WriteCSV writes a header row followed by one row per sample.
func (s *Series) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle")
	for _, f := range s.fields {
		bw.WriteByte(',')
		bw.WriteString(f)
	}
	bw.WriteByte('\n')
	for _, sm := range s.samples {
		fmt.Fprintf(bw, "%d", sm.Cycle)
		for _, v := range sm.Values {
			bw.WriteByte(',')
			bw.WriteString(formatFloat(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadSeriesJSONL parses a series written by WriteJSONL (or any JSONL
// stream of flat numeric objects with a "cycle" key). The field order of
// the first line fixes the schema; later lines may list keys in any order
// and missing fields read as 0.
func ReadSeriesJSONL(r io.Reader) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var s *Series
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if s == nil {
			fields, err := objectKeys(line)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			schema := make([]string, 0, len(fields))
			for _, f := range fields {
				if f != "cycle" {
					schema = append(schema, f)
				}
			}
			s = NewSeries(schema)
		}
		var m map[string]float64
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		vals := make([]float64, len(s.fields))
		for j, f := range s.fields {
			vals[j] = m[f]
		}
		s.Append(uint64(m["cycle"]), vals)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("obs: empty series")
	}
	return s, nil
}

// objectKeys returns the keys of a flat JSON object in document order.
func objectKeys(line string) ([]string, error) {
	dec := json.NewDecoder(strings.NewReader(line))
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("not a JSON object")
	}
	var keys []string
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return nil, err
		}
		k, ok := kt.(string)
		if !ok {
			return nil, fmt.Errorf("non-string key")
		}
		keys = append(keys, k)
		if _, err := dec.Token(); err != nil { // skip the value
			return nil, err
		}
	}
	return keys, nil
}
