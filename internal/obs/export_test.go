package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestEventLogRingWraparound pins the ring contract the dashboard depends
// on: once the ring wraps, Len stays at capacity, Events() is the *last*
// cap events oldest-first, Dropped counts the overwritten ones, and the
// per-kind Count totals keep including events the ring no longer holds.
func TestEventLogRingWraparound(t *testing.T) {
	const cap = 8
	const total = 37
	l := NewEventLog(cap)
	for i := 0; i < total; i++ {
		kind := EvSquash
		if i%3 == 0 {
			kind = EvReuseHit
		}
		l.Append(Event{Cycle: uint64(i), Kind: kind, Seq: uint64(i)})
	}
	if got := l.Len(); got != cap {
		t.Fatalf("Len = %d, want %d", got, cap)
	}
	if got := l.Dropped(); got != total-cap {
		t.Fatalf("Dropped = %d, want %d", got, total-cap)
	}
	evs := l.Events()
	if len(evs) != cap {
		t.Fatalf("Events() len = %d, want %d", len(evs), cap)
	}
	for i, e := range evs {
		want := uint64(total - cap + i)
		if e.Seq != want || e.Cycle != want {
			t.Fatalf("Events()[%d] = seq %d cycle %d, want %d (oldest-first after wrap)", i, e.Seq, e.Cycle, want)
		}
	}
	// Lifetime counts cover all appends, not just the surviving window.
	wantReuse := uint64(0)
	for i := 0; i < total; i++ {
		if i%3 == 0 {
			wantReuse++
		}
	}
	if got := l.Count(EvReuseHit); got != wantReuse {
		t.Fatalf("Count(EvReuseHit) = %d, want %d", got, wantReuse)
	}
	if got := l.Count(EvSquash); got != total-wantReuse {
		t.Fatalf("Count(EvSquash) = %d, want %d", got, total-wantReuse)
	}
}

// TestEventLogJSON checks the wire form: window events oldest-first with
// hex PCs, lifetime counts, and the dropped total; and that a nil log
// marshals as an empty window rather than JSON null.
func TestEventLogJSON(t *testing.T) {
	l := NewEventLog(2)
	l.Append(Event{Cycle: 1, Kind: EvSquash, PC: 0xbeef, Seq: 1, A: 64, B: 1})
	l.Append(Event{Cycle: 2, Kind: EvVPMispredict, PC: 0x10, Seq: 2})
	l.Append(Event{Cycle: 3, Kind: EvFault, PC: 0x14, Seq: 3, Note: "regs[3]"})
	j := l.JSON()
	if j.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", j.Dropped)
	}
	if len(j.Events) != 2 || j.Events[0].Kind != "vp_mispredict" || j.Events[1].Kind != "fault" {
		t.Fatalf("window = %+v, want [vp_mispredict fault]", j.Events)
	}
	if j.Events[0].PC != "0x00000010" {
		t.Fatalf("PC = %q, want zero-padded hex", j.Events[0].PC)
	}
	if j.Events[1].Note != "regs[3]" {
		t.Fatalf("Note = %q", j.Events[1].Note)
	}
	if j.Counts["squash"] != 1 || j.Counts["vp_mispredict"] != 1 || j.Counts["fault"] != 1 {
		t.Fatalf("Counts = %v, want lifetime totals incl. overwritten squash", j.Counts)
	}
	var nilLog *EventLog
	b, err := json.Marshal(nilLog.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"events":[]}` {
		t.Fatalf("nil log JSON = %s", b)
	}
}

// TestSeriesJSON checks the positional wire form: explicit leading
// "cycle" column and one row per sample.
func TestSeriesJSON(t *testing.T) {
	s := NewSeries([]string{"ipc", "rb_hits"})
	s.Append(100, []float64{1.5, 3})
	s.Append(200, []float64{1.25, 7})
	j := s.JSON()
	if len(j.Fields) != 3 || j.Fields[0] != "cycle" || j.Fields[2] != "rb_hits" {
		t.Fatalf("Fields = %v", j.Fields)
	}
	if len(j.Rows) != 2 || j.Rows[1][0] != 200 || j.Rows[1][1] != 1.25 || j.Rows[1][2] != 7 {
		t.Fatalf("Rows = %v", j.Rows)
	}
	var nilSeries *Series
	b, err := json.Marshal(nilSeries.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"fields":[],"rows":[]}` {
		t.Fatalf("nil series JSON = %s", b)
	}
}

// TestEscapeLabelValue pins the three escapes the Prometheus text format
// requires in label values.
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`http://w1:8080`, `http://w1:8080`},
		{`a"b`, `a\"b`},
		{`a\b`, `a\\b`},
		{"a\nb", `a\nb`},
		{"\\\"\n", `\\\"\n`},
		{``, ``},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWriteLabeledGauge checks the family layout (one TYPE header, one
// sample per row), the name sanitization shared with the Registry
// exporter, label-key sanitization, and value escaping end to end.
func TestWriteLabeledGauge(t *testing.T) {
	var sb strings.Builder
	err := WriteLabeledGauge(&sb, "coord.backend.state", []LabeledSample{
		{Labels: []Label{{Key: "backend", Value: `http://w1:8080`}, {Key: "state", Value: "closed"}}, Value: 1},
		{Labels: []Label{{Key: "backend", Value: "evil\"\nurl"}, {Key: "bad key!", Value: `x\y`}}, Value: 0},
		{Value: 3.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "# TYPE vpir_coord_backend_state gauge\n" +
		"vpir_coord_backend_state{backend=\"http://w1:8080\",state=\"closed\"} 1\n" +
		"vpir_coord_backend_state{backend=\"evil\\\"\\nurl\",bad_key_=\"x\\\\y\"} 0\n" +
		"vpir_coord_backend_state 3.5\n"
	if sb.String() != want {
		t.Fatalf("output:\n%s\nwant:\n%s", sb.String(), want)
	}
	var empty strings.Builder
	if err := WriteLabeledGauge(&empty, "x", nil); err != nil || empty.Len() != 0 {
		t.Fatalf("empty family should write nothing, got %q (err %v)", empty.String(), err)
	}
}
