package obs

import (
	"io"
	"sync"
)

// Shared is a mutex-guarded view of a Registry for callers that mutate
// instruments from multiple goroutines — the simulation server's HTTP
// handlers, most prominently. The core simulator keeps using the raw,
// unsynchronized Registry (one simulation owns one registry, see the
// package comment); Shared exists for the layers above it where requests
// genuinely race.
//
// Instruments are addressed by name so every operation can take the lock
// exactly once; the name → instrument lookup is a map access and the
// methods are cheap enough for request-rate (not cycle-rate) use.
type Shared struct {
	mu sync.Mutex
	r  *Registry
}

// NewShared returns a Shared wrapping a fresh Registry.
func NewShared() *Shared { return &Shared{r: NewRegistry()} }

// Add increases the named counter by d, creating it on first use.
func (s *Shared) Add(name string, d uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.r.Counter(name).Add(d)
	s.mu.Unlock()
}

// Inc increases the named counter by one, creating it on first use.
func (s *Shared) Inc(name string) { s.Add(name, 1) }

// Set records the named gauge's current value, creating it on first use.
func (s *Shared) Set(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.r.Gauge(name).Set(v)
	s.mu.Unlock()
}

// AddGauge adjusts the named gauge by d (which may be negative), creating
// the gauge on first use. Useful for in-flight style up/down counts.
func (s *Shared) AddGauge(name string, d float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	g := s.r.Gauge(name)
	g.Set(g.Value() + d)
	s.mu.Unlock()
}

// Observe records one value into the named histogram, creating it with the
// given bounds on first use (later bounds are ignored, like Registry).
func (s *Shared) Observe(name string, bounds []float64, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.r.Histogram(name, bounds).Observe(v)
	s.mu.Unlock()
}

// Counter returns the named counter's current value (0 if it was never
// touched).
func (s *Shared) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.r.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Gauge returns the named gauge's current value (0 if it was never set).
func (s *Shared) Gauge(name string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.r.gauges[name]; ok {
		return g.Value()
	}
	return 0
}

// WritePrometheus dumps every instrument in the Prometheus text exposition
// format, atomically with respect to concurrent updates.
func (s *Shared) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.WritePrometheus(w)
}
