package obs

import (
	"strings"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	// The disabled fast path: every mutator must be callable through nil.
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if b, n := h.Buckets(); b != nil || n != nil {
		t.Error("nil histogram buckets must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}

	var l *EventLog
	l.Append(Event{Kind: EvSquash})
	if l.Len() != 0 || l.Dropped() != 0 || l.Count(EvSquash) != 0 || l.Events() != nil {
		t.Error("nil event log must stay empty")
	}
	if err := l.WriteJSONL(&strings.Builder{}); err != nil {
		t.Error(err)
	}

	var s *Series
	s.Append(1, []float64{1})
	if s.Len() != 0 || s.Fields() != nil || s.Samples() != nil || s.Column("cycle") != nil {
		t.Error("nil series must stay empty")
	}
	if err := s.WriteJSONL(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if err := s.WriteCSV(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("squashes")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if r.Counter("squashes") != c {
		t.Error("counter not interned by name")
	}
	g := r.Gauge("rob")
	g.Set(17)
	if g.Value() != 17 {
		t.Errorf("gauge = %v", g.Value())
	}
	h := r.Histogram("lat", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 1, 3, 20, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 124.5 {
		t.Errorf("histogram count %d sum %v", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	want := []uint64{2, 1, 0, 2} // <=1: {0.5, 1}; <=4: {3}; <=16: none; +Inf: {20, 100}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if h.Mean() != 124.5/5 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reuse.hits").Add(42)
	r.Gauge("rob_occupancy").Set(12.5)
	h := r.Histogram("br_resolve_latency", []float64{2, 8})
	h.Observe(1)
	h.Observe(5)
	h.Observe(50)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE vpir_reuse_hits_total counter",
		"vpir_reuse_hits_total 42",
		"# TYPE vpir_rob_occupancy gauge",
		"vpir_rob_occupancy 12.5",
		`vpir_br_resolve_latency_bucket{le="2"} 1`,
		`vpir_br_resolve_latency_bucket{le="8"} 2`,
		`vpir_br_resolve_latency_bucket{le="+Inf"} 3`,
		"vpir_br_resolve_latency_sum 56",
		"vpir_br_resolve_latency_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := uint64(1); i <= 5; i++ {
		l.Append(Event{Cycle: i, Kind: EvSquash, Seq: i})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
	if l.Count(EvSquash) != 5 {
		t.Errorf("count = %d, want 5 (includes overwritten)", l.Count(EvSquash))
	}
	evs := l.Events()
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest-first)", i, evs[i].Cycle, want)
		}
	}
}

func TestEventLogJSONL(t *testing.T) {
	l := NewEventLog(8)
	l.Append(Event{Cycle: 10, Kind: EvVPMispredict, PC: 0x400010, Seq: 7, A: 3, B: 1})
	l.Append(Event{Cycle: 20, Kind: EvFault, PC: 0x400020, Note: "result"})
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"vp_mispredict"`) || !strings.Contains(lines[0], `"pc":"0x00400010"`) {
		t.Errorf("bad event line: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"note":"result"`) {
		t.Errorf("missing note: %s", lines[1])
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	s := NewSeries([]string{"committed", "ipc"})
	s.Append(100, []float64{90, 0.9})
	s.Append(200, []float64{185, 0.925})
	s.Append(200, []float64{186, 0.93}) // same-cycle flush replaces
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2 (same-cycle append replaces)", s.Len())
	}

	var jb strings.Builder
	if err := s.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesJSONL(strings.NewReader(jb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if f := got.Fields(); len(f) != 2 || f[0] != "committed" || f[1] != "ipc" {
		t.Errorf("round-trip fields = %v", f)
	}
	if c := got.Column("cycle"); len(c) != 2 || c[1] != 200 {
		t.Errorf("cycle column = %v", c)
	}
	if c := got.Column("ipc"); c[1] != 0.93 {
		t.Errorf("ipc column = %v", c)
	}
	if got.Column("nope") != nil {
		t.Error("unknown column must be nil")
	}

	var cb strings.Builder
	if err := s.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	wantCSV := "cycle,committed,ipc\n100,90,0.9\n200,186,0.93\n"
	if cb.String() != wantCSV {
		t.Errorf("csv:\n%s\nwant:\n%s", cb.String(), wantCSV)
	}
}

func TestReadSeriesJSONLErrors(t *testing.T) {
	if _, err := ReadSeriesJSONL(strings.NewReader("")); err == nil {
		t.Error("empty input must error")
	}
	if _, err := ReadSeriesJSONL(strings.NewReader("[1,2]\n")); err == nil {
		t.Error("non-object line must error")
	}
	if _, err := ReadSeriesJSONL(strings.NewReader(`{"cycle":1,"x":}`)); err == nil {
		t.Error("malformed JSON must error")
	}
}

func TestSeriesAppendMismatchIgnored(t *testing.T) {
	s := NewSeries([]string{"a"})
	s.Append(1, []float64{1, 2})
	if s.Len() != 0 {
		t.Error("length-mismatched append must be dropped")
	}
}
