package reuse

import (
	"math/rand"
	"testing"

	"github.com/vpir-sim/vpir/internal/isa"
)

// naiveInvalidateStores is the reference implementation of store
// invalidation: scan every entry in the buffer and kill overlapping valid
// loads. Semantically identical to the intrusive-index walk (a byte overlap
// always shares a word-aligned key), just O(buffer) instead of O(matches).
func naiveInvalidateStores(b *Buffer, addr, width uint32) int {
	killed := 0
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid || !e.isLoad || !e.memValid {
			continue
		}
		if e.addr < addr+width && addr < e.addr+e.width {
			e.memValid = false
			b.stats.StoreKills++
			killed++
		}
	}
	return killed
}

// checkIndexInvariants walks the bucket chains and cross-checks them
// against the entry array: every valid load entry must be linked exactly
// once per touched word, chains must be consistently doubly-linked, and
// nothing else may be linked.
func checkIndexInvariants(t *testing.T, b *Buffer) {
	t.Helper()
	type nodeKey struct {
		idx  int32
		slot int
	}
	linked := make(map[nodeKey]uint32)
	for h, nid := range b.heads {
		prev := int32(-1)
		for nid >= 0 {
			idx, slot := nid>>1, int(nid&1)
			e := &b.entries[idx]
			if !e.idxOn[slot] {
				t.Fatalf("bucket %d: node %d/%d linked but idxOn false", h, idx, slot)
			}
			if b.bucket(e.idxWord[slot]) != uint32(h) {
				t.Fatalf("bucket %d: node %d/%d word %#x hashes elsewhere", h, idx, slot, e.idxWord[slot])
			}
			if e.idxPrev[slot] != prev {
				t.Fatalf("bucket %d: node %d/%d prev=%d want %d", h, idx, slot, e.idxPrev[slot], prev)
			}
			key := nodeKey{idx, slot}
			if _, dup := linked[key]; dup {
				t.Fatalf("node %d/%d linked twice", idx, slot)
			}
			linked[key] = e.idxWord[slot]
			prev = nid
			nid = e.idxNext[slot]
		}
	}
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid || !e.isLoad {
			if e.idxOn[0] || e.idxOn[1] {
				t.Fatalf("entry %d: non-load linked into the index", i)
			}
			continue
		}
		w := loadWords(e.addr, e.width)
		if got, ok := linked[nodeKey{int32(i), 0}]; !ok || got != w[0] {
			t.Fatalf("entry %d: slot 0 not linked for word %#x (got %#x ok=%v)", i, w[0], got, ok)
		}
		if w[1] != w[0] {
			if got, ok := linked[nodeKey{int32(i), 1}]; !ok || got != w[1] {
				t.Fatalf("entry %d: slot 1 not linked for word %#x", i, w[1])
			}
		} else if e.idxOn[1] {
			t.Fatalf("entry %d: slot 1 linked for a single-word load", i)
		}
	}
}

// TestInvalidateStoresMatchesNaive drives two identical buffers through
// randomized insert/test/invalidate/reset interleavings. One invalidates
// through the intrusive index, the other through the naive full scan;
// Stats, per-entry memValid decisions and kill counts must stay
// bit-identical throughout, and the index invariants must hold after every
// step.
func TestInvalidateStoresMatchesNaive(t *testing.T) {
	loads := []*isa.Inst{
		func() *isa.Inst { in := isa.Decode(isa.EncodeI(isa.OpLW, isa.Reg(5), isa.Reg(4), 8)); return &in }(),
		func() *isa.Inst { in := isa.Decode(isa.EncodeI(isa.OpLH, isa.Reg(5), isa.Reg(4), 8)); return &in }(),
		func() *isa.Inst { in := isa.Decode(isa.EncodeI(isa.OpLB, isa.Reg(5), isa.Reg(4), 8)); return &in }(),
	}
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{Entries: 64, Ways: 4}
		fast, ref := New(cfg), New(cfg)
		// Small address pool so stores actually overlap buffered loads.
		addrPool := uint32(0x1000)
		for step := 0; step < 4000; step++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3: // insert a load
				in := loads[r.Intn(len(loads))]
				pc := 0x400000 + uint32(r.Intn(96))*4
				addr := addrPool + uint32(r.Intn(64))
				val := isa.Word(r.Uint32())
				base := isa.Word(r.Uint32())
				wp, fwd := r.Intn(8) == 0, r.Intn(8) == 0
				l1 := fast.Insert(pc, in, base, 0, val, addr, NoLink, NoLink, wp, fwd)
				l2 := ref.Insert(pc, in, base, 0, val, addr, NoLink, NoLink, wp, fwd)
				if l1 != l2 {
					t.Fatalf("seed %d step %d: insert links diverged: %+v vs %+v", seed, step, l1, l2)
				}
			case 4, 5: // insert an ALU op (exercises non-load paths + eviction)
				pc := 0x400000 + uint32(r.Intn(96))*4
				a, bv := isa.Word(r.Intn(16)), isa.Word(r.Intn(16))
				in := isa.Decode(isa.EncodeR(isa.OpADDU, isa.Reg(3), isa.Reg(1), isa.Reg(2)))
				fast.Insert(pc, &in, a, bv, a+bv, 0, NoLink, NoLink, false, false)
				ref.Insert(pc, &in, a, bv, a+bv, 0, NoLink, NoLink, false, false)
			case 6, 7, 8: // store: invalidate
				addr := addrPool + uint32(r.Intn(72))
				width := []uint32{1, 2, 4}[r.Intn(3)]
				k1 := fast.InvalidateStores(addr, width)
				k2 := naiveInvalidateStores(ref, addr, width)
				if k1 != k2 {
					t.Fatalf("seed %d step %d: intrusive killed %d, naive killed %d (store %#x w%d)",
						seed, step, k1, k2, addr, width)
				}
			default: // occasional reuse test, and rarely a reset
				if r.Intn(50) == 0 {
					fast.Reset(cfg)
					ref.Reset(cfg)
				} else {
					pc := 0x400000 + uint32(r.Intn(96))*4
					in := loads[0]
					op := Operand{Ready: true, Val: isa.Word(r.Uint32()), ReusedFrom: NoLink}
					r1 := fast.Test(pc, in, op, Operand{ReusedFrom: NoLink})
					r2 := ref.Test(pc, in, op, Operand{ReusedFrom: NoLink})
					if r1 != r2 {
						t.Fatalf("seed %d step %d: test diverged: %+v vs %+v", seed, step, r1, r2)
					}
				}
			}
			if fast.Stats() != ref.Stats() {
				t.Fatalf("seed %d step %d: stats diverged:\n fast: %+v\n  ref: %+v",
					seed, step, fast.Stats(), ref.Stats())
			}
			for i := range fast.entries {
				if fast.entries[i].memValid != ref.entries[i].memValid {
					t.Fatalf("seed %d step %d: entry %d memValid diverged", seed, step, i)
				}
			}
			if step%97 == 0 {
				checkIndexInvariants(t, fast)
			}
		}
		checkIndexInvariants(t, fast)
	}
}
