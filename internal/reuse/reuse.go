// Package reuse implements the Reuse Buffer (RB) of the paper, scheme
// S_{n+d} (Sodani & Sohi, ISCA 1997) with the two augmentations described
// in §4.1.2 of the MICRO 1998 paper:
//
//  1. operand values are stored with each entry, so a start entry is dead
//     only while the current operand value differs from the stored one;
//  2. an entry whose operand values become current again is valid again
//     (revalidation).
//
// With operand values stored, the name-based invalidate/revalidate machinery
// of the original scheme is functionally equivalent to comparing the stored
// operand values against the operand values available at the reuse test —
// which is how Test is implemented. Dependence pointers are still recorded
// (the 'd' in S_{n+d}); they enable same-cycle reuse of dependent chains:
// an entry whose operand link points at an entry reused earlier in the same
// decode group is reusable even though its operand value is not yet
// available from the register file, exactly as in the paper (chains of up
// to the decode width collapse in one cycle).
//
// Memory: load entries carry the effective address and remain result-
// reusable until a store writes to that address (InvalidateStores); after
// that only the address computation is reusable ("address reuse", the case
// the paper highlights for compress). Store entries are address-only.
//
// Entries are inserted when an instruction completes execution — including
// wrong-path instructions, which is how IR recovers useful work from
// branch-misprediction squashes (§3.2, Table 5).
package reuse

import (
	"fmt"
	"math/rand"

	"github.com/vpir-sim/vpir/internal/isa"
)

// Config sizes the reuse buffer. The paper uses 4 K entries, 4-way (§4.1.3),
// i.e. up to 4 instances per instruction.
type Config struct {
	Entries int
	Ways    int
}

// DefaultConfig returns the paper's 4 K-entry, 4-way RB.
func DefaultConfig() Config { return Config{Entries: 4 << 10, Ways: 4} }

// Link identifies an RB entry at a point in time; generation counters
// detect eviction and overwrite, killing stale dependence pointers.
type Link struct {
	Idx int32
	Gen uint32
}

// NoLink marks an absent dependence pointer (operand came from the
// register file).
var NoLink = Link{Idx: -1}

// Operand describes one source operand at the reuse test: whether its value
// is available to the test (committed, or completed in-flight, or produced
// by an entry reused earlier in the same cycle) and the value itself.
type Operand struct {
	Ready bool
	Val   isa.Word
	// ReusedFrom is the RB entry that produced this operand via reuse in
	// the current decode group (NoLink if none); enables chain reuse.
	ReusedFrom Link
}

// TestResult is the outcome of a reuse test.
type TestResult struct {
	Hit     bool     // result reusable (full reuse)
	AddrHit bool     // memory op: effective address reusable
	Value   isa.Word // result (valid when Hit)
	Addr    uint32   // effective address (valid when Hit or AddrHit)
	Entry   Link     // the matching entry
	Chained bool     // matched through a same-cycle dependence chain
	// WrongPathWork is set when the matched entry was inserted by a
	// squashed (wrong-path) instruction — the "recovered useful work" of
	// Table 5.
	WrongPathWork bool
}

type entry struct {
	valid bool
	tag   uint32 // pc
	gen   uint32
	tick  uint64

	op       isa.Op
	result   isa.Word
	src1Name isa.Reg
	src2Name isa.Reg
	src1Val  isa.Word
	src2Val  isa.Word
	src1Link Link
	src2Link Link

	isMem    bool
	isLoad   bool
	addr     uint32
	width    uint32
	memValid bool // load result still valid w.r.t. stores

	wrongPath bool // inserted by a squashed instruction

	// Intrusive load-index node state, one node per word-aligned key the
	// load's byte range touches (slot 0 = first word, slot 1 = last word
	// when different). A node id is entry-index<<1 | slot; prev/next of -1
	// terminate the chain, idxOn guards whether the node is linked at all.
	idxWord [2]uint32
	idxNext [2]int32
	idxPrev [2]int32
	idxOn   [2]bool
}

// Stats counts reuse buffer activity.
type Stats struct {
	Tests      uint64
	Hits       uint64 // full reuse
	AddrHits   uint64 // address-only reuse (memory ops)
	ChainHits  uint64 // hits established through a dependence pointer
	Inserts    uint64
	Updates    uint64 // insert found an identical instance and refreshed it
	Evictions  uint64
	StoreKills uint64 // load results invalidated by stores
	Recovered  uint64 // hits on wrong-path entries
}

// noTag is the probe-filter value of an invalid entry. PCs are word-aligned
// text addresses, so no real tag can collide with it.
const noTag = ^uint32(0)

// Buffer is the reuse buffer.
type Buffer struct {
	cfg     Config
	setMask uint32
	ways    int
	entries []entry
	// tags mirrors entries[i].tag (noTag while invalid). Test and Insert
	// probe every way of a set for every decoded/completed instruction;
	// the sidecar keeps a whole set's tags in one cache line so the common
	// non-matching ways are rejected without touching their entry structs.
	tags  []uint32
	tick  uint64
	stats Stats

	// Intrusive load index: valid load entries link themselves into
	// per-word hash chains (nodes embedded in the entry structs) so a
	// committing store invalidates overlapping loads in O(matches) with
	// zero steady-state allocations. heads holds the first node id of each
	// bucket's doubly-linked chain, -1 when empty.
	heads      []int32
	bucketMask uint32
}

// New builds an empty reuse buffer.
func New(cfg Config) *Buffer {
	sets := cfg.Entries / cfg.Ways
	n := sets * cfg.Ways
	buckets := 16
	for buckets < n {
		buckets <<= 1
	}
	b := &Buffer{
		cfg:        cfg,
		setMask:    uint32(sets - 1),
		ways:       cfg.Ways,
		entries:    make([]entry, n),
		tags:       make([]uint32, n),
		heads:      make([]int32, buckets),
		bucketMask: uint32(buckets - 1),
	}
	for i := range b.tags {
		b.tags[i] = noTag
	}
	for i := range b.heads {
		b.heads[i] = -1
	}
	return b
}

// Config returns the buffer configuration.
func (b *Buffer) Config() Config { return b.cfg }

// Stats returns a copy of the counters.
func (b *Buffer) Stats() Stats { return b.stats }

func (b *Buffer) setBase(pc uint32) int32 {
	return int32((pc>>2)&b.setMask) * int32(b.ways)
}

// Get returns the entry a link points at, or nil if the link is stale.
func (b *Buffer) get(l Link) *entry {
	if l.Idx < 0 || int(l.Idx) >= len(b.entries) {
		return nil
	}
	e := &b.entries[l.Idx]
	if !e.valid || e.gen != l.Gen {
		return nil
	}
	return e
}

// operandOK decides whether one operand slot of entry e passes the reuse
// test. chained is set when the slot is satisfied through the dependence
// pointer rather than an architectural value match.
func (b *Buffer) operandOK(name isa.Reg, stored isa.Word, link Link, op Operand) (ok, chained bool) {
	if name == isa.NoReg {
		return true, false
	}
	// Same-cycle chain: the operand's producer was itself reused from the
	// exact entry our dependence pointer names.
	if link.Idx >= 0 && op.ReusedFrom.Idx == link.Idx && op.ReusedFrom.Gen == link.Gen {
		return true, true
	}
	// Value match against the available operand value. This subsumes
	// invalidation-on-overwrite and revalidation (augmentations 1 and 2),
	// and also covers a chain producer reused from a *different* instance
	// with the same result.
	if op.Ready && op.Val == stored {
		return true, false
	}
	return false, false
}

// Test runs the reuse test for the instruction at pc against all buffered
// instances. Loads may hit fully (result) or address-only; stores can only
// hit address-only. The first fully matching instance wins; an address-only
// match is returned when no full match exists.
func (b *Buffer) Test(pc uint32, in *isa.Inst, op1, op2 Operand) TestResult {
	b.stats.Tests++
	base := b.setBase(pc)
	// The address-only fallback is tracked by value: a pointer would make
	// every candidate TestResult escape to the heap, and Test runs for
	// every decoded instruction.
	var addrOnly TestResult
	haveAddrOnly := false

	for w := 0; w < b.ways; w++ {
		idx := base + int32(w)
		if b.tags[idx] != pc {
			continue
		}
		e := &b.entries[idx]
		if e.op != in.Op {
			continue
		}
		ok1, ch1 := b.operandOK(e.src1Name, e.src1Val, e.src1Link, op1)
		if !ok1 {
			continue
		}
		ok2, ch2 := b.operandOK(e.src2Name, e.src2Val, e.src2Link, op2)
		// For memory ops, src2 is the store data (stores) or absent (loads);
		// the address depends only on src1 (the base register).
		if e.isMem {
			if e.isLoad {
				res := TestResult{
					Addr:          e.addr,
					Entry:         Link{Idx: idx, Gen: e.gen},
					Chained:       ch1,
					WrongPathWork: e.wrongPath,
				}
				if e.memValid {
					res.Hit = true
					res.AddrHit = true
					res.Value = e.result
					b.recordHit(e, res.Chained)
					return res
				}
				res.AddrHit = true
				if !haveAddrOnly {
					addrOnly = res
					haveAddrOnly = true
				}
				continue
			}
			// Store: address reuse only (src1 = base matched).
			if !haveAddrOnly {
				addrOnly = TestResult{
					AddrHit:       true,
					Addr:          e.addr,
					Entry:         Link{Idx: idx, Gen: e.gen},
					Chained:       ch1,
					WrongPathWork: e.wrongPath,
				}
				haveAddrOnly = true
			}
			continue
		}
		if !ok2 {
			continue
		}
		res := TestResult{
			Hit:           true,
			Value:         e.result,
			Entry:         Link{Idx: idx, Gen: e.gen},
			Chained:       ch1 || ch2,
			WrongPathWork: e.wrongPath,
		}
		b.recordHit(e, res.Chained)
		return res
	}
	if haveAddrOnly {
		b.stats.AddrHits++
		e := &b.entries[addrOnly.Entry.Idx]
		e.tick = b.nextTick()
		if e.wrongPath {
			b.stats.Recovered++
			e.wrongPath = false
		}
		return addrOnly
	}
	return TestResult{Entry: NoLink}
}

func (b *Buffer) recordHit(e *entry, chained bool) {
	b.stats.Hits++
	if chained {
		b.stats.ChainHits++
	}
	if e.wrongPath {
		b.stats.Recovered++
		e.wrongPath = false
	}
	e.tick = b.nextTick()
}

func (b *Buffer) nextTick() uint64 {
	b.tick++
	return b.tick
}

// Insert records a completed execution in the buffer and returns a link to
// the entry (for consumers' dependence pointers). If an identical instance
// (same pc, op and operand values) exists it is refreshed in place.
// wrongPath marks work inserted from a path that was (or will be) squashed.
//
// forwarded marks a load whose value came from an in-flight store rather
// than memory: such a value may never reach memory (the store can be
// squashed), so the entry is inserted address-only (memValid=false). A
// value read from memory is safe to buffer: any later store to it commits
// through InvalidateStores.
func (b *Buffer) Insert(pc uint32, in *isa.Inst, src1Val, src2Val isa.Word,
	result isa.Word, addr uint32, link1, link2 Link, wrongPath, forwarded bool) Link {

	if in.Op.Serializes() || in.Op == isa.OpJ || in.Op == isa.OpInvalid {
		return NoLink
	}
	// A dependence pointer is only kept when the linked entry currently
	// produces exactly the operand value being recorded. A link captured
	// from an earlier (e.g. value-speculative) producer instance whose
	// entry holds a different result would let a later chain reuse deliver
	// a result computed from a different operand.
	if e := b.get(link1); e == nil || e.result != src1Val {
		link1 = NoLink
	}
	if e := b.get(link2); e == nil || e.result != src2Val {
		link2 = NoLink
	}
	base := b.setBase(pc)
	var victim int32 = -1
	for w := 0; w < b.ways; w++ {
		idx := base + int32(w)
		if b.tags[idx] == noTag {
			if victim < 0 {
				victim = idx
			}
			continue
		}
		if b.tags[idx] != pc {
			continue
		}
		e := &b.entries[idx]
		if e.op == in.Op && e.src1Val == src1Val && e.src2Val == src2Val {
			// Identical instance: refresh result and revalidate memory. A
			// changed result (possible only for loads: same address, new
			// memory contents) invalidates inbound dependence pointers by
			// advancing the generation — a chain link must never deliver a
			// value different from the one recorded when it was formed.
			b.stats.Updates++
			b.unindexLoad(idx, e)
			if e.result != result {
				e.gen++
			}
			e.result = result
			e.addr = addr
			e.memValid = !forwarded
			e.src1Link = link1
			e.src2Link = link2
			e.tick = b.nextTick()
			if !wrongPath {
				e.wrongPath = false
			}
			b.indexLoad(idx, e)
			return Link{Idx: idx, Gen: e.gen}
		}
	}
	if victim < 0 {
		// Evict LRU.
		victim = base
		for w := 1; w < b.ways; w++ {
			idx := base + int32(w)
			if b.entries[idx].tick < b.entries[victim].tick {
				victim = idx
			}
		}
		b.stats.Evictions++
	}
	e := &b.entries[victim]
	b.unindexLoad(victim, e)
	gen := e.gen + 1
	// Field-by-field overwrite: a composite literal would build the entry in
	// a temporary and copy it, and Insert runs for every completed execution.
	// Every field is assigned except the index-node state, which unindexLoad
	// just retired (idxOn false; the cursors are dead until the next link).
	e.valid = true
	e.tag = pc
	b.tags[victim] = pc
	e.gen = gen
	e.tick = b.nextTick()
	e.op = in.Op
	e.result = result
	e.src1Name = in.Src1
	e.src2Name = in.Src2
	e.src1Val = src1Val
	e.src2Val = src2Val
	e.src1Link = link1
	e.src2Link = link2
	e.isMem = in.Op.IsMem()
	e.isLoad = in.Op.IsLoad()
	e.addr = addr
	e.width = 0
	e.memValid = !forwarded
	e.wrongPath = wrongPath
	if e.isMem {
		switch in.Op {
		case isa.OpLB, isa.OpLBU, isa.OpSB:
			e.width = 1
		case isa.OpLH, isa.OpLHU, isa.OpSH:
			e.width = 2
		default:
			e.width = 4
		}
	}
	b.stats.Inserts++
	b.indexLoad(victim, e)
	return Link{Idx: victim, Gen: gen}
}

// loadWords returns the word-aligned keys a load entry's byte range touches.
func loadWords(addr, width uint32) [2]uint32 {
	first := addr >> 2
	last := (addr + width - 1) >> 2
	return [2]uint32{first, last}
}

// bucket hashes a word-aligned address key to a chain head. The
// multiplicative mix keeps strided access patterns from aliasing through
// the power-of-two mask.
func (b *Buffer) bucket(word uint32) uint32 {
	return (word * 0x9e3779b1) & b.bucketMask
}

// linkNode pushes entry idx's node slot onto the head of word's chain.
func (b *Buffer) linkNode(idx int32, slot int, word uint32) {
	e := &b.entries[idx]
	nid := idx<<1 | int32(slot)
	h := b.bucket(word)
	next := b.heads[h]
	e.idxWord[slot] = word
	e.idxNext[slot] = next
	e.idxPrev[slot] = -1
	e.idxOn[slot] = true
	if next >= 0 {
		b.entries[next>>1].idxPrev[next&1] = nid
	}
	b.heads[h] = nid
}

// unlinkNode removes entry idx's node slot from its chain in O(1).
func (b *Buffer) unlinkNode(idx int32, slot int) {
	e := &b.entries[idx]
	prev, next := e.idxPrev[slot], e.idxNext[slot]
	if prev >= 0 {
		b.entries[prev>>1].idxNext[prev&1] = next
	} else {
		b.heads[b.bucket(e.idxWord[slot])] = next
	}
	if next >= 0 {
		b.entries[next>>1].idxPrev[next&1] = prev
	}
	e.idxOn[slot] = false
}

func (b *Buffer) indexLoad(idx int32, e *entry) {
	if !e.valid || !e.isLoad {
		return
	}
	w := loadWords(e.addr, e.width)
	b.linkNode(idx, 0, w[0])
	if w[1] != w[0] {
		b.linkNode(idx, 1, w[1])
	}
}

func (b *Buffer) unindexLoad(idx int32, e *entry) {
	if e.idxOn[0] {
		b.unlinkNode(idx, 0)
	}
	if e.idxOn[1] {
		b.unlinkNode(idx, 1)
	}
}

// InvalidateStores kills the result-validity of load entries whose byte
// range overlaps a store of width bytes at addr; the address computation
// stays reusable (that is the paper's "address reuse"). Called when a store
// commits. Returns how many entries were invalidated.
//
// Chain membership is the invariant "valid load entry": entries link on
// indexLoad and unlink before being overwritten, so the walk only needs to
// filter hash collisions (nodes of a different word in the same bucket).
func (b *Buffer) InvalidateStores(addr, width uint32) int {
	killed := 0
	w := loadWords(addr, width)
	for word := w[0]; ; word++ {
		for nid := b.heads[b.bucket(word)]; nid >= 0; {
			idx, slot := nid>>1, nid&1
			e := &b.entries[idx]
			nid = e.idxNext[slot]
			if e.idxWord[slot] != word || !e.memValid {
				continue
			}
			if e.addr < addr+width && addr < e.addr+e.width {
				e.memValid = false
				b.stats.StoreKills++
				killed++
			}
		}
		if word == w[1] {
			break
		}
	}
	return killed
}

// MarkWrongPath flags an entry as wrong-path work (called when the inserting
// instruction is squashed after insertion).
func (b *Buffer) MarkWrongPath(l Link) {
	if e := b.get(l); e != nil {
		e.wrongPath = true
	}
}

// CorruptTarget selects which RB entry field a fault-injection campaign
// corrupts. The distinction matters because IR validates *early*: the
// S_{n+d} reuse test guards the operand names, operand values and
// dependence pointers (a corrupted entry simply stops matching and the
// instruction executes normally), but nothing guards the buffered result
// itself — a reused result skips execution entirely, so a corrupted result
// field reaches architectural state and is only caught by the commit-time
// oracle. VP, by contrast, verifies every predicted value against the
// actual execution, so no VPT field is unguarded.
type CorruptTarget int

const (
	// CorruptResult flips bits in the buffered result: UNGUARDED. If the
	// entry later passes the reuse test, the wrong value retires.
	CorruptResult CorruptTarget = iota
	// CorruptOperandValue flips bits in a stored operand value: guarded by
	// the reuse test's value comparison (the entry stops matching).
	CorruptOperandValue
	// CorruptOperandName renames a stored source register: guarded — the
	// test still compares the stored operand value against the consuming
	// instruction's actual operand, so at worst the entry stops matching.
	CorruptOperandName
	// CorruptDepPointer redirects a dependence pointer: guarded by the
	// generation check (a stale link never revalidates).
	CorruptDepPointer
)

func (t CorruptTarget) String() string {
	switch t {
	case CorruptOperandValue:
		return "operand-value"
	case CorruptOperandName:
		return "operand-name"
	case CorruptDepPointer:
		return "dependence-pointer"
	}
	return "result"
}

// Corrupt applies one fault of the given target to a valid entry chosen by
// r; ok is false when no suitable entry exists. Control-transfer entries
// are skipped by CorruptResult (their buffered "result" is direction/target
// bookkeeping whose corruption strands fetch on a garbage path — that
// failure mode is the watchdog's, not the oracle's, and campaigns want the
// deterministic oracle-detection outcome).
func (b *Buffer) Corrupt(target CorruptTarget, r *rand.Rand) (desc string, ok bool) {
	victim := -1
	seen := 0
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			continue
		}
		if target == CorruptResult && (e.op.IsControl() || e.isMem && !e.isLoad) {
			continue // control bookkeeping / address-only store entries
		}
		if target == CorruptOperandName && e.src1Name == isa.NoReg && e.src2Name == isa.NoReg {
			continue
		}
		seen++
		if r.Intn(seen) == 0 {
			victim = i
		}
	}
	if victim < 0 {
		return "", false
	}
	e := &b.entries[victim]
	switch target {
	case CorruptResult:
		mask := isa.Word(r.Uint32() | 1)
		e.result ^= mask
		return fmt.Sprintf("rb[%d] pc=%#x result^=%#x", victim, e.tag, uint32(mask)), true
	case CorruptOperandValue:
		mask := isa.Word(r.Uint32() | 1)
		if e.src1Name != isa.NoReg || e.src2Name == isa.NoReg {
			e.src1Val ^= mask
		} else {
			e.src2Val ^= mask
		}
		return fmt.Sprintf("rb[%d] pc=%#x operand^=%#x", victim, e.tag, uint32(mask)), true
	case CorruptOperandName:
		// Rotate to a different *architectural* register; never to NoReg,
		// which would erase the operand guard rather than perturb it.
		slot := &e.src1Name
		if e.src1Name == isa.NoReg {
			slot = &e.src2Name
		}
		nr := isa.Reg((int(*slot) + 1 + r.Intn(int(isa.NumArchRegs)-2)) % int(isa.NumArchRegs))
		old := *slot
		*slot = nr
		return fmt.Sprintf("rb[%d] pc=%#x opname %v->%v", victim, e.tag, old, nr), true
	default: // CorruptDepPointer
		l := Link{Idx: int32(r.Intn(len(b.entries))), Gen: r.Uint32()}
		if e.src1Link.Idx >= 0 || e.src2Link.Idx < 0 {
			e.src1Link = l
		} else {
			e.src2Link = l
		}
		return fmt.Sprintf("rb[%d] pc=%#x deplink->{%d,%d}", victim, e.tag, l.Idx, l.Gen), true
	}
}

// CorruptAllResults corrupts the buffered result of every valid
// value-producing entry (same skip rules as Corrupt/CorruptResult) and
// returns how many entries were hit. Campaigns use the burst form so that
// at least one corrupted entry is consumed by a later reuse test before
// being refreshed or evicted, making the oracle-detection outcome
// deterministic rather than probabilistic.
func (b *Buffer) CorruptAllResults(r *rand.Rand) int {
	n := 0
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid || e.op.IsControl() || e.isMem && !e.isLoad {
			continue
		}
		e.result ^= isa.Word(r.Uint32() | 1)
		n++
	}
	return n
}

// Instances returns how many instances are buffered for pc; for tests.
func (b *Buffer) Instances(pc uint32) int {
	base := b.setBase(pc)
	n := 0
	for w := 0; w < b.ways; w++ {
		e := &b.entries[base+int32(w)]
		if e.valid && e.tag == pc {
			n++
		}
	}
	return n
}

// SnapEntry is the exported logical state of one RB entry. The intrusive
// load-index node fields are deliberately absent: they are a pure function
// of the logical state and are rebuilt deterministically on restore, which
// is what makes serialize→restore→serialize byte-identical.
type SnapEntry struct {
	Valid              bool
	Tag                uint32
	Gen                uint32
	Tick               uint64
	Op                 isa.Op
	Result             isa.Word
	Src1Name, Src2Name isa.Reg
	Src1Val, Src2Val   isa.Word
	Src1Link, Src2Link Link
	IsMem, IsLoad      bool
	Addr               uint32
	Width              uint32
	MemValid           bool
	WrongPath          bool
}

// Snapshot is the complete warm state of a Buffer, entries in set-major
// order. Statistics are not captured: a restored buffer counts from zero.
type Snapshot struct {
	Cfg     Config
	Tick    uint64
	Entries []SnapEntry
}

// Snapshot captures the buffer's warm state.
func (b *Buffer) Snapshot() *Snapshot {
	s := &Snapshot{Cfg: b.cfg, Tick: b.tick, Entries: make([]SnapEntry, len(b.entries))}
	for i := range b.entries {
		e := &b.entries[i]
		s.Entries[i] = SnapEntry{
			Valid: e.valid, Tag: e.tag, Gen: e.gen, Tick: e.tick,
			Op: e.op, Result: e.result,
			Src1Name: e.src1Name, Src2Name: e.src2Name,
			Src1Val: e.src1Val, Src2Val: e.src2Val,
			Src1Link: e.src1Link, Src2Link: e.src2Link,
			IsMem: e.isMem, IsLoad: e.isLoad,
			Addr: e.addr, Width: e.width,
			MemValid: e.memValid, WrongPath: e.wrongPath,
		}
	}
	return s
}

// RestoreSnapshot rewinds the buffer to a captured warm state (geometry
// must match). The intrusive load index is rebuilt from the restored
// entries in ascending entry order; statistics are zeroed.
func (b *Buffer) RestoreSnapshot(s *Snapshot) error {
	if s.Cfg != b.cfg || len(s.Entries) != len(b.entries) {
		return fmt.Errorf("reuse: snapshot geometry mismatch (snapshot %+v/%d entries, buffer %+v/%d)",
			s.Cfg, len(s.Entries), b.cfg, len(b.entries))
	}
	for i := range b.heads {
		b.heads[i] = -1
	}
	for i := range b.entries {
		se := &s.Entries[i]
		b.tags[i] = noTag
		if se.Valid {
			b.tags[i] = se.Tag
		}
		b.entries[i] = entry{
			valid: se.Valid, tag: se.Tag, gen: se.Gen, tick: se.Tick,
			op: se.Op, result: se.Result,
			src1Name: se.Src1Name, src2Name: se.Src2Name,
			src1Val: se.Src1Val, src2Val: se.Src2Val,
			src1Link: se.Src1Link, src2Link: se.Src2Link,
			isMem: se.IsMem, isLoad: se.IsLoad,
			addr: se.Addr, width: se.Width,
			memValid: se.MemValid, wrongPath: se.WrongPath,
		}
	}
	for i := range b.entries {
		b.indexLoad(int32(i), &b.entries[i])
	}
	b.tick = s.Tick
	b.stats = Stats{}
	return nil
}

// Reset clears the buffer and statistics for a new run. Storage is reused
// in place when the geometry matches cfg — the steady state of machine
// reuse, with zero allocations — and rebuilt only on a geometry change.
// Generation counters survive an in-place reset so dependence pointers
// captured before the reset can never revalidate against post-reset
// contents.
func (b *Buffer) Reset(cfg Config) {
	if cfg != b.cfg || b.heads == nil {
		*b = *New(cfg)
		return
	}
	for i := range b.entries {
		b.entries[i] = entry{gen: b.entries[i].gen}
		b.tags[i] = noTag
	}
	for i := range b.heads {
		b.heads[i] = -1
	}
	b.tick = 0
	b.stats = Stats{}
}
