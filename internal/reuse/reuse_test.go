package reuse

import (
	"testing"

	"github.com/vpir-sim/vpir/internal/isa"
)

func smallCfg() Config { return Config{Entries: 64, Ways: 4} }

func addu() *isa.Inst {
	in := isa.Decode(isa.EncodeR(isa.OpADDU, isa.Reg(3), isa.Reg(1), isa.Reg(2)))
	return &in
}

func lw() *isa.Inst {
	in := isa.Decode(isa.EncodeI(isa.OpLW, isa.Reg(5), isa.Reg(4), 8))
	return &in
}

func sw() *isa.Inst {
	in := isa.Decode(isa.EncodeI(isa.OpSW, isa.Reg(5), isa.Reg(4), 8))
	return &in
}

func rdy(v isa.Word) Operand { return Operand{Ready: true, Val: v, ReusedFrom: NoLink} }
func notRdy() Operand        { return Operand{ReusedFrom: NoLink} }

func TestMissOnColdBuffer(t *testing.T) {
	b := New(DefaultConfig())
	res := b.Test(0x400000, addu(), rdy(1), rdy(2))
	if res.Hit || res.AddrHit {
		t.Error("cold buffer must miss")
	}
}

func TestHitOnMatchingOperands(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	res := b.Test(pc, addu(), rdy(1), rdy(2))
	if !res.Hit || res.Value != 3 {
		t.Fatalf("res = %+v", res)
	}
	// Different operand values: miss (the augmented invalidation rule).
	if res := b.Test(pc, addu(), rdy(1), rdy(9)); res.Hit {
		t.Error("operand mismatch must miss")
	}
	// Operand not ready: miss (non-speculative early validation).
	if res := b.Test(pc, addu(), rdy(1), notRdy()); res.Hit {
		t.Error("unready operand must miss")
	}
}

func TestRevalidation(t *testing.T) {
	// The stored values make the entry valid whenever the operand values
	// are current again — the paper's second augmentation.
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	if res := b.Test(pc, addu(), rdy(7), rdy(2)); res.Hit {
		t.Error("must miss while operand differs")
	}
	if res := b.Test(pc, addu(), rdy(1), rdy(2)); !res.Hit {
		t.Error("must hit when operand values are current again")
	}
}

func TestMultipleInstances(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	// Four instances with different inputs.
	for i := isa.Word(0); i < 4; i++ {
		b.Insert(pc, addu(), i, 10, i+10, 0, NoLink, NoLink, false, false)
	}
	if n := b.Instances(pc); n != 4 {
		t.Fatalf("instances = %d", n)
	}
	// The reuse test selects the instance matching the current operands.
	for i := isa.Word(0); i < 4; i++ {
		res := b.Test(pc, addu(), rdy(i), rdy(10))
		if !res.Hit || res.Value != i+10 {
			t.Errorf("instance %d: %+v", i, res)
		}
	}
}

func TestIdenticalInsertRefreshes(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	l1 := b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	l2 := b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	if l1 != l2 {
		t.Errorf("identical instance reallocated: %v vs %v", l1, l2)
	}
	if n := b.Instances(pc); n != 1 {
		t.Errorf("instances = %d, want 1", n)
	}
	if s := b.Stats(); s.Updates != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	for i := isa.Word(0); i < 4; i++ {
		b.Insert(pc, addu(), i, 0, i, 0, NoLink, NoLink, false, false)
	}
	// Touch instance 0 so instance 1 is LRU.
	b.Test(pc, addu(), rdy(0), rdy(0))
	b.Insert(pc, addu(), 99, 0, 99, 0, NoLink, NoLink, false, false)
	if res := b.Test(pc, addu(), rdy(1), rdy(0)); res.Hit {
		t.Error("LRU instance 1 must be evicted")
	}
	if res := b.Test(pc, addu(), rdy(0), rdy(0)); !res.Hit {
		t.Error("MRU instance 0 must survive")
	}
}

func TestLoadReuseAndStoreInvalidation(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	// Load from base 0x1000 + 8 = 0x1008, value 77.
	b.Insert(pc, lw(), 0x1000, 0, 77, 0x1008, NoLink, NoLink, false, false)
	res := b.Test(pc, lw(), rdy(0x1000), notRdy())
	if !res.Hit || res.Value != 77 || res.Addr != 0x1008 {
		t.Fatalf("load reuse: %+v", res)
	}
	// A store to an unrelated address leaves it valid.
	b.InvalidateStores(0x2000, 4)
	if res := b.Test(pc, lw(), rdy(0x1000), notRdy()); !res.Hit {
		t.Error("unrelated store must not invalidate")
	}
	// A store to the load's address: result dead, address still reusable.
	b.InvalidateStores(0x1008, 4)
	res = b.Test(pc, lw(), rdy(0x1000), notRdy())
	if res.Hit {
		t.Error("store must kill load result reuse")
	}
	if !res.AddrHit || res.Addr != 0x1008 {
		t.Errorf("address reuse must survive: %+v", res)
	}
	// Re-inserting the same instance revalidates the memory state.
	b.Insert(pc, lw(), 0x1000, 0, 78, 0x1008, NoLink, NoLink, false, false)
	if res := b.Test(pc, lw(), rdy(0x1000), notRdy()); !res.Hit || res.Value != 78 {
		t.Errorf("revalidated load: %+v", res)
	}
}

func TestPartialOverlapInvalidation(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, lw(), 0x1000, 0, 1, 0x1008, NoLink, NoLink, false, false)
	// A one-byte store into the middle of the loaded word.
	b.InvalidateStores(0x100A, 1)
	if res := b.Test(pc, lw(), rdy(0x1000), notRdy()); res.Hit {
		t.Error("overlapping byte store must invalidate")
	}
	// A byte store just past the word does not.
	b.Insert(pc, lw(), 0x1000, 0, 1, 0x1008, NoLink, NoLink, false, false)
	b.InvalidateStores(0x100C, 1)
	if res := b.Test(pc, lw(), rdy(0x1000), notRdy()); !res.Hit {
		t.Error("adjacent store must not invalidate")
	}
}

func TestStoreAddressReuse(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, sw(), 0x1000, 42, 0, 0x1008, NoLink, NoLink, false, false)
	res := b.Test(pc, sw(), rdy(0x1000), notRdy())
	if res.Hit {
		t.Error("stores must never hit fully")
	}
	if !res.AddrHit || res.Addr != 0x1008 {
		t.Errorf("store address reuse: %+v", res)
	}
	// Different base: no address reuse.
	if res := b.Test(pc, sw(), rdy(0x2000), rdy(42)); res.AddrHit {
		t.Error("different base must miss")
	}
}

func TestChainReuse(t *testing.T) {
	b := New(smallCfg())
	pcA, pcB := uint32(0x400000), uint32(0x400100)
	// A: addu r3 = r1 + r2 executed with (1,2) -> 3, entry lA.
	lA := b.Insert(pcA, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	// B consumed A's result: addu r3 = r1(, =3) + r2(=10) -> 13, linked to A.
	inB := isa.Decode(isa.EncodeR(isa.OpADDU, isa.Reg(4), isa.Reg(3), isa.Reg(6)))
	b.Insert(pcB, &inB, 3, 10, 13, 0, lA, NoLink, false, false)

	// Later: A is reused this cycle; B's operand 1 value not yet available
	// from the register file, but the chain pointer satisfies it.
	resA := b.Test(pcA, addu(), rdy(1), rdy(2))
	if !resA.Hit {
		t.Fatal("A must hit")
	}
	opB1 := Operand{Ready: false, ReusedFrom: resA.Entry}
	resB := b.Test(pcB, &inB, opB1, rdy(10))
	if !resB.Hit || resB.Value != 13 {
		t.Fatalf("chained reuse failed: %+v", resB)
	}
	if !resB.Chained {
		t.Error("hit must be flagged as chained")
	}
	if s := b.Stats(); s.ChainHits != 1 {
		t.Errorf("chain hits = %d", s.ChainHits)
	}
}

func TestStaleLinkDoesNotChain(t *testing.T) {
	b := New(smallCfg())
	pcA, pcB := uint32(0x400000), uint32(0x400100)
	lA := b.Insert(pcA, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	inB := isa.Decode(isa.EncodeR(isa.OpADDU, isa.Reg(4), isa.Reg(3), isa.Reg(6)))
	b.Insert(pcB, &inB, 3, 10, 13, 0, lA, NoLink, false, false)

	// Evict/overwrite A's entry by filling its set with other instances.
	for i := isa.Word(10); i < 14; i++ {
		b.Insert(pcA, addu(), i, i, i, 0, NoLink, NoLink, false, false)
	}
	// A stale ReusedFrom link (old generation) must not satisfy B.
	opB1 := Operand{Ready: false, ReusedFrom: lA}
	if res := b.Test(pcB, &inB, opB1, rdy(10)); res.Hit {
		// The entry at lA.Idx now has a different generation; if this hit,
		// generation checking is broken.
		e := b.get(lA)
		t.Errorf("stale link chained: res=%+v entry=%v", res, e)
	}
}

func TestWrongPathRecovery(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	l := b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	b.MarkWrongPath(l)
	res := b.Test(pc, addu(), rdy(1), rdy(2))
	if !res.Hit || !res.WrongPathWork {
		t.Fatalf("res = %+v", res)
	}
	if s := b.Stats(); s.Recovered != 1 {
		t.Errorf("recovered = %d", s.Recovered)
	}
	// Recovery is counted once.
	res = b.Test(pc, addu(), rdy(1), rdy(2))
	if res.WrongPathWork {
		t.Error("wrong-path flag must clear after first recovery")
	}
}

func TestInsertWrongPathDirectly(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, true, false)
	res := b.Test(pc, addu(), rdy(1), rdy(2))
	if !res.Hit || !res.WrongPathWork {
		t.Fatalf("res = %+v", res)
	}
}

func TestSerializingOpsNotInserted(t *testing.T) {
	b := New(smallCfg())
	sys := isa.Decode(isa.EncodeNullary(isa.OpSYSCALL))
	if l := b.Insert(0x400000, &sys, 0, 0, 0, 0, NoLink, NoLink, false, false); l != NoLink {
		t.Error("syscall must not be buffered")
	}
	j := isa.Decode(isa.EncodeJ(isa.OpJ, 0x400000))
	if l := b.Insert(0x400004, &j, 0, 0, 0, 0, NoLink, NoLink, false, false); l != NoLink {
		t.Error("j must not be buffered")
	}
}

func TestBranchReuse(t *testing.T) {
	b := New(smallCfg())
	beq := isa.Decode(isa.EncodeI(isa.OpBEQ, isa.Reg(2), isa.Reg(1), 4))
	pc := uint32(0x400000)
	b.Insert(pc, &beq, 5, 5, 1, 0, NoLink, NoLink, false, false) // taken
	res := b.Test(pc, &beq, rdy(5), rdy(5))
	if !res.Hit || res.Value != 1 {
		t.Fatalf("branch reuse: %+v", res)
	}
	if res := b.Test(pc, &beq, rdy(5), rdy(6)); res.Hit {
		t.Error("different operands: no branch reuse")
	}
}

func TestOpMismatchNoHit(t *testing.T) {
	// Two different ops at the same pc tag (pathological but possible after
	// program rewrites) must not cross-hit.
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	sub := isa.Decode(isa.EncodeR(isa.OpSUBU, isa.Reg(3), isa.Reg(1), isa.Reg(2)))
	if res := b.Test(pc, &sub, rdy(1), rdy(2)); res.Hit {
		t.Error("op mismatch must miss")
	}
}

func TestReset(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, lw(), 0x1000, 0, 1, 0x1008, NoLink, NoLink, false, false)
	b.Reset(b.Config())
	if res := b.Test(pc, lw(), rdy(0x1000), notRdy()); res.Hit || res.AddrHit {
		t.Error("entries survive reset")
	}
	for h, nid := range b.heads {
		if nid != -1 {
			t.Errorf("load index bucket %d survives reset (head=%d)", h, nid)
		}
	}
}

func TestResetGeometryChange(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	big := Config{Entries: 4 * smallCfg().Entries, Ways: smallCfg().Ways}
	b.Reset(big)
	if b.Config() != big {
		t.Fatalf("config after geometry-change reset: %+v", b.Config())
	}
	if got := len(b.entries); got != big.Entries {
		t.Fatalf("entries after geometry-change reset: %d", got)
	}
	if res := b.Test(pc, addu(), rdy(1), rdy(2)); res.Hit {
		t.Error("entries survive geometry-change reset")
	}
}

// TestResetZeroAllocs pins the contract the sweep workers and the server
// pool rely on: resetting a buffer whose geometry already matches performs
// no allocations at all.
func TestResetZeroAllocs(t *testing.T) {
	b := New(DefaultConfig())
	for i := uint32(0); i < 512; i++ {
		b.Insert(0x400000+i*4, lw(), isa.Word(i), 0, 1, 0x1000+i*4, NoLink, NoLink, false, false)
	}
	cfg := b.Config()
	if allocs := testing.AllocsPerRun(10, func() { b.Reset(cfg) }); allocs != 0 {
		t.Errorf("Reset with matching geometry allocated %.0f times per run, want 0", allocs)
	}
}

func TestGenerationsSurviveReset(t *testing.T) {
	b := New(smallCfg())
	pc := uint32(0x400000)
	l1 := b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	b.Reset(b.Config())
	l2 := b.Insert(pc, addu(), 1, 2, 3, 0, NoLink, NoLink, false, false)
	if l1 == l2 {
		t.Error("links from before reset must not alias new entries")
	}
}

func TestRefreshWithNewResultKillsChains(t *testing.T) {
	// Regression for a timing-core divergence: a load entry refreshed in
	// place with a different value (same address, new memory contents) must
	// not satisfy old dependence pointers.
	b := New(smallCfg())
	pcL, pcB := uint32(0x400000), uint32(0x400100)
	lL := b.Insert(pcL, lw(), 0x1000, 0, 1999, 0x1008, NoLink, NoLink, false, false)
	inB := isa.Decode(isa.EncodeR(isa.OpADDU, isa.Reg(4), isa.Reg(5), isa.Reg(6)))
	b.Insert(pcB, &inB, 1999, 0xFFFFFFFF, 1998, 0, lL, NoLink, false, false)

	// The load re-executes and now returns 1998 (identical operands).
	lL2 := b.Insert(pcL, lw(), 0x1000, 0, 1998, 0x1008, NoLink, NoLink, false, false)
	if lL2 == lL {
		t.Fatal("refresh with a new result must advance the generation")
	}
	// A consumer whose operand came through the old link must not chain.
	opB1 := Operand{Ready: false, ReusedFrom: lL2}
	if res := b.Test(pcB, &inB, opB1, rdy(0xFFFFFFFF)); res.Hit {
		t.Errorf("stale chain satisfied: %+v", res)
	}
}

func TestForwardedLoadInsertsAddressOnly(t *testing.T) {
	// Regression: a load value obtained by store forwarding may never reach
	// memory (the store can be squashed); the entry must be address-only.
	b := New(smallCfg())
	pc := uint32(0x400000)
	b.Insert(pc, lw(), 0x1000, 0, 77, 0x1008, NoLink, NoLink, false, true)
	res := b.Test(pc, lw(), rdy(0x1000), notRdy())
	if res.Hit {
		t.Errorf("forwarded load result reused: %+v", res)
	}
	if !res.AddrHit {
		t.Errorf("address reuse should survive: %+v", res)
	}
}
