package sample

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// checkpointMagic versions the serialized checkpoint format.
const checkpointMagic = "VPIRCKPT1\n"

// Encode serializes the checkpoint deterministically: the restore state is
// flattened slices and arrays throughout (no maps), so a fresh encoder over
// equal state produces byte-identical output — serialize→restore→serialize
// round-trips exactly, which is what makes checkpoints content-addressable.
func (ck *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("sample: encode checkpoint %d: %w", ck.Index, err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses a serialized checkpoint.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < len(checkpointMagic) || string(b[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("sample: not a checkpoint (bad magic)")
	}
	ck := &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(b[len(checkpointMagic):])).Decode(ck); err != nil {
		return nil, fmt.Errorf("sample: decode checkpoint: %w", err)
	}
	return ck, nil
}
