package sample

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/prog"
)

// FastForward executes the program once at functional speed with functional
// warming, capturing a checkpoint at each sampled interval's capture point
// (max(0, S_k − Warmup)). maxInsts caps the dynamic instruction count like
// core.New's cap (0 = to completion).
//
// The pass is deterministic: the same (program, cfg, plan, maxInsts) yields
// byte-identical checkpoints. The first checkpoint of any plan is captured
// at instruction 0 before any warming, so restoring it reproduces a cold
// machine exactly — that is what makes a one-interval plan bit-identical to
// a non-sampled run.
func FastForward(p *prog.Program, cfg core.Config, plan Plan, maxInsts uint64) (*FFResult, error) {
	plan = plan.Normalize()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	cpu := emu.New(p)
	w := newWarmer(cfg)
	cpu.TraceFn = w.observe

	ff := &FFResult{Plan: plan}
	stride := plan.Interval * plan.Every
	for k := uint64(0); ; k++ {
		start := k * stride
		at := start
		if at > plan.Warmup {
			at -= plan.Warmup
		} else {
			at = 0
		}
		if maxInsts > 0 && start >= maxInsts {
			break
		}
		if err := runTo(cpu, at, maxInsts); err != nil {
			return nil, err
		}
		if cpu.InstCount < at || cpu.Halted {
			break // program ended before this interval begins
		}
		ff.Checkpoints = append(ff.Checkpoints, Checkpoint{
			Index: len(ff.Checkpoints),
			Start: start,
			At:    at,
			State: capture(cpu, w),
		})
	}

	// Finish the functional run (warming no longer needed) to learn the
	// program totals the stitcher scales to.
	cpu.TraceFn = nil
	if maxInsts == 0 {
		if _, err := cpu.Run(0); err != nil {
			return nil, err
		}
	} else if cpu.InstCount < maxInsts {
		if _, err := cpu.Run(maxInsts - cpu.InstCount); err != nil {
			return nil, err
		}
	}
	ff.TotalInsts = cpu.InstCount
	ff.Halted = cpu.Halted
	ff.ExitCode = cpu.ExitCode
	ff.Output = cpu.Output.String()

	// Drop checkpoints whose measured region is empty (capture raced the
	// program's end).
	for len(ff.Checkpoints) > 0 && ff.Checkpoints[len(ff.Checkpoints)-1].Start >= ff.TotalInsts {
		ff.Checkpoints = ff.Checkpoints[:len(ff.Checkpoints)-1]
	}
	if len(ff.Checkpoints) == 0 {
		return nil, fmt.Errorf("sample: program retired no instructions")
	}
	return ff, nil
}

// runTo advances the CPU to the absolute target instruction count, bounded
// by the overall cap; it never runs past either.
func runTo(cpu *emu.CPU, target, maxInsts uint64) error {
	limit := target
	if maxInsts > 0 && limit > maxInsts {
		limit = maxInsts
	}
	if cpu.InstCount >= limit {
		return nil
	}
	_, err := cpu.Run(limit - cpu.InstCount)
	return err
}

// capture snapshots the CPU's architectural state and the warmer's
// microarchitectural state into a restore record. Dirty pages are deep
// copies: the checkpoint must stay valid as fast-forward keeps mutating the
// live memory.
func capture(cpu *emu.CPU, w *warmer) *core.RestoreState {
	st := &core.RestoreState{PC: cpu.PC, Regs: cpu.Regs}
	st.Pages = make([]mem.PageImage, 0, cpu.Mem.DirtyPageCount())
	cpu.Mem.DirtyPages(func(pn uint32, data *[mem.PageSize]byte) bool {
		st.Pages = append(st.Pages, mem.PageImage{PN: pn, Data: *data})
		return true
	})
	w.snapshotInto(st)
	return st
}

// IntervalOracle re-derives the correct-path trace for one interval by
// replaying the program functionally from the checkpoint: a fresh CPU gets
// the checkpoint's registers, PC and memory image, and the next
// warm+measured instructions are collected. Checkpoints therefore never
// need to carry (or ship) whole-program traces — an interval's oracle is
// reconstructed wherever the interval runs, in O(interval) time.
func IntervalOracle(p *prog.Program, ck *Checkpoint, n uint64) (*emu.TraceLog, error) {
	if n == 0 {
		return nil, fmt.Errorf("sample: interval %d has no instructions", ck.Index)
	}
	cpu := emu.New(p)
	cpu.PC = ck.State.PC
	cpu.Regs = ck.State.Regs
	cpu.InstCount = ck.At
	for i := range ck.State.Pages {
		cpu.Mem.ApplyPage(&ck.State.Pages[i])
	}
	log, err := emu.CollectTrace(cpu, n)
	if err != nil {
		return nil, fmt.Errorf("sample: interval %d oracle: %w", ck.Index, err)
	}
	if uint64(log.Len()) != n && !log.Halted {
		return nil, fmt.Errorf("sample: interval %d oracle stopped at %d of %d instructions without halting",
			ck.Index, log.Len(), n)
	}
	return log, nil
}
