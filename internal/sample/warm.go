package sample

import (
	"github.com/vpir-sim/vpir/internal/bpred"
	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/vp"
)

// warmer maintains functionally-warmed microarchitectural structures during
// fast-forward. It observes the retired (and therefore correct-path)
// instruction stream and applies exactly the non-speculative updates the
// timing core applies at fetch and commit:
//
//   - I-cache: one access per line change, mirroring fetch's line tracking;
//   - gshare: UpdateDir with the pre-branch history, then the history shift —
//     on the correct path the speculative shift and the commit-time training
//     coincide;
//   - RAS/BTB: push on calls, pop on returns, BTB training on indirects;
//   - D-cache: one access per memory op;
//   - VPT/VPA: Train with the actual result/address (no prediction made,
//     so no confidence penalty);
//   - RB: Insert with the same buffered-result encoding the timing core's
//     issue stage produces, and InvalidateStores on every store.
//
// The RB encodings are correctness-critical, not just fidelity: a reuse hit
// skips execution unguarded, so a warm entry whose result deviates from what
// the timing core would have buffered diverges the architectural state at
// commit. The encodings (conditional branch → taken flag, JR/JALR → jump
// target, store → address only, load → loaded value, everything else → ALU
// result) mirror internal/core's issue stage field for field.
type warmer struct {
	bp       *bpred.Predictor
	ic, dc   *mem.Cache
	vpt, vpa *vp.Table
	rb       *reuse.Buffer

	lineBytes uint32
	lastLine  uint32
}

// newWarmer builds the warm structures the configuration instantiates; a
// base-config warmer carries no VPT/RB, so fast-forward pays only for what
// the timing run will restore.
func newWarmer(cfg core.Config) *warmer {
	w := &warmer{
		bp:        bpred.New(cfg.Bpred),
		ic:        mem.NewCache(cfg.ICache),
		dc:        mem.NewCache(cfg.DCache),
		lineBytes: uint32(cfg.ICache.LineBytes),
		lastLine:  ^uint32(0),
	}
	if cfg.NeedsVPT() {
		w.vpt = vp.New(cfg.VP.ResultTable)
	}
	if cfg.NeedsVPA() {
		w.vpa = vp.New(cfg.VP.AddrTable)
	}
	if cfg.NeedsRB() {
		w.rb = reuse.New(cfg.IR.Buffer)
	}
	return w
}

// observe applies one retired instruction's warm updates; it is installed as
// the fast-forward CPU's TraceFn.
func (w *warmer) observe(t *emu.Trace) {
	pc, in := t.PC, t.Inst
	op := in.Op

	if line := pc / w.lineBytes; line != w.lastLine {
		w.ic.Access(pc)
		w.lastLine = line
	}

	switch {
	case op.IsCondBranch():
		hist := w.bp.Hist()
		w.bp.UpdateDir(pc, hist, t.Taken)
		w.bp.SpecUpdateHist(t.Taken)
	case op == isa.OpJAL:
		w.bp.PushRAS(pc + 4)
	case op == isa.OpJR:
		if in.Src1 == isa.RegRA {
			w.bp.PopRAS()
		}
		w.bp.UpdateBTB(pc, uint32(t.Src1Val))
	case op == isa.OpJALR:
		w.bp.UpdateBTB(pc, uint32(t.Src1Val))
		w.bp.PushRAS(pc + 4)
	}

	if op.IsMem() {
		w.dc.Access(t.Addr)
		if w.vpa != nil {
			w.vpa.Train(pc, isa.Word(t.Addr), 0, false)
		}
	}
	if w.vpt != nil && in.Dest != isa.NoReg && !op.IsControl() && !op.Serializes() {
		w.vpt.Train(pc, t.DestVal, 0, false)
	}

	if w.rb != nil {
		var result isa.Word
		var addr uint32
		switch {
		case op.IsCondBranch():
			if t.Taken {
				result = 1
			}
		case op == isa.OpJR || op == isa.OpJALR:
			result = t.Src1Val // buffered result is the jump target, not the link
		case op.IsStore():
			addr = t.Addr // address-only entry
		case op.IsLoad():
			result, addr = t.DestVal, t.Addr
		default:
			result = t.DestVal
		}
		// Insert rejects serializing ops and OpJ itself; dependence links are
		// a timing-window notion and stay absent under functional warming.
		w.rb.Insert(pc, in, t.Src1Val, t.Src2Val, result, addr, reuse.NoLink, reuse.NoLink, false, false)
		if op.IsStore() {
			w.rb.InvalidateStores(t.Addr, emu.StoreWidth(op))
		}
	}
}

// snapshotInto captures the warm state into a checkpoint's restore record.
func (w *warmer) snapshotInto(st *core.RestoreState) {
	st.Bpred = w.bp.Snapshot()
	st.ICache = w.ic.Snapshot()
	st.DCache = w.dc.Snapshot()
	if w.vpt != nil {
		st.VPT = w.vpt.Snapshot()
	}
	if w.vpa != nil {
		st.VPA = w.vpa.Snapshot()
	}
	if w.rb != nil {
		st.RB = w.rb.Snapshot()
	}
}
