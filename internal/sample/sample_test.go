package sample

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/technique"
	"github.com/vpir-sim/vpir/internal/workload"
)

// allTechniques is the full technique matrix every sampling invariant must
// hold across: every registered technique at default knobs, so a newly
// registered scheme inherits the bit-identity, order-independence and
// checkpoint round-trip gates with no test change.
func allTechniques() map[string]core.Config {
	out := make(map[string]core.Config, 8)
	for _, name := range technique.Names() {
		cfg, err := technique.Resolve(name, technique.Knobs{})
		if err != nil {
			panic(err)
		}
		out[name] = cfg
	}
	return out
}

func loadBench(t *testing.T, name string) *prog.Program {
	t.Helper()
	w, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runFull is the non-sampled reference: core.New + run to halt.
func runFull(t *testing.T, p *prog.Program, cfg core.Config, maxInsts uint64) (*core.Machine, core.Stats) {
	t.Helper()
	m, err := core.New(p, cfg, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	return m, m.Stats()
}

// runSampled executes the plan end to end in-process: fast-forward, one
// restored machine per interval (in the given order), stitch.
func runSampled(t *testing.T, p *prog.Program, cfg core.Config, plan Plan, maxInsts uint64, order []int) *Summary {
	t.Helper()
	ff, err := FastForward(p, cfg, plan, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if order == nil {
		order = make([]int, len(ff.Checkpoints))
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != len(ff.Checkpoints) {
		t.Fatalf("order has %d entries, plan has %d checkpoints", len(order), len(ff.Checkpoints))
	}
	ivs := make([]IntervalResult, len(ff.Checkpoints))
	var m *core.Machine
	for _, k := range order {
		ck, warm, measured, err := ff.IntervalSpec(k)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := IntervalOracle(p, ck, warm+measured)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			m, err = core.NewRestored(p, cfg, ck.State, oracle)
		} else {
			err = m.ResetTo(cfg, ck.State, oracle)
		}
		if err != nil {
			t.Fatal(err)
		}
		iv, err := DriveInterval(context.Background(), m, ck, warm)
		if err != nil {
			t.Fatal(err)
		}
		ivs[k] = iv
	}
	sum, err := Stitch(ff, ivs)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestSingleIntervalBitIdentity is the differential gate: a plan covering
// the whole program in one interval must produce core.Stats bit-identical
// to a non-sampled run, for every registered technique, plus identical output and
// exit code.
func TestSingleIntervalBitIdentity(t *testing.T) {
	const maxInsts = 40_000
	p := loadBench(t, "compress")
	for name, cfg := range allTechniques() {
		t.Run(name, func(t *testing.T) {
			m, want := runFull(t, p, cfg, maxInsts)
			sum := runSampled(t, p, cfg, Plan{Interval: 1 << 40}, maxInsts, nil)
			if sum.Intervals != 1 {
				t.Fatalf("expected one interval, got %d", sum.Intervals)
			}
			if !sum.Exact {
				t.Fatal("single full interval must be an exact aggregate")
			}
			if sum.Stats != want {
				t.Fatalf("stitched stats differ from the non-sampled run:\n got %+v\nwant %+v", sum.Stats, want)
			}
			if sum.Output != m.Output() {
				t.Fatalf("output differs: %q vs %q", sum.Output, m.Output())
			}
			if sum.ExitCode != m.ExitCode() {
				t.Fatalf("exit code %d vs %d", sum.ExitCode, m.ExitCode())
			}
		})
	}
}

// TestShuffledIntervalDeterminism runs a multi-interval plan in index order
// and in a shuffled order on a reused (ResetTo) machine; the stitched
// summaries must be bit-identical — interval execution order is
// unobservable. Full coverage also pins the exact-aggregation contract:
// every committed instruction is counted exactly once.
func TestShuffledIntervalDeterminism(t *testing.T) {
	const maxInsts = 48_000
	p := loadBench(t, "go")
	plan := Plan{Interval: 8_000, Every: 1, Warmup: 0}
	for name, cfg := range allTechniques() {
		t.Run(name, func(t *testing.T) {
			inOrder := runSampled(t, p, cfg, plan, maxInsts, nil)
			n := inOrder.Intervals
			order := rand.New(rand.NewSource(42)).Perm(n)
			shuffled := runSampled(t, p, cfg, plan, maxInsts, order)
			if inOrder.Stats != shuffled.Stats {
				t.Fatalf("stitched stats depend on interval order:\n got %+v\nwant %+v", shuffled.Stats, inOrder.Stats)
			}
			if inOrder.SampledInsts != uint64(maxInsts) {
				t.Fatalf("full coverage measured %d of %d instructions", inOrder.SampledInsts, maxInsts)
			}
			if !inOrder.Exact {
				t.Fatal("full coverage must aggregate exactly")
			}
			// Contiguous zero-warmup coverage reassembles the output.
			m, _ := runFull(t, p, cfg, maxInsts)
			if inOrder.Output != m.Output() {
				t.Fatalf("reassembled output differs: %q vs %q", inOrder.Output, m.Output())
			}
		})
	}
}

// TestWarmupSubtraction checks the warmup accounting: with detailed warmup,
// each interval's measured instruction count still equals the plan interval
// (warmup discarded), and sparse sampling scales totals to the program.
func TestWarmupSubtraction(t *testing.T) {
	const maxInsts = 60_000
	p := loadBench(t, "perl")
	plan := Plan{Interval: 5_000, Every: 2, Warmup: 2_000}
	cfg := core.IRChoice(false)
	sum := runSampled(t, p, cfg, plan, maxInsts, nil)
	if sum.Exact {
		t.Fatal("sparse plan cannot be exact")
	}
	if sum.Coverage <= 0.3 || sum.Coverage >= 0.7 {
		t.Fatalf("every=2 coverage = %.2f, expected ≈0.5", sum.Coverage)
	}
	// The ratio estimator scales committed instructions back to the total.
	if got := sum.Stats.Committed; got != maxInsts {
		t.Fatalf("scaled committed = %d, want %d", got, maxInsts)
	}
	if len(sum.CIs) == 0 {
		t.Fatal("summary carries no confidence intervals")
	}
	for _, ci := range sum.CIs {
		if ci.Name == "ipc" && ci.Mean <= 0 {
			t.Fatalf("ipc mean %v", ci.Mean)
		}
	}
}

// TestCheckpointRoundTrip is the serialization gate: encode → decode →
// encode must be byte-identical, and a machine restored from the decoded
// checkpoint must behave identically, across every registered technique.
func TestCheckpointRoundTrip(t *testing.T) {
	const maxInsts = 30_000
	p := loadBench(t, "m88ksim")
	plan := Plan{Interval: 10_000, Every: 1, Warmup: 1_000}
	for name, cfg := range allTechniques() {
		t.Run(name, func(t *testing.T) {
			ff, err := FastForward(p, cfg, plan, maxInsts)
			if err != nil {
				t.Fatal(err)
			}
			if len(ff.Checkpoints) < 2 {
				t.Fatalf("plan produced %d checkpoints", len(ff.Checkpoints))
			}
			ck := &ff.Checkpoints[1] // a warmed, mid-program checkpoint
			b1, err := ck.Encode()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeCheckpoint(b1)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := dec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("serialize→restore→serialize is not byte-identical")
			}

			// The decoded checkpoint must drive an identical interval.
			_, warm, measured, err := ff.IntervalSpec(1)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := IntervalOracle(p, ck, warm+measured)
			if err != nil {
				t.Fatal(err)
			}
			m1, err := core.NewRestored(p, cfg, ck.State, oracle)
			if err != nil {
				t.Fatal(err)
			}
			iv1, err := DriveInterval(context.Background(), m1, ck, warm)
			if err != nil {
				t.Fatal(err)
			}
			oracle2, err := IntervalOracle(p, dec, warm+measured)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := core.NewRestored(p, cfg, dec.State, oracle2)
			if err != nil {
				t.Fatal(err)
			}
			iv2, err := DriveInterval(context.Background(), m2, dec, warm)
			if err != nil {
				t.Fatal(err)
			}
			if iv1.Stats != iv2.Stats {
				t.Fatalf("decoded checkpoint diverges:\n got %+v\nwant %+v", iv2.Stats, iv1.Stats)
			}
		})
	}
}

// TestStatsMinus pins the counter-subtraction helper the warmup accounting
// rests on.
func TestStatsMinus(t *testing.T) {
	a := core.Stats{Cycles: 10, Committed: 7, ExecTimes: [4]uint64{4, 3, 2, 1}}
	b := core.Stats{Cycles: 4, Committed: 2, ExecTimes: [4]uint64{1, 1, 1, 1}}
	d := a.Minus(b)
	if d.Cycles != 6 || d.Committed != 5 || d.ExecTimes != [4]uint64{3, 2, 1, 0} {
		t.Fatalf("Minus = %+v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter delta must panic")
		}
	}()
	_ = b.Minus(a)
}

// TestPlanValidate covers plan normalization and rejection.
func TestPlanValidate(t *testing.T) {
	if err := (Plan{}).Validate(); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if err := (Plan{Interval: 100, Every: 4, Warmup: 500}).Validate(); err == nil {
		t.Fatal("warmup beyond the stride must be rejected")
	}
	p := (Plan{Interval: 100}).Normalize()
	if p.Every != 1 {
		t.Fatalf("Every normalized to %d", p.Every)
	}
	if (Plan{Interval: 5, Every: 2, Warmup: 1}).Key() != "i5.e2.w1" {
		t.Fatalf("Key = %q", (Plan{Interval: 5, Every: 2, Warmup: 1}).Key())
	}
}
