package sample

import (
	"context"
	"fmt"
	"math"
	"reflect"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/stats"
)

// DriveInterval runs a machine that ResetTo/NewRestored placed on a
// checkpoint: the detailed-warmup region is driven cycle by cycle so the
// warmup boundary lands on the first cycle with warm instructions committed
// (deterministic, machine-independent), its statistics snapshot is taken,
// the measured region runs to the oracle's end, and the warmup counters are
// subtracted away. The returned IntervalResult covers exactly the measured
// region.
func DriveInterval(ctx context.Context, m *core.Machine, ck *Checkpoint, warm uint64) (IntervalResult, error) {
	iv := IntervalResult{Index: ck.Index, Start: ck.Start}
	const slice = 4096 // cycles between context-deadline checks
	for warm > 0 && !m.Halted() && m.Stats().Committed < warm {
		if err := ctx.Err(); err != nil {
			return iv, fmt.Errorf("sample: interval %d: %w", ck.Index, err)
		}
		if err := m.Run(1); err != nil {
			return iv, err
		}
	}
	base := m.Stats()
	iv.Warm = base.Committed
	for !m.Halted() {
		if err := ctx.Err(); err != nil {
			return iv, fmt.Errorf("sample: interval %d: %w", ck.Index, err)
		}
		if err := m.Run(slice); err != nil {
			return iv, err
		}
	}
	iv.Stats = m.Stats().Minus(base)
	iv.Insts = iv.Stats.Committed
	iv.Output = m.Output()
	iv.ExitCode = m.ExitCode()
	// The machine halts either because the interval's oracle ran out or
	// because the program genuinely ended inside the interval; the oracle
	// records which.
	iv.Halted = m.Oracle().Halted
	return iv, nil
}

// intervalMetrics are the per-interval derived metrics that get confidence
// intervals in the stitched summary.
var intervalMetrics = []struct {
	name string
	f    func(core.Stats) float64
}{
	{"ipc", core.Stats.IPC},
	{"branch_pred_rate", core.Stats.BranchPredRate},
	{"icache_miss_rate", func(s core.Stats) float64 {
		if s.ICacheAccesses == 0 {
			return 0
		}
		return 100 * float64(s.ICacheMisses) / float64(s.ICacheAccesses)
	}},
	{"dcache_miss_rate", func(s core.Stats) float64 {
		if s.DCacheAccesses == 0 {
			return 0
		}
		return 100 * float64(s.DCacheMisses) / float64(s.DCacheAccesses)
	}},
	{"reuse_result_rate", core.Stats.ReuseResultRate},
	{"vp_result_pred", func(s core.Stats) float64 { p, _ := s.VPResultRates(); return p }},
}

// Stitch combines the per-interval measurements into a whole-program
// estimate. Results must arrive complete and in index order (the harness's
// deterministic cell-ordered merge provides exactly that); the stitch output
// is then independent of how the intervals were scheduled.
//
// With complete coverage the counters are summed exactly; with sparse
// coverage every counter is ratio-scaled by committed instructions
// (estimate = Σ sampled · TotalInsts / Σ sampled committed), the standard
// per-instruction ratio estimator. Per-metric 95% confidence intervals are
// computed across the per-interval values of each derived metric.
func Stitch(ff *FFResult, ivs []IntervalResult) (*Summary, error) {
	if len(ivs) != len(ff.Checkpoints) {
		return nil, fmt.Errorf("sample: stitch got %d interval results, plan has %d", len(ivs), len(ff.Checkpoints))
	}
	plan := ff.Plan.Normalize()
	sum := &Summary{
		Plan:       plan,
		Intervals:  len(ivs),
		TotalInsts: ff.TotalInsts,
	}
	var agg core.Stats
	for i := range ivs {
		iv := &ivs[i]
		if iv.Index != i {
			return nil, fmt.Errorf("sample: stitch results out of order: position %d holds interval %d", i, iv.Index)
		}
		ck, warm, measured, err := ff.IntervalSpec(i)
		if err != nil {
			return nil, err
		}
		// The interval's oracle covers warm+measured instructions and the
		// machine commits all of them (unless the program halted inside the
		// interval, in which case it commits fewer). The warm/measured split
		// lands on a cycle boundary, so Warm may exceed the plan's warmup by a
		// commit-width's worth — the sum is what must be exact.
		if total := iv.Warm + iv.Insts; total != warm+measured && !(iv.Halted && total < warm+measured) {
			return nil, fmt.Errorf("sample: interval %d committed %d warm + %d measured instructions, oracle had %d (checkpoint at %d)",
				i, iv.Warm, iv.Insts, warm+measured, ck.At)
		}
		if iv.Warm < warm && !iv.Halted {
			return nil, fmt.Errorf("sample: interval %d warmup stopped at %d of %d instructions", i, iv.Warm, warm)
		}
		agg = addStats(agg, iv.Stats)
		sum.SampledInsts += iv.Insts
	}
	if sum.SampledInsts == 0 {
		return nil, fmt.Errorf("sample: no instructions measured")
	}
	sum.Coverage = float64(sum.SampledInsts) / float64(ff.TotalInsts)

	if sum.SampledInsts >= ff.TotalInsts {
		// Complete coverage: the aggregate is exact, no estimation involved.
		sum.Stats = agg
		sum.Exact = true
	} else {
		sum.Stats = scaleStats(agg, float64(ff.TotalInsts)/float64(sum.SampledInsts))
	}

	for _, met := range intervalMetrics {
		xs := make([]float64, len(ivs))
		for i := range ivs {
			xs[i] = met.f(ivs[i].Stats)
		}
		mean, half := stats.MeanCI(xs)
		sum.CIs = append(sum.CIs, MetricCI{Name: met.name, Mean: mean, Half: half})
	}

	// Architectural results: the exit code comes from the functional run
	// (always authoritative); the output reassembles only when the plan
	// measured the program contiguously with no duplicated warmup regions.
	sum.ExitCode = ff.ExitCode
	sum.Halted = ff.Halted
	if plan.Every == 1 && plan.Warmup == 0 {
		out := ""
		for i := range ivs {
			out += ivs[i].Output
		}
		sum.Output = out
	}
	return sum, nil
}

// addStats is counter-wise addition, reflective for the same reason
// Stats.Minus is: new counters must never silently drop out of stitching.
func addStats(a, b core.Stats) core.Stats {
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		addCounter(av.Field(i), bv.Field(i))
	}
	return a
}

func addCounter(a, b reflect.Value) {
	switch a.Kind() {
	case reflect.Uint64:
		a.SetUint(a.Uint() + b.Uint())
	case reflect.Array:
		for j := 0; j < a.Len(); j++ {
			addCounter(a.Index(j), b.Index(j))
		}
	default:
		panic("sample: non-counter field in core.Stats; teach addStats about it")
	}
}

// scaleStats multiplies every counter by the ratio estimator's factor,
// rounding to nearest; factor 1 is the identity by construction.
func scaleStats(s core.Stats, factor float64) core.Stats {
	sv := reflect.ValueOf(&s).Elem()
	for i := 0; i < sv.NumField(); i++ {
		scaleCounter(sv.Field(i), factor)
	}
	return s
}

func scaleCounter(v reflect.Value, factor float64) {
	switch v.Kind() {
	case reflect.Uint64:
		v.SetUint(uint64(math.Round(float64(v.Uint()) * factor)))
	case reflect.Array:
		for j := 0; j < v.Len(); j++ {
			scaleCounter(v.Index(j), factor)
		}
	default:
		panic("sample: non-counter field in core.Stats; teach scaleStats about it")
	}
}
