// Package sample implements checkpointed sampled simulation: the program is
// executed once at functional speed with the branch predictor, caches, value
// prediction tables and reuse buffer functionally warmed along the way;
// architectural checkpoints (register file, PC, dirty memory pages, warm
// predictor state) are captured at interval boundaries; each sampled
// interval is then simulated in detail on a timing machine restored from its
// checkpoint; and the per-interval statistics are stitched into
// whole-program estimates with per-metric confidence intervals.
//
// Checkpoints are the unit of parallelism: intervals are independent once
// their checkpoints exist, so they fan out across the harness worker pool
// locally and across machines as sweep cells (see internal/harness and
// internal/coord). Determinism is preserved end to end — the same plan over
// the same program yields bit-identical checkpoints, interval statistics and
// stitched totals regardless of execution order, and a plan covering the
// whole program in one interval reproduces a non-sampled run exactly.
package sample

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/core"
)

// Plan describes a sampling regime in dynamic instructions.
type Plan struct {
	// Interval is the length of each measured interval (> 0).
	Interval uint64
	// Every samples one interval out of this many (1 = 100% coverage;
	// 0 normalizes to 1). With Every = k, interval j is measured iff
	// j ≡ 0 (mod k), so coverage ≈ 1/k.
	Every uint64
	// Warmup is the number of detailed-warmup instructions simulated before
	// each measured interval; their statistics are discarded by counter
	// subtraction (core.Stats.Minus). The checkpoint for interval k starting
	// at instruction S_k is taken at max(0, S_k − Warmup). Functional
	// warming during fast-forward is always on regardless; Warmup buys
	// additional pipeline/queue warmth that functional warming cannot model.
	Warmup uint64
}

// Normalize fills defaulted fields (Every 0 → 1).
func (p Plan) Normalize() Plan {
	if p.Every == 0 {
		p.Every = 1
	}
	return p
}

// Validate rejects unusable plans.
func (p Plan) Validate() error {
	if p.Interval == 0 {
		return fmt.Errorf("sample: interval must be positive")
	}
	if p.Warmup >= p.Interval*p.Every && p.Every > 1 {
		// Overlapping warmup in a sparse plan would re-measure earlier
		// intervals' instructions as warmup, which is fine; warmup larger
		// than the whole stride is almost certainly a unit mistake.
		return fmt.Errorf("sample: warmup %d exceeds the sampling stride %d", p.Warmup, p.Interval*p.Every)
	}
	return nil
}

// Key is the plan's cache-key fragment; harness and server result caches
// append it so sampled and non-sampled results can never alias.
func (p Plan) Key() string {
	p = p.Normalize()
	return fmt.Sprintf("i%d.e%d.w%d", p.Interval, p.Every, p.Warmup)
}

// Checkpoint is one restorable point of the fast-forward run.
type Checkpoint struct {
	// Index is the checkpoint's position in FFResult.Checkpoints.
	Index int
	// Start is the dynamic instruction number of the first measured
	// instruction of the interval (S_k = k·Every·Interval).
	Start uint64
	// At is the instruction count at which the state was captured:
	// max(0, Start − Warmup). The Start−At instructions replayed before the
	// measured region are the detailed warmup.
	At uint64
	// State is everything restored onto the timing machine.
	State *core.RestoreState
}

// FFResult is the outcome of one fast-forward pass: the checkpoints of every
// sampled interval plus the program-level totals the stitcher scales to.
type FFResult struct {
	Plan        Plan
	TotalInsts  uint64 // dynamic instructions to halt (or the instruction cap)
	Halted      bool   // false when the instruction cap cut the run
	ExitCode    int
	Output      string // architectural output of the full functional run
	Checkpoints []Checkpoint
}

// IntervalSpec returns checkpoint k with its warmup and measured lengths in
// instructions; the interval oracle must cover warm+measured instructions
// from Checkpoint.At.
func (f *FFResult) IntervalSpec(k int) (ck *Checkpoint, warm, measured uint64, err error) {
	if k < 0 || k >= len(f.Checkpoints) {
		return nil, 0, 0, fmt.Errorf("sample: interval index %d out of range (plan has %d)", k, len(f.Checkpoints))
	}
	ck = &f.Checkpoints[k]
	warm = ck.Start - ck.At
	measured = f.Plan.Normalize().Interval
	if remaining := f.TotalInsts - ck.Start; measured > remaining {
		measured = remaining
	}
	return ck, warm, measured, nil
}

// IntervalResult is one interval's detailed measurement: the statistics of
// the measured region (detailed warmup already subtracted), and the
// architectural output/exit of the interval's machine.
type IntervalResult struct {
	Index int
	Start uint64
	// Insts is the measured committed instruction count (== Stats.Committed).
	Insts uint64
	// Warm is the committed instruction count of the discarded detailed-warmup
	// region. The machine commits whole cycles, so Warm may overshoot the
	// plan's Warmup by up to a commit-width's worth of instructions; the
	// stitcher checks the exact invariant Warm + Insts == oracle length
	// instead of an instruction-granular boundary. Deterministic for a given
	// (program, cfg, plan).
	Warm uint64
	// Stats covers exactly the measured region.
	Stats core.Stats
	// Output is what the interval's machine printed, including during
	// detailed warmup; it reassembles into the full program output only for
	// contiguous zero-warmup plans.
	Output   string
	ExitCode int
	Halted   bool
}

// MetricCI is a per-metric confidence interval over the sampled intervals.
type MetricCI struct {
	Name string
	Mean float64
	// Half is the half-width of the two-sided 95% confidence interval
	// (Student t over the per-interval metric values); 0 with one interval.
	Half float64
}

// Summary is the stitched whole-program estimate.
type Summary struct {
	Plan Plan
	// Stats is the whole-program estimate: exact sums when coverage is
	// complete, ratio-scaled by committed instructions otherwise.
	Stats core.Stats
	// Exact reports that Stats is an exact aggregate (every committed
	// instruction was measured), in which case a single-interval plan is
	// bit-identical to a non-sampled run.
	Exact        bool
	Intervals    int
	TotalInsts   uint64
	SampledInsts uint64
	Coverage     float64 // SampledInsts / TotalInsts
	CIs          []MetricCI

	// Output and ExitCode are the program's architectural results; Output is
	// only available ("" otherwise) when the plan measures the program
	// contiguously from instruction 0 with zero detailed warmup, so the
	// per-interval outputs concatenate without duplication.
	Output   string
	ExitCode int
	Halted   bool
}
