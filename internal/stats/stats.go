// Package stats provides the small numeric and formatting helpers shared
// by the experiment harness and the command-line tools: harmonic means (the
// paper reports HM over benchmarks) and fixed-width text tables shaped like
// the paper's tables and figures.
package stats

import (
	"fmt"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs; it is the paper's "HM" bar
// for speedups. Non-positive values are rejected by returning 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Table is a rendered experiment result: one paper table or figure.
type Table struct {
	ID      string // "table3", "fig6a", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table in aligned monospace.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// F formats a float with one decimal (the paper's usual precision).
func F(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals (speedups, normalized values).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// N formats an integer count.
func N(v uint64) string { return fmt.Sprintf("%d", v) }
