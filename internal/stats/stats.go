// Package stats provides the small numeric and formatting helpers shared
// by the experiment harness and the command-line tools: harmonic means (the
// paper reports HM over benchmarks) and fixed-width text tables shaped like
// the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// HarmonicMean returns the harmonic mean of xs; it is the paper's "HM" bar
// for speedups. Non-positive values are rejected by returning 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Table is a rendered experiment result: one paper table or figure.
type Table struct {
	ID      string // "table3", "fig6a", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table in aligned monospace. Widths are measured in
// runes, not bytes, so multi-byte cells (sparklines, ellipses) stay
// aligned; rows may have fewer or more cells than there are columns —
// missing cells render empty, extra cells render unaligned rather than
// panicking.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	pad := func(cell string, w int, leftAlign bool) {
		n := w - utf8.RuneCountInString(cell)
		if n < 0 {
			n = 0
		}
		if leftAlign {
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", n))
		} else {
			b.WriteString(strings.Repeat(" ", n))
			b.WriteString(cell)
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			pad(cell, w, i == 0)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// sparkRunes are the eight block characters used by Sparkline, lowest to
// highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a unicode block-character strip of at most
// width runes (width <= 0 means one rune per value). Values are scaled
// between the min and max of the series; a flat series renders as all-low
// blocks. Non-finite values render as spaces. When the series is longer
// than width, each output rune shows the mean of its bucket.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width <= 0 || width > len(vals) {
		width = len(vals)
	}
	// Bucket by mean so long series compress instead of being sampled.
	buckets := make([]float64, width)
	ok := make([]bool, width)
	counts := make([]int, width)
	for i, v := range vals {
		b := i * width / len(vals)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		buckets[b] += v
		counts[b]++
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for b := range buckets {
		if counts[b] == 0 {
			continue
		}
		buckets[b] /= float64(counts[b])
		ok[b] = true
		if buckets[b] < lo {
			lo = buckets[b]
		}
		if buckets[b] > hi {
			hi = buckets[b]
		}
	}
	var sb strings.Builder
	for b := range buckets {
		if !ok[b] {
			sb.WriteByte(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((buckets[b] - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// F formats a float with one decimal (the paper's usual precision).
func F(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals (speedups, normalized values).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// N formats an integer count.
func N(v uint64) string { return fmt.Sprintf("%d", v) }
