package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HM(nil) = %v", got)
	}
	if got := HarmonicMean([]float64{2, 2, 2}); got != 2 {
		t.Errorf("HM(2,2,2) = %v", got)
	}
	got := HarmonicMean([]float64{1, 2})
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("HM(1,2) = %v", got)
	}
	if got := HarmonicMean([]float64{1, 0}); got != 0 {
		t.Errorf("HM with zero = %v, want 0", got)
	}
	if got := HarmonicMean([]float64{1, -1}); got != 0 {
		t.Errorf("HM with negative = %v, want 0", got)
	}
}

// Property: HM <= arithmetic mean for positive inputs.
func TestHarmonicMeanBound(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		hm := HarmonicMean(xs)
		am := (xs[0] + xs[1] + xs[2]) / 3
		return hm > 0 && hm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "t1", Title: "demo", Columns: []string{"bench", "value"}}
	tab.AddRow("go", "1.23")
	tab.AddRow("m88ksim", "45.6")
	tab.Note("a note with %d", 7)
	out := tab.String()
	for _, want := range []string{"t1 — demo", "bench", "m88ksim", "45.6", "note: a note with 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Numeric columns are right-aligned: "1.23" should appear padded.
	lines := strings.Split(out, "\n")
	var goLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "go") {
			goLine = l
		}
	}
	if !strings.HasSuffix(goLine, " 1.23") {
		t.Errorf("value column not right-aligned: %q", goLine)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.26) != "1.3" || F2(1.267) != "1.27" || F3(1.2345) != "1.234" || N(42) != "42" {
		t.Error("formatter output changed")
	}
}
