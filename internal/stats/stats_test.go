package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HM(nil) = %v", got)
	}
	if got := HarmonicMean([]float64{2, 2, 2}); got != 2 {
		t.Errorf("HM(2,2,2) = %v", got)
	}
	got := HarmonicMean([]float64{1, 2})
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("HM(1,2) = %v", got)
	}
	if got := HarmonicMean([]float64{1, 0}); got != 0 {
		t.Errorf("HM with zero = %v, want 0", got)
	}
	if got := HarmonicMean([]float64{1, -1}); got != 0 {
		t.Errorf("HM with negative = %v, want 0", got)
	}
}

// Property: HM <= arithmetic mean for positive inputs.
func TestHarmonicMeanBound(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		hm := HarmonicMean(xs)
		am := (xs[0] + xs[1] + xs[2]) / 3
		return hm > 0 && hm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "t1", Title: "demo", Columns: []string{"bench", "value"}}
	tab.AddRow("go", "1.23")
	tab.AddRow("m88ksim", "45.6")
	tab.Note("a note with %d", 7)
	out := tab.String()
	for _, want := range []string{"t1 — demo", "bench", "m88ksim", "45.6", "note: a note with 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Numeric columns are right-aligned: "1.23" should appear padded.
	lines := strings.Split(out, "\n")
	var goLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "go") {
			goLine = l
		}
	}
	if !strings.HasSuffix(goLine, " 1.23") {
		t.Errorf("value column not right-aligned: %q", goLine)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.26) != "1.3" || F2(1.267) != "1.27" || F3(1.2345) != "1.234" || N(42) != "42" {
		t.Error("formatter output changed")
	}
}

func TestTableEmptyRows(t *testing.T) {
	tab := &Table{ID: "t0", Title: "empty", Columns: []string{"a", "b"}}
	out := tab.String()
	if !strings.Contains(out, "t0 — empty") || !strings.Contains(out, "a") {
		t.Errorf("empty table render broken:\n%s", out)
	}
	// No rows means header, rule, nothing else.
	if n := strings.Count(out, "\n"); n != 3 {
		t.Errorf("empty table has %d lines, want 3 (title, header, rule):\n%s", n, out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := &Table{ID: "t1", Title: "ragged", Columns: []string{"bench", "ipc", "speedup"}}
	tab.AddRow("go")                           // fewer cells than columns
	tab.AddRow("gcc", "1.02")                  // fewer cells
	tab.AddRow("perl", "0.98", "1.10", "oops") // more cells than columns
	var out string
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ragged rows panicked: %v", r)
			}
		}()
		out = tab.String()
	}()
	for _, want := range []string{"go", "gcc", "perl", "oops"} {
		if !strings.Contains(out, want) {
			t.Errorf("ragged render missing %q:\n%s", want, out)
		}
	}
}

func TestTableMultiByteRunes(t *testing.T) {
	tab := &Table{ID: "t2", Title: "unicode", Columns: []string{"name", "trend"}}
	tab.AddRow("short", "▁▂▃▄")
	tab.AddRow("a-much-longer-name", "▇█")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All data lines must be the same rune width: sparkline runes count as
	// one column each, not three bytes.
	var widths []int
	for _, l := range lines[1:] { // skip title
		widths = append(widths, len([]rune(l)))
	}
	for i := 1; i < len(widths); i++ {
		if widths[i] != widths[0] {
			t.Errorf("line %d rune width %d != %d; multi-byte cells misaligned:\n%s",
				i, widths[i], widths[0], out)
		}
	}
}

func TestTableNotesOnly(t *testing.T) {
	tab := &Table{ID: "t3", Title: "notes"}
	tab.Note("only a footnote")
	out := tab.String()
	if !strings.Contains(out, "note: only a footnote") {
		t.Errorf("notes-only table lost its note:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("Sparkline(nil) = %q", got)
	}
	up := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 0)
	if up != "▁▂▃▄▅▆▇█" {
		t.Errorf("ascending ramp = %q", up)
	}
	flat := Sparkline([]float64{5, 5, 5}, 0)
	if flat != "▁▁▁" {
		t.Errorf("flat series = %q", flat)
	}
	// Compression: 100 points into 10 runes, still monotone.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	comp := Sparkline(long, 10)
	if n := len([]rune(comp)); n != 10 {
		t.Errorf("compressed width = %d, want 10 (%q)", n, comp)
	}
	r := []rune(comp)
	for i := 1; i < len(r); i++ {
		if r[i] < r[i-1] {
			t.Errorf("compressed ramp not monotone: %q", comp)
		}
	}
	// Non-finite values render as spaces, finite neighbors survive.
	gap := Sparkline([]float64{1, math.NaN(), 3}, 0)
	if len([]rune(gap)) != 3 || []rune(gap)[1] != ' ' {
		t.Errorf("NaN gap = %q", gap)
	}
}

const benchText = `goos: linux
goarch: amd64
pkg: github.com/vpir-sim/vpir
cpu: AMD EPYC
BenchmarkSimBase-8   	      12	  95314958 ns/op	  5131289 B/op	   33916 allocs/op
BenchmarkSimIR-8     	       9	 112233445 ns/op	 14400741 simcycles/s	  6100100 siminsts/s
PASS
ok  	github.com/vpir-sim/vpir	30.1s
`

func TestParseBench(t *testing.T) {
	res, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d results, want 2", len(res))
	}
	b := res[0]
	if b.Name != "BenchmarkSimBase" || b.Runs != 12 || b.NsPerOp != 95314958 ||
		b.BytesPerOp != 5131289 || b.AllocsPerOp != 33916 {
		t.Errorf("first result wrong: %+v", b)
	}
	ir := res[1]
	if ir.Name != "BenchmarkSimIR" || ir.Metrics["simcycles/s"] != 14400741 ||
		ir.Metrics["siminsts/s"] != 6100100 {
		t.Errorf("custom metrics wrong: %+v", ir)
	}
	if _, err := ParseBench(strings.NewReader("BenchmarkBroken-8 twelve 5 ns/op\n")); err == nil {
		t.Error("malformed run count accepted")
	}
	if _, err := ParseBench(strings.NewReader("BenchmarkBroken-8 12 5\n")); err == nil {
		t.Error("odd field count accepted")
	}
}

func TestBenchJSONAndCompare(t *testing.T) {
	res, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBenchJSON(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != 2 {
		t.Errorf("JSONL line count wrong:\n%s", out)
	}
	for _, want := range []string{`"name":"BenchmarkSimBase"`, `"ns_per_op":95314958`, `"simcycles/s":14400741`} {
		if !strings.Contains(out, want) {
			t.Errorf("bench JSON missing %s:\n%s", want, out)
		}
	}
	// A 10% slower re-run compares as +0.10.
	newer := make([]BenchResult, len(res))
	copy(newer, res)
	newer[0].NsPerOp *= 1.10
	d := CompareBench(res, newer)
	if math.Abs(d["BenchmarkSimBase"]-0.10) > 1e-9 {
		t.Errorf("slowdown = %v, want 0.10", d["BenchmarkSimBase"])
	}
	if d["BenchmarkSimIR"] != 0 {
		t.Errorf("unchanged benchmark compares as %v", d["BenchmarkSimIR"])
	}
}

func TestReadBenchJSONRoundTrip(t *testing.T) {
	res, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBenchJSON(&sb, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchJSON(strings.NewReader(sb.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res) {
		t.Fatalf("round trip lost results: %d != %d", len(back), len(res))
	}
	for i := range res {
		if back[i].Name != res[i].Name || back[i].NsPerOp != res[i].NsPerOp ||
			back[i].AllocsPerOp != res[i].AllocsPerOp ||
			back[i].Metrics["simcycles/s"] != res[i].Metrics["simcycles/s"] {
			t.Errorf("result %d changed in round trip:\n got %+v\nwant %+v", i, back[i], res[i])
		}
	}
	if _, err := ReadBenchJSON(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed JSONL accepted")
	}
	if _, err := ReadBenchJSON(strings.NewReader(`{"runs":3}` + "\n")); err == nil {
		t.Error("nameless baseline line accepted")
	}
}

func TestDiffBenchAndRegression(t *testing.T) {
	old := []BenchResult{{
		Name: "BenchmarkSimBase", Runs: 3, NsPerOp: 100, AllocsPerOp: 1000,
		Metrics: map[string]float64{"simcycles/s": 2000},
	}}
	newer := []BenchResult{{
		Name: "BenchmarkSimBase", Runs: 3, NsPerOp: 110, AllocsPerOp: 500,
		Metrics: map[string]float64{"simcycles/s": 1600},
	}, {
		Name: "BenchmarkOnlyNew", Runs: 1, NsPerOp: 5,
	}}
	deltas := DiffBench(old, newer)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (ns/op, allocs/op, simcycles/s): %+v", len(deltas), deltas)
	}
	byUnit := map[string]BenchDelta{}
	for _, d := range deltas {
		if d.Name != "BenchmarkSimBase" {
			t.Errorf("unpaired benchmark leaked into diff: %+v", d)
		}
		byUnit[d.Unit] = d
	}
	// ns/op rose 10%: that is the regression.
	if d := byUnit["ns/op"]; math.Abs(d.Delta-0.10) > 1e-9 || math.Abs(d.Regression()-0.10) > 1e-9 {
		t.Errorf("ns/op delta/regression = %v/%v, want 0.10/0.10", d.Delta, d.Regression())
	}
	// allocs/op halved: an improvement, regression 0.
	if d := byUnit["allocs/op"]; d.Regression() != 0 {
		t.Errorf("allocs/op improvement scored as regression %v", d.Regression())
	}
	// simcycles/s dropped 20%: throughput, so the *drop* is the regression.
	if d := byUnit["simcycles/s"]; math.Abs(d.Regression()-0.20) > 1e-9 {
		t.Errorf("simcycles/s regression = %v, want 0.20", d.Regression())
	}
}
