package stats

import "math"

// t95 holds two-sided 95% Student-t critical values indexed by degrees of
// freedom (1-based); beyond the table the normal value 1.960 is used. Small
// sampled-simulation runs have few intervals, where the t correction
// matters most.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// T95 returns the two-sided 95% Student-t critical value for the given
// degrees of freedom (df ≤ 0 returns 0).
func T95(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.960
}

// MeanCI returns the sample mean of xs and the half-width of its two-sided
// 95% confidence interval (Student t with n−1 degrees of freedom). Fewer
// than two samples yield a zero half-width: a single interval is a point
// estimate, not a distribution.
func MeanCI(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, T95(n-1) * sd / math.Sqrt(float64(n))
}
