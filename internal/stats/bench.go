package stats

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one `go test -bench` result line, e.g.
//
//	BenchmarkSimBase-8   12  95314958 ns/op  5131289 B/op  33916 allocs/op
//
// Name keeps the -P GOMAXPROCS suffix stripped so baselines recorded on
// machines with different core counts still compare. Custom metrics
// reported via b.ReportMetric land in Metrics keyed by unit
// ("simcycles/s" etc.).
type BenchResult struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ParseBench reads `go test -bench` text output and returns the result
// lines in encounter order. Non-benchmark lines (goos/goarch headers,
// PASS, ok ...) are skipped. Malformed Benchmark lines are an error so a
// truncated baseline file is caught rather than silently shortened.
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		runs, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad run count in %q: %v", line, err)
		}
		res := BenchResult{Name: name, Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q: %v", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBenchJSON writes results as deterministic JSONL, one object per
// line with metric keys sorted, so baseline files diff cleanly.
func WriteBenchJSON(w io.Writer, results []BenchResult) error {
	for _, r := range results {
		var sb strings.Builder
		fmt.Fprintf(&sb, `{"name":%q,"runs":%d,"ns_per_op":%s`,
			r.Name, r.Runs, jsonNum(r.NsPerOp))
		if r.BytesPerOp != 0 {
			fmt.Fprintf(&sb, `,"bytes_per_op":%s`, jsonNum(r.BytesPerOp))
		}
		if r.AllocsPerOp != 0 {
			fmt.Fprintf(&sb, `,"allocs_per_op":%s`, jsonNum(r.AllocsPerOp))
		}
		if len(r.Metrics) > 0 {
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sb.WriteString(`,"metrics":{`)
			for i, k := range keys {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%q:%s", k, jsonNum(r.Metrics[k]))
			}
			sb.WriteByte('}')
		}
		sb.WriteString("}\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// CompareBench returns the fractional slowdown (new-old)/old in ns/op for
// each benchmark present in both sets, keyed by name. Positive means new
// is slower.
func CompareBench(old, new []BenchResult) map[string]float64 {
	base := make(map[string]float64, len(old))
	for _, r := range old {
		if r.NsPerOp > 0 {
			base[r.Name] = r.NsPerOp
		}
	}
	out := make(map[string]float64)
	for _, r := range new {
		if b, ok := base[r.Name]; ok && b > 0 {
			out[r.Name] = (r.NsPerOp - b) / b
		}
	}
	return out
}

func jsonNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
