package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one `go test -bench` result line, e.g.
//
//	BenchmarkSimBase-8   12  95314958 ns/op  5131289 B/op  33916 allocs/op
//
// Name keeps the -P GOMAXPROCS suffix stripped so baselines recorded on
// machines with different core counts still compare. Custom metrics
// reported via b.ReportMetric land in Metrics keyed by unit
// ("simcycles/s" etc.).
type BenchResult struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ParseBench reads `go test -bench` text output and returns the result
// lines in encounter order. Non-benchmark lines (goos/goarch headers,
// PASS, ok ...) are skipped. Malformed Benchmark lines are an error so a
// truncated baseline file is caught rather than silently shortened.
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		runs, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad run count in %q: %v", line, err)
		}
		res := BenchResult{Name: name, Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q: %v", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBenchJSON writes results as deterministic JSONL, one object per
// line with metric keys sorted, so baseline files diff cleanly.
func WriteBenchJSON(w io.Writer, results []BenchResult) error {
	for _, r := range results {
		var sb strings.Builder
		fmt.Fprintf(&sb, `{"name":%q,"runs":%d,"ns_per_op":%s`,
			r.Name, r.Runs, jsonNum(r.NsPerOp))
		if r.BytesPerOp != 0 {
			fmt.Fprintf(&sb, `,"bytes_per_op":%s`, jsonNum(r.BytesPerOp))
		}
		if r.AllocsPerOp != 0 {
			fmt.Fprintf(&sb, `,"allocs_per_op":%s`, jsonNum(r.AllocsPerOp))
		}
		if len(r.Metrics) > 0 {
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sb.WriteString(`,"metrics":{`)
			for i, k := range keys {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%q:%s", k, jsonNum(r.Metrics[k]))
			}
			sb.WriteByte('}')
		}
		sb.WriteString("}\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// ReadBenchJSON reads the JSONL baseline format WriteBenchJSON writes, one
// BenchResult object per line (blank lines are skipped).
func ReadBenchJSON(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var res BenchResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			return nil, fmt.Errorf("baseline line %d: %v", lineNo, err)
		}
		if res.Name == "" {
			return nil, fmt.Errorf("baseline line %d: missing benchmark name", lineNo)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BenchDelta is one benchmark's movement between two result sets in a
// single dimension (ns/op, allocs/op, or a custom metric unit).
type BenchDelta struct {
	Name  string
	Unit  string
	Old   float64
	New   float64
	Delta float64 // fractional change: (new-old)/old
}

// Regression returns how much *worse* the new result is, as a positive
// fraction (0 when it improved or held). For throughput units (anything
// ending in "/s", e.g. simcycles/s) lower is worse; for every per-op unit
// higher is worse.
func (d BenchDelta) Regression() float64 {
	worse := d.Delta
	if strings.HasSuffix(d.Unit, "/s") {
		worse = -d.Delta
	}
	if worse < 0 {
		return 0
	}
	return worse
}

// DiffBench compares two result sets dimension by dimension, pairing
// benchmarks by name. The deltas come out in the new set's benchmark order
// with units in a fixed order (ns/op, B/op, allocs/op, then custom metrics
// sorted by unit), so rendered comparisons are deterministic. Dimensions
// missing or zero on either side are skipped.
func DiffBench(old, new []BenchResult) []BenchDelta {
	base := make(map[string]BenchResult, len(old))
	for _, r := range old {
		base[r.Name] = r
	}
	var out []BenchDelta
	add := func(name, unit string, o, n float64) {
		if o > 0 && n > 0 {
			out = append(out, BenchDelta{Name: name, Unit: unit, Old: o, New: n, Delta: (n - o) / o})
		}
	}
	for _, r := range new {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		add(r.Name, "ns/op", b.NsPerOp, r.NsPerOp)
		add(r.Name, "B/op", b.BytesPerOp, r.BytesPerOp)
		add(r.Name, "allocs/op", b.AllocsPerOp, r.AllocsPerOp)
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			add(r.Name, u, b.Metrics[u], r.Metrics[u])
		}
	}
	return out
}

// CompareBench returns the fractional slowdown (new-old)/old in ns/op for
// each benchmark present in both sets, keyed by name. Positive means new
// is slower.
func CompareBench(old, new []BenchResult) map[string]float64 {
	base := make(map[string]float64, len(old))
	for _, r := range old {
		if r.NsPerOp > 0 {
			base[r.Name] = r.NsPerOp
		}
	}
	out := make(map[string]float64)
	for _, r := range new {
		if b, ok := base[r.Name]; ok && b > 0 {
			out[r.Name] = (r.NsPerOp - b) / b
		}
	}
	return out
}

func jsonNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
