package redundancy

import (
	"testing"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/workload"
)

func analyze(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRepeatedResultsDetected(t *testing.T) {
	// The same computation on the same values, many times: after the first
	// iteration everything is repeated.
	r := analyze(t, `
        .text
main:   li   $s0, 0
loop:   li   $t0, 6         # same results every iteration
        li   $t1, 7
        mul  $t2, $t0, $t1
        addu $t3, $t2, $t0
        addiu $s0, $s0, 1
        slti $at, $s0, 50
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	if r.Total == 0 {
		t.Fatal("no instructions classified")
	}
	if got := r.Pct(r.Repeated); got < 75 {
		t.Errorf("repeated%% = %.1f, want > 75 for a constant loop", got)
	}
	if r.Unaccounted != 0 {
		t.Errorf("unaccounted = %d with tiny working set", r.Unaccounted)
	}
}

func TestStrideDerivable(t *testing.T) {
	// The loop induction variable walks a stride: derivable, not repeated.
	r := analyze(t, `
        .text
main:   li   $s0, 0
loop:   addiu $s0, $s0, 4    # 4, 8, 12, ... all distinct, stride 4
        li   $at, 400
        blt  $s0, $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	// ~100 iterations: nearly every addiu instance must classify as
	// derivable (the loop-control li/slt results are repeated, not strided).
	if r.Derivable < 90 {
		t.Errorf("derivable = %d, want >= 90 for a stride walker", r.Derivable)
	}
}

func TestUniqueResults(t *testing.T) {
	// Values derived from an LCG: mostly unique (the multiply scrambles
	// any stride).
	r := analyze(t, `
        .text
main:   li   $s0, 12345
        li   $s1, 0
loop:   li   $at, 1103515245
        mult $s0, $at
        mflo $s0
        addiu $s0, $s0, 12345
        addiu $s1, $s1, 1
        slti $at, $s1, 100
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	if r.Unique == 0 {
		t.Error("LCG stream produced no unique results")
	}
}

func TestUnaccountedWhenBufferFull(t *testing.T) {
	cfg := Config{MaxInstances: 8, ProdDistance: 50}
	// 100 distinct results from one static instruction with a scrambling
	// multiply: after 8 instances the buffer is full.
	r := analyze(t, `
        .text
main:   li   $s0, 1
        li   $s1, 0
loop:   li   $at, 214013
        mult $s0, $at
        mflo $s0
        addiu $s0, $s0, 25310
        addiu $s1, $s1, 1
        slti $at, $s1, 100
        bnez $at, loop
        li   $v0, 10
        syscall
`, cfg)
	if r.Unaccounted == 0 {
		t.Error("full instance buffer produced no unaccounted results")
	}
}

func TestReusableWithFarProducers(t *testing.T) {
	// s1/s2 are set once, far before the loop: every operand is ready and
	// every iteration repeats the same computation — fully reusable.
	r := analyze(t, `
        .text
main:   li   $s1, 123
        li   $s2, 456
        li   $s0, 0
loop:   xor  $t2, $s1, $s2
        addu $t3, $s1, $s2
        and  $t4, $s1, $s2
        addiu $s0, $s0, 1
        slti $at, $s0, 60
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	if r.Reusable == 0 {
		t.Error("nothing reusable in a repetitive loop with far producers")
	}
	if r.Reusable < r.Repeated/2 {
		t.Errorf("reusable %d should dominate repeated %d here", r.Reusable, r.Repeated)
	}
}

func TestUnchangedValueSeedsReadiness(t *testing.T) {
	// t0 is rewritten every iteration with the same value: consumers of t0
	// are ready through the unchanged-value rule even though the producer
	// is nearby.
	r := analyze(t, `
        .text
main:   li   $s0, 0
loop:   li   $t0, 9         # same value every iteration
        sll  $t1, $t0, 2    # consumer of a near-but-unchanged producer
        addiu $s0, $s0, 1
        slti $at, $s0, 50
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	if r.ProducersReused == 0 {
		t.Error("unchanged-value producers never seeded readiness")
	}
}

func TestProdNearBlocksReadiness(t *testing.T) {
	// A tight dependence chain: every repeated instruction's producer is
	// the immediately preceding instruction, and nothing is ever reused
	// (results alternate), so inputs are never ready.
	cfg := DefaultConfig()
	r := analyze(t, `
        .text
main:   li   $s0, 0
        li   $t0, 1
loop:   xor  $t0, $t0, $s1   # chain through t0
        xor  $t0, $t0, $s2
        xori $t0, $t0, 1
        addiu $s0, $s0, 1
        slti $at, $s0, 80
        bnez $at, loop
        li   $v0, 10
        syscall
`, cfg)
	if r.Repeated > 0 && r.ProdNear == 0 {
		t.Error("tight chains should produce not-ready repeated instructions")
	}
}

func TestFig9PartitionsRepeated(t *testing.T) {
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(p, DefaultConfig(), 200_000)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.ProducersReused + r.ProdFar + r.ProdNear; got != r.Repeated {
			t.Errorf("%s: Fig 9 partition %d != repeated %d", name, got, r.Repeated)
		}
		if got := r.Unique + r.Repeated + r.Derivable + r.Unaccounted; got != r.Total {
			t.Errorf("%s: Fig 8 partition %d != total %d", name, got, r.Total)
		}
		if r.Reusable+r.OperandMismatch != r.ProducersReused+r.ProdFar {
			t.Errorf("%s: reuse split %d+%d != ready %d", name,
				r.Reusable, r.OperandMismatch, r.ProducersReused+r.ProdFar)
		}
	}
}

// TestPaperShape: across the kernels, most instructions are redundant and
// most redundancy is reusable — the 84-97%% headline of §4.3.
func TestPaperShape(t *testing.T) {
	for _, name := range workload.Names() {
		w, _ := workload.Get(name)
		p, err := w.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(p, DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		red := r.Pct(r.Redundant())
		reusable := r.ReusablePct()
		t.Logf("%-9s total=%8d redundant=%5.1f%% (rep %.1f der %.1f uniq %.1f unacc %.1f) reusable=%5.1f%%",
			name, r.Total, red, r.Pct(r.Repeated), r.Pct(r.Derivable),
			r.Pct(r.Unique), r.Pct(r.Unaccounted), reusable)
		if red < 30 {
			t.Errorf("%s: redundancy %.1f%% implausibly low", name, red)
		}
		if reusable < 40 {
			t.Errorf("%s: reusable share %.1f%% implausibly low", name, reusable)
		}
	}
}

func TestAnalyzeBadProgram(t *testing.T) {
	p := &prog.Program{Text: []uint32{0}, Symbols: map[string]uint32{}}
	p.Entry = prog.TextBase
	if _, err := Analyze(p, DefaultConfig(), 10); err == nil {
		t.Error("invalid program must fail")
	}
}
