// Package redundancy implements the limit study of §4.3 of the paper: how
// much result redundancy do programs contain, and how much of it is
// capturable by operand-based, non-speculative instruction reuse?
//
// Every result-producing dynamic instruction is classified as
//
//	unique      — produces a result for the first time,
//	repeated    — produces a result it has produced before,
//	derivable   — produces a result predictable from earlier results
//	              (a stride), and
//	unaccounted — the per-static-instruction instance buffer (10 K entries,
//	              as in the paper) was full, so the class is unknown.
//
// Redundancy = repeated + derivable (Figure 8). Repeated instructions are
// further classified by whether their inputs would be ready at an early
// reuse test (Figure 9), using the paper's heuristic: inputs are not ready
// if an unreused producer is fewer than 50 dynamic instructions ahead.
// Finally, the fraction of redundant instructions that is actually
// reusable — repeated, inputs ready, and operands matching an earlier
// instance — is the Figure 10 result (84–97% in the paper).
//
// As in the paper, this is an upper-bound study on the functional
// instruction stream: memory invalidation of buffered load results is not
// modeled here (the pipeline-level reuse buffer in internal/reuse does
// model it).
package redundancy

import (
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/prog"
)

// Config parameterizes the study; DefaultConfig matches §4.3.
type Config struct {
	// MaxInstances caps the buffered instances per static instruction.
	MaxInstances int
	// ProdDistance is the readiness horizon: an unreused producer closer
	// than this many dynamic instructions means the input is not ready.
	ProdDistance uint64
}

// DefaultConfig returns the paper's parameters (10 K instances, distance 50).
func DefaultConfig() Config {
	return Config{MaxInstances: 10_000, ProdDistance: 50}
}

// Result aggregates the classification counts.
type Result struct {
	Total uint64 // result-producing dynamic instructions

	// Figure 8.
	Unique      uint64
	Repeated    uint64
	Derivable   uint64
	Unaccounted uint64

	// Figure 9 (partition of Repeated).
	ProducersReused uint64 // ready: a nearby producer was itself reused
	ProdFar         uint64 // ready: unreused producers >= ProdDistance ahead
	ProdNear        uint64 // not ready: an unreused producer < ProdDistance

	// Figure 10.
	OperandMismatch uint64 // repeated & ready, but operand values are new
	Reusable        uint64 // repeated & ready & operands match
}

// Redundant returns repeated + derivable (the paper's definition).
func (r *Result) Redundant() uint64 { return r.Repeated + r.Derivable }

// Pct is a percentage helper over the result-producing instruction count.
func (r *Result) Pct(n uint64) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Total)
}

// ReusablePct returns reusable instructions as a percent of redundant ones
// (the Figure 10 metric).
func (r *Result) ReusablePct() float64 {
	if r.Redundant() == 0 {
		return 0
	}
	return 100 * float64(r.Reusable) / float64(r.Redundant())
}

// opSig is an operand-value signature of one execution instance.
type opSig struct {
	s1, s2 isa.Word
}

// static is the per-static-instruction tracking state.
type static struct {
	results  map[isa.Word]struct{} // distinct results seen
	operands map[opSig]isa.Word    // operand signature -> result produced
	last     isa.Word              // most recent result
	stride   isa.Word              // last - previous
	seen     int                   // results observed (for stride warmup)
	full     bool                  // instance buffer exhausted
}

// regState tracks the most recent writer of each architectural register.
type regState struct {
	seq    uint64
	reused bool
	valid  bool
	// unchanged means the write stored the value the register already
	// held: a consumer's reuse test then sees the correct operand value
	// even before the producer executes (the value-based revalidation of
	// the augmented S_{n+d} scheme).
	unchanged bool
}

// Analyzer consumes a functional instruction stream and produces a Result.
type Analyzer struct {
	cfg     Config
	table   map[uint32]*static
	regs    [isa.NumArchRegs]regState
	regVal  [isa.NumArchRegs]isa.Word
	regKnow [isa.NumArchRegs]bool
	result  Result
	// lastWasReusable is the classification of the instruction currently
	// being observed; it becomes the "reused producer" flag of its
	// destination register.
	lastWasReusable bool
}

// NewAnalyzer builds an analyzer.
func NewAnalyzer(cfg Config) *Analyzer {
	return &Analyzer{cfg: cfg, table: make(map[uint32]*static)}
}

// Observe processes one retired instruction (an emu trace record).
func (a *Analyzer) Observe(t *emu.Trace) {
	in := t.Inst
	dest := in.Dest
	if dest == isa.NoReg || in.Op.Serializes() {
		return
	}
	a.result.Total++

	st := a.table[t.PC]
	if st == nil {
		st = &static{
			results:  make(map[isa.Word]struct{}),
			operands: make(map[opSig]isa.Word),
		}
		a.table[t.PC] = st
	}

	res := t.DestVal
	_, repeated := st.results[res]
	derivable := !repeated && st.seen >= 2 && res == st.last+st.stride

	a.lastWasReusable = false
	switch {
	case repeated:
		a.result.Repeated++
		a.classifyRepeated(t, st)
	case derivable:
		a.result.Derivable++
	case st.full:
		a.result.Unaccounted++
	default:
		a.result.Unique++
	}

	// Update the instance buffers.
	if !repeated {
		if len(st.results) < a.cfg.MaxInstances {
			st.results[res] = struct{}{}
		} else {
			st.full = true
		}
	}
	sig := a.sigOf(t)
	if _, ok := st.operands[sig]; ok || len(st.operands) < a.cfg.MaxInstances {
		st.operands[sig] = res // latest result for these operand values
	}
	if st.seen >= 1 {
		st.stride = res - st.last
	}
	st.last = res
	st.seen++

	// Record this instruction as its destination's most recent writer. The
	// "reused" flag says whether this very instruction would have been
	// reused, which feeds the producer-readiness heuristic downstream.
	a.regs[dest] = regState{
		seq:       t.Seq,
		reused:    a.lastWasReusable,
		valid:     true,
		unchanged: a.regKnow[dest] && a.regVal[dest] == res,
	}
	a.regVal[dest] = res
	a.regKnow[dest] = true
}

// lastWasReusable is set by classifyRepeated for the instruction currently
// being observed.
func (a *Analyzer) classifyRepeated(t *emu.Trace, st *static) {
	ready, viaReuse := true, false
	check := func(r isa.Reg) {
		if r == isa.NoReg || r == isa.RegZero {
			return
		}
		w := a.regs[r]
		if !w.valid {
			return // written before the window: long ago, ready
		}
		dist := t.Seq - w.seq
		switch {
		case w.reused || w.unchanged:
			viaReuse = true
		case dist >= a.cfg.ProdDistance:
			// far producer: ready
		default:
			ready = false
		}
	}
	check(t.Inst.Src1)
	check(t.Inst.Src2)

	a.lastWasReusable = false
	if !ready {
		a.result.ProdNear++
		return
	}
	if viaReuse {
		a.result.ProducersReused++
	} else {
		a.result.ProdFar++
	}
	// Operand match: an earlier instance computed this result from the
	// same operand values.
	if prev, ok := st.operands[a.sigOf(t)]; ok && prev == t.DestVal {
		a.result.Reusable++
		a.lastWasReusable = true
	} else {
		a.result.OperandMismatch++
	}
}

func (a *Analyzer) sigOf(t *emu.Trace) opSig {
	var sig opSig
	if t.Src1OK {
		sig.s1 = t.Src1Val
	}
	if t.Src2OK {
		sig.s2 = t.Src2Val
	}
	return sig
}

// Result returns the accumulated counts.
func (a *Analyzer) Result() Result { return a.result }

// Statics returns the number of distinct static instructions observed.
func (a *Analyzer) Statics() int { return len(a.table) }

// Analyze runs the program functionally for up to maxInsts instructions
// (0 = to completion) and classifies every result-producing instruction.
func Analyze(p *prog.Program, cfg Config, maxInsts uint64) (*Result, error) {
	cpu := emu.New(p)
	a := NewAnalyzer(cfg)
	cpu.TraceFn = a.Observe
	if _, err := cpu.Run(maxInsts); err != nil {
		return nil, err
	}
	r := a.Result()
	return &r, nil
}
