package emu

import (
	"math"
	"testing"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/prog"
)

// TestALUResultExhaustive checks every ALU operation against independently
// computed expectations on a grid of edge values.
func TestALUResultExhaustive(t *testing.T) {
	edge := []uint32{0, 1, 2, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF, 12345, 0xDEAD_BEEF}

	type opCase struct {
		op   isa.Op
		want func(a, b uint32) uint32
	}
	cases := []opCase{
		{isa.OpADDU, func(a, b uint32) uint32 { return a + b }},
		{isa.OpSUBU, func(a, b uint32) uint32 { return a - b }},
		{isa.OpAND, func(a, b uint32) uint32 { return a & b }},
		{isa.OpOR, func(a, b uint32) uint32 { return a | b }},
		{isa.OpXOR, func(a, b uint32) uint32 { return a ^ b }},
		{isa.OpNOR, func(a, b uint32) uint32 { return ^(a | b) }},
		{isa.OpSLT, func(a, b uint32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		}},
		{isa.OpSLTU, func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		}},
		{isa.OpSLLV, func(a, b uint32) uint32 { return a << (b & 31) }},
		{isa.OpSRLV, func(a, b uint32) uint32 { return a >> (b & 31) }},
		{isa.OpSRAV, func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op}
		for _, a := range edge {
			for _, b := range edge {
				got := ALUResult(&in, isa.Word(a), isa.Word(b), 0)
				if uint32(got) != c.want(a, b) {
					t.Errorf("%v(%#x, %#x) = %#x, want %#x", c.op, a, b, got, c.want(a, b))
				}
			}
		}
	}
}

func TestShiftImmediates(t *testing.T) {
	for sh := uint8(0); sh < 32; sh++ {
		v := uint32(0x80000001)
		sll := isa.Inst{Op: isa.OpSLL, Shamt: sh}
		srl := isa.Inst{Op: isa.OpSRL, Shamt: sh}
		sra := isa.Inst{Op: isa.OpSRA, Shamt: sh}
		if got := ALUResult(&sll, isa.Word(v), 0, 0); uint32(got) != v<<sh {
			t.Errorf("sll %d", sh)
		}
		if got := ALUResult(&srl, isa.Word(v), 0, 0); uint32(got) != v>>sh {
			t.Errorf("srl %d", sh)
		}
		if got := ALUResult(&sra, isa.Word(v), 0, 0); uint32(got) != uint32(int32(v)>>sh) {
			t.Errorf("sra %d", sh)
		}
	}
}

func TestImmediateOps(t *testing.T) {
	cases := []struct {
		op   isa.Op
		s1   uint32
		imm  int32
		want uint32
	}{
		{isa.OpADDIU, 10, -3, 7},
		{isa.OpADDIU, 0xFFFFFFFF, 1, 0},
		{isa.OpSLTI, 5, 6, 1},
		{isa.OpSLTI, 0xFFFFFFFF, 0, 1}, // -1 < 0
		{isa.OpSLTIU, 0xFFFFFFFF, 0, 0},
		{isa.OpANDI, 0xFF00FF00, int32(0x0F0F), 0x00000F00},
		{isa.OpORI, 0xF0000000, int32(0x00FF), 0xF00000FF},
		{isa.OpXORI, 0xFFFF, int32(0xFFFF), 0},
		{isa.OpLUI, 0, int32(0x1234), 0x12340000},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op, Imm: c.imm}
		got := ALUResult(&in, isa.Word(c.s1), 0, 0)
		if uint32(got) != c.want {
			t.Errorf("%v(%#x, %d) = %#x, want %#x", c.op, c.s1, c.imm, got, c.want)
		}
	}
}

func TestSLTIUSignExtendedComparand(t *testing.T) {
	// sltiu compares against the sign-extended immediate treated unsigned:
	// sltiu rt, rs, -1 means rs < 0xFFFFFFFF.
	in := isa.Inst{Op: isa.OpSLTIU, Imm: -1}
	if got := ALUResult(&in, 5, 0, 0); got != 1 {
		t.Errorf("sltiu 5, -1 = %d, want 1", got)
	}
	if got := ALUResult(&in, 0xFFFFFFFF, 0, 0); got != 0 {
		t.Errorf("sltiu -1, -1 = %d, want 0", got)
	}
}

func TestMultDivEdges(t *testing.T) {
	mult := isa.Inst{Op: isa.OpMULT}
	multu := isa.Inst{Op: isa.OpMULTU}
	div := isa.Inst{Op: isa.OpDIV}
	divu := isa.Inst{Op: isa.OpDIVU}

	// Signed multiply high bits.
	hilo := ALUResult(&mult, isa.Word(uint32(0x80000000)), isa.Word(uint32(0xFFFFFFFF)), 0)
	want := int64(math.MinInt32) * -1
	if int64(hilo) != want {
		t.Errorf("mult MinInt32*-1 = %d, want %d", int64(hilo), want)
	}
	// Unsigned multiply of the same bits differs.
	hilo = ALUResult(&multu, isa.Word(uint32(0x80000000)), isa.Word(uint32(2)), 0)
	if hilo != 0x1_0000_0000 {
		t.Errorf("multu = %#x", hilo)
	}
	// MinInt32 / -1 must not panic and wraps to MinInt32.
	hilo = ALUResult(&div, isa.Word(uint32(0x80000000)), isa.Word(uint32(0xFFFFFFFF)), 0)
	mflo := isa.Inst{Op: isa.OpMFLO}
	mfhi := isa.Inst{Op: isa.OpMFHI}
	if got := ALUResult(&mflo, hilo, 0, 0); uint32(got) != 0x80000000 {
		t.Errorf("MinInt32/-1 quo = %#x", got)
	}
	if got := ALUResult(&mfhi, hilo, 0, 0); got != 0 {
		t.Errorf("MinInt32/-1 rem = %d", got)
	}
	// Unsigned divide by zero: quo 0, rem = dividend.
	hilo = ALUResult(&divu, 77, 0, 0)
	if got := ALUResult(&mflo, hilo, 0, 0); got != 0 {
		t.Errorf("divu/0 quo = %d", got)
	}
	if got := ALUResult(&mfhi, hilo, 0, 0); got != 77 {
		t.Errorf("divu/0 rem = %d", got)
	}
	// Signed division truncates toward zero.
	hilo = ALUResult(&div, isa.Word(uint32(0xFFFFFFF9)), isa.Word(uint32(2)), 0) // -7 / 2
	if got := ALUResult(&mflo, hilo, 0, 0); int32(uint32(got)) != -3 {
		t.Errorf("-7/2 quo = %d, want -3", int32(uint32(got)))
	}
	if got := ALUResult(&mfhi, hilo, 0, 0); int32(uint32(got)) != -1 {
		t.Errorf("-7/2 rem = %d, want -1", int32(uint32(got)))
	}
}

func TestBranchTakenExhaustive(t *testing.T) {
	vals := []uint32{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	for _, a := range vals {
		for _, b := range vals {
			checks := []struct {
				op   isa.Op
				want bool
			}{
				{isa.OpBEQ, a == b},
				{isa.OpBNE, a != b},
				{isa.OpBLEZ, int32(a) <= 0},
				{isa.OpBGTZ, int32(a) > 0},
				{isa.OpBLTZ, int32(a) < 0},
				{isa.OpBGEZ, int32(a) >= 0},
			}
			for _, c := range checks {
				if got := BranchTaken(c.op, isa.Word(a), isa.Word(b)); got != c.want {
					t.Errorf("%v(%#x, %#x) = %v, want %v", c.op, a, b, got, c.want)
				}
			}
		}
	}
	if !BranchTaken(isa.OpBC1T, 1, 0) || BranchTaken(isa.OpBC1T, 0, 0) {
		t.Error("bc1t wrong")
	}
	if !BranchTaken(isa.OpBC1F, 0, 0) || BranchTaken(isa.OpBC1F, 1, 0) {
		t.Error("bc1f wrong")
	}
	// Unknown op: not taken.
	if BranchTaken(isa.OpADDU, 1, 1) {
		t.Error("non-branch op reported taken")
	}
}

func TestFPSemantics(t *testing.T) {
	f := func(x float32) isa.Word { return isa.Word(math.Float32bits(x)) }
	g := func(w isa.Word) float32 { return math.Float32frombits(uint32(w)) }
	cases := []struct {
		op     isa.Op
		a, b   float32
		expect float32
	}{
		{isa.OpADDS, 1.5, 2.25, 3.75},
		{isa.OpSUBS, 1.5, 2.25, -0.75},
		{isa.OpMULS, -3, 2.5, -7.5},
		{isa.OpDIVS, 7, 2, 3.5},
		{isa.OpABSS, -4.5, 0, 4.5},
		{isa.OpNEGS, 4.5, 0, -4.5},
		{isa.OpSQRTS, 9, 0, 3},
		{isa.OpMOVS, 1.25, 0, 1.25},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op}
		got := g(ALUResult(&in, f(c.a), f(c.b), 0))
		if got != c.expect {
			t.Errorf("%v(%v, %v) = %v, want %v", c.op, c.a, c.b, got, c.expect)
		}
	}
	// Conversions.
	cvtsw := isa.Inst{Op: isa.OpCVTSW}
	if got := g(ALUResult(&cvtsw, isa.Word(uint32(0xFFFFFFF6)), 0, 0)); got != -10 {
		t.Errorf("cvt.s.w(-10) = %v", got)
	}
	cvtws := isa.Inst{Op: isa.OpCVTWS}
	if got := int32(uint32(ALUResult(&cvtws, f(-10.75), 0, 0))); got != -10 {
		t.Errorf("cvt.w.s(-10.75) = %d (truncation toward zero)", got)
	}
	// Compares.
	for _, c := range []struct {
		op   isa.Op
		a, b float32
		want isa.Word
	}{
		{isa.OpCEQS, 2, 2, 1}, {isa.OpCEQS, 2, 3, 0},
		{isa.OpCLTS, 2, 3, 1}, {isa.OpCLTS, 3, 2, 0},
		{isa.OpCLES, 2, 2, 1}, {isa.OpCLES, 3, 2, 0},
	} {
		in := isa.Inst{Op: c.op}
		if got := ALUResult(&in, f(c.a), f(c.b), 0); got != c.want {
			t.Errorf("%v(%v, %v) = %d", c.op, c.a, c.b, got)
		}
	}
}

func TestLinkResults(t *testing.T) {
	jal := isa.Inst{Op: isa.OpJAL}
	if got := ALUResult(&jal, 0, 0, 0x400100); got != 0x400104 {
		t.Errorf("jal link = %#x", got)
	}
	jalr := isa.Inst{Op: isa.OpJALR}
	if got := ALUResult(&jalr, 0x99, 0, 0x400200); got != 0x400204 {
		t.Errorf("jalr link = %#x", got)
	}
}

func TestLoadStoreWidthHelpers(t *testing.T) {
	if StoreWidth(isa.OpSB) != 1 || StoreWidth(isa.OpSH) != 2 || StoreWidth(isa.OpSW) != 4 || StoreWidth(isa.OpSWC1) != 4 {
		t.Error("store widths")
	}
	if LoadWidth(isa.OpLB) != 1 || LoadWidth(isa.OpLBU) != 1 || LoadWidth(isa.OpLH) != 2 ||
		LoadWidth(isa.OpLHU) != 2 || LoadWidth(isa.OpLW) != 4 || LoadWidth(isa.OpLWC1) != 4 {
		t.Error("load widths")
	}
}

func TestEffAddrWraps(t *testing.T) {
	in := isa.Inst{Op: isa.OpLW, Imm: -4}
	if got := EffAddr(&in, 0x1000); got != 0xFFC {
		t.Errorf("effaddr = %#x", got)
	}
	in.Imm = 8
	if got := EffAddr(&in, 0xFFFFFFFC); got != 4 {
		t.Errorf("effaddr wrap = %#x", got)
	}
}

func TestRegChecksumDiffers(t *testing.T) {
	c1 := New(testProg(t))
	c2 := New(testProg(t))
	if c1.RegChecksum() != c2.RegChecksum() {
		t.Error("fresh CPUs must match")
	}
	c2.Regs[5] = 42
	if c1.RegChecksum() == c2.RegChecksum() {
		t.Error("register change must alter checksum")
	}
}

// testProg builds a minimal valid program for CPU-level helpers.
func testProg(t *testing.T) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("t.s", ".text\nmain: li $v0, 10\n syscall\n")
	if err != nil {
		t.Fatal(err)
	}
	return p
}
