package emu

import (
	"github.com/vpir-sim/vpir/internal/isa"
)

// TraceLog is a compact columnar record of a program's correct-path
// execution, produced by the functional emulator. The timing core uses it
// for three things:
//
//   - the VP_Magic oracle selection policy (§4.1.1 of the paper) needs the
//     correct result of an instruction at prediction time;
//   - classifying spurious branch squashes (a squash whose branch's final
//     outcome agrees with the original prediction);
//   - golden verification: the committed instruction stream of the timing
//     core must equal this log exactly.
type TraceLog struct {
	PC     []uint32
	Result []isa.Word // destination value (0 when no destination)
	Addr   []uint32   // effective address for memory ops
	Taken  []bool     // direction for control ops

	Output   string
	ExitCode int
	Halted   bool
}

// Len returns the number of retired instructions in the log.
func (l *TraceLog) Len() int { return len(l.PC) }

// CollectTrace runs the program functionally for at most maxInsts
// instructions (0 = until halt) and returns the execution log.
func CollectTrace(c *CPU, maxInsts uint64) (*TraceLog, error) {
	log := &TraceLog{}
	if maxInsts > 0 {
		log.PC = make([]uint32, 0, maxInsts)
		log.Result = make([]isa.Word, 0, maxInsts)
		log.Addr = make([]uint32, 0, maxInsts)
		log.Taken = make([]bool, 0, maxInsts)
	}
	prev := c.TraceFn
	c.TraceFn = func(t *Trace) {
		log.PC = append(log.PC, t.PC)
		log.Result = append(log.Result, t.DestVal)
		log.Addr = append(log.Addr, t.Addr)
		log.Taken = append(log.Taken, t.Taken)
		if prev != nil {
			prev(t)
		}
	}
	halted, err := c.Run(maxInsts)
	c.TraceFn = prev
	if err != nil {
		return nil, err
	}
	log.Output = c.Output.String()
	log.ExitCode = c.ExitCode
	log.Halted = halted
	return log, nil
}
