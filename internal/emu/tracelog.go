package emu

import (
	"github.com/vpir-sim/vpir/internal/isa"
)

// TraceLog is a compact columnar record of a program's correct-path
// execution, produced by the functional emulator. The timing core uses it
// for three things:
//
//   - the VP_Magic oracle selection policy (§4.1.1 of the paper) needs the
//     correct result of an instruction at prediction time;
//   - classifying spurious branch squashes (a squash whose branch's final
//     outcome agrees with the original prediction);
//   - golden verification: the committed instruction stream of the timing
//     core must equal this log exactly.
type TraceLog struct {
	PC     []uint32
	Result []isa.Word // destination value (0 when no destination)
	Addr   []uint32   // effective address for memory ops
	Taken  []bool     // direction for control ops

	Output   string
	ExitCode int
	Halted   bool
}

// Len returns the number of retired instructions in the log.
func (l *TraceLog) Len() int { return len(l.PC) }

// CollectTrace runs the program functionally for at most maxInsts
// instructions (0 = until halt) and returns the execution log.
func CollectTrace(c *CPU, maxInsts uint64) (*TraceLog, error) {
	log := &TraceLog{}
	// Pre-size for the capped case; otherwise start at 64 K entries and
	// double all four columns in lockstep. Doubling by hand matters for
	// long uncapped runs: the runtime grows large slices by only 1.25x,
	// which roughly doubles the total bytes copied across the run, and the
	// columns stay capacity-synchronized (one length check per retirement).
	capHint := int(maxInsts)
	if capHint == 0 {
		capHint = 1 << 16
	}
	log.PC = make([]uint32, 0, capHint)
	log.Result = make([]isa.Word, 0, capHint)
	log.Addr = make([]uint32, 0, capHint)
	log.Taken = make([]bool, 0, capHint)
	prev := c.TraceFn
	c.TraceFn = func(t *Trace) {
		if len(log.PC) == cap(log.PC) {
			n := 2 * cap(log.PC)
			log.PC = append(make([]uint32, 0, n), log.PC...)
			log.Result = append(make([]isa.Word, 0, n), log.Result...)
			log.Addr = append(make([]uint32, 0, n), log.Addr...)
			log.Taken = append(make([]bool, 0, n), log.Taken...)
		}
		log.PC = append(log.PC, t.PC)
		log.Result = append(log.Result, t.DestVal)
		log.Addr = append(log.Addr, t.Addr)
		log.Taken = append(log.Taken, t.Taken)
		if prev != nil {
			prev(t)
		}
	}
	halted, err := c.Run(maxInsts)
	c.TraceFn = prev
	if err != nil {
		return nil, err
	}
	log.Output = c.Output.String()
	log.ExitCode = c.ExitCode
	log.Halted = halted
	return log, nil
}
