// Package emu implements the functional (architectural) model of the ISA:
// a fast interpreter used for fast-forwarding, for the redundancy limit
// study, and as the golden reference for the timing simulator — plus the
// pure execution-semantics functions that the out-of-order core shares so
// both models compute identical results.
package emu

import (
	"math"

	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/mem"
)

func u32(w isa.Word) uint32  { return uint32(w) }
func s32(w isa.Word) int32   { return int32(uint32(w)) }
func f32(w isa.Word) float32 { return math.Float32frombits(uint32(w)) }
func fromF32(f float32) isa.Word {
	return isa.Word(math.Float32bits(f))
}
func fromU32(v uint32) isa.Word { return isa.Word(v) }
func boolWord(b bool) isa.Word {
	if b {
		return 1
	}
	return 0
}

// ALUResult computes the result of any non-memory, non-control operation
// (including floating point and HILO-writing multiplies/divides). pc is
// needed only by the call instructions, whose result is the link address.
// The behaviour of divide-by-zero is architecturally defined here (quotient
// 0, remainder = dividend) so all models stay deterministic and equal.
func ALUResult(in *isa.Inst, s1, s2 isa.Word, pc uint32) isa.Word {
	switch in.Op {
	case isa.OpSLL:
		return fromU32(u32(s1) << in.Shamt)
	case isa.OpSRL:
		return fromU32(u32(s1) >> in.Shamt)
	case isa.OpSRA:
		return fromU32(uint32(s32(s1) >> in.Shamt))
	case isa.OpSLLV:
		return fromU32(u32(s1) << (u32(s2) & 31))
	case isa.OpSRLV:
		return fromU32(u32(s1) >> (u32(s2) & 31))
	case isa.OpSRAV:
		return fromU32(uint32(s32(s1) >> (u32(s2) & 31)))
	case isa.OpADDU:
		return fromU32(u32(s1) + u32(s2))
	case isa.OpSUBU:
		return fromU32(u32(s1) - u32(s2))
	case isa.OpAND:
		return fromU32(u32(s1) & u32(s2))
	case isa.OpOR:
		return fromU32(u32(s1) | u32(s2))
	case isa.OpXOR:
		return fromU32(u32(s1) ^ u32(s2))
	case isa.OpNOR:
		return fromU32(^(u32(s1) | u32(s2)))
	case isa.OpSLT:
		return boolWord(s32(s1) < s32(s2))
	case isa.OpSLTU:
		return boolWord(u32(s1) < u32(s2))

	case isa.OpADDIU:
		return fromU32(u32(s1) + uint32(in.Imm))
	case isa.OpSLTI:
		return boolWord(s32(s1) < in.Imm)
	case isa.OpSLTIU:
		return boolWord(u32(s1) < uint32(in.Imm))
	case isa.OpANDI:
		return fromU32(u32(s1) & uint32(uint16(in.Imm)))
	case isa.OpORI:
		return fromU32(u32(s1) | uint32(uint16(in.Imm)))
	case isa.OpXORI:
		return fromU32(u32(s1) ^ uint32(uint16(in.Imm)))
	case isa.OpLUI:
		return fromU32(uint32(in.Imm) << 16)

	case isa.OpMULT:
		return isa.Word(int64(s32(s1)) * int64(s32(s2)))
	case isa.OpMULTU:
		return isa.Word(uint64(u32(s1)) * uint64(u32(s2)))
	case isa.OpDIV:
		a, b := s32(s1), s32(s2)
		var quo, rem int32
		if b == 0 {
			quo, rem = 0, a
		} else if a == math.MinInt32 && b == -1 {
			quo, rem = a, 0 // avoid the Go runtime panic; matches 2's-complement hardware
		} else {
			quo, rem = a/b, a%b
		}
		return isa.Word(uint32(rem))<<32 | isa.Word(uint32(quo))
	case isa.OpDIVU:
		a, b := u32(s1), u32(s2)
		var quo, rem uint32
		if b == 0 {
			quo, rem = 0, a
		} else {
			quo, rem = a/b, a%b
		}
		return isa.Word(rem)<<32 | isa.Word(quo)
	case isa.OpMFHI:
		return isa.Word(uint32(s1 >> 32))
	case isa.OpMFLO:
		return isa.Word(uint32(s1))

	case isa.OpJAL, isa.OpJALR:
		return isa.Word(pc + 4)

	case isa.OpADDS:
		return fromF32(f32(s1) + f32(s2))
	case isa.OpSUBS:
		return fromF32(f32(s1) - f32(s2))
	case isa.OpMULS:
		return fromF32(f32(s1) * f32(s2))
	case isa.OpDIVS:
		return fromF32(f32(s1) / f32(s2))
	case isa.OpSQRTS:
		return fromF32(float32(math.Sqrt(float64(f32(s1)))))
	case isa.OpABSS:
		return fromF32(float32(math.Abs(float64(f32(s1)))))
	case isa.OpNEGS:
		return fromF32(-f32(s1))
	case isa.OpMOVS:
		return s1 & 0xFFFF_FFFF
	case isa.OpCVTSW:
		return fromF32(float32(s32(s1)))
	case isa.OpCVTWS:
		return fromU32(uint32(int32(f32(s1))))
	case isa.OpCEQS:
		return boolWord(f32(s1) == f32(s2))
	case isa.OpCLTS:
		return boolWord(f32(s1) < f32(s2))
	case isa.OpCLES:
		return boolWord(f32(s1) <= f32(s2))
	case isa.OpMTC1, isa.OpMFC1:
		return s1 & 0xFFFF_FFFF
	}
	return 0
}

// BranchTaken evaluates the direction of a conditional branch given its
// operand values.
func BranchTaken(op isa.Op, s1, s2 isa.Word) bool {
	switch op {
	case isa.OpBEQ:
		return u32(s1) == u32(s2)
	case isa.OpBNE:
		return u32(s1) != u32(s2)
	case isa.OpBLEZ:
		return s32(s1) <= 0
	case isa.OpBGTZ:
		return s32(s1) > 0
	case isa.OpBLTZ:
		return s32(s1) < 0
	case isa.OpBGEZ:
		return s32(s1) >= 0
	case isa.OpBC1T:
		return s1 != 0
	case isa.OpBC1F:
		return s1 == 0
	}
	return false
}

// EffAddr computes the effective address of a memory operation given the
// base register value.
func EffAddr(in *isa.Inst, base isa.Word) uint32 {
	return u32(base) + uint32(in.Imm)
}

// LoadValue performs the architectural load for op at addr.
func LoadValue(m *mem.Memory, op isa.Op, addr uint32) isa.Word {
	switch op {
	case isa.OpLB:
		return fromU32(uint32(int32(int8(m.LoadByte(addr)))))
	case isa.OpLBU:
		return isa.Word(m.LoadByte(addr))
	case isa.OpLH:
		return fromU32(uint32(int32(int16(m.LoadHalf(addr)))))
	case isa.OpLHU:
		return isa.Word(m.LoadHalf(addr))
	case isa.OpLW, isa.OpLWC1:
		return isa.Word(m.LoadWord(addr))
	}
	return 0
}

// StoreValue performs the architectural store for op at addr.
func StoreValue(m *mem.Memory, op isa.Op, addr uint32, v isa.Word) {
	switch op {
	case isa.OpSB:
		m.StoreByte(addr, byte(v))
	case isa.OpSH:
		m.StoreHalf(addr, uint16(v))
	case isa.OpSW, isa.OpSWC1:
		m.StoreWord(addr, uint32(v))
	}
}

// StoreWidth returns the byte width of a store operation (used by the
// load/store queue for forwarding and by the reuse buffer for
// invalidation).
func StoreWidth(op isa.Op) uint32 {
	switch op {
	case isa.OpSB:
		return 1
	case isa.OpSH:
		return 2
	}
	return 4
}

// LoadWidth returns the byte width of a load operation.
func LoadWidth(op isa.Op) uint32 {
	switch op {
	case isa.OpLB, isa.OpLBU:
		return 1
	case isa.OpLH, isa.OpLHU:
		return 2
	}
	return 4
}
