package emu

import (
	"bytes"
	"fmt"
	"strconv"

	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/prog"
)

// Syscall codes (passed in $v0).
const (
	SysPrintInt = 1  // prints $a0 as signed decimal
	SysPrintStr = 4  // prints the NUL-terminated string at $a0
	SysExit     = 10 // terminates with exit code $a0
	SysPutChar  = 11 // prints the byte in $a0
)

// Trace describes one retired instruction; the redundancy limit study and
// golden tests consume these. The struct is reused between calls — handlers
// must copy anything they keep.
type Trace struct {
	Seq     uint64 // dynamic instruction number, starting at 0
	PC      uint32
	Inst    *isa.Inst
	Src1OK  bool // Src1 present
	Src2OK  bool
	Src1Val isa.Word
	Src2Val isa.Word
	DestVal isa.Word // valid when Inst.Dest != NoReg
	Addr    uint32   // effective address for memory ops
	Taken   bool     // branch direction for control ops
}

// CPU is the functional emulator. Create with New, drive with Step or Run.
type CPU struct {
	Regs [isa.NumArchRegs]isa.Word
	PC   uint32
	Mem  *mem.Memory

	Halted   bool
	ExitCode int
	Output   bytes.Buffer

	// InstCount is the number of instructions retired so far.
	InstCount uint64

	// TraceFn, when set, is called once per retired instruction.
	TraceFn func(*Trace)

	prog    *prog.Program
	decoded []isa.Inst
	trace   Trace
}

// New builds a CPU with the program loaded, PC at the entry point, and the
// stack pointer initialised below prog.StackTop.
func New(p *prog.Program) *CPU {
	c := &CPU{
		Mem:     mem.NewMemory(),
		PC:      p.Entry,
		prog:    p,
		decoded: p.Decoded(),
	}
	c.Mem.LoadProgram(p)
	c.Regs[isa.RegSP] = isa.Word(prog.StackTop)
	return c
}

// Program returns the loaded program.
func (c *CPU) Program() *prog.Program { return c.prog }

// InstAt returns the decoded instruction at pc, or nil if pc is outside the
// text segment.
func (c *CPU) InstAt(pc uint32) *isa.Inst {
	if !c.prog.InText(pc) || pc&3 != 0 {
		return nil
	}
	return &c.decoded[(pc-prog.TextBase)/4]
}

// Fault describes an execution fault (bad PC, invalid opcode, bad syscall).
type Fault struct {
	PC   uint32
	Line int
	Msg  string
}

func (f *Fault) Error() string {
	if f.Line > 0 {
		return fmt.Sprintf("emu: fault at pc %#x (line %d): %s", f.PC, f.Line, f.Msg)
	}
	return fmt.Sprintf("emu: fault at pc %#x: %s", f.PC, f.Msg)
}

func (c *CPU) fault(msg string) error {
	return &Fault{PC: c.PC, Line: c.prog.SrcLines[c.PC], Msg: msg}
}

// Step executes one instruction. It is a no-op once the CPU has halted.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	in := c.InstAt(c.PC)
	if in == nil {
		return c.fault("pc outside text segment")
	}
	if in.Op == isa.OpInvalid {
		return c.fault(fmt.Sprintf("invalid instruction %#08x", in.Raw))
	}

	var s1, s2 isa.Word
	if in.Src1 != isa.NoReg {
		s1 = c.Regs[in.Src1]
	}
	if in.Src2 != isa.NoReg {
		s2 = c.Regs[in.Src2]
	}

	t := &c.trace
	t.Seq = c.InstCount
	t.PC = c.PC
	t.Inst = in
	t.Src1OK = in.Src1 != isa.NoReg
	t.Src2OK = in.Src2 != isa.NoReg
	t.Src1Val, t.Src2Val = s1, s2
	t.Addr, t.Taken = 0, false
	t.DestVal = 0

	nextPC := c.PC + 4
	op := in.Op
	info := op.Info()

	switch {
	case op == isa.OpSYSCALL:
		if err := c.syscall(); err != nil {
			return err
		}
	case op == isa.OpBREAK:
		c.Halted = true
	case info.Flg&isa.FlagLoad != 0:
		addr := EffAddr(in, s1)
		v := LoadValue(c.Mem, op, addr)
		c.writeReg(in.Dest, v)
		t.Addr, t.DestVal = addr, v
	case info.Flg&isa.FlagStore != 0:
		addr := EffAddr(in, s1)
		StoreValue(c.Mem, op, addr, s2)
		t.Addr = addr
	case info.Flg&isa.FlagCondBr != 0:
		taken := BranchTaken(op, s1, s2)
		if taken {
			nextPC = in.BranchTarget(c.PC)
		}
		t.Taken = taken
	case info.Flg&isa.FlagUncond != 0:
		t.Taken = true
		switch op {
		case isa.OpJ:
			nextPC = in.JumpTarget()
		case isa.OpJAL:
			link := ALUResult(in, s1, s2, c.PC)
			c.writeReg(in.Dest, link)
			t.DestVal = link
			nextPC = in.JumpTarget()
		case isa.OpJR:
			nextPC = uint32(s1)
		case isa.OpJALR:
			link := ALUResult(in, s1, s2, c.PC)
			c.writeReg(in.Dest, link)
			t.DestVal = link
			nextPC = uint32(s1)
		}
	default:
		v := ALUResult(in, s1, s2, c.PC)
		c.writeReg(in.Dest, v)
		t.DestVal = v
	}

	c.PC = nextPC
	c.InstCount++
	if c.TraceFn != nil {
		c.TraceFn(t)
	}
	return nil
}

func (c *CPU) writeReg(r isa.Reg, v isa.Word) {
	if r != isa.NoReg {
		c.Regs[r] = v
	}
}

func (c *CPU) syscall() error {
	code := uint32(c.Regs[isa.RegV0])
	a0 := c.Regs[isa.RegA0]
	switch code {
	case SysPrintInt:
		c.Output.WriteString(strconv.FormatInt(int64(int32(uint32(a0))), 10))
	case SysPrintStr:
		addr := uint32(a0)
		for i := 0; i < 1<<16; i++ {
			b := c.Mem.LoadByte(addr)
			if b == 0 {
				break
			}
			c.Output.WriteByte(b)
			addr++
		}
	case SysExit:
		c.ExitCode = int(int32(uint32(a0)))
		c.Halted = true
	case SysPutChar:
		c.Output.WriteByte(byte(a0))
	default:
		return c.fault(fmt.Sprintf("unknown syscall %d", code))
	}
	return nil
}

// Run executes until the program halts, a fault occurs, or maxInsts further
// instructions have retired (0 means no limit). It reports whether the
// program halted.
func (c *CPU) Run(maxInsts uint64) (bool, error) {
	limit := c.InstCount + maxInsts
	for !c.Halted {
		if maxInsts > 0 && c.InstCount >= limit {
			return false, nil
		}
		if err := c.Step(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// RegChecksum hashes the architectural register file (FNV-1a); golden tests
// use it to compare emulator and timing-core state.
func (c *CPU) RegChecksum() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range c.Regs {
		h ^= uint64(v)
		h *= prime64
	}
	return h
}
