package emu

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/prog"
)

func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(p)
	halted, err := c.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !halted {
		t.Fatal("program did not halt within 1M instructions")
	}
	return c
}

func TestArithmeticLoop(t *testing.T) {
	c := run(t, `
        .text
main:   li   $t0, 0          # sum
        li   $t1, 1          # i
loop:   addu $t0, $t0, $t1
        addiu $t1, $t1, 1
        slti $at, $t1, 101
        bnez $at, loop
        move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`)
	if got := c.Output.String(); got != "5050" {
		t.Errorf("output = %q, want 5050", got)
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
        .data
arr:    .word 10, 20, 30, 40
sum:    .word 0
        .text
main:   la   $s0, arr
        li   $t0, 0       # sum
        li   $t1, 0       # i
loop:   sll  $t2, $t1, 2
        addu $t2, $t2, $s0
        lw   $t3, 0($t2)
        addu $t0, $t0, $t3
        addiu $t1, $t1, 1
        slti $at, $t1, 4
        bnez $at, loop
        sw   $t0, sum
        move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`)
	if got := c.Output.String(); got != "100" {
		t.Errorf("output = %q, want 100", got)
	}
	sumAddr := c.Program().MustSymbol("sum")
	if got := c.Mem.LoadWord(sumAddr); got != 100 {
		t.Errorf("sum in memory = %d", got)
	}
}

func TestByteHalfAccess(t *testing.T) {
	c := run(t, `
        .data
b:      .byte 0xFF
h:      .half 0x8000
        .text
main:   lb   $t0, b        # sign extends to -1
        lbu  $t1, b        # zero extends to 255
        lh   $t2, h        # sign extends
        lhu  $t3, h
        move $a0, $t0
        li   $v0, 1
        syscall
        li   $a0, ' '
        li   $v0, 11
        syscall
        move $a0, $t1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`)
	if got := c.Output.String(); got != "-1 255" {
		t.Errorf("output = %q", got)
	}
	if got := int32(uint32(c.Regs[10])); got != -32768 {
		t.Errorf("lh = %d, want -32768", got)
	}
	if got := c.Regs[11]; got != 0x8000 {
		t.Errorf("lhu = %#x", got)
	}
}

func TestMultDiv(t *testing.T) {
	c := run(t, `
        .text
main:   li   $t0, -7
        li   $t1, 3
        mult $t0, $t1
        mflo $t2          # -21
        li   $t3, 17
        li   $t4, 5
        div  $t3, $t4
        mflo $t5          # 3
        mfhi $t6          # 2
        li   $v0, 10
        syscall
`)
	if got := int32(uint32(c.Regs[10])); got != -21 {
		t.Errorf("mult = %d", got)
	}
	if c.Regs[13] != 3 || c.Regs[14] != 2 {
		t.Errorf("div quo/rem = %d/%d", c.Regs[13], c.Regs[14])
	}
}

func TestDivByZeroDeterministic(t *testing.T) {
	c := run(t, `
        .text
main:   li  $t0, 42
        li  $t1, 0
        div $t0, $t1
        mflo $t2
        mfhi $t3
        li  $v0, 10
        syscall
`)
	if c.Regs[10] != 0 || c.Regs[11] != 42 {
		t.Errorf("div-by-zero quo=%d rem=%d, want 0 and 42", c.Regs[10], c.Regs[11])
	}
}

func TestFunctionCallReturn(t *testing.T) {
	c := run(t, `
        .text
main:   li   $a0, 10
        jal  double
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
double: sll  $v0, $a0, 1
        jr   $ra
`)
	if got := c.Output.String(); got != "20" {
		t.Errorf("output = %q", got)
	}
}

func TestRecursiveFactorial(t *testing.T) {
	c := run(t, `
        .text
main:   li   $a0, 6
        jal  fact
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
fact:   addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        sw   $a0, 0($sp)
        slti $at, $a0, 2
        beqz $at, rec
        li   $v0, 1
        b    out
rec:    addiu $a0, $a0, -1
        jal  fact
        lw   $a0, 0($sp)
        mul  $v0, $v0, $a0
out:    lw   $ra, 4($sp)
        addiu $sp, $sp, 8
        jr   $ra
`)
	if got := c.Output.String(); got != "720" {
		t.Errorf("output = %q, want 720", got)
	}
}

func TestPrintString(t *testing.T) {
	c := run(t, `
        .data
msg:    .asciiz "hello, world\n"
        .text
main:   la   $a0, msg
        li   $v0, 4
        syscall
        li   $v0, 10
        syscall
`)
	if got := c.Output.String(); got != "hello, world\n" {
		t.Errorf("output = %q", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	c := run(t, `
        .data
two:    .word 0x40000000   # 2.0f
        .text
main:   l.s   $f0, two
        add.s $f1, $f0, $f0   # 4.0
        mul.s $f2, $f1, $f1   # 16.0
        sqrt.s $f3, $f2       # 4.0
        div.s $f4, $f3, $f0   # 2.0
        c.eq.s $f4, $f0
        bc1t  good
        li    $a0, 0
        b     done
good:   li    $a0, 1
done:   li    $v0, 1
        syscall
        li    $v0, 10
        syscall
`)
	if got := c.Output.String(); got != "1" {
		t.Errorf("fp compare failed: output = %q", got)
	}
	if got := math.Float32frombits(uint32(c.Regs[isa.FPR(2)])); got != 16.0 {
		t.Errorf("f2 = %v", got)
	}
}

func TestCvtRoundTrip(t *testing.T) {
	c := run(t, `
        .text
main:   li    $t0, 25
        mtc1  $t0, $f0
        cvt.s.w $f1, $f0
        sqrt.s $f2, $f1
        cvt.w.s $f3, $f2
        mfc1  $t1, $f3
        li    $v0, 10
        syscall
`)
	if c.Regs[9] != 5 {
		t.Errorf("sqrt(25) via fp = %d", c.Regs[9])
	}
}

func TestExitCode(t *testing.T) {
	c := run(t, `
        .text
main:   li $a0, 3
        li $v0, 10
        syscall
`)
	if c.ExitCode != 3 {
		t.Errorf("exit code = %d", c.ExitCode)
	}
}

func TestFaultOnBadPC(t *testing.T) {
	p, err := asm.Assemble("t.s", ".text\nmain: jr $zero\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	_, err = c.Run(10)
	if err == nil {
		t.Fatal("expected fault")
	}
	if !strings.Contains(err.Error(), "outside text") {
		t.Errorf("error = %v", err)
	}
}

func TestFaultOnBadSyscall(t *testing.T) {
	p, err := asm.Assemble("t.s", ".text\nmain: li $v0, 99\n syscall\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	if _, err = c.Run(10); err == nil || !strings.Contains(err.Error(), "syscall") {
		t.Errorf("err = %v", err)
	}
}

func TestTraceCallback(t *testing.T) {
	p, err := asm.Assemble("t.s", `
        .data
x:      .word 7
        .text
main:   la  $t0, x
        lw  $t1, 0($t0)
        addiu $t2, $t1, 1
        sw  $t2, 0($t0)
        beq $t1, $t2, main
        li  $v0, 10
        syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	var loads, stores, branches, alus int
	var loadVal isa.Word
	c.TraceFn = func(tr *Trace) {
		switch {
		case tr.Inst.Op.IsLoad():
			loads++
			loadVal = tr.DestVal
			if tr.Addr != p.MustSymbol("x") {
				t.Errorf("load addr = %#x", tr.Addr)
			}
		case tr.Inst.Op.IsStore():
			stores++
		case tr.Inst.Op.IsCondBranch():
			branches++
			if tr.Taken {
				t.Error("beq must be not-taken (7 != 8)")
			}
		default:
			alus++
		}
	}
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if loads != 1 || stores != 1 || branches != 1 {
		t.Errorf("loads/stores/branches = %d/%d/%d", loads, stores, branches)
	}
	if loadVal != 7 {
		t.Errorf("load value = %d", loadVal)
	}
	if alus == 0 {
		t.Error("no alu traces seen")
	}
}

func TestR0StaysZero(t *testing.T) {
	c := run(t, `
        .text
main:   addiu $zero, $zero, 5
        li    $v0, 10
        syscall
`)
	if c.Regs[0] != 0 {
		t.Errorf("r0 = %d", c.Regs[0])
	}
}

func TestALUResultPureProperties(t *testing.T) {
	// ADDU must be commutative; XOR self-inverse; SLT antisymmetric-ish.
	add := isa.Inst{Op: isa.OpADDU}
	xor := isa.Inst{Op: isa.OpXOR}
	f := func(a, b uint32) bool {
		wa, wb := isa.Word(a), isa.Word(b)
		if ALUResult(&add, wa, wb, 0) != ALUResult(&add, wb, wa, 0) {
			return false
		}
		x := ALUResult(&xor, wa, wb, 0)
		return ALUResult(&xor, x, wb, 0) == isa.Word(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMFHIMFLOExtractHILO(t *testing.T) {
	f := func(a, b int32) bool {
		mult := isa.Inst{Op: isa.OpMULT}
		hilo := ALUResult(&mult, isa.Word(uint32(a)), isa.Word(uint32(b)), 0)
		mfhi := isa.Inst{Op: isa.OpMFHI}
		mflo := isa.Inst{Op: isa.OpMFLO}
		p := int64(a) * int64(b)
		return ALUResult(&mfhi, hilo, 0, 0) == isa.Word(uint32(p>>32)) &&
			ALUResult(&mflo, hilo, 0, 0) == isa.Word(uint32(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunInstLimit(t *testing.T) {
	p, err := asm.Assemble("t.s", ".text\nmain: b main\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	halted, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if halted {
		t.Error("infinite loop reported halted")
	}
	if c.InstCount != 100 {
		t.Errorf("inst count = %d", c.InstCount)
	}
}

func TestStackPointerInitialised(t *testing.T) {
	p, _ := asm.Assemble("t.s", ".text\nmain: syscall\n")
	c := New(p)
	if c.Regs[isa.RegSP] != isa.Word(prog.StackTop) {
		t.Errorf("sp = %#x", c.Regs[isa.RegSP])
	}
}
