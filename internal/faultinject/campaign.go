package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Outcome classifies one fault-injection run against its fault-free
// baseline.
type Outcome int

const (
	// Masked: the run finished and every statistic matches the baseline —
	// the corrupted state was refreshed, evicted or never consulted.
	Masked Outcome = iota
	// Benign: the run finished with bit-identical architectural results
	// (program output, exit code, every retired instruction oracle-checked)
	// but shifted timing/statistics — the fault was absorbed by validation.
	Benign
	// Detected: the commit-time oracle flagged an architectural divergence.
	Detected
	// Hung: the pipeline watchdog tripped.
	Hung
	// Failed: any other error (including a silent output mismatch, which
	// the oracle makes impossible short of a simulator bug).
	Failed
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Benign:
		return "benign"
	case Detected:
		return "detected"
	case Hung:
		return "hung"
	}
	return "failed"
}

// RunReport is the result of one (benchmark, fault-kind) campaign cell.
type RunReport struct {
	Bench    string
	Config   string // configuration label the fault ran under
	Kind     Kind
	Injected int
	Skipped  int
	Outcome  Outcome
	Detail   string
	Log      []string // per-fault injection log (deterministic)
	// Expected says the outcome matches the fault model: unguarded RB
	// result corruption must be Detected; every guarded or
	// performance-only fault must finish with the oracle green (Masked or
	// Benign).
	Expected bool
}

// Campaign describes a deterministic fault-injection sweep.
type Campaign struct {
	Seed         int64
	Benches      []string
	Kinds        []Kind
	MaxInsts     uint64 // per-run dynamic instruction cap (0 = full runs)
	FaultsPerRun int
	// Parallel is the worker count for the sweep (0 or 1 = serial). The
	// report order and every report's content are independent of the worker
	// count: faults are planned from per-run seeds and machines are reused
	// via core.Machine.Reset, whose determinism contract guarantees
	// bit-identical runs.
	Parallel int
}

// DefaultCampaign is the standard sweep: every fault kind against a
// store-heavy kernel (compress) and a reuse-heavy one (m88ksim), three
// injection points per run, truncated runs.
func DefaultCampaign(seed int64) Campaign {
	return Campaign{
		Seed:         seed,
		Benches:      []string{"compress", "m88ksim"},
		Kinds:        Kinds(),
		MaxInsts:     60_000,
		FaultsPerRun: 3,
	}
}

// SmokeCampaign is the abbreviated sweep used by CI and -short tests.
func SmokeCampaign(seed int64) Campaign {
	return Campaign{
		Seed:         seed,
		Benches:      []string{"compress"},
		Kinds:        Kinds(),
		MaxInsts:     30_000,
		FaultsPerRun: 3,
	}
}

// configFor picks the machine configuration that instantiates the faulted
// structure. VP runs use the last-value predictor (no oracle selection, so
// a corrupted instance is actually consumed as a prediction) with a 1-cycle
// verification latency.
func configFor(k Kind) core.Config {
	switch k {
	case VPTValue, VPAValue:
		return core.VPChoice(vp.LVP, core.SB, core.ME, 1)
	case RBResult, RBOperand, RBOperandName, RBDepPointer:
		return core.IRChoice(false)
	default:
		return core.DefaultConfig()
	}
}

// baseline is the fault-free reference for one (bench, config) pair.
type baseline struct {
	stats  core.Stats
	output string
	exit   int
}

// Run executes the campaign and returns one report per (bench, kind) cell,
// in deterministic (bench-major, kind order) regardless of Parallel. The
// returned error covers campaign setup problems only; per-run failures are
// reported as outcomes.
func (c Campaign) Run() ([]RunReport, error) {
	progs := make(map[string]*prog.Program, len(c.Benches))
	for _, bench := range c.Benches {
		w, err := workload.Get(bench)
		if err != nil {
			return nil, err
		}
		p, err := w.Load(1)
		if err != nil {
			return nil, err
		}
		progs[bench] = p
	}

	type cell struct {
		bench string
		kind  Kind
	}
	var cells []cell
	for _, bench := range c.Benches {
		for _, kind := range c.Kinds {
			cells = append(cells, cell{bench, kind})
		}
	}

	// Phase 1: fault-free baselines, one per unique (bench, config) pair.
	// They are keyed by configuration identity, not fault kind, so several
	// kinds share one baseline run.
	type baseJob struct {
		bench string
		cfg   core.Config
	}
	var baseJobs []baseJob
	seen := map[string]bool{}
	for _, cl := range cells {
		cfg := configFor(cl.kind)
		bkey := cl.bench + "|" + cfg.Key()
		if !seen[bkey] {
			seen[bkey] = true
			baseJobs = append(baseJobs, baseJob{cl.bench, cfg})
		}
	}
	baselines := make(map[string]*baseline, len(baseJobs))
	baseErrs := make([]error, len(baseJobs))
	var mu sync.Mutex
	c.forEachPar(len(baseJobs), func(i int, machines map[string]*core.Machine) {
		j := baseJobs[i]
		m, err := campaignMachine(machines, progs[j.bench], j.bench, j.cfg, c.MaxInsts)
		if err != nil {
			baseErrs[i] = err
			return
		}
		if err := m.Run(0); err != nil {
			baseErrs[i] = fmt.Errorf("faultinject: baseline %s/%s: %w", j.bench, j.cfg.Name(), err)
			return
		}
		mu.Lock()
		baselines[j.bench+"|"+j.cfg.Key()] = &baseline{stats: m.Stats(), output: m.Output(), exit: m.ExitCode()}
		mu.Unlock()
	})
	if err := errors.Join(baseErrs...); err != nil {
		return nil, err
	}

	// Phase 2: injected runs, one per cell, reported in cell order.
	reports := make([]RunReport, len(cells))
	runErrs := make([]error, len(cells))
	c.forEachPar(len(cells), func(i int, machines map[string]*core.Machine) {
		cl := cells[i]
		cfg := configFor(cl.kind)
		base := baselines[cl.bench+"|"+cfg.Key()]
		rep := RunReport{Bench: cl.bench, Config: cfg.Name(), Kind: cl.kind}
		m, err := campaignMachine(machines, progs[cl.bench], cl.bench, cfg, c.MaxInsts)
		if err != nil {
			runErrs[i] = err
			return
		}
		plan := NewPlan(runSeed(c.Seed, cl.bench, cl.kind), cl.kind, c.FaultsPerRun, base.stats.Cycles)
		inj := Attach(m, plan)
		runErr := m.Run(0)
		rep.Injected, rep.Skipped = inj.Applied, inj.Skipped
		rep.Log = inj.Log

		switch {
		case runErr == nil:
			switch {
			case m.Output() != base.output || m.ExitCode() != base.exit:
				rep.Outcome = Failed
				rep.Detail = "silent architectural divergence (output mismatch)"
			case m.Stats() == base.stats:
				rep.Outcome = Masked
			default:
				rep.Outcome = Benign
				s := m.Stats()
				rep.Detail = fmt.Sprintf("cycles %+d", int64(s.Cycles)-int64(base.stats.Cycles))
			}
		case core.IsDivergence(runErr):
			se, _ := core.AsSimError(runErr)
			rep.Outcome = Detected
			rep.Detail = fmt.Sprintf("oracle: %s at pc %#x", se.Field, se.PC)
		case core.IsWatchdog(runErr):
			rep.Outcome = Hung
			rep.Detail = runErr.Error()
		default:
			rep.Outcome = Failed
			rep.Detail = runErr.Error()
		}

		if cl.kind.Unguarded() {
			rep.Expected = rep.Outcome == Detected
		} else {
			rep.Expected = rep.Outcome == Masked || rep.Outcome == Benign
		}
		reports[i] = rep
	})
	if err := errors.Join(runErrs...); err != nil {
		return nil, err
	}
	return reports, nil
}

// campaignMachine returns a run-ready machine for bench under cfg, reusing
// the worker's pooled machine (rewound with Reset, which also detaches the
// previous run's injector hooks) when one exists.
func campaignMachine(machines map[string]*core.Machine, p *prog.Program, bench string, cfg core.Config, maxInsts uint64) (*core.Machine, error) {
	if m := machines[bench]; m != nil {
		if err := m.Reset(cfg); err != nil {
			return nil, err
		}
		return m, nil
	}
	m, err := core.New(p, cfg, maxInsts)
	if err != nil {
		return nil, err
	}
	machines[bench] = m
	return m, nil
}

// forEachPar runs fn(0..total-1) on min(c.Parallel, total) workers (serial
// when Parallel <= 1). Each worker owns a private machine pool passed to
// every invocation.
func (c Campaign) forEachPar(total int, fn func(i int, machines map[string]*core.Machine)) {
	n := c.Parallel
	if n > total {
		n = total
	}
	if n <= 1 {
		machines := map[string]*core.Machine{}
		for i := 0; i < total; i++ {
			fn(i, machines)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			machines := map[string]*core.Machine{}
			for i := range jobs {
				fn(i, machines)
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// runSeed derives a per-run RNG seed deterministically from the campaign
// seed and the run identity.
func runSeed(seed int64, bench string, kind Kind) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s", bench, kind)
	return seed ^ int64(h.Sum64())
}

// Summarize renders the reports as a fixed-width table plus a PASS/FAIL
// verdict line; allOK reports whether every cell matched its expectation.
func Summarize(reports []RunReport) (table string, allOK bool) {
	var b strings.Builder
	allOK = true
	counts := map[Outcome]int{}
	fmt.Fprintf(&b, "%-9s %-20s %-17s %3s %3s  %-9s %-5s %s\n",
		"bench", "config", "fault", "inj", "skp", "outcome", "ok", "detail")
	for _, r := range reports {
		counts[r.Outcome]++
		okStr := "ok"
		if !r.Expected {
			okStr = "FAIL"
			allOK = false
		}
		fmt.Fprintf(&b, "%-9s %-20s %-17s %3d %3d  %-9s %-5s %s\n",
			r.Bench, r.Config, r.Kind.String(), r.Injected, r.Skipped,
			r.Outcome.String(), okStr, r.Detail)
	}
	fmt.Fprintf(&b, "\n%d runs: %d masked, %d benign, %d detected, %d hung, %d failed\n",
		len(reports), counts[Masked], counts[Benign], counts[Detected], counts[Hung], counts[Failed])
	if allOK {
		b.WriteString("PASS: VP/bpred/cache faults performance-only; unguarded RB result corruption caught by the oracle\n")
	} else {
		b.WriteString("FAIL: at least one run violated the fault model\n")
	}
	return b.String(), allOK
}
