// Package faultinject implements deterministic fault-injection campaigns
// against the timing simulator's microarchitectural state.
//
// The paper's central contrast — Value Prediction is speculative with late
// validation, Instruction Reuse is non-speculative with early validation —
// is directly testable as a robustness property. A corrupted VPT entry, a
// perturbed branch-predictor counter or a flipped cache tag can change
// *timing* but never architectural results: every predicted value is
// verified against an actual execution, every predicted direction against a
// resolution, and the caches are tag-only timing models. A reuse-buffer
// entry is different: the S_{n+d} reuse test guards its operand names,
// operand values and dependence pointers, but the buffered *result* is
// unguarded — a reused result skips execution entirely, so a corrupted
// result field flows straight into architectural state, where only the
// commit-time oracle cross-check (core.checkOracle) can flag it.
//
// Everything here is deterministic: faults are planned from a fixed seed
// and injected at fixed cycles, with no wall-clock anywhere, so a campaign
// run twice produces byte-identical reports.
package faultinject

import (
	"fmt"
	"math/rand"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/reuse"
)

// Kind names one corruptible structure/field.
type Kind int

const (
	VPTValue      Kind = iota // value-prediction table: buffered result value
	VPAValue                  // address-prediction table: buffered address value
	RBResult                  // reuse buffer: buffered result (UNGUARDED)
	RBOperand                 // reuse buffer: stored operand value
	RBOperandName             // reuse buffer: stored operand register name
	RBDepPointer              // reuse buffer: dependence pointer
	BpredCounter              // gshare direction counter
	BpredHistory              // speculative global history register
	BpredBTB                  // branch target buffer target
	ICacheTag                 // instruction cache tag line
	DCacheTag                 // data cache tag line
	numKinds
)

// Kinds returns every fault kind in a fixed order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

func (k Kind) String() string {
	switch k {
	case VPTValue:
		return "vpt-value"
	case VPAValue:
		return "vpa-value"
	case RBResult:
		return "rb-result"
	case RBOperand:
		return "rb-operand-value"
	case RBOperandName:
		return "rb-operand-name"
	case RBDepPointer:
		return "rb-dep-pointer"
	case BpredCounter:
		return "bpred-counter"
	case BpredHistory:
		return "bpred-history"
	case BpredBTB:
		return "bpred-btb"
	case ICacheTag:
		return "icache-tag"
	case DCacheTag:
		return "dcache-tag"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Unguarded reports whether faults of this kind can reach architectural
// state. Only the RB result field is unguarded: everything else is either
// validated before use (VP values, branch predictions), rejected by the
// reuse test (RB operands and links), or timing-only by construction
// (cache tags).
func (k Kind) Unguarded() bool { return k == RBResult }

// Fault is one planned corruption.
type Fault struct {
	Cycle uint64
	Kind  Kind
}

// Plan is a deterministic, seeded fault schedule for one run.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// NewPlan schedules count faults of the given kind, evenly spaced across
// (0, horizon] — the caller typically passes the fault-free run's cycle
// count as the horizon so every injection lands mid-run.
func NewPlan(seed int64, kind Kind, count int, horizon uint64) *Plan {
	p := &Plan{Seed: seed}
	if count <= 0 || horizon == 0 {
		return p
	}
	step := horizon / uint64(count+1)
	if step == 0 {
		step = 1
	}
	for i := 1; i <= count; i++ {
		p.Faults = append(p.Faults, Fault{Cycle: uint64(i) * step, Kind: kind})
	}
	return p
}

// Injector applies a Plan to a running machine via its per-cycle hook.
type Injector struct {
	rng    *rand.Rand
	m      *core.Machine
	faults []Fault
	next   int

	Applied int      // faults that mutated state
	Skipped int      // faults with no valid target yet (empty structure)
	Log     []string // one deterministic line per planned fault
}

// Attach registers plan against m. Must be called before Run.
func Attach(m *core.Machine, plan *Plan) *Injector {
	inj := &Injector{
		rng:    rand.New(rand.NewSource(plan.Seed)),
		m:      m,
		faults: plan.Faults,
	}
	m.OnCycle(inj.tick)
	return inj
}

func (inj *Injector) tick(cycle uint64) {
	for inj.next < len(inj.faults) && inj.faults[inj.next].Cycle <= cycle {
		f := inj.faults[inj.next]
		inj.next++
		inj.apply(f)
	}
}

func (inj *Injector) apply(f Fault) {
	var desc string
	var ok bool
	switch f.Kind {
	case VPTValue:
		if t := inj.m.VPT(); t != nil {
			desc, ok = t.CorruptValue(inj.rng)
		}
	case VPAValue:
		if t := inj.m.VPA(); t != nil {
			desc, ok = t.CorruptValue(inj.rng)
		}
	case RBResult:
		if b := inj.m.RB(); b != nil {
			// Burst form: corrupt every value-producing entry so at least
			// one corrupted result is consumed by a later reuse test before
			// refresh or eviction — the detection outcome stays
			// deterministic instead of depending on one entry's luck.
			if n := b.CorruptAllResults(inj.rng); n > 0 {
				desc, ok = fmt.Sprintf("rb burst: %d results corrupted", n), true
			}
		}
	case RBOperand:
		if b := inj.m.RB(); b != nil {
			desc, ok = b.Corrupt(reuse.CorruptOperandValue, inj.rng)
		}
	case RBOperandName:
		if b := inj.m.RB(); b != nil {
			desc, ok = b.Corrupt(reuse.CorruptOperandName, inj.rng)
		}
	case RBDepPointer:
		if b := inj.m.RB(); b != nil {
			desc, ok = b.Corrupt(reuse.CorruptDepPointer, inj.rng)
		}
	case BpredCounter:
		desc, ok = inj.m.BranchPredictor().CorruptCounter(inj.rng), true
	case BpredHistory:
		desc, ok = inj.m.BranchPredictor().CorruptHistory(inj.rng), true
	case BpredBTB:
		desc, ok = inj.m.BranchPredictor().CorruptBTB(inj.rng)
	case ICacheTag:
		ic, _ := inj.m.Caches()
		desc, ok = ic.CorruptTag(inj.rng)
	case DCacheTag:
		_, dc := inj.m.Caches()
		desc, ok = dc.CorruptTag(inj.rng)
	}
	if ok {
		inj.Applied++
		inj.Log = append(inj.Log, fmt.Sprintf("cycle %d: %s: %s", f.Cycle, f.Kind, desc))
	} else {
		inj.Skipped++
		inj.Log = append(inj.Log, fmt.Sprintf("cycle %d: %s: skipped (no valid target)", f.Cycle, f.Kind))
	}
}
