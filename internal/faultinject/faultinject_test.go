package faultinject

import (
	"reflect"
	"testing"
)

// TestPlanDeterminism: same seed, same parameters → identical plan. The
// whole campaign's byte-identical-output guarantee rests on this.
func TestPlanDeterminism(t *testing.T) {
	a := NewPlan(42, RBResult, 3, 90_000)
	b := NewPlan(42, RBResult, 3, 90_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed plans differ:\n%+v\n%+v", a, b)
	}
	c := NewPlan(43, RBResult, 3, 90_000)
	if c.Seed == a.Seed {
		t.Fatal("different seeds produced the same plan seed")
	}
	if len(a.Faults) != 3 {
		t.Fatalf("want 3 faults, got %d", len(a.Faults))
	}
	var prev uint64
	for i, f := range a.Faults {
		if f.Cycle == 0 {
			t.Errorf("fault %d scheduled at cycle 0 (before any state exists)", i)
		}
		if f.Cycle <= prev && i > 0 {
			t.Errorf("fault cycles not strictly increasing: %d then %d", prev, f.Cycle)
		}
		if f.Cycle >= 90_000 {
			t.Errorf("fault %d at cycle %d past the %d-cycle horizon", i, f.Cycle, 90_000)
		}
		prev = f.Cycle
	}
}

// TestKindProperties pins the fault taxonomy: exactly one kind is unguarded
// (the RB result field), and every kind has a stable printable name.
func TestKindProperties(t *testing.T) {
	unguarded := 0
	seen := map[string]bool{}
	for _, k := range Kinds() {
		if k.Unguarded() {
			unguarded++
			if k != RBResult {
				t.Errorf("kind %v claims to be unguarded; only the RB result field is", k)
			}
		}
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("kind %d has empty or duplicate name %q", k, name)
		}
		seen[name] = true
	}
	if unguarded != 1 {
		t.Fatalf("want exactly 1 unguarded kind (rb-result), got %d", unguarded)
	}
}

// TestSmokeCampaign runs the short campaign twice and checks the paper's
// asymmetry plus end-to-end determinism:
//
//   - every VP / bpred / cache fault is performance-only (Masked or Benign;
//     the oracle stays green);
//   - guarded RB fields (operands, names, dep pointers) are likewise
//     rejected by the reuse test;
//   - the unguarded RB result field is Detected by the commit-time oracle;
//   - the rendered report is byte-identical across runs.
func TestSmokeCampaign(t *testing.T) {
	run := func() ([]RunReport, string) {
		c := SmokeCampaign(1)
		reports, err := c.Run()
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		table, ok := Summarize(reports)
		if !ok {
			t.Fatalf("campaign verdict FAIL:\n%s", table)
		}
		return reports, table
	}
	reports, table1 := run()

	for _, r := range reports {
		switch {
		case r.Kind.Unguarded():
			if r.Outcome != Detected {
				t.Errorf("%s/%s: unguarded fault outcome %v, want Detected\n  detail: %s",
					r.Bench, r.Kind, r.Outcome, r.Detail)
			}
		default:
			if r.Outcome != Masked && r.Outcome != Benign {
				t.Errorf("%s/%s: guarded fault outcome %v, want Masked or Benign\n  detail: %s",
					r.Bench, r.Kind, r.Outcome, r.Detail)
			}
		}
		if r.Injected == 0 && r.Skipped == 0 {
			t.Errorf("%s/%s: plan applied no faults at all", r.Bench, r.Kind)
		}
	}

	_, table2 := run()
	if table1 != table2 {
		t.Fatalf("campaign output not byte-identical across runs:\n--- first ---\n%s\n--- second ---\n%s", table1, table2)
	}
}

// TestRunSeedIndependence: per-run seeds must differ across (bench, kind)
// so runs do not share fault streams, yet derive only from the campaign
// seed (no wall clock, no global state).
func TestRunSeedIndependence(t *testing.T) {
	s1 := runSeed(1, "compress", RBResult)
	s2 := runSeed(1, "compress", VPTValue)
	s3 := runSeed(1, "m88ksim", RBResult)
	s4 := runSeed(2, "compress", RBResult)
	if s1 == s2 || s1 == s3 || s1 == s4 {
		t.Fatalf("run seeds collide: %d %d %d %d", s1, s2, s3, s4)
	}
	if s1 != runSeed(1, "compress", RBResult) {
		t.Fatal("runSeed not deterministic")
	}
}

// TestCampaignParallelMatchesSerial: the campaign's report list (content
// and order) is independent of the worker count — parallel workers reuse
// machines via core.Machine.Reset, whose determinism contract makes every
// run bit-identical to a serial fresh-machine run.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	serial := SmokeCampaign(1)
	parallel := SmokeCampaign(1)
	parallel.Parallel = 4

	sReports, err := serial.Run()
	if err != nil {
		t.Fatalf("serial campaign: %v", err)
	}
	pReports, err := parallel.Run()
	if err != nil {
		t.Fatalf("parallel campaign: %v", err)
	}
	sTable, _ := Summarize(sReports)
	pTable, _ := Summarize(pReports)
	if sTable != pTable {
		t.Fatalf("parallel campaign output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sTable, pTable)
	}
	if len(sReports) != len(pReports) {
		t.Fatalf("report counts differ: %d vs %d", len(sReports), len(pReports))
	}
	for i := range sReports {
		s, p := sReports[i], pReports[i]
		if s.Bench != p.Bench || s.Kind != p.Kind || s.Outcome != p.Outcome ||
			s.Injected != p.Injected || s.Skipped != p.Skipped || s.Detail != p.Detail {
			t.Errorf("report %d differs: serial %+v, parallel %+v", i, s, p)
		}
	}
}
