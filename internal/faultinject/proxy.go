package faultinject

import (
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyFault names one service-layer fault the reverse proxy can inject
// between a coordinator and a backend worker. Where the microarchitectural
// faults in this package corrupt simulator state, these corrupt the
// *transport*: the distributed sweep fabric must mask all of them without
// the merged results changing by a byte.
type ProxyFault int

const (
	// FaultNone forwards the request untouched.
	FaultNone ProxyFault = iota
	// FaultDrop aborts the connection without a response (the client sees
	// EOF / connection reset), as a crashed or partitioned worker would.
	FaultDrop
	// FaultDelay holds the request for the proxy's Delay before
	// forwarding — a straggler, not a failure.
	FaultDelay
	// Fault5xx answers 503 without contacting the backend, as an
	// overloaded or draining worker would.
	Fault5xx
	// FaultTruncate forwards the request but severs the response
	// mid-body — for NDJSON sweeps, mid-stream after roughly half the
	// bytes — as a connection cut under a long-running sweep would.
	FaultTruncate
	// FaultCorrupt forwards the request but flips bytes in the response
	// body, as a broken middlebox or torn cache would.
	FaultCorrupt
	numProxyFaults
)

func (f ProxyFault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case Fault5xx:
		return "5xx"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// ProxyFaults returns every injectable fault kind (excluding FaultNone) in
// a fixed order.
func ProxyFaults() []ProxyFault {
	out := make([]ProxyFault, 0, numProxyFaults-1)
	for f := FaultDrop; f < numProxyFaults; f++ {
		out = append(out, f)
	}
	return out
}

// Proxy is a fault-injecting HTTP reverse proxy. Faults are drawn
// per-request from a seeded source (deterministic for a fixed seed and
// request order) at probability P, or scripted exactly with Script. The
// backend target is swappable at runtime so tests can kill a worker and
// revive it at a new address while the proxy's own address stays stable —
// exactly what a load balancer in front of a restarting worker looks like.
type Proxy struct {
	// Delay is the hold time for FaultDelay (default 50 ms).
	Delay time.Duration

	target atomic.Value // *url.URL
	client *http.Client

	mu      sync.Mutex
	rng     *rand.Rand
	p       float64
	kinds   []ProxyFault
	script  []ProxyFault
	counts  map[ProxyFault]uint64
	healthy bool // pass /healthz through un-faulted
}

// NewProxy builds a proxy forwarding to target (a base URL like
// "http://127.0.0.1:8080"). With probability p a request draws one fault
// uniformly from kinds (empty = all kinds); the stream of draws is
// deterministic in seed and request order. Scripted faults (Script) take
// precedence over random draws.
func NewProxy(target string, seed int64, p float64, kinds ...ProxyFault) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	if len(kinds) == 0 {
		kinds = ProxyFaults()
	}
	pr := &Proxy{
		Delay:  50 * time.Millisecond,
		client: &http.Client{},
		rng:    rand.New(rand.NewSource(seed)),
		p:      p,
		kinds:  kinds,
		counts: make(map[ProxyFault]uint64),
	}
	pr.target.Store(u)
	return pr, nil
}

// SetTarget atomically repoints the proxy at a new backend URL (reviving a
// killed worker at a fresh address).
func (p *Proxy) SetTarget(target string) error {
	u, err := url.Parse(target)
	if err != nil {
		return err
	}
	p.target.Store(u)
	return nil
}

// Script queues exact faults for the next requests, consumed in order
// before any random draw; use it for deterministic unit tests.
func (p *Proxy) Script(faults ...ProxyFault) {
	p.mu.Lock()
	p.script = append(p.script, faults...)
	p.mu.Unlock()
}

// PassHealthz exempts GET /healthz from fault injection, so breaker
// half-open probes test the backend rather than the proxy's dice.
func (p *Proxy) PassHealthz(pass bool) {
	p.mu.Lock()
	p.healthy = pass
	p.mu.Unlock()
}

// Injected returns how many times each fault kind fired.
func (p *Proxy) Injected() map[ProxyFault]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[ProxyFault]uint64, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// draw picks this request's fault: scripted first, then a seeded coin.
func (p *Proxy) draw(r *http.Request) ProxyFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.healthy && r.Method == http.MethodGet && r.URL.Path == "/healthz" {
		return FaultNone
	}
	if len(p.script) > 0 {
		f := p.script[0]
		p.script = p.script[1:]
		p.counts[f]++
		return f
	}
	if p.p > 0 && p.rng.Float64() < p.p {
		f := p.kinds[p.rng.Intn(len(p.kinds))]
		p.counts[f]++
		return f
	}
	return FaultNone
}

// ServeHTTP forwards one request, injecting at most one fault.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fault := p.draw(r)
	switch fault {
	case FaultDrop:
		// Abort without writing a response: net/http resets the
		// connection and the client sees a transport error.
		panic(http.ErrAbortHandler)
	case Fault5xx:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "injected 503", http.StatusServiceUnavailable)
		return
	case FaultDelay:
		select {
		case <-time.After(p.Delay):
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}

	u := p.target.Load().(*url.URL)
	out := r.Clone(r.Context())
	out.URL.Scheme = u.Scheme
	out.URL.Host = u.Host
	out.Host = u.Host
	out.RequestURI = ""
	resp, err := p.client.Do(out)
	if err != nil {
		// The backend itself is down — indistinguishable from a drop.
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Del("Content-Length") // we may not write the whole body

	switch fault {
	case FaultTruncate:
		// Sever mid-body: for an NDJSON sweep this cuts a line in half,
		// which the coordinator must detect as a dead stream, not a
		// result. Write roughly half, flush so the bytes are on the wire,
		// then abort the connection.
		w.WriteHeader(resp.StatusCode)
		cut := len(body) / 2
		if nl := strings.IndexByte(string(body[cut:]), '\n'); nl > 0 {
			cut += nl / 2 // land mid-line, not on a boundary
		}
		w.Write(body[:cut])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	case FaultCorrupt:
		// Flip bytes sparsely through the body; checksum-verified readers
		// and JSON parsers must reject it rather than absorb it.
		corrupted := make([]byte, len(body))
		copy(corrupted, body)
		for i := 0; i < len(corrupted); i += 64 {
			corrupted[i] ^= 0x5a
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(corrupted)
		return
	default:
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}
}
