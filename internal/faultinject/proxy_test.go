package faultinject

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// ndjsonBackend answers GET /stream with three NDJSON lines and /healthz
// with ok; everything else echoes the path.
func ndjsonBackend() *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"index":0,"ok":true}`+"\n"+`{"index":1,"ok":true}`+"\n"+`{"done":true}`+"\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"ok"}`)
	})
	return httptest.NewServer(mux)
}

func proxyFor(t *testing.T, backend string, seed int64, p float64, kinds ...ProxyFault) (*Proxy, *httptest.Server) {
	t.Helper()
	pr, err := NewProxy(backend, seed, p, kinds...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(pr)
	t.Cleanup(ts.Close)
	return pr, ts
}

func TestProxyPassThrough(t *testing.T) {
	backend := ndjsonBackend()
	defer backend.Close()
	_, ts := proxyFor(t, backend.URL, 1, 0)

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if lines := strings.Count(string(body), "\n"); lines != 3 {
		t.Fatalf("pass-through body has %d lines:\n%s", lines, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q not forwarded", ct)
	}
}

func TestProxyScriptedFaults(t *testing.T) {
	backend := ndjsonBackend()
	defer backend.Close()
	pr, ts := proxyFor(t, backend.URL, 1, 0)

	// drop: transport error, no response.
	pr.Script(FaultDrop)
	if _, err := http.Get(ts.URL + "/stream"); err == nil {
		t.Error("dropped request returned a response")
	}

	// 5xx: a clean 503 without touching the backend.
	pr.Script(Fault5xx)
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("5xx fault returned %d", resp.StatusCode)
	}

	// truncate: some bytes then EOF mid-stream — a scanner must see an
	// incomplete final line or an error, never the done line.
	pr.Script(FaultTruncate)
	resp, err = http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	raw, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr == nil && strings.Contains(string(raw), `"done"`) {
		t.Errorf("truncated stream still delivered the done line:\n%s", raw)
	}
	if len(raw) == 0 {
		t.Error("truncate delivered no bytes at all; want a mid-stream cut")
	}

	// corrupt: full-length body that no longer parses cleanly.
	pr.Script(FaultCorrupt)
	resp, err = http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(raw) == `{"index":0,"ok":true}`+"\n"+`{"index":1,"ok":true}`+"\n"+`{"done":true}`+"\n" {
		t.Error("corrupt fault left the body intact")
	}

	// delay: forwarded, but not before Delay has elapsed.
	pr.Delay = 30 * time.Millisecond
	pr.Script(FaultDelay)
	start := time.Now()
	resp, err = http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		n++
	}
	resp.Body.Close()
	if n != 3 {
		t.Errorf("delayed response has %d lines, want 3", n)
	}
	if since := time.Since(start); since < 30*time.Millisecond {
		t.Errorf("delayed response arrived in %v", since)
	}

	counts := pr.Injected()
	for _, f := range []ProxyFault{FaultDrop, Fault5xx, FaultTruncate, FaultCorrupt, FaultDelay} {
		if counts[f] != 1 {
			t.Errorf("injected[%v] = %d, want 1", f, counts[f])
		}
	}
}

func TestProxyDeterministicDraws(t *testing.T) {
	// Two proxies with the same seed draw the same fault sequence; a
	// different seed draws a different one (overwhelmingly likely over
	// 200 requests at p=0.5).
	seq := func(seed int64) string {
		pr, err := NewProxy("http://127.0.0.1:1", seed, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 200; i++ {
			r := httptest.NewRequest("POST", "/v1/run", nil)
			b.WriteString(pr.draw(r).String())
			b.WriteByte(',')
		}
		return b.String()
	}
	if seq(7) != seq(7) {
		t.Error("same seed produced different fault sequences")
	}
	if seq(7) == seq(8) {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestProxyHealthzExemption(t *testing.T) {
	backend := ndjsonBackend()
	defer backend.Close()
	pr, ts := proxyFor(t, backend.URL, 1, 1.0) // every request faulted
	pr.PassHealthz(true)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz through a p=1 proxy: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d", resp.StatusCode)
		}
	}
}

func TestProxyRetarget(t *testing.T) {
	b1 := ndjsonBackend()
	pr, ts := proxyFor(t, b1.URL, 1, 0)

	get := func() error {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	}
	if err := get(); err != nil {
		t.Fatal(err)
	}
	// Kill the worker: requests through the stable proxy address now fail.
	b1.Close()
	if err := get(); err == nil {
		t.Error("request to a killed backend succeeded")
	}
	// Revive it at a new address; the proxy swaps targets atomically.
	b2 := ndjsonBackend()
	defer b2.Close()
	if err := pr.SetTarget(b2.URL); err != nil {
		t.Fatal(err)
	}
	if err := get(); err != nil {
		t.Errorf("request after revive failed: %v", err)
	}
}
