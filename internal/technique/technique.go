// Package technique is the registry of redundancy-exploiting techniques:
// every named machine variant the simulator can build — the paper's base,
// VP, IR and hybrid machines plus the extension predictors and arbitration
// policies — registers here with the knobs it consumes, and every consumer
// of a technique name (the public vpir.Options, the HTTP wire options, the
// coordinator's cell specs, the CLI flags) resolves through this package.
//
// The registry is the single source of truth for technique and knob
// spellings. Resolution is strict: an unknown name is an error (never a
// silent fallback to base), and a knob a technique does not consume is an
// error too, so a request that misspells "scheme" can not quietly run a
// different machine than the caller intended.
//
// Adding a scheme:
//
//  1. Implement the predictor/buffer behind internal/core's techOps hooks
//     (for a VPT scheme, extend internal/vp and its snapshot).
//  2. Register the named technique in this package's init.
//  3. Run `go test -run TestGoldenCorpus -update .` — the golden corpus
//     auto-enumerates registered techniques, and its completeness check
//     fails any registered name without a committed snapshot.
//
// The differential, Reset-determinism and checkpoint round-trip test
// layers enumerate Names() too, so a registered technique inherits the
// whole validation battery; see docs/techniques.md for the obligations.
package technique

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/vp"
)

// Knobs are the free parameters a caller may set alongside a technique
// name. The zero value is every technique's default. Techniques reject
// knobs they do not consume (a base machine with a "scheme" is a caller
// error, not a machine).
type Knobs struct {
	// Scheme selects the VPT scheme for the value-predicting techniques:
	// "magic" (default), "lvp", "stride", "2delta" or "fcm".
	Scheme string
	// BranchResolution is "sb" (default) or "nsb" (§4.1.4).
	BranchResolution string
	// Reexec is "me" (default) or "nme" (§4.1.4).
	Reexec string
	// VerifyLatency is the VP-verification latency in cycles.
	VerifyLatency int
	// LateValidation defers reuse benefits to execute (Figure 3 "late").
	LateValidation bool
}

// Technique is one registered machine variant.
type Technique struct {
	// Name is the registry key: lower-case, stable, used in wire requests,
	// CLI flags and golden-corpus file names.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Configure maps the knobs onto a machine configuration, rejecting
	// knobs the technique does not consume.
	Configure func(Knobs) (core.Config, error)
}

var (
	mu       sync.RWMutex
	registry = map[string]Technique{}
)

// Register adds a technique; it panics on an empty or duplicate name
// (registration is a program-integrity invariant, not a runtime input).
func Register(t Technique) {
	if t.Name == "" || t.Configure == nil {
		panic("technique: Register needs a name and a Configure func")
	}
	if t.Name != strings.ToLower(t.Name) {
		panic(fmt.Sprintf("technique: name %q must be lower-case", t.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[t.Name]; dup {
		panic(fmt.Sprintf("technique: duplicate registration of %q", t.Name))
	}
	registry[t.Name] = t
}

// Lookup finds a registered technique by name (case-insensitive; the empty
// name is "base").
func Lookup(name string) (Technique, bool) {
	key := strings.ToLower(name)
	if key == "" {
		key = "base"
	}
	mu.RLock()
	defer mu.RUnlock()
	t, ok := registry[key]
	return t, ok
}

// Names lists the registered technique names, sorted for determinism.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All lists the registered techniques in Names() order.
func All() []Technique {
	names := Names()
	out := make([]Technique, 0, len(names))
	for _, n := range names {
		t, _ := Lookup(n)
		out = append(out, t)
	}
	return out
}

// Resolve maps a technique name plus knobs onto a validated machine
// configuration. Unknown names and unconsumed knobs are errors.
func Resolve(name string, k Knobs) (core.Config, error) {
	t, ok := Lookup(name)
	if !ok {
		return core.Config{}, fmt.Errorf("vpir: unknown technique %q (available: %s)",
			name, strings.Join(Names(), ", "))
	}
	cfg, err := t.Configure(k)
	if err != nil {
		return core.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// ParseScheme maps a scheme spelling onto the vp.Scheme enum ("" = magic).
func ParseScheme(s string) (vp.Scheme, error) {
	switch strings.ToLower(s) {
	case "", "magic":
		return vp.Magic, nil
	case "lvp":
		return vp.LVP, nil
	case "stride":
		return vp.Stride, nil
	case "2delta", "twodelta":
		return vp.TwoDelta, nil
	case "fcm":
		return vp.FCM, nil
	}
	return 0, fmt.Errorf("vpir: unknown scheme %q (magic, lvp, stride, 2delta or fcm)", s)
}

// SchemeName is the canonical knob spelling of a vp.Scheme.
func SchemeName(s vp.Scheme) string {
	switch s {
	case vp.LVP:
		return "lvp"
	case vp.Stride:
		return "stride"
	case vp.TwoDelta:
		return "2delta"
	case vp.FCM:
		return "fcm"
	}
	return "magic"
}

func parseResolution(s string) (core.BranchResolution, error) {
	switch strings.ToLower(s) {
	case "", "sb":
		return core.SB, nil
	case "nsb":
		return core.NSB, nil
	}
	return 0, fmt.Errorf("vpir: unknown branch resolution %q (sb or nsb)", s)
}

func parseReexec(s string) (core.ReexecPolicy, error) {
	switch strings.ToLower(s) {
	case "", "me":
		return core.ME, nil
	case "nme":
		return core.NME, nil
	}
	return 0, fmt.Errorf("vpir: unknown reexec policy %q (me or nme)", s)
}

// rejectVPKnobs fails when VP-only knobs were set for a technique that
// never consults the value predictor — silently ignoring them would run a
// different machine than the caller asked for.
func rejectVPKnobs(name string, k Knobs) error {
	switch {
	case k.Scheme != "":
		return fmt.Errorf("vpir: technique %q does not take a scheme (got %q)", name, k.Scheme)
	case k.BranchResolution != "":
		return fmt.Errorf("vpir: technique %q does not take a branch resolution (got %q)", name, k.BranchResolution)
	case k.Reexec != "":
		return fmt.Errorf("vpir: technique %q does not take a reexec policy (got %q)", name, k.Reexec)
	case k.VerifyLatency != 0:
		return fmt.Errorf("vpir: technique %q does not take a verify latency (got %d)", name, k.VerifyLatency)
	}
	return nil
}

// rejectIRKnobs fails when IR-only knobs were set for a technique with no
// reuse buffer.
func rejectIRKnobs(name string, k Knobs) error {
	if k.LateValidation {
		return fmt.Errorf("vpir: technique %q does not take late validation", name)
	}
	return nil
}

// vpKnobs parses the knobs the VP-family techniques share. pinned, when
// non-negative, fixes the scheme: the Scheme knob must then be empty or
// spell the pinned scheme.
func vpKnobs(name string, k Knobs, pinned vp.Scheme, hasPin bool) (vp.Scheme, core.BranchResolution, core.ReexecPolicy, error) {
	scheme, err := ParseScheme(k.Scheme)
	if err != nil {
		return 0, 0, 0, err
	}
	if hasPin {
		if k.Scheme != "" && scheme != pinned {
			return 0, 0, 0, fmt.Errorf("vpir: technique %q pins scheme %q (got %q)",
				name, SchemeName(pinned), k.Scheme)
		}
		scheme = pinned
	}
	res, err := parseResolution(k.BranchResolution)
	if err != nil {
		return 0, 0, 0, err
	}
	re, err := parseReexec(k.Reexec)
	if err != nil {
		return 0, 0, 0, err
	}
	if k.VerifyLatency < 0 {
		return 0, 0, 0, fmt.Errorf("vpir: negative verify latency %d", k.VerifyLatency)
	}
	return scheme, res, re, nil
}

// registerVP registers a value-prediction technique; pinning a scheme makes
// it a first-class registry entry the golden corpus enumerates on its own.
func registerVP(name, desc string, pinned vp.Scheme, hasPin bool) {
	Register(Technique{Name: name, Desc: desc, Configure: func(k Knobs) (core.Config, error) {
		if err := rejectIRKnobs(name, k); err != nil {
			return core.Config{}, err
		}
		scheme, res, re, err := vpKnobs(name, k, pinned, hasPin)
		if err != nil {
			return core.Config{}, err
		}
		return core.VPChoice(scheme, res, re, k.VerifyLatency), nil
	}})
}

func registerHybrid(name, desc string, arb core.HybridPolicy) {
	Register(Technique{Name: name, Desc: desc, Configure: func(k Knobs) (core.Config, error) {
		scheme, res, re, err := vpKnobs(name, k, 0, false)
		if err != nil {
			return core.Config{}, err
		}
		cfg := core.HybridChoice(scheme, res, re, k.VerifyLatency)
		cfg.HybridArb = arb
		cfg.IR.LateValidation = k.LateValidation
		return cfg, nil
	}})
}

func init() {
	Register(Technique{
		Name: "base",
		Desc: "4-way out-of-order superscalar, no redundancy technique (Table 1)",
		Configure: func(k Knobs) (core.Config, error) {
			if err := rejectVPKnobs("base", k); err != nil {
				return core.Config{}, err
			}
			if err := rejectIRKnobs("base", k); err != nil {
				return core.Config{}, err
			}
			return core.DefaultConfig(), nil
		},
	})
	Register(Technique{
		Name: "ir",
		Desc: "instruction reuse, scheme S(n+d) (Figure 1(b))",
		Configure: func(k Knobs) (core.Config, error) {
			if err := rejectVPKnobs("ir", k); err != nil {
				return core.Config{}, err
			}
			return core.IRChoice(k.LateValidation), nil
		},
	})
	registerVP("vp", "value prediction, scheme selectable (Figure 1(a))", 0, false)
	registerVP("vp_stride",
		"value prediction with the eager stride predictor", vp.Stride, true)
	registerVP("vp_2delta",
		"value prediction with the 2-delta stride predictor (stride adopted on repeat)", vp.TwoDelta, true)
	registerVP("vp_fcm",
		"value prediction with the two-level finite-context-method predictor", vp.FCM, true)
	registerHybrid("hybrid",
		"IR first, VP on reuse misses (serial arbitration)", core.HybridSerial)
	registerHybrid("hybrid_conf",
		"IR first, VP on reuse misses only at saturated confidence", core.HybridConf)
}
