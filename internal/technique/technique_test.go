package technique

import (
	"strings"
	"testing"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/vp"
)

func TestNamesStable(t *testing.T) {
	want := []string{"base", "hybrid", "hybrid_conf", "ir", "vp",
		"vp_2delta", "vp_fcm", "vp_stride"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, tech := range All() {
		if tech.Desc == "" {
			t.Errorf("technique %q has no description", tech.Name)
		}
	}
}

func TestLookupNormalization(t *testing.T) {
	if tech, ok := Lookup(""); !ok || tech.Name != "base" {
		t.Errorf("empty name resolved to %q, want base", tech.Name)
	}
	if tech, ok := Lookup("Hybrid_Conf"); !ok || tech.Name != "hybrid_conf" {
		t.Errorf("case-insensitive lookup resolved to %q", tech.Name)
	}
	if _, ok := Lookup("warp"); ok {
		t.Error("unknown name found")
	}
}

func TestResolveUnknownNameListsAvailable(t *testing.T) {
	_, err := Resolve("warp", Knobs{})
	if err == nil {
		t.Fatal("unknown technique resolved")
	}
	for _, want := range []string{`"warp"`, "base", "hybrid_conf", "vp_fcm"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

// TestKnobRejection pins the strict-validation contract: a knob a
// technique does not consume is an error naming that knob, never a
// silently different machine.
func TestKnobRejection(t *testing.T) {
	cases := []struct {
		name string
		tech string
		k    Knobs
		want string // error substring; "" = must resolve
	}{
		{"base rejects scheme", "base", Knobs{Scheme: "lvp"}, "does not take a scheme"},
		{"base rejects vlat", "base", Knobs{VerifyLatency: 1}, "verify latency"},
		{"base rejects late", "base", Knobs{LateValidation: true}, "late validation"},
		{"ir rejects scheme", "ir", Knobs{Scheme: "magic"}, "does not take a scheme"},
		{"ir rejects resolution", "ir", Knobs{BranchResolution: "nsb"}, "branch resolution"},
		{"ir takes late", "ir", Knobs{LateValidation: true}, ""},
		{"vp rejects late", "vp", Knobs{LateValidation: true}, "late validation"},
		{"vp bad scheme", "vp", Knobs{Scheme: "psychic"}, `unknown scheme "psychic"`},
		{"vp bad resolution", "vp", Knobs{BranchResolution: "maybe"}, "branch resolution"},
		{"vp bad reexec", "vp", Knobs{Reexec: "sometimes"}, "reexec"},
		{"vp negative vlat", "vp", Knobs{VerifyLatency: -1}, "negative verify latency"},
		{"vp all knobs", "vp", Knobs{Scheme: "fcm", BranchResolution: "nsb", Reexec: "nme", VerifyLatency: 1}, ""},
		{"pinned accepts own scheme", "vp_2delta", Knobs{Scheme: "2delta"}, ""},
		{"pinned accepts alias", "vp_2delta", Knobs{Scheme: "TwoDelta"}, ""},
		{"pinned rejects other scheme", "vp_fcm", Knobs{Scheme: "lvp"}, `pins scheme "fcm"`},
		{"hybrid takes late", "hybrid", Knobs{LateValidation: true}, ""},
		{"hybrid_conf takes scheme and late", "hybrid_conf", Knobs{Scheme: "stride", LateValidation: true}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := Resolve(tc.tech, tc.k)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Resolve(%s, %+v) = %v, want ok", tc.tech, tc.k, err)
				}
				if verr := cfg.Validate(); verr != nil {
					t.Fatalf("resolved config invalid: %v", verr)
				}
				return
			}
			if err == nil {
				t.Fatalf("Resolve(%s, %+v) accepted, want error containing %q (config %s)",
					tc.tech, tc.k, tc.want, cfg.Key())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestResolvedConfigs spot-checks that names map onto the intended
// machines (the golden corpus pins the resulting numbers; this pins the
// structural mapping).
func TestResolvedConfigs(t *testing.T) {
	base, _ := Resolve("", Knobs{})
	if base.Technique != core.TechNone {
		t.Errorf("empty name built technique %v", base.Technique)
	}
	fcm, _ := Resolve("vp_fcm", Knobs{})
	if fcm.Technique != core.TechVP || fcm.VP.Scheme != vp.FCM {
		t.Errorf("vp_fcm built %s", fcm.Key())
	}
	hc, _ := Resolve("hybrid_conf", Knobs{Scheme: "2delta"})
	if hc.Technique != core.TechHybrid || hc.HybridArb != core.HybridConf || hc.VP.Scheme != vp.TwoDelta {
		t.Errorf("hybrid_conf built %s", hc.Key())
	}
	hs, _ := Resolve("hybrid", Knobs{})
	if hs.HybridArb != core.HybridSerial {
		t.Errorf("hybrid built arbitration %v", hs.HybridArb)
	}
	if hc.Key() == hs.Key() {
		t.Error("serial and conf hybrids share a cache key")
	}
}

func TestSchemeNameRoundTrip(t *testing.T) {
	for _, s := range []vp.Scheme{vp.Magic, vp.LVP, vp.Stride, vp.TwoDelta, vp.FCM} {
		got, err := ParseScheme(SchemeName(s))
		if err != nil || got != s {
			t.Errorf("ParseScheme(SchemeName(%v)) = %v, %v", s, got, err)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, tech Technique) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(tech)
	}
	mustPanic("empty", Technique{})
	mustPanic("no configure", Technique{Name: "x"})
	mustPanic("upper-case", Technique{Name: "VP2",
		Configure: func(Knobs) (core.Config, error) { return core.Config{}, nil }})
	mustPanic("duplicate", Technique{Name: "base",
		Configure: func(Knobs) (core.Config, error) { return core.Config{}, nil }})
}
