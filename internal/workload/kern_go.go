package workload

import "fmt"

// go: position evaluation over a 19x19 board, the analogue of SPEC95
// 099.go. Neighbour scans with data-dependent branches on board contents —
// the hardest benchmark for the branch predictor in the paper (75.8%),
// and a modest one for both VP and IR.
func init() {
	register(&Workload{
		Name: "go",
		Desc: "19x19 board evaluation: chains, liberties, influence",
		Source: func(scale int) string {
			return fmt.Sprintf(goAsm, 24*scale)
		},
		Golden: goldenGo,
	})
}

const goAsm = `
# go: repeated evaluation of a random position with a mutation per pass.
PASSES = %d
        .data
board:  .space 361            # 19x19 cells: 0 empty, 1 black, 2 white
rowof:  .space 361            # row index of each cell
colof:  .space 361            # column index
        .text
main:   li    $s7, 0x60B0
        # Precompute row/col tables (avoids a divide per neighbour probe).
        la    $t0, rowof
        la    $t1, colof
        li    $t2, 0          # cell
        li    $t3, 0          # row
        li    $t4, 0          # col
rc:     addu  $t5, $t0, $t2
        sb    $t3, 0($t5)
        addu  $t5, $t1, $t2
        sb    $t4, 0($t5)
        addiu $t4, $t4, 1
        slti  $at, $t4, 19
        bnez  $at, rcnext
        li    $t4, 0
        addiu $t3, $t3, 1
rcnext: addiu $t2, $t2, 1
        li    $at, 361
        blt   $t2, $at, rc

        # Fill the board: ~60%% empty, ~20%% black, ~20%% white.
        la    $s0, board
        li    $t8, 0
fill:   jal   rand
        andi  $t0, $v1, 15
        slti  $at, $t0, 10
        beqz  $at, stone
        li    $t0, 0
        b     place
stone:  andi  $t0, $v1, 1
        addiu $t0, $t0, 1
place:  addu  $t1, $s0, $t8
        sb    $t0, 0($t1)
        addiu $t8, $t8, 1
        li    $at, 361
        blt   $t8, $at, fill

        li    $s6, 0          # checksum
        li    $s5, 0          # pass counter
pass:   li    $s1, 0          # cell index
        li    $s2, 0          # pass score
cell:   addu  $t0, $s0, $s1
        lbu   $t1, 0($t0)     # colour
        beqz  $t1, nextcell   # empty cells score nothing
        la    $at, rowof
        addu  $t2, $at, $s1
        lbu   $t2, 0($t2)     # row
        la    $at, colof
        addu  $t3, $at, $s1
        lbu   $t3, 0($t3)     # col
        li    $t4, 0          # friends
        li    $t5, 0          # liberties
        li    $t6, 0          # enemies
        # north neighbour
        beqz  $t2, south
        addiu $t7, $s1, -19
        addu  $t7, $s0, $t7
        lbu   $t7, 0($t7)
        jal   classify
        # south
south:  li    $at, 18
        beq   $t2, $at, west
        addiu $t7, $s1, 19
        addu  $t7, $s0, $t7
        lbu   $t7, 0($t7)
        jal   classify
west:   beqz  $t3, east
        addiu $t7, $s1, -1
        addu  $t7, $s0, $t7
        lbu   $t7, 0($t7)
        jal   classify
east:   li    $at, 18
        beq   $t3, $at, score
        addiu $t7, $s1, 1
        addu  $t7, $s0, $t7
        lbu   $t7, 0($t7)
        jal   classify
score:  # score: stones with no liberties are captured (big penalty);
        # otherwise score liberties + 2*friends - enemies, sign by colour.
        bnez  $t5, alive
        addiu $s2, $s2, -20
        b     nextcell
alive:  sll   $t8, $t4, 1
        addu  $t8, $t8, $t5
        subu  $t8, $t8, $t6
        li    $at, 1
        beq   $t1, $at, black
        subu  $s2, $s2, $t8
        b     nextcell
black:  addu  $s2, $s2, $t8
nextcell:
        addiu $s1, $s1, 1
        li    $at, 361
        blt   $s1, $at, cell

        # fold the pass score and mutate one cell
        sll   $t0, $s6, 1
        addu  $s6, $t0, $s2
        jal   rand
        li    $at, 361
        divu  $v1, $at
        mfhi  $t0             # position = rnd %% 361
        addu  $t0, $s0, $t0
        lbu   $t1, 0($t0)
        addiu $t1, $t1, 1
        slti  $at, $t1, 3
        bnez  $at, put
        li    $t1, 0
put:    sb    $t1, 0($t0)
        addiu $s5, $s5, 1
        li    $at, PASSES
        blt   $s5, $at, pass

        move  $a0, $s6
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall

# classify: neighbour colour in $t7 vs own colour in $t1; bumps
# friends ($t4) / liberties ($t5) / enemies ($t6).
classify:
        bnez  $t7, occupied
        addiu $t5, $t5, 1
        jr    $ra
occupied:
        beq   $t7, $t1, friend
        addiu $t6, $t6, 1
        jr    $ra
friend: addiu $t4, $t4, 1
        jr    $ra
` + randAsm

func goldenGo(scale int) string {
	s := lcg(0x60B0)
	rowof := make([]int, 361)
	colof := make([]int, 361)
	for i := 0; i < 361; i++ {
		rowof[i] = i / 19
		colof[i] = i % 19
	}
	board := make([]byte, 361)
	for i := range board {
		r := s.next()
		if r&15 < 10 {
			board[i] = 0
		} else {
			board[i] = byte(r&1) + 1
		}
	}
	var cs uint32
	passes := 24 * scale
	for p := 0; p < passes; p++ {
		var score int32
		for i := 0; i < 361; i++ {
			c := board[i]
			if c == 0 {
				continue
			}
			var friends, libs, enemies int32
			classify := func(n byte) {
				switch {
				case n == 0:
					libs++
				case n == c:
					friends++
				default:
					enemies++
				}
			}
			if rowof[i] != 0 {
				classify(board[i-19])
			}
			if rowof[i] != 18 {
				classify(board[i+19])
			}
			if colof[i] != 0 {
				classify(board[i-1])
			}
			if colof[i] != 18 {
				classify(board[i+1])
			}
			if libs == 0 {
				score -= 20
				continue
			}
			v := 2*friends + libs - enemies
			if c == 1 {
				score += v
			} else {
				score -= v
			}
		}
		cs = cs*2 + uint32(score)
		pos := s.next() % 361
		board[pos]++
		if board[pos] >= 3 {
			board[pos] = 0
		}
	}
	return fmt.Sprintf("%d", int32(cs))
}
