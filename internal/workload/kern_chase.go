package workload

import "fmt"

// chase: serialized pointer chasing around a strided ring. Each ring node
// holds the address of the next node, so the whole chase is one load per
// hop — `lw $t4, 0($t4)` — whose address depends on the previous load's
// value. Nothing overlaps, and with the ring sized past the D-cache every
// hop is a capacity miss: the pipeline spends almost all of its simulated
// cycles with one load outstanding and nothing else to do. That is the
// stall-heavy extreme the quiescence-aware cycle skipper (see core/skip.go)
// is built for, and the pathological retirement-gap shape that used to
// false-trip cycle-counting watchdogs.
//
// The scale knob tunes the miss rate through the working set: scale 1 is a
// 32 K-node (128 KB) ring whose walk touches 4 K distinct lines — twice the
// D-cache's 2 K-line capacity — so the cyclic walk is LRU's worst case and
// misses on essentially every hop. A half-size ring would be cache-resident
// and hit. Hops scale alongside so the chase dominates the run at every
// scale.
//
// chase is a synthetic diagnostic, not one of the paper's seven kernels:
// it registers for Get() (benchmarks, tests, the server) but is deliberately
// absent from Names(), so paper tables and the golden corpus are unaffected.
func init() {
	register(&Workload{
		Name: "chase",
		Desc: "serial pointer chase, cache-defeating strided ring",
		Source: func(scale int) string {
			nodes := 32768 * scale
			return fmt.Sprintf(chaseAsm, nodes*4, chaseBlocks*scale)
		},
		Golden: goldenChase,
	})
}

// chaseBlocks is the scale-1 iteration count of the unrolled chase loop;
// each block is chaseUnroll dependent hops plus two bookkeeping
// instructions, keeping the committed-instruction overhead per miss near
// its floor of one.
const (
	chaseBlocks = 6000
	chaseUnroll = 8
)

const chaseAsm = `
# chase: ring[i] holds the ADDRESS of the node one cache line (8 words)
# ahead, mod the ring size. Successive hops therefore touch a fresh line
# every time, cycling over NODES/8 distinct lines; sized past the D-cache,
# a cyclic scan is LRU's worst case, so every hop misses. (The stride must
# be a whole line: a sub-line stride revisits each line several hops apart
# and turns most of the chase into hits.) The loop is unrolled so nearly
# every committed instruction is a serially dependent load.
RINGBYTES = %d
BLOCKS = %d
        .data
ring:   .space RINGBYTES
        .text
main:   la    $s0, ring
        li    $t0, RINGBYTES
        addu  $s5, $s0, $t0   # s5 = one past the last node
        addiu $s4, $s5, -32   # s4 = &ring[NODES-8], where next wraps
        addiu $t1, $s0, 32    # value: &ring[i+8]
        move  $t2, $s0        # addr: &ring[i]
init1:  sw    $t1, 0($t2)
        addiu $t1, $t1, 4
        addiu $t2, $t2, 4
        bne   $t2, $s4, init1
        move  $t1, $s0        # the last 8 nodes wrap to ring[0..7]
init2:  sw    $t1, 0($t2)
        addiu $t1, $t1, 4
        addiu $t2, $t2, 4
        bne   $t2, $s5, init2

        li    $t8, BLOCKS
        move  $t4, $s0        # start the walk at node 0
chase:  lw    $t4, 0($t4)    # the serial dependence: address <- memory
        lw    $t4, 0($t4)
        lw    $t4, 0($t4)
        lw    $t4, 0($t4)
        lw    $t4, 0($t4)
        lw    $t4, 0($t4)
        lw    $t4, 0($t4)
        lw    $t4, 0($t4)
        addiu $t8, $t8, -1
        bnez  $t8, chase

        subu  $a0, $t4, $s0   # final node index proves the walk's path
        srl   $a0, $a0, 2
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
`

func goldenChase(scale int) string {
	nodes := 32768 * scale
	hops := chaseBlocks * chaseUnroll * scale
	idx := 0
	for s := 0; s < hops; s++ {
		idx += chaseUnroll
		if idx >= nodes {
			idx -= nodes
		}
	}
	return fmt.Sprintf("%d", idx)
}
