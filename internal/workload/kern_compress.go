package workload

import "fmt"

// compress: LZW compression over LCG-generated 16-symbol text, dictionary
// in an open-addressed hash table. The analogue of SPEC95 129.compress:
// hash probing dominated, with dictionary stores that invalidate load reuse
// (the behaviour behind compress's address-only reuse in Table 3).
func init() {
	register(&Workload{
		Name: "compress",
		Desc: "LZW compression, 16-symbol text, 4K-entry dictionary",
		Source: func(scale int) string {
			return fmt.Sprintf(compressAsm, 4096*scale)
		},
		Golden: goldenCompress,
	})
}

const compressAsm = `
# compress: LZW over a generated symbol stream. The stream is compressed
# repeatedly with a dictionary clear in between — real compress95 clears its
# table when the ratio drops. The second round repeats every probe with the
# same address operands while the clearing stores have killed the buffered
# load values: addresses reuse, results do not (the Table 3 signature).
INSIZE = %d
        .data
input:  .space INSIZE
htab:   .space 32768          # 4096 entries x (key word, value word)
gvars:  .space 16             # globals: in_count, checksum (compress.c
                              # keeps its state in globals; the loads have a
                              # fixed address but ever-changing values)
        .text
main:   li    $s7, 0x1234     # LCG seed
        la    $s0, input
        li    $s6, INSIZE
        li    $s1, 0
gen:    jal   rand
        andi  $t0, $v1, 15
        addu  $t1, $s0, $s1
        sb    $t0, 0($t1)
        addiu $s1, $s1, 1
        blt   $s1, $s6, gen

        li    $s3, 0          # checksum, carried across rounds
        li    $t8, 0          # round counter
newround:
        # clear the dictionary
        la    $t0, htab
        li    $t1, 4096
clr:    sw    $zero, 0($t0)
        sw    $zero, 4($t0)
        addiu $t0, $t0, 8
        addiu $t1, $t1, -1
        bnez  $t1, clr

        lbu   $s2, 0($s0)     # prefix = first symbol
        li    $s1, 1          # input index
        li    $s4, 256        # next dictionary code
        la    $s5, htab
        la    $t9, gvars
        sw    $s1, 0($t9)
        sw    $s3, 4($t9)
loop:   lw    $s1, 0($t9)     # global in_count
        lw    $s3, 4($t9)     # global checksum
        addu  $t0, $s0, $s1
        lbu   $t1, 0($t0)     # next symbol c
        sll   $t2, $s2, 8
        or    $t2, $t2, $t1
        addiu $t2, $t2, 1     # key = (prefix<<8 | c) + 1, never zero
        li    $at, 40503
        mult  $t2, $at
        mflo  $t3
        srl   $t3, $t3, 4
        andi  $t3, $t3, 4095  # initial probe slot
probe:  sll   $t4, $t3, 3
        addu  $t4, $t4, $s5
        lw    $t5, 0($t4)
        beq   $t5, $t2, hit
        beqz  $t5, miss
        addiu $t3, $t3, 1
        andi  $t3, $t3, 4095
        b     probe
hit:    lw    $s2, 4($t4)     # prefix = dictionary code
        b     next
miss:   sll   $t6, $s3, 2     # emit prefix: cs = cs*5 + prefix
        addu  $t6, $t6, $s3
        addu  $s3, $t6, $s2
        slti  $at, $s4, 3500  # leave slack so probes always terminate
        beqz  $at, noins
        sw    $t2, 0($t4)
        sw    $s4, 4($t4)
        addiu $s4, $s4, 1
noins:  move  $s2, $t1        # prefix = c
next:   addiu $s1, $s1, 1
        sw    $s1, 0($t9)
        sw    $s3, 4($t9)
        blt   $s1, $s6, loop
        sll   $t6, $s3, 2     # emit the final prefix
        addu  $t6, $t6, $s3
        addu  $s3, $t6, $s2
        addiu $t8, $t8, 1
        slti  $at, $t8, 3     # three compression rounds
        bnez  $at, newround

        move  $a0, $s3
        li    $v0, 1
        syscall
        li    $a0, ' '
        li    $v0, 11
        syscall
        move  $a0, $s4
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
` + randAsm

func goldenCompress(scale int) string {
	n := 4096 * scale
	s := lcg(0x1234)
	input := make([]byte, n)
	for i := range input {
		input[i] = byte(s.next() & 15)
	}
	type ent struct{ key, val uint32 }
	var cs, nextCode uint32
	for round := 0; round < 3; round++ {
		tab := make([]ent, 4096)
		prefix := uint32(input[0])
		nextCode = 256
		for i := 1; i < n; i++ {
			c := uint32(input[i])
			key := (prefix<<8 | c) + 1
			h := (key * 40503) >> 4 & 4095
			for {
				if tab[h].key == key {
					prefix = tab[h].val
					break
				}
				if tab[h].key == 0 {
					cs = cs*5 + prefix
					if nextCode < 3500 {
						tab[h] = ent{key, nextCode}
						nextCode++
					}
					prefix = c
					break
				}
				h = (h + 1) & 4095
			}
		}
		cs = cs*5 + prefix
	}
	return fmt.Sprintf("%d %d", int32(cs), int32(nextCode))
}
