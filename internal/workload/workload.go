// Package workload provides the seven benchmark kernels used to reproduce
// the paper's evaluation. The SPEC95 integer benchmarks themselves (and
// their reference inputs) are not redistributable, so each kernel is a
// scaled-down algorithmic analogue of its namesake, hand-written in the
// simulator's assembly language:
//
//	go       — board evaluation over a 19x19 position (pattern scans,
//	           data-dependent branches, poor branch prediction)
//	m88ksim  — a bytecode CPU interpreter (dispatch loops, indirect jumps,
//	           extreme instruction repetition)
//	ijpeg    — 8x8 integer DCT + quantization over an image (regular MAC
//	           loops, high branch prediction)
//	perl     — word hashing and scoring over generated text (string
//	           processing, hash table lookups)
//	vortex   — an object store: keyed record insert/lookup (pointer-heavy,
//	           high branch prediction, low IPC)
//	gcc      — constant folding and linear-scan allocation over a generated
//	           IR (compiler-pass control flow)
//	compress — LZW compression of generated text (hash probing, stores
//	           that kill load reuse — the address-reuse case of Table 3)
//
// Inputs are produced by a deterministic LCG embedded in each program, so
// runs are exactly reproducible; every kernel prints a checksum that a
// golden Go reimplementation (see golden*.go) must match.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/prog"
)

// Workload is one benchmark kernel.
type Workload struct {
	Name string
	// Desc is a one-line description shown by the harness.
	Desc string
	// Source returns the assembly text at a given scale (1 = default, the
	// harness's standard run length; larger values run longer).
	Source func(scale int) string
	// Golden computes the expected program output at a given scale.
	Golden func(scale int) string
}

var registry = map[string]*Workload{}
var names []string

func register(w *Workload) {
	registry[w.Name] = w
	names = append(names, w.Name)
	sort.Strings(names)
}

// Names returns the benchmark names in the paper's order (Table 2).
func Names() []string {
	return []string{"go", "m88ksim", "ijpeg", "perl", "vortex", "gcc", "compress"}
}

// Get returns a registered workload.
func Get(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, names)
	}
	return w, nil
}

// Register adds a custom workload; the examples use this to run user
// programs through the harness.
func Register(w *Workload) error {
	if _, dup := registry[w.Name]; dup {
		return fmt.Errorf("workload: %q already registered", w.Name)
	}
	register(w)
	return nil
}

var progCache sync.Map // name/scale -> *prog.Program

// Load assembles the workload at the given scale (cached). It never
// panics: source-generator or encoder panics (e.g. an out-of-range
// immediate in a registered custom workload) are converted to errors so
// campaign load paths always degrade to a per-benchmark failure.
func (w *Workload) Load(scale int) (p *prog.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("workload %s: load panicked: %v", w.Name, r)
		}
	}()
	key := fmt.Sprintf("%s/%d", w.Name, scale)
	if cached, ok := progCache.Load(key); ok {
		return cached.(*prog.Program), nil
	}
	p, err = asm.Assemble(w.Name+".s", w.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	progCache.Store(key, p)
	return p, nil
}

// lcg mirrors the linear congruential generator embedded in the assembly
// kernels: state = state*1103515245 + 12345 (mod 2^32), returning
// (state >> 16) & 0x7FFF.
type lcg uint32

func (s *lcg) next() uint32 {
	*s = *s*1103515245 + 12345
	return uint32(*s>>16) & 0x7FFF
}

// randAsm is the shared assembly LCG subroutine. It clobbers $at and $v1
// and keeps its state in $s7. Seeded by the caller.
const randAsm = `
# rand: advance the LCG in $s7, return (state>>16)&0x7FFF in $v1.
rand:   li    $at, 1103515245
        mult  $s7, $at
        mflo  $s7
        addiu $s7, $s7, 12345
        srl   $v1, $s7, 16
        andi  $v1, $v1, 0x7FFF
        jr    $ra
`
