package workload

import "fmt"

// perl: word hashing and scoring over generated text, the analogue of the
// SPEC95 134.perl scrabble workload: string scanning, per-character hash
// chains, table lookups. The second pass over the same text hits the
// dictionary built by the first — pure repetition, which is where IR and
// VP shine.
func init() {
	register(&Workload{
		Name: "perl",
		Desc: "word hashing + scrabble scoring over generated text",
		Source: func(scale int) string {
			return fmt.Sprintf(perlAsm, 6144*scale)
		},
		Golden: goldenPerl,
	})
}

const perlAsm = `
# perl: tokenize words, hash each, score letters, dedupe via a hash set.
TEXTN = %d
        .data
text:   .space TEXTN
hset:   .space 16384          # 4096 entries x 4 bytes (stored hash, 0 empty)
lval:   .byte 1,3,3,2,1,4,2,4,1,8,5,1,3,1,1,3,10,1,1,1,1,4,4,8,4,10
        .align 2
        .text
main:   li    $s7, 0x9E71
        # Generate text: words of 3..8 lowercase letters, space separated.
        la    $s0, text
        li    $s6, TEXTN
        li    $s1, 0
        li    $s2, 0          # letters remaining in current word
gen:    bnez  $s2, genletter
        jal   rand
        andi  $s2, $v1, 7
        addiu $s2, $s2, 3     # new word length 3..10
        li    $t0, ' '
        b     genput
genletter:
        jal   rand
        li    $at, 26
        divu  $v1, $at
        mfhi  $t0
        addiu $t0, $t0, 'a'
        addiu $s2, $s2, -1
genput: addu  $t1, $s0, $s1
        sb    $t0, 0($t1)
        addiu $s1, $s1, 1
        blt   $s1, $s6, gen

        li    $s3, 0          # total score
        li    $s4, 0          # unique words
        li    $s5, 0          # pass
pass:   li    $s1, 0          # text index
scan:   addu  $t0, $s0, $s1
        lbu   $t1, 0($t0)
        li    $at, ' '
        beq   $t1, $at, skipsp
        # start of a word: hash and score until space or end
        li    $t2, 5381       # hash
        li    $t3, 0          # word score
word:   sll   $t4, $t2, 5
        addu  $t2, $t4, $t2   # hash *= 33
        addu  $t2, $t2, $t1   # hash += c
        addiu $t4, $t1, -'a'
        la    $at, lval
        addu  $t4, $t4, $at
        lbu   $t4, 0($t4)
        addu  $t3, $t3, $t4   # score += letter value
        addiu $s1, $s1, 1
        beq   $s1, $s6, wend
        addu  $t0, $s0, $s1
        lbu   $t1, 0($t0)
        li    $at, ' '
        bne   $t1, $at, word
wend:   addu  $s3, $s3, $t3   # total += word score
        # dedupe: probe the hash set
        beqz  $t2, scannext   # never happens, defensive
        srl   $t5, $t2, 3
        andi  $t5, $t5, 4095
probe:  sll   $t6, $t5, 2
        la    $at, hset
        addu  $t6, $t6, $at
        lw    $t7, 0($t6)
        beq   $t7, $t2, scannext   # already seen
        beqz  $t7, fresh
        addiu $t5, $t5, 1
        andi  $t5, $t5, 4095
        b     probe
fresh:  sw    $t2, 0($t6)
        addiu $s4, $s4, 1
        b     scannext
skipsp: addiu $s1, $s1, 1
scannext:
        blt   $s1, $s6, scan
        addiu $s5, $s5, 1
        slti  $at, $s5, 3     # three passes over the text
        bnez  $at, pass

        move  $a0, $s3
        li    $v0, 1
        syscall
        li    $a0, ' '
        li    $v0, 11
        syscall
        move  $a0, $s4
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
` + randAsm

var perlLetterValues = [26]uint32{1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3, 1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10}

func goldenPerl(scale int) string {
	n := 6144 * scale
	s := lcg(0x9E71)
	text := make([]byte, n)
	remaining := 0
	for i := 0; i < n; i++ {
		if remaining == 0 {
			remaining = int(s.next()&7) + 3
			text[i] = ' '
			continue
		}
		text[i] = byte(s.next()%26) + 'a'
		remaining--
	}
	hset := make([]uint32, 4096)
	var total, unique uint32
	for pass := 0; pass < 3; pass++ {
		i := 0
		for i < n {
			if text[i] == ' ' {
				i++
				continue
			}
			hash := uint32(5381)
			var score uint32
			for i < n && text[i] != ' ' {
				hash = hash*33 + uint32(text[i])
				score += perlLetterValues[text[i]-'a']
				i++
			}
			total += score
			h := hash >> 3 & 4095
			for {
				if hset[h] == hash {
					break
				}
				if hset[h] == 0 {
					hset[h] = hash
					unique++
					break
				}
				h = (h + 1) & 4095
			}
		}
	}
	return fmt.Sprintf("%d %d", int32(total), int32(unique))
}
