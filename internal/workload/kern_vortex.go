package workload

import "fmt"

// vortex: an object store with keyed insert/update/lookup operations, the
// analogue of SPEC95 147.vortex (an object-oriented database). A fixed
// transaction buffer is generated once and replayed round after round —
// database benchmarks re-run the same query mix — giving the highly
// repetitive, pointer-heavy behaviour and excellent branch prediction the
// paper reports for vortex (97.8%).
func init() {
	register(&Workload{
		Name: "vortex",
		Desc: "object store: replayed keyed transactions over a record heap",
		Source: func(scale int) string {
			return fmt.Sprintf(vortexAsm, 10*scale)
		},
		Golden: goldenVortex,
	})
}

const vortexAsm = `
# vortex: NOPS transactions generated once, replayed ROUNDS times.
NOPS = 500
ROUNDS = %d
        .data
ops:    .space 2000           # NOPS words: key | sel<<16
index:  .space 8192           # 2048 buckets: record number + 1, 0 empty
heap:   .space 16384          # 1024 records x 16 bytes {key, a, b, c}
txstat: .space 16             # transaction counters: lookups, updates,
                              # inserts, misses (vortex logs its activity)
        .text
main:   li    $s7, 0xD00D
        # Generate the transaction buffer.
        la    $t8, ops
        li    $t9, 0
tgen:   jal   rand
        andi  $t0, $v1, 1023  # key
        jal   rand
        andi  $t1, $v1, 7     # selector: 0 insert/update, else lookup
        sll   $t1, $t1, 16
        or    $t0, $t0, $t1
        sll   $t2, $t9, 2
        addu  $t2, $t2, $t8
        sw    $t0, 0($t2)
        addiu $t9, $t9, 1
        li    $at, NOPS
        blt   $t9, $at, tgen

        la    $s0, index
        la    $s1, heap
        li    $s2, 0          # record count
        li    $s3, 0          # checksum
        li    $s6, 0          # round
        la    $t9, txstat
round:  li    $s4, 0          # transaction index
        li    $s5, 0          # hits this round
op:     sll   $t3, $s4, 2
        la    $at, ops
        addu  $t3, $t3, $at
        lw    $t0, 0($t3)     # transaction word
        srl   $t1, $t0, 16    # selector
        andi  $t0, $t0, 1023  # key
        # probe the index for key
        sll   $t2, $t0, 3
        xor   $t2, $t2, $t0
        andi  $t2, $t2, 2047  # bucket
probe:  sll   $t3, $t2, 2
        addu  $t3, $t3, $s0
        lw    $t4, 0($t3)     # record number + 1
        beqz  $t4, absent
        addiu $t5, $t4, -1
        sll   $t5, $t5, 4
        addu  $t5, $t5, $s1   # record address
        lw    $t6, 0($t5)     # stored key
        beq   $t6, $t0, found
        addiu $t2, $t2, 1
        andi  $t2, $t2, 2047
        b     probe

found:  slti  $at, $t1, 1
        bnez  $at, update
        # lookup: checksum += a + b
        lw    $t7, 4($t5)
        lw    $t8, 8($t5)
        addu  $s3, $s3, $t7
        addu  $s3, $s3, $t8
        addiu $s5, $s5, 1
        lw    $t7, 0($t9)     # txstat.lookups++
        addiu $t7, $t7, 1
        sw    $t7, 0($t9)
        b     next
update: lw    $t7, 8($t5)     # b++
        addiu $t7, $t7, 1
        sw    $t7, 8($t5)
        lw    $t7, 4($t9)     # txstat.updates++
        addiu $t7, $t7, 1
        sw    $t7, 4($t9)
        b     next

absent: slti  $at, $t1, 1
        beqz  $at, miss       # lookup miss
        # insert (unless the heap is full)
        li    $at, 1000
        slt   $at, $s2, $at
        beqz  $at, next
        sll   $t5, $s2, 4
        addu  $t5, $t5, $s1
        sw    $t0, 0($t5)     # key
        jal   rand
        sw    $v1, 4($t5)     # a
        sw    $zero, 8($t5)   # b
        sll   $t7, $t0, 1
        sw    $t7, 12($t5)    # c
        addiu $s2, $s2, 1
        sw    $s2, 0($t3)     # bucket := record number + 1
        lw    $t7, 8($t9)     # txstat.inserts++
        addiu $t7, $t7, 1
        sw    $t7, 8($t9)
        b     next
miss:   lw    $t7, 12($t9)    # txstat.misses++
        addiu $t7, $t7, 1
        sw    $t7, 12($t9)
next:   addiu $s4, $s4, 1
        li    $at, NOPS
        blt   $s4, $at, op
        addiu $s6, $s6, 1
        li    $at, ROUNDS
        blt   $s6, $at, round

        move  $a0, $s3
        li    $v0, 1
        syscall
        li    $a0, ' '
        li    $v0, 11
        syscall
        move  $a0, $s2
        li    $v0, 1
        syscall
        li    $a0, ' '
        li    $v0, 11
        syscall
        move  $a0, $s5
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
` + randAsm

func goldenVortex(scale int) string {
	type rec struct{ key, a, b, c uint32 }
	s := lcg(0xD00D)
	const nops = 500
	type tx struct{ key, sel uint32 }
	txs := make([]tx, nops)
	for i := range txs {
		key := s.next() & 1023
		sel := s.next() & 7
		txs[i] = tx{key, sel}
	}
	index := make([]uint32, 2048)
	heap := make([]rec, 0, 1024)
	var cs uint32
	var hits uint32
	rounds := 10 * scale
	for r := 0; r < rounds; r++ {
		hits = 0
		for _, t := range txs {
			key, sel := t.key, t.sel
			h := (key<<3 ^ key) & 2047
			var found *rec
			var bucket uint32
			for {
				rn := index[h]
				if rn == 0 {
					bucket = h
					break
				}
				if heap[rn-1].key == key {
					found = &heap[rn-1]
					break
				}
				h = (h + 1) & 2047
			}
			switch {
			case found != nil && sel >= 1:
				cs += found.a + found.b
				hits++
			case found != nil:
				found.b++
			case sel < 1 && len(heap) < 1000:
				heap = append(heap, rec{key: key, a: s.next(), b: 0, c: key << 1})
				index[bucket] = uint32(len(heap))
			}
		}
	}
	return fmt.Sprintf("%d %d %d", int32(cs), len(heap), int32(hits))
}
