package workload

import (
	"fmt"
	"strings"
)

// m88ksim: a bytecode CPU interpreter, the analogue of SPEC95 124.m88ksim
// (a Motorola 88100 simulator). The interpreter decodes a guest word,
// dispatches through a jump table (indirect jumps!) and executes against a
// guest register file and data memory. Interpreters are the canonical
// high-repetition workload: the same decode work runs over and over.

// Guest ISA: one 32-bit word per instruction,
// op | rd<<8 | rs<<16 | imm<<24 (op, rd, rs, imm are bytes).
const (
	gHALT  = 0
	gLOADI = 1  // rd = imm
	gADD   = 2  // rd += r[rs]
	gSUB   = 3  // rd -= r[rs]
	gMUL   = 4  // rd = low32(rd * r[rs])
	gXOR   = 5  // rd ^= r[rs]
	gSHL   = 6  // rd <<= imm & 31
	gLOAD  = 7  // rd = dmem[r[rs] & 255]
	gSTORE = 8  // dmem[r[rs] & 255] = r[rd]
	gJNZ   = 9  // if r[rd] != 0 then pc = imm
	gADDI  = 10 // rd += imm - 128
)

func gEnc(op, rd, rs, imm int) uint32 {
	return uint32(op) | uint32(rd)<<8 | uint32(rs)<<16 | uint32(imm)<<24
}

// guestProgram computes a rolling hash over guest data memory: the inner
// loop is LOAD / ADD / XOR / STORE / ADDI / ADDI / JNZ.
func guestProgram() []uint32 {
	return []uint32{
		gEnc(gLOADI, 0, 0, 0),   //  0: r0 = 0        (index)
		gEnc(gLOADI, 1, 0, 17),  //  1: r1 = 17       (acc)
		gEnc(gLOADI, 2, 0, 125), //  2: r2 = 125
		gEnc(gSHL, 2, 0, 4),     //  3: r2 <<= 4      (2000 iterations)
		gEnc(gLOAD, 4, 0, 0),    //  4: r4 = dmem[r0 & 255]
		gEnc(gADD, 1, 4, 0),     //  5: r1 += r4
		gEnc(gXOR, 1, 2, 0),     //  6: r1 ^= r2
		gEnc(gSTORE, 1, 0, 0),   //  7: dmem[r0 & 255] = r1
		gEnc(gADDI, 0, 0, 131),  //  8: r0 += 3
		gEnc(gADDI, 2, 0, 127),  //  9: r2 -= 1
		gEnc(gJNZ, 2, 0, 4),     // 10: if r2 != 0 goto 4
		gEnc(gHALT, 0, 0, 0),    // 11
	}
}

func init() {
	register(&Workload{
		Name: "m88ksim",
		Desc: "bytecode CPU interpreter, jump-table dispatch",
		Source: func(scale int) string {
			words := make([]string, 0, 12)
			for _, w := range guestProgram() {
				words = append(words, fmt.Sprintf("0x%08x", w))
			}
			return fmt.Sprintf(m88kAsm, strings.Join(words, ", "), scale)
		},
		Golden: goldenM88ksim,
	})
}

const m88kAsm = `
# m88ksim: interpret the guest bytecode program ROUNDS times.
        .data
regs:   .space 32             # 8 guest registers
dmem:   .space 1024           # 256 guest data words
bprog:  .word %s
jtab:   .word op_halt, op_loadi, op_add, op_sub, op_mul, op_xor
        .word op_shl, op_load, op_store, op_jnz, op_addi
opstat: .space 64             # per-opcode execution counts (the real
instret: .space 4             # m88ksim keeps extensive statistics)
trhash: .space 4              # rolling trace hash
cycest: .space 4              # estimated guest cycles
cycwt:  .word 1,1,1,1,3,1,1,2,2,1,1   # per-opcode cycle weights
ROUNDS = %d
        .text
main:   li    $s7, 0xBEEF     # LCG seed
        la    $s2, dmem
        li    $t8, 0
init:   jal   rand
        sll   $t0, $t8, 2
        addu  $t0, $t0, $s2
        sw    $v1, 0($t0)
        addiu $t8, $t8, 1
        slti  $at, $t8, 256
        bnez  $at, init

        la    $s0, bprog
        la    $s1, regs
        la    $s4, jtab
        li    $s5, 0          # rounds completed
        li    $s6, 0          # checksum
round:  li    $s3, 0          # guest pc
step:   sll   $t0, $s3, 2
        addu  $t0, $t0, $s0
        lw    $t1, 0($t0)     # guest instruction
        andi  $t2, $t1, 0xFF  # op
        srl   $t3, $t1, 8
        andi  $t3, $t3, 0xFF  # rd
        sll   $t3, $t3, 2
        addu  $t3, $t3, $s1   # &r[rd]
        srl   $t4, $t1, 16
        andi  $t4, $t4, 0xFF  # rs
        sll   $t4, $t4, 2
        addu  $t4, $t4, $s1   # &r[rs]
        srl   $t5, $t1, 24    # imm
        addiu $s3, $s3, 1
        # statistics: opstat[op]++, instret++, trace hash folds the word
        sll   $t6, $t2, 2
        la    $at, opstat
        addu  $t6, $t6, $at
        lw    $t7, 0($t6)
        addiu $t7, $t7, 1
        sw    $t7, 0($t6)
        la    $at, instret
        lw    $t7, 0($at)
        addiu $t7, $t7, 1
        sw    $t7, 0($at)
        la    $at, trhash
        lw    $t7, 0($at)
        sll   $t6, $t7, 1
        xor   $t6, $t6, $t1
        la    $at, trhash
        sw    $t6, 0($at)
        sll   $t6, $t2, 2
        la    $at, cycwt
        addu  $t6, $t6, $at
        lw    $t7, 0($t6)     # cycle weight of this opcode
        la    $at, cycest
        lw    $t6, 0($at)
        addu  $t6, $t6, $t7
        la    $at, cycest
        sw    $t6, 0($at)
        sll   $t6, $t2, 2
        addu  $t6, $t6, $s4
        lw    $t6, 0($t6)
        jr    $t6             # dispatch

op_loadi:
        sw    $t5, 0($t3)
        b     step
op_add: lw    $t7, 0($t3)
        lw    $t9, 0($t4)
        addu  $t7, $t7, $t9
        sw    $t7, 0($t3)
        b     step
op_sub: lw    $t7, 0($t3)
        lw    $t9, 0($t4)
        subu  $t7, $t7, $t9
        sw    $t7, 0($t3)
        b     step
op_mul: lw    $t7, 0($t3)
        lw    $t9, 0($t4)
        mult  $t7, $t9
        mflo  $t7
        sw    $t7, 0($t3)
        b     step
op_xor: lw    $t7, 0($t3)
        lw    $t9, 0($t4)
        xor   $t7, $t7, $t9
        sw    $t7, 0($t3)
        b     step
op_shl: lw    $t7, 0($t3)
        andi  $t5, $t5, 31
        sllv  $t7, $t7, $t5
        sw    $t7, 0($t3)
        b     step
op_load:
        lw    $t9, 0($t4)
        andi  $t9, $t9, 255
        sll   $t9, $t9, 2
        la    $at, dmem
        addu  $t9, $t9, $at
        lw    $t7, 0($t9)
        sw    $t7, 0($t3)
        b     step
op_store:
        lw    $t9, 0($t4)
        andi  $t9, $t9, 255
        sll   $t9, $t9, 2
        la    $at, dmem
        addu  $t9, $t9, $at
        lw    $t7, 0($t3)
        sw    $t7, 0($t9)
        b     step
op_jnz: lw    $t7, 0($t3)
        beqz  $t7, step
        move  $s3, $t5
        b     step
op_addi:
        lw    $t7, 0($t3)
        addiu $t5, $t5, -128
        addu  $t7, $t7, $t5
        sw    $t7, 0($t3)
        b     step
op_halt:
        lw    $t7, 4($s1)     # guest r1 = final hash
        sll   $t0, $s6, 1
        addu  $s6, $t0, $t7   # checksum = checksum*2 + r1
        addiu $s5, $s5, 1
        slti  $at, $s5, ROUNDS
        bnez  $at, round

        move  $a0, $s6
        li    $v0, 1
        syscall
        li    $a0, ' '
        li    $v0, 11
        syscall
        lw    $a0, 0($s1)     # guest r0 (final index)
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
` + randAsm

func goldenM88ksim(scale int) string {
	s := lcg(0xBEEF)
	dmem := make([]uint32, 256)
	for i := range dmem {
		dmem[i] = s.next()
	}
	code := guestProgram()
	var r [8]uint32
	var cs uint32
	for round := 0; round < scale; round++ {
		pc := 0
	run:
		for {
			w := code[pc]
			op := w & 0xFF
			rd := w >> 8 & 0xFF
			rs := w >> 16 & 0xFF
			imm := w >> 24
			pc++
			switch op {
			case gHALT:
				break run
			case gLOADI:
				r[rd] = imm
			case gADD:
				r[rd] += r[rs]
			case gSUB:
				r[rd] -= r[rs]
			case gMUL:
				r[rd] *= r[rs]
			case gXOR:
				r[rd] ^= r[rs]
			case gSHL:
				r[rd] <<= imm & 31
			case gLOAD:
				r[rd] = dmem[r[rs]&255]
			case gSTORE:
				dmem[r[rs]&255] = r[rd]
			case gJNZ:
				if r[rd] != 0 {
					pc = int(imm)
				}
			case gADDI:
				r[rd] += imm - 128
			}
		}
		cs = cs*2 + r[1]
	}
	return fmt.Sprintf("%d %d", int32(cs), int32(r[0]))
}
