package workload

import (
	"testing"

	"github.com/vpir-sim/vpir/internal/emu"
)

// runKernel executes a workload on the functional emulator and returns its
// output.
func runKernel(t testing.TB, name string, scale int) string {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Load(scale)
	if err != nil {
		t.Fatal(err)
	}
	c := emu.New(p)
	halted, err := c.Run(100_000_000)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !halted {
		t.Fatalf("%s did not halt", name)
	}
	return c.Output.String()
}

// TestKernelsMatchGolden verifies every kernel against its Go
// reimplementation at two scales.
func TestKernelsMatchGolden(t *testing.T) {
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Errorf("missing kernel %s: %v", name, err)
			continue
		}
		for _, scale := range []int{1, 2} {
			t.Run(w.Name, func(t *testing.T) {
				got := runKernel(t, w.Name, scale)
				want := w.Golden(scale)
				if got != want {
					t.Errorf("scale %d: output %q, want %q", scale, got, want)
				}
			})
		}
	}
}

// TestKernelSizes reports the dynamic instruction counts; they must land in
// the range the harness assumes (big enough to exercise the tables, small
// enough to simulate quickly).
func TestKernelSizes(t *testing.T) {
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			continue // reported by TestKernelsMatchGolden
		}
		p, err := w.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		c := emu.New(p)
		if _, err := c.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		t.Logf("%-10s %9d dynamic instructions", name, c.InstCount)
		if c.InstCount < 50_000 {
			t.Errorf("%s too small: %d insts", name, c.InstCount)
		}
		if c.InstCount > 5_000_000 {
			t.Errorf("%s too large at scale 1: %d insts", name, c.InstCount)
		}
	}
}

// TestChaseMatchesGolden covers the chase stall diagnostic separately: it
// is registered (reachable through Get) but deliberately off the Names()
// roster, so the loops above never see it.
func TestChaseMatchesGolden(t *testing.T) {
	w, err := Get("chase")
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []int{1, 2} {
		got := runKernel(t, "chase", scale)
		want := w.Golden(scale)
		if got != want {
			t.Errorf("scale %d: output %q, want %q", scale, got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	if err := Register(&Workload{Name: "compress"}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestLoadCache(t *testing.T) {
	w, err := Get("compress")
	if err != nil {
		t.Skip("compress not registered")
	}
	p1, _ := w.Load(1)
	p2, _ := w.Load(1)
	if p1 != p2 {
		t.Error("Load(1) not cached")
	}
	p3, _ := w.Load(2)
	if p1 == p3 {
		t.Error("different scales share a program")
	}
}
