package workload

import "fmt"

// gcc: two compiler passes over a generated expression IR, the analogue of
// SPEC95 126.gcc: a constant-folding pass (dataflow over a DAG) and a
// linear-scan register allocation pass (live ranges, spill decisions).
// Compiler-like control flow: moderately predictable branches, lots of
// small table walks.
func init() {
	register(&Workload{
		Name: "gcc",
		Desc: "constant folding + linear-scan allocation over generated IR",
		Source: func(scale int) string {
			return fmt.Sprintf(gccAsm, 6*scale)
		},
		Golden: goldenGcc,
	})
}

const gccAsm = `
# gcc: generate N IR triples, then ROUNDS x (fold pass + allocation pass).
N = 1200
ROUNDS = %d
        .data
ir:     .space 14400          # N x 12: op, src1, src2 (bit 31 of src = ref)
val:    .space 4800           # computed value per entry
flags:  .space 1200           # 1 = constant
lastuse: .space 4800          # last entry index using this result
regof:  .space 1200           # 1 = currently in a register
        .text
main:   li    $s7, 0x6CC6
        # --- generate the IR ---
        la    $s0, ir
        li    $s1, 0          # entry index
gen:    jal   rand
        move  $t8, $v1        # op selector
        li    $t0, 12
        mult  $s1, $t0
        mflo  $t0
        addu  $t0, $t0, $s0   # entry address
        slti  $at, $s1, 4
        bnez  $at, genop
        andi  $t1, $t8, 7
        bnez  $t1, genop
        # INPUT entry: runtime value, not foldable
        li    $t1, 4
        sw    $t1, 0($t0)
        jal   rand
        sw    $v1, 4($t0)
        sw    $zero, 8($t0)
        b     gennext
genop:  andi  $t1, $t8, 7     # skewed op mix: 4-7 -> ADD
        slti  $at, $t1, 4
        bnez  $at, opkeep
        li    $t1, 0
opkeep: andi  $t1, $t1, 3
        sw    $t1, 0($t0)
        jal   rand
        move  $t9, $v1
        slti  $at, $s1, 2
        bnez  $at, g1const
        andi  $t2, $t9, 3     # 75%% references
        beqz  $t2, g1const
        srl   $t2, $t9, 1
        divu  $t2, $s1
        mfhi  $t2             # ref index = (r>>1) %% i
        lui   $at, 0x8000
        or    $t2, $t2, $at
        sw    $t2, 4($t0)
        b     g2
g1const:
        andi  $t2, $t9, 255
        sw    $t2, 4($t0)
g2:     jal   rand
        move  $t9, $v1
        slti  $at, $s1, 2
        bnez  $at, g2const
        andi  $t2, $t9, 3
        beqz  $t2, g2const
        srl   $t2, $t9, 1
        divu  $t2, $s1
        mfhi  $t2
        lui   $at, 0x8000
        or    $t2, $t2, $at
        sw    $t2, 8($t0)
        b     gennext
g2const:
        andi  $t2, $t9, 255
        sw    $t2, 8($t0)
gennext:
        addiu $s1, $s1, 1
        li    $at, N
        blt   $s1, $at, gen

        li    $s4, 0          # folds
        li    $s5, 0          # spills
        li    $s6, 0          # value checksum
        li    $s3, 0          # round
round:
        # --- pass 1: constant folding ---
        li    $s1, 0
fold:   li    $t0, 12
        mult  $s1, $t0
        mflo  $t0
        la    $at, ir
        addu  $t0, $t0, $at
        lw    $t1, 0($t0)     # op
        li    $at, 4
        beq   $t1, $at, finput
        lw    $t2, 4($t0)     # src1 spec
        jal   fetch           # -> $v0 value, $v1 const flag
        move  $t4, $v0
        move  $t5, $v1
        lw    $t2, 8($t0)
        jal   fetch
        move  $t6, $v0
        and   $t5, $t5, $v1   # both const?
        # apply op
        beqz  $t1, fadd
        li    $at, 1
        beq   $t1, $at, fsub
        li    $at, 2
        beq   $t1, $at, fxor
        mult  $t4, $t6        # MUL
        mflo  $t7
        b     fstore
fadd:   addu  $t7, $t4, $t6
        b     fstore
fsub:   subu  $t7, $t4, $t6
        b     fstore
fxor:   xor   $t7, $t4, $t6
fstore: b     fdone
finput: lw    $t7, 4($t0)     # runtime value
        li    $t5, 0
fdone:  sll   $t8, $s1, 2
        la    $at, val
        addu  $t8, $t8, $at
        sw    $t7, 0($t8)
        la    $at, flags
        addu  $t8, $at, $s1
        sb    $t5, 0($t8)
        addu  $s4, $s4, $t5   # folds += const
        addu  $s6, $s6, $t7   # checksum += value
        addiu $s1, $s1, 1
        li    $at, N
        blt   $s1, $at, fold

        # --- pass 2: last uses, then linear scan with 8 registers ---
        li    $s1, 0
luz:    sll   $t0, $s1, 2
        la    $at, lastuse
        addu  $t0, $t0, $at
        sw    $zero, 0($t0)
        addiu $s1, $s1, 1
        li    $at, N
        blt   $s1, $at, luz
        li    $s1, 0
lu:     li    $t0, 12
        mult  $s1, $t0
        mflo  $t0
        la    $at, ir
        addu  $t0, $t0, $at
        lw    $t1, 0($t0)
        li    $at, 4
        beq   $t1, $at, lunext
        lw    $t2, 4($t0)
        jal   markuse
        lw    $t2, 8($t0)
        jal   markuse
lunext: addiu $s1, $s1, 1
        li    $at, N
        blt   $s1, $at, lu

        li    $s1, 0
        li    $s2, 0          # live register count
scan:   li    $t0, 12
        mult  $s1, $t0
        mflo  $t0
        la    $at, ir
        addu  $t0, $t0, $at
        lw    $t1, 0($t0)
        li    $at, 4
        beq   $t1, $at, expire2   # INPUT has no refs
        lw    $t2, 4($t0)
        jal   expire
        lw    $t2, 8($t0)
        jal   expire
expire2:
        # allocate if the result is used later
        sll   $t3, $s1, 2
        la    $at, lastuse
        addu  $t3, $t3, $at
        lw    $t3, 0($t3)
        bleu  $t3, $s1, scannext
        slti  $at, $s2, 8
        beqz  $at, spill
        addiu $s2, $s2, 1
        la    $at, regof
        addu  $t4, $at, $s1
        li    $t5, 1
        sb    $t5, 0($t4)
        b     scannext
spill:  addiu $s5, $s5, 1
        la    $at, regof
        addu  $t4, $at, $s1
        sb    $zero, 0($t4)
scannext:
        addiu $s1, $s1, 1
        li    $at, N
        blt   $s1, $at, scan

        addiu $s3, $s3, 1
        li    $at, ROUNDS
        blt   $s3, $at, round

        move  $a0, $s4
        li    $v0, 1
        syscall
        li    $a0, ' '
        li    $v0, 11
        syscall
        move  $a0, $s5
        li    $v0, 1
        syscall
        li    $a0, ' '
        li    $v0, 11
        syscall
        move  $a0, $s6
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall

# fetch: src spec in $t2 -> value in $v0, const flag in $v1.
fetch:  bltz  $t2, fref
        move  $v0, $t2
        li    $v1, 1
        jr    $ra
fref:   sll   $t3, $t2, 1
        srl   $t3, $t3, 1     # strip bit 31
        sll   $t3, $t3, 2
        la    $at, val
        addu  $t3, $t3, $at
        lw    $v0, 0($t3)
        sll   $t3, $t2, 1
        srl   $t3, $t3, 1
        la    $at, flags
        addu  $t3, $t3, $at
        lbu   $v1, 0($t3)
        jr    $ra

# markuse: if $t2 is a ref, lastuse[ref] = current entry ($s1).
markuse:
        bgez  $t2, mdone
        sll   $t3, $t2, 1
        srl   $t3, $t3, 1
        sll   $t3, $t3, 2
        la    $at, lastuse
        addu  $t3, $t3, $at
        sw    $s1, 0($t3)
mdone:  jr    $ra

# expire: if $t2 is a ref whose last use is this entry and it holds a
# register, free it.
expire: bgez  $t2, edone
        sll   $t3, $t2, 1
        srl   $t3, $t3, 1     # ref index
        sll   $t4, $t3, 2
        la    $at, lastuse
        addu  $t4, $t4, $at
        lw    $t4, 0($t4)
        bne   $t4, $s1, edone
        la    $at, regof
        addu  $t4, $at, $t3
        lbu   $t5, 0($t4)
        beqz  $t5, edone
        sb    $zero, 0($t4)
        addiu $s2, $s2, -1
edone:  jr    $ra
` + randAsm

func goldenGcc(scale int) string {
	const n = 1200
	s := lcg(0x6CC6)
	type ent struct{ op, s1, s2 uint32 }
	ir := make([]ent, n)
	for i := 0; i < n; i++ {
		r := s.next()
		if i >= 4 && r&7 == 0 {
			ir[i] = ent{op: 4, s1: s.next()}
			continue
		}
		op := r & 7
		if op >= 4 {
			op = 0
		}
		e := ent{op: op & 3}
		for k := 0; k < 2; k++ {
			r := s.next()
			var spec uint32
			if i >= 2 && r&3 != 0 {
				spec = (r>>1)%uint32(i) | 0x8000_0000
			} else {
				spec = r & 255
			}
			if k == 0 {
				e.s1 = spec
			} else {
				e.s2 = spec
			}
		}
		ir[i] = e
	}

	val := make([]uint32, n)
	flags := make([]uint32, n)
	lastuse := make([]uint32, n)
	regof := make([]bool, n)
	var folds, spills, cs uint32
	rounds := 6 * scale

	fetch := func(spec uint32) (uint32, uint32) {
		if spec&0x8000_0000 == 0 {
			return spec, 1
		}
		j := spec &^ 0x8000_0000
		return val[j], flags[j]
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			e := ir[i]
			if e.op == 4 {
				val[i] = e.s1
				flags[i] = 0
			} else {
				v1, f1 := fetch(e.s1)
				v2, f2 := fetch(e.s2)
				var v uint32
				switch e.op {
				case 0:
					v = v1 + v2
				case 1:
					v = v1 - v2
				case 2:
					v = v1 ^ v2
				default:
					v = v1 * v2
				}
				val[i] = v
				flags[i] = f1 & f2
			}
			folds += flags[i]
			cs += val[i]
		}
		for i := range lastuse {
			lastuse[i] = 0
		}
		for i := 0; i < n; i++ {
			e := ir[i]
			if e.op == 4 {
				continue
			}
			for _, spec := range []uint32{e.s1, e.s2} {
				if spec&0x8000_0000 != 0 {
					lastuse[spec&^0x8000_0000] = uint32(i)
				}
			}
		}
		live := 0
		for i := 0; i < n; i++ {
			e := ir[i]
			if e.op != 4 {
				for _, spec := range []uint32{e.s1, e.s2} {
					if spec&0x8000_0000 != 0 {
						j := spec &^ 0x8000_0000
						if lastuse[j] == uint32(i) && regof[j] {
							regof[j] = false
							live--
						}
					}
				}
			}
			if lastuse[i] <= uint32(i) {
				continue
			}
			if live < 8 {
				live++
				regof[i] = true
			} else {
				spills++
				regof[i] = false
			}
		}
	}
	return fmt.Sprintf("%d %d %d", int32(folds), int32(spills), int32(cs))
}
