package workload

import (
	"fmt"
	"math"
	"strings"
)

// ijpeg: 8x8 integer DCT + quantization over a generated greyscale image,
// the analogue of SPEC95 132.ijpeg. Regular multiply-accumulate loops with
// highly predictable branches and strong value locality in the coefficient
// operands.

// dctCoef is the scaled separable DCT-II basis: round(C(u) * cos((2x+1)u *
// pi/16) * 64), the same fixed-point form libjpeg-era integer DCTs use.
func dctCoef() [64]int32 {
	var t [64]int32
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			v := cu * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) * 64
			t[u*8+x] = int32(math.Round(v))
		}
	}
	return t
}

// qshift is the quantization table expressed as right-shift amounts (real
// encoders divide; shifting keeps the integer divide unit free for the
// latency kernel while preserving the dataflow shape).
func qshift() [64]int32 {
	var t [64]int32
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			t[u*8+v] = int32(2 + (u+v)/2)
		}
	}
	return t
}

func wordList(vals []int32) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}

func init() {
	register(&Workload{
		Name: "ijpeg",
		Desc: "8x8 integer DCT + quantization over a generated image",
		Source: func(scale int) string {
			c := dctCoef()
			q := qshift()
			return fmt.Sprintf(ijpegAsm, wordList(c[:]), wordList(q[:]), scale)
		},
		Golden: goldenIjpeg,
	})
}

const ijpegAsm = `
# ijpeg: per 8x8 block, tmp = coef * block, out = tmp * coef^T, quantize.
W = 48
        .data
img:    .space 2304           # 48x48 bytes
coef:   .word %s
qsh:    .word %s
tmp:    .space 256            # 8x8 words
PASSES = %d
        .text
main:   li    $s7, 0x1eaf
        la    $s0, img
        li    $t8, 0
fill:   jal   rand
        andi  $t0, $v1, 0xFF
        addu  $t1, $s0, $t8
        sb    $t0, 0($t1)
        addiu $t8, $t8, 1
        li    $at, 2304
        blt   $t8, $at, fill

        li    $s6, 0          # checksum
        li    $s5, 0          # pass
pass:   li    $s1, 0          # block row (0, 8, .., 40)
brow:   li    $s2, 0          # block col
bcol:
        # tmp[u][x] = (sum_y coef[u][y] * img[base + y][bx + x]) >> 6
        li    $t8, 0          # u
rowu:   li    $t9, 0          # x
rowx:   li    $v0, 0          # acc
        li    $t0, 0          # y
rowy:   sll   $t1, $t8, 3
        addu  $t1, $t1, $t0
        sll   $t1, $t1, 2
        la    $at, coef
        addu  $t1, $t1, $at
        lw    $t2, 0($t1)     # coef[u][y]
        addu  $t3, $s1, $t0   # image row
        li    $at, 48
        mult  $t3, $at
        mflo  $t3
        addu  $t3, $t3, $s2
        addu  $t3, $t3, $t9   # + block col + x
        la    $at, img
        addu  $t3, $t3, $at
        lbu   $t4, 0($t3)
        mult  $t2, $t4
        mflo  $t5
        addu  $v0, $v0, $t5
        addiu $t0, $t0, 1
        slti  $at, $t0, 8
        bnez  $at, rowy
        sra   $v0, $v0, 6
        sll   $t1, $t8, 3
        addu  $t1, $t1, $t9
        sll   $t1, $t1, 2
        la    $at, tmp
        addu  $t1, $t1, $at
        sw    $v0, 0($t1)
        addiu $t9, $t9, 1
        slti  $at, $t9, 8
        bnez  $at, rowx
        addiu $t8, $t8, 1
        slti  $at, $t8, 8
        bnez  $at, rowu

        # out[u][v] = (sum_x tmp[u][x] * coef[v][x]) >> 6, quantized
        li    $t8, 0          # u
colu:   li    $t9, 0          # v
colv:   li    $v0, 0
        li    $t0, 0          # x
colx:   sll   $t1, $t8, 3
        addu  $t1, $t1, $t0
        sll   $t1, $t1, 2
        la    $at, tmp
        addu  $t1, $t1, $at
        lw    $t2, 0($t1)     # tmp[u][x]
        sll   $t3, $t9, 3
        addu  $t3, $t3, $t0
        sll   $t3, $t3, 2
        la    $at, coef
        addu  $t3, $t3, $at
        lw    $t4, 0($t3)     # coef[v][x]
        mult  $t2, $t4
        mflo  $t5
        addu  $v0, $v0, $t5
        addiu $t0, $t0, 1
        slti  $at, $t0, 8
        bnez  $at, colx
        sra   $v0, $v0, 6
        sll   $t1, $t8, 3
        addu  $t1, $t1, $t9
        sll   $t1, $t1, 2
        la    $at, qsh
        addu  $t1, $t1, $at
        lw    $t2, 0($t1)     # shift amount
        srav  $v0, $v0, $t2   # quantize
        addu  $s6, $s6, $v0   # checksum += q
        xor   $s6, $s6, $t9
        addiu $t9, $t9, 1
        slti  $at, $t9, 8
        bnez  $at, colv
        addiu $t8, $t8, 1
        slti  $at, $t8, 8
        bnez  $at, colu

        addiu $s2, $s2, 8
        li    $at, 48
        blt   $s2, $at, bcol
        addiu $s1, $s1, 8
        li    $at, 48
        blt   $s1, $at, brow
        addiu $s5, $s5, 1
        li    $at, PASSES
        blt   $s5, $at, pass

        move  $a0, $s6
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
` + randAsm

func goldenIjpeg(scale int) string {
	s := lcg(0x1eaf)
	img := make([]byte, 48*48)
	for i := range img {
		img[i] = byte(s.next() & 0xFF)
	}
	coef := dctCoef()
	q := qshift()
	var cs uint32
	passes := scale
	var tmp [64]int32
	for p := 0; p < passes; p++ {
		for br := 0; br < 48; br += 8 {
			for bc := 0; bc < 48; bc += 8 {
				for u := 0; u < 8; u++ {
					for x := 0; x < 8; x++ {
						var acc int32
						for y := 0; y < 8; y++ {
							acc += coef[u*8+y] * int32(img[(br+y)*48+bc+x])
						}
						tmp[u*8+x] = acc >> 6
					}
				}
				for u := 0; u < 8; u++ {
					for v := 0; v < 8; v++ {
						var acc int32
						for x := 0; x < 8; x++ {
							acc += tmp[u*8+x] * coef[v*8+x]
						}
						qv := (acc >> 6) >> uint(q[u*8+v])
						cs += uint32(qv)
						cs ^= uint32(v)
					}
				}
			}
		}
	}
	return fmt.Sprintf("%d", int32(cs))
}
