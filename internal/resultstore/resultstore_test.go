package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "gcc|1|20000|fw4 dw4"
	body := []byte(`{"stats":{"ipc":1.25}}` + "\n")
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("get before put: ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("get = %q ok=%v err=%v, want stored body", got, ok, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Re-put replaces atomically.
	body2 := []byte("replacement")
	if err := s.Put(key, body2); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s.Get(key); !ok || !bytes.Equal(got, body2) {
		t.Fatalf("after re-put got %q ok=%v", got, ok)
	}
}

func TestPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("body-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A "restarted" process opens the same directory and sees every entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 10 {
		t.Fatalf("reopened store has %d entries, want 10", n)
	}
	for i := 0; i < 10; i++ {
		got, ok, err := s2.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || string(got) != fmt.Sprintf("body-%d", i) {
			t.Fatalf("key-%d: %q ok=%v err=%v", i, got, ok, err)
		}
	}
}

// corruptEntry flips a byte in the middle of key's on-disk entry file.
func corruptEntry(t *testing.T, s *Store, key string) {
	t.Helper()
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionQuarantinedNotFatal(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", []byte("good-body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bad", []byte("bad-body")); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s, "bad")

	// The corrupt entry reads as a miss — quarantined, never an error.
	if _, ok, err := s.Get("bad"); ok || err != nil {
		t.Fatalf("corrupt get: ok=%v err=%v, want clean miss", ok, err)
	}
	if s.Stats().Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", s.Stats().Corrupt)
	}
	if q := s.Quarantined(); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	// The slot is recomputable: a fresh Put then Get succeeds.
	if err := s.Put("bad", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s.Get("bad"); !ok || string(got) != "recomputed" {
		t.Fatalf("recomputed entry: %q ok=%v", got, ok)
	}
	// The healthy neighbour was untouched.
	if got, ok, _ := s.Get("good"); !ok || string(got) != "good-body" {
		t.Fatalf("good entry: %q ok=%v", got, ok)
	}
	// The quarantine preserves the bytes and a reason note.
	qdir := filepath.Join(s.Dir(), "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) < 2 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(entries), err)
	}
	foundReason := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".reason") {
			foundReason = true
			note, _ := os.ReadFile(filepath.Join(qdir, e.Name()))
			if !strings.Contains(string(note), "checksum") {
				t.Errorf("reason note = %q, want checksum mention", note)
			}
		}
	}
	if !foundReason {
		t.Error("no .reason note in quarantine")
	}
}

func TestKeyBindingDetected(t *testing.T) {
	// An entry whose header names a different key (hash collision,
	// tampering, or a file copied between slots) must not be served.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("original", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path("original"))
	if err != nil {
		t.Fatal(err)
	}
	// Copy the (internally consistent) entry into another key's slot.
	other := s.path("impostor")
	if err := os.MkdirAll(filepath.Dir(other), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("impostor"); ok || err != nil {
		t.Fatalf("impostor get: ok=%v err=%v, want miss", ok, err)
	}
	if s.Stats().Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", s.Stats().Corrupt)
	}
}

func TestTruncationDetected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	path := s.path("k")
	raw, _ := os.ReadFile(path)
	// A torn write that lost the tail of the body.
	if err := os.WriteFile(path, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("truncated entry served")
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer that crashed mid-Put.
	leftover := filepath.Join(dir, "ab")
	os.MkdirAll(leftover, 0o755)
	if err := os.WriteFile(filepath.Join(leftover, tempPrefix+"crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(leftover, tempPrefix+"crashed")); !os.IsNotExist(err) {
		t.Error("Open did not sweep the abandoned temp file")
	}
	// Temp files never count as entries.
	if n := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// Overlapping keys across goroutines: same key, same body —
				// the determinism contract — so any interleaving is valid.
				key := fmt.Sprintf("key-%d", i%5)
				body := []byte(fmt.Sprintf("body-%d", i%5))
				if err := s.Put(key, body); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get(key)
				if err != nil {
					t.Error(err)
					return
				}
				if ok && !bytes.Equal(got, body) {
					t.Errorf("key %s: got %q", key, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n != 5 {
		t.Errorf("Len = %d, want 5", n)
	}
}

// TestHostileKeysIsolated: the content-addressed path mapping must keep
// arbitrary keys apart and on disk — including keys containing path
// separators, dots, newlines and the coordinator's "cell|" namespace
// prefix, which shares a directory with the server's unprefixed keys.
func TestHostileKeysIsolated(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"vortex|1|20000|somecfg",
		"cell|vortex|1|20000|somecfg", // coordinator namespace of the same identity
		"../../etc/passwd",
		"a/b/c",
		"key\nwith\nnewlines",
		"", // degenerate but must not panic or collide
	}
	for i, k := range keys {
		if err := s.Put(k, []byte(fmt.Sprintf("body-%d", i))); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	for i, k := range keys {
		got, ok, err := s.Get(k)
		if err != nil || !ok || string(got) != fmt.Sprintf("body-%d", i) {
			t.Fatalf("get %q = %q ok=%v err=%v", k, got, ok, err)
		}
	}
	if n := s.Len(); n != len(keys) {
		t.Fatalf("store holds %d entries, want %d", n, len(keys))
	}
	// Every entry landed inside the store root.
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			t.Errorf("walk %s: %v", path, err)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
