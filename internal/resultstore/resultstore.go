// Package resultstore is a crash-safe, content-addressed on-disk store for
// simulation results. It backs the in-memory result caches (the server LRU,
// the coordinator's merge layer) with durable history: a restarted
// coordinator or a cold fleet warms itself from disk instead of recomputing
// every cell.
//
// Entries are keyed by the full simulation identity
// "bench|scale|max_insts|Config.Key" and addressed on disk by the SHA-256
// of that key (two-level fan-out, hex). Each entry file carries a JSON
// header naming the key and the SHA-256 of the body, then the body bytes;
// reads verify both. Because simulations are deterministic, entries never
// expire — the store is an append-mostly memo table.
//
// Crash safety is structural, not best-effort:
//
//   - Writes go to a temp file in the store directory, are fsynced, and
//     then atomically renamed into place. A crash mid-write leaves a temp
//     file (swept on Open), never a half-visible entry.
//   - Reads verify the stored key (hash collisions, tampering) and the
//     body checksum (torn writes, bit rot). A corrupt entry is quarantined
//     — moved into quarantine/ for post-mortem — and reported as a miss,
//     so the caller recomputes; corruption is never fatal.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// header is the first line of every entry file, terminated by '\n'; the
// body bytes follow verbatim.
type header struct {
	// Key is the full simulation identity the entry was stored under.
	Key string `json:"key"`
	// SHA256 is the hex digest of the body bytes.
	SHA256 string `json:"sha256"`
	// Len is the body length in bytes.
	Len int `json:"len"`
}

// Stats counts store traffic since Open. Corrupt is the number of entries
// quarantined by failed verification (each also counts as a miss).
type Stats struct {
	Hits    uint64
	Misses  uint64
	Puts    uint64
	Corrupt uint64
}

// Store is a content-addressed result store rooted at one directory. It is
// safe for concurrent use by multiple goroutines; concurrent writers of the
// same key are idempotent (last rename wins, all contents identical by the
// determinism contract).
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// Open creates (if needed) and returns the store rooted at dir, sweeping
// any temp files a crashed writer left behind.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{dir: dir}
	s.sweepTemp()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// path maps a key to its entry file: sha256(key) hex, fanned out on the
// first two hex digits so no directory grows unboundedly.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name[2:])
}

const tempPrefix = "tmp-"

// Put durably stores body under key: temp file, fsync, atomic rename.
// Re-putting an existing key atomically replaces it.
func (s *Store) Put(key string, body []byte) error {
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("resultstore: put %q: %w", key, err)
	}
	sum := sha256.Sum256(body)
	hdr, err := json.Marshal(header{Key: key, SHA256: hex.EncodeToString(sum[:]), Len: len(body)})
	if err != nil {
		return fmt.Errorf("resultstore: put %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), tempPrefix)
	if err != nil {
		return fmt.Errorf("resultstore: put %q: %w", key, err)
	}
	// Any failure past this point must not leave the temp file behind.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: put %q: %w", key, err)
	}
	if _, err := tmp.Write(append(hdr, '\n')); err != nil {
		return fail(err)
	}
	if _, err := tmp.Write(body); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: put %q: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.mu.Unlock()
	return nil
}

// Get returns the body stored under key. ok is false on a clean miss and
// on a corrupt entry (which is quarantined, counted, and treated as a
// miss); err is reserved for environmental failures (permissions, I/O).
func (s *Store) Get(key string) (body []byte, ok bool, err error) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.count(func(st *Stats) { st.Misses++ })
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("resultstore: get %q: %w", key, err)
	}
	body, verr := verify(key, raw)
	if verr != nil {
		s.quarantine(key, verr)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		return nil, false, nil
	}
	s.count(func(st *Stats) { st.Hits++ })
	return body, true, nil
}

// verify splits an entry file into header+body and checks both the key
// binding and the body checksum.
func verify(key string, raw []byte) ([]byte, error) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	var h header
	if err := json.Unmarshal(raw[:nl], &h); err != nil {
		return nil, fmt.Errorf("bad header: %w", err)
	}
	if h.Key != key {
		return nil, fmt.Errorf("key mismatch: entry stored under %q", h.Key)
	}
	body := raw[nl+1:]
	if len(body) != h.Len {
		return nil, fmt.Errorf("body length %d, header says %d", len(body), h.Len)
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != h.SHA256 {
		return nil, fmt.Errorf("checksum %s, header says %s", got, h.SHA256)
	}
	return body, nil
}

// quarantine moves a failed entry into quarantine/ (named by its content
// address) so operators can inspect it; the slot becomes a recomputable
// miss. Removal is the fallback if the move itself fails.
func (s *Store) quarantine(key string, cause error) {
	src := s.path(key)
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(src)
		return
	}
	dst := filepath.Join(qdir, filepath.Base(filepath.Dir(src))+filepath.Base(src))
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src)
		return
	}
	// Leave a note naming the cause next to the quarantined bytes.
	os.WriteFile(dst+".reason", []byte(cause.Error()+"\n"), 0o644)
}

// Quarantined returns how many entries currently sit in quarantine/.
func (s *Store) Quarantined() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".reason") {
			n++
		}
	}
	return n
}

// Len walks the store and returns the number of committed entries.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		rel, _ := filepath.Rel(s.dir, path)
		if strings.HasPrefix(rel, "quarantine") || strings.HasPrefix(filepath.Base(path), tempPrefix) {
			return nil
		}
		n++
		return nil
	})
	return n
}

// sweepTemp removes temp files abandoned by crashed writers.
func (s *Store) sweepTemp() {
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), tempPrefix) {
			os.Remove(path)
		}
		return nil
	})
}

func (s *Store) count(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}
