// Package server turns the simulator into a network service: an HTTP JSON
// API that runs simulations on a bounded worker pool with per-worker
// machine reuse, coalesces duplicate in-flight requests, serves repeats
// from a size-bounded LRU result cache, and decomposes sweep requests into
// cells batched through the harness's parallel sweep engine. See
// docs/server.md for the API and operational contract.
package server

import (
	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/sample"
	"github.com/vpir-sim/vpir/internal/technique"
)

// SimOptions is the wire form of one simulation configuration: the same
// knobs as the library's Options, as JSON-friendly strings. The zero value
// is the base machine.
type SimOptions struct {
	// Technique is any registered technique name ("base" when empty):
	// "base", "vp", "ir", "hybrid", "hybrid_conf", "vp_stride",
	// "vp_2delta", "vp_fcm", … — see internal/technique.Names.
	Technique string `json:"technique,omitempty"`
	// Scheme is the VP scheme for the scheme-selectable techniques:
	// "magic" (default), "lvp", "stride", "2delta" or "fcm".
	Scheme string `json:"scheme,omitempty"`
	// BranchResolution is "sb" (default) or "nsb".
	BranchResolution string `json:"branch_resolution,omitempty"`
	// Reexec is "me" (default) or "nme".
	Reexec string `json:"reexec,omitempty"`
	// VerifyLatency is the VP-verification latency in cycles.
	VerifyLatency int `json:"verify_latency,omitempty"`
	// LateValidation defers reuse benefits to execute (the Figure 3
	// "late" experiment).
	LateValidation bool `json:"late_validation,omitempty"`
	// WatchdogCycles overrides the livelock watchdog (0 keeps the
	// default, negative disables).
	WatchdogCycles int64 `json:"watchdog_cycles,omitempty"`
}

// Config maps the wire options onto a machine configuration. The mapping
// is the single source of truth for the string spelling of every knob —
// the public vpir.Options delegates here so the library and the wire API
// can never drift apart.
func (o SimOptions) Config() (core.Config, error) {
	cfg, err := o.baseConfig()
	if err != nil {
		return cfg, err
	}
	if o.WatchdogCycles > 0 {
		cfg.Watchdog = uint64(o.WatchdogCycles)
	} else if o.WatchdogCycles < 0 {
		cfg.Watchdog = 0
	}
	return cfg, nil
}

func (o SimOptions) baseConfig() (core.Config, error) {
	return technique.Resolve(o.Technique, technique.Knobs{
		Scheme:           o.Scheme,
		BranchResolution: o.BranchResolution,
		Reexec:           o.Reexec,
		VerifyLatency:    o.VerifyLatency,
		LateValidation:   o.LateValidation,
	})
}

// RunRequest is the body of POST /v1/run: one benchmark under one
// configuration.
type RunRequest struct {
	Bench    string     `json:"bench"`
	Scale    int        `json:"scale,omitempty"`
	MaxInsts uint64     `json:"max_insts,omitempty"`
	Options  SimOptions `json:"options"`
	// Sample switches the run to checkpointed sampled simulation; the
	// response then carries a SampleResult. Malformed blocks are rejected
	// with a structured 400.
	Sample *SampleBlock `json:"sample,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: either the cross product of
// benchmarks and configurations, or an explicit cell list (the form the
// distributed coordinator uses to hand a worker its partition — a hash
// partition of a grid is not itself a grid). The two forms are mutually
// exclusive. The response is NDJSON, one SweepLine per cell in
// deterministic cell order (bench-major for grids, list order for explicit
// cells), streamed as cells complete, with '#'-prefixed heartbeat comment
// lines interleaved while cells compute.
type SweepRequest struct {
	Benches  []string        `json:"benches,omitempty"`
	Options  []SimOptions    `json:"options,omitempty"`
	Cells    []SweepCellSpec `json:"cells,omitempty"`
	Scale    int             `json:"scale,omitempty"`
	MaxInsts uint64          `json:"max_insts,omitempty"`
	// Sample, at the request level, samples every cell under this plan
	// (interval_index is not valid here); per-cell blocks on explicit Cells
	// override it.
	Sample *SampleBlock `json:"sample,omitempty"`
}

// SweepCellSpec names one explicit sweep cell: a benchmark under a
// configuration, optionally narrowed to one sampled interval.
type SweepCellSpec struct {
	Bench   string     `json:"bench"`
	Options SimOptions `json:"options"`
	// Sample samples this cell; with IntervalIndex set the cell simulates
	// exactly one interval of the plan and its SweepLine carries the
	// per-interval measurement for client-side stitching.
	Sample *SampleBlock `json:"sample,omitempty"`
}

// SimStats is the wire form of one simulation's results: the raw counters
// that matter plus the derived paper metrics, mirroring the library's
// Result.
type SimStats struct {
	Config string `json:"config"`

	Cycles    uint64  `json:"cycles"`
	Committed uint64  `json:"committed"`
	Executed  uint64  `json:"executed"`
	IPC       float64 `json:"ipc"`

	BranchPredRate float64 `json:"branch_pred_rate"`
	ReturnPredRate float64 `json:"return_pred_rate"`

	Squashes         uint64 `json:"squashes"`
	SpuriousSquashes uint64 `json:"spurious_squashes"`

	ReuseResultRate float64 `json:"reuse_result_rate"`
	ReuseAddrRate   float64 `json:"reuse_addr_rate"`
	ExecSquashedPct float64 `json:"exec_squashed_pct"`
	RecoveredPct    float64 `json:"recovered_pct"`

	VPResultPred    float64    `json:"vp_result_pred"`
	VPResultMispred float64    `json:"vp_result_mispred"`
	VPAddrPred      float64    `json:"vp_addr_pred"`
	VPAddrMispred   float64    `json:"vp_addr_mispred"`
	ExecTimesPct    [3]float64 `json:"exec_times_pct"`

	Contention               float64 `json:"contention"`
	MeanBranchResolveLatency float64 `json:"mean_branch_resolve_latency"`
}

// StatsFrom renders one simulation's counters in wire form; the
// coordinator uses it to synthesize sweep lines from locally executed
// cells that are byte-identical to worker-produced ones.
func StatsFrom(cfg core.Config, s core.Stats) SimStats { return statsFrom(cfg, s) }

func statsFrom(cfg core.Config, s core.Stats) SimStats {
	rp, rm := s.VPResultRates()
	ap, am := s.VPAddrRates()
	return SimStats{
		Config:                   cfg.Name(),
		Cycles:                   s.Cycles,
		Committed:                s.Committed,
		Executed:                 s.Executed,
		IPC:                      s.IPC(),
		BranchPredRate:           s.BranchPredRate(),
		ReturnPredRate:           s.ReturnPredRate(),
		Squashes:                 s.Squashes,
		SpuriousSquashes:         s.SpuriousSquashes,
		ReuseResultRate:          s.ReuseResultRate(),
		ReuseAddrRate:            s.ReuseAddrRate(),
		ExecSquashedPct:          s.ExecSquashedPct(),
		RecoveredPct:             s.RecoveredPct(),
		VPResultPred:             rp,
		VPResultMispred:          rm,
		VPAddrPred:               ap,
		VPAddrMispred:            am,
		ExecTimesPct:             s.ExecTimesPct(),
		Contention:               s.Contention(),
		MeanBranchResolveLatency: s.MeanBrResolveLat(),
	}
}

// RunResponse is the body of a successful POST /v1/run: the simulation
// stats plus the program's architectural output. Identical requests get
// byte-identical responses — the marshaled body is what the result cache
// stores.
type RunResponse struct {
	Bench    string   `json:"bench"`
	Scale    int      `json:"scale"`
	MaxInsts uint64   `json:"max_insts,omitempty"`
	Stats    SimStats `json:"stats"`
	Output   string   `json:"output"`
	ExitCode int      `json:"exit_code"`
	// Sample is the stitched sampling summary of a sampled run; absent
	// otherwise, so non-sampled responses are byte-identical to before.
	Sample *SampleResult `json:"sample,omitempty"`
}

// SweepLine is one NDJSON line of a POST /v1/sweep response: either a
// cell result (Index/Bench/Config/Stats set, Error empty), a cell failure
// (Error set), or — on the final line — the Done summary. Per-cell errors
// never abort the sweep; the Done line totals them, mirroring the
// harness's errors.Join partial-result contract.
type SweepLine struct {
	Index  int       `json:"index"`
	Bench  string    `json:"bench,omitempty"`
	Config string    `json:"config,omitempty"`
	Stats  *SimStats `json:"stats,omitempty"`
	Error  string    `json:"error,omitempty"`

	// Raw carries the cell's raw counters for sampled cells (SimStats holds
	// only derived metrics, and stitching needs the counters): the interval's
	// own statistics for interval cells, the stitched whole-program counters
	// for whole-plan cells.
	Raw *core.Stats `json:"raw,omitempty"`
	// Interval is the full per-interval measurement of an interval cell
	// (sample.interval_index set); a client stitches these, in index order,
	// into whole-program estimates.
	Interval *sample.IntervalResult `json:"interval,omitempty"`
	// Sample is the stitched summary of a whole-plan sampled cell.
	Sample *SampleResult `json:"sample,omitempty"`
	// Attempts audits retries on sampled and failed cells: 0 = served from
	// the runner's cache, 1 = first-try success, n > 1 = n−1 transient
	// failures were retried before this result. Hedged/retried interval
	// cells are thereby attributable; plain successful cells omit it so
	// their lines keep the pre-sampling byte shape.
	Attempts int `json:"attempts,omitempty"`

	Done   bool `json:"done,omitempty"`
	Cells  int  `json:"cells,omitempty"`
	Failed int  `json:"failed,omitempty"`
}

// BenchmarkEntry is one element of the GET /v1/benchmarks response.
type BenchmarkEntry struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// ErrorResponse is the body of every non-2xx JSON response. RequestID is
// present when the request passed through WithRequestID, so a client error
// report can be joined against the server's access log.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}
