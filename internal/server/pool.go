package server

import (
	"context"
	"fmt"
	"runtime"

	"sync"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/workload"
)

// machineCap bounds how many reusable machines one worker keeps. Each
// machine pins its program's full oracle trace, so an unbounded pool would
// grow with every distinct (bench, scale, max_insts) the server ever saw;
// past the cap an arbitrary machine is dropped and rebuilt on next use.
const machineCap = 8

// poolJob is one /v1/run or /v1/trace simulation queued for a pool worker.
type poolJob struct {
	ctx      context.Context
	bench    string
	scale    int
	maxInsts uint64
	cfg      core.Config
	trace    *traceParams // non-nil for /v1/trace: capture obs + pipetrace
	reply    chan poolResult
}

// traceParams are the capture bounds of one traced run: the pipetrace
// ring window (last N instructions), the interval sampler period, and the
// event ring capacity. All three are clamped by the handler before they
// reach the pool.
type traceParams struct {
	window   int
	interval uint64
	events   int
}

// poolResult carries everything a RunResponse needs: unlike the harness's
// SweepResult it includes the architectural Output/ExitCode, which the
// differential tests (and users validating runs) care about. Traced runs
// additionally carry the detached tracer and observer.
type poolResult struct {
	stats    core.Stats
	output   string
	exitCode int
	// skipped is the run's quiescence-skipped cycle count, kept beside
	// rather than inside stats (which must stay bit-identical whether or
	// not the skipper ran).
	skipped uint64
	tracer  *core.PipeTracer
	obs     *core.Observer
	err     error
}

// pool is the bounded worker pool behind POST /v1/run. Each worker owns a
// private set of machines it rewinds with Machine.Reset between requests
// (the same reuse model as the harness sweep engine), so steady-state
// traffic over a working set of benchmarks pays core.New's functional
// pre-run only once per (worker, benchmark).
type pool struct {
	jobs chan *poolJob
	wg   sync.WaitGroup
}

func newPool(workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{jobs: make(chan *poolJob)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			machines := make(map[string]*core.Machine)
			for j := range p.jobs {
				j.reply <- runJob(j, machines)
			}
		}()
	}
	return p
}

// run submits one simulation and waits for its result. Submission respects
// the job's context: a caller whose deadline passes while every worker is
// busy gets the context error instead of queueing forever.
func (p *pool) run(ctx context.Context, bench string, scale int, maxInsts uint64, cfg core.Config) poolResult {
	return p.submit(&poolJob{
		ctx: ctx, bench: bench, scale: scale, maxInsts: maxInsts, cfg: cfg,
		reply: make(chan poolResult, 1),
	})
}

// trace submits one observed simulation: the same pooled, machine-reusing
// path as run, with a pipetrace ring and an interval-sampling observer
// attached for the duration of the run.
func (p *pool) trace(ctx context.Context, bench string, scale int, maxInsts uint64, cfg core.Config, tp traceParams) poolResult {
	return p.submit(&poolJob{
		ctx: ctx, bench: bench, scale: scale, maxInsts: maxInsts, cfg: cfg,
		trace: &tp,
		reply: make(chan poolResult, 1),
	})
}

func (p *pool) submit(j *poolJob) poolResult {
	select {
	case p.jobs <- j:
		return <-j.reply
	case <-j.ctx.Done():
		return poolResult{err: fmt.Errorf("server: queue wait: %w", j.ctx.Err())}
	}
}

// close drains the pool: no new jobs are accepted and the call returns
// once every worker has exited. The Server only calls it after the last
// in-flight request finished.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// runJob performs one simulation on the calling worker, reusing (and on
// success keeping) a machine from the worker's pool. Panics become errors
// so one bad run cannot take a worker down, and the machine that panicked
// is dropped — its state is unknown mid-update, and the Reset determinism
// contract only covers machines whose Run returned normally.
func runJob(j *poolJob, machines map[string]*core.Machine) (res poolResult) {
	key := fmt.Sprintf("%s|%d|%d", j.bench, j.scale, j.maxInsts)
	defer func() {
		if p := recover(); p != nil {
			delete(machines, key)
			res = poolResult{err: fmt.Errorf("server: panic simulating %s under %s: %v", j.bench, j.cfg.Name(), p)}
		}
	}()
	if err := j.ctx.Err(); err != nil {
		return poolResult{err: err}
	}
	m := machines[key]
	if m != nil {
		if err := m.Reset(j.cfg); err != nil {
			return poolResult{err: err}
		}
	} else {
		w, err := workload.Get(j.bench)
		if err != nil {
			return poolResult{err: err}
		}
		prog, err := w.Load(j.scale)
		if err != nil {
			return poolResult{err: err}
		}
		m, err = core.New(prog, j.cfg, j.maxInsts)
		if err != nil {
			return poolResult{err: err}
		}
		if len(machines) >= machineCap {
			for k := range machines {
				delete(machines, k)
				break
			}
		}
		machines[key] = m
	}
	var tracer *core.PipeTracer
	var observer *core.Observer
	if j.trace != nil {
		tracer = &core.PipeTracer{Max: j.trace.window, Ring: true}
		observer = core.NewObserver(j.trace.interval, j.trace.events)
		m.Trace(tracer)
		m.AttachObserver(observer)
		// Detach on every exit path (including errors) so the machine the
		// worker keeps for the next request never samples into a dead
		// observer; the panic path drops the machine entirely.
		defer func() {
			m.Trace(nil)
			m.AttachObserver(nil)
		}()
	}
	if err := driveMachine(j.ctx, m); err != nil {
		return poolResult{err: err}
	}
	return poolResult{
		stats: m.Stats(), output: m.Output(), exitCode: m.ExitCode(),
		skipped: m.CyclesSkipped(), tracer: tracer, obs: observer,
	}
}

// driveMachine runs m to completion in bounded cycle slices so the request
// context's deadline and cancellation are observed; the machine's own
// watchdog separately bounds no-progress livelock in simulated time.
func driveMachine(ctx context.Context, m *core.Machine) error {
	const slice = 200_000 // cycles between deadline checks
	for !m.Halted() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("server: %s at cycle %d: %w", m.Config().Name(), m.Cycle(), err)
		}
		if err := m.Run(slice); err != nil {
			return err
		}
	}
	return nil
}
