package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/vpir-sim/vpir/internal/resultstore"
)

// sweepBody posts a sweep request and returns the raw NDJSON stream.
func sweepBody(t *testing.T, url string, req SweepRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, raw)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestSweepExplicitCells(t *testing.T) {
	_, ts := testServer(t, Config{})
	// The cell list deliberately repeats a bench and reorders configs —
	// shapes a grid can't express.
	req := SweepRequest{
		Cells: []SweepCellSpec{
			{Bench: "gcc", Options: SimOptions{Technique: "ir"}},
			{Bench: "vortex", Options: SimOptions{}},
			{Bench: "gcc", Options: SimOptions{}},
		},
		MaxInsts: 10_000,
	}
	raw := sweepBody(t, ts.URL, req)
	var lines []SweepLine
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") {
			continue
		}
		var l SweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (3 cells + done)", len(lines))
	}
	wantBench := []string{"gcc", "vortex", "gcc"}
	wantCfg := []string{"IR", "base", "base"}
	for i, l := range lines[:3] {
		if l.Index != i || l.Bench != wantBench[i] || l.Config != wantCfg[i] {
			t.Errorf("line %d = %d/%s/%s, want %d/%s/%s", i, l.Index, l.Bench, l.Config, i, wantBench[i], wantCfg[i])
		}
		if l.Stats == nil || l.Stats.IPC <= 0 {
			t.Errorf("cell %d missing stats: %+v", i, l)
		}
	}
	if !lines[3].Done || lines[3].Cells != 3 {
		t.Errorf("done line = %+v", lines[3])
	}

	// Mixing forms is rejected.
	body, _ := json.Marshal(SweepRequest{
		Benches: []string{"gcc"},
		Options: []SimOptions{{}},
		Cells:   []SweepCellSpec{{Bench: "gcc"}},
	})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed-form status = %d, want 400", resp.StatusCode)
	}
}

func TestSweepHeartbeats(t *testing.T) {
	// A 1 ms heartbeat against multi-millisecond cells must interleave
	// comment lines; stripping them leaves a valid, ordered stream.
	s, ts := testServer(t, Config{Heartbeat: time.Millisecond})
	raw := sweepBody(t, ts.URL, SweepRequest{
		Benches:  []string{"vortex"},
		Options:  []SimOptions{{}, {Technique: "ir"}},
		MaxInsts: 60_000,
	})
	heartbeats, data := 0, 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") {
			heartbeats++
			if sc.Text()+"\n" != HeartbeatLine {
				t.Errorf("heartbeat line = %q", sc.Text())
			}
			continue
		}
		var l SweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		data++
	}
	if heartbeats == 0 {
		t.Error("no heartbeat lines in a slow sweep with a 1ms interval")
	}
	if data != 3 {
		t.Errorf("data lines = %d, want 3", data)
	}
	if s.Metrics().Counter("server.sweep.heartbeats") == 0 {
		t.Error("heartbeat counter not incremented")
	}
}

func TestSweepClientCancelFreesSlots(t *testing.T) {
	// An abandoned sweep must stop consuming simulation slots promptly:
	// the handler notices the cancelled request context between lines
	// (not merely at the next failed write) and the runner's workers see
	// the derived context. Observable as a fast, clean drain.
	s, ts := testServer(t, Config{Workers: 2, SweepParallelism: 2})
	req := SweepRequest{
		Benches:  []string{"vortex", "gcc", "perl", "go"},
		Options:  []SimOptions{{}, {Technique: "ir"}, {Technique: "vp"}, {Technique: "hybrid"}},
		MaxInsts: 400_000,
	}
	body, _ := json.Marshal(req)
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first line so the sweep is demonstrably in flight, then
	// hang up mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first line: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The drain below can only complete once the abandoned request's
	// in-flight accounting is released and its workers unwound.
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer dcancel()
	start := time.Now()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after client cancel: %v", err)
	}
	if waited := time.Since(start); waited > 15*time.Second {
		t.Errorf("drain took %v; cancellation did not propagate promptly", waited)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Counter("server.sweep.aborted") == 0 {
		if time.Now().After(deadline) {
			t.Error("sweep abort not recorded")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDrainRetryAfter(t *testing.T) {
	s, ts := testServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/run", "/v1/sweep"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s status = %d, want 503", path, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != retryAfterSeconds {
			t.Errorf("%s Retry-After = %q, want %q", path, ra, retryAfterSeconds)
		}
	}
}

func TestRunStoreBacksLRU(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := testServer(t, Config{Store: store})
	req := RunRequest{Bench: "vortex", MaxInsts: 12_000, Options: SimOptions{Technique: "ir"}}

	resp, body := postRun(t, ts1.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first X-Cache = %q", got)
	}
	if s1.Metrics().Counter("server.store.puts") != 1 {
		t.Errorf("store.puts = %d, want 1", s1.Metrics().Counter("server.store.puts"))
	}

	// A "restarted" server — fresh process state, same store directory —
	// serves the repeat from disk, byte-identically, without simulating.
	store2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := testServer(t, Config{Store: store2})
	resp2, body2 := postRun(t, ts2.URL, req)
	if got := resp2.Header.Get("X-Cache"); got != "STORE" {
		t.Fatalf("restarted X-Cache = %q, want STORE", got)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("store body differs from computed body:\n%s\n%s", body, body2)
	}
	if s2.Metrics().Counter("server.store.hits") != 1 {
		t.Errorf("store.hits = %d, want 1", s2.Metrics().Counter("server.store.hits"))
	}
	// The store hit was promoted into the LRU: a third request is a plain
	// HIT without touching disk again.
	resp3, body3 := postRun(t, ts2.URL, req)
	if got := resp3.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("third X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(body, body3) {
		t.Error("LRU-promoted body differs")
	}
}
