package server

import (
	"context"
	"fmt"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/harness"
	"github.com/vpir-sim/vpir/internal/sample"
)

// SampleBlock is the wire form of a checkpointed-sampling plan (see
// docs/sampling.md). On /v1/run and at the top level of /v1/sweep it samples
// the whole program; on an explicit sweep cell an IntervalIndex narrows the
// cell to one interval of the plan — the form the distributed coordinator
// uses to fan a sampled run's intervals across machines.
type SampleBlock struct {
	// Interval is the measured interval length in dynamic instructions
	// (required, > 0).
	Interval uint64 `json:"interval"`
	// Every measures one interval in every Every (0 or 1 = all, k ≈ 1/k
	// coverage).
	Every uint64 `json:"every,omitempty"`
	// Warmup is the detailed-warmup instruction count before each measured
	// interval; warmup statistics are discarded.
	Warmup uint64 `json:"warmup,omitempty"`
	// IntervalIndex, when present, names one interval of the plan (≥ 0).
	// Only valid on explicit sweep cells.
	IntervalIndex *int `json:"interval_index,omitempty"`
}

// Plan converts the block to the internal sampling plan.
func (b *SampleBlock) Plan() sample.Plan {
	return sample.Plan{Interval: b.Interval, Every: b.Every, Warmup: b.Warmup}.Normalize()
}

// Validate rejects malformed blocks with messages precise enough for a
// structured 400.
func (b *SampleBlock) Validate(allowIndex bool) error {
	if b.Interval == 0 {
		return fmt.Errorf("sample.interval must be a positive instruction count")
	}
	if err := b.Plan().Validate(); err != nil {
		return err
	}
	if b.IntervalIndex != nil {
		if !allowIndex {
			return fmt.Errorf("sample.interval_index is only valid on explicit sweep cells")
		}
		if *b.IntervalIndex < 0 {
			return fmt.Errorf("sample.interval_index must be >= 0, got %d", *b.IntervalIndex)
		}
	}
	return nil
}

// KeySuffix is the fragment appended to cache/store keys for sampled
// requests. It is empty for nil blocks, so every pre-sampling key — and the
// durable store entries addressed by them — stays byte-identical.
func (b *SampleBlock) KeySuffix() string {
	if b == nil {
		return ""
	}
	suffix := "|sample:" + b.Plan().Key()
	if b.IntervalIndex != nil {
		suffix += fmt.Sprintf("|k%d", *b.IntervalIndex)
	}
	return suffix
}

// spec converts the block to the harness's cell-level sampling spec.
func (b *SampleBlock) spec() *harness.SampleSpec {
	if b == nil {
		return nil
	}
	s := &harness.SampleSpec{Plan: b.Plan(), Index: harness.WholeProgram}
	if b.IntervalIndex != nil {
		s.Index = *b.IntervalIndex
	}
	return s
}

// SampleCI is one metric's 95% confidence interval across the sampled
// intervals.
type SampleCI struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	Half float64 `json:"half"`
}

// SampleResult is the wire form of a stitched sampling summary.
type SampleResult struct {
	Intervals    int        `json:"intervals"`
	TotalInsts   uint64     `json:"total_insts"`
	SampledInsts uint64     `json:"sampled_insts"`
	Coverage     float64    `json:"coverage"`
	Exact        bool       `json:"exact"`
	CIs          []SampleCI `json:"cis,omitempty"`
}

func sampleResultFrom(sum *sample.Summary) *SampleResult {
	if sum == nil {
		return nil
	}
	out := &SampleResult{
		Intervals:    sum.Intervals,
		TotalInsts:   sum.TotalInsts,
		SampledInsts: sum.SampledInsts,
		Coverage:     sum.Coverage,
		Exact:        sum.Exact,
	}
	for _, ci := range sum.CIs {
		out.CIs = append(out.CIs, SampleCI{Name: ci.Name, Mean: ci.Mean, Half: ci.Half})
	}
	return out
}

// runSampled executes a sampled /v1/run on a per-request harness runner (the
// same pattern handleSweep uses): the plan's intervals fan out across the
// runner's worker pool, and the stitched summary comes back alongside the
// whole-program statistics.
func (s *Server) runSampled(ctx context.Context, bench string, scale int, maxInsts uint64, cfg core.Config, block *SampleBlock) (*sample.Summary, error) {
	runner := harness.NewRunner()
	runner.Scale = scale
	runner.MaxInsts = maxInsts
	runner.Parallel = true
	runner.Parallelism = s.cfg.SweepParallelism
	if s.cfg.Timeout > 0 {
		runner.Timeout = s.cfg.Timeout
	}
	return runner.RunSampled(ctx, bench, cfg, block.Plan())
}
