package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a small server suitable for unit tests: few workers,
// short runs, and a tight cache so eviction is reachable.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s, ts
}

func postRun(t *testing.T, url string, req RunRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestRunEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := RunRequest{Bench: "vortex", MaxInsts: 20_000, Options: SimOptions{Technique: "ir"}}

	resp, body := postRun(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first request X-Cache = %q, want MISS", got)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad body: %v\n%s", err, body)
	}
	if rr.Bench != "vortex" || rr.Scale != 1 || rr.MaxInsts != 20_000 {
		t.Errorf("echo fields = %q/%d/%d", rr.Bench, rr.Scale, rr.MaxInsts)
	}
	if rr.Stats.IPC <= 0 || rr.Stats.Committed == 0 || rr.Stats.Cycles == 0 {
		t.Errorf("implausible stats: %+v", rr.Stats)
	}
	if rr.Stats.Config != "IR" {
		t.Errorf("config label = %q, want IR", rr.Stats.Config)
	}
	if rr.Stats.ReuseResultRate <= 0 {
		t.Errorf("IR run reported no reuse: %+v", rr.Stats)
	}

	// The repeat must be a cache hit with a byte-identical body.
	resp2, body2 := postRun(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("repeat X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("repeat body differs:\n%s\n%s", body, body2)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"unknown bench", `{"bench":"nope"}`},
		{"unknown technique", `{"bench":"vortex","options":{"technique":"warp"}}`},
		{"unknown scheme", `{"bench":"vortex","options":{"technique":"vp","scheme":"psychic"}}`},
		{"malformed json", `{"bench":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var er ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
				t.Fatalf("error body: %v %+v", err, er)
			}
		})
	}
}

func TestRunClamp(t *testing.T) {
	_, ts := testServer(t, Config{MaxInsts: 10_000, MaxScale: 2})
	// Asks for an unbounded run at a huge scale; both must be clamped and
	// the effective values echoed.
	resp, body := postRun(t, ts.URL, RunRequest{Bench: "vortex", Scale: 99})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.MaxInsts != 10_000 || rr.Scale != 2 {
		t.Errorf("clamped to max_insts=%d scale=%d, want 10000/2", rr.MaxInsts, rr.Scale)
	}
	if rr.Stats.Committed > 10_000+64 {
		t.Errorf("committed %d escaped the clamp", rr.Stats.Committed)
	}
}

func TestCacheEviction(t *testing.T) {
	s, ts := testServer(t, Config{CacheEntries: 2})
	for _, insts := range []uint64{10_000, 11_000, 12_000, 13_000} {
		resp, body := postRun(t, ts.URL, RunRequest{Bench: "vortex", MaxInsts: insts})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
	}
	if ev := s.Metrics().Counter("server.cache.evictions"); ev == 0 {
		t.Error("4 distinct results through a 2-entry cache evicted nothing")
	}
	if n := s.cacheLen(); n > 2 {
		t.Errorf("cache holds %d entries, bound is 2", n)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := SweepRequest{
		Benches:  []string{"vortex", "gcc"},
		Options:  []SimOptions{{}, {Technique: "ir"}, {Technique: "vp"}},
		MaxInsts: 15_000,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var lines []SweepLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l SweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 7 { // 2 benches x 3 configs + done line
		t.Fatalf("got %d lines, want 7", len(lines))
	}
	final := lines[len(lines)-1]
	if !final.Done || final.Cells != 6 || final.Failed != 0 {
		t.Errorf("done line = %+v", final)
	}
	// Cell order is deterministic bench-major: vortex x {base, IR, VP...},
	// then gcc.
	wantBench := []string{"vortex", "vortex", "vortex", "gcc", "gcc", "gcc"}
	for i, l := range lines[:6] {
		if l.Index != i || l.Bench != wantBench[i] {
			t.Errorf("line %d = index %d bench %s, want %d %s", i, l.Index, l.Bench, i, wantBench[i])
		}
		if l.Error != "" || l.Stats == nil {
			t.Errorf("cell %d failed: %+v", i, l)
			continue
		}
		if l.Stats.IPC <= 0 {
			t.Errorf("cell %d has zero IPC", i)
		}
	}
	// The same (bench, config) must agree with a /v1/run of that cell.
	rresp, rbody := postRun(t, ts.URL, RunRequest{Bench: "vortex", MaxInsts: 15_000})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", rresp.StatusCode)
	}
	var rr RunResponse
	if err := json.Unmarshal(rbody, &rr); err != nil {
		t.Fatal(err)
	}
	if *lines[0].Stats != rr.Stats {
		t.Errorf("sweep cell and run disagree:\n%+v\n%+v", *lines[0].Stats, rr.Stats)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := testServer(t, Config{MaxSweepCells: 4})
	cases := []struct {
		name string
		body string
	}{
		{"unknown bench", `{"benches":["nope"],"options":[{}]}`},
		{"no options", `{"benches":["vortex"]}`},
		{"bad config", `{"benches":["vortex"],"options":[{"technique":"warp"}]}`},
		{"too many cells", `{"benches":["vortex","gcc","perl"],"options":[{},{"technique":"ir"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []BenchmarkEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("got %d benchmarks, want 7", len(entries))
	}
	for _, e := range entries {
		if e.Name == "" || e.Desc == "" {
			t.Errorf("incomplete entry %+v", e)
		}
	}
}

func TestHealthAndMetrics(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Run once (miss) and again (hit) so the cache counters are nonzero.
	req := RunRequest{Bench: "vortex", MaxInsts: 10_000}
	postRun(t, ts.URL, req)
	postRun(t, ts.URL, req)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	prom := buf.String()
	for _, want := range []string{
		"vpir_server_run_requests_total 2",
		"vpir_server_cache_hits_total 1",
		"vpir_server_cache_misses_total 1",
		"vpir_server_cache_entries 1",
		"vpir_server_run_seconds_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q:\n%s", want, prom)
		}
	}
	if s.Metrics().Counter("server.cache.hits") != 1 {
		t.Errorf("hit counter = %d", s.Metrics().Counter("server.cache.hits"))
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1, Timeout: 10 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining twice is fine.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	body, _ := json.Marshal(RunRequest{Bench: "vortex", MaxInsts: 5_000})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain run status = %d, want 503", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz = %d, want 503", hresp.StatusCode)
	}
	var st map[string]string
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil || st["status"] != "draining" {
		t.Errorf("healthz body = %v (%v)", st, err)
	}
}

func TestSimOptionsConfig(t *testing.T) {
	// Spot-check the wire mapping end to end: every technique spelling
	// resolves, and bad knobs fail loudly.
	for _, tc := range []struct {
		o    SimOptions
		name string
	}{
		{SimOptions{}, "base"},
		{SimOptions{Technique: "base"}, "base"},
		{SimOptions{Technique: "ir"}, "IR"},
		{SimOptions{Technique: "ir", LateValidation: true}, "IR late"},
		{SimOptions{Technique: "vp"}, "VP_Magic ME-SB vlat=0"},
		{SimOptions{Technique: "vp", Scheme: "lvp", BranchResolution: "nsb", Reexec: "nme", VerifyLatency: 1}, "VP_LVP NME-NSB vlat=1"},
		{SimOptions{Technique: "hybrid"}, "IR+VP_Magic ME-SB vlat=0"},
	} {
		cfg, err := tc.o.Config()
		if err != nil {
			t.Errorf("%+v: %v", tc.o, err)
			continue
		}
		if cfg.Name() != tc.name {
			t.Errorf("%+v -> %q, want %q", tc.o, cfg.Name(), tc.name)
		}
	}
	for _, bad := range []SimOptions{
		{Technique: "warp"},
		{Technique: "vp", Scheme: "psychic"},
		{Technique: "vp", BranchResolution: "maybe"},
		{Technique: "vp", Reexec: "sometimes"},
	} {
		if _, err := bad.Config(); err == nil {
			t.Errorf("%+v: want error", bad)
		}
	}
	// Watchdog override plumbs through.
	cfg, err := SimOptions{WatchdogCycles: 123}.Config()
	if err != nil || cfg.Watchdog != 123 {
		t.Errorf("watchdog = %d (%v), want 123", cfg.Watchdog, err)
	}
	cfg, err = SimOptions{WatchdogCycles: -1}.Config()
	if err != nil || cfg.Watchdog != 0 {
		t.Errorf("disabled watchdog = %d (%v), want 0", cfg.Watchdog, err)
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	// a was just used, so adding c must evict b.
	if ev := c.add("c", []byte("C")); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	// Disabled cache stores nothing.
	d := newLRU(-1)
	d.add("x", []byte("X"))
	if _, ok := d.get("x"); ok {
		t.Error("disabled cache cached")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	type out struct {
		body   []byte
		shared bool
	}
	results := make(chan out, 3)
	go func() {
		body, _, shared := g.do("k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("v"), nil
		})
		results <- out{body, shared}
	}()
	<-started
	for i := 0; i < 2; i++ {
		go func() {
			body, _, shared := g.do("k", func() ([]byte, error) {
				t.Error("duplicate execution")
				return nil, nil
			})
			results <- out{body, shared}
		}()
	}
	// Give the sharers a moment to park on the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	sharedN := 0
	for i := 0; i < 3; i++ {
		r := <-results
		if string(r.body) != "v" {
			t.Errorf("body = %q", r.body)
		}
		if r.shared {
			sharedN++
		}
	}
	if sharedN != 2 {
		t.Errorf("shared = %d, want 2", sharedN)
	}
}

func TestRunTimeout(t *testing.T) {
	// A 1ns budget cannot finish any simulation; the request must come
	// back 504, not hang.
	_, ts := testServer(t, Config{Timeout: 1 * time.Nanosecond})
	resp, body := postRun(t, ts.URL, RunRequest{Bench: "vortex", MaxInsts: 50_000})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

// TestUnknownTechniqueStructured400 is the regression test for the silent
// fallback bug: a misspelled technique or scheme used to resolve to the
// base machine and return a 200 with base numbers. Both endpoints must now
// reject it with a structured 400 naming the bad value, and — through the
// request-id middleware — echo the caller's X-Request-ID in the error body
// so the failure can be joined against the access log.
func TestUnknownTechniqueStructured400(t *testing.T) {
	ts := testServerWithRequestID(t, Config{})
	cases := []struct {
		name string
		path string
		body string
		want string // substring the error must carry
	}{
		{"run unknown technique", "/v1/run",
			`{"bench":"vortex","options":{"technique":"warp"}}`,
			`unknown technique "warp"`},
		{"run unknown scheme", "/v1/run",
			`{"bench":"vortex","options":{"technique":"vp","scheme":"psychic"}}`,
			`unknown scheme "psychic"`},
		{"run unconsumed knob", "/v1/run",
			`{"bench":"vortex","options":{"technique":"ir","scheme":"lvp"}}`,
			`does not take a scheme`},
		{"sweep grid unknown technique", "/v1/sweep",
			`{"benches":["vortex"],"options":[{"technique":"warp"}]}`,
			`unknown technique "warp"`},
		{"sweep cell unknown scheme", "/v1/sweep",
			`{"cells":[{"bench":"vortex","options":{"technique":"hybrid","scheme":"psychic"}}]}`,
			`unknown scheme "psychic"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("POST", ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(RequestIDHeader, "client-trace-42")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (silent fallback regression)", resp.StatusCode)
			}
			var er ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("error body is not structured JSON: %v", err)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Errorf("error %q does not name the bad value (want substring %q)", er.Error, tc.want)
			}
			if er.RequestID != "client-trace-42" {
				t.Errorf("request_id = %q, want the inbound X-Request-ID echoed", er.RequestID)
			}
		})
	}
}

func ExampleSimOptions() {
	cfg, _ := SimOptions{Technique: "vp", Scheme: "lvp"}.Config()
	fmt.Println(cfg.Name())
	// Output: VP_LVP ME-SB vlat=0
}
