package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// RequestIDHeader carries the correlation id. Inbound values (e.g. minted
// by the coordinator, or a client's own tracing layer) are accepted after
// sanitization so one id follows a request across hops; absent or invalid
// values are replaced with a fresh one.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted inbound ids; anything longer is treated
// as hostile and replaced.
const maxRequestIDLen = 64

// NewRequestID mints a 16-hex-digit random id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a fixed
		// marker rather than taking requests down over a log id.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID returns id if it is safe to echo into headers and
// logs — non-empty, bounded, and [A-Za-z0-9._-] only — and "" otherwise.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// accessWriter observes the status and byte count that actually went out,
// forwarding Flush so NDJSON sweep streams keep streaming through the
// middleware.
type accessWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (a *accessWriter) WriteHeader(code int) {
	if a.status == 0 {
		a.status = code
	}
	a.ResponseWriter.WriteHeader(code)
}

func (a *accessWriter) Write(p []byte) (int, error) {
	if a.status == 0 {
		a.status = http.StatusOK
	}
	n, err := a.ResponseWriter.Write(p)
	a.bytes += n
	return n, err
}

func (a *accessWriter) Flush() {
	if f, ok := a.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLine is one structured access-log record, written as a single JSON
// line so log pipelines can parse it without a custom format.
type accessLine struct {
	Time      string  `json:"time"`
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Bytes     int     `json:"bytes"`
	Seconds   float64 `json:"seconds"`
	Cache     string  `json:"cache,omitempty"`
	Remote    string  `json:"remote,omitempty"`
}

// WithRequestID wraps a handler with request-id assignment and (when logw
// is non-nil) structured JSON access logging. The id is placed on the
// response header before the wrapped handler runs, so error bodies (via
// writeError) and success responses both carry it; it is also set on the
// request header so proxy code (the coordinator) forwards the same id
// downstream.
func WithRequestID(next http.Handler, logw io.Writer) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = NewRequestID()
		}
		r.Header.Set(RequestIDHeader, id)
		w.Header().Set(RequestIDHeader, id)
		aw := &accessWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(aw, r)
		if logw == nil {
			return
		}
		line := accessLine{
			Time:      start.UTC().Format(time.RFC3339Nano),
			RequestID: id,
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    aw.status,
			Bytes:     aw.bytes,
			Seconds:   time.Since(start).Seconds(),
			Cache:     aw.Header().Get("X-Cache"),
			Remote:    r.RemoteAddr,
		}
		b, err := json.Marshal(line)
		if err != nil {
			return
		}
		b = append(b, '\n')
		mu.Lock()
		logw.Write(b)
		mu.Unlock()
	})
}
