package server

import (
	"net/http"
	"net/http/pprof"
)

// WithPprof mounts the runtime profiling endpoints under /debug/pprof/ in
// front of next. This is opt-in (the -pprof flag on vpir-server and
// vpir-coord): the endpoints expose goroutine stacks and heap contents, so
// deployments keep them off unless actively profiling.
func WithPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}
