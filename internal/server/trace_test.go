package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func postTrace(t *testing.T, url string, req TraceRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/trace", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := TraceRequest{
		Bench:    "vortex",
		MaxInsts: 20_000,
		Options:  SimOptions{Technique: "hybrid", Scheme: "stride"},
		Window:   64,
	}

	resp, body := postTrace(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first request X-Cache = %q, want MISS", got)
	}
	var tr TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("bad body: %v\n%s", err, body)
	}
	if tr.Bench != "vortex" || tr.MaxInsts != 20_000 {
		t.Errorf("echo fields = %q/%d", tr.Bench, tr.MaxInsts)
	}
	if tr.Stats.IPC <= 0 || tr.Stats.Cycles == 0 {
		t.Errorf("implausible stats: %+v", tr.Stats)
	}

	// Pipetrace window: bounded, oldest-first, fully populated records.
	if tr.Window.Max != 64 {
		t.Errorf("window max = %d, want 64", tr.Window.Max)
	}
	if len(tr.Window.Insts) == 0 || len(tr.Window.Insts) > 64 {
		t.Fatalf("window has %d insts, want 1..64", len(tr.Window.Insts))
	}
	if tr.Window.Overwrote == 0 {
		t.Errorf("a 20k-inst run must overwrite a 64-entry ring")
	}
	prev := uint64(0)
	for i, ev := range tr.Window.Insts {
		if i > 0 && ev.Seq <= prev {
			t.Errorf("inst %d: seq %d not increasing after %d", i, ev.Seq, prev)
		}
		prev = ev.Seq
		if !strings.HasPrefix(ev.PC, "0x") || ev.Disasm == "" {
			t.Errorf("inst %d: pc %q disasm %q", i, ev.PC, ev.Disasm)
		}
		if ev.Decode < ev.Fetch {
			t.Errorf("inst %d: decode %d before fetch %d", i, ev.Decode, ev.Fetch)
		}
	}

	// Event log: present with lifetime counts.
	if tr.Events.Events == nil {
		t.Error("events.events must be [] not null")
	}
	if len(tr.Events.Counts) == 0 {
		t.Error("a hybrid run should have logged at least one event kind")
	}

	// Series: positional rows under an explicit header, cycle first.
	if len(tr.Series.Fields) == 0 || tr.Series.Fields[0] != "cycle" {
		t.Fatalf("series fields = %v, want leading cycle", tr.Series.Fields)
	}
	if len(tr.Series.Rows) == 0 {
		t.Fatal("series has no rows")
	}
	for i, row := range tr.Series.Rows {
		if len(row) != len(tr.Series.Fields) {
			t.Fatalf("row %d width %d != %d fields", i, len(row), len(tr.Series.Fields))
		}
	}
	// The observer flushes a final sample at halt, so the last row agrees
	// with the end-of-run stats.
	iCommitted := -1
	for j, f := range tr.Series.Fields {
		if f == "committed" {
			iCommitted = j
		}
	}
	if iCommitted < 0 {
		t.Fatalf("series fields %v missing committed", tr.Series.Fields)
	}
	last := tr.Series.Rows[len(tr.Series.Rows)-1]
	if uint64(last[iCommitted]) != tr.Stats.Committed {
		t.Errorf("final sample committed = %v, stats say %d", last[iCommitted], tr.Stats.Committed)
	}
}

func TestTraceByteStable(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := TraceRequest{Bench: "compress", MaxInsts: 15_000, Options: SimOptions{Technique: "ir"}}

	resp1, body1 := postTrace(t, ts.URL, req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d, body %s", resp1.StatusCode, body1)
	}
	resp2, body2 := postTrace(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("second request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("identical trace requests returned different bytes")
	}
}

func TestTraceValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []TraceRequest{
		{Bench: "no-such-bench", Options: SimOptions{Technique: "ir"}},
		{Bench: "vortex", Options: SimOptions{Technique: "warp-drive"}},
	}
	for _, req := range cases {
		resp, body := postTrace(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400 (body %s)", req, resp.StatusCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%+v: bad error body %s", req, body)
		}
	}
}

func TestClampTrace(t *testing.T) {
	cases := []struct {
		in   TraceRequest
		want traceParams
	}{
		{TraceRequest{}, traceParams{window: DefaultTraceWindow, interval: 10_000, events: DefaultTraceEvents}},
		{TraceRequest{Window: 1 << 20, Events: 1 << 20, Interval: 1},
			traceParams{window: MaxTraceWindow, interval: MinTraceInterval, events: MaxTraceEvents}},
		{TraceRequest{Window: -5, Events: -5},
			traceParams{window: DefaultTraceWindow, interval: 10_000, events: DefaultTraceEvents}},
		{TraceRequest{Window: 32, Interval: 5_000, Events: 100},
			traceParams{window: 32, interval: 5_000, events: 100}},
	}
	for _, c := range cases {
		if got := clampTrace(c.in); got != c.want {
			t.Errorf("clampTrace(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestTraceKeyStable(t *testing.T) {
	raw := TraceRequest{Bench: "gcc", Options: SimOptions{Technique: "vp", Scheme: "lvp"}, Window: 1 << 20}
	k1, err := TraceKey(raw, 1, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	clamped := raw
	clamped.Window = MaxTraceWindow
	k2, err := TraceKey(clamped, 1, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("raw and pre-clamped requests disagree on key:\n%s\n%s", k1, k2)
	}
	if !strings.HasPrefix(k1, "trace|gcc|1|30000|") {
		t.Errorf("key %q missing trace|bench|scale|insts prefix", k1)
	}
	if _, err := TraceKey(TraceRequest{Bench: "gcc", Options: SimOptions{Technique: "nope"}}, 1, 0); err == nil {
		t.Error("bad options must not produce a key")
	}
}

// schemaOf flattens a decoded JSON value into sorted "path: type" lines —
// the shape of the payload without its values. Arrays describe their first
// element, so the golden pins per-record field sets too.
func schemaOf(v any, path string, out map[string]string) {
	switch x := v.(type) {
	case map[string]any:
		out[path] = "object"
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			schemaOf(x[k], path+"."+k, out)
		}
	case []any:
		out[path] = "array"
		if len(x) > 0 {
			schemaOf(x[0], path+"[]", out)
		}
	case string:
		out[path] = "string"
	case float64:
		out[path] = "number"
	case bool:
		out[path] = "bool"
	case nil:
		out[path] = "null"
	}
}

// TestTraceGolden pins the /v1/trace payload schema. A field rename or
// removal is a wire-format break for dashboard and tooling consumers;
// regenerate with -update and review the diff when the change is meant.
func TestTraceGolden(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := TraceRequest{
		Bench:    "vortex",
		MaxInsts: 20_000,
		Options:  SimOptions{Technique: "hybrid", Scheme: "stride"},
		Window:   64,
	}
	resp, body := postTrace(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var decoded any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	flat := map[string]string{}
	schemaOf(decoded, "$", flat)
	paths := make([]string, 0, len(flat))
	for p := range flat {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var sb strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&sb, "%s: %s\n", p, flat[p])
	}
	got := sb.String()

	golden := filepath.Join("testdata", "trace_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test -run TraceGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace payload schema changed; if intentional, rerun with -update and review.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestUIServed(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/ui/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/ui/ = %d", resp.StatusCode)
	}
	if !strings.Contains(strings.ToLower(string(body)), "<!doctype html") {
		t.Error("dashboard index is not HTML")
	}

	for _, asset := range []string{"app.js", "style.css"} {
		resp, err := http.Get(ts.URL + "/v1/ui/" + asset)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /v1/ui/%s = %d", asset, resp.StatusCode)
		}
	}

	// Bare /v1/ui and / land on the dashboard.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, path := range []string{"/v1/ui", "/"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMovedPermanently || resp.Header.Get("Location") != "/v1/ui/" {
			t.Errorf("GET %s = %d -> %q, want 301 -> /v1/ui/", path, resp.StatusCode, resp.Header.Get("Location"))
		}
	}
}
