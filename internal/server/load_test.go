package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestServerLoad hammers /v1/run from many goroutines over a mix of
// duplicate and distinct configurations, then drains. It is the service's
// core concurrency contract in one test (run it with -race, as make check
// does): no data races, byte-identical responses for identical requests, a
// working cache (hit rate > 0), and a clean drain with nothing in flight
// left behind.
func TestServerLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	s := New(Config{Workers: 4, Timeout: 60 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 4 distinct request shapes cycled by 8 goroutines x 12 requests: 96
	// requests over 4 simulations' worth of real work, so most requests
	// must be served by the cache or coalesced by singleflight.
	shapes := []RunRequest{
		{Bench: "vortex", MaxInsts: 15_000},
		{Bench: "vortex", MaxInsts: 15_000, Options: SimOptions{Technique: "ir"}},
		{Bench: "gcc", MaxInsts: 15_000, Options: SimOptions{Technique: "vp"}},
		{Bench: "compress", MaxInsts: 15_000, Options: SimOptions{Technique: "vp", Scheme: "lvp"}},
	}
	const (
		goroutines = 8
		perG       = 12
	)
	bodies := make([]map[string][]byte, goroutines) // shape key -> body seen
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen := make(map[string][]byte)
			bodies[g] = seen
			for i := 0; i < perG; i++ {
				shape := shapes[(g+i)%len(shapes)]
				key := fmt.Sprintf("%s|%s", shape.Bench, shape.Options.Technique)
				reqBody, _ := json.Marshal(shape)
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					errs[g] = err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[g] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[g] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				if prev, ok := seen[key]; ok && !bytes.Equal(prev, body) {
					errs[g] = fmt.Errorf("response for %s changed between requests", key)
					return
				}
				seen[key] = body
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	// Identical configs must be byte-identical across goroutines too.
	canonical := make(map[string][]byte)
	for g, seen := range bodies {
		for key, body := range seen {
			if prev, ok := canonical[key]; ok && !bytes.Equal(prev, body) {
				t.Errorf("goroutine %d saw a different body for %s", g, key)
			}
			canonical[key] = body
		}
	}

	total := goroutines * perG
	hits := s.Metrics().Counter("server.cache.hits")
	misses := s.Metrics().Counter("server.cache.misses")
	coalesced := s.Metrics().Counter("server.coalesced")
	if hits == 0 {
		t.Errorf("no cache hits across %d requests over %d shapes", total, len(shapes))
	}
	if hits+misses != uint64(total) {
		t.Errorf("hits %d + misses %d != %d requests", hits, misses, total)
	}
	if got := s.Metrics().Counter("server.run.requests"); got != uint64(total) {
		t.Errorf("request counter = %d, want %d", got, total)
	}
	t.Logf("load: %d requests, %d hits, %d misses (%d coalesced)", total, hits, misses, coalesced)

	// Drain must complete promptly with nothing in flight, flip the
	// server to rejecting, and leave the in-flight gauge at zero.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if inflight := s.Metrics().Gauge("server.sims.inflight"); inflight != 0 {
		t.Errorf("in-flight gauge = %v after drain", inflight)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		bytes.NewReader([]byte(`{"bench":"vortex","max_insts":1000}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain status = %d, want 503", resp.StatusCode)
	}
}

// TestServerDrainWaitsForInflight verifies the drain contract's other
// half: a request admitted before Drain finishes normally (200, not 503),
// and Drain only returns once it has.
func TestServerDrainWaitsForInflight(t *testing.T) {
	if testing.Short() {
		t.Skip("drain test skipped in -short mode")
	}
	s := New(Config{Workers: 1, Timeout: 60 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A long-ish run (full gcc) so Drain provably overlaps it.
	reqBody := []byte(`{"bench":"gcc"}`)
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode}
	}()

	// Wait until the request is actually admitted before draining.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Counter("server.run.requests") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-inflight
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusOK {
		t.Errorf("in-flight request finished %d, want 200", r.status)
	}
}
