package server

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// optionVariants enumerates, per SimOptions field, values that must map to
// distinct machine configurations. Every field of the struct must appear
// here: the reflective walk below fails on any field it has no variants
// for, so adding a wire knob without deciding its identity semantics is a
// compile-to-red change.
var optionVariants = map[string][]SimOptions{
	"Technique": {
		{}, {Technique: "ir"}, {Technique: "vp"}, {Technique: "hybrid"},
	},
	"Scheme": {
		{Technique: "vp"}, {Technique: "vp", Scheme: "lvp"}, {Technique: "vp", Scheme: "stride"},
	},
	"BranchResolution": {
		{Technique: "vp"}, {Technique: "vp", BranchResolution: "nsb"},
	},
	"Reexec": {
		{Technique: "vp"}, {Technique: "vp", Reexec: "nme"},
	},
	"VerifyLatency": {
		{Technique: "vp"}, {Technique: "vp", VerifyLatency: 3},
	},
	"LateValidation": {
		{Technique: "ir"}, {Technique: "ir", LateValidation: true},
	},
	"WatchdogCycles": {
		{}, {WatchdogCycles: 12345}, {WatchdogCycles: -1},
	},
}

// TestSimOptionsKeyCoverage is the wire-level companion of the core
// package's reflective Config.Key test: every SimOptions field must (a)
// survive a JSON round-trip unchanged — the coordinator re-marshals specs
// when partitioning, so a lossy field would silently collapse distinct
// cells — and (b) produce distinct Config.Key values across its variants,
// so the result cache, the durable store, and rendezvous routing can
// never alias two different experiments.
func TestSimOptionsKeyCoverage(t *testing.T) {
	typ := reflect.TypeOf(SimOptions{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		variants, ok := optionVariants[name]
		if !ok {
			t.Errorf("SimOptions.%s has no entry in optionVariants; decide its cache-identity semantics", name)
			continue
		}
		seen := map[string]SimOptions{}
		for _, o := range variants {
			// JSON round-trip: the wire form must be lossless.
			b, err := json.Marshal(o)
			if err != nil {
				t.Fatalf("%s: marshal %+v: %v", name, o, err)
			}
			var back SimOptions
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatalf("%s: unmarshal %s: %v", name, b, err)
			}
			if back != o {
				t.Errorf("%s: options %+v round-tripped to %+v", name, o, back)
			}
			cfg, err := o.Config()
			if err != nil {
				t.Fatalf("%s: %+v does not map to a config: %v", name, o, err)
			}
			key := cfg.Key()
			if prev, dup := seen[key]; dup {
				t.Errorf("%s: variants %+v and %+v share Config.Key %q", name, prev, o, key)
			}
			seen[key] = o
		}
	}
}

// TestCellIdentityKeyShape pins the full cell identity the fabric routes,
// caches and stores by: bench, scale and instruction budget must all
// contribute, on top of the config key coverage proven above.
func TestCellIdentityKeyShape(t *testing.T) {
	base := cacheKey(t, "vortex", 1, 20_000, SimOptions{})
	for name, other := range map[string]string{
		"bench":     cacheKey(t, "compress", 1, 20_000, SimOptions{}),
		"scale":     cacheKey(t, "vortex", 2, 20_000, SimOptions{}),
		"max_insts": cacheKey(t, "vortex", 1, 30_000, SimOptions{}),
		"options":   cacheKey(t, "vortex", 1, 20_000, SimOptions{Technique: "ir"}),
	} {
		if other == base {
			t.Errorf("cell identity ignores %s: %q", name, base)
		}
	}
}

// cacheKey mirrors the identity spelling in handleRun and the
// coordinator's cellTask: bench|scale|max_insts|Config.Key.
func cacheKey(t *testing.T, bench string, scale int, maxInsts uint64, o SimOptions) string {
	t.Helper()
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%s|%d|%d|%s", bench, scale, maxInsts, cfg.Key())
}
