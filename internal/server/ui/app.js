/* vpir dashboard: pipeline occupancy from /v1/trace, interval sparklines
   from the observer series, and an A/B config diff over /v1/sweep.
   Plain browser JS, no dependencies. */
"use strict";

const $ = (id) => document.getElementById(id);

// ---------- theme ----------

function applyTheme(t) {
  if (t) document.documentElement.setAttribute("data-theme", t);
  else document.documentElement.removeAttribute("data-theme");
  if (lastTrace) renderTrace(lastTrace);
}
$("themeToggle").addEventListener("click", () => {
  const cur = document.documentElement.getAttribute("data-theme");
  const dark = cur ? cur === "dark"
    : window.matchMedia("(prefers-color-scheme: dark)").matches;
  const next = dark ? "light" : "dark";
  try { localStorage.setItem("vpir-theme", next); } catch (e) { /* private mode */ }
  applyTheme(next);
});
try { applyTheme(localStorage.getItem("vpir-theme")); } catch (e) { /* ok */ }
window.matchMedia("(prefers-color-scheme: dark)").addEventListener("change", () => {
  if (!document.documentElement.getAttribute("data-theme") && lastTrace) renderTrace(lastTrace);
});

function cssVar(name) {
  return getComputedStyle(document.documentElement).getPropertyValue(name).trim();
}

// ---------- controls ----------

async function loadBenches() {
  const res = await fetch("../benchmarks");
  const benches = await res.json();
  const sel = $("bench");
  for (const b of benches) {
    const o = document.createElement("option");
    o.value = b.name;
    o.textContent = b.name;
    o.title = b.desc;
    sel.appendChild(o);
  }
}

function wireTechnique(techSel, schemeSel, brSel, reSel) {
  const update = () => {
    const t = techSel.value;
    const vpLike = t === "vp" || t === "hybrid";
    schemeSel.disabled = !vpLike;
    if (brSel) brSel.disabled = !vpLike;
    if (reSel) reSel.disabled = !vpLike;
  };
  techSel.addEventListener("change", update);
  update();
}
wireTechnique($("technique"), $("scheme"), $("branchres"), $("reexec"));
wireTechnique($("techniqueB"), $("schemeB"), null, null);

function optionsA() {
  const t = $("technique").value;
  const o = { technique: t };
  if (t === "vp" || t === "hybrid") {
    o.scheme = $("scheme").value;
    o.branch_resolution = $("branchres").value;
    o.reexec = $("reexec").value;
  }
  return o;
}
function optionsB() {
  const t = $("techniqueB").value;
  const o = { technique: t };
  if (t === "vp" || t === "hybrid") o.scheme = $("schemeB").value;
  return o;
}
function optName(o) {
  let n = o.technique.toUpperCase();
  if (o.scheme) n += "_" + o.scheme;
  return n;
}

// ---------- trace ----------

let lastTrace = null;

async function runTrace() {
  const btn = $("runTrace"), st = $("traceStatus");
  btn.disabled = true;
  st.classList.remove("err");
  st.textContent = "simulating…";
  try {
    const req = {
      bench: $("bench").value,
      scale: +$("scale").value || 1,
      max_insts: +$("maxinsts").value || 0,
      options: optionsA(),
      window: +$("window").value || 0,
    };
    const t0 = performance.now();
    const res = await fetch("../trace", { method: "POST", body: JSON.stringify(req) });
    if (!res.ok) {
      const e = await res.json().catch(() => ({}));
      throw new Error(e.error || res.status + " " + res.statusText);
    }
    const ms = (performance.now() - t0).toFixed(0);
    const cache = res.headers.get("X-Cache") || "?";
    lastTrace = await res.json();
    renderTrace(lastTrace);
    st.textContent = `${cache.toLowerCase()} · ${ms} ms`;
  } catch (err) {
    st.classList.add("err");
    st.textContent = String(err.message || err);
  } finally {
    btn.disabled = false;
  }
}
$("runTrace").addEventListener("click", runTrace);

function fmt(v, digits) {
  if (v === undefined || v === null || Number.isNaN(v)) return "–";
  if (Number.isInteger(v) && digits === undefined) return v.toLocaleString("en-US");
  return v.toFixed(digits === undefined ? 2 : digits);
}

function renderTrace(resp) {
  renderTiles(resp);
  renderPipeline(resp);
  renderEventTable(resp);
  renderSparklines(resp);
}

// skipDetail describes how much of the run the simulator's quiescence
// skipper fast-forwarded (a simulator-speed observation: results are
// identical either way). Hidden when the run skipped nothing.
function skipDetail(resp) {
  const skipped = resp.cycles_skipped;
  if (!skipped || !resp.stats.cycles) return "";
  return "skipped " + fmt(skipped) + " (" + fmt((100 * skipped) / resp.stats.cycles, 1) + "%)";
}

function renderTiles(resp) {
  const s = resp.stats;
  const tiles = [
    ["IPC", fmt(s.ipc, 3), resp.bench + " · " + s.config],
    ["cycles", fmt(s.cycles), skipDetail(resp)],
    ["committed", fmt(s.committed), "executed " + fmt(s.executed)],
    ["reuse rate", fmt(s.reuse_result_rate, 1) + "%", "addr " + fmt(s.reuse_addr_rate, 1) + "%"],
    ["VP pred / mispred", fmt(s.vp_result_pred, 1) + "% / " + fmt(s.vp_result_mispred, 1) + "%", ""],
    ["squashes", fmt(s.squashes), "spurious " + fmt(s.spurious_squashes)],
  ];
  const el = $("tiles");
  el.innerHTML = "";
  for (const [k, v, d] of tiles) {
    const div = document.createElement("div");
    div.className = "tile";
    div.innerHTML = `<div class="k"></div><div class="v"></div><div class="d"></div>`;
    div.children[0].textContent = k;
    div.children[1].textContent = v;
    div.children[2].textContent = d;
    el.appendChild(div);
  }
  el.hidden = false;
}

// Pipeline occupancy: one row per instruction in the trace window, one
// column per cycle, stage spans in the ordinal blue ramp, marks for
// reuse/commit, and event overlays (squash, VP mispredict) joined by seq.
const CELL_W = 7, CELL_H = 14, LABEL_W = 240, AXIS_H = 20, MAX_COLS = 3600;

let pipeGeom = null; // for the tooltip: {insts, start, end, vmBySeq}

function renderPipeline(resp) {
  const insts = resp.window.insts;
  const section = $("pipeSection");
  section.hidden = false;
  const canvas = $("pipeCanvas");
  const ctx = canvas.getContext("2d");
  if (!insts.length) {
    canvas.width = 400; canvas.height = 40;
    ctx.fillStyle = cssVar("--text-muted");
    ctx.fillText("(no instructions traced)", 10, 24);
    $("pipeMeta").textContent = "";
    pipeGeom = null;
    return;
  }

  const last = (ev) => ev.commit || ev.done || ev.decode;
  let start = insts[0].fetch, end = start;
  for (const ev of insts) {
    if (ev.fetch < start) start = ev.fetch;
    if (last(ev) > end) end = last(ev);
  }
  let clipped = false;
  if (end - start + 1 > MAX_COLS) { end = start + MAX_COLS - 1; clipped = true; }
  const cols = end - start + 1;

  // VP-mispredict events joined to rows by dynamic instruction seq.
  const vmBySeq = new Map();
  for (const e of resp.events.events) {
    if (e.kind === "vp_mispredict") vmBySeq.set(e.seq, e);
  }

  const dpr = window.devicePixelRatio || 1;
  const w = LABEL_W + cols * CELL_W + 10, h = AXIS_H + insts.length * CELL_H + 6;
  canvas.width = Math.round(w * dpr);
  canvas.height = Math.round(h * dpr);
  canvas.style.width = w + "px";
  canvas.style.height = h + "px";
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);

  ctx.fillStyle = cssVar("--surface-1");
  ctx.fillRect(0, 0, w, h);

  // cycle axis + hairline grid every 10 cycles
  ctx.font = "10px system-ui, sans-serif";
  const step = Math.max(10, Math.ceil(cols / 40 / 10) * 10);
  for (let c = Math.ceil(start / step) * step; c <= end; c += step) {
    const x = LABEL_W + (c - start) * CELL_W;
    ctx.strokeStyle = cssVar("--grid");
    ctx.lineWidth = 1;
    ctx.beginPath();
    ctx.moveTo(x + 0.5, AXIS_H - 4);
    ctx.lineTo(x + 0.5, h - 4);
    ctx.stroke();
    ctx.fillStyle = cssVar("--text-muted");
    ctx.fillText(String(c), x + 2, AXIS_H - 8);
  }

  const colF = cssVar("--stage-f"), colD = cssVar("--stage-d"), colE = cssVar("--stage-e");
  const colR = cssVar("--mark-reuse"), colC = cssVar("--text-primary");
  const colSq = cssVar("--status-critical"), colVm = cssVar("--status-serious");
  const colPred = cssVar("--mark-pred");
  const ink = cssVar("--text-secondary"), muted = cssVar("--text-muted");

  const xOf = (cyc) => LABEL_W + (cyc - start) * CELL_W;
  const span = (y, from, to, color) => {
    const a = Math.max(from, start), b = Math.min(to, end);
    if (b < a) return;
    ctx.fillStyle = color;
    // 2px vertical gap between rows; rounded data-end on the right
    const x = xOf(a), wid = (b - a + 1) * CELL_W - 1;
    ctx.beginPath();
    if (ctx.roundRect) ctx.roundRect(x, y + 2, wid, CELL_H - 4, [0, 3, 3, 0]);
    else ctx.rect(x, y + 2, wid, CELL_H - 4);
    ctx.fill();
  };

  insts.forEach((ev, i) => {
    const y = AXIS_H + i * CELL_H;
    // label gutter: ✗ for squashed rows, pc + disasm in muted ink
    ctx.font = "10px ui-monospace, monospace";
    if (ev.squash) {
      ctx.fillStyle = colSq;
      ctx.fillText("✗", 2, y + CELL_H - 4);
    }
    ctx.fillStyle = ev.squash ? muted : ink;
    const label = ev.pc.slice(2) + "  " + ev.disasm.replace(/\t/g, " ");
    ctx.fillText(label.length > 36 ? label.slice(0, 35) + "…" : label, 12, y + CELL_H - 4);

    const l = last(ev);
    if (ev.decode > ev.fetch) span(y, ev.fetch, ev.decode - 1, colF);
    if (l >= ev.decode) span(y, ev.decode, l, colD);
    if (ev.issue && ev.done >= ev.issue) span(y, ev.issue, ev.done, colE);
    if (ev.reused && ev.decode >= start && ev.decode <= end) {
      ctx.fillStyle = colR;
      ctx.fillRect(xOf(ev.decode), y + 2, CELL_W - 1, CELL_H - 4);
    }
    if (ev.pred && ev.decode >= start && ev.decode <= end) {
      ctx.fillStyle = colPred;
      ctx.beginPath();
      ctx.arc(xOf(ev.decode) + CELL_W / 2, y + CELL_H / 2, 2, 0, 7);
      ctx.fill();
    }
    if (ev.commit && ev.commit >= start && ev.commit <= end) {
      ctx.fillStyle = colC;
      ctx.fillRect(xOf(ev.commit) + 1, y + 1, 3, CELL_H - 2);
    }
    if (ev.squash) {
      // wash the whole row so discarded work reads at a glance
      ctx.fillStyle = colSq + "22";
      ctx.fillRect(LABEL_W, y + 1, cols * CELL_W, CELL_H - 2);
    }
    const vm = vmBySeq.get(ev.seq);
    if (vm && vm.cycle >= start && vm.cycle <= end) {
      // diamond at the verification cycle that caught the bad value
      const cx = xOf(vm.cycle) + CELL_W / 2, cy = y + CELL_H / 2;
      ctx.fillStyle = colVm;
      ctx.beginPath();
      ctx.moveTo(cx, cy - 4); ctx.lineTo(cx + 4, cy); ctx.lineTo(cx, cy + 4); ctx.lineTo(cx - 4, cy);
      ctx.fill();
    }
  });

  const meta = [`${insts.length} insts`, `cycles ${start}–${end}`];
  if (resp.window.overwrote) meta.push(`window dropped ${resp.window.overwrote.toLocaleString("en-US")} earlier insts`);
  if (clipped) meta.push("clipped to " + MAX_COLS + " cycles");
  $("pipeMeta").textContent = meta.join(" · ");
  pipeGeom = { insts, start, end, vmBySeq };
}

// hover tooltip over the pipeline canvas
const tooltip = $("tooltip");
$("pipeCanvas").addEventListener("mousemove", (e) => {
  if (!pipeGeom) return;
  const rect = e.target.getBoundingClientRect();
  const x = e.clientX - rect.left, y = e.clientY - rect.top;
  const row = Math.floor((y - AXIS_H) / CELL_H);
  if (row < 0 || row >= pipeGeom.insts.length) { tooltip.hidden = true; return; }
  const ev = pipeGeom.insts[row];
  const cyc = x > LABEL_W ? pipeGeom.start + Math.floor((x - LABEL_W) / CELL_W) : null;
  const vm = pipeGeom.vmBySeq.get(ev.seq);
  const bits = [];
  bits.push(`<b>#${ev.seq}</b> <code>${ev.pc}</code> <code>${escapeHTML(ev.disasm)}</code>`);
  bits.push(`<span class="t2">fetch ${ev.fetch} · decode ${ev.decode}` +
    (ev.issue ? ` · issue ${ev.issue}` : "") +
    (ev.done ? ` · done ${ev.done}` : "") +
    (ev.commit ? ` · commit ${ev.commit}` : " · never committed") + `</span>`);
  const flags = [];
  if (ev.reused) flags.push("reused at decode");
  if (ev.pred) flags.push("value predicted");
  if (ev.execs) flags.push(ev.execs + "× executed");
  if (ev.squash) flags.push("squashed (wrong path)");
  if (vm) flags.push(`VP mispredict caught at cycle ${vm.cycle}`);
  if (flags.length) bits.push(`<span class="t2">${flags.join(" · ")}</span>`);
  if (cyc !== null && cyc <= pipeGeom.end) bits.push(`<span class="t2">cursor: cycle ${cyc}</span>`);
  tooltip.innerHTML = bits.join("<br>");
  tooltip.hidden = false;
  const tw = tooltip.offsetWidth;
  tooltip.style.left = Math.min(e.clientX + 14, window.innerWidth - tw - 8) + "px";
  tooltip.style.top = (e.clientY + 14) + "px";
});
$("pipeCanvas").addEventListener("mouseleave", () => { tooltip.hidden = true; });

function escapeHTML(s) {
  return s.replace(/[&<>"]/g, (c) => ({ "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c]));
}

function renderEventTable(resp) {
  const tb = $("eventTable").tBodies[0];
  tb.innerHTML = "";
  for (const e of resp.events.events.slice(-500)) {
    const tr = document.createElement("tr");
    for (const v of [e.cycle, e.kind, e.pc, e.seq, e.a ?? 0, e.b ?? 0, e.note ?? ""]) {
      const td = document.createElement("td");
      td.textContent = String(v);
      tr.appendChild(td);
    }
    tb.appendChild(tr);
  }
}

// ---------- sparklines ----------

function renderSparklines(resp) {
  const { fields, rows, interval } = resp.series;
  const sec = $("sparkSection");
  if (rows.length < 2) { sec.hidden = true; return; }
  sec.hidden = false;
  $("sparkMeta").textContent = `sampled every ${interval.toLocaleString("en-US")} cycles · ${rows.length} samples`;

  const col = (name) => fields.indexOf(name);
  const iCycle = col("cycle"), iCommitted = col("committed"),
    iReuse = col("reused_results"), iPred = col("vp_result_predicted"),
    iCorrect = col("vp_result_correct"), iSquash = col("squashes");

  // The sampler ships cumulative counters; interval behavior is the
  // first difference between consecutive samples.
  const deltas = [];
  for (let i = 1; i < rows.length; i++) {
    const a = rows[i - 1], b = rows[i];
    const dCyc = b[iCycle] - a[iCycle];
    const dCom = b[iCommitted] - a[iCommitted];
    const dPred = b[iPred] - a[iPred];
    deltas.push({
      cycle: b[iCycle],
      ipc: dCyc > 0 ? dCom / dCyc : 0,
      reuse: dCom > 0 ? 100 * (b[iReuse] - a[iReuse]) / dCom : 0,
      vpmisp: dPred > 0 ? 100 * (dPred - (b[iCorrect] - a[iCorrect])) / dPred : 0,
      squash: dCyc > 0 ? 1000 * (b[iSquash] - a[iSquash]) / dCyc : 0,
    });
  }

  const defs = [
    ["IPC (per interval)", "ipc", 3],
    ["reuse rate % (per interval)", "reuse", 1],
    ["VP mispredict % (per interval)", "vpmisp", 1],
    ["squashes / 1k cycles", "squash", 1],
  ];
  const rowEl = $("sparkRow");
  rowEl.innerHTML = "";
  for (const [title, key, digits] of defs) {
    rowEl.appendChild(makeSpark(title, deltas, key, digits));
  }
}

function makeSpark(title, deltas, key, digits) {
  const div = document.createElement("div");
  div.className = "spark";
  div.innerHTML = `<div class="k"></div><div class="v"></div><canvas height="48"></canvas>`;
  div.children[0].textContent = title;
  const vEl = div.children[1];
  const canvas = div.children[2];
  const final = deltas[deltas.length - 1][key];
  vEl.textContent = fmt(final, digits);

  const draw = (hoverI) => {
    const dpr = window.devicePixelRatio || 1;
    const w = canvas.clientWidth || 240, h = 48;
    canvas.width = w * dpr; canvas.height = h * dpr;
    const ctx = canvas.getContext("2d");
    ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
    ctx.clearRect(0, 0, w, h);
    let min = Infinity, max = -Infinity;
    for (const d of deltas) { min = Math.min(min, d[key]); max = Math.max(max, d[key]); }
    if (min === max) { min -= 0.5; max += 0.5; }
    const X = (i) => 2 + i * (w - 4) / Math.max(1, deltas.length - 1);
    const Y = (v) => 4 + (h - 10) * (1 - (v - min) / (max - min));
    ctx.strokeStyle = cssVar("--baseline");
    ctx.beginPath(); ctx.moveTo(0, h - 1.5); ctx.lineTo(w, h - 1.5); ctx.stroke();
    ctx.strokeStyle = cssVar("--series-a");
    ctx.lineWidth = 2;
    ctx.lineJoin = "round";
    ctx.beginPath();
    deltas.forEach((d, i) => { i ? ctx.lineTo(X(i), Y(d[key])) : ctx.moveTo(X(i), Y(d[key])); });
    ctx.stroke();
    if (hoverI !== undefined) {
      ctx.strokeStyle = cssVar("--grid");
      ctx.beginPath(); ctx.moveTo(X(hoverI) + 0.5, 0); ctx.lineTo(X(hoverI) + 0.5, h); ctx.stroke();
      ctx.fillStyle = cssVar("--series-a");
      ctx.beginPath(); ctx.arc(X(hoverI), Y(deltas[hoverI][key]), 3.5, 0, 7); ctx.fill();
      ctx.strokeStyle = cssVar("--surface-1");
      ctx.lineWidth = 2;
      ctx.beginPath(); ctx.arc(X(hoverI), Y(deltas[hoverI][key]), 3.5, 0, 7); ctx.stroke();
    }
  };
  requestAnimationFrame(() => draw());
  canvas.addEventListener("mousemove", (e) => {
    const rect = canvas.getBoundingClientRect();
    const i = Math.round((e.clientX - rect.left - 2) / Math.max(1, (rect.width - 4)) * (deltas.length - 1));
    const j = Math.max(0, Math.min(deltas.length - 1, i));
    draw(j);
    vEl.textContent = `${fmt(deltas[j][key], digits)} @ cycle ${deltas[j].cycle.toLocaleString("en-US")}`;
  });
  canvas.addEventListener("mouseleave", () => {
    draw();
    vEl.textContent = fmt(final, digits);
  });
  return div;
}

// ---------- config diff over /v1/sweep ----------

async function runDiff() {
  const btn = $("runDiff"), st = $("diffStatus");
  btn.disabled = true;
  st.classList.remove("err");
  st.textContent = "sweeping…";
  try {
    const optA = optionsA(), optB = optionsB();
    const req = {
      benches: [],
      options: [optA, optB],
      scale: +$("scale").value || 1,
      max_insts: +$("maxinsts").value || 0,
    };
    const res = await fetch("../sweep", { method: "POST", body: JSON.stringify(req) });
    if (!res.ok) {
      const e = await res.json().catch(() => ({}));
      throw new Error(e.error || res.status + " " + res.statusText);
    }
    // NDJSON: one line per cell (bench-major, A then B), '#' heartbeats,
    // and a final done line with the failure total.
    const text = await res.text();
    const cells = [];
    let done = null;
    for (const line of text.split("\n")) {
      if (!line || line.startsWith("#")) continue;
      const obj = JSON.parse(line);
      if (obj.done) { done = obj; continue; }
      cells.push(obj);
    }
    renderDiff(cells, optA, optB);
    st.textContent = done && done.failed ? `${done.failed} cell(s) failed` : `${cells.length} cells`;
  } catch (err) {
    st.classList.add("err");
    st.textContent = String(err.message || err);
  } finally {
    btn.disabled = false;
  }
}
$("runDiff").addEventListener("click", runDiff);

function metricOf(stats, key) {
  if (!stats) return null;
  return stats[key] ?? null;
}

function renderDiff(cells, optA, optB) {
  const key = $("diffMetric").value;
  const perBench = new Map();
  for (const c of cells) {
    const slot = c.index % 2 === 0 ? "a" : "b"; // bench-major, options [A, B]
    if (!perBench.has(c.bench)) perBench.set(c.bench, {});
    perBench.get(c.bench)[slot] = c.error ? { error: c.error } : c.stats;
  }
  $("diffHeadA").textContent = "A · " + optName(optA);
  $("diffHeadB").textContent = "B · " + optName(optB);
  let max = 0;
  for (const { a, b } of perBench.values()) {
    max = Math.max(max, metricOf(a, key) || 0, metricOf(b, key) || 0);
  }
  const tb = $("diffTable").tBodies[0];
  tb.innerHTML = "";
  for (const [bench, { a, b }] of perBench) {
    const va = metricOf(a, key), vb = metricOf(b, key);
    const tr = document.createElement("tr");
    const bar = (v, cls) => {
      const td = document.createElement("td");
      td.className = "barCell";
      if (v === null) { td.textContent = "error"; return td; }
      const d = document.createElement("div");
      d.className = "bar " + cls;
      d.style.width = max > 0 ? (100 * v / max).toFixed(1) + "%" : "0";
      td.appendChild(d);
      return td;
    };
    const num = (v) => {
      const td = document.createElement("td");
      td.className = "num";
      td.textContent = v === null ? "–" : fmt(v, key === "squashes" ? 0 : 3);
      return td;
    };
    const name = document.createElement("td");
    name.textContent = bench;
    tr.appendChild(name);
    tr.appendChild(num(va));
    tr.appendChild(bar(va, "a"));
    tr.appendChild(num(vb));
    tr.appendChild(bar(vb, "b"));
    const delta = document.createElement("td");
    delta.className = "delta";
    if (va !== null && vb !== null && va !== 0) {
      const pct = 100 * (vb - va) / Math.abs(va);
      delta.textContent = (pct >= 0 ? "+" : "") + pct.toFixed(1) + "%";
    } else {
      delta.textContent = "–";
    }
    tr.appendChild(delta);
    tb.appendChild(tr);
  }
  $("diffTable").hidden = false;
}
$("diffMetric").addEventListener("change", () => {
  if (!$("diffTable").hidden) runDiff();
});

// ---------- boot ----------

loadBenches().catch((err) => {
  $("traceStatus").classList.add("err");
  $("traceStatus").textContent = "failed to load benchmarks: " + err;
});
