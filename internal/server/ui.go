package server

import (
	"embed"
	"io/fs"
	"net/http"
)

// The dashboard is plain static HTML+JS+CSS compiled into the binary:
// zero external assets, zero build toolchain. A bare vpir-server (or
// vpir-coord, which mounts the same handler) serves the whole analysis UI.
//
//go:embed ui
var uiFiles embed.FS

// UIHandler serves the embedded analysis dashboard. Mount it at /v1/ui/;
// requests for the directory itself fall through to index.html. The
// coordinator mounts the same handler so a fleet deployment presents the
// same UI as a single worker.
func UIHandler() http.Handler {
	sub, err := fs.Sub(uiFiles, "ui")
	if err != nil {
		// The tree is compiled in; a missing subdirectory is a build bug.
		panic("server: embedded ui assets missing: " + err.Error())
	}
	return http.StripPrefix("/v1/ui/", http.FileServerFS(sub))
}

// redirectUI sends bare /v1/ui (and /) to the dashboard index.
func redirectUI(w http.ResponseWriter, r *http.Request) {
	http.Redirect(w, r, "/v1/ui/", http.StatusMovedPermanently)
}
