package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testServerWithRequestID is testServer with the request-id middleware in
// front, so error bodies carry a request_id like production deployments.
func testServerWithRequestID(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	s := New(cfg)
	ts := httptest.NewServer(WithRequestID(s.Handler(), io.Discard))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return ts
}

// TestSampleValidation covers the satellite contract: malformed sample
// blocks are rejected with a structured 400 whose body threads the
// request id.
func TestSampleValidation(t *testing.T) {
	ts := testServerWithRequestID(t, Config{})
	cases := []struct {
		name string
		path string
		body string
		want string // substring of the error message
	}{
		{"run zero interval", "/v1/run",
			`{"bench":"vortex","sample":{}}`,
			"sample.interval must be a positive"},
		{"run interval_index", "/v1/run",
			`{"bench":"vortex","sample":{"interval":1000,"interval_index":0}}`,
			"interval_index is only valid on explicit sweep cells"},
		{"run warmup exceeds stride", "/v1/run",
			`{"bench":"vortex","sample":{"interval":10,"every":4,"warmup":1000}}`,
			"warmup"},
		{"sweep request-level interval_index", "/v1/sweep",
			`{"benches":["vortex"],"options":[{}],"sample":{"interval":1000,"interval_index":0}}`,
			"interval_index is only valid on explicit sweep cells"},
		{"sweep cell zero interval", "/v1/sweep",
			`{"cells":[{"bench":"vortex","sample":{"interval":0}}]}`,
			"cell 0:"},
		{"sweep cell negative index", "/v1/sweep",
			`{"cells":[{"bench":"vortex","sample":{"interval":1000,"interval_index":-1}}]}`,
			"must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var er ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("non-JSON error body: %v", err)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Errorf("error = %q, want substring %q", er.Error, tc.want)
			}
			if er.RequestID == "" {
				t.Errorf("400 body did not thread a request_id: %+v", er)
			}
			if er.RequestID != resp.Header.Get(RequestIDHeader) {
				t.Errorf("request_id %q != header %q", er.RequestID, resp.Header.Get(RequestIDHeader))
			}
		})
	}
}

// TestRunSampledEndpoint checks the sampled /v1/run contract: the response
// carries a stitched Sample summary, a 100%-coverage plan reproduces the
// non-sampled statistics exactly, and sampled results are cached under a key
// distinct from the non-sampled run so X-Cache semantics stay byte-identical
// for both.
func TestRunSampledEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	plain := RunRequest{Bench: "vortex", MaxInsts: 20_000}
	// One interval covering the whole program is the differential gate:
	// restoring the inst-0 checkpoint is a cold Reset, so the stitched run
	// must equal the non-sampled one bit for bit.
	sampled := RunRequest{Bench: "vortex", MaxInsts: 20_000,
		Sample: &SampleBlock{Interval: 1 << 30}}

	resp, plainBody := postRun(t, ts.URL, plain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain status = %d, body %s", resp.StatusCode, plainBody)
	}
	var pr RunResponse
	if err := json.Unmarshal(plainBody, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Sample != nil {
		t.Errorf("non-sampled response carries a sample block: %+v", pr.Sample)
	}

	// The sampled run must be a MISS: same bench/config, different key.
	resp2, sampledBody := postRun(t, ts.URL, sampled)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("sampled status = %d, body %s", resp2.StatusCode, sampledBody)
	}
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("sampled first request X-Cache = %q, want MISS", got)
	}
	var sr RunResponse
	if err := json.Unmarshal(sampledBody, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sample == nil {
		t.Fatal("sampled response has no sample block")
	}
	if !sr.Sample.Exact || sr.Sample.Coverage != 1 {
		t.Errorf("full-coverage plan not exact: %+v", sr.Sample)
	}
	if sr.Sample.Intervals != 1 {
		t.Errorf("expected a single whole-program interval, got %d", sr.Sample.Intervals)
	}
	if sr.Sample.TotalInsts != sr.Sample.SampledInsts {
		t.Errorf("full coverage sampled %d of %d insts", sr.Sample.SampledInsts, sr.Sample.TotalInsts)
	}
	// 100% coverage is the differential gate: stitched statistics and
	// architectural results must equal the non-sampled run bit for bit.
	if sr.Stats != pr.Stats {
		t.Errorf("sampled stats diverge from full run:\n%+v\n%+v", sr.Stats, pr.Stats)
	}
	if sr.Output != pr.Output || sr.ExitCode != pr.ExitCode {
		t.Errorf("sampled output/exit diverge: %q/%d vs %q/%d",
			sr.Output, sr.ExitCode, pr.Output, pr.ExitCode)
	}

	// Repeats hit their own cache entries, byte-identically.
	resp3, sampledBody2 := postRun(t, ts.URL, sampled)
	if got := resp3.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("sampled repeat X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(sampledBody, sampledBody2) {
		t.Errorf("sampled repeat body differs:\n%s\n%s", sampledBody, sampledBody2)
	}
	resp4, plainBody2 := postRun(t, ts.URL, plain)
	if got := resp4.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("plain repeat X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(plainBody, plainBody2) {
		t.Errorf("plain repeat body differs after sampled run:\n%s\n%s", plainBody, plainBody2)
	}
}

func sweepLines(t *testing.T, url string, req SweepRequest) []SweepLine {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, buf.String())
	}
	var lines []SweepLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") {
			continue
		}
		var l SweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSweepRequestLevelSample checks that a request-level sample block
// samples every cell of the sweep: each line carries raw counters, a
// stitched summary and the attempts audit, and a full-coverage plan matches
// the corresponding non-sampled run exactly.
func TestSweepRequestLevelSample(t *testing.T) {
	_, ts := testServer(t, Config{})
	lines := sweepLines(t, ts.URL, SweepRequest{
		Benches:  []string{"vortex"},
		Options:  []SimOptions{{}, {Technique: "ir"}},
		MaxInsts: 15_000,
		Sample:   &SampleBlock{Interval: 4_000},
	})
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	final := lines[2]
	if !final.Done || final.Cells != 2 || final.Failed != 0 {
		t.Fatalf("done line = %+v", final)
	}
	for _, l := range lines[:2] {
		if l.Error != "" || l.Stats == nil {
			t.Fatalf("cell %d failed: %+v", l.Index, l)
		}
		if l.Raw == nil || l.Sample == nil {
			t.Errorf("sampled cell %d missing raw/sample: %+v", l.Index, l)
			continue
		}
		if l.Interval != nil {
			t.Errorf("whole-plan cell %d carries an interval: %+v", l.Index, l.Interval)
		}
		if l.Attempts < 1 {
			t.Errorf("sampled cell %d attempts = %d, want >= 1", l.Index, l.Attempts)
		}
		if !l.Sample.Exact {
			t.Errorf("full-coverage cell %d not exact: %+v", l.Index, l.Sample)
		}
		if l.Raw.Committed != l.Sample.TotalInsts {
			t.Errorf("cell %d stitched %d committed, summary says %d",
				l.Index, l.Raw.Committed, l.Sample.TotalInsts)
		}
	}
	// The sampled sweep cell must agree bit for bit with a sampled /v1/run
	// under the same plan — both paths stitch the same interval results.
	resp, rbody := postRun(t, ts.URL, RunRequest{Bench: "vortex", MaxInsts: 15_000,
		Sample: &SampleBlock{Interval: 4_000}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	var rr RunResponse
	if err := json.Unmarshal(rbody, &rr); err != nil {
		t.Fatal(err)
	}
	if *lines[0].Stats != rr.Stats {
		t.Errorf("sampled sweep cell diverges from sampled run:\n%+v\n%+v", *lines[0].Stats, rr.Stats)
	}
	if !reflect.DeepEqual(lines[0].Sample, rr.Sample) {
		t.Errorf("sweep summary %+v != run summary %+v", lines[0].Sample, rr.Sample)
	}
}

// TestSweepIntervalCells drives the coordinator's fan-out shape by hand:
// each interval of a plan becomes one explicit sweep cell, and the
// per-interval lines reassemble into the whole-program totals.
func TestSweepIntervalCells(t *testing.T) {
	_, ts := testServer(t, Config{})

	// Learn the plan's interval count from a whole-plan sampled run (the
	// same fast-forward pass the interval cells will share).
	block := SampleBlock{Interval: 5_000}
	resp, body := postRun(t, ts.URL, RunRequest{Bench: "vortex", MaxInsts: 20_000, Sample: &block})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled run status = %d, body %s", resp.StatusCode, body)
	}
	var whole RunResponse
	if err := json.Unmarshal(body, &whole); err != nil {
		t.Fatal(err)
	}
	k := whole.Sample.Intervals
	if k < 2 {
		t.Fatalf("plan has %d intervals, need >= 2 for a meaningful fan-out", k)
	}

	cells := make([]SweepCellSpec, k)
	for i := range cells {
		idx := i
		cells[i] = SweepCellSpec{
			Bench:  "vortex",
			Sample: &SampleBlock{Interval: block.Interval, IntervalIndex: &idx},
		}
	}
	lines := sweepLines(t, ts.URL, SweepRequest{Cells: cells, MaxInsts: 20_000})
	if len(lines) != k+1 {
		t.Fatalf("got %d lines, want %d", len(lines), k+1)
	}
	if final := lines[k]; !final.Done || final.Cells != k || final.Failed != 0 {
		t.Fatalf("done line = %+v", final)
	}
	var committed, cycles uint64
	for i, l := range lines[:k] {
		if l.Error != "" || l.Stats == nil {
			t.Fatalf("interval cell %d failed: %+v", i, l)
		}
		if l.Interval == nil || l.Raw == nil {
			t.Fatalf("interval cell %d missing interval/raw: %+v", i, l)
		}
		if l.Sample != nil {
			t.Errorf("interval cell %d carries a stitched summary: %+v", i, l.Sample)
		}
		if l.Index != i || l.Interval.Index != i {
			t.Errorf("cell %d holds interval %d at index %d", i, l.Interval.Index, l.Index)
		}
		if l.Attempts < 1 {
			t.Errorf("interval cell %d attempts = %d, want >= 1", i, l.Attempts)
		}
		if l.Interval.Insts != l.Raw.Committed {
			t.Errorf("interval %d insts %d != raw committed %d", i, l.Interval.Insts, l.Raw.Committed)
		}
		committed += l.Raw.Committed
		cycles += l.Raw.Cycles
	}
	// Zero-warmup full coverage: the intervals partition the program, so
	// their counters sum to the whole-plan totals exactly.
	if committed != whole.Stats.Committed {
		t.Errorf("interval cells committed %d insts, whole run %d", committed, whole.Stats.Committed)
	}
	if cycles != whole.Stats.Cycles {
		t.Errorf("interval cells took %d cycles, whole run %d", cycles, whole.Stats.Cycles)
	}
}
