package server

import "container/list"

// lruCache is a size-bounded least-recently-used map from simulation cache
// keys to marshaled response bodies. Storing the marshaled bytes (rather
// than the decoded result) is what makes repeat responses byte-identical
// by construction, and makes a hit a single map lookup plus a write.
//
// The cache is not internally synchronized; the Server guards it (and the
// counters it feeds) with one mutex.
type lruCache struct {
	max int // maximum entries; <= 0 disables the cache entirely
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached body and marks the key most-recently-used.
func (c *lruCache) get(key string) ([]byte, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// add inserts (or refreshes) a key and reports how many entries were
// evicted to stay within the bound.
func (c *lruCache) add(key string, body []byte) (evicted int) {
	if c.max <= 0 {
		return 0
	}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return 0
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

// len returns the current entry count.
func (c *lruCache) len() int { return c.ll.Len() }
