package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/obs"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Trace capture bounds. The window is a pipetrace ring (last N dynamic
// instructions), events an event-log ring, and the interval the sampler
// period — all three bound memory regardless of run length, so /v1/trace
// inherits /v1/run's resource envelope (plus these caps) rather than
// inventing a new one.
const (
	// DefaultTraceWindow is the pipetrace ring size when the request does
	// not ask for one.
	DefaultTraceWindow = 256
	// MaxTraceWindow caps the pipetrace ring a request may ask for.
	MaxTraceWindow = 4096
	// DefaultTraceEvents is the event-ring capacity when the request does
	// not ask for one.
	DefaultTraceEvents = 2048
	// MaxTraceEvents caps the event ring a request may ask for.
	MaxTraceEvents = 16384
	// MinTraceInterval floors the sampling period so a long run cannot be
	// asked to sample (and ship) every cycle.
	MinTraceInterval = 1000
)

// TraceRequest is the body of POST /v1/trace: one benchmark under one
// configuration, run with the full observability capture attached — a
// pipetrace ring of the last Window instructions, a structured event ring,
// and the interval sampler. Zero values get the defaults above; Scale and
// MaxInsts are clamped exactly like /v1/run.
type TraceRequest struct {
	Bench    string     `json:"bench"`
	Scale    int        `json:"scale,omitempty"`
	MaxInsts uint64     `json:"max_insts,omitempty"`
	Options  SimOptions `json:"options"`
	// Window is the pipetrace ring size: the response carries the *last*
	// Window dynamic instructions (0 = 256, capped at 4096).
	Window int `json:"window,omitempty"`
	// Interval is the sampler period in cycles (0 = the core default,
	// floored at 1000).
	Interval uint64 `json:"interval,omitempty"`
	// Events is the event-ring capacity (0 = 2048, capped at 16384).
	Events int `json:"events,omitempty"`
}

// TraceWindow is the pipetrace portion of a TraceResponse: the last Max
// dynamic instructions, oldest-first, plus how many older records the
// ring overwrote to keep them.
type TraceWindow struct {
	Max       int                  `json:"max"`
	Overwrote uint64               `json:"overwrote,omitempty"`
	Insts     []core.PipeEventJSON `json:"insts"`
}

// TraceSeries is the interval-sampler portion of a TraceResponse.
type TraceSeries struct {
	Interval uint64      `json:"interval"`
	Fields   []string    `json:"fields"`
	Rows     [][]float64 `json:"rows"`
}

// TraceResponse is the body of a successful POST /v1/trace: the same
// stats/output as /v1/run plus the three observability payloads the
// dashboard renders. Identical requests get byte-identical responses —
// the marshaled body is what the result cache stores.
type TraceResponse struct {
	Bench    string   `json:"bench"`
	Scale    int      `json:"scale"`
	MaxInsts uint64   `json:"max_insts,omitempty"`
	Stats    SimStats `json:"stats"`
	Output   string   `json:"output"`
	ExitCode int      `json:"exit_code"`
	// CyclesSkipped is how many of the run's cycles the quiescence-aware
	// skipper fast-forwarded (simulator performance only; the stats above
	// are identical with skipping off).
	CyclesSkipped uint64           `json:"cycles_skipped"`
	Window        TraceWindow      `json:"window"`
	Events        obs.EventLogJSON `json:"events"`
	Series        TraceSeries      `json:"series"`
}

// clampTrace applies the capture bounds to a request's knobs.
func clampTrace(req TraceRequest) traceParams {
	tp := traceParams{window: req.Window, interval: req.Interval, events: req.Events}
	if tp.window <= 0 {
		tp.window = DefaultTraceWindow
	}
	if tp.window > MaxTraceWindow {
		tp.window = MaxTraceWindow
	}
	if tp.interval == 0 {
		tp.interval = core.DefaultMetricsInterval
	}
	if tp.interval < MinTraceInterval {
		tp.interval = MinTraceInterval
	}
	if tp.events <= 0 {
		tp.events = DefaultTraceEvents
	}
	if tp.events > MaxTraceEvents {
		tp.events = MaxTraceEvents
	}
	return tp
}

// TraceKey is the full identity of one trace result: the run identity
// (bench|scale|max_insts|config) extended with the capture bounds, since
// a different window or sampling period is a different payload. The
// coordinator routes /v1/trace by the same key so repeated traces land on
// the worker that already has the machine and the cache entry. The
// request's knobs are clamped with the given server-side bounds first —
// callers that don't know the server's clamps (the coordinator) pass the
// raw request and still agree on a routing key.
func TraceKey(req TraceRequest, scale int, maxInsts uint64) (string, error) {
	cfg, err := req.Options.Config()
	if err != nil {
		return "", err
	}
	tp := clampTrace(req)
	return fmt.Sprintf("trace|%s|%d|%d|%d|%d|%d|%s",
		req.Bench, scale, maxInsts, tp.window, tp.interval, tp.events, cfg.Key()), nil
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		s.metrics.Inc("server.rejected")
		writeDraining(w)
		return
	}
	defer s.end()
	s.metrics.Inc("server.trace.requests")

	var req TraceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if _, err := workload.Get(req.Bench); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := req.Options.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale, maxInsts := s.clamp(req.Scale, req.MaxInsts)
	tp := clampTrace(req)
	key, _ := TraceKey(req, scale, maxInsts)

	s.mu.Lock()
	body, hit := s.cache.get(key)
	s.mu.Unlock()
	if hit {
		s.metrics.Inc("server.cache.hits")
		writeJSONBody(w, "HIT", body)
		return
	}
	s.metrics.Inc("server.cache.misses")

	if body, ok := s.storeGet(key); ok {
		writeJSONBody(w, "STORE", body)
		return
	}

	body, err, shared := s.flight.do(key, func() ([]byte, error) {
		ctx, cancel := s.simContext(r.Context())
		defer cancel()
		s.metrics.AddGauge("server.sims.inflight", 1)
		start := time.Now()
		res := s.pool.trace(ctx, req.Bench, scale, maxInsts, cfg, tp)
		s.metrics.AddGauge("server.sims.inflight", -1)
		s.metrics.Observe("server.run.seconds", runSecondsBounds, time.Since(start).Seconds())
		if res.err != nil {
			return nil, res.err
		}
		series := res.obs.Series().JSON()
		resp := TraceResponse{
			Bench:         req.Bench,
			Scale:         scale,
			MaxInsts:      maxInsts,
			Stats:         statsFrom(cfg, res.stats),
			Output:        res.output,
			ExitCode:      res.exitCode,
			CyclesSkipped: res.skipped,
			Window: TraceWindow{
				Max:       tp.window,
				Overwrote: res.tracer.Overwrote(),
				Insts:     res.tracer.JSON(),
			},
			Events: res.obs.Events().JSON(),
			Series: TraceSeries{
				Interval: res.obs.Interval(),
				Fields:   series.Fields,
				Rows:     series.Rows,
			},
		}
		b, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		b = append(b, '\n')
		s.mu.Lock()
		evicted := s.cache.add(key, b)
		s.mu.Unlock()
		if evicted > 0 {
			s.metrics.Add("server.cache.evictions", uint64(evicted))
		}
		s.storePut(key, b)
		return b, nil
	})
	if err != nil {
		s.metrics.Inc("server.trace.errors")
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			code = 499 // client closed request
		}
		writeError(w, code, err.Error())
		return
	}
	status := "MISS"
	if shared {
		s.metrics.Inc("server.coalesced")
		status = "COALESCED"
	}
	writeJSONBody(w, status, body)
}
