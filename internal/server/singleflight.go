package server

import "sync"

// flightGroup coalesces duplicate in-flight work: while one goroutine is
// computing the value for a key, later callers for the same key block and
// share its result instead of repeating the simulation. It is a minimal
// in-tree equivalent of x/sync/singleflight (no external dependency).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

// do invokes fn once per key at a time. The boolean reports whether this
// caller shared another caller's in-flight result (true) or ran fn itself
// (false). Results are not retained after the last sharer returns — the
// LRU cache is the durable layer; singleflight only spans the in-flight
// window.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (body []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.body, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, c.err, false
}
