package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"abc-123_X.y", "abc-123_X.y"},
		{"", ""},
		{"has space", ""},
		{"newline\nattack", ""},
		{"quote\"attack", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
	}
	for _, c := range cases {
		if got := sanitizeRequestID(c.in); got != c.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNewRequestID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !hex16.MatchString(a) || !hex16.MatchString(b) {
		t.Fatalf("ids %q / %q are not 16 hex digits", a, b)
	}
	if a == b {
		t.Error("two ids collided")
	}
}

func TestWithRequestID(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(func() { s.Drain(t.Context()) })
	var logBuf bytes.Buffer
	h := WithRequestID(s.Handler(), &logBuf)

	// A valid inbound id is echoed on the response and the error body.
	r := httptest.NewRequest("POST", "/v1/run", strings.NewReader(`{"bench":"no-such"}`))
	r.Header.Set(RequestIDHeader, "upstream-7")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if got := w.Header().Get(RequestIDHeader); got != "upstream-7" {
		t.Errorf("response id = %q, want the inbound one", got)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != "upstream-7" {
		t.Errorf("error body request_id = %q, want upstream-7", er.RequestID)
	}
	if w.Code != http.StatusBadRequest {
		t.Errorf("status = %d", w.Code)
	}

	// A hostile inbound id (header-injection shape) is replaced.
	r = httptest.NewRequest("GET", "/healthz", nil)
	r.Header.Set(RequestIDHeader, "evil\r\nSet-Cookie: x")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	got := w.Header().Get(RequestIDHeader)
	if got == "" || strings.Contains(got, "evil") {
		t.Errorf("hostile id not replaced: %q", got)
	}

	// Both requests produced parseable access-log lines carrying the id.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var first struct {
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
		Bytes     int    `json:"bytes"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("unparseable access line %q: %v", lines[0], err)
	}
	if first.RequestID != "upstream-7" || first.Path != "/v1/run" ||
		first.Status != http.StatusBadRequest || first.Bytes == 0 {
		t.Errorf("access line = %+v", first)
	}
}
