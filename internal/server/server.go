package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/harness"
	"github.com/vpir-sim/vpir/internal/obs"
	"github.com/vpir-sim/vpir/internal/resultstore"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Defaults for the Config zero value.
const (
	DefaultCacheEntries  = 1024
	DefaultTimeout       = 2 * time.Minute
	DefaultMaxScale      = 16
	DefaultMaxSweepCells = 256
	DefaultHeartbeat     = 10 * time.Second
	maxRequestBody       = 1 << 20
)

// HeartbeatLine is the NDJSON comment line periodically written into a
// sweep stream while a cell is still computing, so idle proxies and load
// balancers don't sever long-running sweeps. Comment lines start with '#';
// NDJSON consumers must skip them (the coordinator additionally treats a
// heartbeat gap as a straggler signal).
const HeartbeatLine = "# heartbeat\n"

// retryAfterSeconds is the Retry-After hint on 503 responses while
// draining: long enough for a load balancer to fail over, short enough
// that a restarted instance picks traffic back up promptly.
const retryAfterSeconds = "5"

// Config tunes the simulation server. The zero value gets sensible
// defaults (GOMAXPROCS workers, a 1024-entry cache, a 2-minute
// per-simulation wall-clock bound).
type Config struct {
	// Workers is the run pool size (0 = GOMAXPROCS). The pool bounds how
	// many simulations execute concurrently regardless of request volume.
	Workers int
	// CacheEntries bounds the LRU result cache (0 = the 1024 default;
	// negative disables caching).
	CacheEntries int
	// Timeout bounds each simulation's wall-clock time (0 = the 2-minute
	// default; negative disables the bound).
	Timeout time.Duration
	// MaxInsts caps the per-run dynamic instruction count a request may
	// ask for; requests above it (or asking for unbounded runs) are
	// clamped, and the effective value is echoed in the response.
	// 0 = no cap.
	MaxInsts uint64
	// MaxScale caps the workload scale factor a request may ask for
	// (0 = the default 16).
	MaxScale int
	// SweepParallelism is the harness worker count for each sweep request
	// (0 = GOMAXPROCS).
	SweepParallelism int
	// MaxSweepCells bounds benches × configs per sweep request
	// (0 = the default 256).
	MaxSweepCells int
	// Heartbeat is the sweep-stream heartbeat interval (0 = the 10 s
	// default; negative disables heartbeats).
	Heartbeat time.Duration
	// Store, when non-nil, is the durable content-addressed result store
	// backing the in-memory LRU: /v1/run misses consult it before
	// simulating (X-Cache: STORE) and computed results are written through,
	// so a restarted server warms itself from history.
	Store *resultstore.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxScale <= 0 {
		c.MaxScale = DefaultMaxScale
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = DefaultMaxSweepCells
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	return c
}

// Server is the simulation service: a bounded run pool, a singleflight
// layer that coalesces duplicate in-flight requests, a size-bounded LRU
// result cache, and the HTTP handlers that expose them. Create one with
// New, mount Handler, and Drain it on shutdown.
type Server struct {
	cfg     Config
	pool    *pool
	metrics *obs.Shared
	flight  flightGroup

	mu    sync.Mutex // guards cache
	cache *lruCache

	stateMu   sync.Mutex // guards draining + inflight admission
	draining  bool
	inflight  sync.WaitGroup
	poolClose sync.Once
}

// New builds a Server ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		pool:    newPool(cfg.Workers),
		metrics: obs.NewShared(),
		cache:   newLRU(cfg.CacheEntries),
	}
}

// Metrics exposes the server's instrument registry (requests, cache
// hit/miss/eviction counters, the in-flight gauge); /metrics renders it in
// Prometheus text format.
func (s *Server) Metrics() *obs.Shared { return s.metrics }

// Handler returns the API mux:
//
//	POST /v1/run        one simulation (cached, coalesced)
//	POST /v1/trace      one simulation with pipetrace + events + series
//	POST /v1/sweep      benches × configs, streamed as NDJSON
//	GET  /v1/benchmarks the built-in workloads
//	GET  /v1/ui/        the embedded analysis dashboard
//	GET  /healthz       "ok", or 503 "draining" during shutdown
//	GET  /metrics       Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.recovered(s.handleRun))
	mux.HandleFunc("POST /v1/trace", s.recovered(s.handleTrace))
	mux.HandleFunc("POST /v1/sweep", s.recovered(s.handleSweep))
	mux.HandleFunc("GET /v1/benchmarks", s.recovered(s.handleBenchmarks))
	mux.Handle("GET /v1/ui/", UIHandler())
	mux.HandleFunc("GET /v1/ui", redirectUI)
	mux.HandleFunc("GET /{$}", redirectUI)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Drain moves the server to its terminal state: new run/sweep requests are
// rejected with 503, in-flight ones finish, then the worker pool is torn
// down. It returns ctx's error if the deadline passes while requests are
// still in flight (the pool is then left running; Drain may be retried).
// Draining is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.stateMu.Lock()
	s.draining = true
	s.stateMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.poolClose.Do(s.pool.close)
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// begin admits one request unless the server is draining; admission and
// the draining flag share a mutex so Drain's WaitGroup.Wait can never miss
// a request it should have waited for.
func (s *Server) begin() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) end() { s.inflight.Done() }

// recovered wraps a handler with panic-to-500 conversion so a bug in one
// request can never take the whole service down.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.Inc("server.panics")
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		h(w, r)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// WithRequestID stamps the header before handlers run; echoing it in the
	// body lets a client error report be joined against the access log.
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg, RequestID: w.Header().Get(RequestIDHeader)})
}

// writeDraining is the 503 rejection while draining; Retry-After tells
// well-behaved clients and load balancers when to try again instead of
// abandoning the fleet member forever.
func writeDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeError(w, http.StatusServiceUnavailable, "server is draining")
}

// clamp applies the server's scale and instruction-count bounds to a
// request, returning the effective values (which also feed the cache key,
// so a clamped request and an explicit request for the effective values
// share one cache entry).
func (s *Server) clamp(scale int, maxInsts uint64) (int, uint64) {
	if scale < 1 {
		scale = 1
	}
	if scale > s.cfg.MaxScale {
		scale = s.cfg.MaxScale
	}
	if s.cfg.MaxInsts > 0 && (maxInsts == 0 || maxInsts > s.cfg.MaxInsts) {
		maxInsts = s.cfg.MaxInsts
	}
	return scale, maxInsts
}

// simContext derives the per-simulation context from the request's.
func (s *Server) simContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(ctx, s.cfg.Timeout)
	}
	return ctx, func() {}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		s.metrics.Inc("server.rejected")
		writeDraining(w)
		return
	}
	defer s.end()
	s.metrics.Inc("server.run.requests")

	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if _, err := workload.Get(req.Bench); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := req.Options.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Sample != nil {
		if err := req.Sample.Validate(false); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	scale, maxInsts := s.clamp(req.Scale, req.MaxInsts)
	// Sampled requests extend the key with the plan; non-sampled keys (and
	// the store entries they address) are byte-identical to before sampling
	// existed, so X-Cache semantics are unchanged for existing clients.
	key := fmt.Sprintf("%s|%d|%d|%s%s", req.Bench, scale, maxInsts, cfg.Key(), req.Sample.KeySuffix())

	s.mu.Lock()
	body, hit := s.cache.get(key)
	s.mu.Unlock()
	if hit {
		s.metrics.Inc("server.cache.hits")
		writeJSONBody(w, "HIT", body)
		return
	}
	s.metrics.Inc("server.cache.misses")

	// Behind the LRU sits the durable store: a restarted server (or a cold
	// fleet member sharing history) serves repeats from disk instead of
	// resimulating. Store reads are checksum-verified; a corrupt entry is
	// quarantined inside the store and comes back as a plain miss.
	if body, ok := s.storeGet(key); ok {
		writeJSONBody(w, "STORE", body)
		return
	}

	body, err, shared := s.flight.do(key, func() ([]byte, error) {
		ctx, cancel := s.simContext(r.Context())
		defer cancel()
		s.metrics.AddGauge("server.sims.inflight", 1)
		start := time.Now()
		var resp RunResponse
		if req.Sample != nil {
			// Sampled runs go to a per-request harness runner (the pattern
			// handleSweep uses) so the plan's intervals fan out in parallel
			// instead of holding one pool worker for the whole program.
			sum, err := s.runSampled(ctx, req.Bench, scale, maxInsts, cfg, req.Sample)
			s.metrics.AddGauge("server.sims.inflight", -1)
			s.metrics.Observe("server.run.seconds", runSecondsBounds, time.Since(start).Seconds())
			if err != nil {
				return nil, err
			}
			resp = RunResponse{
				Bench:    req.Bench,
				Scale:    scale,
				MaxInsts: maxInsts,
				Stats:    statsFrom(cfg, sum.Stats),
				Output:   sum.Output,
				ExitCode: sum.ExitCode,
				Sample:   sampleResultFrom(sum),
			}
		} else {
			res := s.pool.run(ctx, req.Bench, scale, maxInsts, cfg)
			s.metrics.AddGauge("server.sims.inflight", -1)
			s.metrics.Observe("server.run.seconds", runSecondsBounds, time.Since(start).Seconds())
			if res.err != nil {
				return nil, res.err
			}
			resp = RunResponse{
				Bench:    req.Bench,
				Scale:    scale,
				MaxInsts: maxInsts,
				Stats:    statsFrom(cfg, res.stats),
				Output:   res.output,
				ExitCode: res.exitCode,
			}
		}
		b, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		b = append(b, '\n')
		s.mu.Lock()
		evicted := s.cache.add(key, b)
		s.mu.Unlock()
		if evicted > 0 {
			s.metrics.Add("server.cache.evictions", uint64(evicted))
		}
		s.storePut(key, b)
		return b, nil
	})
	if err != nil {
		s.metrics.Inc("server.run.errors")
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			code = 499 // client closed request
		}
		writeError(w, code, err.Error())
		return
	}
	status := "MISS"
	if shared {
		s.metrics.Inc("server.coalesced")
		status = "COALESCED"
	}
	writeJSONBody(w, status, body)
}

// runSecondsBounds buckets simulation wall-clock times.
var runSecondsBounds = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// storeGet consults the durable store (if configured) and promotes a hit
// into the LRU so the disk is touched at most once per key per process.
func (s *Server) storeGet(key string) ([]byte, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	body, ok, err := s.cfg.Store.Get(key)
	if err != nil {
		s.metrics.Inc("server.store.errors")
		return nil, false
	}
	if !ok {
		s.metrics.Inc("server.store.misses")
		return nil, false
	}
	s.metrics.Inc("server.store.hits")
	s.mu.Lock()
	evicted := s.cache.add(key, body)
	s.mu.Unlock()
	if evicted > 0 {
		s.metrics.Add("server.cache.evictions", uint64(evicted))
	}
	return body, true
}

// storePut writes a computed result through to the durable store. Write
// failures are counted, not fatal: durability is an optimization, the
// in-memory result is already correct.
func (s *Server) storePut(key string, body []byte) {
	if s.cfg.Store == nil {
		return
	}
	if err := s.cfg.Store.Put(key, body); err != nil {
		s.metrics.Inc("server.store.errors")
		return
	}
	s.metrics.Inc("server.store.puts")
}

func writeJSONBody(w http.ResponseWriter, cacheStatus string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus)
	w.Write(body)
}

// ResolveCells expands a SweepRequest into its validated cell list —
// either the explicit Cells (the coordinator's partition form) or the
// benches × options cross product in deterministic bench-major order —
// returning each cell's spec alongside its resolved machine configuration.
// The two request forms are mutually exclusive. The coordinator shares
// this resolution so a distributed sweep names exactly the cells a
// single-machine sweep would.
//
// A request-level Sample block is normalized here into each resolved cell
// (explicit cells with their own block keep it), so samplers downstream —
// the local runner or a remote worker the coordinator hands a cell to —
// see the same per-cell plan either way.
func ResolveCells(req SweepRequest) ([]SweepCellSpec, []core.Config, error) {
	if req.Sample != nil {
		if err := req.Sample.Validate(false); err != nil {
			return nil, nil, err
		}
	}
	if len(req.Cells) > 0 {
		if len(req.Benches) > 0 || len(req.Options) > 0 {
			return nil, nil, errors.New("sweep takes either cells or benches×options, not both")
		}
		cfgs := make([]core.Config, len(req.Cells))
		for i, c := range req.Cells {
			if _, err := workload.Get(c.Bench); err != nil {
				return nil, nil, err
			}
			cfg, err := c.Options.Config()
			if err != nil {
				return nil, nil, err
			}
			if c.Sample != nil {
				// Interval indexes are legal here: cells are how a stitcher
				// (the coordinator, or any client) names one interval.
				if err := c.Sample.Validate(true); err != nil {
					return nil, nil, fmt.Errorf("cell %d: %w", i, err)
				}
			} else if req.Sample != nil {
				req.Cells[i].Sample = req.Sample
			}
			cfgs[i] = cfg
		}
		return req.Cells, cfgs, nil
	}
	benches := req.Benches
	if len(benches) == 0 {
		benches = workload.Names()
	}
	for _, b := range benches {
		if _, err := workload.Get(b); err != nil {
			return nil, nil, err
		}
	}
	if len(req.Options) == 0 {
		return nil, nil, errors.New("sweep needs at least one configuration in options")
	}
	optCfgs := make([]core.Config, len(req.Options))
	for i, o := range req.Options {
		cfg, err := o.Config()
		if err != nil {
			return nil, nil, err
		}
		optCfgs[i] = cfg
	}
	specs := make([]SweepCellSpec, 0, len(benches)*len(req.Options))
	cfgs := make([]core.Config, 0, len(benches)*len(req.Options))
	for _, b := range benches {
		for i, o := range req.Options {
			specs = append(specs, SweepCellSpec{Bench: b, Options: o, Sample: req.Sample})
			cfgs = append(cfgs, optCfgs[i])
		}
	}
	return specs, cfgs, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		s.metrics.Inc("server.rejected")
		writeDraining(w)
		return
	}
	defer s.end()
	s.metrics.Inc("server.sweep.requests")

	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	specs, cfgs, err := ResolveCells(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(specs) > s.cfg.MaxSweepCells {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep of %d cells exceeds the server bound of %d", len(specs), s.cfg.MaxSweepCells))
		return
	}
	cells := make([]harness.SweepCell, len(specs))
	for i := range specs {
		cells[i] = harness.SweepCell{Bench: specs[i].Bench, Cfg: cfgs[i], Sample: specs[i].Sample.spec()}
	}

	scale, maxInsts := s.clamp(req.Scale, req.MaxInsts)
	s.metrics.Add("server.sweep.cells", uint64(len(cells)))

	// One Runner per request: its unbounded internal cache lives exactly
	// as long as the sweep, and its worker pool is the batching layer —
	// cells share per-worker machines via Machine.Reset.
	runner := harness.NewRunner()
	runner.Scale = scale
	runner.MaxInsts = maxInsts
	runner.Parallel = true
	runner.Parallelism = s.cfg.SweepParallelism
	if s.cfg.Timeout > 0 {
		runner.Timeout = s.cfg.Timeout
	}
	ready := make([]chan harness.SweepResult, len(cells))
	for i := range ready {
		ready[i] = make(chan harness.SweepResult, 1)
	}
	runner.OnResult = func(i int, res harness.SweepResult) { ready[i] <- res }

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		runner.Sweep(ctx, cells)
	}()

	// Stream one NDJSON line per cell, in deterministic cell order, each
	// flushed as soon as its result (or error) is in. Per-cell failures
	// never abort the stream — the Done line carries the failure total,
	// the streaming analogue of RunAll's errors.Join contract. While a
	// cell is still computing, heartbeat comment lines keep idle
	// proxies/load balancers from severing the connection (and tell the
	// coordinator the worker is alive, just slow).
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	var tick <-chan time.Time
	if s.cfg.Heartbeat > 0 {
		ticker := time.NewTicker(s.cfg.Heartbeat)
		defer ticker.Stop()
		tick = ticker.C
	}
	// abort stops the sweep and drains every not-yet-consumed cell so the
	// runner's workers can exit; the derived ctx reaches them at their
	// next deadline check, so abandoned requests stop consuming
	// simulation slots promptly.
	abort := func(from int) {
		cancel()
		s.metrics.Inc("server.sweep.aborted")
		for j := from; j < len(cells); j++ {
			<-ready[j]
		}
	}
	clientGone := r.Context().Done()
	failed := 0
stream:
	for i := range cells {
		for {
			select {
			case res := <-ready[i]:
				line := SweepLine{Index: i, Bench: res.Bench, Config: res.Cfg.Name()}
				if res.Err != nil {
					failed++
					line.Error = res.Err.Error()
					line.Attempts = res.Attempts
				} else {
					st := statsFrom(res.Cfg, res.Stats)
					line.Stats = &st
					if res.Interval != nil || res.Summary != nil {
						// Sampled cells additionally carry their raw counters
						// (stitching needs counters, SimStats has only derived
						// metrics), the interval measurement or the stitched
						// summary, and the retry audit. Plain cells keep their
						// pre-sampling line shape byte for byte.
						raw := res.Stats
						line.Raw = &raw
						line.Interval = res.Interval
						line.Sample = sampleResultFrom(res.Summary)
						line.Attempts = res.Attempts
					}
				}
				if err := enc.Encode(line); err != nil {
					abort(i + 1)
					break stream
				}
				flush()
			case <-tick:
				if _, err := io.WriteString(w, HeartbeatLine); err != nil {
					abort(i)
					break stream
				}
				s.metrics.Inc("server.sweep.heartbeats")
				flush()
				continue
			case <-clientGone:
				// The client hung up between lines; without this arm the
				// handler would only notice at the next write, holding
				// pool slots for a request nobody is reading.
				abort(i)
				break stream
			}
			break
		}
	}
	<-sweepDone
	if failed > 0 {
		s.metrics.Add("server.sweep.failed", uint64(failed))
	}
	enc.Encode(SweepLine{Done: true, Cells: len(cells), Failed: failed})
	flush()
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	WriteBenchmarks(w)
}

// WriteBenchmarks writes the GET /v1/benchmarks response body: the
// registered workloads, in registry order. The workload list is static
// process-wide data, so the coordinator serves it directly with this
// helper instead of proxying to a backend.
func WriteBenchmarks(w http.ResponseWriter) {
	out := make([]BenchmarkEntry, 0, len(workload.Names()))
	for _, n := range workload.Names() {
		wl, err := workload.Get(n)
		if err != nil {
			continue
		}
		out = append(out, BenchmarkEntry{Name: wl.Name, Desc: wl.Desc})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.stateMu.Lock()
	draining := s.draining
	s.stateMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// cacheLen reports the current result-cache entry count.
func (s *Server) cacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Set("server.cache.entries", float64(s.cacheLen()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}
