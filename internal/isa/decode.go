package isa

// Inst is a decoded instruction. Operands are expressed in the unified
// register space (see Reg); Src1/Src2/Dest are NoReg when absent. Writes to
// r0 are stripped at decode (Dest becomes NoReg) so the rest of the machine
// never needs the "r0 is hardwired" special case on the destination side.
type Inst struct {
	Raw   uint32
	Op    Op
	Src1  Reg
	Src2  Reg
	Dest  Reg
	Shamt uint8
	Imm   int32  // sign- or zero-extended immediate, per the operation
	Tgt   uint32 // absolute target for J/JAL (target<<2)
}

// BranchTarget returns the target of a PC-relative branch located at pc.
func (in *Inst) BranchTarget(pc uint32) uint32 {
	return pc + 4 + uint32(in.Imm)<<2
}

// JumpTarget returns the target of a direct jump (J/JAL).
func (in *Inst) JumpTarget() uint32 { return in.Tgt }

// Major opcode field values.
const (
	opcSpecial = 0
	opcRegimm  = 1
	opcJ       = 2
	opcJAL     = 3
	opcBEQ     = 4
	opcBNE     = 5
	opcBLEZ    = 6
	opcBGTZ    = 7
	opcADDIU   = 9
	opcSLTI    = 10
	opcSLTIU   = 11
	opcANDI    = 12
	opcORI     = 13
	opcXORI    = 14
	opcLUI     = 15
	opcCOP1    = 17
	opcLB      = 32
	opcLH      = 33
	opcLW      = 35
	opcLBU     = 36
	opcLHU     = 37
	opcSB      = 40
	opcSH      = 41
	opcSW      = 43
	opcLWC1    = 49
	opcSWC1    = 57
)

// SPECIAL funct field values.
const (
	fnSLL     = 0
	fnSRL     = 2
	fnSRA     = 3
	fnSLLV    = 4
	fnSRLV    = 6
	fnSRAV    = 7
	fnJR      = 8
	fnJALR    = 9
	fnSYSCALL = 12
	fnBREAK   = 13
	fnMFHI    = 16
	fnMFLO    = 18
	fnMULT    = 24
	fnMULTU   = 25
	fnDIV     = 26
	fnDIVU    = 27
	fnADDU    = 33
	fnSUBU    = 35
	fnAND     = 36
	fnOR      = 37
	fnXOR     = 38
	fnNOR     = 39
	fnSLT     = 42
	fnSLTU    = 43
)

// COP1 rs-field selectors and S-format funct values.
const (
	copMFC1 = 0
	copMTC1 = 4
	copBC   = 8
	copFmtS = 16
	copFmtW = 20

	fpADD  = 0
	fpSUB  = 1
	fpMUL  = 2
	fpDIV  = 3
	fpSQRT = 4
	fpABS  = 5
	fpMOV  = 6
	fpNEG  = 7
	fpCVTS = 32 // in W format: cvt.s.w
	fpCVTW = 36 // in S format: cvt.w.s
	fpCEQ  = 50
	fpCLT  = 60
	fpCLE  = 62
)

func signExt16(v uint32) int32 { return int32(int16(v & 0xFFFF)) }

// dest strips writes to r0.
func dest(r Reg) Reg {
	if r == RegZero {
		return NoReg
	}
	return r
}

// Decode decodes a raw instruction word. It never fails: unrecognised
// encodings decode to OpInvalid, which the emulator treats as a fault.
func Decode(raw uint32) Inst {
	op := raw >> 26
	rs := Reg(raw >> 21 & 31)
	rt := Reg(raw >> 16 & 31)
	rd := Reg(raw >> 11 & 31)
	shamt := uint8(raw >> 6 & 31)
	imm := raw & 0xFFFF

	in := Inst{Raw: raw, Op: OpInvalid, Src1: NoReg, Src2: NoReg, Dest: NoReg}

	switch op {
	case opcSpecial:
		switch raw & 63 {
		case fnSLL:
			in.Op, in.Src1, in.Dest, in.Shamt = OpSLL, rt, dest(rd), shamt
		case fnSRL:
			in.Op, in.Src1, in.Dest, in.Shamt = OpSRL, rt, dest(rd), shamt
		case fnSRA:
			in.Op, in.Src1, in.Dest, in.Shamt = OpSRA, rt, dest(rd), shamt
		case fnSLLV:
			in.Op, in.Src1, in.Src2, in.Dest = OpSLLV, rt, rs, dest(rd)
		case fnSRLV:
			in.Op, in.Src1, in.Src2, in.Dest = OpSRLV, rt, rs, dest(rd)
		case fnSRAV:
			in.Op, in.Src1, in.Src2, in.Dest = OpSRAV, rt, rs, dest(rd)
		case fnJR:
			in.Op, in.Src1 = OpJR, rs
		case fnJALR:
			in.Op, in.Src1, in.Dest = OpJALR, rs, dest(rd)
		case fnSYSCALL:
			in.Op, in.Src1, in.Src2 = OpSYSCALL, RegV0, RegA0
		case fnBREAK:
			in.Op = OpBREAK
		case fnMFHI:
			in.Op, in.Src1, in.Dest = OpMFHI, RegHILO, dest(rd)
		case fnMFLO:
			in.Op, in.Src1, in.Dest = OpMFLO, RegHILO, dest(rd)
		case fnMULT:
			in.Op, in.Src1, in.Src2, in.Dest = OpMULT, rs, rt, RegHILO
		case fnMULTU:
			in.Op, in.Src1, in.Src2, in.Dest = OpMULTU, rs, rt, RegHILO
		case fnDIV:
			in.Op, in.Src1, in.Src2, in.Dest = OpDIV, rs, rt, RegHILO
		case fnDIVU:
			in.Op, in.Src1, in.Src2, in.Dest = OpDIVU, rs, rt, RegHILO
		case fnADDU:
			in.Op, in.Src1, in.Src2, in.Dest = OpADDU, rs, rt, dest(rd)
		case fnSUBU:
			in.Op, in.Src1, in.Src2, in.Dest = OpSUBU, rs, rt, dest(rd)
		case fnAND:
			in.Op, in.Src1, in.Src2, in.Dest = OpAND, rs, rt, dest(rd)
		case fnOR:
			in.Op, in.Src1, in.Src2, in.Dest = OpOR, rs, rt, dest(rd)
		case fnXOR:
			in.Op, in.Src1, in.Src2, in.Dest = OpXOR, rs, rt, dest(rd)
		case fnNOR:
			in.Op, in.Src1, in.Src2, in.Dest = OpNOR, rs, rt, dest(rd)
		case fnSLT:
			in.Op, in.Src1, in.Src2, in.Dest = OpSLT, rs, rt, dest(rd)
		case fnSLTU:
			in.Op, in.Src1, in.Src2, in.Dest = OpSLTU, rs, rt, dest(rd)
		}

	case opcRegimm:
		switch rt {
		case 0:
			in.Op, in.Src1, in.Imm = OpBLTZ, rs, signExt16(imm)
		case 1:
			in.Op, in.Src1, in.Imm = OpBGEZ, rs, signExt16(imm)
		}

	case opcJ:
		in.Op, in.Tgt = OpJ, raw<<6>>6<<2
	case opcJAL:
		in.Op, in.Tgt, in.Dest = OpJAL, raw<<6>>6<<2, RegRA
	case opcBEQ:
		in.Op, in.Src1, in.Src2, in.Imm = OpBEQ, rs, rt, signExt16(imm)
	case opcBNE:
		in.Op, in.Src1, in.Src2, in.Imm = OpBNE, rs, rt, signExt16(imm)
	case opcBLEZ:
		in.Op, in.Src1, in.Imm = OpBLEZ, rs, signExt16(imm)
	case opcBGTZ:
		in.Op, in.Src1, in.Imm = OpBGTZ, rs, signExt16(imm)

	case opcADDIU:
		in.Op, in.Src1, in.Dest, in.Imm = OpADDIU, rs, dest(rt), signExt16(imm)
	case opcSLTI:
		in.Op, in.Src1, in.Dest, in.Imm = OpSLTI, rs, dest(rt), signExt16(imm)
	case opcSLTIU:
		in.Op, in.Src1, in.Dest, in.Imm = OpSLTIU, rs, dest(rt), signExt16(imm)
	case opcANDI:
		in.Op, in.Src1, in.Dest, in.Imm = OpANDI, rs, dest(rt), int32(imm)
	case opcORI:
		in.Op, in.Src1, in.Dest, in.Imm = OpORI, rs, dest(rt), int32(imm)
	case opcXORI:
		in.Op, in.Src1, in.Dest, in.Imm = OpXORI, rs, dest(rt), int32(imm)
	case opcLUI:
		in.Op, in.Dest, in.Imm = OpLUI, dest(rt), int32(imm)

	case opcCOP1:
		// COP1 layout: op | fmt(rs field) | ft(rt field) | fs(rd field) |
		// fd(shamt field) | funct.
		switch rs {
		case copMFC1:
			in.Op, in.Src1, in.Dest = OpMFC1, FPR(int(rd)), dest(rt)
		case copMTC1:
			in.Op, in.Src1, in.Dest = OpMTC1, rt, FPR(int(rd))
		case copBC:
			if rt&1 == 1 {
				in.Op = OpBC1T
			} else {
				in.Op = OpBC1F
			}
			in.Src1, in.Imm = RegFCC, signExt16(imm)
		case copFmtS:
			fsr := FPR(int(rd))
			ftr := FPR(int(rt))
			fdr := FPR(int(shamt))
			switch raw & 63 {
			case fpADD:
				in.Op, in.Src1, in.Src2, in.Dest = OpADDS, fsr, ftr, fdr
			case fpSUB:
				in.Op, in.Src1, in.Src2, in.Dest = OpSUBS, fsr, ftr, fdr
			case fpMUL:
				in.Op, in.Src1, in.Src2, in.Dest = OpMULS, fsr, ftr, fdr
			case fpDIV:
				in.Op, in.Src1, in.Src2, in.Dest = OpDIVS, fsr, ftr, fdr
			case fpSQRT:
				in.Op, in.Src1, in.Dest = OpSQRTS, fsr, fdr
			case fpABS:
				in.Op, in.Src1, in.Dest = OpABSS, fsr, fdr
			case fpNEG:
				in.Op, in.Src1, in.Dest = OpNEGS, fsr, fdr
			case fpMOV:
				in.Op, in.Src1, in.Dest = OpMOVS, fsr, fdr
			case fpCVTW:
				in.Op, in.Src1, in.Dest = OpCVTWS, fsr, fdr
			case fpCEQ:
				in.Op, in.Src1, in.Src2, in.Dest = OpCEQS, fsr, ftr, RegFCC
			case fpCLT:
				in.Op, in.Src1, in.Src2, in.Dest = OpCLTS, fsr, ftr, RegFCC
			case fpCLE:
				in.Op, in.Src1, in.Src2, in.Dest = OpCLES, fsr, ftr, RegFCC
			}
		case copFmtW:
			if raw&63 == fpCVTS {
				in.Op, in.Src1, in.Dest = OpCVTSW, FPR(int(rd)), FPR(int(shamt))
			}
		}

	case opcLB:
		in.Op, in.Src1, in.Dest, in.Imm = OpLB, rs, dest(rt), signExt16(imm)
	case opcLBU:
		in.Op, in.Src1, in.Dest, in.Imm = OpLBU, rs, dest(rt), signExt16(imm)
	case opcLH:
		in.Op, in.Src1, in.Dest, in.Imm = OpLH, rs, dest(rt), signExt16(imm)
	case opcLHU:
		in.Op, in.Src1, in.Dest, in.Imm = OpLHU, rs, dest(rt), signExt16(imm)
	case opcLW:
		in.Op, in.Src1, in.Dest, in.Imm = OpLW, rs, dest(rt), signExt16(imm)
	case opcSB:
		in.Op, in.Src1, in.Src2, in.Imm = OpSB, rs, rt, signExt16(imm)
	case opcSH:
		in.Op, in.Src1, in.Src2, in.Imm = OpSH, rs, rt, signExt16(imm)
	case opcSW:
		in.Op, in.Src1, in.Src2, in.Imm = OpSW, rs, rt, signExt16(imm)
	case opcLWC1:
		in.Op, in.Src1, in.Dest, in.Imm = OpLWC1, rs, FPR(int(rt)), signExt16(imm)
	case opcSWC1:
		in.Op, in.Src1, in.Src2, in.Imm = OpSWC1, rs, FPR(int(rt)), signExt16(imm)
	}
	return in
}
