package isa

import "fmt"

// Encoding errors are programming errors in the assembler; Encode panics on
// out-of-range fields so they are caught in tests rather than silently
// producing wrong machine code.

func checkReg(r Reg, what string) uint32 {
	if r >= 32 && !IsFPR(r) {
		panic(fmt.Sprintf("isa: %s register %v not encodable", what, r))
	}
	if IsFPR(r) {
		return uint32(r - RegF0)
	}
	return uint32(r)
}

func encR(funct uint32, rs, rt, rd Reg, shamt uint8) uint32 {
	return checkReg(rs, "rs")<<21 | checkReg(rt, "rt")<<16 | checkReg(rd, "rd")<<11 |
		uint32(shamt&31)<<6 | funct
}

func encI(opc uint32, rs, rt Reg, imm int32) uint32 {
	if imm < -32768 || imm > 65535 {
		panic(fmt.Sprintf("isa: immediate %d out of 16-bit range", imm))
	}
	return opc<<26 | checkReg(rs, "rs")<<21 | checkReg(rt, "rt")<<16 | uint32(imm)&0xFFFF
}

func encJ(opc uint32, target uint32) uint32 {
	if target&3 != 0 {
		panic(fmt.Sprintf("isa: jump target %#x not word aligned", target))
	}
	return opc<<26 | (target>>2)&0x03FFFFFF
}

// opEncoding maps each Op back to its major opcode / funct fields.
type opEncoding struct {
	opc   uint32
	funct uint32 // SPECIAL funct or COP1 funct
	sel   uint32 // REGIMM rt field or COP1 rs field
}

var encTable = map[Op]opEncoding{
	OpSLL: {opcSpecial, fnSLL, 0}, OpSRL: {opcSpecial, fnSRL, 0}, OpSRA: {opcSpecial, fnSRA, 0},
	OpSLLV: {opcSpecial, fnSLLV, 0}, OpSRLV: {opcSpecial, fnSRLV, 0}, OpSRAV: {opcSpecial, fnSRAV, 0},
	OpJR: {opcSpecial, fnJR, 0}, OpJALR: {opcSpecial, fnJALR, 0},
	OpSYSCALL: {opcSpecial, fnSYSCALL, 0}, OpBREAK: {opcSpecial, fnBREAK, 0},
	OpMFHI: {opcSpecial, fnMFHI, 0}, OpMFLO: {opcSpecial, fnMFLO, 0},
	OpMULT: {opcSpecial, fnMULT, 0}, OpMULTU: {opcSpecial, fnMULTU, 0},
	OpDIV: {opcSpecial, fnDIV, 0}, OpDIVU: {opcSpecial, fnDIVU, 0},
	OpADDU: {opcSpecial, fnADDU, 0}, OpSUBU: {opcSpecial, fnSUBU, 0},
	OpAND: {opcSpecial, fnAND, 0}, OpOR: {opcSpecial, fnOR, 0},
	OpXOR: {opcSpecial, fnXOR, 0}, OpNOR: {opcSpecial, fnNOR, 0},
	OpSLT: {opcSpecial, fnSLT, 0}, OpSLTU: {opcSpecial, fnSLTU, 0},

	OpBLTZ: {opcRegimm, 0, 0}, OpBGEZ: {opcRegimm, 0, 1},
	OpJ: {opcJ, 0, 0}, OpJAL: {opcJAL, 0, 0},
	OpBEQ: {opcBEQ, 0, 0}, OpBNE: {opcBNE, 0, 0},
	OpBLEZ: {opcBLEZ, 0, 0}, OpBGTZ: {opcBGTZ, 0, 0},

	OpADDIU: {opcADDIU, 0, 0}, OpSLTI: {opcSLTI, 0, 0}, OpSLTIU: {opcSLTIU, 0, 0},
	OpANDI: {opcANDI, 0, 0}, OpORI: {opcORI, 0, 0}, OpXORI: {opcXORI, 0, 0},
	OpLUI: {opcLUI, 0, 0},

	OpLB: {opcLB, 0, 0}, OpLBU: {opcLBU, 0, 0}, OpLH: {opcLH, 0, 0}, OpLHU: {opcLHU, 0, 0},
	OpLW: {opcLW, 0, 0}, OpSB: {opcSB, 0, 0}, OpSH: {opcSH, 0, 0}, OpSW: {opcSW, 0, 0},
	OpLWC1: {opcLWC1, 0, 0}, OpSWC1: {opcSWC1, 0, 0},

	OpADDS: {opcCOP1, fpADD, copFmtS}, OpSUBS: {opcCOP1, fpSUB, copFmtS},
	OpMULS: {opcCOP1, fpMUL, copFmtS}, OpDIVS: {opcCOP1, fpDIV, copFmtS},
	OpSQRTS: {opcCOP1, fpSQRT, copFmtS}, OpABSS: {opcCOP1, fpABS, copFmtS},
	OpNEGS: {opcCOP1, fpNEG, copFmtS}, OpMOVS: {opcCOP1, fpMOV, copFmtS},
	OpCVTSW: {opcCOP1, fpCVTS, copFmtW}, OpCVTWS: {opcCOP1, fpCVTW, copFmtS},
	OpCEQS: {opcCOP1, fpCEQ, copFmtS}, OpCLTS: {opcCOP1, fpCLT, copFmtS},
	OpCLES: {opcCOP1, fpCLE, copFmtS},
	OpMTC1: {opcCOP1, 0, copMTC1}, OpMFC1: {opcCOP1, 0, copMFC1},
	OpBC1T: {opcCOP1, 0, copBC}, OpBC1F: {opcCOP1, 0, copBC},
}

// EncodeR encodes a three-register ALU operation: op rd, rs, rt.
func EncodeR(op Op, rd, rs, rt Reg) uint32 {
	e := encTable[op]
	return encR(e.funct, rs, rt, rd, 0)
}

// EncodeShift encodes a constant shift: op rd, rt, shamt.
func EncodeShift(op Op, rd, rt Reg, shamt uint8) uint32 {
	e := encTable[op]
	return encR(e.funct, RegZero, rt, rd, shamt)
}

// EncodeShiftV encodes a variable shift: op rd, rt, rs.
func EncodeShiftV(op Op, rd, rt, rs Reg) uint32 {
	e := encTable[op]
	return encR(e.funct, rs, rt, rd, 0)
}

// EncodeI encodes an immediate operation: op rt, rs, imm. Also used for
// memory operations (rt = data/dest, rs = base, imm = offset) and for
// two-register branches (rs, rt compared; imm = word offset).
func EncodeI(op Op, rt, rs Reg, imm int32) uint32 {
	e := encTable[op]
	if op == OpLWC1 || op == OpSWC1 {
		// rt field carries the FP register number.
		return e.opc<<26 | checkReg(rs, "rs")<<21 | uint32(rt-RegF0)<<16 | uint32(imm)&0xFFFF
	}
	return encI(e.opc, rs, rt, imm)
}

// EncodeBr1 encodes a one-register branch: op rs, imm (word offset).
func EncodeBr1(op Op, rs Reg, imm int32) uint32 {
	e := encTable[op]
	return encI(e.opc, rs, Reg(e.sel), imm)
}

// EncodeJ encodes a direct jump to an absolute byte address.
func EncodeJ(op Op, target uint32) uint32 {
	e := encTable[op]
	return encJ(e.opc, target)
}

// EncodeJR encodes jr rs.
func EncodeJR(rs Reg) uint32 { return encR(fnJR, rs, RegZero, RegZero, 0) }

// EncodeJALR encodes jalr rd, rs.
func EncodeJALR(rd, rs Reg) uint32 { return encR(fnJALR, rs, RegZero, rd, 0) }

// EncodeMulDiv encodes mult/div-family: op rs, rt.
func EncodeMulDiv(op Op, rs, rt Reg) uint32 {
	e := encTable[op]
	return encR(e.funct, rs, rt, RegZero, 0)
}

// EncodeMoveHL encodes mfhi/mflo rd.
func EncodeMoveHL(op Op, rd Reg) uint32 {
	e := encTable[op]
	return encR(e.funct, RegZero, RegZero, rd, 0)
}

// EncodeNullary encodes syscall/break.
func EncodeNullary(op Op) uint32 {
	e := encTable[op]
	return e.funct
}

// EncodeFP3 encodes a three-operand FP operation: op fd, fs, ft.
func EncodeFP3(op Op, fd, fs, ft Reg) uint32 {
	e := encTable[op]
	return uint32(opcCOP1)<<26 | e.sel<<21 | uint32(ft-RegF0)<<16 |
		uint32(fs-RegF0)<<11 | uint32(fd-RegF0)<<6 | e.funct
}

// EncodeFP2 encodes a two-operand FP operation: op fd, fs.
func EncodeFP2(op Op, fd, fs Reg) uint32 {
	e := encTable[op]
	return uint32(opcCOP1)<<26 | e.sel<<21 | uint32(fs-RegF0)<<11 |
		uint32(fd-RegF0)<<6 | e.funct
}

// EncodeFCmp encodes c.xx.s fs, ft.
func EncodeFCmp(op Op, fs, ft Reg) uint32 {
	e := encTable[op]
	return uint32(opcCOP1)<<26 | e.sel<<21 | uint32(ft-RegF0)<<16 |
		uint32(fs-RegF0)<<11 | e.funct
}

// EncodeMTC1 encodes mtc1 rt, fs (GPR -> FPR).
func EncodeMTC1(rt, fs Reg) uint32 {
	return uint32(opcCOP1)<<26 | uint32(copMTC1)<<21 | checkReg(rt, "rt")<<16 |
		uint32(fs-RegF0)<<11
}

// EncodeMFC1 encodes mfc1 rt, fs (FPR -> GPR).
func EncodeMFC1(rt, fs Reg) uint32 {
	return uint32(opcCOP1)<<26 | uint32(copMFC1)<<21 | checkReg(rt, "rt")<<16 |
		uint32(fs-RegF0)<<11
}

// EncodeBrFCC encodes bc1t/bc1f imm (word offset).
func EncodeBrFCC(op Op, imm int32) uint32 {
	tf := uint32(0)
	if op == OpBC1T {
		tf = 1
	}
	if imm < -32768 || imm > 32767 {
		panic(fmt.Sprintf("isa: branch offset %d out of range", imm))
	}
	return uint32(opcCOP1)<<26 | uint32(copBC)<<21 | tf<<16 | uint32(imm)&0xFFFF
}
