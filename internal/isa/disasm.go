package isa

import "fmt"

// Disasm renders the instruction at pc in conventional assembly syntax.
// Branch and jump targets are shown as absolute hex addresses.
func Disasm(in *Inst, pc uint32) string {
	info := in.Op.Info()
	switch info.Fmt {
	case FmtR:
		return fmt.Sprintf("%-8s%v, %v, %v", info.Name, in.Dest, in.Src1, in.Src2)
	case FmtShift:
		return fmt.Sprintf("%-8s%v, %v, %d", info.Name, in.Dest, in.Src1, in.Shamt)
	case FmtShiftV:
		return fmt.Sprintf("%-8s%v, %v, %v", info.Name, in.Dest, in.Src1, in.Src2)
	case FmtI:
		return fmt.Sprintf("%-8s%v, %v, %d", info.Name, in.Dest, in.Src1, in.Imm)
	case FmtLUI:
		return fmt.Sprintf("%-8s%v, %#x", info.Name, in.Dest, uint16(in.Imm))
	case FmtMem:
		if in.Op.IsStore() {
			return fmt.Sprintf("%-8s%v, %d(%v)", info.Name, in.Src2, in.Imm, in.Src1)
		}
		return fmt.Sprintf("%-8s%v, %d(%v)", info.Name, in.Dest, in.Imm, in.Src1)
	case FmtMulDiv:
		return fmt.Sprintf("%-8s%v, %v", info.Name, in.Src1, in.Src2)
	case FmtMoveHL:
		return fmt.Sprintf("%-8s%v", info.Name, in.Dest)
	case FmtJ:
		return fmt.Sprintf("%-8s%#x", info.Name, in.JumpTarget())
	case FmtJR:
		return fmt.Sprintf("%-8s%v", info.Name, in.Src1)
	case FmtJALR:
		return fmt.Sprintf("%-8s%v, %v", info.Name, in.Dest, in.Src1)
	case FmtBr2:
		return fmt.Sprintf("%-8s%v, %v, %#x", info.Name, in.Src1, in.Src2, in.BranchTarget(pc))
	case FmtBr1:
		return fmt.Sprintf("%-8s%v, %#x", info.Name, in.Src1, in.BranchTarget(pc))
	case FmtBrFCC:
		return fmt.Sprintf("%-8s%#x", info.Name, in.BranchTarget(pc))
	case FmtNullary:
		return info.Name
	case FmtFP3:
		return fmt.Sprintf("%-8s%v, %v, %v", info.Name, in.Dest, in.Src1, in.Src2)
	case FmtFP2:
		return fmt.Sprintf("%-8s%v, %v", info.Name, in.Dest, in.Src1)
	case FmtFCmp:
		return fmt.Sprintf("%-8s%v, %v", info.Name, in.Src1, in.Src2)
	case FmtMTC1:
		return fmt.Sprintf("%-8s%v, %v", info.Name, in.Src1, in.Dest)
	case FmtMFC1:
		return fmt.Sprintf("%-8s%v, %v", info.Name, in.Dest, in.Src1)
	}
	return info.Name
}
