package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{RegZero, "$zero"}, {RegSP, "$sp"}, {RegRA, "$ra"},
		{RegHILO, "hilo"}, {FPR(0), "$f0"}, {FPR(31), "$f31"},
		{RegFCC, "fcc"}, {NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestIntRegNumber(t *testing.T) {
	if n := IntRegNumber("t0"); n != 8 {
		t.Errorf("IntRegNumber(t0) = %d, want 8", n)
	}
	if n := IntRegNumber("nope"); n != -1 {
		t.Errorf("IntRegNumber(nope) = %d, want -1", n)
	}
	// Every name must round-trip.
	for i := 0; i < 32; i++ {
		name := Reg(i).String()[1:]
		if n := IntRegNumber(name); n != i {
			t.Errorf("IntRegNumber(%s) = %d, want %d", name, n, i)
		}
	}
}

func TestOpTableComplete(t *testing.T) {
	for op := Op(1); op < NumOps; op++ {
		if OpTable[op].Name == "" {
			t.Errorf("op %d has no table entry", op)
		}
	}
}

func TestTimingMatchesTable1(t *testing.T) {
	cases := []struct {
		fu       FUClass
		lat, iss int
	}{
		{FUIntALU, 1, 1}, {FULoad, 1, 1}, {FUIntMult, 3, 1}, {FUIntDiv, 20, 19},
		{FUFPAdd, 2, 1}, {FUFPMult, 4, 1}, {FUFPDiv, 12, 12}, {FUFPSqrt, 24, 24},
	}
	for _, c := range cases {
		got := Timing[c.fu]
		if got.Latency != c.lat || got.IssueLat != c.iss {
			t.Errorf("%v timing = %d/%d, want %d/%d", c.fu, got.Latency, got.IssueLat, c.lat, c.iss)
		}
	}
}

// roundTrip decodes an encoded word and checks the decoded fields.
func roundTrip(t *testing.T, raw uint32, wantOp Op, check func(t *testing.T, in Inst)) {
	t.Helper()
	in := Decode(raw)
	if in.Op != wantOp {
		t.Fatalf("Decode(%#08x).Op = %v, want %v", raw, in.Op, wantOp)
	}
	if in.Raw != raw {
		t.Fatalf("Decode(%#08x).Raw = %#08x", raw, in.Raw)
	}
	if check != nil {
		check(t, in)
	}
}

func TestEncodeDecodeALU(t *testing.T) {
	roundTrip(t, EncodeR(OpADDU, Reg(3), Reg(1), Reg(2)), OpADDU, func(t *testing.T, in Inst) {
		if in.Dest != 3 || in.Src1 != 1 || in.Src2 != 2 {
			t.Errorf("addu operands = %v %v %v", in.Dest, in.Src1, in.Src2)
		}
	})
	roundTrip(t, EncodeShift(OpSLL, Reg(5), Reg(6), 7), OpSLL, func(t *testing.T, in Inst) {
		if in.Dest != 5 || in.Src1 != 6 || in.Shamt != 7 {
			t.Errorf("sll fields = %v %v %d", in.Dest, in.Src1, in.Shamt)
		}
	})
	roundTrip(t, EncodeShiftV(OpSRLV, Reg(5), Reg(6), Reg(7)), OpSRLV, func(t *testing.T, in Inst) {
		if in.Dest != 5 || in.Src1 != 6 || in.Src2 != 7 {
			t.Errorf("srlv fields = %v %v %v", in.Dest, in.Src1, in.Src2)
		}
	})
	roundTrip(t, EncodeI(OpADDIU, Reg(4), Reg(5), -7), OpADDIU, func(t *testing.T, in Inst) {
		if in.Dest != 4 || in.Src1 != 5 || in.Imm != -7 {
			t.Errorf("addiu fields = %v %v %d", in.Dest, in.Src1, in.Imm)
		}
	})
	roundTrip(t, EncodeI(OpORI, Reg(4), Reg(5), 0xBEEF), OpORI, func(t *testing.T, in Inst) {
		if in.Imm != 0xBEEF {
			t.Errorf("ori imm = %#x, want 0xBEEF (zero extended)", in.Imm)
		}
	})
	roundTrip(t, EncodeI(OpLUI, Reg(4), RegZero, 0x1234), OpLUI, func(t *testing.T, in Inst) {
		if in.Dest != 4 || in.Imm != 0x1234 {
			t.Errorf("lui fields = %v %#x", in.Dest, in.Imm)
		}
	})
}

func TestEncodeDecodeMem(t *testing.T) {
	roundTrip(t, EncodeI(OpLW, Reg(8), Reg(29), -16), OpLW, func(t *testing.T, in Inst) {
		if in.Dest != 8 || in.Src1 != 29 || in.Imm != -16 {
			t.Errorf("lw fields = %v %v %d", in.Dest, in.Src1, in.Imm)
		}
	})
	roundTrip(t, EncodeI(OpSW, Reg(8), Reg(29), 32), OpSW, func(t *testing.T, in Inst) {
		if in.Src2 != 8 || in.Src1 != 29 || in.Imm != 32 || in.Dest != NoReg {
			t.Errorf("sw fields = %v %v %d dest=%v", in.Src2, in.Src1, in.Imm, in.Dest)
		}
	})
	roundTrip(t, EncodeI(OpLWC1, FPR(2), Reg(4), 8), OpLWC1, func(t *testing.T, in Inst) {
		if in.Dest != FPR(2) || in.Src1 != 4 {
			t.Errorf("lwc1 fields = %v %v", in.Dest, in.Src1)
		}
	})
	roundTrip(t, EncodeI(OpSWC1, FPR(2), Reg(4), 8), OpSWC1, func(t *testing.T, in Inst) {
		if in.Src2 != FPR(2) || in.Src1 != 4 {
			t.Errorf("swc1 fields = %v %v", in.Src2, in.Src1)
		}
	})
}

func TestEncodeDecodeControl(t *testing.T) {
	roundTrip(t, EncodeJ(OpJ, 0x1000), OpJ, func(t *testing.T, in Inst) {
		if in.JumpTarget() != 0x1000 {
			t.Errorf("j target = %#x", in.JumpTarget())
		}
	})
	roundTrip(t, EncodeJ(OpJAL, 0x2000), OpJAL, func(t *testing.T, in Inst) {
		if in.Dest != RegRA {
			t.Errorf("jal dest = %v, want $ra", in.Dest)
		}
	})
	roundTrip(t, EncodeJR(RegRA), OpJR, func(t *testing.T, in Inst) {
		if in.Src1 != RegRA || !in.Op.IsReturn() {
			t.Errorf("jr fields = %v return=%v", in.Src1, in.Op.IsReturn())
		}
	})
	roundTrip(t, EncodeJALR(RegRA, Reg(9)), OpJALR, func(t *testing.T, in Inst) {
		if in.Src1 != 9 || in.Dest != RegRA {
			t.Errorf("jalr fields = %v %v", in.Src1, in.Dest)
		}
	})
	roundTrip(t, EncodeI(OpBEQ, Reg(2), Reg(3), 4), OpBEQ, func(t *testing.T, in Inst) {
		if got := in.BranchTarget(0x100); got != 0x100+4+16 {
			t.Errorf("beq target = %#x", got)
		}
	})
	roundTrip(t, EncodeBr1(OpBGEZ, Reg(7), -2), OpBGEZ, func(t *testing.T, in Inst) {
		if got := in.BranchTarget(0x100); got != 0x100+4-8 {
			t.Errorf("bgez target = %#x", got)
		}
	})
	roundTrip(t, EncodeBr1(OpBLTZ, Reg(7), 1), OpBLTZ, nil)
	roundTrip(t, EncodeBr1(OpBLEZ, Reg(7), 1), OpBLEZ, nil)
	roundTrip(t, EncodeBr1(OpBGTZ, Reg(7), 1), OpBGTZ, nil)
}

func TestEncodeDecodeMulDiv(t *testing.T) {
	roundTrip(t, EncodeMulDiv(OpMULT, Reg(2), Reg(3)), OpMULT, func(t *testing.T, in Inst) {
		if in.Src1 != 2 || in.Src2 != 3 || in.Dest != RegHILO {
			t.Errorf("mult fields = %v %v %v", in.Src1, in.Src2, in.Dest)
		}
	})
	roundTrip(t, EncodeMoveHL(OpMFLO, Reg(4)), OpMFLO, func(t *testing.T, in Inst) {
		if in.Src1 != RegHILO || in.Dest != 4 {
			t.Errorf("mflo fields = %v %v", in.Src1, in.Dest)
		}
	})
	roundTrip(t, EncodeMoveHL(OpMFHI, Reg(4)), OpMFHI, nil)
	roundTrip(t, EncodeMulDiv(OpDIVU, Reg(2), Reg(3)), OpDIVU, nil)
}

func TestEncodeDecodeFP(t *testing.T) {
	roundTrip(t, EncodeFP3(OpADDS, FPR(1), FPR(2), FPR(3)), OpADDS, func(t *testing.T, in Inst) {
		if in.Dest != FPR(1) || in.Src1 != FPR(2) || in.Src2 != FPR(3) {
			t.Errorf("add.s fields = %v %v %v", in.Dest, in.Src1, in.Src2)
		}
	})
	roundTrip(t, EncodeFP2(OpSQRTS, FPR(4), FPR(5)), OpSQRTS, func(t *testing.T, in Inst) {
		if in.Dest != FPR(4) || in.Src1 != FPR(5) {
			t.Errorf("sqrt.s fields = %v %v", in.Dest, in.Src1)
		}
	})
	roundTrip(t, EncodeFCmp(OpCLTS, FPR(6), FPR(7)), OpCLTS, func(t *testing.T, in Inst) {
		if in.Src1 != FPR(6) || in.Src2 != FPR(7) || in.Dest != RegFCC {
			t.Errorf("c.lt.s fields = %v %v %v", in.Src1, in.Src2, in.Dest)
		}
	})
	roundTrip(t, EncodeMTC1(Reg(8), FPR(9)), OpMTC1, func(t *testing.T, in Inst) {
		if in.Src1 != 8 || in.Dest != FPR(9) {
			t.Errorf("mtc1 fields = %v %v", in.Src1, in.Dest)
		}
	})
	roundTrip(t, EncodeMFC1(Reg(8), FPR(9)), OpMFC1, func(t *testing.T, in Inst) {
		if in.Src1 != FPR(9) || in.Dest != 8 {
			t.Errorf("mfc1 fields = %v %v", in.Src1, in.Dest)
		}
	})
	roundTrip(t, EncodeBrFCC(OpBC1T, 3), OpBC1T, func(t *testing.T, in Inst) {
		if in.Src1 != RegFCC || in.Imm != 3 {
			t.Errorf("bc1t fields = %v %d", in.Src1, in.Imm)
		}
	})
	roundTrip(t, EncodeBrFCC(OpBC1F, -3), OpBC1F, nil)
	roundTrip(t, EncodeFP2(OpCVTSW, FPR(1), FPR(2)), OpCVTSW, nil)
	roundTrip(t, EncodeFP2(OpCVTWS, FPR(1), FPR(2)), OpCVTWS, nil)
}

func TestDecodeWriteToR0Stripped(t *testing.T) {
	in := Decode(EncodeR(OpADDU, RegZero, Reg(1), Reg(2)))
	if in.Dest != NoReg {
		t.Errorf("addu $zero,... dest = %v, want NoReg", in.Dest)
	}
}

func TestDecodeSyscall(t *testing.T) {
	in := Decode(EncodeNullary(OpSYSCALL))
	if in.Op != OpSYSCALL || in.Src1 != RegV0 || in.Src2 != RegA0 {
		t.Errorf("syscall decode = %+v", in)
	}
	if !in.Op.Serializes() {
		t.Error("syscall must serialize")
	}
}

func TestDecodeInvalid(t *testing.T) {
	// An unused major opcode must decode to OpInvalid, not panic.
	in := Decode(uint32(22) << 26)
	if in.Op != OpInvalid {
		t.Errorf("Decode(op=22) = %v, want invalid", in.Op)
	}
}

// TestDecodeNeverPanics is a property test: Decode must be total over all
// 32-bit words.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(raw uint32) bool {
		in := Decode(raw)
		// Decoded registers must be inside the unified space or NoReg.
		ok := func(r Reg) bool { return r == NoReg || r < NumArchRegs }
		return ok(in.Src1) && ok(in.Src2) && ok(in.Dest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestEncodeDecodeRoundTripProperty: for random operands, encoding then
// decoding an ALU op reproduces the operands.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(rd, rs, rt uint8, imm int16) bool {
		d, s1, s2 := Reg(rd%31+1), Reg(rs%32), Reg(rt%32)
		in := Decode(EncodeR(OpXOR, d, s1, s2))
		if in.Dest != d || in.Src1 != s1 || in.Src2 != s2 {
			return false
		}
		in = Decode(EncodeI(OpADDIU, d, s1, int32(imm)))
		return in.Dest == d && in.Src1 == s1 && in.Imm == int32(imm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		raw  uint32
		pc   uint32
		want string
	}{
		{EncodeR(OpADDU, Reg(2), Reg(4), Reg(5)), 0, "addu    $v0, $a0, $a1"},
		{EncodeI(OpLW, Reg(8), Reg(29), -4), 0, "lw      $t0, -4($sp)"},
		{EncodeI(OpSW, Reg(8), Reg(29), 4), 0, "sw      $t0, 4($sp)"},
		{EncodeJ(OpJ, 0x400), 0, "j       0x400"},
		{EncodeNullary(OpSYSCALL), 0, "syscall"},
	}
	for _, c := range cases {
		in := Decode(c.raw)
		if got := Disasm(&in, c.pc); got != c.want {
			t.Errorf("Disasm(%#08x) = %q, want %q", c.raw, got, c.want)
		}
	}
	// Smoke: every op has a non-empty disassembly via some encoding.
	for op := Op(1); op < NumOps; op++ {
		in := Inst{Op: op, Src1: Reg(1), Src2: Reg(2), Dest: Reg(3)}
		if op.Info().Flg&FlagFP != 0 {
			in.Src1, in.Src2, in.Dest = FPR(1), FPR(2), FPR(3)
		}
		if s := Disasm(&in, 0); s == "" || strings.Contains(s, "op?") {
			t.Errorf("op %v has broken disasm %q", op, s)
		}
	}
}

func TestFlagsConsistency(t *testing.T) {
	for op := Op(1); op < NumOps; op++ {
		info := op.Info()
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v is both load and store", op)
		}
		if op.IsCondBranch() && op.IsUncond() {
			t.Errorf("%v is both conditional and unconditional", op)
		}
		if op.IsLoad() && info.FU != FULoad {
			t.Errorf("load %v has FU %v", op, info.FU)
		}
		if op.IsStore() && info.FU != FUStore {
			t.Errorf("store %v has FU %v", op, info.FU)
		}
	}
}
