// Package isa defines the 32-bit MIPS-like instruction set architecture used
// by the simulator: instruction encodings, the decoded instruction form, the
// architectural register space, and the functional-unit timing classes from
// Table 1 of the paper.
//
// The ISA follows the classic MIPS-I layout (R/I/J formats) with two
// simplifications that keep the dataflow single-destination, which the
// out-of-order core and the reuse buffer rely on:
//
//   - MULT/MULTU/DIV/DIVU write a single combined 64-bit HILO register
//     (read by MFHI/MFLO) instead of separate HI and LO registers.
//   - Floating point is single precision only.
//
// There are no branch delay slots, matching the behaviour of the
// SimpleScalar-style simulator the paper builds on.
package isa

import "fmt"

// Word is the value carried by an architectural register. Integer registers
// hold their 32-bit value zero-extended; HILO uses the full 64 bits; FP
// registers hold float32 bits in the low word.
type Word = uint64

// Reg names a register in the unified architectural register space used for
// dependence tracking:
//
//	0..31   integer registers (r0 hardwired to zero)
//	32      HILO (combined multiply/divide result)
//	33..64  floating point registers f0..f31
//	65      FCC (floating point condition code)
type Reg uint8

// Unified register space layout.
const (
	RegZero Reg = 0 // r0, always zero
	RegAT   Reg = 1 // assembler temporary
	RegV0   Reg = 2 // result / syscall code
	RegV1   Reg = 3
	RegA0   Reg = 4 // first argument
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegSP   Reg = 29 // stack pointer
	RegFP   Reg = 30 // frame pointer
	RegRA   Reg = 31 // return address

	RegHILO Reg = 32
	RegF0   Reg = 33 // f0; FPR(i) == RegF0 + i
	RegFCC  Reg = 65

	// NumArchRegs is the size of the unified register space.
	NumArchRegs = 66

	// NoReg marks an absent operand or destination.
	NoReg Reg = 0xFF
)

// FPR returns the unified register id of floating point register i.
func FPR(i int) Reg { return RegF0 + Reg(i) }

// IsFPR reports whether r is one of f0..f31.
func IsFPR(r Reg) bool { return r >= RegF0 && r < RegF0+32 }

var intRegNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional assembly name of the register ("$t0",
// "$f4", "hilo", "fcc").
func (r Reg) String() string {
	switch {
	case r < 32:
		return "$" + intRegNames[r]
	case r == RegHILO:
		return "hilo"
	case IsFPR(r):
		return fmt.Sprintf("$f%d", r-RegF0)
	case r == RegFCC:
		return "fcc"
	case r == NoReg:
		return "-"
	}
	return fmt.Sprintf("reg?%d", uint8(r))
}

// IntRegNumber returns the integer register number for a "$name" or "$N"
// style name, or -1 if the name is not an integer register.
func IntRegNumber(name string) int {
	for i, n := range intRegNames {
		if n == name {
			return i
		}
	}
	return -1
}

// FUClass identifies the functional unit pool an operation issues to.
// The pool sizes and latencies come from Table 1 of the paper.
type FUClass uint8

const (
	FUNone    FUClass = iota // does not use a functional unit (e.g. J)
	FUIntALU                 // 8 units, latency 1, issue 1
	FULoad                   // 2 load/store units, latency 1 + cache, issue 1
	FUStore                  // shares the 2 load/store units
	FUIntMult                // 1 unit (shared int mult/div), latency 3, issue 1
	FUIntDiv                 // same unit as FUIntMult, latency 20, issue 19
	FUFPAdd                  // 4 units, latency 2, issue 1
	FUFPMult                 // 1 unit (shared fp mult/div/sqrt), latency 4, issue 1
	FUFPDiv                  // same unit, latency 12, issue 12
	FUFPSqrt                 // same unit, latency 24, issue 24
	NumFUClasses
)

func (c FUClass) String() string {
	switch c {
	case FUNone:
		return "none"
	case FUIntALU:
		return "int-alu"
	case FULoad:
		return "load"
	case FUStore:
		return "store"
	case FUIntMult:
		return "int-mult"
	case FUIntDiv:
		return "int-div"
	case FUFPAdd:
		return "fp-add"
	case FUFPMult:
		return "fp-mult"
	case FUFPDiv:
		return "fp-div"
	case FUFPSqrt:
		return "fp-sqrt"
	}
	return "fu?"
}

// FUTiming gives total (result) latency and issue (initiation interval)
// latency for a functional unit class, per Table 1.
type FUTiming struct {
	Latency  int // cycles until the result is available
	IssueLat int // cycles until the unit can accept another operation
}

// Timing is the Table 1 "FU latency (total/issue)" row.
var Timing = [NumFUClasses]FUTiming{
	FUNone:    {1, 1},
	FUIntALU:  {1, 1},
	FULoad:    {1, 1}, // plus cache access, modeled by the memory system
	FUStore:   {1, 1},
	FUIntMult: {3, 1},
	FUIntDiv:  {20, 19},
	FUFPAdd:   {2, 1},
	FUFPMult:  {4, 1},
	FUFPDiv:   {12, 12},
	FUFPSqrt:  {24, 24},
}
