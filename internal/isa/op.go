package isa

// Op enumerates the operations of the ISA. Each Op carries static metadata
// in OpTable: mnemonic, format, functional unit class, and behaviour flags.
type Op uint8

const (
	OpInvalid Op = iota

	// Integer ALU, register form.
	OpSLL
	OpSRL
	OpSRA
	OpSLLV
	OpSRLV
	OpSRAV
	OpADDU
	OpSUBU
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLT
	OpSLTU

	// Integer ALU, immediate form.
	OpADDIU
	OpSLTI
	OpSLTIU
	OpANDI
	OpORI
	OpXORI
	OpLUI

	// Multiply / divide (write HILO).
	OpMULT
	OpMULTU
	OpDIV
	OpDIVU
	OpMFHI
	OpMFLO

	// Control flow.
	OpJ
	OpJAL
	OpJR
	OpJALR
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpBLTZ
	OpBGEZ
	OpSYSCALL
	OpBREAK

	// Memory.
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpSB
	OpSH
	OpSW
	OpLWC1
	OpSWC1

	// Floating point (single precision).
	OpADDS
	OpSUBS
	OpMULS
	OpDIVS
	OpSQRTS
	OpABSS
	OpNEGS
	OpMOVS
	OpCVTSW // convert int word (in FP reg) to float
	OpCVTWS // convert float to int word (in FP reg)
	OpCEQS  // fcc = (fs == ft)
	OpCLTS  // fcc = (fs < ft)
	OpCLES  // fcc = (fs <= ft)
	OpMTC1  // move GPR -> FPR
	OpMFC1  // move FPR -> GPR
	OpBC1T  // branch if fcc true
	OpBC1F  // branch if fcc false

	NumOps
)

// Format describes how an Op is encoded and printed.
type Format uint8

const (
	FmtR       Format = iota // op rd, rs, rt
	FmtShift                 // op rd, rt, shamt
	FmtShiftV                // op rd, rt, rs (variable shift)
	FmtI                     // op rt, rs, imm
	FmtLUI                   // lui rt, imm
	FmtMem                   // op rt, imm(rs)
	FmtMulDiv                // op rs, rt (writes HILO)
	FmtMoveHL                // mfhi/mflo rd
	FmtJ                     // j/jal target
	FmtJR                    // jr rs
	FmtJALR                  // jalr rd, rs
	FmtBr2                   // beq/bne rs, rt, label
	FmtBr1                   // blez/bgtz/bltz/bgez rs, label
	FmtBrFCC                 // bc1t/bc1f label
	FmtNullary               // syscall, break
	FmtFP2                   // op fd, fs (unary fp)
	FmtFP3                   // op fd, fs, ft
	FmtFCmp                  // c.xx.s fs, ft
	FmtMTC1                  // mtc1 rt, fs
	FmtMFC1                  // mfc1 rt, fs
)

// Flag bits describing instruction behaviour the pipeline cares about.
type Flags uint16

const (
	FlagLoad      Flags = 1 << iota // reads memory
	FlagStore                       // writes memory
	FlagCondBr                      // conditional branch
	FlagUncond                      // unconditional jump
	FlagCall                        // writes a return address (function call)
	FlagReturn                      // jr $ra style return
	FlagIndirect                    // target comes from a register
	FlagSerialize                   // syscall/break: drain the pipeline
	FlagFP                          // floating point operation
)

// OpInfo is the static metadata for one operation.
type OpInfo struct {
	Name string
	Fmt  Format
	FU   FUClass
	Flg  Flags
}

// OpTable maps an Op to its metadata.
var OpTable = [NumOps]OpInfo{
	OpInvalid: {"invalid", FmtNullary, FUNone, 0},

	OpSLL:  {"sll", FmtShift, FUIntALU, 0},
	OpSRL:  {"srl", FmtShift, FUIntALU, 0},
	OpSRA:  {"sra", FmtShift, FUIntALU, 0},
	OpSLLV: {"sllv", FmtShiftV, FUIntALU, 0},
	OpSRLV: {"srlv", FmtShiftV, FUIntALU, 0},
	OpSRAV: {"srav", FmtShiftV, FUIntALU, 0},
	OpADDU: {"addu", FmtR, FUIntALU, 0},
	OpSUBU: {"subu", FmtR, FUIntALU, 0},
	OpAND:  {"and", FmtR, FUIntALU, 0},
	OpOR:   {"or", FmtR, FUIntALU, 0},
	OpXOR:  {"xor", FmtR, FUIntALU, 0},
	OpNOR:  {"nor", FmtR, FUIntALU, 0},
	OpSLT:  {"slt", FmtR, FUIntALU, 0},
	OpSLTU: {"sltu", FmtR, FUIntALU, 0},

	OpADDIU: {"addiu", FmtI, FUIntALU, 0},
	OpSLTI:  {"slti", FmtI, FUIntALU, 0},
	OpSLTIU: {"sltiu", FmtI, FUIntALU, 0},
	OpANDI:  {"andi", FmtI, FUIntALU, 0},
	OpORI:   {"ori", FmtI, FUIntALU, 0},
	OpXORI:  {"xori", FmtI, FUIntALU, 0},
	OpLUI:   {"lui", FmtLUI, FUIntALU, 0},

	OpMULT:  {"mult", FmtMulDiv, FUIntMult, 0},
	OpMULTU: {"multu", FmtMulDiv, FUIntMult, 0},
	OpDIV:   {"div", FmtMulDiv, FUIntDiv, 0},
	OpDIVU:  {"divu", FmtMulDiv, FUIntDiv, 0},
	OpMFHI:  {"mfhi", FmtMoveHL, FUIntALU, 0},
	OpMFLO:  {"mflo", FmtMoveHL, FUIntALU, 0},

	OpJ:       {"j", FmtJ, FUNone, FlagUncond},
	OpJAL:     {"jal", FmtJ, FUIntALU, FlagUncond | FlagCall},
	OpJR:      {"jr", FmtJR, FUIntALU, FlagUncond | FlagIndirect | FlagReturn},
	OpJALR:    {"jalr", FmtJALR, FUIntALU, FlagUncond | FlagIndirect | FlagCall},
	OpBEQ:     {"beq", FmtBr2, FUIntALU, FlagCondBr},
	OpBNE:     {"bne", FmtBr2, FUIntALU, FlagCondBr},
	OpBLEZ:    {"blez", FmtBr1, FUIntALU, FlagCondBr},
	OpBGTZ:    {"bgtz", FmtBr1, FUIntALU, FlagCondBr},
	OpBLTZ:    {"bltz", FmtBr1, FUIntALU, FlagCondBr},
	OpBGEZ:    {"bgez", FmtBr1, FUIntALU, FlagCondBr},
	OpSYSCALL: {"syscall", FmtNullary, FUIntALU, FlagSerialize},
	OpBREAK:   {"break", FmtNullary, FUIntALU, FlagSerialize},

	OpLB:   {"lb", FmtMem, FULoad, FlagLoad},
	OpLBU:  {"lbu", FmtMem, FULoad, FlagLoad},
	OpLH:   {"lh", FmtMem, FULoad, FlagLoad},
	OpLHU:  {"lhu", FmtMem, FULoad, FlagLoad},
	OpLW:   {"lw", FmtMem, FULoad, FlagLoad},
	OpSB:   {"sb", FmtMem, FUStore, FlagStore},
	OpSH:   {"sh", FmtMem, FUStore, FlagStore},
	OpSW:   {"sw", FmtMem, FUStore, FlagStore},
	OpLWC1: {"lwc1", FmtMem, FULoad, FlagLoad | FlagFP},
	OpSWC1: {"swc1", FmtMem, FUStore, FlagStore | FlagFP},

	OpADDS:  {"add.s", FmtFP3, FUFPAdd, FlagFP},
	OpSUBS:  {"sub.s", FmtFP3, FUFPAdd, FlagFP},
	OpMULS:  {"mul.s", FmtFP3, FUFPMult, FlagFP},
	OpDIVS:  {"div.s", FmtFP3, FUFPDiv, FlagFP},
	OpSQRTS: {"sqrt.s", FmtFP2, FUFPSqrt, FlagFP},
	OpABSS:  {"abs.s", FmtFP2, FUFPAdd, FlagFP},
	OpNEGS:  {"neg.s", FmtFP2, FUFPAdd, FlagFP},
	OpMOVS:  {"mov.s", FmtFP2, FUFPAdd, FlagFP},
	OpCVTSW: {"cvt.s.w", FmtFP2, FUFPAdd, FlagFP},
	OpCVTWS: {"cvt.w.s", FmtFP2, FUFPAdd, FlagFP},
	OpCEQS:  {"c.eq.s", FmtFCmp, FUFPAdd, FlagFP},
	OpCLTS:  {"c.lt.s", FmtFCmp, FUFPAdd, FlagFP},
	OpCLES:  {"c.le.s", FmtFCmp, FUFPAdd, FlagFP},
	OpMTC1:  {"mtc1", FmtMTC1, FUIntALU, FlagFP},
	OpMFC1:  {"mfc1", FmtMFC1, FUIntALU, FlagFP},
	OpBC1T:  {"bc1t", FmtBrFCC, FUIntALU, FlagCondBr | FlagFP},
	OpBC1F:  {"bc1f", FmtBrFCC, FUIntALU, FlagCondBr | FlagFP},
}

// Info returns the metadata for op.
func (op Op) Info() *OpInfo { return &OpTable[op] }

// String returns the mnemonic.
func (op Op) String() string {
	if op >= NumOps {
		return "op?"
	}
	return OpTable[op].Name
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return OpTable[op].Flg&FlagLoad != 0 }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return OpTable[op].Flg&FlagStore != 0 }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return OpTable[op].Flg&(FlagLoad|FlagStore) != 0 }

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool { return OpTable[op].Flg&FlagCondBr != 0 }

// IsUncond reports whether op is an unconditional control transfer.
func (op Op) IsUncond() bool { return OpTable[op].Flg&FlagUncond != 0 }

// IsControl reports whether op changes control flow.
func (op Op) IsControl() bool { return OpTable[op].Flg&(FlagCondBr|FlagUncond) != 0 }

// IsCall reports whether op is a call (writes a return address).
func (op Op) IsCall() bool { return OpTable[op].Flg&FlagCall != 0 }

// IsReturn reports whether op is a function return.
func (op Op) IsReturn() bool { return OpTable[op].Flg&FlagReturn != 0 }

// IsIndirect reports whether op's target comes from a register.
func (op Op) IsIndirect() bool { return OpTable[op].Flg&FlagIndirect != 0 }

// Serializes reports whether op must drain the pipeline (syscall/break).
func (op Op) Serializes() bool { return OpTable[op].Flg&FlagSerialize != 0 }
