package core

import (
	"strings"
	"testing"
)

func TestPipeTracerRecordsLifetimes(t *testing.T) {
	m := buildMachine(t, `
        .text
main:   li   $t0, 1
        addu $t1, $t0, $t0
        addu $t2, $t1, $t1
        li   $v0, 10
        syscall
`, DefaultConfig())
	tr := &PipeTracer{Max: 16}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 5 {
		t.Fatalf("events = %d, want 5", len(tr.Events))
	}
	// In-order commit: cycle numbers must be monotone per row and across
	// program order.
	var lastCommit uint64
	for i, ev := range tr.Events {
		if ev.Commit == 0 {
			t.Errorf("event %d never committed", i)
		}
		if ev.Commit < lastCommit {
			t.Errorf("commit out of order at %d", i)
		}
		lastCommit = ev.Commit
		if ev.Decode < ev.Fetch || (ev.Issue > 0 && ev.Issue < ev.Decode) ||
			(ev.Done > 0 && ev.Commit < ev.Done) {
			t.Errorf("event %d has inconsistent timestamps: %+v", i, ev)
		}
	}
	// The two dependent addus must complete one cycle apart.
	a, b := tr.Events[1], tr.Events[2]
	if b.Done <= a.Done {
		t.Errorf("dependent addu done %d not after producer %d", b.Done, a.Done)
	}
}

func TestPipeTracerMarksReuse(t *testing.T) {
	m := buildMachine(t, `
        .data
xs:     .word 9
        .text
main:   li   $s0, 0
loop:   la   $t0, xs
        lw   $t1, 0($t0)
        addu $t2, $t1, $t1
        addiu $s0, $s0, 1
        slti $at, $s0, 10
        bnez $at, loop
        li   $v0, 10
        syscall
`, IRChoice(false))
	tr := &PipeTracer{}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	reused := 0
	for _, ev := range tr.Events {
		if ev.Reused {
			reused++
			if ev.Issue != 0 {
				t.Errorf("reused instruction also issued: %+v", ev)
			}
		}
	}
	if reused == 0 {
		t.Error("no reuse events recorded")
	}
}

func TestPipeTracerMax(t *testing.T) {
	m := buildMachine(t, `
        .text
main:   li   $t0, 0
loop:   addiu $t0, $t0, 1
        slti $at, $t0, 50
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	tr := &PipeTracer{Max: 10}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 10 {
		t.Errorf("events = %d, want capped at 10", len(tr.Events))
	}
}

// ringSrc retires well over 20 instructions so a Max of 10 must wrap.
const ringSrc = `
        .text
main:   li   $t0, 0
loop:   addiu $t0, $t0, 1
        slti $at, $t0, 50
        bnez $at, loop
        li   $v0, 10
        syscall
`

func TestPipeTracerRingKeepsLast(t *testing.T) {
	trunc := &PipeTracer{Max: 10}
	m := buildMachine(t, ringSrc, DefaultConfig())
	m.Trace(trunc)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	ring := &PipeTracer{Max: 10, Ring: true}
	m2 := buildMachine(t, ringSrc, DefaultConfig())
	m2.Trace(ring)
	if err := m2.Run(0); err != nil {
		t.Fatal(err)
	}

	if len(ring.Events) != 10 || len(trunc.Events) != 10 {
		t.Fatalf("lens = %d/%d, want 10/10", len(ring.Events), len(trunc.Events))
	}
	if ring.Overwrote() == 0 {
		t.Fatal("ring never overwrote on a >10-instruction run")
	}
	maxSeq := func(evs []PipeEvent) uint64 {
		var mx uint64
		for _, ev := range evs {
			if ev.Seq > mx {
				mx = ev.Seq
			}
		}
		return mx
	}
	if maxSeq(ring.Events) <= maxSeq(trunc.Events) {
		t.Errorf("ring max seq %d not beyond truncating max seq %d — it did not keep the tail",
			maxSeq(ring.Events), maxSeq(trunc.Events))
	}
	// Ordered must be chronological by dispatch.
	ord := ring.Ordered()
	for i := 1; i < len(ord); i++ {
		if ord[i].Seq < ord[i-1].Seq {
			t.Fatalf("Ordered not chronological at %d: seq %d after %d", i, ord[i].Seq, ord[i-1].Seq)
		}
	}
	// The final instructions of the program (the syscall tail) must be in
	// the ring but cannot be in the truncating trace.
	last := ord[len(ord)-1]
	if last.Commit == 0 {
		t.Errorf("ring tail event never committed: %+v", last)
	}
}

func TestPipeTracerRingRenders(t *testing.T) {
	ring := &PipeTracer{Max: 8, Ring: true}
	m := buildMachine(t, ringSrc, DefaultConfig())
	m.Trace(ring)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ring.Render(&sb, 60)
	out := sb.String()
	if !strings.Contains(out, "cycles") || strings.Count(out, "\n") < 8 {
		t.Errorf("ring render incomplete:\n%s", out)
	}
}

func TestPipeTracerUnboundedIgnoresRing(t *testing.T) {
	// Ring without Max has nothing to wrap: behaves like unlimited.
	tr := &PipeTracer{Ring: true}
	m := buildMachine(t, ringSrc, DefaultConfig())
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) <= 10 || tr.Overwrote() != 0 {
		t.Errorf("unbounded ring recorded %d events, overwrote %d", len(tr.Events), tr.Overwrote())
	}
}

func TestPipeTracerRender(t *testing.T) {
	m := buildMachine(t, `
        .text
main:   li   $t0, 3
        addu $t1, $t0, $t0
        li   $v0, 10
        syscall
`, DefaultConfig())
	tr := &PipeTracer{}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr.Render(&sb, 40)
	out := sb.String()
	for _, want := range []string{"cycles", "addu", "C", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Empty tracer renders gracefully.
	var sb2 strings.Builder
	(&PipeTracer{}).Render(&sb2, 10)
	if !strings.Contains(sb2.String(), "no events") {
		t.Error("empty render")
	}
}

func TestPipeTracerMarksSquash(t *testing.T) {
	m := buildMachine(t, `
        .data
bits:   .word 1,0,0,1,0,1,1,0
        .text
main:   li   $s0, 0
        li   $s1, 0
loop:   andi $t0, $s0, 7
        sll  $t0, $t0, 2
        la   $t1, bits
        addu $t1, $t1, $t0
        lw   $t2, 0($t1)
        beqz $t2, zero
        addiu $s1, $s1, 1
zero:   addiu $s0, $s0, 1
        slti $at, $s0, 40
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	tr := &PipeTracer{}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	squashed := 0
	for _, ev := range tr.Events {
		if ev.Squash {
			squashed++
			if ev.Commit != 0 {
				t.Errorf("squashed instruction committed: %+v", ev)
			}
		}
	}
	if squashed == 0 {
		t.Error("no squashed events on a data-dependent branch workload")
	}
}

// TestPipeTracerJSON checks the wire form: oldest-first after a ring
// wrap, hex PCs, and the zero-means-never cycle convention surviving the
// omitempty tags.
func TestPipeTracerJSON(t *testing.T) {
	m := buildMachine(t, `
        .text
main:   li   $t0, 1
        addu $t1, $t0, $t0
        addu $t2, $t1, $t1
        li   $v0, 10
        syscall
`, DefaultConfig())
	tr := &PipeTracer{Max: 3, Ring: true}
	m.Trace(tr)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	js := tr.JSON()
	ordered := tr.Ordered()
	if len(js) != len(ordered) {
		t.Fatalf("JSON len = %d, Ordered len = %d", len(js), len(ordered))
	}
	for i := range js {
		if js[i].Seq != ordered[i].Seq {
			t.Fatalf("JSON[%d].Seq = %d, want %d (ring order must match Ordered)", i, js[i].Seq, ordered[i].Seq)
		}
		if len(js[i].PC) != 10 || js[i].PC[:2] != "0x" {
			t.Fatalf("JSON[%d].PC = %q, want 0x%%08x form", i, js[i].PC)
		}
		if js[i].Disasm == "" {
			t.Fatalf("JSON[%d] missing disasm", i)
		}
	}
	if (&PipeTracer{}).JSON() == nil {
		t.Fatal("empty tracer must render as [], not nil")
	}
}
