package core

import (
	"testing"

	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// TestHybridReuseNeverStale is the regression test for two hybrid-machine
// bugs: reuse-buffer dependence pointers captured from value-speculative
// producer instances, and load entries inserted from predicted-address
// executions. Every reuse hit on the correct path must match the oracle.
func TestHybridReuseNeverStale(t *testing.T) {
	w, _ := workload.Get("compress")
	p, err := w.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, HybridChoice(vp.Magic, SB, ME, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	m.debugReuse = func(e *robEntry) {
		if e.traceIdx >= 0 && e.reused && e.in.Dest != 0xFF {
			want := m.oracle.Result[e.traceIdx]
			if e.result != want {
				t.Fatalf("WRONG REUSE at pc %#x line %d inst %d: reused %d want %d; op=%v src1val=%d src2val=%d final=[%v %v]",
					e.pc, m.prog.SrcLines[e.pc], e.traceIdx, e.result, want,
					e.in.Op, e.srcVal[0], e.srcVal[1], e.srcFinal[0], e.srcFinal[1])
			}
		}
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
}
