package core

import (
	"fmt"
	"strings"

	"github.com/vpir-sim/vpir/internal/isa"
)

// SimErrorKind classifies the structured simulation errors.
type SimErrorKind int

const (
	// ErrDivergence: a retiring instruction disagreed with the functional
	// oracle. Always a simulator bug or an injected architectural fault,
	// never a modeling choice.
	ErrDivergence SimErrorKind = iota
	// ErrWatchdog: the pipeline made no retirement progress for the
	// configured number of cycles (livelock or deadlock).
	ErrWatchdog
)

func (k SimErrorKind) String() string {
	if k == ErrWatchdog {
		return "watchdog"
	}
	return "divergence"
}

// SimError is the typed error returned by Machine.Run on an internal
// failure: an oracle divergence at commit or a watchdog trip. It carries
// enough machine state for a campaign driver or a bug report to be useful
// without re-running the simulation.
type SimError struct {
	Kind   SimErrorKind
	Config string // configuration label (Config.Name)

	Cycle uint64
	PC    uint32 // diverging instruction / ROB-head (or fetch) PC at the trip
	Seq   uint64 // dynamic sequence number of that instruction (0 if none)

	// Divergence details.
	TraceIdx int64  // correct-path trace index of the diverging instruction
	SrcLine  int    // assembly source line of the diverging instruction
	Field    string // which quantity diverged: "result", "pc", "address", "direction", "commit order"
	Got      any
	Want     any

	// Occupancy at the failure point.
	ROBOccupancy int
	LSQOccupancy int
	FetchPC      uint32

	// Pipetrace is a rendered pipeline-diagram window of the in-flight
	// instructions (see pipetrace.go); populated on watchdog trips.
	Pipetrace string
}

func (e *SimError) Error() string {
	switch e.Kind {
	case ErrWatchdog:
		return fmt.Sprintf("core: watchdog: no retirement for %d cycles at cycle %d (%s): "+
			"ROB head pc %#x seq %d, ROB %d, LSQ %d, fetch pc %#x",
			e.Got, e.Cycle, e.Config, e.PC, e.Seq, e.ROBOccupancy, e.LSQOccupancy, e.FetchPC)
	default:
		return fmt.Sprintf("core: divergence from oracle at pc %#x (inst %d, %s, line %d): %s: got %v want %v",
			e.PC, e.TraceIdx, e.Config, e.SrcLine, e.Field, e.Got, e.Want)
	}
}

// IsDivergence reports whether err is (or wraps) an oracle-divergence
// SimError; the fault-injection campaign keys its "detected" outcome off it.
func IsDivergence(err error) bool {
	se, ok := AsSimError(err)
	return ok && se.Kind == ErrDivergence
}

// IsWatchdog reports whether err is (or wraps) a watchdog SimError.
func IsWatchdog(err error) bool {
	se, ok := AsSimError(err)
	return ok && se.Kind == ErrWatchdog
}

// AsSimError unwraps err to a *SimError if there is one in its chain.
func AsSimError(err error) (*SimError, bool) {
	for err != nil {
		if se, ok := err.(*SimError); ok {
			return se, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}

// watchdogError builds the structured livelock/deadlock error, including a
// pipetrace window synthesized from the in-flight ROB contents so the stall
// is diagnosable without re-running under a tracer.
func (m *Machine) watchdogError(stalled uint64) *SimError {
	se := &SimError{
		Kind:         ErrWatchdog,
		Config:       m.cfg.Name(),
		Cycle:        m.cycle,
		Got:          stalled,
		ROBOccupancy: int(m.robCount),
		LSQOccupancy: int(m.lsqCount),
		FetchPC:      m.fetchPC,
		PC:           m.fetchPC,
	}
	if m.robCount > 0 {
		head := &m.rob[m.robHead]
		se.PC = head.pc
		se.Seq = head.seq
		se.TraceIdx = head.traceIdx
	}
	se.Pipetrace = m.snapshotTrace(64)
	if m.obs != nil {
		m.obs.watchdogEvent(m.cycle, se.PC, se.Seq, stalled)
	}
	return se
}

// snapshotTrace renders the current in-flight window (oldest to youngest
// ROB entry) as a pipetrace diagram clamped to maxCycles columns. Events are
// synthesized from the ROB, so it works without a tracer attached and costs
// nothing during normal runs.
func (m *Machine) snapshotTrace(maxCycles int) string {
	tr := &PipeTracer{}
	m.forEachROB(func(idx int32, e *robEntry) bool {
		ev := PipeEvent{
			Seq:     e.seq,
			PC:      e.pc,
			Disasm:  isa.Disasm(e.in, e.pc),
			Fetch:   e.decodeCycle,
			Decode:  e.decodeCycle,
			Reused:  e.reused,
			Pred:    e.predicted,
			Execs:   e.execCount,
			TraceID: e.traceIdx,
		}
		if e.final {
			ev.Done = e.finalAt
		}
		tr.Events = append(tr.Events, ev)
		return true
	})
	var b strings.Builder
	if len(tr.Events) == 0 {
		fmt.Fprintf(&b, "(ROB empty; fetch stalled at pc %#x)\n", m.fetchPC)
		return b.String()
	}
	tr.Render(&b, maxCycles)
	return b.String()
}
