package core

import (
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
)

// processEvents handles this cycle's completion and verification events.
// Completions consume result-bus bandwidth (WBWidth per cycle); overflow
// carries into the next cycle and counts as resource contention.
func (m *Machine) processEvents() error {
	// Drain last cycle's carry-overs, then this cycle's wheel slot, in
	// place: events scheduled while draining always land in a different
	// wheel slot (delays are clamped to [1, wheelSize)), and new carry-overs
	// append to the swapped-in scratch buffer, so neither append invalidates
	// the slices being walked. The swap keeps both backing arrays alive —
	// the cycle loop allocates and copies nothing here in steady state.
	slot := m.cycle % wheelSize
	if len(m.wbCarry) == 0 && m.eventMask&(1<<slot) == 0 {
		// Nothing carried over and nothing scheduled for this cycle (a clear
		// occupancy bit implies the slot slice is empty — events only append
		// together with setting the bit). Skip the buffer-swap dance.
		if len(m.finalQ) != 0 {
			m.drainFinalQ()
		}
		return nil
	}
	carry := m.wbCarry
	m.wbCarry = m.evScratch[:0]
	slotEvs := m.wheel[slot]
	// The slot is about to drain; clearing its occupancy bit before the
	// walk keeps the mask correct even for events scheduled mid-drain
	// (those land in later slots and set their own bits).
	m.eventMask &^= 1 << slot
	busUsed := 0
	for pass := 0; pass < 2; pass++ {
		evs := carry
		if pass == 1 {
			evs = slotEvs
		}
		for _, ev := range evs {
			e := m.liveEntry(ev)
			if e == nil {
				continue
			}
			switch ev.kind {
			case evComplete:
				m.stats.ResourceRequests++
				if busUsed >= m.cfg.WBWidth {
					m.stats.ResourceDenials++
					m.wbCarry = append(m.wbCarry, ev)
					continue
				}
				busUsed++
				m.complete(ev.idx, e)
			case evVerify:
				m.verify(ev.idx, e)
			}
		}
	}
	m.wheel[slot] = slotEvs[:0]
	m.evScratch = carry[:0]
	m.drainFinalQ()
	return nil
}

// complete finishes one execution of an instruction.
func (m *Machine) complete(idx int32, e *robEntry) {
	e.executing = false
	e.execCount++
	m.traceEvent(e, func(ev *PipeEvent) { ev.Done = m.cycle })

	// Record the outcome.
	if e.isCtl {
		e.actualTaken = e.pendTaken
		e.actualNext = e.pendNext
	}
	if e.isStore {
		// Agen done: publish the address for disambiguation.
		e.addrKnown = true
		e.addr = e.pendAddr
		if e.lsq >= 0 {
			m.lsq[e.lsq].addrKnown = true
			m.lsq[e.lsq].addr = e.pendAddr
		}
	}
	if e.isLoad {
		e.addr = e.pendAddr
	}

	newVal := e.pendResult
	if e.in.Op == isa.OpJALR {
		newVal = isa.Word(e.pc + 4) // register result is the link, not the target
	}
	e.computed = newVal
	e.hasComputed = true

	if e.predicted && !e.verifyDone {
		// Consumers keep the predicted value; the comparison happens at
		// verification time (checkFinal schedules it once stable).
	} else {
		changed := !e.hasResult || e.result != newVal
		e.hasResult = true
		e.result = newVal
		if changed {
			m.broadcast(e, newVal)
		}
	}

	// IR: buffer the work (including wrong-path work) at completion. This
	// happens in late-validation mode too — Figure 3's "late" defers only
	// the benefit of a hit, not the buffering.
	if m.rb != nil {
		m.insertRB(e)
	}

	// Branch resolution policy: SB (and base/IR) resolves at execution;
	// NSB waits for finalization.
	if e.isCtl && !e.finalResolved {
		if !(m.vpActive() && m.cfg.VP.Resolution == NSB) {
			m.resolveBranch(idx, e)
		}
	}

	// A broadcast during the execution may have requested a re-execution;
	// with the entry no longer executing it can enter the issue queue.
	m.enqueueIssue(idx, e)
	m.enqueueFinal(idx)
}

// insertRB writes one completed execution into the reuse buffer.
func (m *Machine) insertRB(e *robEntry) {
	// A load issued on a predicted address may have executed before its
	// base operand was even available: the snapshot then does not imply the
	// address that was read, and buffering the pair would let a later reuse
	// return a value from the wrong location. Only internally consistent
	// load executions enter the buffer (this matters in the hybrid machine,
	// where address prediction and reuse coexist).
	if e.isLoad && emu.EffAddr(e.in, e.snapVal[0]) != e.pendAddr {
		return
	}
	l := m.rb.Insert(e.pc, e.in, e.snapVal[0], e.snapVal[1], e.pendResult, e.pendAddr,
		e.srcFrom[0], e.srcFrom[1], false, e.pendForwarded)
	if l.Idx >= 0 {
		e.rbLink = l
		e.insertedRB = true
	}
}

// verify compares a value prediction against the computed result; on a
// mismatch the corrected value is broadcast now — this is where the
// VP-verification latency is charged, and the first instruction of the
// dependent chain is the only one that pays it (§4.1.3).
func (m *Machine) verify(idx int32, e *robEntry) {
	if e.verifyDone || !e.hasComputed {
		return
	}
	e.verifyDone = true
	actual := e.computed
	e.hasResult = true
	if actual != e.predVal {
		if m.obs != nil {
			m.obs.vpMispredictEvent(m.cycle, e)
		}
		e.result = actual
		m.broadcast(e, actual)
	} else {
		e.result = actual
	}
	m.enqueueFinal(idx)
}

// broadcast delivers a (possibly new) result value to all consumers.
// Consumers that already executed with a different value are marked for
// re-execution; under ME they re-issue as soon as they can, under NME the
// issue stage holds them until all their inputs are final.
func (m *Machine) broadcast(e *robEntry, val isa.Word) {
	for _, c := range e.consumers {
		t := &m.rob[c.idx]
		if !t.valid || t.seq != c.seq {
			continue
		}
		if t.srcReady[c.slot] && t.srcVal[c.slot] == val {
			continue
		}
		t.srcReady[c.slot] = true
		t.srcVal[c.slot] = val
		t.srcFinal[c.slot] = false
		if (t.execCount > 0 || t.executing) && !t.snapshotCurrent() {
			t.needExec = true
		}
		m.enqueueIssue(c.idx, t)
	}
}

// enqueueFinal marks an entry for a finality re-check this cycle. The
// inFinalQ flag suppresses duplicates while the entry is still pending —
// re-checking an unchanged entry is a no-op, so only the first of a batch
// of wakes needs a queue slot.
func (m *Machine) enqueueFinal(idx int32) {
	e := &m.rob[idx]
	if e.inFinalQ {
		return
	}
	e.inFinalQ = true
	m.finalQ = append(m.finalQ, idx)
}

// drainFinalQ runs finality checks to a fixpoint. Finality propagates
// through consumer lists within a single cycle (the verification latency is
// charged only at prediction points, matching §4.1.4).
func (m *Machine) drainFinalQ() {
	// Index-based drain so the queue keeps its backing array; checkFinal
	// may append more work while we iterate (len is re-read every pass).
	// The pending flag clears before the check, so a wake caused by a
	// later queue item re-enqueues the entry within the same drain.
	for i := 0; i < len(m.finalQ); i++ {
		idx := m.finalQ[i]
		e := &m.rob[idx]
		e.inFinalQ = false
		if !e.valid || e.final {
			continue
		}
		m.checkFinal(idx, e)
	}
	m.finalQ = m.finalQ[:0]
}

// checkFinal applies the finalization rules (see DESIGN.md §5):
// all inputs final + a stable result; predicted entries additionally wait
// out the verification latency.
func (m *Machine) checkFinal(idx int32, e *robEntry) {
	if e.final || !e.allSrcFinal() {
		return
	}
	// Stable result?
	switch {
	case e.reused:
		// finalized at decode; never reaches here
	case !e.needsExecution():
		// J/JAL/syscall/addr-reused stores: nothing to execute
		if e.isStore && !e.addrKnown {
			return
		}
	default:
		if e.executing || e.needExec || e.execCount == 0 {
			return
		}
		if !e.snapshotCurrent() {
			e.needExec = true
			m.enqueueIssue(idx, e)
			return
		}
	}
	if e.predicted && !e.verifyDone {
		if !e.verifySched {
			e.verifySched = true
			if m.cfg.VP.VerifyLat == 0 {
				m.verify(idx, e)
				if e.final {
					return
				}
				// verify enqueued a re-check; fall through on next drain
				return
			}
			m.schedule(uint64(m.cfg.VP.VerifyLat), event{kind: evVerify, idx: idx, seq: e.seq})
		}
		return
	}
	m.finalize(idx, e)
}

// needsExecution reports whether the entry must pass through a functional
// unit at least once.
func (e *robEntry) needsExecution() bool {
	op := e.in.Op
	if op == isa.OpJ || op == isa.OpJAL || op.Serializes() {
		return false
	}
	if e.reused {
		return false
	}
	if e.isStore && e.addrReused {
		return false // the agen was reused; data is handled at commit
	}
	return true
}

// finalize marks an entry's result as architecturally final and propagates
// finality to consumers; NSB branches resolve here.
func (m *Machine) finalize(idx int32, e *robEntry) {
	if e.final {
		return
	}
	e.final = true
	e.finalAt = m.cycle
	e.needExec = false
	if !e.hasResult {
		e.hasResult = true
	}

	for _, c := range e.consumers {
		t := &m.rob[c.idx]
		if !t.valid || t.seq != c.seq {
			continue
		}
		if !t.srcReady[c.slot] || t.srcVal[c.slot] != e.result {
			t.srcReady[c.slot] = true
			t.srcVal[c.slot] = e.result
			if (t.execCount > 0 || t.executing) && !t.snapshotCurrent() {
				t.needExec = true
			}
		}
		t.srcFinal[c.slot] = true
		m.enqueueIssue(c.idx, t)
		m.enqueueFinal(c.idx)
	}

	if e.isCtl && !e.finalResolved {
		m.resolveBranch(idx, e)
		e.finalResolved = true
		if e.checkpoint != nil {
			m.freeCkpt(e.checkpoint)
			e.checkpoint = nil
			m.unresolved--
		}
	}
}

// resolveBranch takes the action on a branch outcome: if the machine is
// following a different path, squash and redirect. Squashes that steer
// toward a path that is not the final correct one are spurious (§4.2.2).
func (m *Machine) resolveBranch(idx int32, e *robEntry) {
	if !e.resolvedOnce {
		e.resolvedOnce = true
		e.resolveCycle = m.cycle
	}
	if e.actualNext == e.curPath {
		return
	}
	m.stats.Squashes++
	spurious := e.traceIdx >= 0 && e.traceIdx+1 < int64(m.oracle.Len()) &&
		e.actualNext != m.oracle.PC[e.traceIdx+1]
	if spurious {
		m.stats.SpuriousSquashes++
	}
	if m.obs != nil {
		m.obs.squashEvent(m.cycle, e.pc, e.seq, e.actualNext, spurious)
	}
	m.squashAfter(idx, e)
}
