package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/vpir-sim/vpir/internal/bpred"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// randomConfig builds a random but valid machine configuration: every
// structural knob (pipeline widths, window sizes, table geometries, cache
// shapes, latencies) is drawn from a set Validate accepts, and the
// technique cycles through base/VP/IR/hybrid with random policy knobs.
// Everything is derived from rng, so a fixed seed reproduces the exact
// sequence a failure reported.
func randomConfig(rng *rand.Rand) Config {
	pick := func(vals ...int) int { return vals[rng.Intn(len(vals))] }
	c := DefaultConfig()
	c.FetchWidth = pick(2, 4, 8)
	c.DecodeWidth = pick(2, 4, 8)
	c.IssueWidth = pick(2, 4, 8)
	c.CommitWidth = pick(2, 4, 8)
	c.WBWidth = pick(2, 4, 8)
	c.ROBSize = pick(16, 32, 64)
	c.LSQSize = pick(16, 32, 48)
	c.MaxBranches = pick(4, 8, 16)
	c.FetchQueue = pick(8, 16, 32)
	c.IntALUs = pick(4, 8)
	c.MemPorts = pick(1, 2)
	c.FPAdders = pick(2, 4)
	c.ICache = mem.CacheConfig{
		SizeBytes: pick(16<<10, 64<<10), Ways: pick(1, 2, 4), LineBytes: pick(16, 32),
		HitLatency: 1, MissLatency: pick(4, 6, 12), Ports: 1,
	}
	c.DCache = mem.CacheConfig{
		SizeBytes: pick(16<<10, 64<<10), Ways: pick(1, 2, 4), LineBytes: pick(16, 32),
		HitLatency: 1, MissLatency: pick(4, 6, 12), Ports: pick(1, 2),
	}
	c.Bpred = bpred.Config{
		HistoryBits: pick(8, 10), TableEntries: pick(4<<10, 16<<10),
		BTBSets: pick(256, 512), RASDepth: pick(8, 16),
	}

	schemes := []vp.Scheme{vp.Magic, vp.LVP, vp.Stride, vp.TwoDelta, vp.FCM}
	scheme := schemes[rng.Intn(len(schemes))]
	res := BranchResolution(rng.Intn(2))
	re := ReexecPolicy(rng.Intn(2))
	vlat := rng.Intn(2)
	switch rng.Intn(4) {
	case 0:
		c.Technique = TechNone
	case 1:
		c.Technique = TechVP
	case 2:
		c.Technique = TechIR
	default:
		c.Technique = TechHybrid
		c.HybridArb = HybridPolicy(rng.Intn(2))
	}
	c.VP.Scheme = scheme
	c.VP.Resolution = res
	c.VP.Reexec = re
	c.VP.VerifyLat = vlat
	c.VP.PredictAddresses = rng.Intn(2) == 0
	tableEntries := pick(1<<10, 4<<10, 16<<10)
	tableWays := pick(2, 4)
	c.VP.ResultTable = vp.Config{Entries: tableEntries, Ways: tableWays, Scheme: scheme, ConfThreshold: 2, ConfMax: 3}
	c.VP.AddrTable = c.VP.ResultTable
	c.IR.LateValidation = rng.Intn(2) == 0
	c.IR.Buffer = reuse.Config{Entries: pick(1<<10, 4<<10), Ways: pick(2, 4)}
	return c
}

// TestDifferentialRandomConfigs is the speculation-is-performance-only
// property under configuration fuzzing: whatever the machine shape and
// whichever redundancy technique is active, the architectural results —
// program Output, ExitCode and the committed instruction count — must be
// bit-identical to the base machine's. A VP misprediction or a bad reuse
// that escapes into architectural state shows up here as an Output diff
// (and usually first as the machine's own oracle divergence error).
func TestDifferentialRandomConfigs(t *testing.T) {
	const (
		maxInsts = 25_000
		rounds   = 10
	)
	benches := workload.Names()
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < rounds; round++ {
		bench := benches[rng.Intn(len(benches))]
		cfg := randomConfig(rng)
		// Force a speculation technique on half the rounds so base-only
		// draws don't dominate.
		if round%2 == 0 && cfg.Technique == TechNone {
			cfg.Technique = Technique(1 + rng.Intn(3))
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("round %d: randomConfig produced an invalid config: %v", round, err)
		}
		w, err := workload.Get(bench)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Load(1)
		if err != nil {
			t.Fatal(err)
		}

		base, err := New(p, DefaultConfig(), maxInsts)
		if err != nil {
			t.Fatal(err)
		}
		if err := base.Run(0); err != nil {
			t.Fatalf("round %d: base run: %v", round, err)
		}

		m, err := New(p, cfg, maxInsts)
		if err != nil {
			t.Fatalf("round %d (%s, %s): New: %v", round, bench, cfg.Key(), err)
		}
		if err := m.Run(0); err != nil {
			t.Fatalf("round %d (%s, %s): Run: %v", round, bench, cfg.Key(), err)
		}
		if m.Output() != base.Output() {
			t.Errorf("round %d (%s, %s): Output diverged from base machine", round, bench, cfg.Key())
		}
		if m.ExitCode() != base.ExitCode() {
			t.Errorf("round %d (%s, %s): ExitCode %d != base %d",
				round, bench, cfg.Key(), m.ExitCode(), base.ExitCode())
		}
		if m.Stats().Committed != base.Stats().Committed {
			t.Errorf("round %d (%s, %s): Committed %d != base %d",
				round, bench, cfg.Key(), m.Stats().Committed, base.Stats().Committed)
		}
	}
}

// TestSkipInvarianceRandomConfigs is the quiescence skipper's invisibility
// contract under configuration fuzzing: for any machine shape and
// technique, a run with cycle skipping must be bit-identical to the legacy
// cycle-by-cycle loop in everything externally visible — Stats, Output,
// ExitCode, the pipetrace schedule, the interval samples and the
// structured event log. CyclesSkipped is the one value allowed (and, on
// stalling workloads, required) to differ. Every fourth round runs the
// chase stall kernel uncapped so the skipper actually fires hard; the
// paper kernels mostly pin the "skipping rarely applies but never hurts"
// side.
func TestSkipInvarianceRandomConfigs(t *testing.T) {
	const (
		maxInsts = 25_000
		rounds   = 8
	)
	benches := workload.Names()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		bench := benches[rng.Intn(len(benches))]
		cap := uint64(maxInsts)
		if round%4 == 0 {
			bench, cap = "chase", 0 // full stall run: heavy skipping
		}
		cfg := randomConfig(rng)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("round %d: invalid random config: %v", round, err)
		}
		w, err := workload.Get(bench)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		run := func(skip bool) (*Machine, *PipeTracer, *Observer) {
			m, err := New(p, cfg, cap)
			if err != nil {
				t.Fatalf("round %d (%s, %s): New: %v", round, bench, cfg.Key(), err)
			}
			m.SetCycleSkipping(skip)
			tr := &PipeTracer{Max: 512, Ring: true}
			m.Trace(tr)
			o := NewObserver(1000, 0)
			m.AttachObserver(o)
			if err := m.Run(0); err != nil {
				t.Fatalf("round %d (%s, %s, skip=%v): Run: %v", round, bench, cfg.Key(), skip, err)
			}
			return m, tr, o
		}
		fast, fastTr, fastObs := run(true)
		slow, slowTr, slowObs := run(false)

		if slow.CyclesSkipped() != 0 {
			t.Fatalf("round %d: legacy loop skipped %d cycles", round, slow.CyclesSkipped())
		}
		if bench == "chase" && fast.CyclesSkipped() == 0 {
			t.Errorf("round %d: chase run skipped nothing; the property is vacuous", round)
		}
		if fast.Stats() != slow.Stats() {
			t.Errorf("round %d (%s, %s): Stats diverge\n skip:   %+v\n legacy: %+v",
				round, bench, cfg.Key(), fast.Stats(), slow.Stats())
		}
		if fast.Output() != slow.Output() || fast.ExitCode() != slow.ExitCode() {
			t.Errorf("round %d (%s, %s): architectural results diverge", round, bench, cfg.Key())
		}
		if !reflect.DeepEqual(fastTr.Ordered(), slowTr.Ordered()) {
			t.Errorf("round %d (%s, %s): pipetrace schedules diverge", round, bench, cfg.Key())
		}
		if !reflect.DeepEqual(fastObs.Series().Samples(), slowObs.Series().Samples()) {
			t.Errorf("round %d (%s, %s): interval samples diverge", round, bench, cfg.Key())
		}
		if !reflect.DeepEqual(fastObs.Events().Events(), slowObs.Events().Events()) {
			t.Errorf("round %d (%s, %s): structured event logs diverge", round, bench, cfg.Key())
		}
	}
}

// TestResetDeterminismRandomConfigs folds TestResetDeterminism's contract
// into configuration fuzzing: one long-lived machine is Reset through a
// sequence of random configurations — so every Reset inherits arbitrary
// leftover geometry from the previous run — and each run must still be
// bit-identical (Stats, Output, ExitCode) to a machine built fresh.
func TestResetDeterminismRandomConfigs(t *testing.T) {
	const (
		maxInsts = 25_000
		configs  = 6
	)
	rng := rand.New(rand.NewSource(7))
	for _, bench := range []string{"vortex", "go"} { // go is the branchiest kernel
		w, err := workload.Get(bench)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		var reused *Machine
		for i := 0; i < configs; i++ {
			cfg := randomConfig(rng)
			fresh, err := New(p, cfg, maxInsts)
			if err != nil {
				t.Fatalf("%s config %d (%s): %v", bench, i, cfg.Key(), err)
			}
			if err := fresh.Run(0); err != nil {
				t.Fatalf("%s config %d (%s): %v", bench, i, cfg.Key(), err)
			}
			if reused == nil {
				reused, err = New(p, cfg, maxInsts)
				if err != nil {
					t.Fatal(err)
				}
			} else if err := reused.Reset(cfg); err != nil {
				t.Fatalf("%s config %d (%s): Reset: %v", bench, i, cfg.Key(), err)
			}
			if err := reused.Run(0); err != nil {
				t.Fatalf("%s config %d (%s): reused Run: %v", bench, i, cfg.Key(), err)
			}
			if reused.Stats() != fresh.Stats() {
				t.Errorf("%s config %d (%s): reused Stats differ from fresh\n reused: %+v\n fresh:  %+v",
					bench, i, cfg.Key(), reused.Stats(), fresh.Stats())
			}
			if reused.Output() != fresh.Output() {
				t.Errorf("%s config %d (%s): reused Output differs from fresh", bench, i, cfg.Key())
			}
			if reused.ExitCode() != fresh.ExitCode() {
				t.Errorf("%s config %d (%s): exit %d != fresh %d",
					bench, i, cfg.Key(), reused.ExitCode(), fresh.ExitCode())
			}
		}
	}
}
