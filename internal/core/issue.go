package core

import (
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
)

// fuFor maps a functional-unit class to its pool.
func (m *Machine) fuFor(class isa.FUClass) *fuPool {
	switch class {
	case isa.FUIntALU:
		return m.aluPool
	case isa.FULoad, isa.FUStore:
		return m.lsPool
	case isa.FUIntMult, isa.FUIntDiv:
		return m.imdPool
	case isa.FUFPAdd:
		return m.fpaPool
	case isa.FUFPMult, isa.FUFPDiv, isa.FUFPSqrt:
		return m.fpmPool
	}
	return nil
}

// issue selects up to IssueWidth ready instructions (oldest first) and
// starts their execution, charging functional-unit and cache-port
// contention per §4.2.3.
func (m *Machine) issue() {
	issued := 0
	m.forEachROB(func(idx int32, e *robEntry) bool {
		if issued >= m.cfg.IssueWidth {
			return false
		}
		if !e.needExec || e.executing || e.reused || e.final {
			return true
		}
		// NME: re-executions wait for all inputs to become final.
		if m.vpActive() && m.cfg.VP.Reexec == NME && e.execCount > 0 {
			if !e.allSrcFinal() {
				return true
			}
		}
		switch {
		case e.isLoad:
			if m.issueLoad(idx, e) {
				issued++
			}
		case e.isStore:
			if m.issueStore(idx, e) {
				issued++
			}
		default:
			if m.issueALU(idx, e) {
				issued++
			}
		}
		return true
	})
}

// issueALU starts a non-memory operation.
func (m *Machine) issueALU(idx int32, e *robEntry) bool {
	if !e.allSrcReady() {
		return false
	}
	info := e.in.Op.Info()
	pool := m.fuFor(info.FU)
	timing := isa.Timing[info.FU]
	if pool != nil {
		m.stats.ResourceRequests++
		if !pool.acquire(m.cycle, timing.IssueLat) {
			m.stats.ResourceDenials++
			return false
		}
	}
	m.beginExec(idx, e)

	s1, s2 := e.srcVal[0], e.srcVal[1]
	switch {
	case e.in.Op.IsCondBranch():
		e.pendTaken = emu.BranchTaken(e.in.Op, s1, s2)
		if e.pendTaken {
			e.pendNext = e.in.BranchTarget(e.pc)
		} else {
			e.pendNext = e.pc + 4
		}
		e.pendResult = 0
		if e.pendTaken {
			e.pendResult = 1
		}
	case e.in.Op == isa.OpJR || e.in.Op == isa.OpJALR:
		e.pendTaken = true
		e.pendNext = uint32(s1)
		e.pendResult = s1 // buffered result for indirect jumps is the target
	default:
		e.pendResult = emu.ALUResult(e.in, s1, s2, e.pc)
	}
	m.schedule(uint64(timing.Latency), event{kind: evComplete, idx: idx, seq: e.seq})
	return true
}

// issueStore starts a store's address generation. Disambiguation requires
// final addresses, so the base operand must be final.
func (m *Machine) issueStore(idx int32, e *robEntry) bool {
	if !(e.srcReady[0] && e.srcFinal[0]) {
		return false
	}
	m.stats.ResourceRequests++
	if !m.lsPool.acquire(m.cycle, 1) {
		m.stats.ResourceDenials++
		return false
	}
	m.beginExec(idx, e)
	e.pendAddr = emu.EffAddr(e.in, e.srcVal[0])
	e.pendResult = 0
	m.schedule(1, event{kind: evComplete, idx: idx, seq: e.seq})
	return true
}

// issueLoad starts a load: address generation (skipped when the address was
// reused or predicted), disambiguation against older stores, then either a
// forward from the store queue or a D-cache access.
func (m *Machine) issueLoad(idx int32, e *robEntry) bool {
	var addr uint32
	usedPred := false
	switch {
	case e.addrReused:
		addr = e.addr
	case e.srcReady[0]:
		addr = emu.EffAddr(e.in, e.srcVal[0])
	case e.addrPred:
		addr = e.predAddrVal
		usedPred = true
	default:
		return false // no address available yet
	}

	// Table 1: loads execute only after all preceding store addresses are
	// known. (A dependence stall, not resource contention.)
	fwd, haveFwd, blocked := m.scanStores(e, addr)
	if blocked {
		return false
	}

	// Acquire the cache port first (when needed), then the load/store unit,
	// so a denial never strands a half-acquired resource.
	if !haveFwd {
		m.stats.ResourceRequests++
		if m.dcPortsUsed >= m.cfg.MemPorts {
			m.stats.ResourceDenials++
			return false
		}
	}
	m.stats.ResourceRequests++
	if !m.lsPool.acquire(m.cycle, 1) {
		m.stats.ResourceDenials++
		return false
	}

	agen := uint64(1)
	if e.addrReused || usedPred {
		agen = 0 // the address computation was bypassed
	}
	var lat uint64
	if haveFwd {
		lat = agen + 1
		e.pendResult = extractLoad(e.in.Op, addr, fwd)
		e.pendForwarded = true
	} else {
		m.dcPortsUsed++
		lat = agen + uint64(m.dcache.Access(addr))
		e.pendResult = emu.LoadValue(m.mem, e.in.Op, addr)
		e.pendForwarded = false
	}
	m.beginExec(idx, e)
	e.pendAddr = addr
	e.usedPredAddr = usedPred
	m.schedule(lat, event{kind: evComplete, idx: idx, seq: e.seq})
	return true
}

// beginExec snapshots the operand values an execution will use.
func (m *Machine) beginExec(idx int32, e *robEntry) {
	e.executing = true
	e.needExec = false
	e.snapVal = e.srcVal
	e.snapValid = true
	m.stats.Executed++
	m.traceEvent(e, func(ev *PipeEvent) {
		if ev.Issue == 0 {
			ev.Issue = m.cycle
		}
		ev.Execs++
	})
}

// fwdSource describes a store-queue forward.
type fwdSource struct {
	addr  uint32
	width uint32
	data  isa.Word
}

// scanStores checks all older stores for the Table 1 disambiguation rules.
// It returns a forwarding source (with have=true) when the youngest older
// overlapping store fully contains the load and its data is final, or
// blocked=true when the load cannot execute yet. fwdSource is returned by
// value to keep the issue stage allocation-free.
func (m *Machine) scanStores(e *robEntry, addr uint32) (fwd fwdSource, have, blocked bool) {
	width := emu.LoadWidth(e.in.Op)
	// Scan youngest-to-oldest among older stores; the first overlap decides.
	for i := m.lsqCount - 1; i >= 0; i-- {
		slot := (m.lsqHead + i) % int32(m.cfg.LSQSize)
		q := &m.lsq[slot]
		if !q.valid || q.seq >= e.seq || !q.isStore {
			continue
		}
		if !q.addrKnown {
			return fwdSource{}, false, true // an older store address is unknown
		}
		if have {
			continue // already have the youngest overlap; older ones hidden
		}
		if q.addr < addr+width && addr < q.addr+q.width {
			// Overlap: forward only on full containment with final data.
			st := &m.rob[q.rob]
			dataFinal := st.valid && st.seq == q.seq && st.srcReady[1] && st.srcFinal[1]
			if addr >= q.addr && addr+width <= q.addr+q.width && dataFinal {
				fwd = fwdSource{addr: q.addr, width: q.width, data: st.srcVal[1]}
				have = true
				continue
			}
			return fwdSource{}, false, true // partial overlap or data not final: wait
		}
	}
	return fwd, have, false
}

// extractLoad slices the loaded bytes out of a forwarded store value.
func extractLoad(op isa.Op, addr uint32, f fwdSource) isa.Word {
	sh := 8 * (addr - f.addr)
	v := uint32(f.data) >> sh
	switch op {
	case isa.OpLB:
		return isa.Word(uint32(int32(int8(v))))
	case isa.OpLBU:
		return isa.Word(v & 0xFF)
	case isa.OpLH:
		return isa.Word(uint32(int32(int16(v))))
	case isa.OpLHU:
		return isa.Word(v & 0xFFFF)
	}
	return isa.Word(v)
}

// loadReuseSafe reports whether reusing a load's value at decode is
// non-speculative: every older store address must be known and none may
// overlap the load's bytes.
func (m *Machine) loadReuseSafe(e *robEntry, addr uint32) bool {
	width := emu.LoadWidth(e.in.Op)
	for i := m.lsqCount - 1; i >= 0; i-- {
		slot := (m.lsqHead + i) % int32(m.cfg.LSQSize)
		q := &m.lsq[slot]
		if !q.valid || q.seq >= e.seq || !q.isStore {
			continue
		}
		if !q.addrKnown {
			return false
		}
		if q.addr < addr+width && addr < q.addr+q.width {
			return false
		}
	}
	return true
}
