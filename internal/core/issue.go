package core

import (
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
)

// fuFor maps a functional-unit class to its pool.
func (m *Machine) fuFor(class isa.FUClass) *fuPool {
	switch class {
	case isa.FUIntALU:
		return m.aluPool
	case isa.FULoad, isa.FUStore:
		return m.lsPool
	case isa.FUIntMult, isa.FUIntDiv:
		return m.imdPool
	case isa.FUFPAdd:
		return m.fpaPool
	case isa.FUFPMult, isa.FUFPDiv, isa.FUFPSqrt:
		return m.fpmPool
	}
	return nil
}

// issueOutcome classifies one issue attempt so the queue knows whether to
// keep retrying the entry. The distinction preserves the per-cycle
// contention accounting of the old full-ROB scan: attempts that fail with
// stat side effects (resource denial) or on a condition with no targeted
// wake event (disambiguation) must retry every cycle, while operand waits
// are purely event-driven.
type issueOutcome uint8

const (
	// issuedOK: the execution started; the entry leaves the queue.
	issuedOK issueOutcome = iota
	// issueWait: blocked on a condition no wake event tracks (FU or cache
	// port denial, store-address disambiguation); retry next cycle.
	issueWait
	// issueSleep: an operand is missing or not final; leave the queue — a
	// broadcast or finalization of the producer re-enqueues the entry.
	issueSleep
)

// enqueueIssue adds an entry to the issue queue if it may be able to start
// an execution. Called on every transition that can wake a sleeping
// instruction: dispatch, an operand value arriving or changing
// (broadcast), an operand becoming final (finalize), a stale-snapshot
// re-execution demand (checkFinal) and completion with a pending
// re-execution request.
func (m *Machine) enqueueIssue(idx int32, e *robEntry) {
	if e.inIssueQ || !e.needExec || e.executing || e.reused || e.final {
		return
	}
	e.inIssueQ = true
	m.issueQ = append(m.issueQ, issueRef{idx: idx, seq: e.seq})
}

// issue starts up to IssueWidth ready instructions (oldest first), charging
// functional-unit and cache-port contention per §4.2.3. Candidates come
// from the dependency-driven issue queue, so the cost scales with ready
// work rather than ROB size; the preconditions checked here are exactly
// the old full-ROB scan's skip rules, making the cycle timing and stats
// identical to scanning.
func (m *Machine) issue() {
	q := m.issueQ
	if len(q) == 0 {
		return
	}
	// Oldest first. Dispatch enqueues in age order already, but wakeups
	// enqueue in event order; insertion sort is near-linear on the almost-
	// sorted queue and allocates nothing.
	for i := 1; i < len(q); i++ {
		it := q[i]
		j := i
		for j > 0 && q[j-1].seq > it.seq {
			q[j] = q[j-1]
			j--
		}
		q[j] = it
	}
	width := m.cfg.IssueWidth
	issued := 0
	kept := q[:0]
	for i := 0; i < len(q); i++ {
		it := q[i]
		e := &m.rob[it.idx]
		if !e.valid || e.seq != it.seq {
			continue // squashed; a recycled slot re-enqueues at dispatch
		}
		if issued >= width {
			kept = append(kept, q[i:]...) // in-place suffix move, len(kept) <= i
			break
		}
		if !e.needExec || e.executing || e.reused || e.final {
			e.inIssueQ = false
			continue
		}
		// NME: re-executions wait for all inputs to become final; the
		// finalize consumer walk re-enqueues when the last one lands.
		if m.vpActive() && m.cfg.VP.Reexec == NME && e.execCount > 0 && !e.allSrcFinal() {
			e.inIssueQ = false
			continue
		}
		var out issueOutcome
		switch {
		case e.isLoad:
			out = m.issueLoad(it.idx, e)
		case e.isStore:
			out = m.issueStore(it.idx, e)
		default:
			out = m.issueALU(it.idx, e)
		}
		switch out {
		case issuedOK:
			issued++
			e.inIssueQ = false
		case issueWait:
			kept = append(kept, it)
		default:
			e.inIssueQ = false
		}
	}
	m.issueQ = kept
}

// issueALU starts a non-memory operation.
func (m *Machine) issueALU(idx int32, e *robEntry) issueOutcome {
	if !e.allSrcReady() {
		return issueSleep
	}
	info := e.in.Op.Info()
	pool := m.fuFor(info.FU)
	timing := isa.Timing[info.FU]
	if pool != nil {
		m.stats.ResourceRequests++
		if !pool.acquire(m.cycle, timing.IssueLat) {
			m.stats.ResourceDenials++
			return issueWait
		}
	}
	m.beginExec(idx, e)

	s1, s2 := e.srcVal[0], e.srcVal[1]
	switch {
	case e.in.Op.IsCondBranch():
		e.pendTaken = emu.BranchTaken(e.in.Op, s1, s2)
		if e.pendTaken {
			e.pendNext = e.in.BranchTarget(e.pc)
		} else {
			e.pendNext = e.pc + 4
		}
		e.pendResult = 0
		if e.pendTaken {
			e.pendResult = 1
		}
	case e.in.Op == isa.OpJR || e.in.Op == isa.OpJALR:
		e.pendTaken = true
		e.pendNext = uint32(s1)
		e.pendResult = s1 // buffered result for indirect jumps is the target
	default:
		e.pendResult = emu.ALUResult(e.in, s1, s2, e.pc)
	}
	m.schedule(uint64(timing.Latency), event{kind: evComplete, idx: idx, seq: e.seq})
	return issuedOK
}

// issueStore starts a store's address generation. Disambiguation requires
// final addresses, so the base operand must be final.
func (m *Machine) issueStore(idx int32, e *robEntry) issueOutcome {
	if !(e.srcReady[0] && e.srcFinal[0]) {
		return issueSleep
	}
	m.stats.ResourceRequests++
	if !m.lsPool.acquire(m.cycle, 1) {
		m.stats.ResourceDenials++
		return issueWait
	}
	m.beginExec(idx, e)
	e.pendAddr = emu.EffAddr(e.in, e.srcVal[0])
	e.pendResult = 0
	m.schedule(1, event{kind: evComplete, idx: idx, seq: e.seq})
	return issuedOK
}

// issueLoad starts a load: address generation (skipped when the address was
// reused or predicted), disambiguation against older stores, then either a
// forward from the store queue or a D-cache access.
func (m *Machine) issueLoad(idx int32, e *robEntry) issueOutcome {
	var addr uint32
	usedPred := false
	switch {
	case e.addrReused:
		addr = e.addr
	case e.srcReady[0]:
		addr = emu.EffAddr(e.in, e.srcVal[0])
	case e.addrPred:
		addr = e.predAddrVal
		usedPred = true
	default:
		return issueSleep // no address available yet
	}

	// Table 1: loads execute only after all preceding store addresses are
	// known. (A dependence stall, not resource contention.) No event marks
	// a store address becoming known, so the load polls from the queue.
	fwd, haveFwd, blocked := m.scanStores(e, addr)
	if blocked {
		return issueWait
	}

	// Acquire the cache port first (when needed), then the load/store unit,
	// so a denial never strands a half-acquired resource.
	if !haveFwd {
		m.stats.ResourceRequests++
		if m.dcPortsUsed >= m.cfg.MemPorts {
			m.stats.ResourceDenials++
			return issueWait
		}
	}
	m.stats.ResourceRequests++
	if !m.lsPool.acquire(m.cycle, 1) {
		m.stats.ResourceDenials++
		return issueWait
	}

	agen := uint64(1)
	if e.addrReused || usedPred {
		agen = 0 // the address computation was bypassed
	}
	var lat uint64
	if haveFwd {
		lat = agen + 1
		e.pendResult = extractLoad(e.in.Op, addr, fwd)
		e.pendForwarded = true
	} else {
		m.dcPortsUsed++
		lat = agen + uint64(m.dcache.Access(addr))
		e.pendResult = emu.LoadValue(m.mem, e.in.Op, addr)
		e.pendForwarded = false
	}
	m.beginExec(idx, e)
	e.pendAddr = addr
	e.usedPredAddr = usedPred
	m.schedule(lat, event{kind: evComplete, idx: idx, seq: e.seq})
	return issuedOK
}

// beginExec snapshots the operand values an execution will use.
func (m *Machine) beginExec(idx int32, e *robEntry) {
	e.executing = true
	e.needExec = false
	e.snapVal = e.srcVal
	e.snapValid = true
	m.stats.Executed++
	m.traceEvent(e, func(ev *PipeEvent) {
		if ev.Issue == 0 {
			ev.Issue = m.cycle
		}
		ev.Execs++
	})
}

// fwdSource describes a store-queue forward.
type fwdSource struct {
	addr  uint32
	width uint32
	data  isa.Word
}

// scanStores checks all older stores for the Table 1 disambiguation rules.
// It returns a forwarding source (with have=true) when the youngest older
// overlapping store fully contains the load and its data is final, or
// blocked=true when the load cannot execute yet. fwdSource is returned by
// value to keep the issue stage allocation-free.
func (m *Machine) scanStores(e *robEntry, addr uint32) (fwd fwdSource, have, blocked bool) {
	width := emu.LoadWidth(e.in.Op)
	// Scan youngest-to-oldest among older stores; the first overlap decides.
	for i := m.lsqCount - 1; i >= 0; i-- {
		slot := wrap(m.lsqHead+i, int32(m.cfg.LSQSize))
		q := &m.lsq[slot]
		if !q.valid || q.seq >= e.seq || !q.isStore {
			continue
		}
		if !q.addrKnown {
			return fwdSource{}, false, true // an older store address is unknown
		}
		if have {
			continue // already have the youngest overlap; older ones hidden
		}
		if q.addr < addr+width && addr < q.addr+q.width {
			// Overlap: forward only on full containment with final data.
			st := &m.rob[q.rob]
			dataFinal := st.valid && st.seq == q.seq && st.srcReady[1] && st.srcFinal[1]
			if addr >= q.addr && addr+width <= q.addr+q.width && dataFinal {
				fwd = fwdSource{addr: q.addr, width: q.width, data: st.srcVal[1]}
				have = true
				continue
			}
			return fwdSource{}, false, true // partial overlap or data not final: wait
		}
	}
	return fwd, have, false
}

// extractLoad slices the loaded bytes out of a forwarded store value.
func extractLoad(op isa.Op, addr uint32, f fwdSource) isa.Word {
	sh := 8 * (addr - f.addr)
	v := uint32(f.data) >> sh
	switch op {
	case isa.OpLB:
		return isa.Word(uint32(int32(int8(v))))
	case isa.OpLBU:
		return isa.Word(v & 0xFF)
	case isa.OpLH:
		return isa.Word(uint32(int32(int16(v))))
	case isa.OpLHU:
		return isa.Word(v & 0xFFFF)
	}
	return isa.Word(v)
}

// loadReuseSafe reports whether reusing a load's value at decode is
// non-speculative: every older store address must be known and none may
// overlap the load's bytes.
func (m *Machine) loadReuseSafe(e *robEntry, addr uint32) bool {
	width := emu.LoadWidth(e.in.Op)
	for i := m.lsqCount - 1; i >= 0; i-- {
		slot := wrap(m.lsqHead+i, int32(m.cfg.LSQSize))
		q := &m.lsq[slot]
		if !q.valid || q.seq >= e.seq || !q.isStore {
			continue
		}
		if !q.addrKnown {
			return false
		}
		if q.addr < addr+width && addr < q.addr+q.width {
			return false
		}
	}
	return true
}
