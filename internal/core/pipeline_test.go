package core

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/vp"
)

// buildMachine assembles source and builds a machine without running it.
func buildMachine(t *testing.T, src string, cfg Config) *Machine {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runSrc assembles, runs to completion, and returns the machine.
func runSrc(t *testing.T, src string, cfg Config) *Machine {
	t.Helper()
	m := buildMachine(t, src, cfg)
	if err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	return m
}

const tinyExit = `
        .text
main:   li $v0, 10
        syscall
`

// TestFigure2BasePipeline pins the cycle-by-cycle behaviour of Figure 2:
// a dependent chain I,J,K on the base machine commits I at cycle 4, J at 5,
// K at 6 (our cycle numbers are 0-based internally, so total = 7 cycles
// including the syscall drain is not asserted here — only the relative
// spacing of the dependent commits).
func TestFigure2DependentChainSpacing(t *testing.T) {
	// Three dependent single-cycle ops behind two iterations of warmup.
	src := `
        .text
main:   li   $t0, 1
        addu $t1, $t0, $t0   # I
        addu $t2, $t1, $t1   # J
        addu $t3, $t2, $t2   # K
        li   $v0, 10
        syscall
`
	base := runSrc(t, src, DefaultConfig())
	ir := runSrc(t, src, IRChoice(false))
	// The dependent chain serializes on the base machine; nothing to reuse
	// on a cold buffer, so both should take the same cycles.
	if base.Stats().Cycles != ir.Stats().Cycles {
		t.Errorf("cold IR changed timing: base %d vs IR %d",
			base.Stats().Cycles, ir.Stats().Cycles)
	}
	if base.Stats().Committed != 6 {
		t.Errorf("committed = %d", base.Stats().Committed)
	}
}

// TestSerializingSyscallDrains: a syscall must wait for an empty ROB, so
// instructions never pass it.
func TestSerializingSyscallDrains(t *testing.T) {
	m := runSrc(t, `
        .text
main:   li   $a0, 1
        li   $v0, 1
        syscall           # print
        li   $a0, 2
        li   $v0, 1
        syscall           # print
        li   $v0, 10
        syscall
`, DefaultConfig())
	if m.Output() != "12" {
		t.Errorf("output = %q, want 12 in order", m.Output())
	}
}

// TestROBNeverExceeded: instrument a long run and verify the ROB occupancy
// invariant via the public stats (committed == oracle length implies no
// corruption; the ring arithmetic is exercised by ROBSize wraps).
func TestROBWrapsManyTimes(t *testing.T) {
	m := runSrc(t, `
        .text
main:   li   $t0, 0
loop:   addiu $t0, $t0, 1
        slti $at, $t0, 500
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	s := m.Stats()
	if s.Committed < 1500 {
		t.Errorf("committed = %d", s.Committed)
	}
}

// TestMaxBranchesLimit: with MaxBranches=1 the machine still runs correctly
// (dispatch stalls rather than breaking).
func TestMaxBranchesLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBranches = 1
	m := runSrc(t, `
        .text
main:   li   $t0, 0
        li   $t1, 0
loop:   andi $t2, $t0, 3
        beqz $t2, skip
        addiu $t1, $t1, 1
skip:   addiu $t0, $t0, 1
        slti $at, $t0, 100
        bnez $at, loop
        move $a0, $t1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`, cfg)
	if m.Output() != "75" {
		t.Errorf("output = %q", m.Output())
	}
}

// TestTinyROB: a 4-entry ROB still produces correct execution.
func TestTinyROB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 4
	cfg.LSQSize = 4
	m := runSrc(t, `
        .data
v:      .word 5
        .text
main:   la   $t0, v
        lw   $t1, 0($t0)
        addiu $t1, $t1, 3
        sw   $t1, 0($t0)
        lw   $a0, 0($t0)
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`, cfg)
	if m.Output() != "8" {
		t.Errorf("output = %q", m.Output())
	}
}

// TestNarrowMachine: a 1-wide machine (fetch/decode/issue/commit all 1)
// must still match the oracle; IPC can be at most 1.
func TestNarrowMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchWidth, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth, cfg.WBWidth = 1, 1, 1, 1, 1
	m := runSrc(t, `
        .text
main:   li   $t0, 0
loop:   addiu $t0, $t0, 1
        slti $at, $t0, 50
        bnez $at, loop
        li   $v0, 10
        syscall
`, cfg)
	if ipc := m.Stats().IPC(); ipc > 1.0 {
		t.Errorf("1-wide machine has IPC %.3f > 1", ipc)
	}
}

// TestStoreLoadForwardWidths covers every store/load width combination
// through memory round trips with partial overlap, cross-checked by the
// oracle on a machine with store-to-load forwarding active.
func TestStoreLoadForwardWidths(t *testing.T) {
	m := runSrc(t, `
        .data
buf:    .space 16
        .text
main:   la   $s0, buf
        li   $t0, 0x1234ABCD
        sw   $t0, 0($s0)
        lb   $t1, 0($s0)      # 0xCD sign-extended
        lbu  $t2, 1($s0)      # 0xAB
        lh   $t3, 0($s0)      # 0xABCD sign-extended
        lhu  $t4, 2($s0)      # 0x1234
        lw   $t5, 0($s0)
        sb   $t0, 4($s0)      # byte store then wider load (no forward: wait)
        lw   $t6, 4($s0)
        addu $a0, $t1, $t2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`, DefaultConfig())
	// lb = -51 (0xCD sign ext), lbu = 171 -> sum = 120
	if m.Output() != "120" {
		t.Errorf("output = %q", m.Output())
	}
}

// TestExtractLoadProperty: forwarding extraction must agree with a memory
// write-then-read for all contained (addr, width) combinations.
func TestExtractLoadProperty(t *testing.T) {
	f := func(data uint32, off uint8) bool {
		base := uint32(0x1000)
		fw := fwdSource{addr: base, width: 4, data: isa.Word(data)}
		// Compare against an actual memory round trip.
		for _, c := range []struct {
			op    isa.Op
			width uint32
		}{{isa.OpLB, 1}, {isa.OpLBU, 1}, {isa.OpLH, 2}, {isa.OpLHU, 2}, {isa.OpLW, 4}} {
			o := uint32(off) % (4 - c.width + 1)
			if c.width == 2 {
				o &^= 1
			}
			if c.width == 4 {
				o = 0
			}
			addr := base + o
			got := extractLoad(c.op, addr, fw)
			mem := memRoundTrip(data, c.op, o)
			if got != mem {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func memRoundTrip(data uint32, op isa.Op, off uint32) isa.Word {
	m := newTestMemory()
	m.StoreWord(0x1000, data)
	return emu.LoadValue(m, op, 0x1000+off)
}

// TestNSBNeverSpurious: under NSB, VP must not add squashes over base.
func TestNSBNeverSpurious(t *testing.T) {
	for _, name := range []string{"branchy", "redundant"} {
		base := runProg(t, name, DefaultConfig())
		nsb := runProg(t, name, VPChoice(vp.LVP, NSB, ME, 1))
		if nsb.Stats().Squashes > base.Stats().Squashes {
			t.Errorf("%s: NSB squashes %d > base %d", name,
				nsb.Stats().Squashes, base.Stats().Squashes)
		}
		if nsb.Stats().SpuriousSquashes != 0 {
			t.Errorf("%s: NSB has %d spurious squashes", name, nsb.Stats().SpuriousSquashes)
		}
	}
}

// TestSBResolvesNoLaterThanNSB: mean branch resolution latency under SB
// must be <= NSB for the same scheme and latency.
func TestSBResolvesNoLaterThanNSB(t *testing.T) {
	sb := runProg(t, "branchy", VPChoice(vp.Magic, SB, ME, 1))
	nsb := runProg(t, "branchy", VPChoice(vp.Magic, NSB, ME, 1))
	if sb.Stats().MeanBrResolveLat() > nsb.Stats().MeanBrResolveLat()+1e-9 {
		t.Errorf("SB resolve %.3f > NSB %.3f",
			sb.Stats().MeanBrResolveLat(), nsb.Stats().MeanBrResolveLat())
	}
}

// TestICacheMissesStallFetch: a program whose hot loop spans many lines
// must show I-cache accesses and (with a tiny cache) misses.
func TestICacheMissesVisible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ICache.SizeBytes = 128 // 2 lines per way: guaranteed conflict misses
	m := runSrc(t, `
        .text
main:   li   $t0, 0
loop:   addiu $t0, $t0, 1
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        slti $at, $t0, 30
        bnez $at, loop
        li   $v0, 10
        syscall
`, cfg)
	s := m.Stats()
	if s.ICacheMisses == 0 {
		t.Error("no I-cache misses with a 128-byte cache")
	}
	// The same program on the default cache must be faster.
	big := runSrc(t, `
        .text
main:   li   $t0, 0
loop:   addiu $t0, $t0, 1
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        slti $at, $t0, 30
        bnez $at, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	if big.Stats().Cycles >= m.Stats().Cycles {
		t.Errorf("bigger icache not faster: %d vs %d", big.Stats().Cycles, m.Stats().Cycles)
	}
}

// TestDivergenceErrorIsDescriptive: breaking the oracle intentionally is
// not possible from outside, so instead check the formatting path.
func TestDivergenceErrorFormat(t *testing.T) {
	m := buildMachine(t, tinyExit, DefaultConfig())
	e := &robEntry{pc: 0x400000, traceIdx: 3}
	in := isa.Decode(isa.EncodeNullary(isa.OpSYSCALL))
	e.in = &in
	err := m.divergence(e, "result", 1, 2)
	for _, want := range []string{"0x400000", "inst 3", "result", "got 1 want 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("divergence error %q missing %q", err, want)
		}
	}
}

// TestLongLatencyUnitsSerialize: two back-to-back divides must be spaced by
// the divide unit's issue latency (19 cycles), visible as a cycle floor.
func TestLongLatencyUnitsSerialize(t *testing.T) {
	m := runSrc(t, `
        .text
main:   li   $t0, 1000
        li   $t1, 7
        li   $t2, 13
        div  $t0, $t1
        mflo $t3
        div  $t0, $t2
        mflo $t4
        addu $a0, $t3, $t4
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`, DefaultConfig())
	// 142 + 76 = 218; two divides at 20-cycle latency with a 19-cycle
	// issue interval set a floor of ~40 cycles.
	if m.Output() != "218" {
		t.Errorf("output = %q", m.Output())
	}
	if m.Stats().Cycles < 40 {
		t.Errorf("cycles = %d, expected >= 40 for two serialized divides", m.Stats().Cycles)
	}
}

// TestFetchStopsAtTakenBranch: with perfect prediction of an always-taken
// loop branch, the front end fetches at most up to the branch each cycle.
func TestOneTakenBranchPerCycle(t *testing.T) {
	// A 2-instruction loop: addiu + bnez(taken). Fetch delivers at most
	// those 2 per cycle, so IPC can never exceed 2.
	m := runSrc(t, `
        .text
main:   li   $t0, 1000
loop:   addiu $t0, $t0, -1
        bnez $t0, loop
        li   $v0, 10
        syscall
`, DefaultConfig())
	if ipc := m.Stats().IPC(); ipc > 2.01 {
		t.Errorf("IPC %.3f exceeds the taken-branch fetch limit", ipc)
	}
}

// newTestMemory builds an empty memory for property tests.
func newTestMemory() *mem.Memory { return mem.NewMemory() }
