package core

import "github.com/vpir-sim/vpir/internal/isa"

// squashAfter discards every instruction younger than e, restores the
// rename and branch-predictor state from e's checkpoint, and redirects
// fetch to e.actualNext.
func (m *Machine) squashAfter(idx int32, e *robEntry) {
	// Walk from the youngest entry back to e.
	for m.robCount > 0 {
		tail := m.robIdx(m.robCount - 1)
		if tail == idx {
			break
		}
		t := &m.rob[tail]
		m.traceEvent(t, func(ev *PipeEvent) { ev.Squash = true })
		if t.execCount > 0 {
			m.stats.ExecSquashed++
			// IR buffers wrong-path work; mark the entry so a later reuse
			// counts as recovered work (Table 5).
			if m.rb != nil && t.insertedRB {
				m.rb.MarkWrongPath(t.rbLink)
			}
		}
		if t.checkpoint != nil {
			if !t.finalResolved {
				m.unresolved--
			}
			m.freeCkpt(t.checkpoint)
			t.checkpoint = nil
		}
		if m.serialize == tail {
			m.serialize = -1
		}
		if t.lsq >= 0 {
			m.lsq[t.lsq].valid = false
		}
		t.valid = false
		t.consumers = t.consumers[:0]
		m.robCount--
	}
	// Compact the LSQ tail.
	for m.lsqCount > 0 {
		tail := wrap(m.lsqHead+m.lsqCount-1, int32(m.cfg.LSQSize))
		if m.lsq[tail].valid {
			break
		}
		m.lsqCount--
	}

	// Rename and predictor state.
	if e.checkpoint != nil {
		m.createVec = e.checkpoint.createVec
		m.createSeq = e.checkpoint.createSeq
		m.bp.Restore(e.checkpoint.bp)
		m.replayBranchEffects(e)
	}

	// Front end redirect.
	m.fetchHead, m.fetchCount = 0, 0
	m.fetchPC = e.actualNext
	m.fetchReady = m.cycle
	m.lastFetchLine = ^uint32(0)
	m.fetchRedirected = true
	e.curPath = e.actualNext

	// Correct-path trace cursor repair.
	switch {
	case e.traceIdx < 0:
		m.traceCursor = -2 // still on a wrong path
	case e.traceIdx+1 >= int64(m.oracle.Len()):
		m.traceCursor = int64(m.oracle.Len()) // past the end of the trace
	case m.oracle.PC[e.traceIdx+1] == e.actualNext:
		m.traceCursor = e.traceIdx + 1
	default:
		m.traceCursor = -2 // spurious redirect: the new path is wrong
	}
}

// replayBranchEffects re-applies the squashing instruction's own effect on
// the speculative predictor state (history bit, RAS push/pop) after a
// checkpoint restore, this time with the actual outcome.
func (m *Machine) replayBranchEffects(e *robEntry) {
	switch {
	case e.in.Op.IsCondBranch():
		m.bp.SpecUpdateHist(e.actualTaken)
	case e.in.Op == isa.OpJR:
		if e.in.Src1 == isa.RegRA {
			m.bp.PopRAS()
		}
	case e.in.Op == isa.OpJALR:
		m.bp.PushRAS(e.pc + 4)
	}
}
