package core

import (
	"bytes"
	"fmt"

	"github.com/vpir-sim/vpir/internal/bpred"
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/vp"
)

// wheelSize must exceed the longest possible event delay (fp sqrt 24 +
// cache miss 7 + verification 1 and headroom).
const wheelSize = 64

// fetched is one instruction in the fetch buffer.
type fetched struct {
	pc         uint32
	in         *isa.Inst
	predTaken  bool
	predNext   uint32
	fetchCycle uint64
	// Checkpoint material captured at fetch for checkpointed control
	// instructions (conditional branches and indirect jumps).
	needCkpt   bool
	bpState    bpred.State
	histAtPred uint32
}

// Machine is the timing simulator.
type Machine struct {
	cfg     Config
	prog    *prog.Program
	decoded []isa.Inst

	mem    *mem.Memory
	icache *mem.Cache
	dcache *mem.Cache
	bp     *bpred.Predictor
	vpt    *vp.Table // result predictions (nil unless Config.NeedsVPT)
	vpa    *vp.Table // address predictions (nil unless Config.NeedsVPA)
	rb     *reuse.Buffer
	oracle *emu.TraceLog

	// tech is the active technique's integration into the cycle loop: the
	// decode-time reuse/predict arbitration, commit-time training, store
	// invalidation and stats contribution all dispatch through it (see
	// technique.go). Selected by buildStructures; stateless, so Reset's
	// determinism and zero-alloc contracts are unaffected.
	tech techOps

	cycle uint64
	seq   uint64

	regs      [isa.NumArchRegs]isa.Word
	createVec [isa.NumArchRegs]int32
	createSeq [isa.NumArchRegs]uint64

	rob      []robEntry
	robHead  int32
	robCount int32

	lsq      []lsqEntry
	lsqHead  int32
	lsqCount int32

	fetchPC       uint32
	fetchReady    uint64 // I-cache miss stall: no fetch before this cycle
	lastFetchLine uint32
	// fetchQ is a fixed-capacity ring of cfg.FetchQueue slots. Slots are
	// reused in place so the bpred.State RAS snapshot inside each keeps its
	// backing array across the whole run (no per-branch allocation).
	fetchQ     []fetched
	fetchHead  int32
	fetchCount int32

	traceCursor int64 // next correct-path trace index; < 0 on the wrong path
	unresolved  int
	serialize   int32 // ROB slot of a dispatched serializing op, -1 if none

	wheel [wheelSize][]event
	// eventMask has bit s set when wheel[s] may hold events: set on
	// schedule, cleared when the slot drains. Conservative (a slot holding
	// only squash-orphaned events keeps its bit until it drains), which is
	// the safe direction for the quiescence skipper (see skip.go).
	eventMask uint64
	finalQ    []int32 // entries whose finality must be re-examined this cycle
	wbCarry   []event // completions deferred by result-bus contention
	// issueQ holds the instructions that may be able to start an execution,
	// fed by dependency-driven wakeups (dispatch, operand broadcast,
	// finalization, re-execution demands) instead of a per-cycle scan of the
	// whole ROB. Entries blocked on conditions with no wake event (FU/port
	// denial, store disambiguation) stay queued and retry next cycle.
	issueQ []issueRef
	// evScratch is the per-cycle staging buffer processEvents drains into,
	// so wheel slots and wbCarry can be truncated (capacity kept) instead of
	// reallocated every cycle.
	evScratch []event

	// ckptFree recycles branch checkpoints (and the RAS snapshot slices
	// inside them). Live checkpoints never exceed cfg.MaxBranches, so
	// ckptAllocs — the number of checkpoints ever allocated — is bounded by
	// it for the life of the machine, across Reset.
	ckptFree   []*ckpt
	ckptAllocs int

	// Functional unit pools (Table 1).
	aluPool *fuPool // 8 integer ALUs
	lsPool  *fuPool // 2 load/store units
	imdPool *fuPool // 1 integer multiply/divide unit
	fpaPool *fuPool // 4 FP adders
	fpmPool *fuPool // 1 FP multiply/divide/sqrt unit

	dcPortsUsed     int  // D-cache ports consumed this cycle
	fetchRedirected bool // a squash redirected fetch during this stage pass

	commitCursor int64 // committed instruction count == next trace index

	halted   bool
	exitCode int
	output   bytes.Buffer

	stats Stats

	// lastRetire is the cycle of the most recent retirement (or machine
	// start); the deadlock arm of the watchdog measures against it.
	lastRetire uint64
	// activeIters counts the executed non-quiescent cycles of the run;
	// itersAtRetire snapshots it at each retirement. The livelock arm of
	// the watchdog measures lack of retirement progress across *active*
	// iterations — never across skipped or idle cycles — so a legitimate
	// long stall (serialized miss chains) cannot trip it (see skip.go).
	activeIters   uint64
	itersAtRetire uint64

	// skipIdleCycles enables the quiescence-aware cycle skipper; see
	// skip.go. Defaults from the VPIR_NO_SKIP environment escape hatch,
	// per-machine override via SetCycleSkipping. cyclesSkipped counts the
	// cycles fast-forwarded rather than executed (kept out of Stats so the
	// skipping and legacy loops stay bit-identical).
	skipIdleCycles bool
	cyclesSkipped  uint64

	// cycleHooks run at the top of every cycle; fault-injection campaigns
	// use them to corrupt microarchitectural state mid-run.
	cycleHooks []func(cycle uint64)

	// obs, when non-nil, is the observability layer: inline metrics,
	// structured events and the interval sampler (see obs.go).
	obs *Observer

	// debugCommit, when non-nil, observes each entry at commit (test hook).
	debugCommit func(e *robEntry)
	// tracer, when non-nil, records per-instruction pipeline events.
	tracer *PipeTracer
	// debugReuse, when non-nil, observes each reuse hit at decode (test hook).
	debugReuse func(e *robEntry)
}

// New builds a machine for the program. The functional emulator is run
// first (up to maxInsts instructions, 0 = to completion) to produce the
// correct-path oracle trace; the timing simulation then reproduces exactly
// that instruction stream and is checked against it at commit. The trace
// depends only on (program, maxInsts), so it is collected once and shared
// by every machine built for the same program (see oracle.go).
func New(p *prog.Program, cfg Config, maxInsts uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	oracle, err := collectOracle(p, maxInsts)
	if err != nil {
		return nil, fmt.Errorf("core: functional pre-run failed: %w", err)
	}
	if oracle.Len() == 0 {
		return nil, fmt.Errorf("core: program retired no instructions")
	}

	m := &Machine{
		cfg:     cfg,
		prog:    p,
		decoded: p.Decoded(),
		mem:     mem.NewMemory(),
		oracle:  oracle,
	}
	m.buildStructures(cfg)
	m.resetRunState()
	return m, nil
}

// Reset rewinds the machine to its pre-Run state under a (possibly
// different) configuration, reusing every microarchitectural structure
// whose geometry is unchanged: the ROB and LSQ arrays, the event wheel and
// its per-slot capacity, the checkpoint pool, the fetch ring (including the
// RAS snapshot storage in each slot), the VPT/RB/cache/predictor tables,
// and the sparse memory pages. The program, the functional oracle trace and
// the instruction cap given to New are kept; Reset does not repeat the
// functional pre-run.
//
// Determinism contract: a Reset machine produces bit-identical Stats,
// Output and ExitCode to a machine built fresh by New with the same
// program and configuration (TestResetDeterminism enforces this). Attached
// observers, pipe tracers and cycle hooks are per-run and are detached.
func (m *Machine) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	// Return in-flight branch checkpoints to the pool before the ROB is
	// cleared, so the pool's high-water bound survives machine reuse.
	for i := range m.rob {
		if e := &m.rob[i]; e.valid && e.checkpoint != nil {
			m.freeCkpt(e.checkpoint)
			e.checkpoint = nil
		}
	}
	m.buildStructures(cfg)
	m.cfg = cfg
	m.resetRunState()
	return nil
}

// buildStructures (re)creates the configuration-dependent storage. On a
// fresh machine everything is allocated; on Reset, structures whose
// configured geometry matches the previous run are cleared in place.
func (m *Machine) buildStructures(cfg Config) {
	if m.icache != nil && m.icache.Config() == cfg.ICache {
		m.icache.Reset()
	} else {
		m.icache = mem.NewCache(cfg.ICache)
	}
	if m.dcache != nil && m.dcache.Config() == cfg.DCache {
		m.dcache.Reset()
	} else {
		m.dcache = mem.NewCache(cfg.DCache)
	}
	if m.bp != nil && m.cfg.Bpred == cfg.Bpred {
		m.bp.Reset()
	} else {
		m.bp = bpred.New(cfg.Bpred)
	}

	m.tech = techOpsFor(cfg)
	m.vpt = resetTable(m.vpt, cfg.VP.ResultTable, cfg.NeedsVPT())
	m.vpa = resetTable(m.vpa, cfg.VP.AddrTable, cfg.NeedsVPA())
	switch {
	case !cfg.NeedsRB():
		m.rb = nil
	case m.rb != nil:
		m.rb.Reset(cfg.IR.Buffer) // reuses storage when the geometry matches
	default:
		m.rb = reuse.New(cfg.IR.Buffer)
	}

	if len(m.rob) == cfg.ROBSize {
		for i := range m.rob {
			cons := m.rob[i].consumers[:0]
			m.rob[i] = robEntry{consumers: cons}
		}
	} else {
		m.rob = make([]robEntry, cfg.ROBSize)
	}
	if len(m.lsq) == cfg.LSQSize {
		for i := range m.lsq {
			m.lsq[i] = lsqEntry{}
		}
	} else {
		m.lsq = make([]lsqEntry, cfg.LSQSize)
	}
	if len(m.fetchQ) != cfg.FetchQueue {
		m.fetchQ = make([]fetched, cfg.FetchQueue)
	}

	m.aluPool = m.aluPool.reset(cfg.IntALUs)
	m.lsPool = m.lsPool.reset(cfg.MemPorts)
	m.imdPool = m.imdPool.reset(1)
	m.fpaPool = m.fpaPool.reset(cfg.FPAdders)
	m.fpmPool = m.fpmPool.reset(1)
}

// resetTable reuses, rebuilds or drops a value-prediction table for the
// next run.
func resetTable(t *vp.Table, cfg vp.Config, need bool) *vp.Table {
	if !need {
		return nil
	}
	if t != nil {
		t.Reset(cfg) // reuses storage when the geometry matches
		return t
	}
	return vp.New(cfg)
}

// resetRunState rewinds all per-run machine state: architectural registers,
// rename state, cursors, counters, queues and the memory image. Structures
// sized by the configuration must already be in place (buildStructures).
func (m *Machine) resetRunState() {
	m.mem.Reset()
	m.mem.LoadProgram(m.prog)

	m.cycle = 0
	m.seq = 0
	m.regs = [isa.NumArchRegs]isa.Word{}
	m.regs[isa.RegSP] = isa.Word(prog.StackTop)
	for i := range m.createVec {
		m.createVec[i] = -1
	}
	m.createSeq = [isa.NumArchRegs]uint64{}

	m.robHead, m.robCount = 0, 0
	m.lsqHead, m.lsqCount = 0, 0

	m.fetchPC = m.prog.Entry
	m.fetchReady = 0
	m.lastFetchLine = ^uint32(0)
	m.fetchHead, m.fetchCount = 0, 0
	m.traceCursor = 0
	m.unresolved = 0
	m.serialize = -1

	for i := range m.wheel {
		m.wheel[i] = m.wheel[i][:0]
	}
	m.eventMask = 0
	m.finalQ = m.finalQ[:0]
	m.wbCarry = m.wbCarry[:0]
	m.issueQ = m.issueQ[:0]

	m.dcPortsUsed = 0
	m.fetchRedirected = false
	m.commitCursor = 0
	m.halted = false
	m.exitCode = 0
	m.output.Reset()
	m.stats = Stats{}
	m.lastRetire = 0
	m.activeIters = 0
	m.itersAtRetire = 0
	m.skipIdleCycles = !noSkipDefault
	m.cyclesSkipped = 0

	// Per-run attachments: hooks, observers and tracers do not survive a
	// Reset (fault campaigns and metrics exports attach per run).
	m.cycleHooks = nil
	m.obs = nil
	m.tracer = nil
	m.debugCommit = nil
	m.debugReuse = nil
}

// newCkpt takes a checkpoint from the free list (or allocates one). The
// caller overwrites every field, so recycled contents never leak between
// branches.
func (m *Machine) newCkpt() *ckpt {
	if n := len(m.ckptFree); n > 0 {
		cp := m.ckptFree[n-1]
		m.ckptFree = m.ckptFree[:n-1]
		return cp
	}
	m.ckptAllocs++
	return &ckpt{}
}

// freeCkpt returns a checkpoint (and its RAS snapshot storage) to the pool.
func (m *Machine) freeCkpt(cp *ckpt) {
	m.ckptFree = append(m.ckptFree, cp)
}

// vpActive reports whether value prediction is integrated (TechVP or
// TechHybrid); the SB/NSB and ME/NME policy checks key off this.
func (m *Machine) vpActive() bool { return m.vpt != nil }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns a copy of the statistics gathered so far.
func (m *Machine) Stats() Stats {
	s := m.stats
	is, ds := m.icache.Stats(), m.dcache.Stats()
	s.ICacheAccesses, s.ICacheMisses = is.Accesses, is.Misses
	s.DCacheAccesses, s.DCacheMisses = ds.Accesses, ds.Misses
	m.tech.contributeStats(m, &s)
	return s
}

// Output returns everything the program printed so far.
func (m *Machine) Output() string { return m.output.String() }

// ExitCode returns the program's exit code (valid once halted).
func (m *Machine) ExitCode() int { return m.exitCode }

// Halted reports whether the simulated program has finished.
func (m *Machine) Halted() bool { return m.halted }

// Oracle exposes the functional trace (for the harness's spurious-squash
// classification and for tests).
func (m *Machine) Oracle() *emu.TraceLog { return m.oracle }

// Cycle returns the current machine cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// The component accessors below expose the microarchitectural structures so
// that fault-injection campaigns (internal/faultinject) can corrupt their
// state mid-run. They return nil when the configuration does not
// instantiate the structure.

// VPT returns the result value-prediction table (nil unless VP is active).
func (m *Machine) VPT() *vp.Table { return m.vpt }

// VPA returns the address value-prediction table (nil unless VP predicts
// addresses).
func (m *Machine) VPA() *vp.Table { return m.vpa }

// RB returns the reuse buffer (nil unless IR is active).
func (m *Machine) RB() *reuse.Buffer { return m.rb }

// BranchPredictor returns the front-end branch prediction unit.
func (m *Machine) BranchPredictor() *bpred.Predictor { return m.bp }

// Caches returns the instruction and data caches.
func (m *Machine) Caches() (icache, dcache *mem.Cache) { return m.icache, m.dcache }

// OnCycle registers a hook invoked at the top of every cycle, before any
// pipeline stage runs. Hooks must not retain the machine across Run calls;
// they exist for deterministic fault injection and instrumentation.
func (m *Machine) OnCycle(fn func(cycle uint64)) {
	m.cycleHooks = append(m.cycleHooks, fn)
}

// noLimit is the Run cycle budget of an unbounded call.
const noLimit = ^uint64(0)

// Run simulates up to maxCycles further cycles (0 = no limit), stopping
// early when the program halts. It returns an error only on an internal
// consistency failure: a *SimError divergence from the functional oracle,
// or a *SimError watchdog trip when the pipeline stops making retirement
// progress (livelock/deadlock detection).
//
// Quiescent cycles — cycles in which no stage can change any state — are
// fast-forwarded in bulk instead of executed one at a time (see skip.go);
// results are bit-identical to the legacy loop, which VPIR_NO_SKIP=1 or
// SetCycleSkipping(false) forces. Fault-injection cycleHooks must observe
// every cycle, so any registered hook disables skipping for the run.
//
// The watchdog (Config.Watchdog, 0 disables) has two arms, identical under
// both loops: a livelock trips when more than Watchdog *active* iterations
// pass without a retirement (a wedged instruction retrying every cycle),
// and a hard deadlock — quiescent with no event pending and fetch on a
// dead path — trips when Watchdog cycles pass without a retirement.
func (m *Machine) Run(maxCycles uint64) error {
	limit := noLimit
	if maxCycles > 0 {
		limit = m.cycle + maxCycles
	}
	wd := m.cfg.Watchdog
	skip := m.skipIdleCycles && len(m.cycleHooks) == 0
	for !m.halted {
		if m.cycle >= limit {
			return nil
		}
		if m.quiescent() {
			deadlocked := m.eventMask == 0 && m.cycle >= m.fetchReady
			if skip && m.skipIdle(limit, deadlocked) {
				continue
			}
			if err := m.step(); err != nil {
				m.flushObs()
				return err
			}
			if m.obs != nil {
				m.maybeSample()
			}
			if wd > 0 && deadlocked && m.cycle-m.lastRetire > wd {
				err := m.watchdogError(m.cycle - m.lastRetire)
				m.flushObs()
				return err
			}
			continue
		}
		m.activeIters++
		if err := m.step(); err != nil {
			m.flushObs()
			return err
		}
		if m.obs != nil {
			m.maybeSample()
		}
		if wd > 0 && m.activeIters-m.itersAtRetire > wd {
			err := m.watchdogError(m.cycle - m.lastRetire)
			m.flushObs()
			return err
		}
	}
	m.flushObs()
	return nil
}

// step advances the machine one cycle. Stage order (events → commit →
// issue → decode → fetch) gives the same cycle timing as Figure 2 of the
// paper: a 1-cycle op issued in cycle c completes at the start of c+1,
// wakes dependents that can issue in c+1, and can commit in c+1.
func (m *Machine) step() error {
	m.stats.Cycles++
	m.dcPortsUsed = 0
	for _, h := range m.cycleHooks {
		h(m.cycle)
	}
	if err := m.processEvents(); err != nil {
		return err
	}
	if err := m.commit(); err != nil {
		return err
	}
	m.issue()
	if err := m.decode(); err != nil {
		return err
	}
	m.fetch()
	m.cycle++
	return nil
}

// --- small helpers shared by the stages ---

// wrap reduces the sum of two in-range ring cursors into [0, n). Ring
// sizes are not required to be powers of two, so a % here would compile to
// an integer divide — measurably hot in the LSQ scans and ring bumps.
func wrap(i, n int32) int32 {
	if i >= n {
		return i - n
	}
	return i
}

func (m *Machine) robIdx(offset int32) int32 {
	return (m.robHead + offset) & int32(m.cfg.ROBSize-1)
}

// forEachROB iterates oldest to youngest, stopping early if fn returns false.
func (m *Machine) forEachROB(fn func(idx int32, e *robEntry) bool) {
	for i := int32(0); i < m.robCount; i++ {
		idx := m.robIdx(i)
		if !fn(idx, &m.rob[idx]) {
			return
		}
	}
}

func (m *Machine) schedule(delay uint64, ev event) {
	if delay == 0 {
		delay = 1
	}
	slot := (m.cycle + delay) % wheelSize
	m.wheel[slot] = append(m.wheel[slot], ev)
	m.eventMask |= 1 << slot
}

// scheduleThisCycle runs an event during the current cycle's event
// processing; used for 0-cycle verification.
func (m *Machine) liveEntry(ev event) *robEntry {
	e := &m.rob[ev.idx]
	if !e.valid || e.seq != ev.seq {
		return nil
	}
	return e
}

func (m *Machine) instAt(pc uint32) *isa.Inst {
	if !m.prog.InText(pc) || pc&3 != 0 {
		return nil
	}
	return &m.decoded[(pc-prog.TextBase)/4]
}

// divergence builds the structured error used when the timing core disagrees
// with the functional oracle.
func (m *Machine) divergence(e *robEntry, what string, got, want any) error {
	if m.obs != nil {
		m.obs.faultEvent(m.cycle, e.pc, e.seq, what)
	}
	return &SimError{
		Kind:         ErrDivergence,
		Config:       m.cfg.Name(),
		Cycle:        m.cycle,
		PC:           e.pc,
		Seq:          e.seq,
		TraceIdx:     e.traceIdx,
		SrcLine:      m.prog.SrcLines[e.pc],
		Field:        what,
		Got:          got,
		Want:         want,
		ROBOccupancy: int(m.robCount),
		LSQOccupancy: int(m.lsqCount),
		FetchPC:      m.fetchPC,
	}
}
