package core

import (
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
)

// techOps is the technique integration surface of the cycle loop: every
// point where VP, IR or a hybrid used to hook into decode/commit through
// hardcoded conditionals is a method here, and the cycle loop calls the
// selected implementation unconditionally. Adding a scheme means adding an
// implementation (plus a registration in internal/technique), not editing
// decode.go or commit.go.
//
// Implementations are stateless singletons: all per-run state lives in the
// Machine's structures (vpt/vpa/rb), which buildStructures provisions from
// Config.NeedsVPT/NeedsVPA/NeedsRB. That keeps Machine.Reset's zero-alloc
// and determinism contracts untouched — selecting a technique is just
// picking a vtable.
type techOps interface {
	// atDecode runs in parallel with decode (Figure 1): the reuse test,
	// the VPT/VPA lookups, and the arbitration between them.
	atDecode(m *Machine, idx int32, e *robEntry)
	// atCommit trains the technique's tables with the non-speculative
	// outcome of a retiring instruction.
	atCommit(m *Machine, e *robEntry)
	// onStoreCommit observes a retiring store (after its memory write), so
	// reuse-style techniques can invalidate stale buffered values.
	onStoreCommit(m *Machine, e *robEntry)
	// contributeStats merges technique-owned counters into a Stats copy.
	contributeStats(m *Machine, s *Stats)
}

// techOpsFor selects the integration for a validated configuration.
func techOpsFor(cfg Config) techOps {
	switch cfg.Technique {
	case TechVP:
		return vpOps{}
	case TechIR:
		return irOps{}
	case TechHybrid:
		if cfg.HybridArb == HybridConf {
			return hybridConfOps{}
		}
		return hybridOps{}
	}
	return baseOps{}
}

// baseOps is the plain superscalar: no technique hooks at all.
type baseOps struct{}

func (baseOps) atDecode(*Machine, int32, *robEntry) {}
func (baseOps) atCommit(*Machine, *robEntry)        {}
func (baseOps) onStoreCommit(*Machine, *robEntry)   {}
func (baseOps) contributeStats(*Machine, *Stats)    {}

// vpOps integrates value prediction alone (Figure 1(a)).
type vpOps struct{}

func (vpOps) atDecode(m *Machine, idx int32, e *robEntry) {
	if !e.reused && !e.predicted {
		m.tryPredict(e)
	}
}

func (vpOps) atCommit(m *Machine, e *robEntry)      { m.trainVP(e) }
func (vpOps) onStoreCommit(m *Machine, e *robEntry) {}
func (vpOps) contributeStats(*Machine, *Stats)      {}

// irOps integrates instruction reuse alone (Figure 1(b)).
type irOps struct{}

func (irOps) atDecode(m *Machine, idx int32, e *robEntry) {
	m.tryReuse(idx, e)
}

func (irOps) atCommit(m *Machine, e *robEntry) {}

func (irOps) onStoreCommit(m *Machine, e *robEntry) {
	m.invalidateReusedStores(e)
}

func (irOps) contributeStats(m *Machine, s *Stats) {
	s.Recovered = m.rb.Stats().Recovered
}

// hybridOps is the legacy serial arbitration: the reuse test goes first —
// reuse is non-speculative and free — and only instructions that miss it
// are value predicted.
type hybridOps struct{}

func (hybridOps) atDecode(m *Machine, idx int32, e *robEntry) {
	m.tryReuse(idx, e)
	if !e.reused && !e.predicted {
		m.tryPredict(e)
	}
}

func (hybridOps) atCommit(m *Machine, e *robEntry) { m.trainVP(e) }

func (hybridOps) onStoreCommit(m *Machine, e *robEntry) {
	m.invalidateReusedStores(e)
}

func (hybridOps) contributeStats(m *Machine, s *Stats) {
	s.Recovered = m.rb.Stats().Recovered
}

// hybridConfOps is the confidence-aware arbitration: reuse still goes
// first, but a prediction is only accepted at saturated confidence — the
// reuse buffer already covers the cheap repetition wins, so a marginal
// prediction risks the misprediction penalty for little upside — and the
// address table is not consulted when the reuse test already supplied the
// address non-speculatively.
type hybridConfOps struct{}

func (hybridConfOps) atDecode(m *Machine, idx int32, e *robEntry) {
	m.tryReuse(idx, e)
	if !e.reused && !e.predicted {
		m.tryPredictConf(e)
	}
}

func (hybridConfOps) atCommit(m *Machine, e *robEntry) { m.trainVP(e) }

func (hybridConfOps) onStoreCommit(m *Machine, e *robEntry) {
	m.invalidateReusedStores(e)
}

func (hybridConfOps) contributeStats(m *Machine, s *Stats) {
	s.Recovered = m.rb.Stats().Recovered
}

// trainVP updates the value and address prediction tables with a retiring
// instruction's non-speculative outcome.
func (m *Machine) trainVP(e *robEntry) {
	op := e.in.Op
	if e.in.Dest != isa.NoReg && !op.IsControl() && !op.Serializes() {
		m.vpt.Train(e.pc, e.result, e.predVal, e.predicted)
	}
	if m.vpa != nil && op.IsMem() {
		m.vpa.Train(e.pc, isa.Word(e.addr), isa.Word(e.predAddrVal), e.addrPred)
	}
}

// invalidateReusedStores kills reuse-buffer entries made stale by a
// retiring store's memory write.
func (m *Machine) invalidateReusedStores(e *robEntry) {
	killed := m.rb.InvalidateStores(e.addr, emu.StoreWidth(e.in.Op))
	if killed > 0 && m.obs != nil {
		m.obs.reuseInvalidateEvent(m.cycle, e.pc, e.seq, killed)
	}
}
