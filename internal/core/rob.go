package core

import (
	"github.com/vpir-sim/vpir/internal/bpred"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/reuse"
)

// consRef names a consumer of an entry's result: the ROB slot, the sequence
// number (to detect slot reuse after squashes) and which operand slot of the
// consumer the value feeds.
type consRef struct {
	idx  int32
	seq  uint64
	slot uint8
}

// ckpt is the per-branch checkpoint used for squash recovery. Checkpoints
// are pooled (Machine.newCkpt/freeCkpt) and every field — including the
// RAS snapshot slice inside bp — is fully overwritten at allocation, so a
// recycled checkpoint carries no state between branches.
type ckpt struct {
	createVec  [isa.NumArchRegs]int32
	createSeq  [isa.NumArchRegs]uint64
	bp         bpred.State
	histAtPred uint32 // gshare history when the direction was predicted
}

// robEntry is one in-flight instruction.
type robEntry struct {
	valid       bool
	seq         uint64
	pc          uint32
	in          *isa.Inst
	traceIdx    int64 // correct-path trace index, -1 on the wrong path
	traceSlot   int32 // PipeTracer event index, -1 when not traced
	decodeCycle uint64

	// Renamed operands. srcProd < 0 means the value came from the committed
	// register file (always final).
	srcProd    [2]int32
	srcProdSeq [2]uint64
	srcVal     [2]isa.Word
	srcReady   [2]bool
	srcFinal   [2]bool
	srcFrom    [2]reuse.Link // RB entry that produced the operand (dependence pointers)

	consumers []consRef

	// Execution state.
	needExec  bool
	executing bool
	// Wakeup bookkeeping: whether the entry currently sits in the issue
	// queue / finality queue, so wake events and finality re-checks enqueue
	// each in-flight instruction at most once.
	inIssueQ  bool
	inFinalQ  bool
	execCount int
	hasResult bool
	result    isa.Word
	final     bool
	finalAt   uint64
	// Operand snapshot of the most recently issued execution, to decide
	// whether a later value change invalidates it.
	snapVal   [2]isa.Word
	snapValid bool
	// In-flight execution outputs, applied at the completion event.
	pendResult    isa.Word
	pendTaken     bool
	pendNext      uint32
	pendAddr      uint32
	pendForwarded bool
	// Latest computed (actual) result, held apart from `result` while a
	// value prediction awaits verification.
	computed    isa.Word
	hasComputed bool

	// Value prediction.
	predicted   bool
	predVal     isa.Word
	verifyDone  bool
	verifySched bool
	// Address prediction (loads).
	addrPred    bool
	predAddrVal uint32
	// Execution issued with a predicted (not computed) address.
	usedPredAddr bool

	// Instruction reuse.
	reused     bool       // full reuse: skipped execution
	addrReused bool       // memory op with address from the RB
	reuseSrc   reuse.Link // entry the result was reused from
	rbLink     reuse.Link // entry this instruction was inserted at
	insertedRB bool       // rbLink names an entry this instruction created
	lateHit    bool       // reuse hit under late-validation mode

	// Control flow.
	isCtl         bool
	checkpoint    *ckpt
	histAtPred    uint32 // gshare history at prediction, for commit training
	predTaken     bool
	predNextPC    uint32
	curPath       uint32 // path the machine currently follows after this inst
	resolvedOnce  bool
	finalResolved bool
	resolveCycle  uint64
	actualTaken   bool
	actualNext    uint32

	// Memory.
	isLoad    bool
	isStore   bool
	lsq       int32
	addrKnown bool
	addr      uint32
	forwarded bool // load value came from an in-flight store
}

// srcCount returns how many register sources the instruction has.
func (e *robEntry) srcRegs() [2]isa.Reg {
	return [2]isa.Reg{e.in.Src1, e.in.Src2}
}

// allSrcReady reports whether every present operand has a value.
func (e *robEntry) allSrcReady() bool {
	regs := e.srcRegs()
	for k := 0; k < 2; k++ {
		if regs[k] != isa.NoReg && !e.srcReady[k] {
			return false
		}
	}
	return true
}

// allSrcFinal reports whether every present operand value is final.
func (e *robEntry) allSrcFinal() bool {
	regs := e.srcRegs()
	for k := 0; k < 2; k++ {
		if regs[k] != isa.NoReg && !e.srcFinal[k] {
			return false
		}
	}
	return true
}

// snapshotCurrent reports whether the most recent execution used the
// current operand values (i.e. its result is still coherent). Memory
// operations depend only on their base operand (slot 0) for execution: a
// store's data operand is consumed at commit, not by the agen.
func (e *robEntry) snapshotCurrent() bool {
	if !e.snapValid {
		return false
	}
	regs := e.srcRegs()
	last := 2
	if e.in.Op.IsMem() {
		last = 1
	}
	for k := 0; k < last; k++ {
		if regs[k] != isa.NoReg && e.snapVal[k] != e.srcVal[k] {
			return false
		}
	}
	// A load that executed with a predicted address is only coherent if the
	// prediction matched the real effective address.
	if e.usedPredAddr {
		if !e.srcReady[0] {
			return false
		}
		if uint32(e.srcVal[0])+uint32(e.in.Imm) != e.pendAddr {
			return false
		}
	}
	return true
}

// lsqEntry is one load/store queue slot.
type lsqEntry struct {
	valid     bool
	rob       int32
	seq       uint64
	isStore   bool
	addrKnown bool
	addr      uint32
	width     uint32
	dataFinal bool // store data is final (forwarding is allowed)
	data      isa.Word
}

// fuPool is a set of identical functional units. Units are modeled by
// busy-until cycle numbers; acquiring picks any free unit and occupies it
// for the operation's issue latency.
type fuPool struct {
	busyUntil []uint64
}

func newPool(n int) *fuPool { return &fuPool{busyUntil: make([]uint64, n)} }

// reset returns a pool of n idle units, reusing p's storage when the unit
// count is unchanged (nil-safe, for Machine.Reset).
func (p *fuPool) reset(n int) *fuPool {
	if p == nil || len(p.busyUntil) != n {
		return newPool(n)
	}
	for i := range p.busyUntil {
		p.busyUntil[i] = 0
	}
	return p
}

// acquire reserves a unit from now for issueLat cycles; reports success.
func (p *fuPool) acquire(now uint64, issueLat int) bool {
	for i, b := range p.busyUntil {
		if b <= now {
			p.busyUntil[i] = now + uint64(issueLat)
			return true
		}
	}
	return false
}

// event is a scheduled pipeline event.
type evKind uint8

const (
	evComplete evKind = iota // an execution finishes
	evVerify                 // a value prediction is compared
)

type event struct {
	kind evKind
	idx  int32
	seq  uint64
}

// issueRef is one issue-queue slot: the ROB index plus the sequence number
// so items of squashed (and possibly recycled) entries are recognized as
// stale and dropped without touching the new occupant.
type issueRef struct {
	idx int32
	seq uint64
}
