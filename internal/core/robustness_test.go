package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/workload"
)

// livelockProg has a store on its path: with MemPorts=0 the store can
// neither issue nor commit, so the pipeline wedges permanently.
const livelockProg = `
start:  li   $t0, 42
        li   $t1, 0x20000000
        sw   $t0, 0($t1)
        li   $v0, 10
        syscall
`

// TestWatchdogTripsOnLivelock starves the machine of memory ports so no
// store can ever issue or commit, and checks that Run terminates with a
// structured watchdog SimError instead of spinning forever.
func TestWatchdogTripsOnLivelock(t *testing.T) {
	p, err := asm.Assemble("livelock.s", livelockProg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MemPorts = 0 // no load/store units: stores stall in the LSQ forever
	cfg.Watchdog = 5000
	m, err := New(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(10 * cfg.Watchdog)
	if err == nil {
		t.Fatal("livelocked machine returned without error")
	}
	se, ok := AsSimError(err)
	if !ok {
		t.Fatalf("want *SimError, got %T: %v", err, err)
	}
	if se.Kind != ErrWatchdog || !IsWatchdog(err) {
		t.Fatalf("want watchdog SimError, got kind %v: %v", se.Kind, err)
	}
	if IsDivergence(err) {
		t.Fatal("watchdog error misclassified as divergence")
	}
	if se.Cycle <= cfg.Watchdog {
		t.Errorf("trip cycle %d not past the %d-cycle threshold", se.Cycle, cfg.Watchdog)
	}
	if se.PC == 0 {
		t.Error("watchdog SimError missing ROB-head PC")
	}
	if se.ROBOccupancy <= 0 {
		t.Errorf("watchdog SimError reports empty ROB (%d); a wedged store should occupy it", se.ROBOccupancy)
	}
	if se.LSQOccupancy <= 0 {
		t.Errorf("watchdog SimError reports empty LSQ (%d); the un-issuable store should occupy it", se.LSQOccupancy)
	}
	if se.Pipetrace == "" {
		t.Error("watchdog SimError missing pipetrace window")
	}
	for _, want := range []string{"watchdog", "no retirement", "ROB"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("watchdog message %q missing %q", err.Error(), want)
		}
	}
}

// TestWatchdogDisabled checks that Watchdog=0 really disables the detector:
// the same wedged machine just runs out its cycle budget with no error (the
// harness deadline is then the only bound, which is exactly why the default
// config enables the watchdog).
func TestWatchdogDisabled(t *testing.T) {
	p, err := asm.Assemble("livelock.s", livelockProg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MemPorts = 0
	cfg.Watchdog = 0
	m, err := New(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(20_000); err != nil {
		t.Fatalf("disabled watchdog still errored: %v", err)
	}
	if m.Halted() {
		t.Fatal("wedged machine halted?")
	}
}

// TestWatchdogIgnoresLongStalls pins down the livelock detector's unit of
// progress: *active* iterations, not raw cycles. The chase kernel with a
// 60-cycle miss penalty retires nothing for 60+ consecutive cycles of every
// hop — a legitimate stall, with a pending completion event the whole time —
// while the watchdog threshold sits far below that gap. A detector counting
// raw cycles (as an earlier version did) trips on the first miss; counting
// active iterations, the run must complete cleanly. The contract has to hold
// identically whether the quiescence skipper executes those idle cycles or
// jumps them, so both loops are pinned here.
func TestWatchdogIgnoresLongStalls(t *testing.T) {
	w, err := workload.Get("chase")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DCache.MissLatency = 60 // raw retirement gaps of 60+ cycles per hop
	cfg.Watchdog = 50           // far under the gap: a cycle-counting rule trips
	for _, skip := range []bool{true, false} {
		m, err := New(p, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		m.SetCycleSkipping(skip)
		if err := m.Run(0); err != nil {
			t.Fatalf("skip=%v: watchdog tripped on a legitimate stall: %v", skip, err)
		}
		if !m.Halted() {
			t.Fatalf("skip=%v: chase did not halt", skip)
		}
		if skip && m.CyclesSkipped() == 0 {
			t.Fatal("chase run skipped no cycles; the stall scenario is not exercising the skipper")
		}
	}
}

// TestOracleCatchesRBResultCorruption forces the VP-vs-IR asymmetry the
// fault campaign is built on: the reuse buffer's result field is the one
// state element the reuse test does not guard, so corrupting it produces
// wrong architectural results — which the commit-time oracle must flag as a
// "result" divergence rather than let through silently.
func TestOracleCatchesRBResultCorruption(t *testing.T) {
	w, err := workload.Get("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, IRChoice(false), 60_000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	// Corrupt every eligible buffered result periodically until the oracle
	// objects; reuse of any corrupted entry retires a wrong value.
	for !m.Halted() {
		if err = m.Run(2000); err != nil {
			break
		}
		m.RB().CorruptAllResults(rng)
	}
	if err == nil {
		t.Fatal("RB result corruption retired silently: oracle never flagged it")
	}
	se, ok := AsSimError(err)
	if !ok {
		t.Fatalf("want *SimError, got %T: %v", err, err)
	}
	if se.Kind != ErrDivergence || !IsDivergence(err) {
		t.Fatalf("want divergence SimError, got kind %v: %v", se.Kind, err)
	}
	if se.Field != "result" {
		t.Errorf("divergence field = %q, want %q (corruption targets only the unguarded result field)", se.Field, "result")
	}
	if se.PC == 0 || se.Cycle == 0 {
		t.Errorf("divergence SimError missing location: pc=%#x cycle=%d", se.PC, se.Cycle)
	}
}

// TestGuardedRBFieldsAreRejected corrupts only the *guarded* RB fields —
// operand values, operand names, dependence pointers — and checks the run
// still retires the exact oracle trace: the reuse test itself screens these
// faults out, which is the paper's "IR never uses a wrong value" property.
func TestGuardedRBFieldsAreRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("full guarded-corruption run skipped in -short mode")
	}
	w, err := workload.Get("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, IRChoice(false), 60_000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for !m.Halted() {
		if err := m.Run(2000); err != nil {
			t.Fatalf("guarded-field corruption caused a failure: %v", err)
		}
		// One of each guarded flavor per window.
		m.RB().Corrupt(reuse.CorruptOperandValue, rng)
		m.RB().Corrupt(reuse.CorruptOperandName, rng)
		m.RB().Corrupt(reuse.CorruptDepPointer, rng)
	}
	if m.ExitCode() != 0 {
		t.Fatalf("exit code %d after guarded corruption", m.ExitCode())
	}
}
