package core

import (
	"math"
	"reflect"
	"testing"
)

// TestStatsAccessorsZeroGuarded audits every rate accessor against the
// zero-denominator case: a zero-valued Stats must yield exactly 0 from
// every accessor, never NaN or Inf. The explicit table pins the accessors
// that exist today; the reflective sweep below catches any accessor added
// later without a guard.
func TestStatsAccessorsZeroGuarded(t *testing.T) {
	var s Stats

	scalar := map[string]float64{
		"IPC":              s.IPC(),
		"BranchPredRate":   s.BranchPredRate(),
		"ReturnPredRate":   s.ReturnPredRate(),
		"Contention":       s.Contention(),
		"MeanBrResolveLat": s.MeanBrResolveLat(),
		"ReuseResultRate":  s.ReuseResultRate(),
		"ReuseAddrRate":    s.ReuseAddrRate(),
		"ExecSquashedPct":  s.ExecSquashedPct(),
		"RecoveredPct":     s.RecoveredPct(),
	}
	for name, got := range scalar {
		if got != 0 {
			t.Errorf("%s() on zero Stats = %v, want 0", name, got)
		}
	}
	if p, m := s.VPResultRates(); p != 0 || m != 0 {
		t.Errorf("VPResultRates() on zero Stats = %v, %v, want 0, 0", p, m)
	}
	if p, m := s.VPAddrRates(); p != 0 || m != 0 {
		t.Errorf("VPAddrRates() on zero Stats = %v, %v, want 0, 0", p, m)
	}
	if pct := s.ExecTimesPct(); pct != [3]float64{} {
		t.Errorf("ExecTimesPct() on zero Stats = %v, want zeros", pct)
	}
}

// TestStatsAccessorsReflectiveSweep calls every no-argument method of
// Stats on a zero value and requires every float in the result to be
// finite and zero. A future accessor that divides by an unguarded
// denominator fails here without anyone having to remember this test.
func TestStatsAccessorsReflectiveSweep(t *testing.T) {
	v := reflect.ValueOf(Stats{})
	typ := v.Type()
	checked := 0
	for i := 0; i < typ.NumMethod(); i++ {
		meth := typ.Method(i)
		if meth.Type.NumIn() != 1 { // receiver only
			continue
		}
		out := v.Method(i).Call(nil)
		for _, res := range out {
			checkZeroFinite(t, meth.Name, res)
		}
		checked++
	}
	if checked < 12 {
		t.Errorf("swept only %d accessors; expected at least 12 — did the method set shrink?", checked)
	}
}

func checkZeroFinite(t *testing.T, name string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("%s on zero Stats returned non-finite %v", name, f)
		}
		if f != 0 {
			t.Errorf("%s on zero Stats returned %v, want 0", name, f)
		}
	case reflect.Array, reflect.Slice:
		for j := 0; j < v.Len(); j++ {
			checkZeroFinite(t, name, v.Index(j))
		}
	}
}
