// Package core implements the timing simulator: a 4-way dynamically
// scheduled superscalar processor modeled after the paper's base machine
// (Table 1), with optional Value Prediction or Instruction Reuse integrated
// into the pipeline exactly as Figure 1 of the paper describes:
//
//   - VP: a prediction is obtained at decode from the VPT; dependents
//     consume the predicted value immediately; the instruction still
//     executes, and the prediction is compared against the actual result
//     after an optional VP-verification latency. On a misprediction only
//     the dependent instructions re-execute, and the penalty is charged
//     once per dependence chain (§4.1.3). Branches with value-speculative
//     operands resolve speculatively (SB) or wait until their operands are
//     final (NSB); re-execution is eager (ME) or once-after-final (NME).
//
//   - IR: the reuse test runs in parallel with decode; a reused instruction
//     skips the execute stage entirely, a reused branch resolves at decode,
//     and reuse-buffer entries are written at execution completion so
//     wrong-path work is buffered and can be recovered after a squash.
package core

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/bpred"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/vp"
)

// Technique selects which redundancy-exploiting mechanism is active.
type Technique int

const (
	TechNone   Technique = iota // base superscalar
	TechVP                      // value prediction
	TechIR                      // instruction reuse
	TechHybrid                  // IR backed by VP: reuse when the test passes,
	// predict otherwise — the combination the paper's introduction suggests
	// exploring ("possibly hybrid of VP and IR"). An extension beyond the
	// paper's evaluation.
)

func (t Technique) String() string {
	switch t {
	case TechVP:
		return "vp"
	case TechIR:
		return "ir"
	case TechHybrid:
		return "hybrid"
	}
	return "base"
}

// BranchResolution says how branches with value-speculative operands are
// handled (§4.1.4).
type BranchResolution int

const (
	// SB resolves a branch as soon as it executes, even on speculative
	// operands; spurious squashes are possible.
	SB BranchResolution = iota
	// NSB defers resolution until the branch has executed with all-final
	// operands.
	NSB
)

func (b BranchResolution) String() string {
	if b == NSB {
		return "NSB"
	}
	return "SB"
}

// ReexecPolicy says how often an instruction may re-execute on changing
// inputs (§4.1.4).
type ReexecPolicy int

const (
	// ME re-executes eagerly every time an input value changes.
	ME ReexecPolicy = iota
	// NME re-executes once, after all inputs are final.
	NME
)

func (r ReexecPolicy) String() string {
	if r == NME {
		return "NME"
	}
	return "ME"
}

// VPConfig configures value prediction.
type VPConfig struct {
	Scheme           vp.Scheme
	Resolution       BranchResolution
	Reexec           ReexecPolicy
	VerifyLat        int  // VP-verification latency in cycles (0 or 1 in the paper)
	PredictAddresses bool // also predict effective addresses of memory ops
	ResultTable      vp.Config
	AddrTable        vp.Config
}

// IRConfig configures instruction reuse.
type IRConfig struct {
	// LateValidation defers the benefit of a reuse hit to the execute stage
	// (the "late" experiment of Figure 3): the instruction behaves like a
	// correctly value-predicted one instead of skipping execution.
	LateValidation bool
	Buffer         reuse.Config
}

// Config describes the whole machine.
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	WBWidth     int // result bus width (broadcasts per cycle)

	ROBSize     int
	LSQSize     int
	MaxBranches int // max unresolved checkpointed branches
	FetchQueue  int // fetch buffer depth

	IntALUs  int // 8
	MemPorts int // 2 load/store units == D-cache ports
	FPAdders int // 4

	ICache mem.CacheConfig
	DCache mem.CacheConfig
	Bpred  bpred.Config

	Technique Technique
	VP        VPConfig
	IR        IRConfig
}

// DefaultConfig returns the paper's Table 1 base machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		DecodeWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,
		WBWidth:     4,
		ROBSize:     32,
		LSQSize:     32,
		MaxBranches: 8,
		FetchQueue:  16,
		IntALUs:     8,
		MemPorts:    2,
		FPAdders:    4,
		ICache:      mem.DefaultICache(),
		DCache:      mem.DefaultDCache(),
		Bpred:       bpred.DefaultConfig(),
		Technique:   TechNone,
		VP: VPConfig{
			Scheme:           vp.Magic,
			Resolution:       SB,
			Reexec:           ME,
			VerifyLat:        0,
			PredictAddresses: true,
			ResultTable:      vp.DefaultConfig(vp.Magic),
			AddrTable:        vp.DefaultConfig(vp.Magic),
		},
		IR: IRConfig{Buffer: reuse.DefaultConfig()},
	}
}

// VPChoice builds a VP machine configuration from the four paper knobs.
func VPChoice(scheme vp.Scheme, res BranchResolution, re ReexecPolicy, verifyLat int) Config {
	c := DefaultConfig()
	c.Technique = TechVP
	c.VP.Scheme = scheme
	c.VP.Resolution = res
	c.VP.Reexec = re
	c.VP.VerifyLat = verifyLat
	c.VP.ResultTable = vp.DefaultConfig(scheme)
	c.VP.AddrTable = vp.DefaultConfig(scheme)
	return c
}

// IRChoice builds an IR machine configuration.
func IRChoice(late bool) Config {
	c := DefaultConfig()
	c.Technique = TechIR
	c.IR.LateValidation = late
	return c
}

// HybridChoice builds the hybrid machine: the reuse buffer handles what it
// can non-speculatively; instructions that miss the reuse test are value
// predicted.
func HybridChoice(scheme vp.Scheme, res BranchResolution, re ReexecPolicy, verifyLat int) Config {
	c := VPChoice(scheme, res, re, verifyLat)
	c.Technique = TechHybrid
	return c
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("core: pipeline widths must be positive")
	case c.ROBSize <= 0 || c.ROBSize&(c.ROBSize-1) != 0:
		return fmt.Errorf("core: ROB size must be a positive power of two")
	case c.LSQSize <= 0:
		return fmt.Errorf("core: LSQ size must be positive")
	case c.MaxBranches <= 0:
		return fmt.Errorf("core: MaxBranches must be positive")
	case c.WBWidth <= 0:
		return fmt.Errorf("core: WBWidth must be positive")
	case c.Technique == TechVP && c.VP.VerifyLat < 0:
		return fmt.Errorf("core: negative verification latency")
	}
	return nil
}

// Name returns a short configuration label like "VP_Magic ME-SB vlat=1" or
// "IR early"; the harness uses it in tables.
func (c Config) Name() string {
	switch c.Technique {
	case TechVP:
		return fmt.Sprintf("%v %v-%v vlat=%d", c.VP.Scheme, c.VP.Reexec, c.VP.Resolution, c.VP.VerifyLat)
	case TechIR:
		if c.IR.LateValidation {
			return "IR late"
		}
		return "IR"
	case TechHybrid:
		return fmt.Sprintf("IR+%v %v-%v vlat=%d", c.VP.Scheme, c.VP.Reexec, c.VP.Resolution, c.VP.VerifyLat)
	}
	return "base"
}
