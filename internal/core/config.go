// Package core implements the timing simulator: a 4-way dynamically
// scheduled superscalar processor modeled after the paper's base machine
// (Table 1), with optional Value Prediction or Instruction Reuse integrated
// into the pipeline exactly as Figure 1 of the paper describes:
//
//   - VP: a prediction is obtained at decode from the VPT; dependents
//     consume the predicted value immediately; the instruction still
//     executes, and the prediction is compared against the actual result
//     after an optional VP-verification latency. On a misprediction only
//     the dependent instructions re-execute, and the penalty is charged
//     once per dependence chain (§4.1.3). Branches with value-speculative
//     operands resolve speculatively (SB) or wait until their operands are
//     final (NSB); re-execution is eager (ME) or once-after-final (NME).
//
//   - IR: the reuse test runs in parallel with decode; a reused instruction
//     skips the execute stage entirely, a reused branch resolves at decode,
//     and reuse-buffer entries are written at execution completion so
//     wrong-path work is buffered and can be recovered after a squash.
package core

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/bpred"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/vp"
)

// Technique selects which redundancy-exploiting mechanism is active.
type Technique int

const (
	TechNone   Technique = iota // base superscalar
	TechVP                      // value prediction
	TechIR                      // instruction reuse
	TechHybrid                  // IR backed by VP: reuse when the test passes,
	// predict otherwise — the combination the paper's introduction suggests
	// exploring ("possibly hybrid of VP and IR"). An extension beyond the
	// paper's evaluation.
)

func (t Technique) String() string {
	switch t {
	case TechVP:
		return "vp"
	case TechIR:
		return "ir"
	case TechHybrid:
		return "hybrid"
	}
	return "base"
}

// HybridPolicy selects how the hybrid machine arbitrates between the reuse
// test and the value predictor at decode.
type HybridPolicy int

const (
	// HybridSerial is the original fixed policy: reuse when the test
	// passes, value predict otherwise ("IR first, else VP").
	HybridSerial HybridPolicy = iota
	// HybridConf is confidence-aware arbitration: reuse still goes first,
	// but a value prediction is only accepted at saturated confidence, and
	// the address table is not consulted when the reuse test already
	// supplied the address non-speculatively.
	HybridConf
)

func (h HybridPolicy) String() string {
	if h == HybridConf {
		return "conf"
	}
	return "serial"
}

// BranchResolution says how branches with value-speculative operands are
// handled (§4.1.4).
type BranchResolution int

const (
	// SB resolves a branch as soon as it executes, even on speculative
	// operands; spurious squashes are possible.
	SB BranchResolution = iota
	// NSB defers resolution until the branch has executed with all-final
	// operands.
	NSB
)

func (b BranchResolution) String() string {
	if b == NSB {
		return "NSB"
	}
	return "SB"
}

// ReexecPolicy says how often an instruction may re-execute on changing
// inputs (§4.1.4).
type ReexecPolicy int

const (
	// ME re-executes eagerly every time an input value changes.
	ME ReexecPolicy = iota
	// NME re-executes once, after all inputs are final.
	NME
)

func (r ReexecPolicy) String() string {
	if r == NME {
		return "NME"
	}
	return "ME"
}

// VPConfig configures value prediction.
type VPConfig struct {
	Scheme           vp.Scheme
	Resolution       BranchResolution
	Reexec           ReexecPolicy
	VerifyLat        int  // VP-verification latency in cycles (0 or 1 in the paper)
	PredictAddresses bool // also predict effective addresses of memory ops
	ResultTable      vp.Config
	AddrTable        vp.Config
}

// IRConfig configures instruction reuse.
type IRConfig struct {
	// LateValidation defers the benefit of a reuse hit to the execute stage
	// (the "late" experiment of Figure 3): the instruction behaves like a
	// correctly value-predicted one instead of skipping execution.
	LateValidation bool
	Buffer         reuse.Config
}

// Config describes the whole machine.
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	WBWidth     int // result bus width (broadcasts per cycle)

	ROBSize     int
	LSQSize     int
	MaxBranches int // max unresolved checkpointed branches
	FetchQueue  int // fetch buffer depth

	IntALUs  int // 8
	MemPorts int // 2 load/store units == D-cache ports
	FPAdders int // 4

	ICache mem.CacheConfig
	DCache mem.CacheConfig
	Bpred  bpred.Config

	Technique Technique
	// HybridArb selects the hybrid arbitration policy; ignored unless
	// Technique is TechHybrid.
	HybridArb HybridPolicy
	VP        VPConfig
	IR        IRConfig

	// Watchdog is the livelock/deadlock detector threshold (0 disables);
	// Machine.Run aborts with a structured *SimError instead of spinning
	// forever. It has two arms. A livelock trips when more than Watchdog
	// *active* iterations — cycles in which some stage actually did work —
	// pass without a single retirement, so a long but legitimate stall
	// (say a string of cache misses with events pending) never trips no
	// matter how many raw cycles it spans. A hard deadlock — nothing
	// in flight, no event ever coming — trips once the machine is
	// Watchdog cycles past its last retirement. Both arms behave
	// identically whether the quiescence skipper is on or off.
	Watchdog uint64
}

// DefaultWatchdog is the default no-retirement threshold in cycles.
const DefaultWatchdog = 100_000

// DefaultConfig returns the paper's Table 1 base machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		DecodeWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,
		WBWidth:     4,
		ROBSize:     32,
		LSQSize:     32,
		MaxBranches: 8,
		FetchQueue:  16,
		IntALUs:     8,
		MemPorts:    2,
		FPAdders:    4,
		ICache:      mem.DefaultICache(),
		DCache:      mem.DefaultDCache(),
		Bpred:       bpred.DefaultConfig(),
		Technique:   TechNone,
		VP: VPConfig{
			Scheme:           vp.Magic,
			Resolution:       SB,
			Reexec:           ME,
			VerifyLat:        0,
			PredictAddresses: true,
			ResultTable:      vp.DefaultConfig(vp.Magic),
			AddrTable:        vp.DefaultConfig(vp.Magic),
		},
		IR:       IRConfig{Buffer: reuse.DefaultConfig()},
		Watchdog: DefaultWatchdog,
	}
}

// VPChoice builds a VP machine configuration from the four paper knobs.
func VPChoice(scheme vp.Scheme, res BranchResolution, re ReexecPolicy, verifyLat int) Config {
	c := DefaultConfig()
	c.Technique = TechVP
	c.VP.Scheme = scheme
	c.VP.Resolution = res
	c.VP.Reexec = re
	c.VP.VerifyLat = verifyLat
	c.VP.ResultTable = vp.DefaultConfig(scheme)
	c.VP.AddrTable = vp.DefaultConfig(scheme)
	return c
}

// IRChoice builds an IR machine configuration.
func IRChoice(late bool) Config {
	c := DefaultConfig()
	c.Technique = TechIR
	c.IR.LateValidation = late
	return c
}

// HybridChoice builds the hybrid machine: the reuse buffer handles what it
// can non-speculatively; instructions that miss the reuse test are value
// predicted.
func HybridChoice(scheme vp.Scheme, res BranchResolution, re ReexecPolicy, verifyLat int) Config {
	c := VPChoice(scheme, res, re, verifyLat)
	c.Technique = TechHybrid
	return c
}

// HybridConfChoice builds the hybrid machine with confidence-aware
// arbitration instead of the fixed "IR first, else VP" policy.
func HybridConfChoice(scheme vp.Scheme, res BranchResolution, re ReexecPolicy, verifyLat int) Config {
	c := HybridChoice(scheme, res, re, verifyLat)
	c.HybridArb = HybridConf
	return c
}

// NeedsVPT reports whether this configuration instantiates the result
// value-prediction table; NeedsVPA the address table; NeedsRB the reuse
// buffer. buildStructures and the sampling warmer (internal/sample) both
// key off these, so the structures the checkpoint warmer fills and the
// structures the timing machine builds can never disagree.
func (c Config) NeedsVPT() bool {
	return c.Technique == TechVP || c.Technique == TechHybrid
}

// NeedsVPA reports whether the effective-address prediction table exists.
func (c Config) NeedsVPA() bool { return c.NeedsVPT() && c.VP.PredictAddresses }

// NeedsRB reports whether the reuse buffer exists.
func (c Config) NeedsRB() bool {
	return c.Technique == TechIR || c.Technique == TechHybrid
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("core: pipeline widths must be positive")
	case c.ROBSize <= 0 || c.ROBSize&(c.ROBSize-1) != 0:
		return fmt.Errorf("core: ROB size must be a positive power of two")
	case c.LSQSize <= 0:
		return fmt.Errorf("core: LSQ size must be positive")
	case c.MaxBranches <= 0:
		return fmt.Errorf("core: MaxBranches must be positive")
	case c.WBWidth <= 0:
		return fmt.Errorf("core: WBWidth must be positive")
	case c.Technique == TechVP && c.VP.VerifyLat < 0:
		return fmt.Errorf("core: negative verification latency")
	case c.Technique < TechNone || c.Technique > TechHybrid:
		return fmt.Errorf("core: unknown technique %d", c.Technique)
	case c.HybridArb < HybridSerial || c.HybridArb > HybridConf:
		return fmt.Errorf("core: unknown hybrid arbitration policy %d", c.HybridArb)
	case c.NeedsVPT() && (c.VP.Scheme < vp.Magic || c.VP.Scheme > vp.FCM):
		return fmt.Errorf("core: unknown VP scheme %d", c.VP.Scheme)
	}
	return nil
}

// Key returns an unambiguous, stable identity string covering every
// configuration field; the harness uses it (not the display Name) as its
// simulation cache key, so two configs differing in any field never alias.
//
// Every field of Config and of its nested config structs must contribute.
// The nested structs (cache, bpred, VP/IR tables) are flat value structs of
// scalars, so the %+v expansion below is complete and deterministic for
// them; TestConfigKeyCoversEveryField perturbs each leaf field reflectively
// and fails if a future field is ever left out of the key.
func (c Config) Key() string {
	return fmt.Sprintf("fw%d dw%d iw%d cw%d wb%d rob%d lsq%d br%d fq%d "+
		"alu%d mp%d fpa%d ic%+v dc%+v bp%+v tech%d hp%d "+
		"vp{s%d r%d x%d vl%d pa%t rt%+v at%+v} ir{late%t rb%+v} wd%d",
		c.FetchWidth, c.DecodeWidth, c.IssueWidth, c.CommitWidth, c.WBWidth,
		c.ROBSize, c.LSQSize, c.MaxBranches, c.FetchQueue,
		c.IntALUs, c.MemPorts, c.FPAdders, c.ICache, c.DCache, c.Bpred, c.Technique, c.HybridArb,
		c.VP.Scheme, c.VP.Resolution, c.VP.Reexec, c.VP.VerifyLat, c.VP.PredictAddresses,
		c.VP.ResultTable, c.VP.AddrTable, c.IR.LateValidation, c.IR.Buffer, c.Watchdog)
}

// Name returns a short configuration label like "VP_Magic ME-SB vlat=1" or
// "IR early"; the harness uses it in tables.
func (c Config) Name() string {
	switch c.Technique {
	case TechVP:
		return fmt.Sprintf("%v %v-%v vlat=%d", c.VP.Scheme, c.VP.Reexec, c.VP.Resolution, c.VP.VerifyLat)
	case TechIR:
		if c.IR.LateValidation {
			return "IR late"
		}
		return "IR"
	case TechHybrid:
		arb := ""
		if c.HybridArb == HybridConf {
			arb = " conf"
		}
		return fmt.Sprintf("IR+%v%s %v-%v vlat=%d", c.VP.Scheme, arb, c.VP.Reexec, c.VP.Resolution, c.VP.VerifyLat)
	}
	return "base"
}
