package core

import (
	"fmt"
	"reflect"
)

// Minus returns the counter-wise difference s − prev. Every Stats field is
// a monotonically non-decreasing uint64 counter (or a fixed array of them),
// so the difference of two snapshots taken from the same run is exactly the
// activity between them; sampled simulation uses this to discard the
// detailed-warmup region of an interval by subtraction. The derived-rate
// accessors then apply to the region as if it had been a run of its own.
//
// The subtraction walks the struct reflectively so a future counter can
// never be silently left out; a non-counter field type panics, which the
// stats tests turn into a compile-time-adjacent failure.
func (s Stats) Minus(prev Stats) Stats {
	out := s
	ov := reflect.ValueOf(&out).Elem()
	pv := reflect.ValueOf(&prev).Elem()
	for i := 0; i < ov.NumField(); i++ {
		subCounter(ov.Field(i), pv.Field(i), ov.Type().Field(i).Name)
	}
	return out
}

func subCounter(a, b reflect.Value, name string) {
	switch a.Kind() {
	case reflect.Uint64:
		x, y := a.Uint(), b.Uint()
		if y > x {
			panic(fmt.Sprintf("core: Stats.%s went backwards (%d - %d)", name, x, y))
		}
		a.SetUint(x - y)
	case reflect.Array:
		for j := 0; j < a.Len(); j++ {
			subCounter(a.Index(j), b.Index(j), fmt.Sprintf("%s[%d]", name, j))
		}
	default:
		panic(fmt.Sprintf("core: Stats.%s is not a uint64 counter; teach Minus about it", name))
	}
}
