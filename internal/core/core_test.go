package core

import (
	"fmt"
	"testing"

	"github.com/vpir-sim/vpir/internal/asm"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/vp"
)

// Test programs covering the interesting microarchitectural behaviours.
var testPrograms = map[string]string{
	"sum": `
        .text
main:   li   $t0, 0
        li   $t1, 1
loop:   addu $t0, $t0, $t1
        addiu $t1, $t1, 1
        slti $at, $t1, 1001
        bnez $at, loop
        move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`,
	"memory": `
        .data
arr:    .space 400
        .text
main:   la   $s0, arr
        li   $t1, 0
fill:   sll  $t2, $t1, 2
        addu $t2, $t2, $s0
        sw   $t1, 0($t2)
        addiu $t1, $t1, 1
        slti $at, $t1, 100
        bnez $at, fill
        li   $t0, 0
        li   $t1, 0
sum:    sll  $t2, $t1, 2
        addu $t2, $t2, $s0
        lw   $t3, 0($t2)
        addu $t0, $t0, $t3
        addiu $t1, $t1, 1
        slti $at, $t1, 100
        bnez $at, sum
        move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`,
	"calls": `
        .text
main:   li   $s0, 0
        li   $s1, 1
loop:   move $a0, $s1
        jal  square
        addu $s0, $s0, $v0
        addiu $s1, $s1, 1
        slti $at, $s1, 20
        bnez $at, loop
        move $a0, $s0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
square: mul  $v0, $a0, $a0
        jr   $ra
`,
	"redundant": `
        # Heavy value redundancy: the same computation on the same data,
        # repeated — the best case for both VP and IR. The inner loop spans
        # 4 iterations so each static instruction has at most 4 distinct
        # operand instances, matching the 4-way VPT/RB instance limit.
        .data
xs:     .word 3, 7, 3, 7
        .text
main:   li   $s0, 0          # outer counter
        li   $s2, 0          # accumulator
outer:  la   $s1, xs
        li   $t0, 0
inner:  sll  $t1, $t0, 2
        addu $t1, $t1, $s1
        lw   $t2, 0($t1)
        mul  $t3, $t2, $t2
        addu $t3, $t3, $t2
        sra  $t4, $t3, 1
        addu $s2, $s2, $t4
        addiu $t0, $t0, 1
        slti $at, $t0, 4
        bnez $at, inner
        addiu $s0, $s0, 1
        slti $at, $s0, 60
        bnez $at, outer
        move $a0, $s2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`,
	"branchy": `
        # Data-dependent branches fed by loads: exercises squashes and the
        # wrong-path machinery.
        .data
bits:   .word 1,0,1,1,0,1,0,0,1,1,1,0,1,0,0,1,0,1,1,0,1,1,0,1,0,0,1,0,1,1,0,0
        .text
main:   li   $s0, 0          # index
        li   $s2, 0          # count of ones
        li   $s3, 0          # alt accumulator
outer:  andi $t0, $s0, 31
        sll  $t0, $t0, 2
        la   $t1, bits
        addu $t1, $t1, $t0
        lw   $t2, 0($t1)
        beqz $t2, iszero
        addiu $s2, $s2, 1
        b    next
iszero: addiu $s3, $s3, 2
next:   addiu $s0, $s0, 1
        slti $at, $s0, 200
        bnez $at, outer
        addu $a0, $s2, $s3
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`,
	"storeload": `
        # Store-to-load forwarding and reuse invalidation by stores.
        .data
cell:   .word 0
        .text
main:   la   $s0, cell
        li   $t0, 0
        li   $s1, 0
loop:   sw   $t0, 0($s0)
        lw   $t1, 0($s0)
        addu $s1, $s1, $t1
        addiu $t0, $t0, 1
        slti $at, $t0, 50
        bnez $at, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`,
	"latency": `
        # Long-latency operations: divides and FP feed dependent chains.
        .data
fone:   .word 0x3f800000
        .text
main:   li   $s0, 1000000
        li   $s1, 7
        li   $s2, 0
        li   $t4, 4
loop:   div  $t0, $s0, $s1    # quotient
        rem  $t1, $s0, $s1
        addu $s2, $s2, $t1
        addiu $s0, $s0, -13333
        bgtz $s0, loop
        l.s  $f0, fone
        add.s $f1, $f0, $f0
        mul.s $f2, $f1, $f1
        sqrt.s $f3, $f2
        cvt.w.s $f4, $f3
        mfc1 $t2, $f4
        addu $a0, $s2, $t2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`,
	"pointer": `
        # Pointer chasing through a linked list built in memory.
        .data
nodes:  .space 800            # 100 nodes x (value, next)
        .text
main:   la   $s0, nodes
        li   $t0, 0            # build list
build:  sll  $t1, $t0, 3
        addu $t1, $t1, $s0     # node addr
        sw   $t0, 0($t1)       # value = i
        addiu $t2, $t1, 8      # next = node i+1
        sw   $t2, 4($t1)
        addiu $t0, $t0, 1
        slti $at, $t0, 100
        bnez $at, build
        sll  $t1, $t0, 3
        addu $t1, $t1, $s0
        addiu $t1, $t1, -8
        sw   $zero, 4($t1)     # last->next = null
        # walk the list 5 times
        li   $s3, 0
        li   $s4, 5
walk:   move $t3, $s0
        li   $t4, 0
next:   lw   $t5, 0($t3)
        addu $t4, $t4, $t5
        lw   $t3, 4($t3)
        bnez $t3, next
        addu $s3, $s3, $t4
        addiu $s4, $s4, -1
        bgtz $s4, walk
        move $a0, $s3
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
`,
}

func assembleTest(t testing.TB, name string) *prog.Program {
	t.Helper()
	src, ok := testPrograms[name]
	if !ok {
		t.Fatalf("no test program %q", name)
	}
	p, err := asm.Assemble(name+".s", src)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	return p
}

// allConfigs enumerates every configuration the paper studies.
func allConfigs() map[string]Config {
	cfgs := map[string]Config{
		"base":    DefaultConfig(),
		"ir":      IRChoice(false),
		"ir-late": IRChoice(true),
	}
	for _, scheme := range []vp.Scheme{vp.Magic, vp.LVP} {
		for _, res := range []BranchResolution{SB, NSB} {
			for _, re := range []ReexecPolicy{ME, NME} {
				for _, vl := range []int{0, 1} {
					c := VPChoice(scheme, res, re, vl)
					cfgs[fmt.Sprintf("%v-%v-%v-%d", scheme, re, res, vl)] = c
				}
			}
		}
	}
	return cfgs
}

// TestAllConfigsMatchOracle is the master correctness test: every machine
// configuration must commit exactly the functional trace — same PCs, same
// results, same memory addresses, same branch directions, same output.
func TestAllConfigsMatchOracle(t *testing.T) {
	for progName := range testPrograms {
		p := assembleTest(t, progName)
		for cfgName, cfg := range allConfigs() {
			t.Run(progName+"/"+cfgName, func(t *testing.T) {
				m, err := New(p, cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Run(5_000_000); err != nil {
					t.Fatal(err)
				}
				if !m.Halted() {
					t.Fatal("machine did not halt (deadlock?)")
				}
				if got, want := m.Output(), m.Oracle().Output; got != want {
					t.Errorf("output = %q, want %q", got, want)
				}
				if got, want := m.ExitCode(), m.Oracle().ExitCode; got != want {
					t.Errorf("exit = %d, want %d", got, want)
				}
				s := m.Stats()
				if s.Committed != uint64(m.Oracle().Len()) {
					t.Errorf("committed %d, oracle %d", s.Committed, m.Oracle().Len())
				}
			})
		}
	}
}

func runProg(t testing.TB, progName string, cfg Config) *Machine {
	t.Helper()
	p := assembleTest(t, progName)
	m, err := New(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	return m
}

// TestIRFasterThanBaseOnRedundantCode: the headline effect — IR collapses
// dependence chains on redundant code.
func TestIRSpeedsUpRedundantCode(t *testing.T) {
	base := runProg(t, "redundant", DefaultConfig())
	ir := runProg(t, "redundant", IRChoice(false))
	bIPC, iIPC := base.Stats().IPC(), ir.Stats().IPC()
	if iIPC <= bIPC {
		t.Errorf("IR IPC %.3f not faster than base %.3f", iIPC, bIPC)
	}
	if ir.Stats().ReuseResultRate() < 20 {
		t.Errorf("reuse rate %.1f%% too low for redundant loop", ir.Stats().ReuseResultRate())
	}
}

// TestVPSpeedsUpRedundantCode: same for VP_Magic.
func TestVPSpeedsUpRedundantCode(t *testing.T) {
	base := runProg(t, "redundant", DefaultConfig())
	vpm := runProg(t, "redundant", VPChoice(vp.Magic, SB, ME, 0))
	bIPC, vIPC := base.Stats().IPC(), vpm.Stats().IPC()
	if vIPC <= bIPC {
		t.Errorf("VP IPC %.3f not faster than base %.3f", vIPC, bIPC)
	}
	pred, _ := vpm.Stats().VPResultRates()
	if pred < 20 {
		t.Errorf("prediction rate %.1f%% too low", pred)
	}
}

// TestEarlyValidationBeatsLate reproduces the Figure 3 direction: early
// validation must outperform late validation.
func TestEarlyValidationBeatsLate(t *testing.T) {
	early := runProg(t, "redundant", IRChoice(false))
	late := runProg(t, "redundant", IRChoice(true))
	if early.Stats().IPC() < late.Stats().IPC() {
		t.Errorf("early IPC %.3f < late IPC %.3f", early.Stats().IPC(), late.Stats().IPC())
	}
}

// TestVerifyLatencyCosts: 1-cycle verification must not be faster than
// 0-cycle for the same configuration.
func TestVerifyLatencyCosts(t *testing.T) {
	v0 := runProg(t, "redundant", VPChoice(vp.Magic, NSB, ME, 0))
	v1 := runProg(t, "redundant", VPChoice(vp.Magic, NSB, ME, 1))
	if v1.Stats().IPC() > v0.Stats().IPC()+1e-9 {
		t.Errorf("vlat=1 IPC %.4f beats vlat=0 IPC %.4f", v1.Stats().IPC(), v0.Stats().IPC())
	}
}

// TestBranchStatsSane: gshare must learn the loop branches.
func TestBranchStatsSane(t *testing.T) {
	m := runProg(t, "sum", DefaultConfig())
	s := m.Stats()
	if s.CondBranches < 900 {
		t.Fatalf("cond branches = %d", s.CondBranches)
	}
	if s.BranchPredRate() < 90 {
		t.Errorf("branch prediction rate %.1f%% too low for a simple loop", s.BranchPredRate())
	}
}

// TestReturnPrediction: the RAS should predict returns essentially always.
func TestReturnPrediction(t *testing.T) {
	m := runProg(t, "calls", DefaultConfig())
	s := m.Stats()
	if s.Returns < 19 {
		t.Fatalf("returns = %d", s.Returns)
	}
	if s.ReturnPredRate() < 99 {
		t.Errorf("return prediction rate %.1f%%", s.ReturnPredRate())
	}
}

// TestIRResolvesBranchesEarly: reused branches resolve at decode, so the
// mean branch resolution latency under IR must be below base.
func TestIRResolvesBranchesEarly(t *testing.T) {
	base := runProg(t, "branchy", DefaultConfig())
	ir := runProg(t, "branchy", IRChoice(false))
	if ir.Stats().MeanBrResolveLat() >= base.Stats().MeanBrResolveLat() {
		t.Errorf("IR resolve latency %.2f not below base %.2f",
			ir.Stats().MeanBrResolveLat(), base.Stats().MeanBrResolveLat())
	}
}

// TestIRReducesExecutions: reused instructions skip the execute stage.
func TestIRReducesExecutions(t *testing.T) {
	base := runProg(t, "redundant", DefaultConfig())
	ir := runProg(t, "redundant", IRChoice(false))
	if ir.Stats().Executed >= base.Stats().Executed {
		t.Errorf("IR executions %d not below base %d", ir.Stats().Executed, base.Stats().Executed)
	}
}

// TestNMELimitsExecCounts: under NME no instruction executes more than twice.
func TestNMELimitsExecCounts(t *testing.T) {
	m := runProg(t, "branchy", VPChoice(vp.LVP, SB, NME, 1))
	s := m.Stats()
	if s.ExecTimes[2] != 0 || s.ExecTimes[3] != 0 {
		t.Errorf("NME allowed 3+ executions: %v", s.ExecTimes)
	}
}

// TestStoreLoadForwarding: the storeload program round-trips values through
// memory every iteration; it must still match the oracle and make progress.
func TestStoreLoadForwarding(t *testing.T) {
	m := runProg(t, "storeload", DefaultConfig())
	if m.Output() != "1225" {
		t.Errorf("output = %q, want 1225", m.Output())
	}
}

// TestDeterminism: two runs of the same configuration are cycle-identical.
func TestDeterminism(t *testing.T) {
	a := runProg(t, "branchy", IRChoice(false))
	b := runProg(t, "branchy", IRChoice(false))
	if a.Stats().Cycles != b.Stats().Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Stats().Cycles, b.Stats().Cycles)
	}
	c := runProg(t, "branchy", VPChoice(vp.Magic, SB, ME, 1))
	d := runProg(t, "branchy", VPChoice(vp.Magic, SB, ME, 1))
	if c.Stats().Cycles != d.Stats().Cycles {
		t.Errorf("vp cycles differ: %d vs %d", c.Stats().Cycles, d.Stats().Cycles)
	}
}

// TestConfigValidate exercises the validation errors.
func TestConfigValidate(t *testing.T) {
	c := DefaultConfig()
	c.ROBSize = 33
	if err := c.Validate(); err == nil {
		t.Error("non-power-of-two ROB accepted")
	}
	c = DefaultConfig()
	c.FetchWidth = 0
	if err := c.Validate(); err == nil {
		t.Error("zero fetch width accepted")
	}
}

// TestConfigNames pins the labels used in harness tables.
func TestConfigNames(t *testing.T) {
	if got := IRChoice(false).Name(); got != "IR" {
		t.Errorf("name = %q", got)
	}
	if got := IRChoice(true).Name(); got != "IR late" {
		t.Errorf("name = %q", got)
	}
	c := VPChoice(vp.Magic, NSB, NME, 1)
	if got := c.Name(); got != "VP_Magic NME-NSB vlat=1" {
		t.Errorf("name = %q", got)
	}
}

// TestHybridMatchesOracle: the hybrid (IR + VP) machine must also commit
// the exact functional stream on every test program.
func TestHybridMatchesOracle(t *testing.T) {
	for progName := range testPrograms {
		p := assembleTest(t, progName)
		for _, cfg := range []Config{
			HybridChoice(vp.Magic, SB, ME, 0),
			HybridChoice(vp.Magic, NSB, NME, 1),
			HybridChoice(vp.LVP, SB, ME, 1),
			HybridChoice(vp.Stride, SB, ME, 0),
		} {
			t.Run(progName+"/"+cfg.Name(), func(t *testing.T) {
				m, err := New(p, cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Run(5_000_000); err != nil {
					t.Fatal(err)
				}
				if !m.Halted() {
					t.Fatal("machine did not halt")
				}
				if got, want := m.Output(), m.Oracle().Output; got != want {
					t.Errorf("output = %q, want %q", got, want)
				}
			})
		}
	}
}

// TestHybridCombinesBothMechanisms: on redundant code the hybrid machine
// both reuses and predicts, and is at least as fast as base.
func TestHybridCombinesBothMechanisms(t *testing.T) {
	base := runProg(t, "redundant", DefaultConfig())
	hy := runProg(t, "redundant", HybridChoice(vp.Magic, SB, ME, 0))
	s := hy.Stats()
	if s.ReusedResults == 0 {
		t.Error("hybrid never reused")
	}
	if s.VPResultPredicted == 0 {
		t.Error("hybrid never predicted")
	}
	if hy.Stats().IPC() < base.Stats().IPC() {
		t.Errorf("hybrid IPC %.3f below base %.3f", hy.Stats().IPC(), base.Stats().IPC())
	}
}

// TestStrideSchemeRuns: the stride predictor must run the latency program
// (stride-heavy loop counters) correctly and make predictions.
func TestStrideSchemeRuns(t *testing.T) {
	m := runProg(t, "latency", VPChoice(vp.Stride, SB, ME, 0))
	s := m.Stats()
	if s.VPResultPredicted == 0 {
		t.Error("stride predictor made no predictions")
	}
	if s.VPResultCorrect == 0 {
		t.Error("stride predictor was never right")
	}
}
