package core

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/vpir-sim/vpir/internal/obs"
	"github.com/vpir-sim/vpir/internal/vp"
)

// loopSrc is a small branchy kernel with loads and stores so squash,
// reuse and memory events all fire.
const loopSrc = `
        .data
xs:     .word 3,1,4,1,5,9,2,6
        .text
main:   li   $s0, 0
        li   $s2, 0
loop:   andi $t0, $s0, 7
        sll  $t0, $t0, 2
        la   $t1, xs
        addu $t1, $t1, $t0
        lw   $t2, 0($t1)
        addu $s2, $s2, $t2
        sw   $s2, 0($t1)
        addiu $s0, $s0, 1
        slti $at, $s0, 60
        bnez $at, loop
        li   $v0, 10
        syscall
`

func runObserved(t *testing.T, src string, cfg Config, interval uint64) (*Machine, *Observer) {
	t.Helper()
	m := buildMachine(t, src, cfg)
	o := NewObserver(interval, 0)
	m.AttachObserver(o)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	return m, o
}

// TestFinalSampleMatchesStats is the acceptance check: the cumulative
// counters of the last interval sample must equal the run's Stats,
// field for field.
func TestFinalSampleMatchesStats(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), IRChoice(false), VPChoice(vp.LVP, SB, ME, 1)} {
		m, o := runObserved(t, loopSrc, cfg, 64)
		samples := o.Series().Samples()
		if len(samples) < 2 {
			t.Fatalf("%s: only %d samples; want interval samples plus a final flush", cfg.Name(), len(samples))
		}
		names := StatsFieldNames()
		want := StatsValues(m.Stats())
		last := samples[len(samples)-1]
		if last.Cycle != m.Cycle() {
			t.Errorf("%s: final sample at cycle %d, machine at %d", cfg.Name(), last.Cycle, m.Cycle())
		}
		for i, n := range names {
			if last.Values[i] != want[i] {
				t.Errorf("%s: final sample %s = %v, Stats has %v", cfg.Name(), n, last.Values[i], want[i])
			}
		}
		// Cumulative counters must be monotone across samples.
		committed := o.Series().Column("committed")
		for i := 1; i < len(committed); i++ {
			if committed[i] < committed[i-1] {
				t.Errorf("%s: committed not monotone at sample %d: %v -> %v",
					cfg.Name(), i, committed[i-1], committed[i])
			}
		}
	}
}

func TestObserverEventsAndCounters(t *testing.T) {
	m, o := runObserved(t, loopSrc, IRChoice(false), 128)
	ev := o.Events()
	if ev.Count(obs.EvReuseHit) == 0 {
		t.Error("no reuse-hit events on a loop kernel under IR")
	}
	if ev.Count(obs.EvReuseInvalidate) == 0 {
		t.Error("no reuse-invalidate events despite stores over loaded words")
	}
	if got := o.Registry().Counter("reuse.hits").Value(); got != ev.Count(obs.EvReuseHit) {
		t.Errorf("reuse.hits counter %d != event count %d", got, ev.Count(obs.EvReuseHit))
	}
	s := m.Stats()
	if got := o.Registry().Counter("squash.total").Value(); got != s.Squashes {
		t.Errorf("squash.total counter %d != Stats.Squashes %d", got, s.Squashes)
	}
	// The event log JSONL must render every buffered event.
	var b strings.Builder
	if err := ev.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(b.String(), "\n")
	if lines != ev.Len() {
		t.Errorf("event JSONL lines %d != buffered events %d", lines, ev.Len())
	}
}

func TestObserverVPMispredictEvents(t *testing.T) {
	cfg := VPChoice(vp.LVP, SB, ME, 1)
	m, o := runObserved(t, loopSrc, cfg, 128)
	s := m.Stats()
	if s.VPResultPredicted == 0 {
		t.Skip("kernel produced no predictions under LVP")
	}
	if s.VPResultPredicted > s.VPResultCorrect && o.Events().Count(obs.EvVPMispredict) == 0 {
		t.Error("mispredictions in Stats but no vp_mispredict events")
	}
}

func TestObserverSeriesExportParses(t *testing.T) {
	_, o := runObserved(t, loopSrc, DefaultConfig(), 64)
	var b strings.Builder
	if err := o.Series().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	// Every line must be valid standalone JSON with a cycle key.
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var mp map[string]float64
		if err := json.Unmarshal([]byte(line), &mp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if _, ok := mp["cycle"]; !ok {
			t.Fatalf("line missing cycle: %q", line)
		}
	}
	got, err := obs.ReadSeriesJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != o.Series().Len() {
		t.Errorf("round-trip lost samples: %d != %d", got.Len(), o.Series().Len())
	}
}

func TestObserverPrometheusDump(t *testing.T) {
	_, o := runObserved(t, loopSrc, DefaultConfig(), 64)
	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"vpir_squash_total",                  // counter
		"vpir_stats_cycles",                  // flushed stats gauge
		"vpir_branch_resolve_latency_bucket", // histogram
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q", want)
		}
	}
}

// TestDetachedObserverIsFree checks the disabled path stays identical:
// a run with no observer produces the same Stats as one with.
func TestDetachedObserverIsFree(t *testing.T) {
	plain := buildMachine(t, loopSrc, IRChoice(false))
	if err := plain.Run(0); err != nil {
		t.Fatal(err)
	}
	observed, _ := runObserved(t, loopSrc, IRChoice(false), 64)
	if plain.Stats() != observed.Stats() {
		t.Errorf("observer changed simulation results:\nplain    %+v\nobserved %+v",
			plain.Stats(), observed.Stats())
	}
}

func TestStatsFieldNamesCoverEveryField(t *testing.T) {
	names := StatsFieldNames()
	vals := StatsValues(Stats{Cycles: 1, ExecTimes: [4]uint64{7, 8, 9, 10}})
	if len(names) != len(vals) {
		t.Fatalf("names %d != values %d", len(names), len(vals))
	}
	idx := func(n string) int {
		for i, s := range names {
			if s == n {
				return i
			}
		}
		t.Fatalf("field %q missing from StatsFieldNames: %v", n, names)
		return -1
	}
	if vals[idx("cycles")] != 1 {
		t.Error("cycles not flattened")
	}
	for i, want := range []float64{7, 8, 9, 10} {
		if vals[idx("exec_times_1")+i] != want {
			t.Errorf("exec_times_%d = %v, want %v", i+1, vals[idx("exec_times_1")+i], want)
		}
	}
	// Spot-check the snake_case mapping on tricky names.
	for _, n := range []string{"vp_result_predicted", "i_cache_misses", "br_resolve_lat_sum"} {
		idx(n)
	}
}

func TestWatchdogTripEmitsEvent(t *testing.T) {
	// A healthy pipeline has multi-cycle stretches without a retirement
	// (cache misses, dependence chains), so a 1-cycle threshold trips on
	// any real kernel.
	cfg := DefaultConfig()
	cfg.Watchdog = 1
	m := buildMachine(t, loopSrc, cfg)
	o := NewObserver(64, 0)
	m.AttachObserver(o)
	err := m.Run(0)
	if err == nil {
		t.Skip("watchdog did not trip at threshold 1")
	}
	if !IsWatchdog(err) {
		t.Fatalf("expected watchdog error, got %v", err)
	}
	if o.Events().Count(obs.EvWatchdog) != 1 {
		t.Errorf("watchdog events = %d, want 1", o.Events().Count(obs.EvWatchdog))
	}
	// The error path must still flush a final sample.
	if o.Series().Len() == 0 {
		t.Error("no final sample flushed on the watchdog path")
	}
}
