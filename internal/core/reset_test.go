package core

import (
	"testing"

	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// resetTestConfigs covers every technique and VPT scheme family so Reset
// is exercised across every structure it may rebuild or reuse (VPT —
// including the FCM history tables — VPA, RB, caches, predictor) and both
// hybrid arbitration policies.
func resetTestConfigs() []Config {
	return []Config{
		DefaultConfig(),
		IRChoice(false),
		VPChoice(vp.Stride, SB, ME, 1),
		VPChoice(vp.TwoDelta, SB, ME, 1),
		VPChoice(vp.FCM, NSB, NME, 0),
		HybridChoice(vp.Stride, SB, ME, 1),
		HybridConfChoice(vp.FCM, SB, ME, 1),
	}
}

const resetTestInsts = 30_000 // truncated runs keep the full matrix fast

type runResult struct {
	stats Stats
	out   string
	exit  int
}

func runFresh(t *testing.T, w *workload.Workload, cfg Config) (*Machine, runResult) {
	t.Helper()
	p, err := w.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, cfg, resetTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	return m, finishRun(t, m, w.Name, cfg)
}

func finishRun(t *testing.T, m *Machine, name string, cfg Config) runResult {
	t.Helper()
	if err := m.Run(0); err != nil {
		t.Fatalf("%s/%s: %v", name, cfg.Name(), err)
	}
	return runResult{stats: m.Stats(), out: m.Output(), exit: m.ExitCode()}
}

// TestResetDeterminism is the machine-reuse contract: a Reset machine must
// produce bit-identical Stats (and Output and ExitCode) to a machine built
// fresh by New with the same program and configuration — including when the
// reused machine previously ran a *different* configuration.
func TestResetDeterminism(t *testing.T) {
	cfgs := resetTestConfigs()
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		// One long-lived machine is reset through every configuration in
		// turn, so each comparison also covers cross-config reuse (the
		// previous run left different structures behind).
		reused, prev := runFresh(t, w, cfgs[0])
		for i, cfg := range cfgs {
			_, fresh := runFresh(t, w, cfg)
			var got runResult
			if i == 0 {
				got = prev
			} else {
				if err := reused.Reset(cfg); err != nil {
					t.Fatalf("%s/%s: Reset: %v", name, cfg.Name(), err)
				}
				got = finishRun(t, reused, name, cfg)
			}
			if got.stats != fresh.stats {
				t.Errorf("%s/%s: reused machine Stats differ from fresh\n reused: %+v\n fresh:  %+v",
					name, cfg.Name(), got.stats, fresh.stats)
			}
			if got.out != fresh.out {
				t.Errorf("%s/%s: reused machine Output differs from fresh", name, cfg.Name())
			}
			if got.exit != fresh.exit {
				t.Errorf("%s/%s: exit code %d != fresh %d", name, cfg.Name(), got.exit, fresh.exit)
			}
		}
		// Same-config back-to-back reuse, twice, to catch state that only
		// leaks on the second reuse.
		cfg := cfgs[len(cfgs)-1]
		_, fresh := runFresh(t, w, cfg)
		for round := 0; round < 2; round++ {
			if err := reused.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			if got := finishRun(t, reused, name, cfg); got.stats != fresh.stats {
				t.Errorf("%s/%s: round %d reuse Stats differ from fresh", name, cfg.Name(), round)
			}
		}
	}
}

// TestCkptPoolBounded asserts the checkpoint free list's high-water mark:
// the number of checkpoints ever allocated never exceeds MaxBranches (the
// cap on live checkpoints), every checkpoint is back in the pool once the
// machine is reset, and reuse allocates no new ones.
func TestCkptPoolBounded(t *testing.T) {
	w, err := workload.Get("go") // branchy: exercises squash and NSB paths
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range resetTestConfigs() {
		m, _ := runFresh(t, w, cfg)
		if m.ckptAllocs > cfg.MaxBranches {
			t.Errorf("%s: %d checkpoints allocated, MaxBranches is %d",
				cfg.Name(), m.ckptAllocs, cfg.MaxBranches)
		}
		live := 0
		for i := range m.rob {
			if m.rob[i].valid && m.rob[i].checkpoint != nil {
				live++
			}
		}
		if len(m.ckptFree)+live != m.ckptAllocs {
			t.Errorf("%s: pool leak: %d free + %d live != %d allocated",
				cfg.Name(), len(m.ckptFree), live, m.ckptAllocs)
		}
		before := m.ckptAllocs
		if err := m.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if len(m.ckptFree) != before {
			t.Errorf("%s: after Reset, %d checkpoints in pool, want all %d",
				cfg.Name(), len(m.ckptFree), before)
		}
		if err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		if m.ckptAllocs != before {
			t.Errorf("%s: reuse run allocated %d new checkpoints",
				cfg.Name(), m.ckptAllocs-before)
		}
	}
}
