package core

import (
	"github.com/vpir-sim/vpir/internal/isa"
)

// fetch models the Table 1 front end: up to FetchWidth instructions per
// cycle, at most one predicted-taken branch per cycle, never crossing a
// cache line boundary within a cycle, with I-cache miss stalls.
func (m *Machine) fetch() {
	if m.halted || m.cycle < m.fetchReady {
		return
	}
	firstPC := m.fetchPC
	width := m.cfg.FetchWidth
	for n := 0; n < width && int(m.fetchCount) < len(m.fetchQ); n++ {
		pc := m.fetchPC
		in := m.instAt(pc)
		if in == nil || in.Op == isa.OpInvalid {
			// Off the text segment (wrong path after a wild jump, or past
			// the end). Nothing to fetch until a squash redirects us.
			return
		}
		if n > 0 && !m.icache.SameLine(firstPC, pc) {
			return // cannot fetch across a line boundary in one cycle
		}
		// I-cache access on a line change.
		line := pc / uint32(m.icache.LineBytes())
		if line != m.lastFetchLine {
			lat := m.icache.Access(pc)
			m.lastFetchLine = line
			if lat > 1 {
				// Miss: the line arrives after lat cycles; nothing fetched
				// from it this cycle.
				m.fetchReady = m.cycle + uint64(lat)
				return
			}
		}

		// Write into the next ring slot in place; the slot's RAS snapshot
		// storage (inside bpState) is kept and refilled by SaveInto, so
		// fetching a checkpointed branch allocates nothing in steady state.
		// Every live field is assigned (bpState and histAtPred are read only
		// under needCkpt, which SaveInto accompanies), so no zeroing pass.
		f := &m.fetchQ[wrap(m.fetchHead+m.fetchCount, int32(len(m.fetchQ)))]
		f.pc = pc
		f.in = in
		f.predTaken = false
		f.predNext = pc + 4
		f.fetchCycle = m.cycle
		f.needCkpt = false
		switch {
		case in.Op.IsCondBranch():
			m.bp.SaveInto(&f.bpState)
			f.histAtPred = m.bp.Hist()
			f.needCkpt = true
			f.predTaken = m.bp.PredictDir(pc)
			if f.predTaken {
				f.predNext = in.BranchTarget(pc)
			}
			m.bp.SpecUpdateHist(f.predTaken)
		case in.Op == isa.OpJ:
			f.predTaken = true
			f.predNext = in.JumpTarget()
		case in.Op == isa.OpJAL:
			f.predTaken = true
			f.predNext = in.JumpTarget()
			m.bp.PushRAS(pc + 4)
		case in.Op == isa.OpJR:
			m.bp.SaveInto(&f.bpState)
			f.needCkpt = true
			f.predTaken = true
			if in.Src1 == isa.RegRA { // function return: use the RAS
				if t := m.bp.PopRAS(); t != 0 {
					f.predNext = t
				} else if t, ok := m.bp.LookupBTB(pc); ok {
					f.predNext = t
				}
			} else if t, ok := m.bp.LookupBTB(pc); ok {
				f.predNext = t
			}
		case in.Op == isa.OpJALR:
			m.bp.SaveInto(&f.bpState)
			f.needCkpt = true
			f.predTaken = true
			if t, ok := m.bp.LookupBTB(pc); ok {
				f.predNext = t
			}
			m.bp.PushRAS(pc + 4)
		}

		m.fetchCount++
		m.stats.Fetched++
		m.fetchPC = f.predNext
		if f.predNext != pc+4 {
			return // one taken branch per cycle
		}
	}
}
