package core

import (
	"runtime"
	"sync"
	"weak"

	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/prog"
)

// Oracle trace cache.
//
// The functional pre-run that New performs depends only on the program and
// the instruction cap — never on the timing configuration — yet it is the
// single most expensive part of constructing a machine (the emulator runs
// the whole workload). Sweeps, fault-injection campaigns, server pools and
// differential tests all build many machines for the same program, so the
// collected TraceLog is shared: it is immutable after collection (the
// machine only ever reads it), which makes one log safe to hand to any
// number of machines on any goroutine.
//
// The cache key holds the program weakly so the cache never extends a
// program's lifetime — a workload's multi-megabyte trace dies with the
// program, reclaimed by the cleanup registered at insertion.

// oracleKey identifies one collected trace: the program identity (weak, so
// the cache never keeps a program or its trace alive) and the cap given to
// New.
type oracleKey struct {
	p        weak.Pointer[prog.Program]
	maxInsts uint64
}

var oracleCache sync.Map // oracleKey -> *emu.TraceLog

// collectOracle returns the functional execution log for (p, maxInsts),
// collecting it on first use. Concurrent first uses may both run the
// emulator; the log is deterministic, so whichever store wins is correct.
func collectOracle(p *prog.Program, maxInsts uint64) (*emu.TraceLog, error) {
	key := oracleKey{p: weak.Make(p), maxInsts: maxInsts}
	if v, ok := oracleCache.Load(key); ok {
		return v.(*emu.TraceLog), nil
	}
	cpu := emu.New(p)
	oracle, err := emu.CollectTrace(cpu, maxInsts)
	if err != nil {
		return nil, err
	}
	if _, loaded := oracleCache.LoadOrStore(key, oracle); !loaded {
		runtime.AddCleanup(p, func(k oracleKey) { oracleCache.Delete(k) }, key)
	}
	return oracle, nil
}
