package core

import (
	"math/bits"
	"os"

	"github.com/vpir-sim/vpir/internal/isa"
)

// Quiescence-aware cycle skipping.
//
// The paper's interesting configurations spend most of their simulated
// cycles waiting: I-cache and D-cache miss latency, multi-cycle functional
// units and the VP-verification delay are exactly the stall sources the
// study varies. A cycle in which no pipeline stage can change any machine
// state (including the statistics counters) is quiescent, and the cycle
// loop may jump m.cycle directly to the next cycle at which anything can
// happen instead of iterating the empty cycles one at a time.
//
// The invisibility contract: with skipping enabled, Stats, Output,
// ExitCode, pipetrace records, interval samples, structured events and
// watchdog behaviour are bit-identical to the legacy cycle-by-cycle loop.
// The predicate below is therefore conservative — misjudging an active
// cycle as quiescent would corrupt results, misjudging a quiescent cycle
// as active merely skips less — and the skip target is clamped to every
// cycle with an externally visible side effect (the next interval-sampler
// boundary, the watchdog deadline, the Run cycle budget). Fault-injection
// cycleHooks must observe every cycle, so any registered hook disables
// skipping for the run. See docs/performance.md for the full contract.

// noSkipDefault is the process-wide escape hatch: VPIR_NO_SKIP=1 forces
// the legacy cycle-by-cycle loop everywhere (the skip-invariance smoke in
// scripts/check.sh runs the golden corpus under it). It is deliberately
// not a Config field: skipping is invisible to results, so it must never
// contribute to Config.Key cache identities.
var noSkipDefault = os.Getenv("VPIR_NO_SKIP") == "1"

// SetCycleSkipping enables or disables quiescence-aware cycle skipping on
// this machine (overriding the VPIR_NO_SKIP process default). Results are
// bit-identical either way; the differential suites use the override to
// prove it. Reset returns the machine to the process default.
func (m *Machine) SetCycleSkipping(on bool) { m.skipIdleCycles = on }

// CyclesSkipped reports how many of this run's cycles were fast-forwarded
// by the quiescence skipper rather than executed. The counter is kept out
// of core.Stats on purpose: Stats (and the interval samples flattened from
// it) are part of the bit-identity contract between the skipping and
// legacy loops, and a skip counter is precisely the one value that must
// differ between them.
func (m *Machine) CyclesSkipped() uint64 { return m.cyclesSkipped }

// quiescent reports whether the upcoming cycle provably changes no machine
// state: no event (carried or scheduled) fires, the finality and issue
// queues are empty, commit is head-blocked, decode is head-blocked or
// empty, and fetch is stalled. Every condition mirrors the corresponding
// stage's own early-out, so a quiescent step() is a pure
// cycle++/Cycles++ — which is exactly what skipIdle replays in bulk.
func (m *Machine) quiescent() bool {
	// Pending writeback carry-overs, finality re-checks or issue retries
	// all mutate state (the issue queue's denial retries even charge
	// ResourceRequests/Denials every cycle).
	if len(m.wbCarry) != 0 || len(m.finalQ) != 0 || len(m.issueQ) != 0 {
		return false
	}
	// Events scheduled for this cycle (the occupancy bit is conservative:
	// it may cover only squash-orphaned events, which drain as no-ops).
	if m.eventMask&(1<<(m.cycle%wheelSize)) != 0 {
		return false
	}
	// Commit: the head would retire (or a head store would at least consume
	// a D-cache port) unless it is non-final or an unresolved control op.
	if m.robCount > 0 {
		if e := &m.rob[m.robHead]; e.final && !(e.isCtl && !e.finalResolved) {
			return false
		}
	}
	// Decode: dispatches unless the head instruction is structurally
	// blocked (same conditions, same order as decode's early returns).
	if m.fetchCount > 0 {
		op := m.fetchQ[m.fetchHead].in.Op
		switch {
		case m.robCount == int32(m.cfg.ROBSize):
		case m.serialize >= 0:
		case op.Serializes() && m.robCount > 0:
		case op.IsMem() && m.lsqCount == int32(m.cfg.LSQSize):
		case m.fetchQ[m.fetchHead].needCkpt && m.unresolved >= m.cfg.MaxBranches:
		default:
			return false
		}
	}
	// Fetch: touches I-cache and branch-predictor state unless stalled on a
	// miss, out of buffer space, or off the text segment (wrong path).
	if m.cycle >= m.fetchReady && int(m.fetchCount) < len(m.fetchQ) {
		if in := m.instAt(m.fetchPC); in != nil && in.Op != isa.OpInvalid {
			return false
		}
	}
	return true
}

// nextEventDelta returns how many cycles from now the earliest scheduled
// wheel event fires (1..wheelSize-1), or 0 when the wheel is empty. The
// occupancy mask has one bit per wheel slot (wheelSize is 64), so the
// search is a rotate plus a trailing-zero count.
func (m *Machine) nextEventDelta() uint64 {
	if m.eventMask == 0 {
		return 0
	}
	r := bits.RotateLeft64(m.eventMask, -int((m.cycle+1)%wheelSize))
	return 1 + uint64(bits.TrailingZeros64(r))
}

// skipIdle advances a quiescent machine directly to the next cycle at
// which anything can happen: the earliest wheel event, the end of an
// I-cache miss stall, the next interval-sampler boundary, the watchdog
// deadline of a hard-deadlocked machine, or the Run cycle budget. The
// skipped cycles are accounted exactly as the legacy loop would have
// (stats.Cycles advances with m.cycle); everything else is untouched by
// construction. Returns false when no finite target lies ahead.
func (m *Machine) skipIdle(limit uint64, deadlocked bool) bool {
	target := limit
	if d := m.nextEventDelta(); d != 0 && m.cycle+d < target {
		target = m.cycle + d
	}
	if m.cycle < m.fetchReady && m.fetchReady < target {
		target = m.fetchReady
	}
	if o := m.obs; o != nil && o.interval > 0 {
		// The sampler fires after the step that makes m.cycle a multiple of
		// the interval, so the cycle that must still execute is b with
		// (b+1) % interval == 0.
		if b := m.cycle + (o.interval-(m.cycle+1)%o.interval)%o.interval; b < target {
			target = b
		}
	}
	if wd := m.cfg.Watchdog; deadlocked && wd > 0 {
		// Execute the deadline cycle itself so the trip happens at the same
		// cycle, with the same error, as the legacy loop.
		if b := m.lastRetire + wd; b < target {
			target = b
		}
	}
	if target == noLimit || target <= m.cycle {
		return false
	}
	delta := target - m.cycle
	m.cycle = target
	m.stats.Cycles += delta
	m.cyclesSkipped += delta
	if m.obs != nil {
		m.obs.cSkipped.Add(delta)
	}
	return true
}
