package core

import (
	"fmt"
	"reflect"
	"strings"

	"github.com/vpir-sim/vpir/internal/obs"
)

// Observer binds the observability layer to one Machine: a registry of
// counters/gauges/histograms updated inline by the pipeline, a bounded
// ring-buffered structured event log, and an interval sampler that
// snapshots the full cumulative Stats (plus occupancy gauges and VPT/RB
// table activity) into a time series every Interval cycles.
//
// Attach one with Machine.AttachObserver before Run. A machine without an
// observer pays only a nil check per instrumentation site.
type Observer struct {
	reg      *obs.Registry
	events   *obs.EventLog
	series   *obs.Series
	interval uint64

	// Inline instruments (pre-resolved so the hot path never does a map
	// lookup).
	cSquash    *obs.Counter
	cSpurious  *obs.Counter
	cVPMisp    *obs.Counter
	cReuseHit  *obs.Counter
	cReuseAddr *obs.Counter
	cInval     *obs.Counter
	cWatchdog  *obs.Counter
	cFault     *obs.Counter
	cSkipped   *obs.Counter
	hBrLat     *obs.Histogram
	hROBOcc    *obs.Histogram
	hLSQOcc    *obs.Histogram
	gROB       *obs.Gauge
	gLSQ       *obs.Gauge
	gFetchQ    *obs.Gauge
	gIPC       *obs.Gauge
}

// DefaultMetricsInterval is the default sampling period in cycles.
const DefaultMetricsInterval = 10_000

// DefaultEventCap is the default event-log ring capacity.
const DefaultEventCap = 4096

// NewObserver builds an observer sampling every interval cycles (0 =
// DefaultMetricsInterval) with an event ring of eventCap entries (0 =
// DefaultEventCap).
func NewObserver(interval uint64, eventCap int) *Observer {
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	if eventCap == 0 {
		eventCap = DefaultEventCap
	}
	reg := obs.NewRegistry()
	o := &Observer{
		reg:      reg,
		events:   obs.NewEventLog(eventCap),
		series:   obs.NewSeries(SampleFields()),
		interval: interval,

		cSquash:    reg.Counter("squash.total"),
		cSpurious:  reg.Counter("squash.spurious"),
		cVPMisp:    reg.Counter("vp.mispredicts"),
		cReuseHit:  reg.Counter("reuse.hits"),
		cReuseAddr: reg.Counter("reuse.addr_hits"),
		cInval:     reg.Counter("reuse.invalidations"),
		cWatchdog:  reg.Counter("watchdog.trips"),
		cFault:     reg.Counter("faults.detected"),
		cSkipped:   reg.Counter("core.cycles.skipped"),
		hBrLat:     reg.Histogram("branch.resolve_latency", []float64{1, 2, 4, 8, 16, 32, 64}),
		hROBOcc:    reg.Histogram("rob.occupancy", []float64{0, 4, 8, 16, 24, 31}),
		hLSQOcc:    reg.Histogram("lsq.occupancy", []float64{0, 4, 8, 16, 24, 31}),
		gROB:       reg.Gauge("rob.occupancy_now"),
		gLSQ:       reg.Gauge("lsq.occupancy_now"),
		gFetchQ:    reg.Gauge("fetchq.len"),
		gIPC:       reg.Gauge("ipc"),
	}
	return o
}

// Registry exposes the instrument registry (for the Prometheus exporter).
func (o *Observer) Registry() *obs.Registry { return o.reg }

// Events exposes the structured event log.
func (o *Observer) Events() *obs.EventLog { return o.events }

// Series exposes the sampled time series.
func (o *Observer) Series() *obs.Series { return o.series }

// Interval returns the sampling period in cycles.
func (o *Observer) Interval() uint64 { return o.interval }

// AttachObserver wires an observer into the machine. Must be called
// before Run; passing nil detaches.
func (m *Machine) AttachObserver(o *Observer) { m.obs = o }

// Observer returns the attached observer (nil when observability is off).
func (m *Machine) Observer() *Observer { return m.obs }

// --- event emission (call sites guard with m.obs != nil) ---

func (o *Observer) squashEvent(cycle uint64, pc uint32, seq uint64, target uint32, spurious bool) {
	o.cSquash.Inc()
	var b uint64
	if spurious {
		o.cSpurious.Inc()
		b = 1
	}
	o.events.Append(obs.Event{Cycle: cycle, Kind: obs.EvSquash, PC: pc, Seq: seq, A: uint64(target), B: b})
}

func (o *Observer) vpMispredictEvent(cycle uint64, e *robEntry) {
	o.cVPMisp.Inc()
	o.events.Append(obs.Event{
		Cycle: cycle, Kind: obs.EvVPMispredict, PC: e.pc, Seq: e.seq,
		A: cycle - e.decodeCycle, B: uint64(e.execCount),
	})
}

func (o *Observer) reuseHitEvent(cycle uint64, e *robEntry, value uint64, wrongPath bool) {
	o.cReuseHit.Inc()
	var b uint64
	if wrongPath {
		b = 1
	}
	o.events.Append(obs.Event{Cycle: cycle, Kind: obs.EvReuseHit, PC: e.pc, Seq: e.seq, A: value, B: b})
}

func (o *Observer) reuseAddrHitEvent(cycle uint64, e *robEntry, addr uint32) {
	o.cReuseAddr.Inc()
	o.events.Append(obs.Event{Cycle: cycle, Kind: obs.EvReuseAddrHit, PC: e.pc, Seq: e.seq, A: uint64(addr)})
}

func (o *Observer) reuseInvalidateEvent(cycle uint64, pc uint32, seq uint64, killed int) {
	o.cInval.Add(uint64(killed))
	o.events.Append(obs.Event{Cycle: cycle, Kind: obs.EvReuseInvalidate, PC: pc, Seq: seq, A: uint64(killed)})
}

func (o *Observer) watchdogEvent(cycle uint64, pc uint32, seq uint64, stalled uint64) {
	o.cWatchdog.Inc()
	o.events.Append(obs.Event{Cycle: cycle, Kind: obs.EvWatchdog, PC: pc, Seq: seq, A: stalled})
}

func (o *Observer) faultEvent(cycle uint64, pc uint32, seq uint64, field string) {
	o.cFault.Inc()
	o.events.Append(obs.Event{Cycle: cycle, Kind: obs.EvFault, PC: pc, Seq: seq, Note: field})
}

// --- interval sampling ---

// extraSampleFields are the sample columns beyond the flattened Stats
// counters: instantaneous occupancy gauges, the cumulative IPC, and the
// VPT / address-VPT / reuse-buffer structural activity.
var extraSampleFields = []string{
	"ipc",
	"rob_occupancy", "lsq_occupancy", "fetchq_len", "unresolved_branches",
	"vpt_lookups", "vpt_predictions",
	"vpa_lookups", "vpa_predictions",
	"rb_tests", "rb_hits", "rb_addr_hits", "rb_chain_hits",
	"rb_inserts", "rb_evictions", "rb_store_kills",
}

// SampleFields returns the schema of interval samples: every core.Stats
// counter (snake_cased, cumulative) followed by the derived and component
// fields. The leading "cycle" column of exported series is implicit.
func SampleFields() []string {
	return append(StatsFieldNames(), extraSampleFields...)
}

// maybeSample is called once per cycle from step.
func (m *Machine) maybeSample() {
	o := m.obs
	if o.interval > 0 && m.cycle%o.interval == 0 && m.cycle > 0 {
		m.sampleObs()
	}
}

// sampleObs appends one sample of the full cumulative state.
func (m *Machine) sampleObs() {
	o := m.obs
	s := m.Stats()
	vals := StatsValues(s)

	ipc := s.IPC()
	o.gIPC.Set(ipc)
	o.gROB.Set(float64(m.robCount))
	o.gLSQ.Set(float64(m.lsqCount))
	o.gFetchQ.Set(float64(m.fetchCount))
	o.hROBOcc.Observe(float64(m.robCount))
	o.hLSQOcc.Observe(float64(m.lsqCount))

	var vptL, vptP, vpaL, vpaP uint64
	if m.vpt != nil {
		st := m.vpt.Stats()
		vptL, vptP = st.Lookups, st.Predictions
	}
	if m.vpa != nil {
		st := m.vpa.Stats()
		vpaL, vpaP = st.Lookups, st.Predictions
	}
	var rbs reuseStats
	if m.rb != nil {
		st := m.rb.Stats()
		rbs = reuseStats{st.Tests, st.Hits, st.AddrHits, st.ChainHits, st.Inserts, st.Evictions, st.StoreKills}
	}
	vals = append(vals,
		ipc,
		float64(m.robCount), float64(m.lsqCount), float64(m.fetchCount), float64(m.unresolved),
		float64(vptL), float64(vptP),
		float64(vpaL), float64(vpaP),
		float64(rbs.tests), float64(rbs.hits), float64(rbs.addrHits), float64(rbs.chainHits),
		float64(rbs.inserts), float64(rbs.evictions), float64(rbs.storeKills))
	o.series.Append(m.cycle, vals)
}

type reuseStats struct {
	tests, hits, addrHits, chainHits, inserts, evictions, storeKills uint64
}

// flushObs records the final sample and mirrors the end-of-run Stats into
// the registry as stats_* gauges so a Prometheus dump is self-contained.
// Called when the machine halts or aborts with an error.
func (m *Machine) flushObs() {
	o := m.obs
	if o == nil {
		return
	}
	m.sampleObs()
	names := StatsFieldNames()
	vals := StatsValues(m.Stats())
	for i, n := range names {
		o.reg.Gauge("stats." + n).Set(vals[i])
	}
}

// --- reflective Stats flattening ---
//
// The sampler's contract is that the final sample of a run carries
// exactly the run's cumulative core.Stats. Deriving the schema by
// reflection means a counter added to Stats can never silently go
// missing from the exported series.

var statsFieldNames = buildStatsFieldNames()

func buildStatsFieldNames() []string {
	t := reflect.TypeOf(Stats{})
	var names []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			names = append(names, snakeCase(f.Name))
		case reflect.Array:
			for j := 0; j < f.Type.Len(); j++ {
				names = append(names, fmt.Sprintf("%s_%d", snakeCase(f.Name), j+1))
			}
		default:
			panic("core: unsupported Stats field type " + f.Type.String())
		}
	}
	return names
}

// StatsFieldNames returns the snake_cased names of every Stats counter,
// in declaration order (array fields expand to one name per element,
// 1-indexed: exec_times_1..exec_times_4).
func StatsFieldNames() []string {
	return append([]string(nil), statsFieldNames...)
}

// StatsValues flattens s into one float64 per StatsFieldNames entry.
func StatsValues(s Stats) []float64 {
	v := reflect.ValueOf(s)
	out := make([]float64, 0, len(statsFieldNames))
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			out = append(out, float64(f.Uint()))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				out = append(out, float64(f.Index(j).Uint()))
			}
		}
	}
	return out
}

// snakeCase converts a Go field name like "VPResultPredicted" or
// "ICacheMisses" to "vp_result_predicted" / "i_cache_misses": an
// underscore goes before each upper-case letter that starts a new word
// (follows a lower-case letter, or is followed by one within an acronym).
func snakeCase(name string) string {
	var b strings.Builder
	for i, r := range name {
		lower := r | 0x20
		isUpper := r >= 'A' && r <= 'Z'
		if isUpper && i > 0 {
			prevLower := name[i-1] >= 'a' && name[i-1] <= 'z'
			nextLower := i+1 < len(name) && name[i+1] >= 'a' && name[i+1] <= 'z'
			if prevLower || nextLower {
				b.WriteByte('_')
			}
		}
		if isUpper {
			b.WriteRune(lower)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
