package core

import (
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/vp"
)

// decode dispatches up to DecodeWidth instructions from the fetch buffer
// into the ROB: rename, checkpoint allocation, the IR reuse test (in
// parallel with decode, per Figure 1(b)) and the VPT lookup (Figure 1(a)).
func (m *Machine) decode() error {
	// Loop-invariant structure sizes, hoisted: the compiler must otherwise
	// reload them through m.cfg after every call in the body.
	width, robSize, lsqSize := m.cfg.DecodeWidth, int32(m.cfg.ROBSize), int32(m.cfg.LSQSize)
	for n := 0; n < width && m.fetchCount > 0; n++ {
		f := &m.fetchQ[m.fetchHead]
		in := f.in
		if m.robCount == robSize {
			return nil
		}
		if m.serialize >= 0 {
			return nil // draining for an in-flight syscall
		}
		if in.Op.Serializes() && m.robCount > 0 {
			return nil // a serializing op dispatches only into an empty ROB
		}
		if in.Op.IsMem() && m.lsqCount == lsqSize {
			return nil
		}
		if f.needCkpt && m.unresolved >= m.cfg.MaxBranches {
			return nil
		}
		// Pop the ring slot. Its contents stay readable through this
		// iteration: fetch (the only writer) runs after decode, and a squash
		// just resets the ring cursors.
		m.fetchHead = wrap(m.fetchHead+1, int32(len(m.fetchQ)))
		m.fetchCount--

		idx := m.robIdx(m.robCount)
		m.robCount++
		e := &m.rob[idx]
		// Reset the recycled entry in place, keeping the consumers backing
		// array so steady-state dispatch allocates nothing. Zeroing and then
		// assigning writes the (large) entry once; a composite literal would
		// build it in a temporary and copy it a second time.
		cons := e.consumers[:0]
		*e = robEntry{}
		e.consumers = cons
		e.valid = true
		e.seq = m.seq
		e.pc = f.pc
		e.in = in
		e.decodeCycle = m.cycle
		e.traceIdx = -1
		e.traceSlot = -1
		e.lsq = -1
		e.srcProd = [2]int32{-1, -1}
		e.srcFrom = [2]reuse.Link{reuse.NoLink, reuse.NoLink}
		e.rbLink = reuse.NoLink
		e.reuseSrc = reuse.NoLink
		e.needExec = true
		m.seq++

		// Correct-path trace tracking.
		if m.traceCursor >= 0 && m.traceCursor < int64(m.oracle.Len()) &&
			m.oracle.PC[m.traceCursor] == f.pc {
			e.traceIdx = m.traceCursor
			m.traceCursor++
		} else {
			m.traceCursor = -2 // off the correct path until a squash repairs it
		}

		m.traceDispatch(e, f.fetchCycle)
		m.rename(idx, e)

		// Instruction-class specific setup.
		switch {
		case in.Op == isa.OpJ:
			e.needExec = false
		case in.Op == isa.OpJAL:
			e.needExec = false
			e.hasResult = true
			e.result = isa.Word(f.pc + 4)
		case in.Op == isa.OpJALR:
			// The link value is known at decode; execution resolves the target.
			e.hasResult = true
			e.result = isa.Word(f.pc + 4)
		case in.Op.Serializes():
			e.needExec = false
			m.serialize = idx
		case in.Op.IsMem():
			e.isLoad = in.Op.IsLoad()
			e.isStore = in.Op.IsStore()
			m.lsqAlloc(idx, e)
		}

		if in.Op.IsControl() {
			e.isCtl = true
			e.predTaken = f.predTaken
			e.predNextPC = f.predNext
			e.curPath = f.predNext
			e.histAtPred = f.histAtPred
			if in.Op == isa.OpJ || in.Op == isa.OpJAL {
				e.finalResolved = true // static target, cannot mispredict
				e.resolvedOnce = true
				e.resolveCycle = m.cycle
				e.actualTaken = true
				e.actualNext = in.JumpTarget()
			}
		}

		// Technique hooks, in parallel with decode (Figure 1). The active
		// technique decides what runs here — the reuse test, the VPT/VPA
		// lookups, and how the two arbitrate (see technique.go).
		m.tech.atDecode(m, idx, e)

		// Destination rename happens after the reuse test / prediction so
		// that an instruction never sources itself.
		if in.Dest != isa.NoReg {
			m.createVec[in.Dest] = idx
			m.createSeq[in.Dest] = e.seq
		}

		// Checkpoint (after the destination rename: restoring must preserve
		// the branch's own destination, e.g. JALR's link register).
		if f.needCkpt {
			cp := m.newCkpt()
			cp.createVec = m.createVec
			cp.createSeq = m.createSeq
			cp.histAtPred = f.histAtPred
			// Copy the predictor snapshot out of the fetch-ring slot: the
			// slot's RAS storage is recycled by the next fetch into it.
			cp.bp.Hist = f.bpState.Hist
			cp.bp.RASTop = f.bpState.RASTop
			cp.bp.RAS = append(cp.bp.RAS[:0], f.bpState.RAS...)
			e.checkpoint = cp
			m.unresolved++
		}

		// Anything that still needs an execution enters the issue queue now;
		// later wake events (broadcast/finalize) keep it current.
		m.enqueueIssue(idx, e)

		// Entries that are complete at decode finalize immediately; a reused
		// branch resolves here (zero resolution latency, §4.2.2) and may
		// squash, which empties the fetch queue.
		switch {
		case e.reused:
			m.traceEvent(e, func(ev *PipeEvent) { ev.Reused = true; ev.Done = m.cycle })
			if m.debugReuse != nil {
				m.debugReuse(e)
			}
			squashed := m.finalizeAtDecode(idx, e)
			if squashed {
				return nil
			}
		case !e.needExec && !e.executing:
			m.enqueueFinal(idx)
			m.drainFinalQ()
		}
	}
	return nil
}

// rename resolves both source operands against the create vector.
func (m *Machine) rename(idx int32, e *robEntry) {
	regs := e.srcRegs()
	for k := 0; k < 2; k++ {
		r := regs[k]
		if r == isa.NoReg {
			e.srcReady[k] = true
			e.srcFinal[k] = true
			continue
		}
		p := m.createVec[r]
		if p >= 0 && m.rob[p].valid && m.rob[p].seq == m.createSeq[r] {
			prod := &m.rob[p]
			e.srcProd[k] = p
			e.srcProdSeq[k] = prod.seq
			e.srcFrom[k] = prod.rbLink
			if prod.hasResult {
				e.srcReady[k] = true
				e.srcVal[k] = prod.result
				e.srcFinal[k] = prod.final
			}
			prod.consumers = append(prod.consumers, consRef{idx: idx, seq: e.seq, slot: uint8(k)})
		} else {
			e.srcReady[k] = true
			e.srcFinal[k] = true
			e.srcVal[k] = m.regs[r]
		}
	}
}

// tryReuse runs the reuse test (§4.1.2). Operands count as available only
// when their values are final — the reuse test is non-speculative.
func (m *Machine) tryReuse(idx int32, e *robEntry) {
	in := e.in
	if in.Op.Serializes() || in.Op == isa.OpJ || in.Op == isa.OpJAL || in.Op == isa.OpInvalid {
		return
	}
	var ops [2]reuse.Operand
	regs := e.srcRegs()
	for k := 0; k < 2; k++ {
		ops[k] = reuse.Operand{ReusedFrom: reuse.NoLink}
		if regs[k] == isa.NoReg {
			continue
		}
		ops[k].Ready = e.srcReady[k] && e.srcFinal[k]
		ops[k].Val = e.srcVal[k]
		if p := e.srcProd[k]; p >= 0 {
			prod := &m.rob[p]
			if prod.valid && prod.seq == e.srcProdSeq[k] && prod.reused {
				ops[k].ReusedFrom = prod.reuseSrc
			}
		}
	}
	res := m.rb.Test(e.pc, in, ops[0], ops[1])
	if res.Hit && e.isLoad && !m.loadReuseSafe(e, res.Addr) {
		// An older in-flight store may alias: reusing the value would be
		// speculative. Keep the address computation only.
		res.Hit = false
	}
	if res.WrongPathWork && (res.Hit || res.AddrHit) {
		m.stats.Recovered++ // aggregated again via rb stats; kept for clarity
	}

	if res.Hit {
		if m.obs != nil {
			m.obs.reuseHitEvent(m.cycle, e, uint64(res.Value), res.WrongPathWork)
		}
		if m.cfg.IR.LateValidation {
			// Figure 3 "late": behave like a correctly predicted value —
			// the result is available to dependents now, but the
			// instruction still executes and validates at execute.
			e.lateHit = true
			e.predicted = true
			e.predVal = res.Value
			e.hasResult = true
			e.result = res.Value
			return
		}
		e.reused = true
		e.needExec = false
		e.reuseSrc = res.Entry
		e.rbLink = res.Entry // consumers' dependence pointers name this entry
		e.hasResult = true
		e.result = res.Value
		if in.Op.IsMem() {
			e.addrKnown = true
			e.addr = res.Addr
			e.addrReused = true
			if e.lsq >= 0 {
				m.lsq[e.lsq].addrKnown = true
				m.lsq[e.lsq].addr = res.Addr
			}
		}
		if e.isCtl {
			e.actualTaken = res.Value != 0
			if in.Op.IsCondBranch() {
				if e.actualTaken {
					e.actualNext = in.BranchTarget(e.pc)
				} else {
					e.actualNext = e.pc + 4
				}
			} else { // indirect jump: the buffered result is the target
				e.actualNext = uint32(res.Value)
				e.actualTaken = true
				if in.Op == isa.OpJALR {
					e.result = isa.Word(e.pc + 4) // the register result is the link
				}
			}
		}
		return
	}
	if res.AddrHit && in.Op.IsMem() && !m.cfg.IR.LateValidation {
		if m.obs != nil {
			m.obs.reuseAddrHitEvent(m.cycle, e, res.Addr)
		}
		e.addrKnown = true
		e.addr = res.Addr
		e.addrReused = true
		if e.lsq >= 0 {
			m.lsq[e.lsq].addrKnown = true
			m.lsq[e.lsq].addr = res.Addr
		}
		if e.isStore {
			e.needExec = false // the agen is the only execution a store needs
		}
	}
}

// finalizeAtDecode completes a reused instruction at decode time. Returns
// true when a reused branch resolved to a different path and squashed (the
// fetch queue is then empty and decode must stop).
func (m *Machine) finalizeAtDecode(idx int32, e *robEntry) bool {
	m.fetchRedirected = false
	m.finalize(idx, e)
	m.drainFinalQ()
	return m.fetchRedirected
}

// tryPredict consults the VPT (and the address table) at decode, using the
// table's configured confidence threshold.
func (m *Machine) tryPredict(e *robEntry) {
	m.tryPredictAt(e, false, false)
}

// tryPredictConf is the confidence-arbitrated hybrid's prediction step: a
// value is only used at saturated confidence, and the address table is not
// consulted when the reuse test already supplied the address
// non-speculatively.
func (m *Machine) tryPredictConf(e *robEntry) {
	m.tryPredictAt(e, true, true)
}

func (m *Machine) tryPredictAt(e *robEntry, saturated, skipKnownAddr bool) {
	in := e.in
	minConf := m.cfg.VP.ResultTable.ConfThreshold
	if saturated {
		minConf = m.cfg.VP.ResultTable.ConfMax
	}
	// The stride schemes project along the stride by the number of older
	// in-flight instances of this pc (each loop iteration in the window
	// gets its own point); Magic, LVP and FCM ignore the count.
	inflight := 0
	if s := m.cfg.VP.Scheme; s == vp.Stride || s == vp.TwoDelta {
		m.forEachROB(func(_ int32, o *robEntry) bool {
			if o.pc == e.pc && o.seq < e.seq {
				inflight++
			}
			return true
		})
	}
	// Results: any register-writing, non-control, non-serializing op.
	if in.Dest != isa.NoReg && !in.Op.IsControl() && !in.Op.Serializes() {
		var oracleVal isa.Word
		have := false
		if e.traceIdx >= 0 {
			oracleVal = m.oracle.Result[e.traceIdx]
			have = true
		}
		if v, ok := m.vpt.PredictAt(e.pc, oracleVal, have, inflight, minConf); ok {
			m.traceEvent(e, func(ev *PipeEvent) { ev.Pred = true })
			e.predicted = true
			e.predVal = v
			e.hasResult = true
			e.result = v // speculative: consumers use it, finality pends
		}
	}
	// Addresses of memory operations.
	if m.vpa != nil && in.Op.IsMem() && !(skipKnownAddr && e.addrKnown) {
		aMin := m.cfg.VP.AddrTable.ConfThreshold
		if saturated {
			aMin = m.cfg.VP.AddrTable.ConfMax
		}
		var oracleAddr isa.Word
		have := false
		if e.traceIdx >= 0 {
			oracleAddr = isa.Word(m.oracle.Addr[e.traceIdx])
			have = true
		}
		if v, ok := m.vpa.PredictAt(e.pc, oracleAddr, have, inflight, aMin); ok {
			e.addrPred = true
			e.predAddrVal = uint32(v)
		}
	}
}

// lsqAlloc takes a load/store queue slot for a memory instruction.
func (m *Machine) lsqAlloc(idx int32, e *robEntry) {
	slot := wrap(m.lsqHead+m.lsqCount, int32(m.cfg.LSQSize))
	m.lsqCount++
	width := emu.LoadWidth(e.in.Op)
	if e.isStore {
		width = emu.StoreWidth(e.in.Op)
	}
	m.lsq[slot] = lsqEntry{
		valid:   true,
		rob:     idx,
		seq:     e.seq,
		isStore: e.isStore,
		width:   width,
	}
	e.lsq = slot
}
