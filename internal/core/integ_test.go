package core

import (
	"testing"
	"time"

	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

func TestKernelsOnTimingCore(t *testing.T) {
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{DefaultConfig(), IRChoice(false), VPChoice(vp.Magic, SB, ME, 0), VPChoice(vp.LVP, SB, ME, 1)} {
			start := time.Now()
			m, err := New(p, cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(0); err != nil {
				t.Fatalf("%s/%s: %v", name, cfg.Name(), err)
			}
			s := m.Stats()
			if m.Output() != w.Golden(1) {
				t.Errorf("%s/%s output mismatch", name, cfg.Name())
			}
			t.Logf("%-9s %-24s IPC=%.3f cyc=%8d bp=%.1f%% ret=%.1f%% reuse=%.1f%%/%.1f%% vp=%.1f%% cont=%.4f squash=%d in %v",
				name, cfg.Name(), s.IPC(), s.Cycles, s.BranchPredRate(), s.ReturnPredRate(),
				s.ReuseResultRate(), s.ReuseAddrRate(), func() float64 { p, _ := s.VPResultRates(); return p }(),
				s.Contention(), s.Squashes, time.Since(start).Round(time.Millisecond))
		}
	}
}
