package core

import (
	"strconv"

	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
)

// commit retires up to CommitWidth finalized instructions in order,
// updating architectural state, training the predictors, collecting the
// per-instruction statistics, and cross-checking every retired instruction
// against the functional oracle.
func (m *Machine) commit() error {
	width := m.cfg.CommitWidth
	for n := 0; n < width && m.robCount > 0 && !m.halted; n++ {
		idx := m.robHead
		e := &m.rob[idx]
		if !e.final || (e.isCtl && !e.finalResolved) {
			return nil
		}
		if e.isStore {
			// The store's memory write needs a cache port.
			if m.dcPortsUsed >= m.cfg.MemPorts {
				return nil
			}
			m.dcPortsUsed++
			m.dcache.Access(e.addr)
			emu.StoreValue(m.mem, e.in.Op, e.addr, e.srcVal[1])
			m.tech.onStoreCommit(m, e)
		}

		if err := m.checkOracle(e); err != nil {
			return err
		}

		// Architectural register state.
		if d := e.in.Dest; d != isa.NoReg {
			m.regs[d] = e.result
			if m.createVec[d] == idx && m.createSeq[d] == e.seq {
				m.createVec[d] = -1
			}
		}

		m.traceEvent(e, func(ev *PipeEvent) { ev.Commit = m.cycle })
		m.commitStats(e)
		m.trainPredictors(e)
		if m.debugCommit != nil {
			m.debugCommit(e)
		}

		if e.in.Op == isa.OpSYSCALL {
			m.doSyscall()
		}
		if e.in.Op == isa.OpBREAK {
			m.halted = true
		}
		if m.serialize == idx {
			m.serialize = -1
		}

		// Pop the ROB (and the LSQ for memory ops).
		if e.lsq >= 0 {
			m.lsq[e.lsq].valid = false
			if e.lsq == m.lsqHead {
				m.popLSQ()
			}
		}
		e.valid = false
		m.robHead = m.robIdx(1)
		m.robCount--

		m.commitCursor++
		m.stats.Committed++
		m.lastRetire = m.cycle
		m.itersAtRetire = m.activeIters
		if m.commitCursor == int64(m.oracle.Len()) {
			m.halted = true
		}
	}
	return nil
}

// popLSQ advances the LSQ head past freed slots.
func (m *Machine) popLSQ() {
	for m.lsqCount > 0 && !m.lsq[m.lsqHead].valid {
		m.lsqHead = wrap(m.lsqHead+1, int32(m.cfg.LSQSize))
		m.lsqCount--
	}
}

// checkOracle compares a retiring instruction against the functional trace.
// Any mismatch is a simulator bug, never a modeling choice.
func (m *Machine) checkOracle(e *robEntry) error {
	if e.traceIdx != m.commitCursor {
		return m.divergence(e, "commit order", e.traceIdx, m.commitCursor)
	}
	ti := e.traceIdx
	if e.pc != m.oracle.PC[ti] {
		return m.divergence(e, "pc", e.pc, m.oracle.PC[ti])
	}
	if e.in.Dest != isa.NoReg && e.result != m.oracle.Result[ti] {
		return m.divergence(e, "result", e.result, m.oracle.Result[ti])
	}
	if e.in.Op.IsMem() && e.addr != m.oracle.Addr[ti] {
		return m.divergence(e, "address", e.addr, m.oracle.Addr[ti])
	}
	if e.in.Op.IsCondBranch() && e.actualTaken != m.oracle.Taken[ti] {
		return m.divergence(e, "direction", e.actualTaken, m.oracle.Taken[ti])
	}
	return nil
}

// commitStats gathers the per-instruction counters behind the paper's
// tables.
func (m *Machine) commitStats(e *robEntry) {
	op := e.in.Op

	// Table 6: executions per instruction.
	bucket := e.execCount
	if bucket < 1 {
		bucket = 1
	}
	if bucket > 4 {
		bucket = 4
	}
	m.stats.ExecTimes[bucket-1]++

	if op.IsCondBranch() {
		m.stats.CondBranches++
		if e.predTaken != e.actualTaken {
			m.stats.CondMispredict++
		}
	}
	if op == isa.OpJR && e.in.Src1 == isa.RegRA {
		m.stats.Returns++
		if e.predNextPC == e.actualNext {
			m.stats.ReturnsCorrect++
		}
	}
	if op.IsCondBranch() || op.IsIndirect() {
		lat := e.resolveCycle - e.decodeCycle
		m.stats.BrResolveLatSum += lat
		m.stats.BrResolveLatN++
		if m.obs != nil {
			m.obs.hBrLat.Observe(float64(lat))
		}
	}
	if op.IsMem() {
		m.stats.MemOps++
		if e.addrReused {
			m.stats.ReusedAddrs++
		}
		if e.addrPred {
			m.stats.VPAddrPredicted++
			if e.predAddrVal == e.addr {
				m.stats.VPAddrCorrect++
			}
		}
	}
	if e.reused || e.lateHit {
		m.stats.ReusedResults++
	}
	if e.predicted && !e.lateHit {
		m.stats.VPResultPredicted++
		if e.predVal == e.result {
			m.stats.VPResultCorrect++
		}
	}
}

// trainPredictors updates the branch predictor and BTB with non-speculative
// outcomes, then hands the entry to the active technique to train its own
// tables (VPT/VPA for the value-predicting techniques).
func (m *Machine) trainPredictors(e *robEntry) {
	op := e.in.Op
	if op.IsCondBranch() {
		hist := e.histAtPred
		m.bp.UpdateDir(e.pc, hist, e.actualTaken)
	}
	if op.IsIndirect() {
		m.bp.UpdateBTB(e.pc, e.actualNext)
	}
	m.tech.atCommit(m, e)
}

// doSyscall applies a system call against committed state; mirrors the
// functional emulator's implementation exactly.
func (m *Machine) doSyscall() {
	code := uint32(m.regs[isa.RegV0])
	a0 := m.regs[isa.RegA0]
	switch code {
	case emu.SysPrintInt:
		m.output.WriteString(strconv.FormatInt(int64(int32(uint32(a0))), 10))
	case emu.SysPrintStr:
		addr := uint32(a0)
		for i := 0; i < 1<<16; i++ {
			b := m.mem.LoadByte(addr)
			if b == 0 {
				break
			}
			m.output.WriteByte(b)
			addr++
		}
	case emu.SysExit:
		m.exitCode = int(int32(uint32(a0)))
		m.halted = true
	case emu.SysPutChar:
		m.output.WriteByte(byte(a0))
	}
}
