package core

import (
	"fmt"
	"io"
	"strings"

	"github.com/vpir-sim/vpir/internal/isa"
)

// PipeEvent records the pipeline lifetime of one dynamic instruction; the
// timestamps are machine cycle numbers. A SimpleScalar-style "pipetrace"
// for seeing how VP and IR reshape the schedule.
type PipeEvent struct {
	Seq     uint64
	PC      uint32
	Disasm  string
	Fetch   uint64
	Decode  uint64
	Issue   uint64 // first issue (0 if never executed)
	Done    uint64 // last completion / reuse (== Decode for reused)
	Commit  uint64
	Reused  bool
	Pred    bool // value predicted
	Execs   int  // number of executions
	Squash  bool // discarded on a wrong path (never committed)
	TraceID int64
}

// PipeTracer collects PipeEvents. Attach before Run with Machine.Trace.
type PipeTracer struct {
	// Max bounds how many instructions are recorded (0 = unlimited —
	// beware, this is one record per dynamic instruction).
	Max int
	// Ring, together with Max > 0, keeps the *last* Max instructions
	// instead of the first Max: when the buffer fills, the oldest record
	// is overwritten, so arbitrarily long runs trace in bounded memory.
	// The default (Ring false) is the historical truncating behavior.
	Ring   bool
	Events []PipeEvent

	next      int    // ring write cursor (valid when wrapped)
	wrapped   bool   // the ring has overwritten at least one record
	overwrote uint64 // how many records the ring discarded
}

// Trace attaches a pipeline tracer to the machine. Must be called before
// Run.
func (m *Machine) Trace(t *PipeTracer) { m.tracer = t }

// Overwrote returns how many records the ring mode discarded.
func (t *PipeTracer) Overwrote() uint64 { return t.overwrote }

// Ordered returns the recorded events oldest-first, undoing the ring
// rotation. In truncating mode it is simply a copy of Events.
func (t *PipeTracer) Ordered() []PipeEvent {
	if !t.wrapped {
		return append([]PipeEvent(nil), t.Events...)
	}
	out := make([]PipeEvent, 0, len(t.Events))
	out = append(out, t.Events[t.next:]...)
	return append(out, t.Events[:t.next]...)
}

func (m *Machine) traceDispatch(e *robEntry, fetchCycle uint64) {
	t := m.tracer
	if t == nil {
		return
	}
	ev := PipeEvent{
		Seq:     e.seq,
		PC:      e.pc,
		Disasm:  isa.Disasm(e.in, e.pc),
		Fetch:   fetchCycle,
		Decode:  m.cycle,
		TraceID: e.traceIdx,
	}
	if t.Max > 0 && len(t.Events) >= t.Max {
		if !t.Ring {
			return
		}
		// Overwrite the oldest slot. A stale traceSlot held by an older
		// in-flight instruction is harmless: traceEvent rejects it by the
		// Seq mismatch.
		slot := t.next
		t.Events[slot] = ev
		e.traceSlot = int32(slot)
		t.next = (t.next + 1) % t.Max
		t.wrapped = true
		t.overwrote++
		return
	}
	e.traceSlot = int32(len(t.Events))
	t.Events = append(t.Events, ev)
	if t.Max > 0 {
		t.next = len(t.Events) % t.Max
	}
}

func (m *Machine) traceEvent(e *robEntry, update func(ev *PipeEvent)) {
	t := m.tracer
	if t == nil || e.traceSlot < 0 || int(e.traceSlot) >= len(t.Events) {
		return
	}
	ev := &t.Events[e.traceSlot]
	if ev.Seq != e.seq {
		return
	}
	update(ev)
}

// PipeEventJSON is the wire form of one PipeEvent, as served by the
// dashboard's /v1/trace endpoint: the same cycle timestamps, with the PC
// pre-rendered as a zero-padded hex string. Cycle fields keep their
// zero-means-never convention (Issue 0 = never executed, Commit 0 = never
// committed).
type PipeEventJSON struct {
	Seq    uint64 `json:"seq"`
	PC     string `json:"pc"`
	Disasm string `json:"disasm"`
	Fetch  uint64 `json:"fetch"`
	Decode uint64 `json:"decode"`
	Issue  uint64 `json:"issue,omitempty"`
	Done   uint64 `json:"done,omitempty"`
	Commit uint64 `json:"commit,omitempty"`
	Reused bool   `json:"reused,omitempty"`
	Pred   bool   `json:"pred,omitempty"`
	Execs  int    `json:"execs,omitempty"`
	Squash bool   `json:"squash,omitempty"`
}

// JSON renders the recorded window oldest-first in wire form (never nil,
// so it marshals as [] rather than null when empty).
func (t *PipeTracer) JSON() []PipeEventJSON {
	events := t.Ordered()
	out := make([]PipeEventJSON, 0, len(events))
	for _, ev := range events {
		out = append(out, PipeEventJSON{
			Seq:    ev.Seq,
			PC:     fmt.Sprintf("0x%08x", ev.PC),
			Disasm: ev.Disasm,
			Fetch:  ev.Fetch,
			Decode: ev.Decode,
			Issue:  ev.Issue,
			Done:   ev.Done,
			Commit: ev.Commit,
			Reused: ev.Reused,
			Pred:   ev.Pred,
			Execs:  ev.Execs,
			Squash: ev.Squash,
		})
	}
	return out
}

// Render writes a classic pipeline diagram: one row per instruction, one
// column per cycle, with stage letters F (in flight from fetch), D
// (decoded/waiting), E (executing), R (reused at decode), and C (commit).
// Rows for squashed instructions are marked with an x. The window is
// clamped to maxCycles columns starting at the first event.
func (t *PipeTracer) Render(w io.Writer, maxCycles int) {
	events := t.Ordered()
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	start := events[0].Fetch
	end := start
	for _, ev := range events {
		last := ev.Commit
		if last == 0 {
			last = ev.Done
		}
		if last == 0 {
			last = ev.Decode
		}
		if last > end {
			end = last
		}
	}
	if maxCycles > 0 && end-start+1 > uint64(maxCycles) {
		end = start + uint64(maxCycles) - 1
	}
	width := int(end - start + 1)
	fmt.Fprintf(w, "cycles %d..%d; F=fetched D=decoded E=executing R=reused C=commit x=squashed\n", start, end)
	for _, ev := range events {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		put := func(cyc uint64, ch byte) {
			if cyc >= start && cyc <= end {
				row[cyc-start] = ch
			}
		}
		span := func(from, to uint64, ch byte) {
			for c := from; c <= to && c <= end; c++ {
				put(c, ch)
			}
		}
		if ev.Decode > ev.Fetch {
			span(ev.Fetch, ev.Decode-1, 'F')
		}
		last := ev.Commit
		if last == 0 {
			last = ev.Done
		}
		if last >= ev.Decode {
			span(ev.Decode, last, 'D')
		}
		if ev.Issue > 0 && ev.Done >= ev.Issue {
			span(ev.Issue, ev.Done, 'E')
		}
		if ev.Reused {
			put(ev.Decode, 'R')
		}
		if ev.Commit > 0 {
			put(ev.Commit, 'C')
		}
		mark := " "
		if ev.Squash {
			mark = "x"
		}
		fmt.Fprintf(w, "%s %08x %-28s |%s|\n", mark, ev.PC, clip(ev.Disasm, 28), row)
	}
}

func clip(s string, n int) string {
	s = strings.ReplaceAll(s, "\t", " ")
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}
