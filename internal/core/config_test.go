package core

import (
	"reflect"
	"testing"
)

// perturbLeaves calls fn once per leaf field of base (recursing into nested
// structs). Each call sees base with exactly that one leaf changed (ints and
// uints +1, bools flipped); the leaf is restored before moving on.
func perturbLeaves(t *testing.T, base *Config, fn func(path string)) {
	t.Helper()
	var walk func(path string, v reflect.Value)
	walk = func(path string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(path+"."+v.Type().Field(i).Name, v.Field(i))
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			old := v.Int()
			v.SetInt(old + 1)
			fn(path)
			v.SetInt(old)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			old := v.Uint()
			v.SetUint(old + 1)
			fn(path)
			v.SetUint(old)
		case reflect.Bool:
			old := v.Bool()
			v.SetBool(!old)
			fn(path)
			v.SetBool(old)
		default:
			t.Fatalf("Config leaf %s has kind %v; teach perturbLeaves (and check Key) about it", path, v.Kind())
		}
	}
	walk("Config", reflect.ValueOf(base).Elem())
}

// TestConfigKeyCoversEveryField perturbs each leaf field of Config (ints +1,
// bools flipped, recursing through the nested cache/bpred/VP/IR structs) and
// asserts the cache key changes. This is the guard the harness relies on: if
// a future Config field is left out of Key, ablation sweeps varying only
// that field would silently alias cache entries.
func TestConfigKeyCoversEveryField(t *testing.T) {
	cfg := DefaultConfig()
	baseKey := cfg.Key()
	leaves := 0
	seen := map[string]string{}
	perturbLeaves(t, &cfg, func(path string) {
		leaves++
		k := cfg.Key()
		if k == baseKey {
			t.Errorf("Key() does not cover %s: perturbing it left the key unchanged", path)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("Key() collision: perturbing %s and %s produce the same key %q", path, prev, k)
		}
		seen[k] = path
	})
	if cfg.Key() != baseKey {
		t.Fatal("perturbLeaves failed to restore the config")
	}
	// Sanity-check the walker visited a plausible number of leaves (Config
	// currently has 30+; a broken walker visiting 0 or 2 must not pass).
	if leaves < 25 {
		t.Fatalf("perturbLeaves visited only %d leaves; walker is broken", leaves)
	}
	t.Logf("verified %d leaf fields contribute to Config.Key", leaves)
}

// TestConfigKeyDistinguishesConfigs spot-checks the satellite requirement
// directly: two configurations differing in exactly one field must never
// collide in the Runner cache — including fields that do not appear in the
// display Name, which table-size ablations share across distinct configs.
func TestConfigKeyDistinguishesConfigs(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.ROBSize = a.ROBSize * 2
	if a.Key() == b.Key() {
		t.Fatalf("configs differing only in ROBSize share key %q", a.Key())
	}
	if a.Name() != b.Name() {
		t.Fatalf("display names unexpectedly differ (%q vs %q); the aliasing hazard premise changed", a.Name(), b.Name())
	}

	c := IRChoice(false)
	d := IRChoice(true)
	if c.Key() == d.Key() {
		t.Fatalf("IR early and IR late share key %q", c.Key())
	}

	e := DefaultConfig()
	f := DefaultConfig()
	f.Bpred.HistoryBits++
	if e.Key() == f.Key() {
		t.Fatalf("configs differing only in Bpred.HistoryBits share key %q", e.Key())
	}
}
