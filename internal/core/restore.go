package core

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/bpred"
	"github.com/vpir-sim/vpir/internal/emu"
	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/mem"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/reuse"
	"github.com/vpir-sim/vpir/internal/vp"
)

// RestoreState is everything a sampling checkpoint restores onto a timing
// machine: the architectural state at an interval boundary (registers, PC,
// dirty memory pages) plus the functionally-warmed microarchitectural state
// accumulated during fast-forward. Any nil warm component is left in its
// cold post-Reset state, so a zero-warmup checkpoint restores to exactly
// the state New produces.
type RestoreState struct {
	PC   uint32
	Regs [isa.NumArchRegs]isa.Word
	// Pages are the dirty pages of the functional memory at the checkpoint.
	// Because LoadProgram writes the program image through the dirty-
	// tracking store path, these pages are a complete memory image: restore
	// is Reset + LoadProgram + ApplyPage over them.
	Pages []mem.PageImage

	Bpred  *bpred.Snapshot
	ICache *mem.CacheSnapshot
	DCache *mem.CacheSnapshot
	VPT    *vp.Snapshot
	VPA    *vp.Snapshot
	RB     *reuse.Snapshot
}

// ResetTo rewinds the machine onto a checkpoint: a Reset under cfg, but
// with the architectural state, memory image and warm predictor state taken
// from st and the correct-path oracle replaced by the interval's trace
// (typically re-collected functionally from the same checkpoint). The
// machine then simulates the interval in detail and halts when the oracle
// is exhausted, exactly as a full run halts at program end.
//
// The Reset determinism contract extends here: ResetTo with the same
// (cfg, st, oracle) produces bit-identical Stats on any machine built for
// the same program, no matter what it ran before.
func (m *Machine) ResetTo(cfg Config, st *RestoreState, oracle *emu.TraceLog) error {
	if oracle.Len() == 0 {
		return fmt.Errorf("core: empty interval oracle")
	}
	if err := m.Reset(cfg); err != nil {
		return err
	}
	m.oracle = oracle
	return m.applyRestore(st)
}

// NewRestored builds a machine directly on a checkpoint, skipping New's
// functional pre-run: the caller supplies the interval oracle.
func NewRestored(p *prog.Program, cfg Config, st *RestoreState, oracle *emu.TraceLog) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if oracle.Len() == 0 {
		return nil, fmt.Errorf("core: empty interval oracle")
	}
	m := &Machine{
		cfg:     cfg,
		prog:    p,
		decoded: p.Decoded(),
		mem:     mem.NewMemory(),
		oracle:  oracle,
	}
	m.buildStructures(cfg)
	m.resetRunState()
	if err := m.applyRestore(st); err != nil {
		return nil, err
	}
	return m, nil
}

// applyRestore overlays a checkpoint on a machine that resetRunState has
// just rewound. Architectural state is replaced wholesale; warm component
// snapshots are restored where the configuration instantiates the
// component and skipped where it does not (a base-config interval ignores
// a checkpoint's RB state rather than failing).
func (m *Machine) applyRestore(st *RestoreState) error {
	m.regs = st.Regs
	m.fetchPC = st.PC
	for i := range st.Pages {
		m.mem.ApplyPage(&st.Pages[i])
	}
	if st.Bpred != nil {
		if err := m.bp.RestoreSnapshot(st.Bpred); err != nil {
			return err
		}
	}
	if st.ICache != nil {
		if err := m.icache.RestoreSnapshot(st.ICache); err != nil {
			return err
		}
	}
	if st.DCache != nil {
		if err := m.dcache.RestoreSnapshot(st.DCache); err != nil {
			return err
		}
	}
	if st.VPT != nil && m.vpt != nil {
		if err := m.vpt.RestoreSnapshot(st.VPT); err != nil {
			return err
		}
	}
	if st.VPA != nil && m.vpa != nil {
		if err := m.vpa.RestoreSnapshot(st.VPA); err != nil {
			return err
		}
	}
	if st.RB != nil && m.rb != nil {
		if err := m.rb.RestoreSnapshot(st.RB); err != nil {
			return err
		}
	}
	return nil
}
