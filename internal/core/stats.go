package core

// Stats aggregates everything the paper's tables and figures need from one
// simulation run. Rates are computed by the accessor methods so the raw
// counters stay inspectable.
type Stats struct {
	Cycles    uint64
	Committed uint64 // retired instructions
	Fetched   uint64
	Executed  uint64 // executions started (re-executions count again)

	// Branch prediction (committed conditional branches).
	CondBranches   uint64
	CondMispredict uint64 // final direction differed from the fetch prediction
	Returns        uint64
	ReturnsCorrect uint64

	// Squashes.
	Squashes         uint64 // control-flow squash events (any redirect)
	SpuriousSquashes uint64 // redirects toward a direction that was not the final one
	ExecSquashed     uint64 // executed instructions discarded by squashes

	// Branch resolution latency (committed cond branches + indirect jumps):
	// cycles from decode to final resolution.
	BrResolveLatSum uint64
	BrResolveLatN   uint64

	// Resource contention (§4.2.3): requests for FUs / cache ports / result
	// buses by ready instructions, and the denials among them.
	ResourceRequests uint64
	ResourceDenials  uint64

	// Executions per committed instruction (Table 6): index i counts
	// instructions executed exactly i+1 times; index 3 is "4 or more".
	ExecTimes [4]uint64

	// Value prediction (committed instructions).
	VPResultPredicted uint64 // had a confident result prediction
	VPResultCorrect   uint64
	VPAddrPredicted   uint64 // memory ops with a confident address prediction
	VPAddrCorrect     uint64

	// Instruction reuse (committed instructions).
	ReusedResults uint64 // full reuse
	ReusedAddrs   uint64 // memory ops whose effective address came from the RB
	MemOps        uint64 // committed loads+stores
	Recovered     uint64 // reuse hits on squashed (wrong-path) work

	// Memory system.
	ICacheAccesses uint64
	ICacheMisses   uint64
	DCacheAccesses uint64
	DCacheMisses   uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// BranchPredRate returns the direction prediction accuracy for committed
// conditional branches, in percent.
func (s Stats) BranchPredRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return 100 * float64(s.CondBranches-s.CondMispredict) / float64(s.CondBranches)
}

// ReturnPredRate returns the return-target prediction accuracy in percent.
func (s Stats) ReturnPredRate() float64 {
	if s.Returns == 0 {
		return 0
	}
	return 100 * float64(s.ReturnsCorrect) / float64(s.Returns)
}

// Contention returns denials per request (the §4.2.3 metric).
func (s Stats) Contention() float64 {
	if s.ResourceRequests == 0 {
		return 0
	}
	return float64(s.ResourceDenials) / float64(s.ResourceRequests)
}

// MeanBrResolveLat returns the average branch resolution latency in cycles.
func (s Stats) MeanBrResolveLat() float64 {
	if s.BrResolveLatN == 0 {
		return 0
	}
	return float64(s.BrResolveLatSum) / float64(s.BrResolveLatN)
}

// ReuseResultRate returns committed fully-reused instructions as a percent
// of all committed instructions.
func (s Stats) ReuseResultRate() float64 {
	if s.Committed == 0 {
		return 0
	}
	return 100 * float64(s.ReusedResults) / float64(s.Committed)
}

// ReuseAddrRate returns committed address-reused memory ops as a percent of
// committed memory ops.
func (s Stats) ReuseAddrRate() float64 {
	if s.MemOps == 0 {
		return 0
	}
	return 100 * float64(s.ReusedAddrs) / float64(s.MemOps)
}

// VPResultRates returns (correct%, mispredict%) over committed instructions.
func (s Stats) VPResultRates() (pred, mispred float64) {
	if s.Committed == 0 {
		return 0, 0
	}
	c := float64(s.Committed)
	return 100 * float64(s.VPResultCorrect) / c,
		100 * float64(s.VPResultPredicted-s.VPResultCorrect) / c
}

// VPAddrRates returns (correct%, mispredict%) over committed memory ops.
func (s Stats) VPAddrRates() (pred, mispred float64) {
	if s.MemOps == 0 {
		return 0, 0
	}
	m := float64(s.MemOps)
	return 100 * float64(s.VPAddrCorrect) / m,
		100 * float64(s.VPAddrPredicted-s.VPAddrCorrect) / m
}

// ExecSquashedPct returns executed-and-squashed instructions as a percent
// of all executions (Table 5, column 2).
func (s Stats) ExecSquashedPct() float64 {
	if s.Executed == 0 {
		return 0
	}
	return 100 * float64(s.ExecSquashed) / float64(s.Executed)
}

// RecoveredPct returns squashed executions later recovered through the RB
// as a percent of executed-and-squashed instructions (Table 5, column 3).
func (s Stats) RecoveredPct() float64 {
	if s.ExecSquashed == 0 {
		return 0
	}
	return 100 * float64(s.Recovered) / float64(s.ExecSquashed)
}

// ExecTimesPct returns the Table 6 distribution: percent of committed
// instructions executed exactly 1, 2, and 3-or-more times.
func (s Stats) ExecTimesPct() [3]float64 {
	var out [3]float64
	if s.Committed == 0 {
		return out
	}
	c := float64(s.Committed)
	out[0] = 100 * float64(s.ExecTimes[0]) / c
	out[1] = 100 * float64(s.ExecTimes[1]) / c
	out[2] = 100 * float64(s.ExecTimes[2]+s.ExecTimes[3]) / c
	return out
}
