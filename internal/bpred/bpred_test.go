package bpred

import (
	"testing"
	"testing/quick"
)

func TestCountersLearnAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x400100)
	// Train with a stable history.
	for i := 0; i < 4; i++ {
		p.UpdateDir(pc, p.Hist(), true)
	}
	if !p.PredictDir(pc) {
		t.Error("predictor did not learn always-taken")
	}
	for i := 0; i < 8; i++ {
		p.UpdateDir(pc, p.Hist(), false)
	}
	if p.PredictDir(pc) {
		t.Error("predictor did not unlearn")
	}
}

func TestGshareUsesHistory(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x400200)
	// Alternating pattern TNTN... with history should become predictable:
	// train outcome = !lastOutcome keyed by history.
	correct := 0
	last := false
	for i := 0; i < 200; i++ {
		want := !last
		got := p.PredictDir(pc)
		if got == want && i > 50 {
			correct++
		}
		p.UpdateDir(pc, p.Hist(), want)
		p.SpecUpdateHist(want)
		last = want
	}
	if correct < 140 {
		t.Errorf("gshare learned alternating pattern on only %d/149 tries", correct)
	}
}

func TestHistoryWidth(t *testing.T) {
	p := New(Config{HistoryBits: 10, TableEntries: 1 << 14, BTBSets: 16, RASDepth: 4})
	for i := 0; i < 100; i++ {
		p.SpecUpdateHist(true)
	}
	if p.Hist() != 1<<10-1 {
		t.Errorf("history = %#x, want all ones in 10 bits", p.Hist())
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.LookupBTB(0x400300); ok {
		t.Error("cold BTB must miss")
	}
	p.UpdateBTB(0x400300, 0x400800)
	if tgt, ok := p.LookupBTB(0x400300); !ok || tgt != 0x400800 {
		t.Errorf("BTB = %#x, %v", tgt, ok)
	}
	// Update with a new target.
	p.UpdateBTB(0x400300, 0x400900)
	if tgt, _ := p.LookupBTB(0x400300); tgt != 0x400900 {
		t.Errorf("BTB not refreshed: %#x", tgt)
	}
}

func TestBTBLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBSets = 1 // all entries collide
	p := New(cfg)
	p.UpdateBTB(0x100, 0x1)
	p.UpdateBTB(0x200, 0x2)
	p.UpdateBTB(0x100, 0x1) // refresh 0x100
	p.UpdateBTB(0x300, 0x3) // evicts 0x200
	if _, ok := p.LookupBTB(0x100); !ok {
		t.Error("0x100 evicted despite being MRU")
	}
	if _, ok := p.LookupBTB(0x200); ok {
		t.Error("0x200 should be evicted")
	}
}

func TestRASLIFO(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	if got := p.PopRAS(); got != 0x200 {
		t.Errorf("pop1 = %#x", got)
	}
	if got := p.PopRAS(); got != 0x100 {
		t.Errorf("pop2 = %#x", got)
	}
	if got := p.PopRAS(); got != 0 {
		t.Errorf("empty pop = %#x, want 0", got)
	}
}

func TestRASWrap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASDepth = 2
	p := New(cfg)
	p.PushRAS(1)
	p.PushRAS(2)
	p.PushRAS(3) // overwrites 1
	if got := p.PopRAS(); got != 3 {
		t.Errorf("pop = %d", got)
	}
	if got := p.PopRAS(); got != 2 {
		t.Errorf("pop = %d", got)
	}
}

func TestSaveRestore(t *testing.T) {
	p := New(DefaultConfig())
	p.SpecUpdateHist(true)
	p.PushRAS(0xAAA)
	snap := p.Save()
	p.SpecUpdateHist(true)
	p.SpecUpdateHist(false)
	p.PushRAS(0xBBB)
	p.PopRAS()
	p.PopRAS()
	p.Restore(snap)
	if p.Hist() != snap.Hist {
		t.Errorf("history not restored: %#x", p.Hist())
	}
	if got := p.PopRAS(); got != 0xAAA {
		t.Errorf("RAS not restored: %#x", got)
	}
}

func TestSaveIsDeepCopy(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRAS(1)
	snap := p.Save()
	p.PopRAS()
	p.PushRAS(99) // overwrite the slot
	p.Restore(snap)
	if got := p.PopRAS(); got != 1 {
		t.Errorf("snapshot aliased live RAS: got %d", got)
	}
}

func TestReset(t *testing.T) {
	p := New(DefaultConfig())
	p.SpecUpdateHist(true)
	p.PushRAS(5)
	p.UpdateBTB(0x100, 0x200)
	p.Reset()
	if p.Hist() != 0 {
		t.Error("history survives reset")
	}
	if p.PopRAS() != 0 {
		t.Error("RAS survives reset")
	}
	if _, ok := p.LookupBTB(0x100); ok {
		t.Error("BTB survives reset")
	}
}

// Property: history register never exceeds its mask, counters stay in 0..3.
func TestInvariantsProperty(t *testing.T) {
	p := New(DefaultConfig())
	f := func(pc uint32, taken bool) bool {
		p.UpdateDir(pc, p.Hist(), taken)
		p.SpecUpdateHist(taken)
		if p.Hist() > 1<<10-1 {
			return false
		}
		idx := ((pc >> 2) ^ (p.Hist() << 4)) & uint32(len(p.counters)-1)
		return p.counters[idx] <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
