// Package bpred implements the branch prediction hardware of the base
// machine in Table 1 of the paper: a gshare direction predictor with a
// 10-bit global history register and a 16 K-entry 2-bit counter table, a
// branch target buffer for indirect jumps, and a return address stack.
//
// The direction counters and the BTB are updated non-speculatively (at
// commit); the global history register and the RAS are updated
// speculatively at fetch and repaired from per-branch checkpoints on a
// squash, which is what the State snapshot type is for.
package bpred

import (
	"fmt"
	"math/rand"
)

// Config sizes the predictor. DefaultConfig matches Table 1.
type Config struct {
	HistoryBits  int // global history register width
	TableEntries int // 2-bit counter table entries (power of two)
	BTBSets      int // BTB sets (2-way)
	RASDepth     int // return address stack depth
}

// DefaultConfig returns the Table 1 predictor: gshare, 10-bit history,
// 16 K counters.
func DefaultConfig() Config {
	return Config{HistoryBits: 10, TableEntries: 16 << 10, BTBSets: 512, RASDepth: 16}
}

// State is a checkpoint of the speculative predictor state (history register
// and RAS). The timing core saves one per in-flight branch and restores on
// misprediction.
type State struct {
	Hist   uint32
	RASTop int
	RAS    []uint32 // copy of the stack contents
}

type btbEntry struct {
	tag    uint32
	target uint32
	valid  bool
	tick   uint64
}

// Predictor is the complete front-end prediction unit.
type Predictor struct {
	cfg       Config
	histMask  uint32
	tableMask uint32
	hist      uint32
	counters  []uint8 // 2-bit saturating

	btb     [][2]btbEntry
	btbMask uint32
	tick    uint64

	ras    []uint32
	rasTop int // index of next free slot
}

// New builds a predictor. Counters start weakly not-taken (1).
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:       cfg,
		histMask:  1<<uint(cfg.HistoryBits) - 1,
		tableMask: uint32(cfg.TableEntries - 1),
		counters:  make([]uint8, cfg.TableEntries),
		btb:       make([][2]btbEntry, cfg.BTBSets),
		btbMask:   uint32(cfg.BTBSets - 1),
		ras:       make([]uint32, cfg.RASDepth),
	}
	for i := range p.counters {
		p.counters[i] = 1
	}
	return p
}

func (p *Predictor) index(pc uint32) uint32 {
	return ((pc >> 2) ^ (p.hist << 4)) & p.tableMask
}

// PredictDir returns the predicted direction for the conditional branch at
// pc using the current speculative history.
func (p *Predictor) PredictDir(pc uint32) bool {
	return p.counters[p.index(pc)] >= 2
}

// SpecUpdateHist shifts a (possibly speculative) branch outcome into the
// global history register; called at fetch for every conditional branch.
func (p *Predictor) SpecUpdateHist(taken bool) {
	bit := uint32(0)
	if taken {
		bit = 1
	}
	p.hist = (p.hist<<1 | bit) & p.histMask
}

// UpdateDir trains the counter table with the actual outcome. The index is
// computed with the history the branch saw at prediction time, which the
// caller passes back via the checkpoint's Hist value.
func (p *Predictor) UpdateDir(pc uint32, histAtPredict uint32, taken bool) {
	idx := ((pc >> 2) ^ (histAtPredict << 4)) & p.tableMask
	c := p.counters[idx]
	if taken {
		if c < 3 {
			p.counters[idx] = c + 1
		}
	} else if c > 0 {
		p.counters[idx] = c - 1
	}
}

// Hist returns the current speculative global history register.
func (p *Predictor) Hist() uint32 { return p.hist }

// LookupBTB returns the predicted target for the indirect jump at pc.
func (p *Predictor) LookupBTB(pc uint32) (uint32, bool) {
	set := &p.btb[(pc>>2)&p.btbMask]
	for w := range set {
		if set[w].valid && set[w].tag == pc {
			return set[w].target, true
		}
	}
	return 0, false
}

// UpdateBTB records the actual target of the indirect jump at pc.
func (p *Predictor) UpdateBTB(pc, target uint32) {
	p.tick++
	set := &p.btb[(pc>>2)&p.btbMask]
	// Hit: refresh.
	for w := range set {
		if set[w].valid && set[w].tag == pc {
			set[w].target = target
			set[w].tick = p.tick
			return
		}
	}
	// Miss: fill LRU way.
	victim := 0
	if set[1].tick < set[0].tick {
		victim = 1
	}
	if !set[0].valid {
		victim = 0
	} else if !set[1].valid {
		victim = 1
	}
	set[victim] = btbEntry{tag: pc, target: target, valid: true, tick: p.tick}
}

// PushRAS pushes a return address at a call. The stack wraps (oldest entry
// overwritten) like real hardware.
func (p *Predictor) PushRAS(addr uint32) {
	p.ras[p.rasTop%len(p.ras)] = addr
	p.rasTop++
}

// PopRAS pops the predicted return address. An empty stack predicts 0,
// which the core treats as "no prediction".
func (p *Predictor) PopRAS() uint32 {
	if p.rasTop == 0 {
		return 0
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)]
}

// Save checkpoints the speculative state (history + RAS).
func (p *Predictor) Save() State {
	s := State{Hist: p.hist, RASTop: p.rasTop, RAS: make([]uint32, len(p.ras))}
	copy(s.RAS, p.ras)
	return s
}

// SaveInto checkpoints the speculative state into s, reusing s.RAS's
// backing array when it is large enough. The timing core calls this once
// per checkpointed branch at fetch, so avoiding the per-call allocation of
// Save matters for simulator throughput.
func (p *Predictor) SaveInto(s *State) {
	s.Hist = p.hist
	s.RASTop = p.rasTop
	if cap(s.RAS) < len(p.ras) {
		s.RAS = make([]uint32, len(p.ras))
	}
	s.RAS = s.RAS[:len(p.ras)]
	copy(s.RAS, p.ras)
}

// Restore rewinds the speculative state to a checkpoint.
func (p *Predictor) Restore(s State) {
	p.hist = s.Hist
	p.rasTop = s.RASTop
	copy(p.ras, s.RAS)
}

// CorruptCounter perturbs one direction counter chosen by r; for
// fault-injection campaigns. Direction predictions are always verified by
// branch resolution, so this is performance-only by construction.
func (p *Predictor) CorruptCounter(r *rand.Rand) string {
	idx := r.Intn(len(p.counters))
	old := p.counters[idx]
	p.counters[idx] = uint8(3 - old) // guaranteed state change for any 0..3
	return fmt.Sprintf("bpred ctr[%d] %d->%d", idx, old, p.counters[idx])
}

// CorruptHistory flips bits of the speculative global history register.
func (p *Predictor) CorruptHistory(r *rand.Rand) string {
	mask := (r.Uint32() | 1) & p.histMask
	p.hist ^= mask
	return fmt.Sprintf("bpred hist^=%#x", mask)
}

// CorruptBTB redirects the target of one valid BTB entry chosen by r; ok is
// false when the BTB is still empty. A wrong indirect target only misleads
// fetch until the jump resolves and squashes, so this too is timing-only.
func (p *Predictor) CorruptBTB(r *rand.Rand) (desc string, ok bool) {
	victimSet, victimWay := -1, 0
	seen := 0
	for s := range p.btb {
		for w := range p.btb[s] {
			if !p.btb[s][w].valid {
				continue
			}
			seen++
			if r.Intn(seen) == 0 {
				victimSet, victimWay = s, w
			}
		}
	}
	if victimSet < 0 {
		return "", false
	}
	e := &p.btb[victimSet][victimWay]
	mask := (r.Uint32() | 1) &^ 3 // keep the target word-aligned
	if mask == 0 {
		mask = 4
	}
	e.target ^= mask
	return fmt.Sprintf("btb[%d,%d] pc=%#x target^=%#x", victimSet, victimWay, e.tag, mask), true
}

// Snapshot is the complete warm state of a Predictor, with the BTB
// flattened set-major (way 0 then way 1 of set 0, then set 1, ...) for a
// stable serialized form. Functional warming (internal/sample) captures one
// per checkpoint and restores it onto a pooled machine's predictor.
type Snapshot struct {
	Cfg      Config
	Hist     uint32
	Counters []uint8
	BTBTag   []uint32
	BTBTgt   []uint32
	BTBValid []bool
	BTBTick  []uint64
	Tick     uint64
	RAS      []uint32
	RASTop   int
}

// Snapshot captures the predictor's complete state.
func (p *Predictor) Snapshot() *Snapshot {
	s := &Snapshot{
		Cfg:      p.cfg,
		Hist:     p.hist,
		Counters: append([]uint8(nil), p.counters...),
		BTBTag:   make([]uint32, 0, 2*len(p.btb)),
		BTBTgt:   make([]uint32, 0, 2*len(p.btb)),
		BTBValid: make([]bool, 0, 2*len(p.btb)),
		BTBTick:  make([]uint64, 0, 2*len(p.btb)),
		Tick:     p.tick,
		RAS:      append([]uint32(nil), p.ras...),
		RASTop:   p.rasTop,
	}
	for i := range p.btb {
		for w := 0; w < 2; w++ {
			e := &p.btb[i][w]
			s.BTBTag = append(s.BTBTag, e.tag)
			s.BTBTgt = append(s.BTBTgt, e.target)
			s.BTBValid = append(s.BTBValid, e.valid)
			s.BTBTick = append(s.BTBTick, e.tick)
		}
	}
	return s
}

// RestoreSnapshot rewinds the predictor to a captured state. The snapshot's
// geometry must match the predictor's.
func (p *Predictor) RestoreSnapshot(s *Snapshot) error {
	if s.Cfg != p.cfg {
		return fmt.Errorf("bpred: snapshot config %+v does not match predictor %+v", s.Cfg, p.cfg)
	}
	if len(s.Counters) != len(p.counters) || len(s.BTBTag) != 2*len(p.btb) || len(s.RAS) != len(p.ras) {
		return fmt.Errorf("bpred: snapshot geometry mismatch")
	}
	p.hist = s.Hist
	copy(p.counters, s.Counters)
	for i := range p.btb {
		for w := 0; w < 2; w++ {
			k := 2*i + w
			p.btb[i][w] = btbEntry{
				tag:    s.BTBTag[k],
				target: s.BTBTgt[k],
				valid:  s.BTBValid[k],
				tick:   s.BTBTick[k],
			}
		}
	}
	p.tick = s.Tick
	copy(p.ras, s.RAS)
	p.rasTop = s.RASTop
	return nil
}

// Reset clears all predictor state.
func (p *Predictor) Reset() {
	p.hist = 0
	p.rasTop = 0
	p.tick = 0
	for i := range p.counters {
		p.counters[i] = 1
	}
	for i := range p.btb {
		p.btb[i] = [2]btbEntry{}
	}
	for i := range p.ras {
		p.ras[i] = 0
	}
}
