package harness

import (
	"strings"
	"testing"

	"github.com/vpir-sim/vpir/internal/core"
)

// fastRunner caps runs so the whole experiment suite is testable quickly.
func fastRunner() *Runner {
	r := NewRunner()
	r.MaxInsts = 60_000
	return r
}

func TestRunCaching(t *testing.T) {
	r := fastRunner()
	s1, err := r.Run("compress", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Run("compress", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("cached run differs")
	}
	if len(r.cache) != 1 {
		t.Errorf("cache size = %d", len(r.cache))
	}
}

func TestRunUnknownBench(t *testing.T) {
	r := fastRunner()
	if _, err := r.Run("nope", core.DefaultConfig()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ext-arb", "ext-hybrid", "ext-instances", "ext-rbsize", "ext-stride", "ext-window"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, got[i].ID, id)
		}
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("table3"); err != nil {
		t.Error(err)
	}
	if _, err := Find("table99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsRun executes every experiment end to end on truncated
// workloads and sanity-checks the rendered tables.
func TestAllExperimentsRun(t *testing.T) {
	r := fastRunner()
	for _, e := range Experiments() {
		tables, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", e.ID)
		}
		for _, tab := range tables {
			out := tab.String()
			if !strings.Contains(out, tab.ID) {
				t.Errorf("%s: render missing ID", e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s: empty table", e.ID)
			}
			// Every row must have as many cells as columns.
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s: row %v vs %d columns", tab.ID, row, len(tab.Columns))
				}
			}
		}
	}
}

// TestSpeedupTableHasHM ensures the harmonic mean row is present.
func TestSpeedupTableHasHM(t *testing.T) {
	r := fastRunner()
	tabs, err := fig3(r)
	if err != nil {
		t.Fatal(err)
	}
	last := tabs[0].Rows[len(tabs[0].Rows)-1]
	if last[0] != "HM" {
		t.Errorf("last row = %v, want HM", last)
	}
}
