package harness

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"github.com/vpir-sim/vpir/internal/core"
)

// ObsExport configures per-run observability export for a campaign: when a
// Runner carries one, every simulation it performs runs with a
// core.Observer attached and writes its sampled time series (and
// optionally its event log and a Prometheus snapshot) into Dir. File names
// are `<bench>__<sanitized config name>__<fnv of the full config key>` so
// ablation sweeps that reuse a display name cannot collide.
type ObsExport struct {
	// Dir is the output directory; it is created if missing.
	Dir string
	// Interval is the sampling period in cycles (0 = core default).
	Interval uint64
	// EventCap bounds the event ring (0 = core default).
	EventCap int
	// CSV additionally writes the series as `.series.csv`.
	CSV bool
	// Events additionally writes the event ring as `.events.jsonl`.
	Events bool
	// Prometheus additionally writes a final `.prom` metrics snapshot.
	Prometheus bool
}

// runName builds the per-run file stem.
func (x *ObsExport) runName(bench string, cfg core.Config) string {
	h := fnv.New32a()
	h.Write([]byte(cfg.Key()))
	return fmt.Sprintf("%s__%s__%08x", sanitize(bench), sanitize(cfg.Name()), h.Sum32())
}

// sanitize maps a config display name to a filesystem-safe token.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// export writes the observer's data for one finished run.
func (x *ObsExport) export(bench string, cfg core.Config, o *core.Observer) error {
	if err := os.MkdirAll(x.Dir, 0o755); err != nil {
		return fmt.Errorf("harness: obs export: %w", err)
	}
	stem := filepath.Join(x.Dir, x.runName(bench, cfg))
	write := func(suffix string, fn func(*os.File) error) error {
		f, err := os.Create(stem + suffix)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(".series.jsonl", func(f *os.File) error { return o.Series().WriteJSONL(f) }); err != nil {
		return fmt.Errorf("harness: obs export %s: %w", bench, err)
	}
	if x.CSV {
		if err := write(".series.csv", func(f *os.File) error { return o.Series().WriteCSV(f) }); err != nil {
			return fmt.Errorf("harness: obs export %s: %w", bench, err)
		}
	}
	if x.Events {
		if err := write(".events.jsonl", func(f *os.File) error { return o.Events().WriteJSONL(f) }); err != nil {
			return fmt.Errorf("harness: obs export %s: %w", bench, err)
		}
	}
	if x.Prometheus {
		if err := write(".prom", func(f *os.File) error { return o.Registry().WritePrometheus(f) }); err != nil {
			return fmt.Errorf("harness: obs export %s: %w", bench, err)
		}
	}
	return nil
}
