// Package harness defines and runs the reproduction experiments: one
// Experiment per table and figure in the paper's evaluation section. A
// shared Runner caches simulation results, so regenerating every table and
// figure performs each (benchmark, configuration) simulation exactly once.
package harness

import (
	"fmt"
	"sort"
	"sync"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/redundancy"
	"github.com/vpir-sim/vpir/internal/stats"
	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Runner executes and caches simulations.
type Runner struct {
	// Scale multiplies the workload sizes (1 = the standard runs).
	Scale int
	// MaxInsts caps the per-benchmark dynamic instruction count
	// (0 = run each kernel to completion).
	MaxInsts uint64
	// Parallel runs benchmarks concurrently (per experiment).
	Parallel bool

	mu    sync.Mutex
	cache map[string]core.Stats
	red   map[string]*redundancy.Result
}

// NewRunner builds a Runner with the standard scale.
func NewRunner() *Runner {
	return &Runner{
		Scale:    1,
		Parallel: true,
		cache:    make(map[string]core.Stats),
		red:      make(map[string]*redundancy.Result),
	}
}

// Run simulates one benchmark under one configuration (cached). The cache
// key covers the entire configuration, not just its display name — ablation
// sweeps vary structure sizes under the same name.
func (r *Runner) Run(bench string, cfg core.Config) (core.Stats, error) {
	key := fmt.Sprintf("%s/%+v/%d/%d", bench, cfg, r.Scale, r.MaxInsts)
	r.mu.Lock()
	if s, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()

	w, err := workload.Get(bench)
	if err != nil {
		return core.Stats{}, err
	}
	p, err := w.Load(r.Scale)
	if err != nil {
		return core.Stats{}, err
	}
	m, err := core.New(p, cfg, r.MaxInsts)
	if err != nil {
		return core.Stats{}, err
	}
	if err := m.Run(0); err != nil {
		return core.Stats{}, err
	}
	s := m.Stats()
	r.mu.Lock()
	r.cache[key] = s
	r.mu.Unlock()
	return s, nil
}

// RunAll simulates every benchmark under cfg, in the paper's order,
// optionally in parallel.
func (r *Runner) RunAll(cfg core.Config) (map[string]core.Stats, error) {
	out := make(map[string]core.Stats, len(workload.Names()))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(workload.Names()))
	for _, bench := range workload.Names() {
		run := func(bench string) {
			s, err := r.Run(bench, cfg)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", bench, err)
				return
			}
			mu.Lock()
			out[bench] = s
			mu.Unlock()
		}
		if r.Parallel {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				run(b)
			}(bench)
		} else {
			run(bench)
		}
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	return out, nil
}

// Redundancy runs the §4.3 limit study for one benchmark (cached).
func (r *Runner) Redundancy(bench string) (*redundancy.Result, error) {
	key := fmt.Sprintf("%s/%d/%d", bench, r.Scale, r.MaxInsts)
	r.mu.Lock()
	if res, ok := r.red[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	w, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	p, err := w.Load(r.Scale)
	if err != nil {
		return nil, err
	}
	res, err := redundancy.Analyze(p, redundancy.DefaultConfig(), r.MaxInsts)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.red[key] = res
	r.mu.Unlock()
	return res, nil
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) ([]*stats.Table, error)
}

var experiments []Experiment

func registerExp(e Experiment) { experiments = append(experiments, e) }

// Experiments returns every registered experiment in paper order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

func order(id string) string {
	// tables first, then figures, numerically.
	if len(id) > 5 && id[:5] == "table" {
		return "0" + fmt.Sprintf("%02s", id[5:])
	}
	if len(id) > 3 && id[:3] == "fig" {
		return "1" + fmt.Sprintf("%02s", id[3:])
	}
	return "2" + id
}

// Configurations shared by the experiments.

func magic(res core.BranchResolution, re core.ReexecPolicy, vlat int) core.Config {
	return core.VPChoice(vp.Magic, res, re, vlat)
}

func lvp(res core.BranchResolution, re core.ReexecPolicy, vlat int) core.Config {
	return core.VPChoice(vp.LVP, res, re, vlat)
}

// vpGrid is the four paper configurations at one verification latency.
func vpGrid(scheme vp.Scheme, vlat int) []core.Config {
	return []core.Config{
		core.VPChoice(scheme, core.SB, core.ME, vlat),
		core.VPChoice(scheme, core.SB, core.NME, vlat),
		core.VPChoice(scheme, core.NSB, core.ME, vlat),
		core.VPChoice(scheme, core.NSB, core.NME, vlat),
	}
}
