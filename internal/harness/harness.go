// Package harness defines and runs the reproduction experiments: one
// Experiment per table and figure in the paper's evaluation section. A
// shared Runner caches simulation results, so regenerating every table and
// figure performs each (benchmark, configuration) simulation exactly once.
package harness

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/redundancy"
	"github.com/vpir-sim/vpir/internal/sample"
	"github.com/vpir-sim/vpir/internal/stats"
	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Runner executes and caches simulations. It is hardened for long
// campaigns: each run is bounded by an optional wall-clock deadline, panics
// in a simulation are converted to errors instead of killing the whole
// fleet, failures marked Transient are retried a bounded number of times,
// and RunAll aggregates every per-benchmark error while still returning the
// successful partial results.
type Runner struct {
	// Scale multiplies the workload sizes (1 = the standard runs).
	Scale int
	// MaxInsts caps the per-benchmark dynamic instruction count
	// (0 = run each kernel to completion).
	MaxInsts uint64
	// Parallel runs benchmarks concurrently (per experiment). When false,
	// sweeps are strictly serial regardless of Parallelism.
	Parallel bool
	// Parallelism is the sweep worker count (0 = GOMAXPROCS). Each worker
	// keeps one reusable machine per benchmark (see Sweep).
	Parallelism int
	// Timeout bounds each simulation's wall-clock time (0 = unbounded).
	// A run that exceeds it fails with context.DeadlineExceeded.
	Timeout time.Duration
	// Retries is how many times a run whose error is marked Transient is
	// re-attempted (deterministic simulator failures are never retried).
	Retries int
	// Obs, when non-nil, attaches observability instrumentation to every
	// simulation and writes per-run series/event files into Obs.Dir (see
	// docs/observability.md). Export failures fail the run: a campaign
	// asked to record its time series must not silently drop it.
	Obs *ObsExport
	// OnResult, when non-nil, is invoked by Sweep's workers as each cell
	// finishes, with the cell's index and its result. Calls arrive in
	// completion order, concurrently from multiple workers — the callback
	// must be safe for concurrent use. The simulation server uses it to
	// stream sweep results before the whole grid has finished.
	OnResult func(i int, res SweepResult)
	// Sample, when non-nil, switches every plain cell to checkpointed sampled
	// simulation under this plan (see internal/sample): Run and RunAll return
	// the stitched whole-program estimates instead of full-simulation stats.
	// Cells that carry their own SampleSpec are unaffected.
	Sample *sample.Plan

	mu    sync.Mutex
	cache map[string]cellOutcome
	red   map[string]*redundancy.Result
	ff    map[string]*ffEntry

	// runHook, when non-nil, replaces the simulation in attempt; tests use
	// it to inject failures, panics and transient errors.
	runHook func(bench string, cfg core.Config) (core.Stats, error)
}

// Transient wraps an error to mark the failed run as retryable (an external
// resource hiccup rather than a deterministic simulator failure).
type Transient struct{ Err error }

func (t *Transient) Error() string { return "transient: " + t.Err.Error() }
func (t *Transient) Unwrap() error { return t.Err }

// IsTransient reports whether err is (or wraps) a Transient failure.
func IsTransient(err error) bool {
	var t *Transient
	return errors.As(err, &t)
}

// NewRunner builds a Runner with the standard scale.
func NewRunner() *Runner {
	return &Runner{
		Scale:    1,
		Parallel: true,
		cache:    make(map[string]cellOutcome),
		red:      make(map[string]*redundancy.Result),
	}
}

// Run simulates one benchmark under one configuration (cached). The cache
// key is Config.Key, which covers the entire configuration field by field,
// not just its display name — ablation sweeps vary structure sizes under
// the same name, and a sloppier key would silently alias their entries.
func (r *Runner) Run(bench string, cfg core.Config) (core.Stats, error) {
	out, _, err := r.runCell(context.Background(), SweepCell{Bench: bench, Cfg: cfg}, nil)
	return out.stats, err
}

// runMachine drives m to completion in bounded cycle slices so the context
// deadline is observed; the machine's own watchdog separately bounds
// no-progress livelock in simulated time.
func runMachine(ctx context.Context, m *core.Machine) error {
	const slice = 200_000 // cycles between deadline checks
	for !m.Halted() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("harness: %s at cycle %d: %w", m.Config().Name(), m.Cycle(), err)
		}
		if err := m.Run(slice); err != nil {
			return err
		}
	}
	return nil
}

// RunAll simulates every benchmark under cfg, in the paper's order, on the
// sweep engine (see Sweep for the parallelism and machine-reuse model). All
// per-benchmark errors are aggregated with errors.Join in benchmark order —
// deterministic regardless of scheduling — and the successful runs are
// returned regardless, so a single failing benchmark never discards an
// entire campaign's work.
func (r *Runner) RunAll(cfg core.Config) (map[string]core.Stats, error) {
	benches := workload.Names()
	results := r.Sweep(context.Background(), Grid(benches, []core.Config{cfg}))
	out := make(map[string]core.Stats, len(benches))
	errs := make([]error, len(results))
	for i, res := range results {
		if res.Err != nil {
			errs[i] = fmt.Errorf("%s: %w", res.Bench, res.Err)
			continue
		}
		out[res.Bench] = res.Stats
	}
	return out, errors.Join(errs...)
}

// Redundancy runs the §4.3 limit study for one benchmark (cached).
func (r *Runner) Redundancy(bench string) (*redundancy.Result, error) {
	key := fmt.Sprintf("%s/%d/%d", bench, r.Scale, r.MaxInsts)
	r.mu.Lock()
	if res, ok := r.red[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	w, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	p, err := w.Load(r.Scale)
	if err != nil {
		return nil, err
	}
	res, err := redundancy.Analyze(p, redundancy.DefaultConfig(), r.MaxInsts)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.red[key] = res
	r.mu.Unlock()
	return res, nil
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) ([]*stats.Table, error)
}

var experiments []Experiment

func registerExp(e Experiment) { experiments = append(experiments, e) }

// Experiments returns every registered experiment in paper order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

func order(id string) string {
	// tables first, then figures, numerically.
	if len(id) > 5 && id[:5] == "table" {
		return "0" + fmt.Sprintf("%02s", id[5:])
	}
	if len(id) > 3 && id[:3] == "fig" {
		return "1" + fmt.Sprintf("%02s", id[3:])
	}
	return "2" + id
}

// Configurations shared by the experiments.

func magic(res core.BranchResolution, re core.ReexecPolicy, vlat int) core.Config {
	return core.VPChoice(vp.Magic, res, re, vlat)
}

func lvp(res core.BranchResolution, re core.ReexecPolicy, vlat int) core.Config {
	return core.VPChoice(vp.LVP, res, re, vlat)
}

// vpGrid is the four paper configurations at one verification latency.
func vpGrid(scheme vp.Scheme, vlat int) []core.Config {
	return []core.Config{
		core.VPChoice(scheme, core.SB, core.ME, vlat),
		core.VPChoice(scheme, core.SB, core.NME, vlat),
		core.VPChoice(scheme, core.NSB, core.ME, vlat),
		core.VPChoice(scheme, core.NSB, core.NME, vlat),
	}
}
