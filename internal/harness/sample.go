package harness

import (
	"context"
	"fmt"
	"sync"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/prog"
	"github.com/vpir-sim/vpir/internal/sample"
	"github.com/vpir-sim/vpir/internal/workload"
)

// WholeProgram as a SampleSpec.Index means "run the whole sampled plan in
// this cell": fast-forward, simulate every interval serially, stitch. Indexes
// ≥ 0 name one interval, the unit of parallel fan-out.
const WholeProgram = -1

// SampleSpec attaches a sampling regime to a sweep cell.
type SampleSpec struct {
	Plan  sample.Plan
	Index int
}

// samplePoolSuffix separates sampled machines from plain ones in a worker's
// pool. The two reset paths differ — Reset keeps the whole-program oracle,
// ResetTo replaces it with an interval oracle — so a machine must never
// migrate between the populations.
const samplePoolSuffix = "\x00sample"

// ffEntry is one fast-forward pass, computed once per (bench, cfg, plan,
// scale, cap) under singleflight: every interval cell of the same plan shares
// the checkpoints, and a worker that loses the race blocks on the winner
// instead of redoing the functional run.
type ffEntry struct {
	once sync.Once
	prog *prog.Program
	ff   *sample.FFResult
	err  error
}

// fastForward returns the cached fast-forward pass for the cell's plan,
// running it on first use. The program image is loaded once alongside and
// shared — it is read-only after assembly, and both interval oracles and
// restored machines only ever copy from it.
func (r *Runner) fastForward(bench string, cfg core.Config, plan sample.Plan) (*prog.Program, *sample.FFResult, error) {
	key := fmt.Sprintf("%s|%s|%s|%d|%d", bench, cfg.Key(), plan.Key(), r.Scale, r.MaxInsts)
	r.mu.Lock()
	if r.ff == nil {
		r.ff = make(map[string]*ffEntry)
	}
	e, ok := r.ff[key]
	if !ok {
		e = &ffEntry{}
		r.ff[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		w, err := workload.Get(bench)
		if err != nil {
			e.err = err
			return
		}
		p, err := w.Load(r.Scale)
		if err != nil {
			e.err = err
			return
		}
		e.prog = p
		e.ff, e.err = sample.FastForward(p, cfg, plan, r.MaxInsts)
	})
	return e.prog, e.ff, e.err
}

// attemptInterval simulates one sampled interval on a pooled machine. Panics
// are converted to errors like attempt's, and the pooled sampled machine is
// dropped — its state is unknown mid-update.
func (r *Runner) attemptInterval(ctx context.Context, bench string, cfg core.Config, spec *SampleSpec, machines map[string]*core.Machine) (out cellOutcome, err error) {
	poolKey := bench + samplePoolSuffix
	defer func() {
		if p := recover(); p != nil {
			delete(machines, poolKey)
			err = fmt.Errorf("harness: panic simulating %s interval %d under %s: %v", bench, spec.Index, cfg.Name(), p)
		}
	}()
	p, ff, err := r.fastForward(bench, cfg, spec.Plan)
	if err != nil {
		return out, err
	}
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	iv, err := r.runInterval(ctx, p, ff, cfg, spec.Index, machines, poolKey)
	if err != nil {
		return out, err
	}
	out.stats = iv.Stats
	out.interval = &iv
	return out, nil
}

// runInterval re-derives interval k's oracle, restores a pooled machine onto
// its checkpoint and drives the interval.
func (r *Runner) runInterval(ctx context.Context, p *prog.Program, ff *sample.FFResult, cfg core.Config, k int, machines map[string]*core.Machine, poolKey string) (sample.IntervalResult, error) {
	ck, warm, measured, err := ff.IntervalSpec(k)
	if err != nil {
		return sample.IntervalResult{}, err
	}
	oracle, err := sample.IntervalOracle(p, ck, warm+measured)
	if err != nil {
		return sample.IntervalResult{}, err
	}
	var m *core.Machine
	if machines != nil {
		m = machines[poolKey]
	}
	if m != nil {
		if err := m.ResetTo(cfg, ck.State, oracle); err != nil {
			return sample.IntervalResult{}, err
		}
	} else {
		m, err = core.NewRestored(p, cfg, ck.State, oracle)
		if err != nil {
			return sample.IntervalResult{}, err
		}
		if machines != nil {
			machines[poolKey] = m
		}
	}
	return sample.DriveInterval(ctx, m, ck, warm)
}

// attemptWholeSampled runs the entire sampled plan inside one cell: every
// interval in index order on the worker's pooled machine, then the stitch.
// This is the transparent-sampling path (Runner.Sample) where parallelism
// comes from the grid's other cells; RunSampled instead fans the intervals
// out as their own cells.
func (r *Runner) attemptWholeSampled(ctx context.Context, bench string, cfg core.Config, spec *SampleSpec, machines map[string]*core.Machine) (out cellOutcome, err error) {
	poolKey := bench + samplePoolSuffix
	defer func() {
		if p := recover(); p != nil {
			delete(machines, poolKey)
			err = fmt.Errorf("harness: panic in sampled run of %s under %s: %v", bench, cfg.Name(), p)
		}
	}()
	p, ff, err := r.fastForward(bench, cfg, spec.Plan)
	if err != nil {
		return out, err
	}
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	ivs := make([]sample.IntervalResult, len(ff.Checkpoints))
	for k := range ff.Checkpoints {
		iv, err := r.runInterval(ctx, p, ff, cfg, k, machines, poolKey)
		if err != nil {
			return out, fmt.Errorf("harness: %s interval %d: %w", bench, k, err)
		}
		ivs[k] = iv
	}
	sum, err := sample.Stitch(ff, ivs)
	if err != nil {
		return out, err
	}
	out.stats = sum.Stats
	out.summary = sum
	return out, nil
}

// RunSampled executes one (benchmark, configuration) under the plan with the
// checkpoints as the unit of parallelism: one fast-forward pass, then every
// interval fans out across Sweep's worker pool as its own cell, and the
// results are stitched in index order — a deterministic merge no matter how
// the intervals were scheduled. Per-interval results are cached like any
// other cell, so a re-run after a partial failure only simulates the missing
// intervals.
func (r *Runner) RunSampled(ctx context.Context, bench string, cfg core.Config, plan sample.Plan) (*sample.Summary, error) {
	plan = plan.Normalize()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	_, ff, err := r.fastForward(bench, cfg, plan)
	if err != nil {
		return nil, err
	}
	cells := make([]SweepCell, len(ff.Checkpoints))
	for k := range cells {
		cells[k] = SweepCell{Bench: bench, Cfg: cfg, Sample: &SampleSpec{Plan: plan, Index: k}}
	}
	results := r.Sweep(ctx, cells)
	ivs := make([]sample.IntervalResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("harness: %s interval %d: %w", bench, i, res.Err)
		}
		if res.Interval == nil {
			return nil, fmt.Errorf("harness: %s interval %d returned no result", bench, i)
		}
		ivs[i] = *res.Interval
	}
	return sample.Stitch(ff, ivs)
}
