package harness

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/stats"
	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

func init() {
	registerExp(Experiment{ID: "table1", Title: "Base machine parameters", Run: table1})
	registerExp(Experiment{ID: "table2", Title: "Benchmarks: instructions, branch and return prediction", Run: table2})
	registerExp(Experiment{ID: "table3", Title: "IR and VP rates", Run: table3})
	registerExp(Experiment{ID: "table4", Title: "Increase in branch squashes from spurious mispredictions", Run: table4})
	registerExp(Experiment{ID: "table5", Title: "Executed instructions squashed and recovered by IR", Run: table5})
	registerExp(Experiment{ID: "table6", Title: "Executions per instruction under VP_Magic ME-SB (vlat=1)", Run: table6})
	registerExp(Experiment{ID: "fig3", Title: "Early vs late validation speedups (IR)", Run: fig3})
	registerExp(Experiment{ID: "fig4", Title: "Branch resolution latency, normalized to base", Run: fig4})
	registerExp(Experiment{ID: "fig5", Title: "Resource contention, normalized to base", Run: fig5})
	registerExp(Experiment{ID: "fig6", Title: "Speedups: VP_Magic configurations and IR", Run: fig6})
	registerExp(Experiment{ID: "fig7", Title: "Speedups: VP_LVP configurations", Run: fig7})
	registerExp(Experiment{ID: "fig8", Title: "Result classification: unique/repeated/derivable", Run: fig8})
	registerExp(Experiment{ID: "fig9", Title: "Repeated instructions by input readiness", Run: fig9})
	registerExp(Experiment{ID: "fig10", Title: "Redundancy amenable to reuse", Run: fig10})
}

func table1(r *Runner) ([]*stats.Table, error) {
	cfg := core.DefaultConfig()
	t := &stats.Table{ID: "table1", Title: "Base simulator (Table 1 of the paper)",
		Columns: []string{"parameter", "value"}}
	t.AddRow("fetch", fmt.Sprintf("%d insts/cycle, 1 taken branch, no line crossing", cfg.FetchWidth))
	t.AddRow("icache", fmt.Sprintf("%dKB, %d-way, %dB lines, %d-cycle miss",
		cfg.ICache.SizeBytes>>10, cfg.ICache.Ways, cfg.ICache.LineBytes, cfg.ICache.MissLatency))
	t.AddRow("bpred", fmt.Sprintf("gshare, %d-bit history, %dK counters",
		cfg.Bpred.HistoryBits, cfg.Bpred.TableEntries>>10))
	t.AddRow("window", fmt.Sprintf("OoO issue %d/cycle, %d-entry ROB, %d-entry LSQ, %d unresolved branches",
		cfg.IssueWidth, cfg.ROBSize, cfg.LSQSize, cfg.MaxBranches))
	t.AddRow("FUs", fmt.Sprintf("%d int ALU, %d ld/st, %d FP add, 1 int mult/div, 1 FP mult/div",
		cfg.IntALUs, cfg.MemPorts, cfg.FPAdders))
	t.AddRow("dcache", fmt.Sprintf("%dKB, %d-way, %dB lines, %d-cycle miss, dual ported",
		cfg.DCache.SizeBytes>>10, cfg.DCache.Ways, cfg.DCache.LineBytes, cfg.DCache.MissLatency))
	t.AddRow("vpt", fmt.Sprintf("%d entries, %d-way", cfg.VP.ResultTable.Entries, cfg.VP.ResultTable.Ways))
	t.AddRow("rb", fmt.Sprintf("%d entries, %d-way", cfg.IR.Buffer.Entries, cfg.IR.Buffer.Ways))
	return []*stats.Table{t}, nil
}

func table2(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "table2", Title: "Benchmark programs (scaled kernels)",
		Columns: []string{"bench", "insts", "br pred %", "ret pred %"}}
	for _, b := range workload.Names() {
		s := base[b]
		t.AddRow(b, stats.N(s.Committed), stats.F(s.BranchPredRate()), stats.F(s.ReturnPredRate()))
	}
	t.Note("paper: 354-508M instructions; kernels are scaled to ~0.2-1M")
	return []*stats.Table{t}, nil
}

func table3(r *Runner) ([]*stats.Table, error) {
	ir, err := r.RunAll(core.IRChoice(false))
	if err != nil {
		return nil, err
	}
	mg, err := r.RunAll(magic(core.SB, core.ME, 0))
	if err != nil {
		return nil, err
	}
	lv, err := r.RunAll(lvp(core.SB, core.ME, 0))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "table3", Title: "Percentage IR and VP rates",
		Columns: []string{"bench", "IR res%", "IR addr%",
			"Mg pred%", "Mg mis%", "Mg apred%", "Mg amis%",
			"LVP pred%", "LVP mis%", "LVP apred%", "LVP amis%"}}
	for _, b := range workload.Names() {
		mp, mm := mg[b].VPResultRates()
		map_, mam := mg[b].VPAddrRates()
		lp, lm := lv[b].VPResultRates()
		lap, lam := lv[b].VPAddrRates()
		t.AddRow(b,
			stats.F(ir[b].ReuseResultRate()), stats.F(ir[b].ReuseAddrRate()),
			stats.F(mp), stats.F(mm), stats.F(map_), stats.F(mam),
			stats.F(lp), stats.F(lm), stats.F(lap), stats.F(lam))
	}
	t.Note("result %% over committed instructions; address %% over committed memory ops")
	return []*stats.Table{t}, nil
}

func table4(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cfgs := []struct {
		label string
		cfg   core.Config
	}{
		{"Magic ME-SB", magic(core.SB, core.ME, 0)},
		{"Magic NME-SB", magic(core.SB, core.NME, 0)},
		{"LVP ME-SB", lvp(core.SB, core.ME, 0)},
		{"LVP NME-SB", lvp(core.SB, core.NME, 0)},
	}
	t := &stats.Table{ID: "table4", Title: "Increase in branch squashes due to value misprediction (%)",
		Columns: []string{"bench", "Magic ME-SB", "Magic NME-SB", "LVP ME-SB", "LVP NME-SB"}}
	rows := map[string][]string{}
	for _, b := range workload.Names() {
		rows[b] = []string{b}
	}
	for _, c := range cfgs {
		res, err := r.RunAll(c.cfg)
		if err != nil {
			return nil, err
		}
		for _, b := range workload.Names() {
			inc := 0.0
			if base[b].Squashes > 0 {
				inc = 100 * (float64(res[b].Squashes) - float64(base[b].Squashes)) / float64(base[b].Squashes)
			}
			rows[b] = append(rows[b], stats.F(inc))
		}
	}
	for _, b := range workload.Names() {
		t.AddRow(rows[b]...)
	}
	t.Note("NSB configurations do not change the squash count (resolution waits for final operands)")
	return []*stats.Table{t}, nil
}

func table5(r *Runner) ([]*stats.Table, error) {
	ir, err := r.RunAll(core.IRChoice(false))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "table5", Title: "Executed instructions squashed, and squashed work recovered by IR",
		Columns: []string{"bench", "inst executed", "exec squashed %", "squashed recovered %"}}
	for _, b := range workload.Names() {
		s := ir[b]
		t.AddRow(b, stats.N(s.Executed), stats.F(s.ExecSquashedPct()), stats.F(s.RecoveredPct()))
	}
	return []*stats.Table{t}, nil
}

func table6(r *Runner) ([]*stats.Table, error) {
	res, err := r.RunAll(magic(core.SB, core.ME, 1))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "table6", Title: "Percent of instructions executed once, twice, thrice (Magic ME-SB, vlat=1)",
		Columns: []string{"bench", "1", "2", "3+"}}
	for _, b := range workload.Names() {
		p := res[b].ExecTimesPct()
		t.AddRow(b, stats.F(p[0]), stats.F(p[1]), stats.F(p[2]))
	}
	return []*stats.Table{t}, nil
}

func fig3(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	early, err := r.RunAll(core.IRChoice(false))
	if err != nil {
		return nil, err
	}
	late, err := r.RunAll(core.IRChoice(true))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "fig3", Title: "Percent speedup over base: early vs late validation",
		Columns: []string{"bench", "early %", "late %"}}
	var se, sl []float64
	for _, b := range workload.Names() {
		e := early[b].IPC() / base[b].IPC()
		l := late[b].IPC() / base[b].IPC()
		se = append(se, e)
		sl = append(sl, l)
		t.AddRow(b, stats.F(100*(e-1)), stats.F(100*(l-1)))
	}
	t.AddRow("HM", stats.F(100*(stats.HarmonicMean(se)-1)), stats.F(100*(stats.HarmonicMean(sl)-1)))
	return []*stats.Table{t}, nil
}

// brLatTable builds one normalized branch-resolution-latency table at a
// given verification latency.
func brLatTable(r *Runner, id string, vlat int) (*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: id,
		Title:   fmt.Sprintf("Branch resolution latency normalized to base (vlat=%d)", vlat),
		Columns: []string{"bench", "ME-SB", "NME-SB", "ME-NSB", "NME-NSB", "IR"}}
	grid := []core.Config{
		magic(core.SB, core.ME, vlat), magic(core.SB, core.NME, vlat),
		magic(core.NSB, core.ME, vlat), magic(core.NSB, core.NME, vlat),
	}
	results := make([]map[string]core.Stats, len(grid))
	for i, cfg := range grid {
		if results[i], err = r.RunAll(cfg); err != nil {
			return nil, err
		}
	}
	ir, err := r.RunAll(core.IRChoice(false))
	if err != nil {
		return nil, err
	}
	for _, b := range workload.Names() {
		row := []string{b}
		for i := range grid {
			row = append(row, stats.F2(results[i][b].MeanBrResolveLat()/base[b].MeanBrResolveLat()))
		}
		row = append(row, stats.F2(ir[b].MeanBrResolveLat()/base[b].MeanBrResolveLat()))
		t.AddRow(row...)
	}
	return t, nil
}

func fig4(r *Runner) ([]*stats.Table, error) {
	a, err := brLatTable(r, "fig4a", 0)
	if err != nil {
		return nil, err
	}
	b, err := brLatTable(r, "fig4b", 1)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{a, b}, nil
}

func fig5(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "fig5", Title: "Resource contention normalized to base (vlat=0)",
		Columns: []string{"bench", "IR", "ME-SB", "NME-SB", "ME-NSB", "NME-NSB"}}
	ir, err := r.RunAll(core.IRChoice(false))
	if err != nil {
		return nil, err
	}
	grid := vpGrid(vp.Magic, 0)
	results := make([]map[string]core.Stats, len(grid))
	for i, cfg := range grid {
		if results[i], err = r.RunAll(cfg); err != nil {
			return nil, err
		}
	}
	norm := func(s core.Stats, b string) string {
		if base[b].Contention() == 0 {
			return "-"
		}
		return stats.F2(s.Contention() / base[b].Contention())
	}
	for _, b := range workload.Names() {
		row := []string{b, norm(ir[b], b)}
		for i := range grid {
			row = append(row, norm(results[i][b], b))
		}
		t.AddRow(row...)
	}
	t.Note("contention = resource denials / resource requests (FUs, cache ports, result buses)")
	return []*stats.Table{t}, nil
}

// speedupTable renders speedups over base for a set of configurations.
func speedupTable(r *Runner, id, title string, cfgs []core.Config, labels []string, withIR bool) (*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cols := append([]string{"bench"}, labels...)
	if withIR {
		cols = append(cols, "IR")
	}
	t := &stats.Table{ID: id, Title: title, Columns: cols}
	results := make([]map[string]core.Stats, len(cfgs))
	for i, cfg := range cfgs {
		if results[i], err = r.RunAll(cfg); err != nil {
			return nil, err
		}
	}
	var ir map[string]core.Stats
	if withIR {
		if ir, err = r.RunAll(core.IRChoice(false)); err != nil {
			return nil, err
		}
	}
	speedups := make([][]float64, len(cfgs)+1)
	for _, b := range workload.Names() {
		row := []string{b}
		for i := range cfgs {
			sp := results[i][b].IPC() / base[b].IPC()
			speedups[i] = append(speedups[i], sp)
			row = append(row, stats.F3(sp))
		}
		if withIR {
			sp := ir[b].IPC() / base[b].IPC()
			speedups[len(cfgs)] = append(speedups[len(cfgs)], sp)
			row = append(row, stats.F3(sp))
		}
		t.AddRow(row...)
	}
	hm := []string{"HM"}
	for i := range cfgs {
		hm = append(hm, stats.F3(stats.HarmonicMean(speedups[i])))
	}
	if withIR {
		hm = append(hm, stats.F3(stats.HarmonicMean(speedups[len(cfgs)])))
	}
	t.AddRow(hm...)
	return t, nil
}

var gridLabels = []string{"ME-SB", "NME-SB", "ME-NSB", "NME-NSB"}

func fig6(r *Runner) ([]*stats.Table, error) {
	a, err := speedupTable(r, "fig6a", "Speedups (IPC/IPC_base): VP_Magic, vlat=0, and IR",
		vpGrid(vp.Magic, 0), gridLabels, true)
	if err != nil {
		return nil, err
	}
	b, err := speedupTable(r, "fig6b", "Speedups (IPC/IPC_base): VP_Magic, vlat=1, and IR",
		vpGrid(vp.Magic, 1), gridLabels, true)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{a, b}, nil
}

func fig7(r *Runner) ([]*stats.Table, error) {
	a, err := speedupTable(r, "fig7a", "Speedups (IPC/IPC_base): VP_LVP, vlat=0",
		vpGrid(vp.LVP, 0), gridLabels, false)
	if err != nil {
		return nil, err
	}
	b, err := speedupTable(r, "fig7b", "Speedups (IPC/IPC_base): VP_LVP, vlat=1",
		vpGrid(vp.LVP, 1), gridLabels, false)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{a, b}, nil
}

func fig8(r *Runner) ([]*stats.Table, error) {
	t := &stats.Table{ID: "fig8", Title: "Classification of results (% of result-producing instructions)",
		Columns: []string{"bench", "unique", "repeated", "derivable", "unaccounted"}}
	for _, b := range workload.Names() {
		res, err := r.Redundancy(b)
		if err != nil {
			return nil, err
		}
		t.AddRow(b, stats.F(res.Pct(res.Unique)), stats.F(res.Pct(res.Repeated)),
			stats.F(res.Pct(res.Derivable)), stats.F(res.Pct(res.Unaccounted)))
	}
	t.Note("10K buffered instances per static instruction, as in the paper")
	return []*stats.Table{t}, nil
}

func fig9(r *Runner) ([]*stats.Table, error) {
	t := &stats.Table{ID: "fig9", Title: "Repeated instructions by input readiness (% of repeated)",
		Columns: []string{"bench", "producers reused", "prod-dist >= 50", "prod-dist < 50"}}
	for _, b := range workload.Names() {
		res, err := r.Redundancy(b)
		if err != nil {
			return nil, err
		}
		rep := float64(res.Repeated)
		if rep == 0 {
			rep = 1
		}
		t.AddRow(b,
			stats.F(100*float64(res.ProducersReused)/rep),
			stats.F(100*float64(res.ProdFar)/rep),
			stats.F(100*float64(res.ProdNear)/rep))
	}
	return []*stats.Table{t}, nil
}

func fig10(r *Runner) ([]*stats.Table, error) {
	t := &stats.Table{ID: "fig10", Title: "Amount of redundancy that can be reused (% of instructions)",
		Columns: []string{"bench", "redundant %", "reusable %", "reusable/redundant %"}}
	for _, b := range workload.Names() {
		res, err := r.Redundancy(b)
		if err != nil {
			return nil, err
		}
		t.AddRow(b, stats.F(res.Pct(res.Redundant())), stats.F(res.Pct(res.Reusable)),
			stats.F(res.ReusablePct()))
	}
	t.Note("paper reports 84-97%% of redundancy reusable")
	return []*stats.Table{t}, nil
}
