package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/workload"
)

// SweepCell names one (benchmark, configuration) simulation in a sweep.
type SweepCell struct {
	Bench string
	Cfg   core.Config
}

// SweepResult is the outcome of one cell. Exactly one of Stats/Err is
// meaningful: Err is nil on success, and a cell skipped because the sweep's
// context was already cancelled carries that context error.
type SweepResult struct {
	Bench string
	Cfg   core.Config
	Stats core.Stats
	Err   error
}

// Grid builds the cross product of benchmarks and configurations in
// bench-major order (every configuration of one benchmark is adjacent, the
// order experiment tables want).
func Grid(benches []string, cfgs []core.Config) []SweepCell {
	cells := make([]SweepCell, 0, len(benches)*len(cfgs))
	for _, b := range benches {
		for _, cfg := range cfgs {
			cells = append(cells, SweepCell{Bench: b, Cfg: cfg})
		}
	}
	return cells
}

// workers resolves the Runner's parallelism: Parallel=false pins the sweep
// to one worker (strictly serial, in cell order); otherwise Parallelism
// sets the worker count, defaulting to GOMAXPROCS.
func (r *Runner) workers() int {
	if !r.Parallel {
		return 1
	}
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Sweep simulates every cell on a pool of workers and returns the results
// indexed exactly like cells — the result order is deterministic no matter
// how the work was scheduled. Each worker owns a private set of machines,
// one per benchmark, that it rewinds with Machine.Reset between
// configurations instead of paying core.New's functional pre-run again;
// Machine.Reset's determinism contract is what makes the parallel sweep
// bit-identical to a serial one.
//
// Cancelling ctx stops the sweep promptly: cells not yet started complete
// with ctx's error, cells in flight observe the cancellation at their next
// deadline check. Per-cell failures never abort the sweep — callers decide
// what to do with partial results.
func (r *Runner) Sweep(ctx context.Context, cells []SweepCell) []SweepResult {
	results := make([]SweepResult, len(cells))
	n := r.workers()
	if n > len(cells) {
		n = len(cells)
	}
	if n < 1 {
		n = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// machines is worker-private (no locking) and lives for the
			// whole sweep, so a benchmark's machine is rebuilt at most once
			// per worker regardless of how many configurations it runs.
			machines := make(map[string]*core.Machine)
			for i := range jobs {
				c := cells[i]
				res := SweepResult{Bench: c.Bench, Cfg: c.Cfg}
				if err := ctx.Err(); err != nil {
					res.Err = err
				} else {
					res.Stats, res.Err = r.runCell(ctx, c.Bench, c.Cfg, machines)
				}
				results[i] = res
				if r.OnResult != nil {
					r.OnResult(i, res)
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runCell is the cached, retrying simulation shared by Run and Sweep.
func (r *Runner) runCell(ctx context.Context, bench string, cfg core.Config, machines map[string]*core.Machine) (core.Stats, error) {
	key := fmt.Sprintf("%s|%s|%d|%d", bench, cfg.Key(), r.Scale, r.MaxInsts)
	r.mu.Lock()
	if s, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()

	s, err := r.attempt(ctx, bench, cfg, machines)
	for retry := 0; err != nil && IsTransient(err) && retry < r.Retries; retry++ {
		s, err = r.attempt(ctx, bench, cfg, machines)
	}
	if err != nil {
		return core.Stats{}, err
	}
	r.mu.Lock()
	r.cache[key] = s
	r.mu.Unlock()
	return s, nil
}

// attempt performs one simulation, reusing (and on success keeping) a
// machine from the worker's pool. Panics are converted to errors so a bad
// run cannot take down a whole campaign, and the machine that panicked is
// dropped from the pool — its state is unknown mid-update, and the reset
// determinism contract only covers machines whose Run returned normally.
func (r *Runner) attempt(ctx context.Context, bench string, cfg core.Config, machines map[string]*core.Machine) (s core.Stats, err error) {
	defer func() {
		if p := recover(); p != nil {
			delete(machines, bench)
			err = fmt.Errorf("harness: panic simulating %s under %s: %v", bench, cfg.Name(), p)
		}
	}()
	if r.runHook != nil {
		return r.runHook(bench, cfg)
	}
	m := machines[bench]
	if m != nil {
		if err := m.Reset(cfg); err != nil {
			return core.Stats{}, err
		}
	} else {
		w, err := workload.Get(bench)
		if err != nil {
			return core.Stats{}, err
		}
		p, err := w.Load(r.Scale)
		if err != nil {
			return core.Stats{}, err
		}
		m, err = core.New(p, cfg, r.MaxInsts)
		if err != nil {
			return core.Stats{}, err
		}
		if machines != nil {
			machines[bench] = m
		}
	}
	var obs *core.Observer
	if r.Obs != nil {
		obs = core.NewObserver(r.Obs.Interval, r.Obs.EventCap)
		m.AttachObserver(obs)
	}
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	if err := runMachine(ctx, m); err != nil {
		return core.Stats{}, err
	}
	if r.Obs != nil {
		if err := r.Obs.export(bench, cfg, obs); err != nil {
			return core.Stats{}, err
		}
	}
	return m.Stats(), nil
}
