package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/sample"
	"github.com/vpir-sim/vpir/internal/workload"
)

// SweepCell names one simulation in a sweep: a (benchmark, configuration)
// pair, optionally narrowed to one sampled interval (or widened to a whole
// sampled plan) by Sample.
type SweepCell struct {
	Bench string
	Cfg   core.Config
	// Sample, when non-nil, makes this a sampled cell: Index ≥ 0 simulates
	// one interval of the plan (the unit of parallel fan-out), Index ==
	// WholeProgram runs the full plan serially inside the cell. Nil cells are
	// plain full-program simulations — unless Runner.Sample is set, which
	// samples them transparently.
	Sample *SampleSpec
}

// SweepResult is the outcome of one cell. Exactly one of Stats/Err is
// meaningful: Err is nil on success, and a cell skipped because the sweep's
// context was already cancelled carries that context error.
type SweepResult struct {
	Bench string
	Cfg   core.Config
	Stats core.Stats
	// Interval carries the per-interval measurement for sampled interval
	// cells (Sample.Index ≥ 0); nil otherwise.
	Interval *sample.IntervalResult
	// Summary carries the stitched summary of a whole-plan sampled cell
	// (Sample.Index == WholeProgram, or a plain cell under Runner.Sample);
	// nil otherwise.
	Summary *sample.Summary
	// Attempts records which attempt produced this result: 0 for a cache
	// hit, 1 for a first-try success, n > 1 when n−1 transient failures were
	// retried. It makes hedged/retried interval cells auditable — a stitched
	// summary can report exactly which intervals needed retries.
	Attempts int
	Err      error
}

// Grid builds the cross product of benchmarks and configurations in
// bench-major order (every configuration of one benchmark is adjacent, the
// order experiment tables want).
func Grid(benches []string, cfgs []core.Config) []SweepCell {
	cells := make([]SweepCell, 0, len(benches)*len(cfgs))
	for _, b := range benches {
		for _, cfg := range cfgs {
			cells = append(cells, SweepCell{Bench: b, Cfg: cfg})
		}
	}
	return cells
}

// workers resolves the Runner's parallelism: Parallel=false pins the sweep
// to one worker (strictly serial, in cell order); otherwise Parallelism
// sets the worker count, defaulting to GOMAXPROCS.
func (r *Runner) workers() int {
	if !r.Parallel {
		return 1
	}
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Sweep simulates every cell on a pool of workers and returns the results
// indexed exactly like cells — the result order is deterministic no matter
// how the work was scheduled. Each worker owns a private set of machines,
// one per benchmark, that it rewinds with Machine.Reset between
// configurations instead of paying core.New's functional pre-run again;
// Machine.Reset's determinism contract is what makes the parallel sweep
// bit-identical to a serial one.
//
// Cancelling ctx stops the sweep promptly: cells not yet started complete
// with ctx's error, cells in flight observe the cancellation at their next
// deadline check. Per-cell failures never abort the sweep — callers decide
// what to do with partial results.
func (r *Runner) Sweep(ctx context.Context, cells []SweepCell) []SweepResult {
	results := make([]SweepResult, len(cells))
	n := r.workers()
	if n > len(cells) {
		n = len(cells)
	}
	if n < 1 {
		n = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// machines is worker-private (no locking) and lives for the
			// whole sweep, so a benchmark's machine is rebuilt at most once
			// per worker regardless of how many configurations it runs.
			machines := make(map[string]*core.Machine)
			for i := range jobs {
				c := cells[i]
				res := SweepResult{Bench: c.Bench, Cfg: c.Cfg}
				if err := ctx.Err(); err != nil {
					res.Err = err
				} else {
					var out cellOutcome
					out, res.Attempts, res.Err = r.runCell(ctx, c, machines)
					res.Stats, res.Interval, res.Summary = out.stats, out.interval, out.summary
				}
				results[i] = res
				if r.OnResult != nil {
					r.OnResult(i, res)
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// cellOutcome is everything a cell can produce: the stats every cell has,
// plus the per-interval measurement of a sampled interval cell or the
// stitched summary of a whole-sampled cell.
type cellOutcome struct {
	stats    core.Stats
	interval *sample.IntervalResult
	summary  *sample.Summary
}

// cellKey builds the cache key for a cell. Non-sampled keys are byte-for-byte
// what they were before sampling existed, so persisted caches keyed on them
// stay valid; sampled cells append the plan key and interval index, so
// sampled and non-sampled results can never alias.
func (r *Runner) cellKey(bench string, cfg core.Config, spec *SampleSpec) string {
	key := fmt.Sprintf("%s|%s|%d|%d", bench, cfg.Key(), r.Scale, r.MaxInsts)
	if spec != nil {
		key = fmt.Sprintf("%s|%s|k%d", key, spec.Plan.Key(), spec.Index)
	}
	return key
}

// runCell is the cached, retrying simulation shared by Run, RunSampled and
// Sweep. The returned attempt count is 0 for a cache hit and otherwise the
// 1-based attempt that produced the result.
func (r *Runner) runCell(ctx context.Context, c SweepCell, machines map[string]*core.Machine) (cellOutcome, int, error) {
	spec := c.Sample
	if spec == nil && r.Sample != nil {
		// Transparent sampling: a plain cell under a sampling Runner becomes
		// a whole-plan sampled run.
		spec = &SampleSpec{Plan: *r.Sample, Index: WholeProgram}
	}
	key := r.cellKey(c.Bench, c.Cfg, spec)
	r.mu.Lock()
	if out, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return out, 0, nil
	}
	r.mu.Unlock()

	attempts := 1
	out, err := r.attemptCell(ctx, c.Bench, c.Cfg, spec, machines)
	for err != nil && IsTransient(err) && attempts <= r.Retries {
		attempts++
		out, err = r.attemptCell(ctx, c.Bench, c.Cfg, spec, machines)
	}
	if err != nil {
		return cellOutcome{}, attempts, err
	}
	r.mu.Lock()
	r.cache[key] = out
	r.mu.Unlock()
	return out, attempts, nil
}

// attemptCell dispatches one attempt to the cell's simulation mode.
func (r *Runner) attemptCell(ctx context.Context, bench string, cfg core.Config, spec *SampleSpec, machines map[string]*core.Machine) (cellOutcome, error) {
	switch {
	case spec == nil:
		s, err := r.attempt(ctx, bench, cfg, machines)
		return cellOutcome{stats: s}, err
	case spec.Index == WholeProgram:
		return r.attemptWholeSampled(ctx, bench, cfg, spec, machines)
	default:
		return r.attemptInterval(ctx, bench, cfg, spec, machines)
	}
}

// attempt performs one simulation, reusing (and on success keeping) a
// machine from the worker's pool. Panics are converted to errors so a bad
// run cannot take down a whole campaign, and the machine that panicked is
// dropped from the pool — its state is unknown mid-update, and the reset
// determinism contract only covers machines whose Run returned normally.
func (r *Runner) attempt(ctx context.Context, bench string, cfg core.Config, machines map[string]*core.Machine) (s core.Stats, err error) {
	defer func() {
		if p := recover(); p != nil {
			delete(machines, bench)
			err = fmt.Errorf("harness: panic simulating %s under %s: %v", bench, cfg.Name(), p)
		}
	}()
	if r.runHook != nil {
		return r.runHook(bench, cfg)
	}
	m := machines[bench]
	if m != nil {
		if err := m.Reset(cfg); err != nil {
			return core.Stats{}, err
		}
	} else {
		w, err := workload.Get(bench)
		if err != nil {
			return core.Stats{}, err
		}
		p, err := w.Load(r.Scale)
		if err != nil {
			return core.Stats{}, err
		}
		m, err = core.New(p, cfg, r.MaxInsts)
		if err != nil {
			return core.Stats{}, err
		}
		if machines != nil {
			machines[bench] = m
		}
	}
	var obs *core.Observer
	if r.Obs != nil {
		obs = core.NewObserver(r.Obs.Interval, r.Obs.EventCap)
		m.AttachObserver(obs)
	}
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	if err := runMachine(ctx, m); err != nil {
		return core.Stats{}, err
	}
	if r.Obs != nil {
		if err := r.Obs.export(bench, cfg, obs); err != nil {
			return core.Stats{}, err
		}
	}
	return m.Stats(), nil
}
