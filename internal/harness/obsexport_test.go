package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/obs"
)

func TestObsExportWritesPerRunFiles(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner()
	r.MaxInsts = 20_000 // truncated: this is an export test, not a timing run
	r.Obs = &ObsExport{
		Dir:        dir,
		Interval:   512,
		CSV:        true,
		Events:     true,
		Prometheus: true,
	}
	cfg := core.IRChoice(false)
	s, err := r.Run("compress", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Committed == 0 {
		t.Fatal("run committed nothing")
	}

	stem := r.Obs.runName("compress", cfg)
	for _, suffix := range []string{".series.jsonl", ".series.csv", ".events.jsonl", ".prom"} {
		if _, err := os.Stat(filepath.Join(dir, stem+suffix)); err != nil {
			t.Errorf("missing export %s%s: %v", stem, suffix, err)
		}
	}

	// The series must parse and its final sample must agree with the
	// returned Stats on the committed-instruction count.
	f, err := os.Open(filepath.Join(dir, stem+".series.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	series, err := obs.ReadSeriesJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	committed := series.Column("committed")
	if len(committed) == 0 {
		t.Fatal("series has no committed column")
	}
	if got := committed[len(committed)-1]; got != float64(s.Committed) {
		t.Errorf("final sample committed = %v, Stats has %d", got, s.Committed)
	}

	prom, err := os.ReadFile(filepath.Join(dir, stem+".prom"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "vpir_stats_committed") {
		t.Errorf("prometheus snapshot missing vpir_stats_committed:\n%s", prom)
	}
}

func TestObsExportNameIsFilesystemSafe(t *testing.T) {
	x := &ObsExport{}
	name := x.runName("go", core.VPChoice(0, core.SB, core.ME, 1))
	if strings.ContainsAny(name, "/\\ :=()") {
		t.Errorf("unsafe run name %q", name)
	}
	// Distinct configurations under the same display name must not collide:
	// the key hash separates them.
	a := core.DefaultConfig()
	b := core.DefaultConfig()
	b.ROBSize *= 2
	if an, bn := x.runName("go", a), x.runName("go", b); an == bn {
		t.Errorf("ablation variants collide: %q", an)
	}
}
