package harness

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/workload"
)

// TestRunAllPartialResults: one failing benchmark must not discard the
// campaign — RunAll returns stats for every other benchmark plus a joined
// error naming the failure.
func TestRunAllPartialResults(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			r := fastRunner()
			r.Parallel = parallel
			boom := errors.New("synthetic failure")
			r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
				if bench == "perl" {
					return core.Stats{}, boom
				}
				return core.Stats{Committed: 1}, nil
			}
			out, err := r.RunAll(core.DefaultConfig())
			if err == nil {
				t.Fatal("RunAll swallowed the failure")
			}
			if !errors.Is(err, boom) {
				t.Fatalf("joined error lost the cause: %v", err)
			}
			if !strings.Contains(err.Error(), "perl") {
				t.Fatalf("joined error does not name the failing benchmark: %v", err)
			}
			want := len(workload.Names()) - 1
			if len(out) != want {
				t.Fatalf("partial results: got %d benchmarks, want %d", len(out), want)
			}
			if _, bad := out["perl"]; bad {
				t.Fatal("failed benchmark present in results")
			}
		})
	}
}

// TestRunAllJoinsAllErrors: multiple failures are all reported, in the
// paper's benchmark order regardless of goroutine completion order.
func TestRunAllJoinsAllErrors(t *testing.T) {
	r := fastRunner()
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		if bench == "go" || bench == "vortex" {
			return core.Stats{}, fmt.Errorf("fail-%s", bench)
		}
		return core.Stats{}, nil
	}
	out, err := r.RunAll(core.DefaultConfig())
	if err == nil {
		t.Fatal("no error for two failing benchmarks")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fail-go") || !strings.Contains(msg, "fail-vortex") {
		t.Fatalf("joined error missing a failure: %v", msg)
	}
	if strings.Index(msg, "fail-go") > strings.Index(msg, "fail-vortex") {
		t.Fatalf("joined errors out of benchmark order: %v", msg)
	}
	if len(out) != len(workload.Names())-2 {
		t.Fatalf("got %d partial results, want %d", len(out), len(workload.Names())-2)
	}
}

// TestRunRecoversPanic: a panicking simulation becomes an error instead of
// killing the process (RunAll runs attempts inside goroutines, where an
// unrecovered panic would take down the whole campaign).
func TestRunRecoversPanic(t *testing.T) {
	r := fastRunner()
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		panic("rogue index out of range")
	}
	_, err := r.Run("compress", core.DefaultConfig())
	if err == nil {
		t.Fatal("panic was not converted to an error")
	}
	for _, want := range []string{"panic", "rogue index", "compress"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("recovered error %q missing %q", err.Error(), want)
		}
	}
	// The runner must remain usable after a panic.
	r.runHook = nil
	if _, err := r.Run("compress", core.DefaultConfig()); err != nil {
		t.Fatalf("runner unusable after recovered panic: %v", err)
	}
}

// TestTransientRetry: failures wrapped in Transient are retried up to
// Retries times; deterministic failures are not retried at all.
func TestTransientRetry(t *testing.T) {
	r := fastRunner()
	r.Retries = 3
	calls := 0
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		calls++
		if calls < 3 {
			return core.Stats{}, &Transient{Err: fmt.Errorf("flaky attempt %d", calls)}
		}
		return core.Stats{Committed: 99}, nil
	}
	s, err := r.Run("compress", core.DefaultConfig())
	if err != nil {
		t.Fatalf("transient failure not retried to success: %v", err)
	}
	if calls != 3 || s.Committed != 99 {
		t.Fatalf("want success on call 3, got calls=%d stats=%+v", calls, s)
	}

	// Exhausted retries surface the last transient error.
	r2 := fastRunner()
	r2.Retries = 2
	calls = 0
	r2.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		calls++
		return core.Stats{}, &Transient{Err: errors.New("always down")}
	}
	if _, err := r2.Run("compress", core.DefaultConfig()); err == nil || !IsTransient(err) {
		t.Fatalf("exhausted retries: want transient error, got %v", err)
	}
	if calls != 3 { // initial attempt + 2 retries
		t.Fatalf("want 3 attempts (1 + 2 retries), got %d", calls)
	}

	// Deterministic failures: exactly one attempt.
	r3 := fastRunner()
	r3.Retries = 5
	calls = 0
	r3.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		calls++
		return core.Stats{}, errors.New("deterministic divergence")
	}
	if _, err := r3.Run("compress", core.DefaultConfig()); err == nil {
		t.Fatal("deterministic failure swallowed")
	}
	if calls != 1 {
		t.Fatalf("deterministic failure retried %d times; must not be", calls-1)
	}
}

// TestRunTimeout: a deadline shorter than any real simulation aborts the
// run with context.DeadlineExceeded instead of hanging the campaign.
func TestRunTimeout(t *testing.T) {
	r := NewRunner()
	r.Timeout = time.Nanosecond // expires before the first slice completes
	_, err := r.Run("compress", core.DefaultConfig())
	if err == nil {
		t.Fatal("nanosecond deadline did not abort the run")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("timeout error does not mention the deadline: %v", err)
	}
}

// TestFailedRunsNotCached: an error must not poison the cache — a later
// call (e.g. after a transient condition clears) re-attempts the run.
func TestFailedRunsNotCached(t *testing.T) {
	r := fastRunner()
	fail := true
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		if fail {
			return core.Stats{}, errors.New("first time fails")
		}
		return core.Stats{Committed: 7}, nil
	}
	if _, err := r.Run("compress", core.DefaultConfig()); err == nil {
		t.Fatal("want first-call failure")
	}
	fail = false
	s, err := r.Run("compress", core.DefaultConfig())
	if err != nil || s.Committed != 7 {
		t.Fatalf("failure was cached: err=%v stats=%+v", err, s)
	}
}

// TestCacheKeyUsesConfigKey: two configs sharing a display name but
// differing in one structural field must occupy distinct cache slots.
func TestCacheKeyUsesConfigKey(t *testing.T) {
	r := fastRunner()
	byCfg := map[string]int{}
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		byCfg[cfg.Key()]++
		return core.Stats{Committed: uint64(cfg.ROBSize)}, nil
	}
	a := core.DefaultConfig()
	b := core.DefaultConfig()
	b.ROBSize *= 2
	if a.Name() != b.Name() {
		t.Fatalf("premise broken: names differ (%q vs %q)", a.Name(), b.Name())
	}
	sa, err := r.Run("compress", a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.Run("compress", b)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Committed == sb.Committed {
		t.Fatal("second config served the first config's cached stats")
	}
	if len(byCfg) != 2 {
		t.Fatalf("want 2 distinct simulations, got %d", len(byCfg))
	}
}
