package harness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/sample"
)

// TestRunSampledMatchesFull is the end-to-end differential gate through the
// harness: a one-interval plan stitched from parallel workers must be
// bit-identical to the plain cached full run.
func TestRunSampledMatchesFull(t *testing.T) {
	r := NewRunner()
	r.MaxInsts = 30_000
	cfg := core.IRChoice(false)
	want, err := r.Run("compress", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.RunSampled(context.Background(), "compress", cfg, sample.Plan{Interval: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Exact || sum.Stats != want {
		t.Fatalf("sampled(1 interval) != full run:\n got %+v\nwant %+v", sum.Stats, want)
	}
}

// TestRunSampledParallelDeterminism stitches the same multi-interval plan
// with 1 worker and with 8 workers; the summaries must be bit-identical even
// though interval scheduling differs. Run under -race this also exercises
// the FF singleflight and the per-worker sampled machine pools.
func TestRunSampledParallelDeterminism(t *testing.T) {
	plan := sample.Plan{Interval: 6_000, Every: 1, Warmup: 500}
	cfg := core.HybridChoice(core.DefaultConfig().VP.Scheme, core.SB, core.ME, 0)

	serial := NewRunner()
	serial.MaxInsts = 36_000
	serial.Parallel = false
	s1, err := serial.RunSampled(context.Background(), "go", cfg, plan)
	if err != nil {
		t.Fatal(err)
	}

	par := NewRunner()
	par.MaxInsts = 36_000
	par.Parallelism = 8
	s2, err := par.RunSampled(context.Background(), "go", cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Stats != s2.Stats {
		t.Fatalf("parallel stitch differs from serial:\n got %+v\nwant %+v", s2.Stats, s1.Stats)
	}
	if s1.Intervals != s2.Intervals || s1.SampledInsts != s2.SampledInsts {
		t.Fatalf("summary shape differs: %+v vs %+v", s1, s2)
	}
}

// TestRunnerSampleTransparent checks Runner.Sample: plain cells run sampled,
// and with full coverage the stats stay exact.
func TestRunnerSampleTransparent(t *testing.T) {
	full := NewRunner()
	full.MaxInsts = 24_000
	cfg := core.DefaultConfig()
	want, err := full.Run("perl", cfg)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner()
	r.MaxInsts = 24_000
	r.Sample = &sample.Plan{Interval: 1 << 40}
	got, err := r.Run("perl", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("transparent sampling diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestSweepAttemptsAudit pins the retry audit trail: a cell that succeeds on
// its third attempt reports Attempts == 3, a first-try success reports 1, and
// a cache hit reports 0.
func TestSweepAttemptsAudit(t *testing.T) {
	r := NewRunner()
	r.Retries = 3
	var calls atomic.Int64
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		if calls.Add(1) < 3 {
			return core.Stats{}, &Transient{Err: errors.New("flaky")}
		}
		return core.Stats{Cycles: 7}, nil
	}
	cells := []SweepCell{{Bench: "compress", Cfg: core.DefaultConfig()}}
	res := r.Sweep(context.Background(), cells)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d after two transient failures, want 3", res.Attempts)
	}

	// Same cell again: served from cache, audit says so.
	res = r.Sweep(context.Background(), cells)[0]
	if res.Err != nil || res.Attempts != 0 {
		t.Fatalf("cache hit reported Attempts = %d (err %v), want 0", res.Attempts, res.Err)
	}

	// A fresh cell that succeeds immediately reports attempt 1.
	other := core.IRChoice(false)
	res = r.Sweep(context.Background(), []SweepCell{{Bench: "compress", Cfg: other}})[0]
	if res.Err != nil || res.Attempts != 1 {
		t.Fatalf("first-try success reported Attempts = %d (err %v), want 1", res.Attempts, res.Err)
	}

	// Exhausted retries surface the attempt count too.
	r2 := NewRunner()
	r2.Retries = 1
	r2.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		return core.Stats{}, &Transient{Err: errors.New("always down")}
	}
	res = r2.Sweep(context.Background(), cells)[0]
	if res.Err == nil {
		t.Fatal("expected failure")
	}
	if res.Attempts != 2 {
		t.Fatalf("failed cell reported Attempts = %d, want 2 (initial + 1 retry)", res.Attempts)
	}
}

// TestSampledCellsDoNotAliasPlainCells: the cache key of a sampled cell must
// differ from the plain cell's, and interval cells from each other.
func TestSampledCellsDoNotAliasPlainCells(t *testing.T) {
	r := NewRunner()
	cfg := core.DefaultConfig()
	plain := r.cellKey("compress", cfg, nil)
	whole := r.cellKey("compress", cfg, &SampleSpec{Plan: sample.Plan{Interval: 100}, Index: WholeProgram})
	iv0 := r.cellKey("compress", cfg, &SampleSpec{Plan: sample.Plan{Interval: 100}, Index: 0})
	iv1 := r.cellKey("compress", cfg, &SampleSpec{Plan: sample.Plan{Interval: 100}, Index: 1})
	keys := map[string]bool{plain: true, whole: true, iv0: true, iv1: true}
	if len(keys) != 4 {
		t.Fatalf("cache keys alias: %q %q %q %q", plain, whole, iv0, iv1)
	}
	if plain != fmt.Sprintf("compress|%s|%d|%d", cfg.Key(), r.Scale, r.MaxInsts) {
		t.Fatalf("plain key changed format: %q", plain)
	}
}

// TestRunSampledCachesIntervals: after a RunSampled, re-running performs no
// new simulations (all interval cells cached).
func TestRunSampledCachesIntervals(t *testing.T) {
	r := NewRunner()
	r.MaxInsts = 20_000
	plan := sample.Plan{Interval: 5_000}
	cfg := core.DefaultConfig()
	first, err := r.RunSampled(context.Background(), "m88ksim", cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	// All cells must now come from cache: observe via OnResult attempts.
	var nonCached atomic.Int64
	r.OnResult = func(i int, res SweepResult) {
		if res.Attempts != 0 {
			nonCached.Add(1)
		}
	}
	second, err := r.RunSampled(context.Background(), "m88ksim", cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if n := nonCached.Load(); n != 0 {
		t.Fatalf("%d interval cells were re-simulated on the second run", n)
	}
	if first.Stats != second.Stats {
		t.Fatalf("cached stitch differs: %+v vs %+v", second.Stats, first.Stats)
	}
}
