package harness

import (
	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/stats"
	"github.com/vpir-sim/vpir/internal/vp"
	"github.com/vpir-sim/vpir/internal/workload"
)

// Extension experiments beyond the paper's evaluation. The paper's
// introduction motivates exactly these follow-ups: "that will help in
// designing other techniques (possibly hybrid of VP and IR) that exploit
// the redundancy in programs more profitably."
func init() {
	registerExp(Experiment{ID: "ext-hybrid",
		Title: "Extension: hybrid IR+VP vs its parts", Run: extHybrid})
	registerExp(Experiment{ID: "ext-stride",
		Title: "Extension: VPT scheme comparison (Magic, LVP, stride, 2-delta, FCM)", Run: extStride})
	registerExp(Experiment{ID: "ext-arb",
		Title: "Extension: hybrid arbitration, serial vs confidence-aware", Run: extArb})
	registerExp(Experiment{ID: "ext-rbsize",
		Title: "Ablation: reuse buffer size", Run: extRBSize})
	registerExp(Experiment{ID: "ext-instances",
		Title: "Ablation: instances per instruction (table associativity)", Run: extInstances})
	registerExp(Experiment{ID: "ext-window",
		Title: "Ablation: instruction window size", Run: extWindow})
}

// extHybrid compares base / IR / VP_Magic / hybrid on speedup and on how
// the captured redundancy splits between reuse and prediction.
func extHybrid(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ir, err := r.RunAll(core.IRChoice(false))
	if err != nil {
		return nil, err
	}
	vpm, err := r.RunAll(magic(core.SB, core.ME, 0))
	if err != nil {
		return nil, err
	}
	hy, err := r.RunAll(core.HybridChoice(vp.Magic, core.SB, core.ME, 0))
	if err != nil {
		return nil, err
	}
	hyN, err := r.RunAll(core.HybridChoice(vp.Magic, core.NSB, core.ME, 0))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "ext-hybrid",
		Title:   "Speedups over base, and the hybrid's reuse/prediction split",
		Columns: []string{"bench", "IR", "VP_Magic", "hybrid-SB", "hybrid-NSB", "hy reuse%", "hy pred%"}}
	var sIR, sVP, sHY, sHYN []float64
	for _, b := range workload.Names() {
		i := ir[b].IPC() / base[b].IPC()
		v := vpm[b].IPC() / base[b].IPC()
		h := hy[b].IPC() / base[b].IPC()
		hn := hyN[b].IPC() / base[b].IPC()
		sIR = append(sIR, i)
		sVP = append(sVP, v)
		sHY = append(sHY, h)
		sHYN = append(sHYN, hn)
		hp, _ := hy[b].VPResultRates()
		t.AddRow(b, stats.F3(i), stats.F3(v), stats.F3(h), stats.F3(hn),
			stats.F(hy[b].ReuseResultRate()), stats.F(hp))
	}
	t.AddRow("HM", stats.F3(stats.HarmonicMean(sIR)), stats.F3(stats.HarmonicMean(sVP)),
		stats.F3(stats.HarmonicMean(sHY)), stats.F3(stats.HarmonicMean(sHYN)), "", "")
	t.Note("hybrid: the reuse test runs first (non-speculative); misses are value predicted")
	t.Note("NSB tames the spurious squashes that SB inherits from VP on perl/compress")
	return []*stats.Table{t}, nil
}

// extStride compares every registered VPT scheme: correct-prediction rate
// and speedup over base under identical policy knobs.
func extStride(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	schemes := []vp.Scheme{vp.Magic, vp.LVP, vp.Stride, vp.TwoDelta, vp.FCM}
	labels := []string{"Magic", "LVP", "Stride", "2delta", "FCM"}
	results := make([]map[string]core.Stats, len(schemes))
	for i, s := range schemes {
		cfg := core.VPChoice(s, core.SB, core.ME, 0)
		if results[i], err = r.RunAll(cfg); err != nil {
			return nil, err
		}
	}
	cols := []string{"bench"}
	for _, l := range labels {
		cols = append(cols, l+"%")
	}
	for _, l := range labels {
		cols = append(cols, l+" spd")
	}
	t := &stats.Table{ID: "ext-stride",
		Title:   "Prediction scheme comparison (ME-SB, vlat=0): correct prediction % and speedup",
		Columns: cols}
	for _, b := range workload.Names() {
		row := []string{b}
		for i := range schemes {
			p, _ := results[i][b].VPResultRates()
			row = append(row, stats.F(p))
		}
		for i := range schemes {
			row = append(row, stats.F3(results[i][b].IPC()/base[b].IPC()))
		}
		t.AddRow(row...)
	}
	t.Note("stride/2-delta capture the 'derivable' class of Figure 8, which Magic/LVP and IR cannot")
	t.Note("2-delta trades coverage for accuracy (stride adopted on repeat); FCM learns repeating non-arithmetic sequences")
	return []*stats.Table{t}, nil
}

// extArb compares the hybrid arbitration policies: the serial "IR first,
// else VP" policy against confidence-aware arbitration, which accepts a
// value prediction only at saturated confidence and skips address
// prediction when the reuse test already supplied the address.
func extArb(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	serial, err := r.RunAll(core.HybridChoice(vp.TwoDelta, core.SB, core.ME, 0))
	if err != nil {
		return nil, err
	}
	conf, err := r.RunAll(core.HybridConfChoice(vp.TwoDelta, core.SB, core.ME, 0))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{ID: "ext-arb",
		Title:   "Hybrid arbitration (2-delta, ME-SB): speedup and prediction mix, serial vs confidence",
		Columns: []string{"bench", "serial", "conf", "serial pred%", "conf pred%", "serial wrong%", "conf wrong%"}}
	var sS, sC []float64
	for _, b := range workload.Names() {
		s := serial[b].IPC() / base[b].IPC()
		c := conf[b].IPC() / base[b].IPC()
		sS = append(sS, s)
		sC = append(sC, c)
		sp, sm := serial[b].VPResultRates()
		cp, cm := conf[b].VPResultRates()
		t.AddRow(b, stats.F3(s), stats.F3(c),
			stats.F(sp), stats.F(cp), stats.F(sm), stats.F(cm))
	}
	t.AddRow("HM", stats.F3(stats.HarmonicMean(sS)), stats.F3(stats.HarmonicMean(sC)),
		"", "", "", "")
	t.Note("confidence arbitration predicts less but mispredicts less; reuse covers the withheld cases")
	return []*stats.Table{t}, nil
}

// extRBSize sweeps the reuse buffer size (the paper fixes 4K entries).
func extRBSize(r *Runner) ([]*stats.Table, error) {
	base, err := r.RunAll(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sizes := []int{256, 1024, 4096, 16384}
	t := &stats.Table{ID: "ext-rbsize",
		Title:   "IR speedup over base vs reuse buffer entries (4-way)",
		Columns: []string{"bench", "256", "1K", "4K (paper)", "16K"}}
	results := make([]map[string]core.Stats, len(sizes))
	for i, n := range sizes {
		cfg := core.IRChoice(false)
		cfg.IR.Buffer.Entries = n
		if results[i], err = r.RunAll(cfg); err != nil {
			return nil, err
		}
	}
	for _, b := range workload.Names() {
		row := []string{b}
		for i := range sizes {
			row = append(row, stats.F3(results[i][b].IPC()/base[b].IPC()))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}, nil
}

// extInstances sweeps the instances-per-instruction limit for both
// structures: the paper's §4.1.3 rationale for VP_Magic vs IR comparability
// rests on both buffering up to 4 instances.
func extInstances(r *Runner) ([]*stats.Table, error) {
	ways := []int{1, 2, 4, 8}
	var err error
	irRes := make([]map[string]core.Stats, len(ways))
	vpRes := make([]map[string]core.Stats, len(ways))
	for i, w := range ways {
		irCfg := core.IRChoice(false)
		irCfg.IR.Buffer.Ways = w
		if irRes[i], err = r.RunAll(irCfg); err != nil {
			return nil, err
		}
		vpCfg := magic(core.SB, core.ME, 0)
		vpCfg.VP.ResultTable.Ways = w
		vpCfg.VP.AddrTable.Ways = w
		if vpRes[i], err = r.RunAll(vpCfg); err != nil {
			return nil, err
		}
	}
	t := &stats.Table{ID: "ext-instances",
		Title:   "Capture rate vs instances per instruction (IR reuse% / Magic pred%)",
		Columns: []string{"bench", "IR n=1", "IR n=2", "IR n=4", "IR n=8", "Mg n=1", "Mg n=2", "Mg n=4", "Mg n=8"}}
	for _, b := range workload.Names() {
		row := []string{b}
		for i := range ways {
			row = append(row, stats.F(irRes[i][b].ReuseResultRate()))
		}
		for i := range ways {
			p, _ := vpRes[i][b].VPResultRates()
			row = append(row, stats.F(p))
		}
		t.AddRow(row...)
	}
	t.Note("n=1 for IR is scheme S_n-with-one-instance; the paper argues n=4 for both sides")
	return []*stats.Table{t}, nil
}

// extWindow sweeps the instruction window (ROB/LSQ) size: does a larger
// window subsume the techniques, or do they keep collapsing the critical
// path? (The paper fixes a 32-entry window.)
func extWindow(r *Runner) ([]*stats.Table, error) {
	sizes := []int{16, 32, 64, 128}
	t := &stats.Table{ID: "ext-window",
		Title:   "IR and VP_Magic speedups over the same-sized base vs window size",
		Columns: []string{"bench", "IR 16", "IR 32", "IR 64", "IR 128", "VP 16", "VP 32", "VP 64", "VP 128"}}
	baseRes := make([]map[string]core.Stats, len(sizes))
	irRes := make([]map[string]core.Stats, len(sizes))
	vpRes := make([]map[string]core.Stats, len(sizes))
	var err error
	for i, n := range sizes {
		resize := func(c core.Config) core.Config {
			c.ROBSize = n
			c.LSQSize = n
			return c
		}
		if baseRes[i], err = r.RunAll(resize(core.DefaultConfig())); err != nil {
			return nil, err
		}
		if irRes[i], err = r.RunAll(resize(core.IRChoice(false))); err != nil {
			return nil, err
		}
		if vpRes[i], err = r.RunAll(resize(magic(core.SB, core.ME, 0))); err != nil {
			return nil, err
		}
	}
	for _, b := range workload.Names() {
		row := []string{b}
		for i := range sizes {
			row = append(row, stats.F3(irRes[i][b].IPC()/baseRes[i][b].IPC()))
		}
		for i := range sizes {
			row = append(row, stats.F3(vpRes[i][b].IPC()/baseRes[i][b].IPC()))
		}
		t.AddRow(row...)
	}
	t.Note("each column's speedup is relative to a base machine with the same window")
	return []*stats.Table{t}, nil
}
