package harness

import (
	"context"
	"errors"
	"testing"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/vp"
)

// sweepTestCells is a small multi-config grid: every benchmark in the grid
// runs several configurations, so worker-local machine reuse (Reset) is
// actually exercised.
func sweepTestCells() []SweepCell {
	return Grid(
		[]string{"compress", "m88ksim", "go"},
		[]core.Config{
			core.DefaultConfig(),
			core.IRChoice(false),
			core.VPChoice(vp.Stride, core.SB, core.ME, 1),
			core.HybridChoice(vp.Stride, core.SB, core.ME, 1),
		})
}

// sweepRunner is fastRunner without the shared cache masking reuse: each
// call builds a fresh Runner so two sweeps never share cached Stats.
func sweepRunner(parallelism int) *Runner {
	r := NewRunner()
	r.MaxInsts = 30_000
	r.Parallelism = parallelism
	if parallelism == 1 {
		r.Parallel = false
	}
	return r
}

// TestSweepParallelMatchesSerial is the sweep determinism contract: the
// same grid swept serially and with several workers (each reusing machines
// across configurations) must produce bit-identical Stats, cell for cell.
func TestSweepParallelMatchesSerial(t *testing.T) {
	cells := sweepTestCells()
	serial := sweepRunner(1).Sweep(context.Background(), cells)
	parallel := sweepRunner(4).Sweep(context.Background(), cells)
	if len(serial) != len(cells) || len(parallel) != len(cells) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(cells))
	}
	for i, c := range cells {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("cell %d (%s/%s): serial err=%v parallel err=%v", i, c.Bench, c.Cfg.Name(), s.Err, p.Err)
		}
		if s.Bench != c.Bench || p.Bench != c.Bench {
			t.Fatalf("cell %d results out of order: %s/%s, want %s", i, s.Bench, p.Bench, c.Bench)
		}
		if s.Stats != p.Stats {
			t.Errorf("cell %d (%s/%s): parallel Stats differ from serial\n serial:   %+v\n parallel: %+v",
				i, c.Bench, c.Cfg.Name(), s.Stats, p.Stats)
		}
	}
}

// TestSweepCancellation: a cancelled context stops the sweep promptly; every
// unstarted cell reports the context error, and the result slice still has
// one entry per cell in order.
func TestSweepCancellation(t *testing.T) {
	r := sweepRunner(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the sweep: every cell must be skipped
	results := r.Sweep(ctx, sweepTestCells())
	if len(results) != len(sweepTestCells()) {
		t.Fatalf("got %d results, want %d", len(results), len(sweepTestCells()))
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("cell %d: err = %v, want context.Canceled", i, res.Err)
		}
	}
}

// TestSweepPartialResults: per-cell failures surface in that cell's Err
// without aborting the rest of the sweep.
func TestSweepPartialResults(t *testing.T) {
	r := sweepRunner(2)
	boom := errors.New("synthetic failure")
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		if bench == "m88ksim" {
			return core.Stats{}, boom
		}
		return core.Stats{Committed: 1}, nil
	}
	cells := sweepTestCells()
	for i, res := range r.Sweep(context.Background(), cells) {
		if cells[i].Bench == "m88ksim" {
			if !errors.Is(res.Err, boom) {
				t.Errorf("cell %d: err = %v, want synthetic failure", i, res.Err)
			}
			continue
		}
		if res.Err != nil || res.Stats.Committed != 1 {
			t.Errorf("cell %d (%s): err=%v stats=%+v, want success", i, cells[i].Bench, res.Err, res.Stats)
		}
	}
}

// TestSweepRecoversPanicAndDropsMachine: a panicking cell becomes an error,
// and the sweep keeps going — including further cells for the same
// benchmark on the same worker, which must rebuild the machine rather than
// reuse one abandoned mid-update.
func TestSweepRecoversPanicAndDropsMachine(t *testing.T) {
	r := sweepRunner(1)
	calls := 0
	r.runHook = func(bench string, cfg core.Config) (core.Stats, error) {
		calls++
		if calls == 1 {
			panic("rogue index out of range")
		}
		return core.Stats{Committed: uint64(calls)}, nil
	}
	cells := Grid([]string{"compress"}, []core.Config{core.DefaultConfig(), core.IRChoice(false)})
	results := r.Sweep(context.Background(), cells)
	if results[0].Err == nil {
		t.Fatal("panic was not converted to an error")
	}
	if results[1].Err != nil {
		t.Fatalf("sweep did not continue past a panic: %v", results[1].Err)
	}
}
