package asm

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/isa"
)

// encoder describes how one mnemonic is sized (pass 1) and encoded (pass 2).
type encoder struct {
	size func(a *assembler, ops []operand) (int, error)
	emit func(a *assembler, pc uint32, ops []operand) ([]uint32, error)
}

func fixed(n int, emit func(a *assembler, pc uint32, ops []operand) ([]uint32, error)) encoder {
	return encoder{
		size: func(*assembler, []operand) (int, error) { return n, nil },
		emit: emit,
	}
}

func wantOps(ops []operand, kinds ...opKind) error {
	if len(ops) != len(kinds) {
		return fmt.Errorf("want %d operands, got %d", len(kinds), len(ops))
	}
	for i, k := range kinds {
		if ops[i].kind != k {
			names := map[opKind]string{opReg: "register", opFReg: "fp register", opImm: "expression", opMem: "memory operand"}
			return fmt.Errorf("operand %d: want %s", i+1, names[k])
		}
	}
	return nil
}

func (a *assembler) imm16(op operand, signed bool) (int32, error) {
	v, err := a.resolve(op)
	if err != nil {
		return 0, err
	}
	if signed && (v < -32768 || v > 32767) {
		return 0, fmt.Errorf("immediate %d out of signed 16-bit range", v)
	}
	if !signed && (v < 0 || v > 0xFFFF) {
		return 0, fmt.Errorf("immediate %d out of unsigned 16-bit range", v)
	}
	return int32(v), nil
}

// branchOff computes the word offset from pc to a label operand.
func (a *assembler) branchOff(pc uint32, op operand) (int32, error) {
	target, err := a.resolve(op)
	if err != nil {
		return 0, err
	}
	diff := int64(target) - int64(pc) - 4
	if diff&3 != 0 {
		return 0, fmt.Errorf("branch target %#x not word aligned", target)
	}
	off := diff / 4
	if off < -32768 || off > 32767 {
		return 0, fmt.Errorf("branch target %#x out of range", target)
	}
	return int32(off), nil
}

func alu3(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg, opReg); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeR(op, ops[0].reg, ops[1].reg, ops[2].reg)}, nil
	})
}

func shiftC(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg, opImm); err != nil {
			return nil, err
		}
		sh, err := a.resolve(ops[2])
		if err != nil {
			return nil, err
		}
		if sh < 0 || sh > 31 {
			return nil, fmt.Errorf("shift amount %d out of range", sh)
		}
		return []uint32{isa.EncodeShift(op, ops[0].reg, ops[1].reg, uint8(sh))}, nil
	})
}

func shiftV(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg, opReg); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeShiftV(op, ops[0].reg, ops[1].reg, ops[2].reg)}, nil
	})
}

func aluI(op isa.Op, signed bool) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg, opImm); err != nil {
			return nil, err
		}
		imm, err := a.imm16(ops[2], signed)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeI(op, ops[0].reg, ops[1].reg, imm)}, nil
	})
}

// memOp handles loads and stores. A plain "op $r, off($base)" is one word; an
// absolute "op $r, label" form expands via $at into lui+op (two words).
func memOp(op isa.Op, fp bool) encoder {
	regKind := opReg
	if fp {
		regKind = opFReg
	}
	size := func(a *assembler, ops []operand) (int, error) {
		if len(ops) != 2 {
			return 0, fmt.Errorf("want 2 operands")
		}
		if ops[1].kind == opMem {
			return 1, nil
		}
		if ops[1].kind == opImm {
			return 2, nil
		}
		return 0, fmt.Errorf("second operand must be a memory reference")
	}
	emit := func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if ops[0].kind != regKind {
			return nil, fmt.Errorf("first operand has wrong register class")
		}
		r := ops[0].reg
		if ops[1].kind == opMem {
			off, err := a.imm16(operand{kind: opImm, sym: ops[1].sym, off: ops[1].off}, true)
			if err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeI(op, r, ops[1].base, off)}, nil
		}
		addr, err := a.resolve(ops[1])
		if err != nil {
			return nil, err
		}
		// Signed-lo split so the load offset sign-extends correctly.
		hi := uint32(addr+0x8000) >> 16
		lo := int32(int16(addr & 0xFFFF))
		return []uint32{
			isa.EncodeI(isa.OpLUI, isa.RegAT, isa.RegZero, int32(hi)),
			isa.EncodeI(op, r, isa.RegAT, lo),
		}, nil
	}
	return encoder{size: size, emit: emit}
}

func br2(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg, opImm); err != nil {
			return nil, err
		}
		off, err := a.branchOff(pc, ops[2])
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeI(op, ops[1].reg, ops[0].reg, off)}, nil
	})
}

func br1(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opImm); err != nil {
			return nil, err
		}
		off, err := a.branchOff(pc, ops[1])
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeBr1(op, ops[0].reg, off)}, nil
	})
}

// cmpBranch emits the slt+branch expansion for blt/bge/bgt/ble (and the
// unsigned variants). swap exchanges the comparison operands; brOp is the
// branch applied to $at.
func cmpBranch(sltOp isa.Op, swap bool, brOp isa.Op) encoder {
	return fixed(2, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg, opImm); err != nil {
			return nil, err
		}
		s1, s2 := ops[0].reg, ops[1].reg
		if swap {
			s1, s2 = s2, s1
		}
		off, err := a.branchOff(pc+4, ops[2])
		if err != nil {
			return nil, err
		}
		return []uint32{
			isa.EncodeR(sltOp, isa.RegAT, s1, s2),
			isa.EncodeI(brOp, isa.RegZero, isa.RegAT, off),
		}, nil
	})
}

func fp3(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opFReg, opFReg, opFReg); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeFP3(op, ops[0].reg, ops[1].reg, ops[2].reg)}, nil
	})
}

func fp2(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opFReg, opFReg); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeFP2(op, ops[0].reg, ops[1].reg)}, nil
	})
}

func fcmp(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opFReg, opFReg); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeFCmp(op, ops[0].reg, ops[1].reg)}, nil
	})
}

func brFCC(op isa.Op) encoder {
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opImm); err != nil {
			return nil, err
		}
		off, err := a.branchOff(pc, ops[0])
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeBrFCC(op, off)}, nil
	})
}

func mulDiv(op isa.Op) encoder {
	// Two-operand form is the raw instruction; the three-operand form is the
	// pseudo that adds mflo (mul/divq) — handled separately below.
	return fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeMulDiv(op, ops[0].reg, ops[1].reg)}, nil
	})
}

// mulDivPseudo emits "op rs, rt; mfxx rd" for mul/rem/remu and the
// three-operand div/divu forms.
func mulDivPseudo(op isa.Op, moveOp isa.Op) encoder {
	return fixed(2, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
		if err := wantOps(ops, opReg, opReg, opReg); err != nil {
			return nil, err
		}
		return []uint32{
			isa.EncodeMulDiv(op, ops[1].reg, ops[2].reg),
			isa.EncodeMoveHL(moveOp, ops[0].reg),
		}, nil
	})
}

// divEncoder dispatches between the 2-operand raw form and the 3-operand
// pseudo form by operand count.
func divEncoder(op isa.Op) encoder {
	raw := mulDiv(op)
	pseudo := mulDivPseudo(op, isa.OpMFLO)
	return encoder{
		size: func(a *assembler, ops []operand) (int, error) {
			if len(ops) == 3 {
				return pseudo.size(a, ops)
			}
			return raw.size(a, ops)
		},
		emit: func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if len(ops) == 3 {
				return pseudo.emit(a, pc, ops)
			}
			return raw.emit(a, pc, ops)
		},
	}
}

// liWords reports how many instructions "li rd, v" takes.
func liWords(v int64) int {
	if v >= -32768 && v <= 32767 {
		return 1
	}
	if v&0xFFFF == 0 && v >= 0 && v <= 0xFFFF_0000 {
		return 1
	}
	return 2
}

var encoders map[string]encoder

func init() {
	encoders = map[string]encoder{
		// ALU, register.
		"addu": alu3(isa.OpADDU), "add": alu3(isa.OpADDU),
		"subu": alu3(isa.OpSUBU), "sub": alu3(isa.OpSUBU),
		"and": alu3(isa.OpAND), "or": alu3(isa.OpOR),
		"xor": alu3(isa.OpXOR), "nor": alu3(isa.OpNOR),
		"slt": alu3(isa.OpSLT), "sltu": alu3(isa.OpSLTU),
		"sll": shiftC(isa.OpSLL), "srl": shiftC(isa.OpSRL), "sra": shiftC(isa.OpSRA),
		"sllv": shiftV(isa.OpSLLV), "srlv": shiftV(isa.OpSRLV), "srav": shiftV(isa.OpSRAV),

		// ALU, immediate.
		"addiu": aluI(isa.OpADDIU, true), "addi": aluI(isa.OpADDIU, true),
		"slti": aluI(isa.OpSLTI, true), "sltiu": aluI(isa.OpSLTIU, true),
		"andi": aluI(isa.OpANDI, false), "ori": aluI(isa.OpORI, false),
		"xori": aluI(isa.OpXORI, false),
		"lui": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opImm); err != nil {
				return nil, err
			}
			imm, err := a.imm16(ops[1], false)
			if err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeI(isa.OpLUI, ops[0].reg, isa.RegZero, imm)}, nil
		}),

		// Multiply / divide.
		"mult": mulDiv(isa.OpMULT), "multu": mulDiv(isa.OpMULTU),
		"div": divEncoder(isa.OpDIV), "divu": divEncoder(isa.OpDIVU),
		"mul":  mulDivPseudo(isa.OpMULT, isa.OpMFLO),
		"rem":  mulDivPseudo(isa.OpDIV, isa.OpMFHI),
		"remu": mulDivPseudo(isa.OpDIVU, isa.OpMFHI),
		"mfhi": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeMoveHL(isa.OpMFHI, ops[0].reg)}, nil
		}),
		"mflo": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeMoveHL(isa.OpMFLO, ops[0].reg)}, nil
		}),

		// Memory.
		"lb": memOp(isa.OpLB, false), "lbu": memOp(isa.OpLBU, false),
		"lh": memOp(isa.OpLH, false), "lhu": memOp(isa.OpLHU, false),
		"lw": memOp(isa.OpLW, false),
		"sb": memOp(isa.OpSB, false), "sh": memOp(isa.OpSH, false),
		"sw":   memOp(isa.OpSW, false),
		"lwc1": memOp(isa.OpLWC1, true), "l.s": memOp(isa.OpLWC1, true),
		"swc1": memOp(isa.OpSWC1, true), "s.s": memOp(isa.OpSWC1, true),

		// Control flow.
		"j": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opImm); err != nil {
				return nil, err
			}
			t, err := a.resolveJumpTarget(ops[0])
			if err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeJ(isa.OpJ, t)}, nil
		}),
		"jal": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opImm); err != nil {
				return nil, err
			}
			t, err := a.resolveJumpTarget(ops[0])
			if err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeJ(isa.OpJAL, t)}, nil
		}),
		"jr": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeJR(ops[0].reg)}, nil
		}),
		"jalr": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			switch len(ops) {
			case 1:
				if err := wantOps(ops, opReg); err != nil {
					return nil, err
				}
				return []uint32{isa.EncodeJALR(isa.RegRA, ops[0].reg)}, nil
			case 2:
				if err := wantOps(ops, opReg, opReg); err != nil {
					return nil, err
				}
				return []uint32{isa.EncodeJALR(ops[0].reg, ops[1].reg)}, nil
			}
			return nil, fmt.Errorf("want 1 or 2 operands")
		}),
		"beq": br2(isa.OpBEQ), "bne": br2(isa.OpBNE),
		"blez": br1(isa.OpBLEZ), "bgtz": br1(isa.OpBGTZ),
		"bltz": br1(isa.OpBLTZ), "bgez": br1(isa.OpBGEZ),
		"syscall": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			return []uint32{isa.EncodeNullary(isa.OpSYSCALL)}, nil
		}),
		"break": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			return []uint32{isa.EncodeNullary(isa.OpBREAK)}, nil
		}),

		// Pseudo branches.
		"b": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opImm); err != nil {
				return nil, err
			}
			off, err := a.branchOff(pc, ops[0])
			if err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeI(isa.OpBEQ, isa.RegZero, isa.RegZero, off)}, nil
		}),
		"beqz": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opImm); err != nil {
				return nil, err
			}
			off, err := a.branchOff(pc, ops[1])
			if err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeI(isa.OpBEQ, isa.RegZero, ops[0].reg, off)}, nil
		}),
		"bnez": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opImm); err != nil {
				return nil, err
			}
			off, err := a.branchOff(pc, ops[1])
			if err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeI(isa.OpBNE, isa.RegZero, ops[0].reg, off)}, nil
		}),
		"blt":  cmpBranch(isa.OpSLT, false, isa.OpBNE),
		"bge":  cmpBranch(isa.OpSLT, false, isa.OpBEQ),
		"bgt":  cmpBranch(isa.OpSLT, true, isa.OpBNE),
		"ble":  cmpBranch(isa.OpSLT, true, isa.OpBEQ),
		"bltu": cmpBranch(isa.OpSLTU, false, isa.OpBNE),
		"bgeu": cmpBranch(isa.OpSLTU, false, isa.OpBEQ),
		"bgtu": cmpBranch(isa.OpSLTU, true, isa.OpBNE),
		"bleu": cmpBranch(isa.OpSLTU, true, isa.OpBEQ),

		// Other pseudo-instructions.
		"nop": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			return []uint32{isa.EncodeShift(isa.OpSLL, isa.RegZero, isa.RegZero, 0)}, nil
		}),
		"move": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeR(isa.OpADDU, ops[0].reg, ops[1].reg, isa.RegZero)}, nil
		}),
		"not": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeR(isa.OpNOR, ops[0].reg, ops[1].reg, isa.RegZero)}, nil
		}),
		"neg": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeR(isa.OpSUBU, ops[0].reg, isa.RegZero, ops[1].reg)}, nil
		}),
		"li": {
			size: func(a *assembler, ops []operand) (int, error) {
				if err := wantOps(ops, opReg, opImm); err != nil {
					return 0, err
				}
				if ops[1].sym != "" {
					return 2, nil // label address: lui+ori
				}
				return liWords(ops[1].off), nil
			},
			emit: func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
				v, err := a.resolve(ops[1])
				if err != nil {
					return nil, err
				}
				if v < -(1<<31) || v > (1<<32)-1 {
					return nil, fmt.Errorf("li value %d out of 32-bit range", v)
				}
				rd := ops[0].reg
				if ops[1].sym == "" {
					switch liWords(v) {
					case 1:
						if v >= -32768 && v <= 32767 {
							return []uint32{isa.EncodeI(isa.OpADDIU, rd, isa.RegZero, int32(v))}, nil
						}
						return []uint32{isa.EncodeI(isa.OpLUI, rd, isa.RegZero, int32(uint32(v)>>16))}, nil
					}
				}
				u := uint32(v)
				return []uint32{
					isa.EncodeI(isa.OpLUI, rd, isa.RegZero, int32(u>>16)),
					isa.EncodeI(isa.OpORI, rd, rd, int32(u&0xFFFF)),
				}, nil
			},
		},
		"la": fixed(2, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opImm); err != nil {
				return nil, err
			}
			v, err := a.resolve(ops[1])
			if err != nil {
				return nil, err
			}
			u := uint32(v)
			rd := ops[0].reg
			return []uint32{
				isa.EncodeI(isa.OpLUI, rd, isa.RegZero, int32(u>>16)),
				isa.EncodeI(isa.OpORI, rd, rd, int32(u&0xFFFF)),
			}, nil
		}),

		// Floating point.
		"add.s": fp3(isa.OpADDS), "sub.s": fp3(isa.OpSUBS),
		"mul.s": fp3(isa.OpMULS), "div.s": fp3(isa.OpDIVS),
		"sqrt.s": fp2(isa.OpSQRTS), "abs.s": fp2(isa.OpABSS),
		"neg.s": fp2(isa.OpNEGS), "mov.s": fp2(isa.OpMOVS),
		"cvt.s.w": fp2(isa.OpCVTSW), "cvt.w.s": fp2(isa.OpCVTWS),
		"c.eq.s": fcmp(isa.OpCEQS), "c.lt.s": fcmp(isa.OpCLTS), "c.le.s": fcmp(isa.OpCLES),
		"bc1t": brFCC(isa.OpBC1T), "bc1f": brFCC(isa.OpBC1F),
		"mtc1": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opFReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeMTC1(ops[0].reg, ops[1].reg)}, nil
		}),
		"mfc1": fixed(1, func(a *assembler, pc uint32, ops []operand) ([]uint32, error) {
			if err := wantOps(ops, opReg, opFReg); err != nil {
				return nil, err
			}
			return []uint32{isa.EncodeMFC1(ops[0].reg, ops[1].reg)}, nil
		}),
	}
}
