package asm

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/vpir-sim/vpir/internal/isa"
)

type opKind int

const (
	opReg  opKind = iota // integer register
	opFReg               // floating point register
	opImm                // immediate expression: [sym] [+/- off]
	opMem                // expr(base)
)

// operand is one parsed instruction or directive operand.
type operand struct {
	kind opKind
	reg  isa.Reg // opReg / opFReg
	sym  string  // opImm / opMem expression symbol ("" if pure constant)
	off  int64   // opImm / opMem expression offset
	base isa.Reg // opMem base register
}

// parseOperand parses a single operand. Constants that are already defined
// (.equ) are substituted immediately so pseudo-instruction sizing can use
// their values during pass 1.
func (a *assembler) parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	if s[0] == '$' {
		return parseRegister(s)
	}
	// Memory operand: expr(base) or (base).
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return operand{}, fmt.Errorf("malformed memory operand %q", s)
		}
		baseOp, err := parseRegister(strings.TrimSpace(s[i+1 : len(s)-1]))
		if err != nil {
			return operand{}, err
		}
		if baseOp.kind != opReg {
			return operand{}, fmt.Errorf("memory base must be an integer register in %q", s)
		}
		expr := strings.TrimSpace(s[:i])
		var sym string
		var off int64
		if expr != "" {
			sym, off, err = a.parseExpr(expr)
			if err != nil {
				return operand{}, err
			}
		}
		return operand{kind: opMem, sym: sym, off: off, base: baseOp.reg}, nil
	}
	sym, off, err := a.parseExpr(s)
	if err != nil {
		return operand{}, err
	}
	return operand{kind: opImm, sym: sym, off: off}, nil
}

// parseExpr parses "sym", "sym+N", "sym-N", "N", or "'c'".
func (a *assembler) parseExpr(s string) (sym string, off int64, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, fmt.Errorf("empty expression")
	}
	// Character literal, optionally negated.
	lit, neg := s, false
	if strings.HasPrefix(lit, "-'") {
		lit, neg = lit[1:], true
	}
	if lit[0] == '\'' {
		body, err := parseString("\"" + strings.Trim(lit, "'") + "\"")
		if err != nil || len(body) != 1 {
			return "", 0, fmt.Errorf("bad character literal %q", s)
		}
		v := int64(body[0])
		if neg {
			v = -v
		}
		return "", v, nil
	}
	// Split sym +/- off at the last top-level +/-, skipping a leading sign.
	split := -1
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			split = i
		}
	}
	head, tail := s, ""
	if split > 0 && isIdent(strings.TrimSpace(s[:split])) {
		head = strings.TrimSpace(s[:split])
		tail = strings.TrimSpace(s[split:])
	}
	if isIdent(head) && !isNumber(head) {
		sym = head
		if tail != "" {
			off, err = parseInt(tail)
			if err != nil {
				return "", 0, err
			}
		}
		// Substitute already-known constants now (labels stay symbolic).
		if v, ok := a.consts[sym]; ok {
			return "", v + off, nil
		}
		return sym, off, nil
	}
	off, err = parseInt(s)
	return "", off, err
}

func isNumber(s string) bool {
	_, err := parseInt(s)
	return err == nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, " ", "")
	neg := false
	switch {
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func parseRegister(s string) (operand, error) {
	if !strings.HasPrefix(s, "$") {
		return operand{}, fmt.Errorf("expected register, got %q", s)
	}
	name := strings.ToLower(s[1:])
	if strings.HasPrefix(name, "f") && len(name) > 1 {
		if n, err := strconv.Atoi(name[1:]); err == nil {
			if n < 0 || n > 31 {
				return operand{}, fmt.Errorf("fp register %q out of range", s)
			}
			return operand{kind: opFReg, reg: isa.FPR(n)}, nil
		}
		// "$fp" falls through to the named integer registers.
	}
	if n, err := strconv.Atoi(name); err == nil {
		if n < 0 || n > 31 {
			return operand{}, fmt.Errorf("register %q out of range", s)
		}
		return operand{kind: opReg, reg: isa.Reg(n)}, nil
	}
	if n := isa.IntRegNumber(name); n >= 0 {
		return operand{kind: opReg, reg: isa.Reg(n)}, nil
	}
	return operand{}, fmt.Errorf("unknown register %q", s)
}
