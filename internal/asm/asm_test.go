package asm

import (
	"strings"
	"testing"

	"github.com/vpir-sim/vpir/internal/isa"
	"github.com/vpir-sim/vpir/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble failed:\n%v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   addiu $t0, $zero, 5
loop:   addiu $t0, $t0, -1
        bne   $t0, $zero, loop
        li    $v0, 10
        syscall
`)
	if p.Entry != prog.TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, prog.TextBase)
	}
	if len(p.Text) != 5 {
		t.Fatalf("text len = %d, want 5", len(p.Text))
	}
	in := isa.Decode(p.Text[2])
	if in.Op != isa.OpBNE {
		t.Fatalf("inst 2 = %v, want bne", in.Op)
	}
	// bne at pc main+8 branching back to main+4: offset -2.
	if in.Imm != -2 {
		t.Errorf("bne offset = %d, want -2", in.Imm)
	}
}

func TestLabelsAndSymbols(t *testing.T) {
	p := mustAssemble(t, `
        .data
val:    .word 42
arr:    .word 1, 2, 3
str:    .asciiz "hi"
buf:    .space 16
end:
        .text
main:   la $t0, arr
        lw $t1, val
        syscall
`)
	if got := p.MustSymbol("val"); got != prog.DataBase {
		t.Errorf("val = %#x", got)
	}
	if got := p.MustSymbol("arr"); got != prog.DataBase+4 {
		t.Errorf("arr = %#x", got)
	}
	if got := p.MustSymbol("str"); got != prog.DataBase+16 {
		t.Errorf("str = %#x", got)
	}
	if got := p.MustSymbol("buf"); got != prog.DataBase+19 {
		t.Errorf("buf = %#x", got)
	}
	if got := p.MustSymbol("end"); got != prog.DataBase+35 {
		t.Errorf("end = %#x", got)
	}
	// Data contents.
	if p.Data[0] != 42 {
		t.Errorf("data[0] = %d", p.Data[0])
	}
	if p.Data[4] != 1 || p.Data[8] != 2 || p.Data[12] != 3 {
		t.Errorf("arr contents wrong: % x", p.Data[4:16])
	}
	if string(p.Data[16:18]) != "hi" || p.Data[18] != 0 {
		t.Errorf("str contents wrong: % x", p.Data[16:19])
	}
}

func TestWordAlignmentAfterBytes(t *testing.T) {
	p := mustAssemble(t, `
        .data
b:      .byte 1, 2, 3
w:      .word 7
        .text
main:   syscall
`)
	if got := p.MustSymbol("w"); got != prog.DataBase+4 {
		t.Errorf("w = %#x, want aligned to 4", got)
	}
	if p.Data[4] != 7 {
		t.Errorf("aligned word = %d", p.Data[4])
	}
}

func TestLabelOnOwnLineBeforeAlignedWord(t *testing.T) {
	p := mustAssemble(t, `
        .data
b:      .byte 1
tbl:
        .word 9
        .text
main:   syscall
`)
	if got := p.MustSymbol("tbl"); got != prog.DataBase+4 {
		t.Errorf("tbl = %#x, want %#x (post-alignment)", got, prog.DataBase+4)
	}
}

func TestEquConstants(t *testing.T) {
	p := mustAssemble(t, `
N = 64
        .equ M, 3
        .data
buf:    .space N
        .text
main:   li $t0, N
        li $t1, M
        addiu $t2, $zero, N+1
        syscall
`)
	in := isa.Decode(p.Text[0])
	if in.Op != isa.OpADDIU || in.Imm != 64 {
		t.Errorf("li N = %v imm %d", in.Op, in.Imm)
	}
	in = isa.Decode(p.Text[2])
	if in.Imm != 65 {
		t.Errorf("N+1 imm = %d", in.Imm)
	}
}

func TestLiExpansions(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   li $t0, 7          # 1 word addiu
        li $t1, -5         # 1 word addiu
        li $t2, 0x10000    # 1 word lui
        li $t3, 0x12345678 # 2 words lui+ori
        li $t4, 65535      # 2 words (doesn't fit signed 16)
        syscall
`)
	want := 1 + 1 + 1 + 2 + 2 + 1
	if len(p.Text) != want {
		t.Fatalf("text len = %d, want %d", len(p.Text), want)
	}
	if in := isa.Decode(p.Text[2]); in.Op != isa.OpLUI || in.Imm != 1 {
		t.Errorf("li 0x10000 = %v %d", in.Op, in.Imm)
	}
	if in := isa.Decode(p.Text[3]); in.Op != isa.OpLUI || in.Imm != 0x1234 {
		t.Errorf("li hi = %v %#x", in.Op, in.Imm)
	}
	if in := isa.Decode(p.Text[4]); in.Op != isa.OpORI || uint32(in.Imm) != 0x5678 {
		t.Errorf("li lo = %v %#x", in.Op, in.Imm)
	}
}

func TestLaAndAbsoluteLoad(t *testing.T) {
	p := mustAssemble(t, `
        .data
x:      .word 1
        .text
main:   la $t0, x
        lw $t1, x
        sw $t1, 8($t0)
        syscall
`)
	// la = lui+ori
	if in := isa.Decode(p.Text[0]); in.Op != isa.OpLUI || uint32(in.Imm) != prog.DataBase>>16 {
		t.Errorf("la hi = %v %#x", in.Op, in.Imm)
	}
	if in := isa.Decode(p.Text[1]); in.Op != isa.OpORI || uint32(in.Imm) != prog.DataBase&0xFFFF {
		t.Errorf("la lo = %v %#x", in.Op, in.Imm)
	}
	// lw label = lui $at + lw
	if in := isa.Decode(p.Text[2]); in.Op != isa.OpLUI || in.Dest != isa.RegAT {
		t.Errorf("abs lw hi = %v %v", in.Op, in.Dest)
	}
	if in := isa.Decode(p.Text[3]); in.Op != isa.OpLW || in.Src1 != isa.RegAT {
		t.Errorf("abs lw = %v %v", in.Op, in.Src1)
	}
}

func TestPseudoBranches(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   blt $t0, $t1, out
        bge $t0, $t1, out
        bgt $t0, $t1, out
        ble $t0, $t1, out
        bltu $t0, $t1, out
        beqz $t0, out
        bnez $t0, out
        b out
out:    syscall
`)
	// 4 cmp-branches are 2 words each; bltu 2; beqz/bnez/b 1 each.
	want := 2*5 + 3 + 1
	if len(p.Text) != want {
		t.Fatalf("text len = %d, want %d", len(p.Text), want)
	}
	in := isa.Decode(p.Text[0])
	if in.Op != isa.OpSLT || in.Dest != isa.RegAT {
		t.Errorf("blt expansion starts with %v -> %v", in.Op, in.Dest)
	}
	in = isa.Decode(p.Text[1])
	if in.Op != isa.OpBNE {
		t.Errorf("blt second word = %v", in.Op)
	}
	// bgt swaps operands.
	in = isa.Decode(p.Text[4])
	if in.Op != isa.OpSLT || in.Src1 != isa.Reg(9) || in.Src2 != isa.Reg(8) {
		t.Errorf("bgt slt operands = %v %v", in.Src1, in.Src2)
	}
}

func TestMulRemPseudo(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   mul $t0, $t1, $t2
        rem $t3, $t4, $t5
        div $t6, $t7
        div $s0, $s1, $s2
        syscall
`)
	if in := isa.Decode(p.Text[0]); in.Op != isa.OpMULT {
		t.Errorf("mul[0] = %v", in.Op)
	}
	if in := isa.Decode(p.Text[1]); in.Op != isa.OpMFLO || in.Dest != 8 {
		t.Errorf("mul[1] = %v %v", in.Op, in.Dest)
	}
	if in := isa.Decode(p.Text[3]); in.Op != isa.OpMFHI || in.Dest != 11 {
		t.Errorf("rem[1] = %v %v", in.Op, in.Dest)
	}
	if in := isa.Decode(p.Text[4]); in.Op != isa.OpDIV {
		t.Errorf("div2 = %v", in.Op)
	}
	if in := isa.Decode(p.Text[6]); in.Op != isa.OpMFLO || in.Dest != 16 {
		t.Errorf("div3[1] = %v %v", in.Op, in.Dest)
	}
}

func TestFloatingPoint(t *testing.T) {
	p := mustAssemble(t, `
        .data
fv:     .word 0x40490fdb    # pi as float bits
        .text
main:   l.s  $f0, fv
        add.s $f2, $f0, $f0
        c.lt.s $f0, $f2
        bc1t done
        mov.s $f4, $f0
done:   s.s  $f2, fv
        syscall
`)
	if in := isa.Decode(p.Text[1]); in.Op != isa.OpLWC1 || in.Dest != isa.FPR(0) {
		t.Errorf("l.s = %v %v", in.Op, in.Dest)
	}
	if in := isa.Decode(p.Text[2]); in.Op != isa.OpADDS || in.Dest != isa.FPR(2) {
		t.Errorf("add.s = %v %v", in.Op, in.Dest)
	}
	if in := isa.Decode(p.Text[3]); in.Op != isa.OpCLTS || in.Dest != isa.RegFCC {
		t.Errorf("c.lt.s = %v %v", in.Op, in.Dest)
	}
	if in := isa.Decode(p.Text[4]); in.Op != isa.OpBC1T {
		t.Errorf("bc1t = %v", in.Op)
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
        .text
# full line comment
main:   li $t0, 1     # trailing comment
        syscall       ; alt comment char
`)
	if len(p.Text) != 2 {
		t.Errorf("text len = %d, want 2", len(p.Text))
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	p := mustAssemble(t, `
        .text
a: b:
c:      syscall
`)
	for _, l := range []string{"a", "b", "c"} {
		if got := p.MustSymbol(l); got != prog.TextBase {
			t.Errorf("%s = %#x", l, got)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{".text\nmain: frob $t0", "unknown instruction"},
		{".text\nmain: addu $t0, $t1", "want 3 operands"},
		{".text\nmain: beq $t0, $t1, nowhere", "undefined symbol"},
		{".text\nx: syscall\nx: syscall", "already defined"},
		{".text\nmain: addiu $t0, $zero, 99999", "out of signed 16-bit range"},
		{".text\nmain: lw $t0, 5($f0)", "memory base must be an integer register"},
		{".word 4", "outside .data"},
		{".text\nmain: li $t9", "want 2 operands"},
		{".frobnicate", "unknown directive"},
		{".text\nmain: addu $t0, $t1, $nosuch", "unknown register"},
	}
	for _, c := range cases {
		_, err := Assemble("e.s", c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %q, want substring %q", c.src, err.Error(), c.want)
		}
	}
}

func TestErrorListsLineNumbers(t *testing.T) {
	_, err := Assemble("file.s", ".text\nmain: syscall\n frob $t0\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "file.s:3:") {
		t.Errorf("error %q should name file.s:3", err.Error())
	}
}

func TestSrcLines(t *testing.T) {
	p := mustAssemble(t, ".text\nmain: li $t0, 0x12345678\n syscall\n")
	if p.SrcLines[prog.TextBase] != 2 || p.SrcLines[prog.TextBase+4] != 2 {
		t.Errorf("li words not mapped to line 2: %v", p.SrcLines)
	}
	if p.SrcLines[prog.TextBase+8] != 3 {
		t.Errorf("syscall not mapped to line 3")
	}
}

func TestEntryDefaultsToTextStart(t *testing.T) {
	p := mustAssemble(t, ".text\nstart: syscall\n")
	if p.Entry != prog.TextBase {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestCharLiteral(t *testing.T) {
	p := mustAssemble(t, ".text\nmain: li $t0, 'A'\n syscall\n")
	if in := isa.Decode(p.Text[0]); in.Imm != 'A' {
		t.Errorf("char literal imm = %d", in.Imm)
	}
}

func TestNegativeSpaceRejected(t *testing.T) {
	// .space with a label argument is an error.
	_, err := Assemble("e.s", ".data\nx: .space x\n")
	if err == nil {
		t.Fatal("expected error for .space with non-constant")
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	// Every encoded instruction in a representative program must decode to a
	// valid op (no OpInvalid leaks from the assembler).
	p := mustAssemble(t, `
        .data
v:      .word 3
        .text
main:   la $s0, v
        lw $t0, 0($s0)
        addiu $t1, $t0, 1
        mult $t0, $t1
        mflo $t2
        sw $t2, 4($s0)
        blt $t0, $t1, skip
        nop
skip:   jal sub
        li $v0, 10
        syscall
sub:    jr $ra
`)
	for i, w := range p.Text {
		in := isa.Decode(w)
		if in.Op == isa.OpInvalid {
			t.Errorf("word %d (%#08x) decodes to invalid", i, w)
		}
	}
}

// TestWorkloadSizedProgram: assemble a large program exercising every
// directive and pseudo-instruction family in one source, then verify every
// word disassembles to a valid instruction whose re-decoded fields are
// self-consistent.
func TestLargeProgramDisasmConsistency(t *testing.T) {
	p := mustAssemble(t, `
N = 48
        .data
words:  .word 1, 2, 3, -4, 0x7FFFFFFF
halfs:  .half 1, 0x8000
bytes:  .byte 1, 2, 255
        .align 2
str:    .asciiz "hello world"
        .align 2
buf:    .space N
        .text
main:   la    $s0, words
        li    $s1, N
        li    $s2, 0x12345678
        lw    $t0, 0($s0)
        lh    $t1, halfs
        lbu   $t2, bytes
        sb    $t2, buf
        sh    $t1, buf+2
        sw    $t0, buf+4
        mul   $t3, $t0, $t1
        div   $t4, $t3, $t0
        rem   $t5, $t3, $t0
        remu  $t6, $t3, $t0
        sllv  $t7, $t0, $t1
        srav  $t8, $t0, $t1
        nor   $t9, $t0, $t1
        not   $v1, $t0
        neg   $a1, $t0
        blt   $t0, $t1, next
        bgeu  $t0, $t1, next
next:   jal   helper
        l.s   $f0, words
        cvt.s.w $f1, $f0
        sub.s $f2, $f1, $f1
        c.le.s $f2, $f1
        bc1f  skip
        neg.s $f3, $f1
skip:   li    $v0, 10
        syscall
helper: jalr  $t9, $ra
        jr    $ra
`)
	if len(p.Text) < 30 {
		t.Fatalf("text too small: %d", len(p.Text))
	}
	for i, w := range p.Text {
		in := isa.Decode(w)
		if in.Op == isa.OpInvalid {
			t.Errorf("word %d (%#08x) invalid", i, w)
			continue
		}
		pc := prog.TextBase + uint32(4*i)
		if s := isa.Disasm(&in, pc); s == "" {
			t.Errorf("word %d has empty disassembly", i)
		}
	}
}

// TestAssembleIdempotent: assembling the same source twice yields identical
// images (determinism of the two-pass assembler).
func TestAssembleIdempotent(t *testing.T) {
	src := `
        .data
x:      .word 5
        .text
main:   lw $t0, x
        addiu $t0, $t0, 1
        sw $t0, x
        li $v0, 10
        syscall
`
	a := mustAssemble(t, src)
	b := mustAssemble(t, src)
	if len(a.Text) != len(b.Text) {
		t.Fatal("text lengths differ")
	}
	for i := range a.Text {
		if a.Text[i] != b.Text[i] {
			t.Errorf("word %d differs", i)
		}
	}
	if string(a.Data) != string(b.Data) {
		t.Error("data differs")
	}
}

// TestAllKernelSourcesHaveNoInvalidWords: every benchmark kernel assembles
// to fully valid machine code.
func TestBranchOutOfRange(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".text\nmain: b far\n")
	for i := 0; i < 40000; i++ {
		sb.WriteString(" nop\n")
	}
	sb.WriteString("far: syscall\n")
	if _, err := Assemble("t.s", sb.String()); err == nil {
		t.Error("branch across 40000 instructions must be out of range")
	}
}
