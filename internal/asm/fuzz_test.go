package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble is the assembler's never-panic contract: arbitrary source
// must either assemble or fail with an error list — never crash. The seeds
// cover every construct the grammar knows (sections, labels, every operand
// shape, data directives, escapes) plus near-miss malformed variants, so
// mutation starts adjacent to the interesting parse paths.
//
// Run the short smoke with `make fuzz-smoke`, or dig deeper with
// `go test -fuzz FuzzAssemble -fuzztime 5m ./internal/asm`.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"\n\n\n",
		"# just a comment\n",
		".text\nmain: syscall\n",
		`
        .text
main:   addiu $t0, $zero, 5
loop:   addiu $t0, $t0, -1
        bne   $t0, $zero, loop
        li    $v0, 10
        syscall
`,
		`
        .data
val:    .word 42
arr:    .word 1, 2, 3
str:    .asciiz "hi\n"
buf:    .space 16
        .text
main:   la $t0, arr
        lw $t1, val
        sw $t1, 0($t0)
        jal sub
        li $v0, 10
        syscall
sub:    jr $ra
`,
		// Near-misses: undefined label, bad register, bad directive, bad
		// operand counts, out-of-range immediates, unterminated string.
		".text\nmain: j nowhere\n",
		".text\nmain: add $t9$t8\n",
		".bss\nx: .word 1\n",
		".text\nmain: addiu $t0\n",
		".text\nmain: addiu $t0, $zero, 99999999999999\n",
		".data\ns: .asciiz \"unterminated\n.text\nmain: syscall\n",
		".text\nmain: lw $t0, 4($t1\n",
		".text\n" + strings.Repeat("l: ", 40) + "syscall\n",
		"\x00\xff\xfe.text",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz.s", src)
		if err == nil && p == nil {
			t.Fatal("Assemble returned nil program and nil error")
		}
	})
}
