// Package asm implements a two-pass assembler for the simulator's MIPS-like
// ISA. It supports labels, the usual data directives (.word, .half, .byte,
// .space, .ascii, .asciiz, .align), named constants (.equ / NAME = value),
// and the common MIPS pseudo-instructions (li, la, move, nop, b, beqz, bnez,
// blt/bge/bgt/ble and unsigned variants, mul, rem, not, neg, l.s, s.s).
//
// Pass 1 parses every line and assigns addresses (pseudo-instruction sizes
// are decided here); pass 2 resolves symbols and encodes machine words.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"github.com/vpir-sim/vpir/internal/prog"
)

// Error is an assembly error tied to a source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// ErrorList collects all errors found during assembly.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, 0, len(l))
	for i, e := range l {
		if i == 10 {
			msgs = append(msgs, fmt.Sprintf("... and %d more errors", len(l)-10))
			break
		}
		msgs = append(msgs, e.Error())
	}
	return strings.Join(msgs, "\n")
}

type segment int

const (
	segText segment = iota
	segData
)

// stmt is one parsed source statement (an instruction or a data directive).
type stmt struct {
	line int
	seg  segment
	addr uint32 // assigned in pass 1

	// Instruction statements.
	mnemonic string
	ops      []operand

	// Data statements.
	directive string
	dataArgs  []operand
	rawString string // for .ascii/.asciiz
}

type assembler struct {
	name    string
	errs    ErrorList
	stmts   []*stmt
	symbols map[string]uint32 // labels
	consts  map[string]int64  // .equ constants, usable at parse time
	lineOf  map[string]int    // symbol definition line, for duplicate reports

	// Labels bind to the address of the *next* emitted item so that a label
	// on its own line still points at data that a later directive aligns.
	pendingLabels []string

	textPC uint32
	dataPC uint32
	seg    segment

	text     []uint32
	data     []byte
	srcLines map[uint32]int
}

// Assemble assembles source (with the given name used in error messages)
// into a linked program image. The entry point is the "main" label if
// present, otherwise the start of the text segment.
func Assemble(name, source string) (*prog.Program, error) {
	a := &assembler{
		name:     name,
		symbols:  make(map[string]uint32),
		consts:   make(map[string]int64),
		lineOf:   make(map[string]int),
		textPC:   prog.TextBase,
		dataPC:   prog.DataBase,
		seg:      segText,
		srcLines: make(map[uint32]int),
	}
	a.parseAndLayout(source)
	a.bindPendingLabels() // trailing labels point at the end of their segment
	if len(a.errs) == 0 {
		a.encodeAll()
	}
	if len(a.errs) > 0 {
		sort.SliceStable(a.errs, func(i, j int) bool { return a.errs[i].Line < a.errs[j].Line })
		return nil, a.errs
	}
	p := &prog.Program{
		Name:     name,
		Entry:    prog.TextBase,
		Text:     a.text,
		Data:     a.data,
		Symbols:  a.symbols,
		SrcLines: a.srcLines,
	}
	if main, ok := a.symbols["main"]; ok {
		p.Entry = main
	}
	return p, nil
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, &Error{File: a.name, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// parseAndLayout is pass 1: parse every line, define labels and constants,
// and assign an address to every statement.
func (a *assembler) parseAndLayout(source string) {
	for lineNo, raw := range strings.Split(source, "\n") {
		line := lineNo + 1
		text := stripComment(raw)

		// Peel off any leading labels.
		for {
			trimmed := strings.TrimSpace(text)
			idx := strings.Index(trimmed, ":")
			if idx <= 0 || !isIdent(trimmed[:idx]) {
				text = trimmed
				break
			}
			a.defineLabel(line, trimmed[:idx])
			text = trimmed[idx+1:]
		}
		if text == "" {
			continue
		}

		// NAME = value constant definitions.
		if eq := strings.Index(text, "="); eq > 0 && isIdent(strings.TrimSpace(text[:eq])) {
			a.defineConst(line, strings.TrimSpace(text[:eq]), strings.TrimSpace(text[eq+1:]))
			continue
		}

		if strings.HasPrefix(text, ".") {
			a.parseDirective(line, text)
			continue
		}
		a.parseInstruction(line, text)
	}
}

func (a *assembler) defineLabel(line int, label string) {
	if prev, dup := a.lineOf[label]; dup {
		a.errorf(line, "label %q already defined at line %d", label, prev)
		return
	}
	a.lineOf[label] = line
	a.pendingLabels = append(a.pendingLabels, label)
}

// bindPendingLabels assigns every label waiting since the last emitted item.
// With no explicit address it binds to the current position of the active
// segment (used for end-of-segment markers).
func (a *assembler) bindPendingLabels(addr ...uint32) {
	pos := a.textPC
	if a.seg == segData {
		pos = a.dataPC
	}
	if len(addr) == 1 {
		pos = addr[0]
	}
	for _, label := range a.pendingLabels {
		a.symbols[label] = pos
	}
	a.pendingLabels = a.pendingLabels[:0]
}

func (a *assembler) defineConst(line int, name, valueExpr string) {
	if prev, dup := a.lineOf[name]; dup {
		a.errorf(line, "constant %q already defined at line %d", name, prev)
		return
	}
	v, err := a.evalConst(valueExpr)
	if err != nil {
		a.errorf(line, "bad constant %q: %v", name, err)
		return
	}
	a.lineOf[name] = line
	a.consts[name] = v
}

func (a *assembler) parseDirective(line int, text string) {
	fields := strings.SplitN(text, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		a.bindPendingLabels() // bind to the end of the segment being left
		a.seg = segText
	case ".data":
		a.bindPendingLabels()
		a.seg = segData
	case ".globl", ".global", ".ent", ".end", ".set":
		// Accepted and ignored for source compatibility.
	case ".equ":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			a.errorf(line, ".equ wants NAME, value")
			return
		}
		a.defineConst(line, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	case ".align":
		n, err := a.evalConst(rest)
		if err != nil || n < 0 || n > 12 {
			a.errorf(line, "bad .align %q", rest)
			return
		}
		a.alignData(1 << uint(n))
	case ".word", ".half", ".byte", ".space", ".ascii", ".asciiz":
		if a.seg != segData {
			a.errorf(line, "%s outside .data segment", dir)
			return
		}
		s := &stmt{line: line, seg: segData, directive: dir}
		switch dir {
		case ".ascii", ".asciiz":
			str, err := parseString(rest)
			if err != nil {
				a.errorf(line, "%v", err)
				return
			}
			s.rawString = str
		default:
			for _, p := range splitOperands(rest) {
				op, err := a.parseOperand(p)
				if err != nil {
					a.errorf(line, "%v", err)
					return
				}
				s.dataArgs = append(s.dataArgs, op)
			}
		}
		a.layoutData(s)
		a.stmts = append(a.stmts, s)
	default:
		a.errorf(line, "unknown directive %s", dir)
	}
}

func (a *assembler) alignData(align uint32) {
	for a.dataPC%align != 0 {
		a.dataPC++
	}
}

func (a *assembler) layoutData(s *stmt) {
	switch s.directive {
	case ".word":
		a.alignData(4)
		s.addr = a.dataPC
		a.dataPC += uint32(4 * len(s.dataArgs))
	case ".half":
		a.alignData(2)
		s.addr = a.dataPC
		a.dataPC += uint32(2 * len(s.dataArgs))
	case ".byte":
		s.addr = a.dataPC
		a.dataPC += uint32(len(s.dataArgs))
	case ".space":
		s.addr = a.dataPC
		if len(s.dataArgs) == 1 && s.dataArgs[0].kind == opImm && s.dataArgs[0].sym == "" {
			a.dataPC += uint32(s.dataArgs[0].off)
		} else {
			a.errorf(s.line, ".space wants one constant size")
		}
	case ".ascii":
		s.addr = a.dataPC
		a.dataPC += uint32(len(s.rawString))
	case ".asciiz":
		s.addr = a.dataPC
		a.dataPC += uint32(len(s.rawString) + 1)
	}
	a.bindPendingLabels(s.addr)
}

func (a *assembler) parseInstruction(line int, text string) {
	if a.seg != segText {
		a.errorf(line, "instruction outside .text segment")
		return
	}
	fields := strings.SplitN(text, " ", 2)
	mn := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	enc, ok := encoders[mn]
	if !ok {
		a.errorf(line, "unknown instruction %q", mn)
		return
	}
	s := &stmt{line: line, seg: segText, mnemonic: mn, addr: a.textPC}
	a.bindPendingLabels(s.addr)
	if rest != "" {
		for _, p := range splitOperands(rest) {
			op, err := a.parseOperand(p)
			if err != nil {
				a.errorf(line, "%v", err)
				return
			}
			s.ops = append(s.ops, op)
		}
	}
	size, err := enc.size(a, s.ops)
	if err != nil {
		a.errorf(line, "%s: %v", mn, err)
		return
	}
	a.textPC += uint32(4 * size)
	a.stmts = append(a.stmts, s)
}

// encodeAll is pass 2.
func (a *assembler) encodeAll() {
	a.text = make([]uint32, 0, (a.textPC-prog.TextBase)/4)
	a.data = make([]byte, a.dataPC-prog.DataBase)
	for _, s := range a.stmts {
		if s.seg == segText {
			enc := encoders[s.mnemonic]
			words, err := enc.emit(a, s.addr, s.ops)
			if err != nil {
				a.errorf(s.line, "%s: %v", s.mnemonic, err)
				continue
			}
			for i, w := range words {
				a.srcLines[s.addr+uint32(4*i)] = s.line
				a.text = append(a.text, w)
			}
			continue
		}
		a.encodeData(s)
	}
}

func (a *assembler) encodeData(s *stmt) {
	off := s.addr - prog.DataBase
	put := func(i uint32, b byte) { a.data[off+i] = b }
	switch s.directive {
	case ".word":
		for i, arg := range s.dataArgs {
			v, err := a.resolve(arg)
			if err != nil {
				a.errorf(s.line, "%v", err)
				return
			}
			le := uint32(4 * i)
			put(le, byte(v))
			put(le+1, byte(v>>8))
			put(le+2, byte(v>>16))
			put(le+3, byte(v>>24))
		}
	case ".half":
		for i, arg := range s.dataArgs {
			v, err := a.resolve(arg)
			if err != nil {
				a.errorf(s.line, "%v", err)
				return
			}
			le := uint32(2 * i)
			put(le, byte(v))
			put(le+1, byte(v>>8))
		}
	case ".byte":
		for i, arg := range s.dataArgs {
			v, err := a.resolve(arg)
			if err != nil {
				a.errorf(s.line, "%v", err)
				return
			}
			put(uint32(i), byte(v))
		}
	case ".ascii":
		copy(a.data[off:], s.rawString)
	case ".asciiz":
		copy(a.data[off:], s.rawString)
		put(uint32(len(s.rawString)), 0)
	case ".space":
		// Zero filled already.
	}
}

// resolve evaluates an expression operand to its final value.
func (a *assembler) resolve(op operand) (int64, error) {
	if op.sym == "" {
		return op.off, nil
	}
	if v, ok := a.symbols[op.sym]; ok {
		return int64(v) + op.off, nil
	}
	if v, ok := a.consts[op.sym]; ok {
		return v + op.off, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", op.sym)
}

// resolveJumpTarget evaluates a j/jal operand and checks it is encodable:
// word aligned and within the 28-bit region a J-type instruction can
// reach. Labels always qualify; a hand-written numeric target may not
// (the fuzzer finds `jal 1` immediately), and must fail as an assembly
// error rather than tripping isa.EncodeJ's programmer-misuse panic.
func (a *assembler) resolveJumpTarget(op operand) (uint32, error) {
	t, err := a.resolve(op)
	if err != nil {
		return 0, err
	}
	if t&3 != 0 {
		return 0, fmt.Errorf("jump target %#x is not word aligned", t)
	}
	if t < 0 || t > 0x0FFF_FFFF {
		return 0, fmt.Errorf("jump target %#x outside the 28-bit jump region", t)
	}
	return uint32(t), nil
}

// evalConst evaluates an expression that must be fully resolvable now
// (constants only; labels are not allowed because pass 1 is still running).
func (a *assembler) evalConst(expr string) (int64, error) {
	op, err := a.parseOperand(expr)
	if err != nil {
		return 0, err
	}
	if op.kind != opImm {
		return 0, fmt.Errorf("%q is not a constant expression", expr)
	}
	if op.sym != "" {
		v, ok := a.consts[op.sym]
		if !ok {
			return 0, fmt.Errorf("constant %q not defined yet", op.sym)
		}
		return v + op.off, nil
	}
	return op.off, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == '.' && i > 0:
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case '#', ';':
			if !inStr {
				return strings.TrimSpace(s[:i])
			}
		}
	}
	return strings.TrimSpace(s)
}

// splitOperands splits on top-level commas, respecting quoted strings and
// parenthesised memory operands.
func splitOperands(s string) []string {
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in string")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}
