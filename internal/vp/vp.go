// Package vp implements the Value Prediction Table (VPT) of the paper with
// its two prediction schemes:
//
//   - VP_Magic (§4.1.1): each instruction may buffer up to 'n' (= the table
//     associativity) unique results, each with a 2-bit confidence counter.
//     The prediction is chosen with an oracle selection policy: if the
//     correct result is among the buffered confident instances, it is
//     selected; otherwise the most confident instance is. This makes VP
//     comparable to the reuse scheme, which also buffers several instances
//     per instruction and selects the matching one with the reuse test.
//
//   - VP_LVP: a classic last-value predictor buffering a single instance
//     per instruction.
//
// Beyond the paper's two schemes, the table also implements three computed
// predictors (§4.1.4's VPT design space): VP_Stride (eager stride),
// VP_2Delta (classic 2-delta stride) and VP_FCM (two-level finite context
// method). All carry saturating confidence counters gated by ConfThreshold.
//
// The table is 4-way set associative with LRU replacement; the base
// configuration (16 K entries) comes from §4.1.3. The same structure is
// instantiated twice by the core: once for results and once for the
// effective addresses of memory operations.
package vp

import (
	"fmt"
	"math/rand"

	"github.com/vpir-sim/vpir/internal/isa"
)

// Scheme selects the prediction policy.
type Scheme int

const (
	// Magic is the VP_Magic scheme: n unique results per instruction with
	// oracle selection among confident instances.
	Magic Scheme = iota
	// LVP is the last-value predictor: one instance per instruction,
	// replaced on every new result.
	LVP
	// Stride is an eager stride predictor: one instance per instruction
	// predicting lastValue + stride, adopting every new stride immediately
	// (one confirmation away from use). It captures the paper's "derivable"
	// class (Figure 8) that neither Magic nor LVP can, and that IR can
	// never reuse — an extension beyond the paper's two schemes.
	Stride
	// TwoDelta is the classic 2-delta stride predictor: the predicted
	// stride is only replaced when the same new stride is observed twice in
	// a row, so a single irregular value (a loop epilogue, a reseed) does
	// not throw away an established stride. Confidence tracks whether the
	// predicted stride held.
	TwoDelta
	// FCM is a two-level finite-context-method predictor: a per-instruction
	// first-level entry maintains a hash of the last few result values, and
	// a shared second-level value table maps that context to the value that
	// followed it last time, with its own saturating confidence counter.
	// FCM captures repeating non-arithmetic sequences (pointer chases,
	// table-driven state machines) that no stride scheme can.
	FCM
)

func (s Scheme) String() string {
	switch s {
	case LVP:
		return "VP_LVP"
	case Stride:
		return "VP_Stride"
	case TwoDelta:
		return "VP_2Delta"
	case FCM:
		return "VP_FCM"
	}
	return "VP_Magic"
}

// Config sizes a value prediction table.
type Config struct {
	Entries int // total entries (power of two)
	Ways    int // associativity = max instances per instruction
	Scheme  Scheme
	// ConfThreshold is the minimum confidence for an instance to be used as
	// a prediction (2 with 2-bit counters, per §4.1.1).
	ConfThreshold uint8
	// ConfMax saturates the confidence counter (3 with 2-bit counters).
	ConfMax uint8
}

// DefaultConfig returns the paper's 16 K-entry, 4-way VPT.
func DefaultConfig(s Scheme) Config {
	return Config{Entries: 16 << 10, Ways: 4, Scheme: s, ConfThreshold: 2, ConfMax: 3}
}

type entry struct {
	valid  bool
	tag    uint32
	value  isa.Word
	stride isa.Word // predicted stride (Stride and TwoDelta schemes)
	// lastStride is the most recently observed delta; TwoDelta promotes it
	// into stride only when the same delta repeats.
	lastStride isa.Word
	// hist is the FCM first-level context: a hash of the last few result
	// values of this instruction.
	hist uint32
	conf uint8
	tick uint64
}

// fcmEntry is one slot of the FCM second-level value table, shared by every
// instruction: context hash → the value that followed that context, with a
// saturating confidence counter. Distinct instructions whose histories hash
// to the same slot alias — by design, the classic FCM capacity trade-off.
type fcmEntry struct {
	value isa.Word
	conf  uint8
}

// Stats counts table activity. Prediction correctness is judged by the
// core (it knows when the verification happens); the table counts the
// structural events.
type Stats struct {
	Lookups     uint64 // Predict calls
	Predictions uint64 // Predict calls that returned a confident value
	Inserts     uint64 // new instances allocated
	Evictions   uint64 // valid instances displaced
}

// Table is a value prediction table.
type Table struct {
	cfg     Config
	setMask uint32
	ways    int
	entries []entry // sets*ways, laid out set-major
	// fcm is the second-level value table, allocated only for the FCM
	// scheme; its size equals cfg.Entries (a power of two).
	fcm     []fcmEntry
	fcmMask uint32
	tick    uint64
	stats   Stats
}

// New builds an empty table.
func New(cfg Config) *Table {
	sets := cfg.Entries / cfg.Ways
	t := &Table{
		cfg:     cfg,
		setMask: uint32(sets - 1),
		ways:    cfg.Ways,
		entries: make([]entry, sets*cfg.Ways),
	}
	if cfg.Scheme == FCM {
		t.fcm = make([]fcmEntry, cfg.Entries)
		t.fcmMask = uint32(cfg.Entries - 1)
	}
	return t
}

// fcmHash folds a new value into the FCM context register: an order-4
// shift register holding one folded byte per recent value, so a repeating
// value sequence produces a repeating context once the window is full —
// the property that lets the level-2 table learn periodic sequences.
func fcmHash(hist uint32, v isa.Word) uint32 {
	f := uint32(v) ^ uint32(v>>32)
	return hist<<8 | (f^f>>8^f>>16^f>>24)&0xff
}

// fcmIndex mixes the full context register before the level-2 mask is
// applied, so every value in the window — not just the most recent byte —
// steers the slot choice even for small tables.
func fcmIndex(hist uint32) uint32 {
	h := hist
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	return h
}

// Config returns the table configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

func (t *Table) set(pc uint32) []entry {
	s := (pc >> 2) & t.setMask
	return t.entries[int(s)*t.ways : int(s+1)*t.ways]
}

// Predict returns a predicted value for the instruction at pc. For the
// Magic scheme, oracle is the correct result (known to the simulator from
// the correct-path trace) and haveOracle says whether the instruction is on
// the correct path; wrong-path instructions fall back to the most-confident
// selection. For LVP the oracle arguments are ignored.
//
// inflight is the number of older in-flight (decoded, not yet committed)
// instances of the same instruction; the Stride scheme predicts
// value + stride*(inflight+1) so each instance of an unrolled-in-the-window
// loop gets its own point on the stride. Magic and LVP ignore it.
func (t *Table) Predict(pc uint32, oracle isa.Word, haveOracle bool, inflight int) (isa.Word, bool) {
	return t.PredictAt(pc, oracle, haveOracle, inflight, t.cfg.ConfThreshold)
}

// PredictAt is Predict with an explicit confidence floor: minConf replaces
// the configured ConfThreshold for this lookup, letting a caller demand
// saturated confidence (the confidence-arbitrated hybrid) without building
// a separate table.
func (t *Table) PredictAt(pc uint32, oracle isa.Word, haveOracle bool, inflight int, minConf uint8) (isa.Word, bool) {
	t.stats.Lookups++
	set := t.set(pc)

	if t.cfg.Scheme == Stride || t.cfg.Scheme == TwoDelta {
		for w := range set {
			e := &set[w]
			if e.valid && e.tag == pc && e.conf >= minConf {
				t.stats.Predictions++
				return e.value + e.stride*isa.Word(inflight+1), true
			}
		}
		return 0, false
	}

	if t.cfg.Scheme == FCM {
		// Level 1: the instruction's current context; level 2: the value
		// that followed it last time. Both the context (level-1 conf) and
		// the value (level-2 conf) must be confident: a freshly allocated
		// context or a value slot in an aliasing tug-of-war stays quiet.
		for w := range set {
			e := &set[w]
			if !e.valid || e.tag != pc || e.conf < minConf {
				continue
			}
			f := &t.fcm[fcmIndex(e.hist)&t.fcmMask]
			if f.conf >= minConf {
				t.stats.Predictions++
				return f.value, true
			}
			return 0, false
		}
		return 0, false
	}

	var best *entry
	for w := range set {
		e := &set[w]
		if !e.valid || e.tag != pc || e.conf < minConf {
			continue
		}
		if t.cfg.Scheme == Magic && haveOracle && e.value == oracle {
			t.stats.Predictions++
			return e.value, true
		}
		if best == nil || e.conf > best.conf || (e.conf == best.conf && e.tick > best.tick) {
			best = e
		}
	}
	if best == nil {
		return 0, false
	}
	t.stats.Predictions++
	return best.value, true
}

// Train updates the table after an instruction produced the actual result.
// predicted/wasPredicted describe the prediction that was made (if any), so
// the confidence of a wrong instance can be decremented per §4.1.1.
func (t *Table) Train(pc uint32, actual isa.Word, predicted isa.Word, wasPredicted bool) {
	t.tick++
	set := t.set(pc)

	if t.cfg.Scheme == LVP {
		// One instance per instruction: find it, or allocate.
		for w := range set {
			e := &set[w]
			if e.valid && e.tag == pc {
				if e.value == actual {
					if e.conf < t.cfg.ConfMax {
						e.conf++
					}
				} else {
					e.value = actual // last value
					if e.conf > 0 {
						e.conf--
					}
				}
				e.tick = t.tick
				return
			}
		}
		t.insert(set, pc, actual)
		return
	}

	if t.cfg.Scheme == Stride {
		// Eager stride: confidence follows whether the stride held.
		for w := range set {
			e := &set[w]
			if e.valid && e.tag == pc {
				newStride := actual - e.value
				if newStride == e.stride {
					if e.conf < t.cfg.ConfMax {
						e.conf++
					}
				} else {
					// Adopt the new stride and restart the confidence
					// climb; one confirmation away from use.
					e.stride = newStride
					e.conf = 1
				}
				e.value = actual
				e.tick = t.tick
				return
			}
		}
		t.insert(set, pc, actual)
		return
	}

	if t.cfg.Scheme == TwoDelta {
		// Classic 2-delta: the predicted stride is only replaced when the
		// same new delta is seen twice in a row, so one irregular value
		// cannot evict an established stride. Confidence saturates while
		// the predicted stride holds and decays while it does not.
		for w := range set {
			e := &set[w]
			if e.valid && e.tag == pc {
				newStride := actual - e.value
				if newStride == e.stride {
					if e.conf < t.cfg.ConfMax {
						e.conf++
					}
				} else {
					if e.conf > 0 {
						e.conf--
					}
					if newStride == e.lastStride {
						e.stride = newStride
					}
				}
				e.lastStride = newStride
				e.value = actual
				e.tick = t.tick
				return
			}
		}
		t.insert(set, pc, actual)
		return
	}

	if t.cfg.Scheme == FCM {
		// Level 2 learns "this context was followed by this value" with a
		// saturating counter (mismatches decay it; only an exhausted
		// counter lets an aliasing instruction capture the slot). Level 1
		// then folds the actual value into the context hash, and its own
		// counter saturates as the context warms up.
		for w := range set {
			e := &set[w]
			if e.valid && e.tag == pc {
				f := &t.fcm[fcmIndex(e.hist)&t.fcmMask]
				switch {
				case f.value == actual:
					if f.conf < t.cfg.ConfMax {
						f.conf++
					}
				case f.conf > 0:
					f.conf--
				default:
					f.value = actual
					f.conf = 1
				}
				e.hist = fcmHash(e.hist, actual)
				if e.conf < t.cfg.ConfMax {
					e.conf++
				}
				e.value = actual
				e.tick = t.tick
				return
			}
		}
		e := t.insert(set, pc, actual)
		e.hist = fcmHash(0, actual)
		return
	}

	// Magic: up to 'ways' unique instances. One scan finds both the
	// matching instance and (when a wrong prediction was made) the instance
	// to penalise; instances are unique per pc, so the two never collide.
	penalise := wasPredicted && predicted != actual
	var match, wrong *entry
	for w := range set {
		e := &set[w]
		if !e.valid || e.tag != pc {
			continue
		}
		if e.value == actual {
			match = e
		} else if penalise && e.value == predicted {
			wrong = e
		}
	}
	// Penalty first: if the wrong instance happens to be the LRU victim the
	// insert below replaces, the decrement is erased by the overwrite —
	// exactly the state the old scan-after-insert produced by not finding
	// the evicted value.
	if wrong != nil && wrong.conf > 0 {
		wrong.conf--
	}
	if match != nil {
		if match.conf < t.cfg.ConfMax {
			match.conf++
		}
		match.tick = t.tick
	} else {
		t.insert(set, pc, actual)
	}
}

func (t *Table) insert(set []entry, pc uint32, value isa.Word) *entry {
	t.stats.Inserts++
	victim := 0
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].tick < set[victim].tick {
			victim = w
		}
	}
	if set[victim].valid {
		t.stats.Evictions++
	}
	set[victim] = entry{valid: true, tag: pc, value: value, conf: 1, tick: t.tick}
	return &set[victim]
}

// Instances returns the values currently buffered for pc (most recent
// first); used by tests and by diagnostic tooling.
func (t *Table) Instances(pc uint32) []isa.Word {
	set := t.set(pc)
	var out []isa.Word
	// Selection sort by tick, newest first; ways is tiny.
	idx := make([]int, 0, len(set))
	for w := range set {
		if set[w].valid && set[w].tag == pc {
			idx = append(idx, w)
		}
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if set[idx[j]].tick > set[idx[i]].tick {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
		out = append(out, set[idx[i]].value)
	}
	return out
}

// CorruptValue flips bits in the buffered value (and, for Stride, the
// stride) of one valid instance chosen by r; for fault-injection campaigns.
// Because a VPT value is only ever used speculatively — the instruction
// still executes and the prediction is verified against the actual result —
// a corrupted instance can change timing but never architectural state.
// ok is false when the table holds no valid instance yet.
func (t *Table) CorruptValue(r *rand.Rand) (desc string, ok bool) {
	victim := -1
	seen := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			continue
		}
		seen++
		// Reservoir sample so the choice is uniform without a second pass.
		if r.Intn(seen) == 0 {
			victim = i
		}
	}
	if victim < 0 {
		return "", false
	}
	e := &t.entries[victim]
	mask := isa.Word(r.Uint32() | 1) // non-zero: the value always changes
	e.value ^= mask
	if t.cfg.Scheme == Stride || t.cfg.Scheme == TwoDelta {
		e.stride ^= isa.Word(r.Uint32() | 1)
	}
	return fmt.Sprintf("vpt[%d] pc=%#x value^=%#x", victim, e.tag, uint32(mask)), true
}

// SnapEntry is the exported form of one table entry, used by Snapshot.
type SnapEntry struct {
	Valid      bool
	Tag        uint32
	Value      isa.Word
	Stride     isa.Word
	LastStride isa.Word
	Hist       uint32
	Conf       uint8
	Tick       uint64
}

// FCMSnapEntry is the exported form of one second-level FCM slot.
type FCMSnapEntry struct {
	Value isa.Word
	Conf  uint8
}

// Snapshot is the complete warm state of a Table, entries in set-major
// order (plus the FCM second-level table for that scheme). Statistics are
// not captured: a restored table counts from zero. Every field is a flat
// slice or scalar, so a fresh encoder over equal state serializes
// byte-identically — the property internal/sample's content-addressable
// checkpoints rely on.
type Snapshot struct {
	Cfg     Config
	Tick    uint64
	Entries []SnapEntry
	FCM     []FCMSnapEntry
}

// Snapshot captures the table's warm state.
func (t *Table) Snapshot() *Snapshot {
	s := &Snapshot{Cfg: t.cfg, Tick: t.tick, Entries: make([]SnapEntry, len(t.entries))}
	for i := range t.entries {
		e := &t.entries[i]
		s.Entries[i] = SnapEntry{Valid: e.valid, Tag: e.tag, Value: e.value,
			Stride: e.stride, LastStride: e.lastStride, Hist: e.hist,
			Conf: e.conf, Tick: e.tick}
	}
	if t.fcm != nil {
		s.FCM = make([]FCMSnapEntry, len(t.fcm))
		for i := range t.fcm {
			s.FCM[i] = FCMSnapEntry{Value: t.fcm[i].value, Conf: t.fcm[i].conf}
		}
	}
	return s
}

// RestoreSnapshot rewinds the table to a captured warm state (geometry must
// match); statistics are zeroed.
func (t *Table) RestoreSnapshot(s *Snapshot) error {
	if s.Cfg != t.cfg || len(s.Entries) != len(t.entries) || len(s.FCM) != len(t.fcm) {
		return fmt.Errorf("vp: snapshot geometry mismatch (snapshot %+v/%d entries/%d fcm, table %+v/%d/%d)",
			s.Cfg, len(s.Entries), len(s.FCM), t.cfg, len(t.entries), len(t.fcm))
	}
	for i := range t.entries {
		se := &s.Entries[i]
		t.entries[i] = entry{valid: se.Valid, tag: se.Tag, value: se.Value,
			stride: se.Stride, lastStride: se.LastStride, hist: se.Hist,
			conf: se.Conf, tick: se.Tick}
	}
	for i := range t.fcm {
		t.fcm[i] = fcmEntry{value: s.FCM[i].Value, conf: s.FCM[i].Conf}
	}
	t.tick = s.Tick
	t.stats = Stats{}
	return nil
}

// Reset clears the table and statistics for a new run. Storage is reused
// in place when the geometry matches cfg (zero allocations in the machine
// reuse steady state) and rebuilt only on a geometry change.
func (t *Table) Reset(cfg Config) {
	if cfg != t.cfg || t.entries == nil {
		*t = *New(cfg)
		return
	}
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	for i := range t.fcm {
		t.fcm[i] = fcmEntry{}
	}
	t.tick = 0
	t.stats = Stats{}
}
