package vp

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/vpir-sim/vpir/internal/isa"
)

// trainSeq feeds a value sequence to the table as actual results (no
// prediction fed back), the way functional warming trains it.
func trainSeq(t *Table, pc uint32, vals ...isa.Word) {
	for _, v := range vals {
		t.Train(pc, v, 0, false)
	}
}

// TestConfidenceStateMachine drives the saturating counter of every scheme
// through the same script — climb to saturation, decay on mismatches, climb
// back — and checks the predict gate at each step. The table is the
// contract docs/techniques.md states for ConfThreshold/ConfMax.
func TestConfidenceStateMachine(t *testing.T) {
	pc := uint32(0x400000)
	cases := []struct {
		name   string
		scheme Scheme
		// seq is trained in order; wantOK[i] says whether a predict after
		// seq[:i+1] must return a confident prediction.
		seq    []isa.Word
		wantOK []bool
	}{
		// LVP: conf climbs 1,2,3 and saturates; each changed value decays it
		// one step (3→2 stays above threshold, 2→1 closes the gate), then a
		// repeat re-opens it.
		{"lvp_saturate_decay", LVP,
			[]isa.Word{7, 7, 7, 7, 9, 5, 5},
			[]bool{false, true, true, true, true, false, true}},
		// Stride (eager): first delta restarts conf at 1, second confirms.
		{"stride_climb", Stride,
			[]isa.Word{10, 20, 30, 40},
			[]bool{false, false, true, true}},
		// TwoDelta: the stride is only adopted on the second sighting of the
		// same delta, then confidence climbs while it holds.
		{"2delta_climb", TwoDelta,
			[]isa.Word{10, 20, 30, 40, 50},
			[]bool{false, false, false, false, true}},
		// FCM: the order-4 context register must fill and stabilize, then
		// the second-level slot must reach threshold, before predictions
		// flow — a longer warmup than any last-value scheme.
		{"fcm_climb", FCM,
			[]isa.Word{5, 5, 5, 5, 5, 5},
			[]bool{false, false, false, false, false, true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vt := New(small(tc.scheme))
			for i, v := range tc.seq {
				vt.Train(pc, v, 0, false)
				_, ok := vt.Predict(pc, v, false, 0)
				if ok != tc.wantOK[i] {
					t.Errorf("after seq[:%d] (%v): predict ok = %v, want %v",
						i+1, tc.seq[:i+1], ok, tc.wantOK[i])
				}
			}
		})
	}
}

// TestTwoDeltaArithmeticSequences checks stride learning on arithmetic
// sequences: once confident, the predictor tracks value+stride exactly, and
// in-flight instances project further along the stride.
func TestTwoDeltaArithmeticSequences(t *testing.T) {
	for _, stride := range []isa.Word{1, 4, 1000, ^isa.Word(0) /* -1 */} {
		vt := New(small(TwoDelta))
		pc := uint32(0x400100)
		v := isa.Word(100_000)
		for i := 0; i < 6; i++ {
			vt.Train(pc, v, 0, false)
			v += stride
		}
		got, ok := vt.Predict(pc, 0, false, 0)
		if !ok || got != v {
			t.Errorf("stride %d: predict = %d, %v; want %d", int64(stride), got, ok, v)
		}
		// Two older in-flight instances: the prediction projects 3 strides.
		got, ok = vt.Predict(pc, 0, false, 2)
		if !ok || got != v+2*stride {
			t.Errorf("stride %d inflight=2: predict = %d, %v; want %d", int64(stride), got, ok, v+2*stride)
		}
	}
}

// TestTwoDeltaResistsOneIrregularDelta is the scheme's reason to exist: a
// single off-stride value (loop epilogue, reseed) decays confidence but
// must not replace the established stride — the eager Stride scheme adopts
// it immediately and mispredicts the next value.
func TestTwoDeltaResistsOneIrregularDelta(t *testing.T) {
	pc := uint32(0x400200)
	twoDelta := New(small(TwoDelta))
	eager := New(small(Stride))
	seq := []isa.Word{10, 20, 30, 40, 99, 109, 119} // stride 10 with one glitch
	trainSeq(twoDelta, pc, seq...)
	trainSeq(eager, pc, seq...)

	// 2-delta kept stride 10 throughout (the glitch delta 59 appeared once).
	if got, ok := twoDelta.Predict(pc, 0, false, 0); !ok || got != 129 {
		t.Errorf("2delta after glitch: predict = %d, %v; want 129", got, ok)
	}

	// And after the glitch the eager scheme had thrown its stride away at
	// least once: immediately post-glitch it was not confident.
	eager2 := New(small(Stride))
	trainSeq(eager2, pc, 10, 20, 30, 40, 99)
	if _, ok := eager2.Predict(pc, 0, false, 0); ok {
		t.Error("eager stride stayed confident across the glitch; premise broken")
	}
	twoDelta2 := New(small(TwoDelta))
	trainSeq(twoDelta2, pc, 10, 20, 30, 40, 99)
	if s := twoDelta2.entries[twoDelta2.findIdx(pc)].stride; s != 10 {
		t.Errorf("2delta immediately after glitch: stride = %d; want 10 (kept, not replaced)", int64(s))
	}
}

// TestFCMRepeatingSequence: FCM must learn a repeating non-arithmetic
// sequence that defeats every stride scheme — after warmup, each context
// predicts the value that follows it.
func TestFCMRepeatingSequence(t *testing.T) {
	// A larger second level than small() keeps the 8 distinct contexts of
	// the period from colliding (aliasing is tested separately below).
	vt := New(Config{Entries: 4096, Ways: 4, Scheme: FCM, ConfThreshold: 2, ConfMax: 3})
	pc := uint32(0x400300)
	period := []isa.Word{3, 1, 4, 1, 5, 9, 2, 6}
	// Warm several periods.
	for round := 0; round < 6; round++ {
		trainSeq(vt, pc, period...)
	}
	// One more period: every value must now be predicted from its context.
	for i, v := range period {
		got, ok := vt.Predict(pc, 0, false, 0)
		if !ok || got != v {
			t.Errorf("pos %d: predict = %d, %v; want %d", i, got, ok, v)
		}
		vt.Train(pc, v, 0, false)
	}

	// The same sequence defeats a stride predictor (sanity of the premise).
	st := New(small(TwoDelta))
	for round := 0; round < 6; round++ {
		trainSeq(st, pc, period...)
	}
	correct := 0
	for _, v := range period {
		if got, ok := st.Predict(pc, 0, false, 0); ok && got == v {
			correct++
		}
		st.Train(pc, v, 0, false)
	}
	if correct == len(period) {
		t.Error("2-delta predicted the non-arithmetic sequence perfectly; FCM premise broken")
	}
}

// TestFCMHistoryTableAliasing pins the second-level capacity trade-off:
// two instructions whose contexts hash to the same slot fight over it, and
// the interference decays the incumbent's confidence.
func TestFCMHistoryTableAliasing(t *testing.T) {
	vt := New(small(FCM))
	pcA, pcB := uint32(0x400400), uint32(0x400404)

	// Stabilize A on a constant value: its context register fills and the
	// shared slot saturates.
	trainSeq(vt, pcA, 7, 7, 7, 7, 7, 7, 7)
	if got, ok := vt.Predict(pcA, 0, false, 0); !ok || got != 7 {
		t.Fatalf("A warm: predict = %d, %v; want 7", got, ok)
	}
	histA := vt.entries[vt.findIdx(pcA)].hist

	// Give B a level-1 entry, then force its context register equal to A's
	// (white-box: aliasing is a hash collision, and constructing one through
	// value choices would couple the test to the hash function).
	trainSeq(vt, pcB, 1000, 1000, 1000)
	bIdx := vt.findIdx(pcB)
	vt.entries[bIdx].hist = histA

	// B now trains different values through the shared slot: A's confidence
	// decays below threshold as the slot is fought over.
	for i := 0; i < 4; i++ {
		vt.Train(pcB, 5000, 0, false)
		vt.entries[bIdx].hist = histA // keep B pinned to the contested slot
	}
	if _, ok := vt.Predict(pcA, 0, false, 0); ok {
		t.Error("A still predicts after aliasing interference; level-2 conf did not decay")
	}
}

// findIdx locates the level-1 entry index for pc (test helper).
func (t *Table) findIdx(pc uint32) int {
	set := t.set(pc)
	for w := range set {
		if set[w].valid && set[w].tag == pc {
			s := (pc >> 2) & t.setMask
			return int(s)*t.ways + w
		}
	}
	return -1
}

// TestSnapshotRoundTripByteIdentity is the checkpoint contract
// internal/sample relies on: serialize → restore → serialize must be
// byte-identical for every scheme, including the FCM second-level table.
func TestSnapshotRoundTripByteIdentity(t *testing.T) {
	for _, scheme := range []Scheme{Magic, LVP, Stride, TwoDelta, FCM} {
		t.Run(scheme.String(), func(t *testing.T) {
			vt := New(small(scheme))
			// Mixed training: arithmetic runs, repeats, and conflicting pcs
			// that exercise eviction, so every entry field is populated.
			for pc := uint32(0x400000); pc < 0x400000+64*4; pc += 4 {
				trainSeq(vt, pc, 1, 2, 3, isa.Word(pc), isa.Word(pc)+10, isa.Word(pc)+20)
			}
			snap1 := vt.Snapshot()
			enc1 := mustGob(t, snap1)

			fresh := New(small(scheme))
			if err := fresh.RestoreSnapshot(snap1); err != nil {
				t.Fatal(err)
			}
			enc2 := mustGob(t, fresh.Snapshot())
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("serialize→restore→serialize drifted (%d vs %d bytes)", len(enc1), len(enc2))
			}

			// And the restored table behaves identically: same prediction
			// for every trained pc.
			for pc := uint32(0x400000); pc < 0x400000+64*4; pc += 4 {
				v1, ok1 := vt.Predict(pc, 0, false, 0)
				v2, ok2 := fresh.Predict(pc, 0, false, 0)
				if v1 != v2 || ok1 != ok2 {
					t.Fatalf("pc %#x: restored table predicts (%d,%v), original (%d,%v)",
						pc, v2, ok2, v1, ok1)
				}
			}
		})
	}
}

// TestSnapshotGeometryMismatch: restoring across scheme or size changes
// must fail loudly, never corrupt silently.
func TestSnapshotGeometryMismatch(t *testing.T) {
	src := New(small(FCM))
	trainSeq(src, 0x400000, 1, 2, 3)
	snap := src.Snapshot()
	if err := New(small(Magic)).RestoreSnapshot(snap); err == nil {
		t.Error("restoring an FCM snapshot into a Magic table must fail")
	}
	big := small(FCM)
	big.Entries *= 2
	if err := New(big).RestoreSnapshot(snap); err == nil {
		t.Error("restoring into a larger table must fail")
	}
}

// TestResetClearsFCMState: a same-geometry Reset must clear the second
// level table too — stale context values leaking across pooled-machine runs
// would break Reset determinism.
func TestResetClearsFCMState(t *testing.T) {
	vt := New(small(FCM))
	trainSeq(vt, 0x400000, 7, 7, 7, 7)
	vt.Reset(vt.Config())
	if _, ok := vt.Predict(0x400000, 0, false, 0); ok {
		t.Error("prediction survives Reset")
	}
	for i := range vt.fcm {
		if vt.fcm[i] != (fcmEntry{}) {
			t.Fatalf("fcm[%d] = %+v survives Reset", i, vt.fcm[i])
		}
	}
}

// TestResetZeroAllocs pins the contract the sweep workers and the server
// pool rely on: a same-geometry Reset clears the entry array — and, for
// FCM, the second-level context table — in place without allocating.
func TestResetZeroAllocs(t *testing.T) {
	for _, s := range []Scheme{Magic, LVP, Stride, TwoDelta, FCM} {
		t.Run(s.String(), func(t *testing.T) {
			vt := New(small(s))
			for i := uint32(0); i < 64; i++ {
				trainSeq(vt, 0x400000+i*4, 7, 14, 21, 28)
			}
			cfg := vt.Config()
			if allocs := testing.AllocsPerRun(10, func() { vt.Reset(cfg) }); allocs != 0 {
				t.Errorf("Reset with matching geometry allocated %.0f times per run, want 0", allocs)
			}
		})
	}
}

func mustGob(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
